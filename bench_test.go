// Benchmarks regenerating the paper's experiments (see EXPERIMENTS.md
// for the experiment index E1–E19 and the paper-vs-measured records).
// Run with:
//
//	go test -bench=. -benchmem .
package sian_test

import (
	"fmt"
	"testing"
	"time"

	"sian/internal/check"
	"sian/internal/chopping"
	"sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/robustness"
	"sian/internal/workload"
)

// certOpts are the standard options for certifying figure histories
// (they carry their own init transaction).
var certOpts = check.Options{NoInit: true, PinInit: true, Budget: 1_000_000}

// BenchmarkFig2aSessionGuarantees (E1): certification of the Figure
// 2(a) history under all three models.
func BenchmarkFig2aSessionGuarantees(b *testing.B) {
	benchCertifyExample(b, workload.SessionGuarantees())
}

// BenchmarkFig2bLostUpdate (E2): the lost-update anomaly is rejected
// by every model.
func BenchmarkFig2bLostUpdate(b *testing.B) {
	benchCertifyExample(b, workload.LostUpdate())
}

// BenchmarkFig2cLongFork (E3): the long fork separates PSI from SI.
func BenchmarkFig2cLongFork(b *testing.B) {
	benchCertifyExample(b, workload.LongFork())
}

// BenchmarkFig2dWriteSkew (E4): write skew separates SI from SER.
func BenchmarkFig2dWriteSkew(b *testing.B) {
	benchCertifyExample(b, workload.WriteSkew())
}

func benchCertifyExample(b *testing.B, ex *workload.Example) {
	b.Helper()
	models := []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}
	want := []bool{ex.InSER, ex.InSI, ex.InPSI, ex.InPC, ex.InGSI}
	for i, m := range models {
		m, want := m, want[i]
		b.Run(m.String(), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				res, err := check.Certify(ex.History, m, certOpts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Member != want {
					b.Fatalf("%s under %v = %v, want %v", ex.Name, m, res.Member, want)
				}
			}
		})
	}
}

// serialHistory builds a history of n serial read-modify-write
// transactions over k objects (a fully chained workload: one witness
// graph, no search branching). Used for scaling benchmarks.
func serialHistory(n, k int) *model.History {
	sessions := make([]model.Session, 0, n+1)
	initOps := make([]model.Op, 0, k)
	last := make([]model.Value, k)
	for i := 0; i < k; i++ {
		initOps = append(initOps, model.Write(obj(i), 0))
	}
	sessions = append(sessions, model.Session{
		ID:           model.InitTransactionID,
		Transactions: []model.Transaction{model.NewTransaction(model.InitTransactionID, initOps...)},
	})
	for t := 0; t < n; t++ {
		x := t % k
		ops := []model.Op{
			model.Read(obj(x), last[x]),
			model.Write(obj(x), model.Value(t+1)),
		}
		last[x] = model.Value(t + 1)
		sessions = append(sessions, model.Session{
			ID:           fmt.Sprintf("s%d", t),
			Transactions: []model.Transaction{model.NewTransaction(fmt.Sprintf("t%d", t), ops...)},
		})
	}
	return model.NewHistory(sessions...)
}

func obj(i int) model.Obj { return model.Obj(fmt.Sprintf("k%d", i)) }

// BenchmarkCheckScaling (E19): certifier cost as the history grows.
func BenchmarkCheckScaling(b *testing.B) {
	for _, n := range []int{10, 25, 50, 100} {
		h := serialHistory(n, 4)
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := check.Certify(h, depgraph.SI, certOpts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Member {
					b.Fatal("serial history rejected")
				}
			}
		})
	}
}

// BenchmarkBuildExecution (E6): the Theorem 10(i) soundness
// construction on witness graphs of growing size.
func BenchmarkBuildExecution(b *testing.B) {
	for _, n := range []int{10, 25, 50, 100} {
		h := serialHistory(n, 4)
		res, err := check.Certify(h, depgraph.SI, certOpts)
		if err != nil || !res.Member {
			b.Fatalf("setup: %v member=%v", err, res != nil && res.Member)
		}
		g := res.Graph
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildExecution(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeastSolution (E7): the Lemma 15 closed-form solution.
func BenchmarkLeastSolution(b *testing.B) {
	for _, n := range []int{25, 100} {
		h := serialHistory(n, 4)
		res, err := check.Certify(h, depgraph.SI, certOpts)
		if err != nil || !res.Member {
			b.Fatal("setup failed")
		}
		g := res.Graph
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol := core.LeastSolution(g, nil)
				if sol.CO.IsEmpty() {
					b.Fatal("empty solution")
				}
			}
		})
	}
}

// BenchmarkSCGFig5 (E9) and BenchmarkSCGFig6 (E10): the static
// chopping analysis on the paper's program sets.
func BenchmarkSCGFig5(b *testing.B) {
	programs := workload.Fig5Programs()
	for i := 0; i < b.N; i++ {
		v, err := chopping.CheckStatic(programs, chopping.SICritical)
		if err != nil {
			b.Fatal(err)
		}
		if v.OK {
			b.Fatal("Figure 5 chopping accepted")
		}
	}
}

func BenchmarkSCGFig6(b *testing.B) {
	programs := workload.Fig6Programs()
	for i := 0; i < b.N; i++ {
		v, err := chopping.CheckStatic(programs, chopping.SICritical)
		if err != nil {
			b.Fatal(err)
		}
		if !v.OK {
			b.Fatal("Figure 6 chopping rejected")
		}
	}
}

// BenchmarkSCGScaling (E19): static chopping analysis cost as the
// number of concurrent transfer programs grows.
func BenchmarkSCGScaling(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		programs := append(chopping.Replicate(workload.TransferChopped(), k),
			workload.Lookup1(), workload.Lookup2())
		b.Run(fmt.Sprintf("programs=%d", k+2), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chopping.CheckStatic(programs, chopping.SICritical); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDCGFig4 (E8): the dynamic chopping check of Theorem 16 on
// the Figure 4 graphs.
func BenchmarkDCGFig4(b *testing.B) {
	figs := workload.Fig4Graphs()
	b.Run("G1-critical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := chopping.CheckDynamic(figs.G1)
			if err != nil {
				b.Fatal(err)
			}
			if res.Critical == nil {
				b.Fatal("G1 should have a critical cycle")
			}
		}
	})
	b.Run("G2-spliceable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := chopping.CheckDynamic(figs.G2)
			if err != nil {
				b.Fatal(err)
			}
			if res.Spliced == nil {
				b.Fatal("G2 should splice")
			}
		}
	})
}

// BenchmarkRobustnessSER (E12): the §6.1 static analysis.
func BenchmarkRobustnessSER(b *testing.B) {
	apps := map[string]struct {
		app    robustness.App
		robust bool
	}{
		"writeSkew": {workload.WriteSkewApp(), false},
		"fixed":     {workload.WriteSkewAppFixed(), true},
		"transfer":  {workload.TransferApp(), true},
	}
	for name, tc := range apps {
		tc := tc
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, robust := robustness.CheckSIRobust(tc.app); robust != tc.robust {
					b.Fatalf("robust = %v, want %v", robust, tc.robust)
				}
			}
		})
	}
}

// BenchmarkRobustnessPSI (E13): the §6.2 static analysis.
func BenchmarkRobustnessPSI(b *testing.B) {
	apps := map[string]struct {
		app    robustness.App
		robust bool
	}{
		"longFork": {workload.LongForkApp(), false},
		"transfer": {workload.TransferApp(), true},
	}
	for name, tc := range apps {
		tc := tc
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, robust := robustness.CheckPSIRobust(tc.app); robust != tc.robust {
					b.Fatalf("robust = %v, want %v", robust, tc.robust)
				}
			}
		})
	}
}

// BenchmarkEngineCommit (E18): raw single-session commit throughput of
// the three engines.
func BenchmarkEngineCommit(b *testing.B) {
	for _, kind := range []engine.Kind{engine.SI, engine.SER, engine.PSI, engine.SSI} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			db, err := engine.New(kind, engine.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
				b.Fatal(err)
			}
			s := db.Session("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := s.Transact(func(tx *engine.Tx) error {
					v, err := tx.Read("x")
					if err != nil {
						return err
					}
					return tx.Write("x", v+1)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChoppingSpeedup (E17): the §1/§5 motivation — chopping a
// multi-account transfer into per-account pieces reduces conflict
// aborts under SI. The bench reports conflicts-per-commit for the
// monolithic and chopped variants.
func BenchmarkChoppingSpeedup(b *testing.B) {
	for _, kind := range []engine.Kind{engine.SI, engine.SER} {
		for _, chopped := range []bool{false, true} {
			kind, chopped := kind, chopped
			name := fmt.Sprintf("%v/monolithic", kind)
			if chopped {
				name = fmt.Sprintf("%v/chopped", kind)
			}
			b.Run(name, func(b *testing.B) {
				var commits, conflicts int64
				for i := 0; i < b.N; i++ {
					db, err := engine.New(kind, engine.Config{})
					if err != nil {
						b.Fatal(err)
					}
					out, err := workload.RunTransfers(db, workload.TransferConfig{
						Sessions: 4, Transfers: 5, Accounts: 4, Hops: 4,
						Chopped: chopped, Seed: int64(i),
						Think: 200 * time.Microsecond,
					})
					db.Close()
					if err != nil {
						b.Fatal(err)
					}
					commits += out.Commits
					conflicts += out.Conflicts
				}
				if commits > 0 {
					b.ReportMetric(float64(conflicts)/float64(commits), "conflicts/commit")
				}
			})
		}
	}
}

// BenchmarkEngineCertifyPipeline (E18): the full loop — run a
// register workload, record the history, certify it against the
// engine's model.
func BenchmarkEngineCertifyPipeline(b *testing.B) {
	kinds := []struct {
		kind engine.Kind
		m    depgraph.Model
	}{{engine.SI, depgraph.SI}, {engine.SER, depgraph.SER}, {engine.PSI, depgraph.PSI}, {engine.SSI, depgraph.SER}}
	for _, k := range kinds {
		k := k
		b.Run(k.kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := engine.New(k.kind, engine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				h, err := workload.RunRegisters(db, workload.RegistersConfig{
					Sessions: 3, TxPerSession: 5, OpsPerTx: 2, Objects: 3, Seed: int64(i),
				})
				db.Close()
				if err != nil {
					b.Fatal(err)
				}
				res, err := check.Certify(h, k.m, check.Options{NoInit: true, PinInit: true, Budget: 5_000_000})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Member {
					b.Fatalf("%v history rejected", k.kind)
				}
			}
		})
	}
}

// BenchmarkWriteSkewEngines (E25): the cost of preventing write skew —
// stage the Figure 2(d) interleaving (two overlapping withdrawals)
// per round on every engine and report the anomaly rate: SI commits
// both (1 anomaly/round, no aborts); SER and SSI abort one withdrawal
// instead.
func BenchmarkWriteSkewEngines(b *testing.B) {
	stage := func(db *engine.DB, round int) (bothCommitted bool, err error) {
		a1 := model.Obj(fmt.Sprintf("a1_%d", round))
		a2 := model.Obj(fmt.Sprintf("a2_%d", round))
		if err := db.Initialize(map[model.Obj]model.Value{a1: 60, a2: 60}); err != nil {
			return false, err
		}
		t1, err := db.Session("s1").Begin("w1")
		if err != nil {
			return false, err
		}
		t2, err := db.Session("s2").Begin("w2")
		if err != nil {
			return false, err
		}
		for _, m := range []*engine.ManualTx{t1, t2} {
			if _, err := m.Read(a1); err != nil {
				m.Abort()
				return false, nil
			}
			if _, err := m.Read(a2); err != nil {
				m.Abort()
				return false, nil
			}
		}
		if err := t1.Write(a1, -40); err != nil {
			return false, err
		}
		if err := t2.Write(a2, -40); err != nil {
			return false, err
		}
		err1 := t1.Commit()
		err2 := t2.Commit()
		return err1 == nil && err2 == nil, nil
	}
	for _, kind := range []engine.Kind{engine.SI, engine.SER, engine.SSI} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var anomalies int64
			for i := 0; i < b.N; i++ {
				db, err := engine.New(kind, engine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				both, err := stage(db, i)
				db.Close()
				if err != nil {
					b.Fatal(err)
				}
				if both {
					anomalies++
				}
			}
			b.ReportMetric(float64(anomalies)/float64(b.N), "anomalies/round")
			if kind != engine.SI && anomalies > 0 {
				b.Fatalf("%v realised %d write skews", kind, anomalies)
			}
			if kind == engine.SI && anomalies != int64(b.N) {
				b.Fatalf("SI realised only %d/%d write skews", anomalies, b.N)
			}
		})
	}
}
