// Package sian ("Snapshot Isolation ANalyser") is a library
// reproduction of Cerone & Gotsman, "Analysing Snapshot Isolation"
// (PODC 2016).
//
// It provides:
//
//   - the history and abstract-execution model of the paper (§2) with
//     checkable consistency axioms for serializability, snapshot
//     isolation (SI) and parallel snapshot isolation (PSI), plus the
//     prefix-consistency (PC) and generalised-SI (GSI) extensions;
//   - Adya-style dependency graphs and the dependency-graph
//     characterisations of all five models (Theorems 8, 9, 21 for the
//     paper's three; PC and GSI derived with the same technique),
//     including the constructive soundness direction of Theorem 10
//     (building an SI execution from a graph in GraphSI);
//   - a history certifier and anomaly classifier deciding which models
//     allow a recorded history;
//   - the transaction-chopping analyses of §5 (dynamic and static,
//     plus the Autochop optimiser) and the robustness analyses of §6;
//   - reference transactional engines (SI, serializable 2PL, PSI and
//     serializable-SI) whose recorded histories close the loop between
//     the operational and declarative definitions.
//
// The facade re-exports the most commonly used types and entry points;
// the implementation lives in the internal/ packages, one per
// subsystem (see DESIGN.md for the inventory).
package sian

import (
	"io"

	"sian/internal/check"
	"sian/internal/chopping"
	"sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/dot"
	"sian/internal/engine"
	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/robustness"
)

// Model/data types of §2–§3.
type (
	// Obj identifies a shared object.
	Obj = model.Obj
	// Value is the value domain of objects.
	Value = model.Value
	// Op is a read or write operation.
	Op = model.Op
	// Transaction is a sequence of operations.
	Transaction = model.Transaction
	// Session is an ordered list of transactions by one client.
	Session = model.Session
	// History is a set of sessions (T, SO).
	History = model.History
	// Execution is an abstract execution (H, VIS, CO).
	Execution = execution.Execution
	// Graph is an Adya-style dependency graph (T, SO, WR, WW, RW).
	Graph = depgraph.Graph
	// Model selects a consistency model (SER, SI or PSI).
	Model = depgraph.Model
)

// Consistency models. Beyond the paper's SER/SI/PSI: PC (prefix
// consistency) is the §7 future-work model, characterised here by
// acyclicity of ((SO ∪ WR) ; RW?) ∪ WW, and GSI is generalised SI [17]
// (SI without session guarantees), characterised by acyclicity of
// (WR ∪ WW) ; RW?; both are validated against their axiomatic
// definitions by exhaustive small-scope checking.
const (
	SER = depgraph.SER
	SI  = depgraph.SI
	PSI = depgraph.PSI
	PC  = depgraph.PC
	GSI = depgraph.GSI
)

// Read returns the operation read(x, n).
func Read(x Obj, n Value) Op { return model.Read(x, n) }

// Write returns the operation write(x, n).
func Write(x Obj, n Value) Op { return model.Write(x, n) }

// NewTransaction builds a transaction from operations in program
// order.
func NewTransaction(id string, ops ...Op) Transaction {
	return model.NewTransaction(id, ops...)
}

// NewHistory builds a history from sessions.
func NewHistory(sessions ...Session) *History { return model.NewHistory(sessions...) }

// NewGraph returns an empty dependency graph over a history; add WR
// and WW edges with its methods, RW is derived (Definition 5).
func NewGraph(h *History) *Graph { return depgraph.New(h) }

// Certification (Theorems 8, 9, 21).

// CertifyOptions configures Certify; see check.Options.
type CertifyOptions = check.Options

// CertifyResult is the outcome of Certify; see check.Result.
type CertifyResult = check.Result

// Certify decides whether a history is allowed by the given
// consistency model, returning a witness dependency graph on success.
// The zero options add an initialisation transaction writing 0 and use
// default search budgets.
func Certify(h *History, m Model, opts CertifyOptions) (*CertifyResult, error) {
	return check.Certify(h, m, opts)
}

// CertifyAll certifies the history against several models
// concurrently.
func CertifyAll(h *History, models []Model, opts CertifyOptions) (map[Model]*CertifyResult, error) {
	return check.CertifyAll(h, models, opts)
}

// Anomaly names the boundary class of a history across the model
// lattice.
type Anomaly = check.Anomaly

// AnomalyReport is the outcome of ClassifyHistory.
type AnomalyReport = check.Report

// ClassifyHistory certifies the history against the full model lattice
// (SER, SI, PSI, PC, GSI) and names its anomaly class — serializable,
// write skew, long fork, lost update, stale session read, or
// inconsistent.
func ClassifyHistory(h *History, opts CertifyOptions) (*AnomalyReport, error) {
	return check.Classify(h, opts)
}

// Theorem 10 constructions.

// BuildExecution constructs, from a dependency graph in GraphSI, an
// abstract execution satisfying the SI axioms whose dependency graph
// is the input (Theorem 10(i)).
func BuildExecution(g *Graph) (*Execution, error) { return core.BuildExecution(g) }

// VerifyExecution independently checks that x satisfies the SI axioms
// and that graph(x) = g — the full conclusion of Theorem 10(i).
func VerifyExecution(g *Graph, x *Execution) error { return core.Verify(g, x) }

// BuildExecutionPC is the prefix-consistency analogue of
// BuildExecution.
func BuildExecutionPC(g *Graph) (*Execution, error) { return core.BuildExecutionPC(g) }

// VerifyExecutionPC independently checks that x satisfies the PC
// axioms and that graph(x) = g.
func VerifyExecutionPC(g *Graph, x *Execution) error { return core.VerifyPC(g, x) }

// BuildExecutionGSI is the generalised-SI analogue of BuildExecution
// (SI without session guarantees).
func BuildExecutionGSI(g *Graph) (*Execution, error) { return core.BuildExecutionGSI(g) }

// VerifyExecutionGSI independently checks that x satisfies the GSI
// axioms and that graph(x) = g.
func VerifyExecutionGSI(g *Graph, x *Execution) error { return core.VerifyGSI(g, x) }

// Transaction chopping (§5).
type (
	// Piece is one piece of a chopped transaction (read/write sets).
	Piece = chopping.Piece
	// Program is a chopped transaction: an ordered list of pieces.
	Program = chopping.Program
	// ChoppingVerdict reports a static chopping analysis.
	ChoppingVerdict = chopping.Verdict
	// Criticality selects the critical-cycle notion (SER/SI/PSI).
	Criticality = chopping.Criticality
)

// Criticality levels for chopping analyses.
const (
	SERCritical = chopping.SERCritical
	SICritical  = chopping.SICritical
	PSICritical = chopping.PSICritical
)

// NewPiece builds a chopping piece from read and write sets.
func NewPiece(name string, reads, writes []Obj) Piece {
	return chopping.NewPiece(name, reads, writes)
}

// NewProgram builds a chopping program from pieces.
func NewProgram(name string, pieces ...Piece) Program {
	return chopping.NewProgram(name, pieces...)
}

// CheckChopping runs the static chopping analysis: Corollary 18 at
// SICritical, Theorem 29 at SERCritical, Theorem 31 at PSICritical.
func CheckChopping(programs []Program, level Criticality) (*ChoppingVerdict, error) {
	return chopping.CheckStatic(programs, level)
}

// SpliceResult reports the dynamic chopping check of Theorem 16.
type SpliceResult = chopping.SpliceResult

// CheckDynamicChopping applies Theorem 16 to a concrete dependency
// graph in GraphSI: when its dynamic chopping graph has no SI-critical
// cycle, the result carries the spliced dependency graph (guaranteed
// to be in GraphSI); otherwise it carries the critical cycle.
func CheckDynamicChopping(g *Graph) (*SpliceResult, error) {
	return chopping.CheckDynamic(g)
}

// Splice lifts a dependency graph to the spliced history per §5.
func Splice(g *Graph) (*Graph, error) { return chopping.Splice(g) }

// Autochop greedily coarsens the given (finest-granularity) programs
// until the static chopping graph has no critical cycle at the given
// level, returning a chopping that is provably correct under the
// corresponding model.
func Autochop(programs []Program, level Criticality) ([]Program, error) {
	return chopping.Autochop(programs, level)
}

// Robustness (§6).
type (
	// TxSpec is a transaction's static read/write sets.
	TxSpec = robustness.TxSpec
	// App is a set of sessions of transaction specs.
	App = robustness.App
)

// NewTxSpec builds a transaction specification.
func NewTxSpec(name string, reads, writes []Obj) TxSpec {
	return robustness.NewTxSpec(name, reads, writes)
}

// SingleTxApp builds an application with each transaction in its own
// session.
func SingleTxApp(txs ...TxSpec) App { return robustness.SingleTxApp(txs...) }

// RobustnessWitness is a dangerous cycle found by a robustness
// analysis.
type RobustnessWitness = robustness.Witness

// CheckSIRobust reports whether the application, run under SI, only
// produces serializable behaviour (§6.1). The witness is non-nil when
// not robust.
func CheckSIRobust(app App) (witness *RobustnessWitness, robust bool) {
	return robustness.CheckSIRobust(app)
}

// CheckPSIRobust reports whether the application, run under parallel
// SI, only produces SI behaviour (§6.2).
func CheckPSIRobust(app App) (witness *RobustnessWitness, robust bool) {
	return robustness.CheckPSIRobust(app)
}

// Classification places a dependency graph in the model lattice.
type Classification = robustness.Classification

// ClassifyGraph runs all three paper characterisations on a concrete
// dependency graph; SI && !SER is the Theorem 19 non-robustness
// witness shape, PSI && !SI the Theorem 22 one.
func ClassifyGraph(g *Graph) Classification { return robustness.Classify(g) }

// Graphviz rendering.

// WriteGraphDOT renders a dependency graph as Graphviz DOT.
func WriteGraphDOT(w io.Writer, g *Graph) error { return dot.Graph(w, g) }

// WriteExecutionDOT renders an abstract execution as Graphviz DOT.
func WriteExecutionDOT(w io.Writer, x *Execution) error { return dot.Execution(w, x) }

// Engines.
type (
	// DB is a reference transactional database (SI, SER or PSI).
	DB = engine.DB
	// EngineConfig tunes a DB.
	EngineConfig = engine.Config
	// EngineKind selects the concurrency-control protocol.
	EngineKind = engine.Kind
	// EngineSession is a client session on a DB.
	EngineSession = engine.Session
	// EngineTx is the transaction handle passed to Transact callbacks.
	EngineTx = engine.Tx
	// EngineManualTx is an explicitly controlled transaction (for
	// staging specific interleavings).
	EngineManualTx = engine.ManualTx
)

// Engine kinds.
const (
	EngineSI  = engine.SI
	EngineSER = engine.SER
	EnginePSI = engine.PSI
	EngineSSI = engine.SSI
)

// NewDB creates a reference transactional database of the given kind.
func NewDB(kind EngineKind, cfg EngineConfig) (*DB, error) { return engine.New(kind, cfg) }
