// Enginecert: run concurrent register workloads on all three reference
// engines, certify every recorded history against the engine's own
// consistency model, and stage the long-fork anomaly on the PSI engine
// to show PSI ⊋ SI operationally.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"sian"
)

func main() {
	for _, cfg := range []struct {
		kind  sian.EngineKind
		model sian.Model
	}{
		{sian.EngineSI, sian.SI},
		{sian.EngineSER, sian.SER},
		{sian.EnginePSI, sian.PSI},
		{sian.EngineSSI, sian.SER}, // SSI guarantees serializability
	} {
		h := runRegisters(cfg.kind)
		res, err := sian.Certify(h, cfg.model, sian.CertifyOptions{
			NoInit: true, PinInit: true, Budget: 5_000_000,
		})
		if err != nil {
			log.Fatalf("%v: %v", cfg.kind, err)
		}
		fmt.Printf("%-3v engine: %3d transactions recorded, certified %v: %v\n",
			cfg.kind, h.NumTransactions(), cfg.model, res.Member)
	}

	fmt.Println()
	stageLongFork()
}

// runRegisters drives four concurrent sessions of random reads and
// unique-valued writes and returns the recorded history.
func runRegisters(kind sian.EngineKind) *sian.History {
	db, err := sian.NewDB(kind, sian.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	objs := []sian.Obj{"k0", "k1", "k2"}
	init := make(map[sian.Obj]sian.Value, len(objs))
	for _, x := range objs {
		init[x] = 0
	}
	if err := db.Initialize(init); err != nil {
		log.Fatal(err)
	}
	var counter int64
	var mu sync.Mutex
	unique := func() sian.Value {
		mu.Lock()
		defer mu.Unlock()
		counter++
		return sian.Value(counter)
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		sess := db.Session(fmt.Sprintf("client%d", s))
		rng := rand.New(rand.NewSource(int64(s) + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := 0; t < 8; t++ {
				err := sess.Transact(func(tx *sian.EngineTx) error {
					for o := 0; o < 2; o++ {
						x := objs[rng.Intn(len(objs))]
						if rng.Intn(2) == 0 {
							if _, err := tx.Read(x); err != nil {
								return err
							}
						} else if err := tx.Write(x, unique()); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	db.Flush()
	return db.History()
}

// stageLongFork reproduces Figure 2(c) on the PSI engine with manual
// propagation: two sites write x and y concurrently; each site then
// reads both objects before the other site's write arrives. The
// resulting history is PSI-allowed but not SI-allowed.
func stageLongFork() {
	db, err := sian.NewDB(sian.EnginePSI, sian.EngineConfig{ManualPropagation: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[sian.Obj]sian.Value{"x": 0, "y": 0}); err != nil {
		log.Fatal(err)
	}
	siteA := db.Session("siteA")
	siteB := db.Session("siteB")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(siteA.Transact(func(tx *sian.EngineTx) error { return tx.Write("x", 1) }))
	must(siteB.Transact(func(tx *sian.EngineTx) error { return tx.Write("y", 1) }))
	readBoth := func(s *sian.EngineSession) (x, y sian.Value) {
		must(s.Transact(func(tx *sian.EngineTx) error {
			var err error
			if x, err = tx.Read("x"); err != nil {
				return err
			}
			y, err = tx.Read("y")
			return err
		}))
		return
	}
	ax, ay := readBoth(siteA)
	bx, by := readBoth(siteB)
	fmt.Printf("long fork staged on PSI: siteA sees (x=%d, y=%d), siteB sees (x=%d, y=%d)\n", ax, ay, bx, by)

	db.Flush()
	h := db.History()
	opts := sian.CertifyOptions{NoInit: true, PinInit: true, Budget: 1_000_000}
	psi, err := sian.Certify(h, sian.PSI, opts)
	if err != nil {
		log.Fatal(err)
	}
	si, err := sian.Certify(h, sian.SI, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded history: PSI-allowed=%v, SI-allowed=%v (long fork separates the models)\n",
		psi.Member, si.Member)
}
