// Models: a tour of the consistency-model lattice through its
// separating histories.
//
// The five models — serializability (SER), snapshot isolation (SI),
// parallel SI (PSI), prefix consistency (PC) and generalised SI (GSI)
// — are pairwise separated by four canonical histories:
//
//   - write skew     ∈ SI  \ SER  (Figure 2(d): NOCONFLICT-compatible
//     but not serializable)
//   - long fork      ∈ PSI \ SI   (Figure 2(c): violates PREFIX)
//   - lost update    ∈ PC  \ PSI  (Figure 2(b): violates NOCONFLICT)
//   - stale session  ∈ GSI \ SI   (a session reading its own past:
//     violates SESSION)
//
// Every verdict below is computed twice, in effect: the certifier uses
// the dependency-graph characterisations, and the repository's test
// suite validates those characterisations against the axiomatic
// definitions exhaustively on small scopes.
package main

import (
	"fmt"
	"log"

	"sian"
)

func main() {
	type row struct {
		name string
		h    *sian.History
		init sian.Value
	}
	rows := []row{
		{"serial increments", serial(), 0},
		{"write skew (Fig 2d)", writeSkew(), 60},
		{"long fork (Fig 2c)", longFork(), 0},
		{"lost update (Fig 2b)", lostUpdate(), 0},
		{"stale session read", staleSession(), 0},
	}
	models := []sian.Model{sian.SER, sian.SI, sian.PSI, sian.PC, sian.GSI}
	fmt.Printf("%-22s", "history")
	for _, m := range models {
		fmt.Printf(" %-6v", m)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-22s", r.name)
		for _, m := range models {
			res, err := sian.Certify(r.h, m, sian.CertifyOptions{
				PinInit: true, InitValue: r.init, Budget: 100000,
			})
			if err != nil {
				log.Fatalf("%s under %v: %v", r.name, m, err)
			}
			cell := "no"
			if res.Member {
				cell = "yes"
			}
			fmt.Printf(" %-6s", cell)
		}
		fmt.Println()
	}
}

func tx(id string, ops ...sian.Op) sian.Transaction { return sian.NewTransaction(id, ops...) }

func one(id string, t sian.Transaction) sian.Session {
	return sian.Session{ID: id, Transactions: []sian.Transaction{t}}
}

// serial: two increments in different sessions, second reads first —
// allowed everywhere.
func serial() *sian.History {
	return sian.NewHistory(
		one("a", tx("T1", sian.Read("x", 0), sian.Write("x", 1))),
		one("b", tx("T2", sian.Read("x", 1), sian.Write("x", 2))),
	)
}

func writeSkew() *sian.History {
	return sian.NewHistory(
		one("a", tx("T1", sian.Read("a1", 60), sian.Read("a2", 60), sian.Write("a1", -40))),
		one("b", tx("T2", sian.Read("a1", 60), sian.Read("a2", 60), sian.Write("a2", -40))),
	)
}

func longFork() *sian.History {
	return sian.NewHistory(
		one("a", tx("T1", sian.Write("x", 1))),
		one("b", tx("T2", sian.Write("y", 1))),
		one("c", tx("T3", sian.Read("x", 1), sian.Read("y", 0))),
		one("d", tx("T4", sian.Read("y", 1), sian.Read("x", 0))),
	)
}

func lostUpdate() *sian.History {
	return sian.NewHistory(
		one("a", tx("T1", sian.Read("acct", 0), sian.Write("acct", 50))),
		one("b", tx("T2", sian.Read("acct", 0), sian.Write("acct", 25))),
	)
}

// staleSession: one session writes x and then reads the value from
// before its own write — fine without session guarantees (GSI), banned
// by every strong-session model.
func staleSession() *sian.History {
	return sian.NewHistory(
		sian.Session{ID: "s", Transactions: []sian.Transaction{
			tx("T1", sian.Write("x", 1)),
			tx("T2", sian.Read("x", 0)),
		}},
	)
}
