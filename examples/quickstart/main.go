// Quickstart: build the write-skew history of Figure 2(d) by hand,
// certify it against serializability, snapshot isolation and parallel
// snapshot isolation, and construct the Theorem 10(i) execution
// certificate for SI.
package main

import (
	"fmt"
	"log"

	"sian"
)

func main() {
	// Two clients each check the combined balance of two accounts
	// (60 + 60 ≥ 100) and withdraw 100 from their own account — the
	// classic write skew.
	h := sian.NewHistory(
		sian.Session{ID: "alice", Transactions: []sian.Transaction{
			sian.NewTransaction("withdraw-1",
				sian.Read("acct1", 60), sian.Read("acct2", 60),
				sian.Write("acct1", -40)),
		}},
		sian.Session{ID: "bob", Transactions: []sian.Transaction{
			sian.NewTransaction("withdraw-2",
				sian.Read("acct1", 60), sian.Read("acct2", 60),
				sian.Write("acct2", -40)),
		}},
	)

	// Certify against each model. The default options add an
	// initialisation transaction; here the accounts start at 60, so we
	// set the initial value explicitly.
	opts := sian.CertifyOptions{PinInit: true, InitValue: 60, Budget: 100000}
	for _, m := range []sian.Model{sian.SER, sian.SI, sian.PSI, sian.PC} {
		res, err := sian.Certify(h, m, opts)
		if err != nil {
			log.Fatalf("certify %v: %v", m, err)
		}
		fmt.Printf("%-3v allows the write skew: %v\n", m, res.Member)
	}

	// For SI, build the abstract execution certificate of Theorem
	// 10(i): visibility and commit orders satisfying all SI axioms
	// whose dependency graph matches the witness.
	opts.BuildExecution = true
	res, err := sian.Certify(h, sian.SI, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := sian.VerifyExecution(res.Graph, res.Execution); err != nil {
		log.Fatalf("certificate verification failed: %v", err)
	}
	fmt.Printf("\nSI execution certificate verified: VIS has %d edges, CO has %d edges\n",
		res.Execution.VIS.Size(), res.Execution.CO.Size())
	fmt.Println("(the two withdrawals are unrelated by VIS — neither saw the other's write)")
}
