// Banking: the running example of §5 of the paper (Figures 4–6).
//
// A transfer between two accounts is chopped into two small
// transactions to shorten its conflict window. The static chopping
// analysis (Corollary 18) shows that the chopping is correct when the
// other transactions only read single accounts (Figure 6), and
// incorrect when a balance query reads both accounts atomically
// (Figure 5) — the query could observe a half-completed transfer.
package main

import (
	"fmt"
	"log"

	"sian"
)

func main() {
	acct1 := []sian.Obj{"acct1"}
	acct2 := []sian.Obj{"acct2"}
	both := []sian.Obj{"acct1", "acct2"}

	// The transfer chopped into two pieces (one per account).
	transfer := sian.NewProgram("transfer",
		sian.NewPiece("acct1=acct1-100", acct1, acct1),
		sian.NewPiece("acct2=acct2+100", acct2, acct2),
	)
	lookup1 := sian.NewProgram("lookup1", sian.NewPiece("return acct1", acct1, nil))
	lookup2 := sian.NewProgram("lookup2", sian.NewPiece("return acct2", acct2, nil))
	lookupAll := sian.NewProgram("lookupAll", sian.NewPiece("return acct1+acct2", both, nil))

	// Figure 6: per-account lookups — correct chopping.
	analyse("Figure 6: {transfer, lookup1, lookup2}",
		[]sian.Program{transfer, lookup1, lookup2})

	// Figure 5: atomic balance-sum lookup — incorrect chopping.
	analyse("Figure 5: {transfer, lookupAll}",
		[]sian.Program{transfer, lookupAll})

	// Appendix B.1 (Figure 11): a chopping correct under SI but NOT
	// under serializability — chopping analyses are model-specific.
	write1 := sian.NewProgram("write1",
		sian.NewPiece("var1=x", []sian.Obj{"x"}, nil),
		sian.NewPiece("y=var1", nil, []sian.Obj{"y"}),
	)
	write2 := sian.NewProgram("write2",
		sian.NewPiece("var2=y", []sian.Obj{"y"}, nil),
		sian.NewPiece("x=var2", nil, []sian.Obj{"x"}),
	)
	analyse("Figure 11: {write1, write2}", []sian.Program{write1, write2})

	// Figure 6 as engine code: the chopped transfer and the per-account
	// lookups written against the transaction API. `silint
	// ./examples/banking` extracts these sessions, re-derives the
	// Figure 6 programs, and confirms the chopping correct — exit 0.
	db, err := sian.NewDB(sian.EngineSI, sian.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[sian.Obj]sian.Value{"acct1": 300, "acct2": 0}); err != nil {
		log.Fatal(err)
	}
	teller := db.Session("teller")
	if err := teller.TransactNamed("debit", func(t *sian.EngineTx) error {
		v, err := t.Read("acct1")
		if err != nil {
			return err
		}
		return t.Write("acct1", v-100)
	}); err != nil {
		log.Fatal(err)
	}
	if err := teller.TransactNamed("credit", func(t *sian.EngineTx) error {
		v, err := t.Read("acct2")
		if err != nil {
			return err
		}
		return t.Write("acct2", v+100)
	}); err != nil {
		log.Fatal(err)
	}
	// The lookups live in sessions of their own: a multi-transaction
	// session is analysed as the chopping of one atomic transaction, and
	// reading both accounts in one session would be exactly Figure 5's
	// incorrect lookupAll (try it: silint reports the critical cycle).
	auditor1 := db.Session("auditor1")
	auditor2 := db.Session("auditor2")
	var v1, v2 sian.Value
	if err := auditor1.TransactNamed("lookup1", func(t *sian.EngineTx) error {
		var err error
		v1, err = t.Read("acct1")
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := auditor2.TransactNamed("lookup2", func(t *sian.EngineTx) error {
		var err error
		v2, err = t.Read("acct2")
		return err
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: after chopped transfer acct1=%d acct2=%d\n", v1, v2)
}

func analyse(title string, programs []sian.Program) {
	fmt.Println(title)
	for _, level := range []sian.Criticality{sian.SERCritical, sian.SICritical, sian.PSICritical} {
		verdict, err := sian.CheckChopping(programs, level)
		if err != nil {
			log.Fatalf("%v: %v", level, err)
		}
		if verdict.OK {
			fmt.Printf("  %-12v chopping correct\n", level)
		} else {
			fmt.Printf("  %-12v critical cycle: %s\n", level, verdict.Graph.DescribeCycle(verdict.Witness))
		}
	}
	fmt.Println()
}
