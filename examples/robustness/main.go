// Robustness: the §6 analyses end to end.
//
// First the static analysis shows the withdrawal application of Figure
// 2(d) is not robust against SI (write skew possible) and that the
// classical materialised-conflict fix makes it robust. The same broken
// application is then written as real code against the engine API —
// `silint ./examples/robustness` finds the write skew in it statically
// — and finally the anomaly is realised operationally on overlapping
// snapshots and the recorded history is certified SI-but-not-SER.
package main

import (
	"fmt"
	"log"

	"sian"
)

func main() {
	accounts := []sian.Obj{"acct1", "acct2"}

	// Static analysis of the broken application: each withdrawal reads
	// both accounts but writes only its own.
	broken := sian.SingleTxApp(
		sian.NewTxSpec("withdraw1", accounts, []sian.Obj{"acct1"}),
		sian.NewTxSpec("withdraw2", accounts, []sian.Obj{"acct2"}),
	)
	report("withdrawals (broken)", broken)

	// The fix: both withdrawals also update a common "total" object,
	// so SI's write-conflict detection serialises them.
	withTotal := append([]sian.Obj{"total"}, accounts...)
	fixed := sian.SingleTxApp(
		sian.NewTxSpec("withdraw1", withTotal, []sian.Obj{"acct1", "total"}),
		sian.NewTxSpec("withdraw2", withTotal, []sian.Obj{"acct2", "total"}),
	)
	report("withdrawals (materialised conflict)", fixed)

	// The broken application as engine code. Run sequentially the two
	// withdrawals are harmless, but the shape is exactly Figure 2(d):
	// silint extracts {acct1, acct2}/{acct1} and {acct1, acct2}/{acct2}
	// from these closures and reports the write skew statically.
	db, err := sian.NewDB(sian.EngineSI, sian.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[sian.Obj]sian.Value{"acct1": 60, "acct2": 60}); err != nil {
		log.Fatal(err)
	}
	alice := db.Session("alice")
	bob := db.Session("bob")
	if err := alice.TransactNamed("withdraw1", func(t *sian.EngineTx) error {
		v1, err := t.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := t.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return t.Write("acct1", v1-100)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := bob.TransactNamed("withdraw2", func(t *sian.EngineTx) error {
		v1, err := t.Read("acct1")
		if err != nil {
			return err
		}
		v2, err := t.Read("acct2")
		if err != nil {
			return err
		}
		if v1+v2 >= 100 {
			return t.Write("acct2", v2-100)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine: sequential withdrawals kept the invariant (only one succeeded)")

	// Operational demonstration of the anomaly on a fresh database:
	// stage the same two withdrawals on overlapping snapshots with
	// manual transactions.
	db2, err := sian.NewDB(sian.EngineSI, sian.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Initialize(map[sian.Obj]sian.Value{"acct1": 60, "acct2": 60}); err != nil {
		log.Fatal(err)
	}
	carol := db2.Session("carol")
	dan := db2.Session("dan")
	t1, err := carol.Begin("withdraw1-staged")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := dan.Begin("withdraw2-staged")
	if err != nil {
		log.Fatal(err)
	}
	v11, err := t1.Read("acct1")
	if err != nil {
		log.Fatal(err)
	}
	v12, err := t1.Read("acct2")
	if err != nil {
		log.Fatal(err)
	}
	v21, err := t2.Read("acct1")
	if err != nil {
		log.Fatal(err)
	}
	v22, err := t2.Read("acct2")
	if err != nil {
		log.Fatal(err)
	}
	if v11+v12 >= 100 {
		if err := t1.Write("acct1", v11-100); err != nil {
			log.Fatal(err)
		}
	}
	if v21+v22 >= 100 {
		if err := t2.Write("acct2", v22-100); err != nil {
			log.Fatal(err)
		}
	}
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine: both staged withdrawals committed under SI (write skew realised)")

	h := db2.History()
	opts := sian.CertifyOptions{NoInit: true, PinInit: true, Budget: 100000}
	si, err := sian.Certify(h, sian.SI, opts)
	if err != nil {
		log.Fatal(err)
	}
	ser, err := sian.Certify(h, sian.SER, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded history: SI-allowed=%v, serializable=%v\n", si.Member, ser.Member)
}

func report(name string, app sian.App) {
	if w, robust := sian.CheckSIRobust(app); robust {
		fmt.Printf("%s: ROBUST against SI — only serializable behaviour\n", name)
	} else {
		fmt.Printf("%s: NOT robust against SI — dangerous cycle %s\n", name, w)
	}
}
