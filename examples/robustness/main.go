// Robustness: the §6 analyses end to end.
//
// First the static analysis shows the withdrawal application of Figure
// 2(d) is not robust against SI (write skew possible) and that the
// classical materialised-conflict fix makes it robust. Then the SI
// reference engine demonstrates the anomaly operationally, and the
// recorded history is certified SI-but-not-SER.
package main

import (
	"fmt"
	"log"

	"sian"
)

func main() {
	accounts := []sian.Obj{"acct1", "acct2"}

	// Static analysis of the broken application: each withdrawal reads
	// both accounts but writes only its own.
	broken := sian.SingleTxApp(
		sian.NewTxSpec("withdraw1", accounts, []sian.Obj{"acct1"}),
		sian.NewTxSpec("withdraw2", accounts, []sian.Obj{"acct2"}),
	)
	report("withdrawals (broken)", broken)

	// The fix: both withdrawals also update a common "total" object,
	// so SI's write-conflict detection serialises them.
	withTotal := append([]sian.Obj{"total"}, accounts...)
	fixed := sian.SingleTxApp(
		sian.NewTxSpec("withdraw1", withTotal, []sian.Obj{"acct1", "total"}),
		sian.NewTxSpec("withdraw2", withTotal, []sian.Obj{"acct2", "total"}),
	)
	report("withdrawals (materialised conflict)", fixed)

	// Operational demonstration on the SI reference engine: stage the
	// two withdrawals on overlapping snapshots.
	db, err := sian.NewDB(sian.EngineSI, sian.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[sian.Obj]sian.Value{"acct1": 60, "acct2": 60}); err != nil {
		log.Fatal(err)
	}
	alice := db.Session("alice")
	bob := db.Session("bob")
	t1, err := alice.Begin("withdraw1")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := bob.Begin("withdraw2")
	if err != nil {
		log.Fatal(err)
	}
	withdraw := func(t interface {
		Read(sian.Obj) (sian.Value, error)
		Write(sian.Obj, sian.Value) error
	}, own sian.Obj) {
		v1, err := t.Read("acct1")
		if err != nil {
			log.Fatal(err)
		}
		v2, err := t.Read("acct2")
		if err != nil {
			log.Fatal(err)
		}
		if v1+v2 >= 100 {
			ownVal := v1
			if own == "acct2" {
				ownVal = v2
			}
			if err := t.Write(own, ownVal-100); err != nil {
				log.Fatal(err)
			}
		}
	}
	withdraw(t1, "acct1")
	withdraw(t2, "acct2")
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine: both withdrawals committed under SI (write skew realised)")

	h := db.History()
	opts := sian.CertifyOptions{NoInit: true, PinInit: true, Budget: 100000}
	si, err := sian.Certify(h, sian.SI, opts)
	if err != nil {
		log.Fatal(err)
	}
	ser, err := sian.Certify(h, sian.SER, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded history: SI-allowed=%v, serializable=%v\n", si.Member, ser.Member)
}

func report(name string, app sian.App) {
	if w, robust := sian.CheckSIRobust(app); robust {
		fmt.Printf("%s: ROBUST against SI — only serializable behaviour\n", name)
	} else {
		fmt.Printf("%s: NOT robust against SI — dangerous cycle %s\n", name, w)
	}
}
