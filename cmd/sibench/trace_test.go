package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/engine"
	"sian/internal/obs/ledger"
	"sian/internal/obs/txtrace"
	"sian/internal/siwire"
	"sian/internal/storage/wal"
)

// startTracedWireServer is startWireServer with server-side
// transaction tracing on, standing in for `siserve -trace-txns`.
func startTracedWireServer(t *testing.T) (string, *txtrace.Tracer) {
	t.Helper()
	tracer := txtrace.New(txtrace.Options{})
	drv, err := wal.Open(wal.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv, TxTracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	srv := siwire.NewServer(siwire.ServerConfig{DB: db})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return ln.Addr().String(), tracer
}

// TestTraceTxnsInProcess runs -trace-txns against the in-process
// engine: the stage table prints and the ledger entry carries the
// per-stage breakdown without disturbing the headline metrics.
func TestTraceTxnsInProcess(t *testing.T) {
	ledgerPath := filepath.Join(t.TempDir(), "ledger.ndjson")
	var out, errw bytes.Buffer
	code, err := run([]string{
		"-workload", "closedloop", "-sessions", "2", "-txs", "15", "-objects", "4",
		"-trace-txns", "-ledger", ledgerPath,
	}, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("run: %d, %v\n%s\n%s", code, err, out.String(), errw.String())
	}
	text := out.String()
	if !strings.Contains(text, "trace: per-stage latency") {
		t.Errorf("no stage table in:\n%s", text)
	}
	for _, stage := range []string{"begin_wait", "validate", "publish", "ack"} {
		if !strings.Contains(text, stage) {
			t.Errorf("stage %s missing from table:\n%s", stage, text)
		}
	}

	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := entries[0].Report
	if len(rep.Stages) == 0 {
		t.Fatal("ledger entry has no stages")
	}
	byStage := map[string]ledger.StageLatency{}
	for _, s := range rep.Stages {
		byStage[s.Stage] = s
	}
	if byStage["ack"].Count < 2*15 {
		t.Errorf("ack count = %d, want ≥ %d", byStage["ack"].Count, 2*15)
	}
	if rep.Commits < 2*15 || rep.TxsPerSec <= 0 {
		t.Errorf("headline metrics disturbed: %+v", rep)
	}
}

// TestTraceTxnsNetworkMerged drives a traced client against a traced
// server: stage tables carry both the wire and pipeline stages, the
// -timeline dump is the merged Perfetto document, and the server's
// tracer resolves the client-minted IDs.
func TestTraceTxnsNetworkMerged(t *testing.T) {
	addr, srvTracer := startTracedWireServer(t)
	dir := t.TempDir()
	timelinePath := filepath.Join(dir, "merged.json")
	ledgerPath := filepath.Join(dir, "ledger.ndjson")

	var out, errw bytes.Buffer
	code, err := run([]string{
		"-addr", addr, "-workload", "closedloop", "-sessions", "2", "-txs", "10",
		"-objects", "4", "-trace-txns", "-timeline", timelinePath, "-ledger", ledgerPath,
	}, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("run: %d, %v\n%s\n%s", code, err, out.String(), errw.String())
	}
	text := out.String()
	for _, stage := range []string{"wire_begin", "wire_commit", "fsync_wait", "publish"} {
		if !strings.Contains(text, stage) {
			t.Errorf("stage %s missing from merged table:\n%s", stage, text)
		}
	}

	// The merged timeline parses and holds both process tracks.
	raw, err := os.ReadFile(timelinePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Pid  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
	}
	if !pids[1] || !pids[2] {
		t.Errorf("timeline pids = %v, want client (1) and server (2)", pids)
	}

	// Every committed client trace resolves on the server too: the IDs
	// crossed the wire.
	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := entries[0].Report
	if len(rep.Stages) == 0 {
		t.Error("network ledger entry has no stages")
	}
	if _, finished, _ := srvTracer.Stats(); finished < rep.Commits {
		t.Errorf("server finished %d traces for %d commits", finished, rep.Commits)
	}
}

// TestTraceTxnsFlagValidation pins the new exclusions: -trace-txns
// rejects -sweep, and network -timeline requires -trace-txns.
func TestTraceTxnsFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "closedloop", "-sweep", "1,2", "-trace-txns"},
		{"-addr", "127.0.0.1:1", "-workload", "closedloop", "-timeline", "x.json"},
	} {
		var out, errw bytes.Buffer
		if code, err := run(args, &out, &errw); err == nil || code != 2 {
			t.Errorf("run(%v) = %d, %v; want code 2 and an error", args, code, err)
		}
	}
}
