package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/monitor"
	"sian/internal/obs/eventlog"
	"sian/internal/workload"
)

// TestRunSweep is the -sweep acceptance path: the closed-loop workload
// repeated at each GOMAXPROCS value, certified, with a sibench/v2
// scaling table in the JSON artifact.
func TestRunSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sweep", "1,2", "-sessions", "4", "-txs", "15", "-objects", "8",
		"-certify", "-bench-json", path,
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"sweep procs=1", "sweep procs=2", "scaling: procs=2", "history certified"} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench JSON does not parse: %v\n%s", err, raw)
	}
	if rep.Schema != benchSchema {
		t.Errorf("schema = %q, want %s", rep.Schema, benchSchema)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("sweep points = %d, want 2", len(rep.Sweep))
	}
	for _, pt := range rep.Sweep {
		if pt.Commits != 4*15 {
			t.Errorf("procs=%d commits = %d, want %d", pt.Procs, pt.Commits, 4*15)
		}
		if pt.TxsPerSec <= 0 {
			t.Errorf("procs=%d txs/sec = %v", pt.Procs, pt.TxsPerSec)
		}
	}
	if rep.TxsPerSec <= 0 || rep.Commits <= 0 {
		t.Errorf("headline fields not populated: %+v", rep)
	}
}

func TestRunSweepRequiresClosedloop(t *testing.T) {
	_, err := run([]string{
		"-engine", "si", "-workload", "registers", "-sweep", "1,2",
	}, new(bytes.Buffer), new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "closedloop") {
		t.Fatalf("err = %v, want closedloop requirement", err)
	}
}

func TestParseSweep(t *testing.T) {
	t.Parallel()
	got, err := parseSweep("1, 2,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Errorf("parseSweep = %v", got)
	}
	for _, bad := range []string{"", "0", "a", "1,,2", "-3"} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q) accepted", bad)
		}
	}
}

// TestConcurrentDifferentialCertification is the safety net for the
// multicore engine: every concurrent benchmark configuration must emit
// histories the offline checker certifies as SI *and* event streams
// the online monitor agrees on. Run under -race in CI, this pins the
// sharded-store/lock-free-begin engine to the paper's SI definition on
// real concurrent executions, not just the deterministic fixtures.
func TestConcurrentDifferentialCertification(t *testing.T) {
	t.Parallel()
	configs := []struct {
		name string
		cfg  workload.ClosedLoopConfig
	}{
		{"disjoint", workload.ClosedLoopConfig{Sessions: 4, Ops: 20, Objects: 4, Disjoint: true, Seed: 1}},
		{"shared", workload.ClosedLoopConfig{Sessions: 4, Ops: 20, Objects: 8, Seed: 2}},
		{"hotkeys", workload.ClosedLoopConfig{Sessions: 6, Ops: 15, Objects: 32, HotKeys: 2, Seed: 3}},
		{"writeheavy", workload.ClosedLoopConfig{Sessions: 4, Ops: 20, Objects: 6, ReadFraction: 100, Seed: 4}},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rec := eventlog.NewRecorder(1 << 17)
			db, err := engine.New(engine.SI, engine.Config{Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			out, err := workload.RunClosedLoop(db, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.Commits == 0 {
				t.Fatal("workload committed nothing")
			}
			db.Flush()

			// Offline: the complete recorded history must be SI.
			res, err := check.Certify(db.History(), depgraph.SI, check.Options{
				NoInit: true, PinInit: true, Budget: 5_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Member {
				t.Fatalf("history not allowed by SI: %v", res.Explain)
			}

			// Online: the monitor over the recorded event stream must
			// agree, definitively (no window, so verdicts are exact).
			if dropped := rec.Dropped(); dropped > 0 {
				t.Fatalf("recorder dropped %d events; raise the ring capacity", dropped)
			}
			mon := monitor.New(monitor.Config{Model: depgraph.SI})
			for _, ev := range rec.Events() {
				mon.Ingest(ev)
			}
			rep, err := mon.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Member {
				for _, v := range rep.Violations {
					t.Logf("violation: %v", v)
				}
				t.Fatalf("monitor rejects the stream the checker certified (%d events, %d commits)",
					rep.Events, rep.Commits)
			}
			if !rep.Definitive {
				t.Error("unwindowed monitor verdict should be definitive")
			}
			if int64(rep.Commits) != out.Commits+1 {
				t.Errorf("monitor saw %d commits, engine counted %d (+1 init = %d)",
					rep.Commits, out.Commits, out.Commits+1)
			}
		})
	}
}

// TestSweepDisjointScalesConflictFree checks the scaling workload's
// defining property end to end through the CLI: disjoint pools must
// produce zero conflicts and zero retries at every sweep point.
func TestSweepDisjointScalesConflictFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sweep", "1,2", "-sessions", "4", "-txs", "25", "-objects", "4",
		"-disjoint", "-bench-json", path,
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	for _, pt := range rep.Sweep {
		if pt.Conflicts != 0 || pt.Retries != 0 {
			t.Errorf("procs=%d: conflicts=%d retries=%d on disjoint pools",
				pt.Procs, pt.Conflicts, pt.Retries)
		}
	}
}
