package main

import (
	"fmt"
	"io"
	"time"

	"sian/internal/obs/ledger"
	"sian/internal/obs/txtrace"
)

// printStageTable prints the -trace-txns per-stage latency breakdown:
// one row per commit-pipeline (or wire round-trip) stage, in pipeline
// order.
func printStageTable(w io.Writer, stages []txtrace.StageLatency) {
	if len(stages) == 0 {
		fmt.Fprintln(w, "trace: no finished traces")
		return
	}
	fmt.Fprintln(w, "trace: per-stage latency (pipeline order)")
	fmt.Fprintf(w, "  %-12s %10s %12s %12s\n", "stage", "count", "p50", "p99")
	for _, s := range stages {
		fmt.Fprintf(w, "  %-12s %10d %12v %12v\n", s.Stage, s.Count,
			time.Duration(s.P50NS).Round(time.Microsecond),
			time.Duration(s.P99NS).Round(time.Microsecond))
	}
}

// ledgerStages converts the tracer's per-stage aggregates into the
// ledger report schema.
func ledgerStages(stages []txtrace.StageLatency) []ledger.StageLatency {
	if len(stages) == 0 {
		return nil
	}
	out := make([]ledger.StageLatency, len(stages))
	for i, s := range stages {
		out[i] = ledger.StageLatency{Stage: string(s.Stage), Count: s.Count, P50NS: s.P50NS, P99NS: s.P99NS}
	}
	return out
}
