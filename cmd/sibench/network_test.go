package main

import (
	"bytes"
	"net"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/engine"
	"sian/internal/obs/ledger"
	"sian/internal/siwire"
	"sian/internal/storage/wal"
)

// startWireServer runs an in-process siwire server over a WAL-backed
// SI engine, standing in for a remote siserve.
func startWireServer(t *testing.T) string {
	t.Helper()
	drv, err := wal.Open(wal.Options{Dir: t.TempDir(), NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	srv := siwire.NewServer(siwire.ServerConfig{
		DB: db,
		Info: func() siwire.Info {
			return siwire.Info{Name: "siserve", Engine: "si", GitRev: "feedc0de1234", Durable: true}
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return ln.Addr().String()
}

// TestNetworkMode drives the full sibench pipeline against a live
// server: the closed-loop runs over the wire, the report carries mode
// "network" plus the server's revision, and the ledger entry
// round-trips both.
func TestNetworkMode(t *testing.T) {
	addr := startWireServer(t)
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.ndjson")
	benchPath := filepath.Join(dir, "bench.json")

	var out, errw bytes.Buffer
	args := []string{
		"-addr", addr, "-workload", "closedloop", "-sessions", "3", "-txs", "20",
		"-objects", "8", "-ledger", ledgerPath, "-bench-json", benchPath,
	}
	code, err := run(args, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("run: %d, %v\nstdout: %s\nstderr: %s", code, err, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "network closedloop: ") {
		t.Errorf("stdout: %s", out.String())
	}

	entries, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger entries: %d", len(entries))
	}
	rep := entries[0].Report
	if rep.Mode != "network" {
		t.Errorf("mode = %q, want network", rep.Mode)
	}
	if rep.ServerRev != "feedc0de1234" {
		t.Errorf("server_rev = %q", rep.ServerRev)
	}
	if rep.Commits != 3*20 {
		t.Errorf("commits = %d, want 60", rep.Commits)
	}
	if rep.TxsPerSec <= 0 || rep.P50CommitLatencyNS <= 0 {
		t.Errorf("throughput/latency not measured: %+v", rep)
	}

	// A second run comparing against the ledger gates network-vs-
	// network and passes (same conditions, generous threshold).
	out.Reset()
	args = append(args, "-compare", ledgerPath, "-compare-threshold", "0.99")
	code, err = run(args, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("compare run: %d, %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "compare: ok") {
		t.Errorf("compare output: %s", out.String())
	}
}

// TestNetworkModeFlagValidation pins the -addr flag exclusions.
func TestNetworkModeFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-addr", "127.0.0.1:1", "-workload", "registers"},
		{"-addr", "127.0.0.1:1", "-workload", "closedloop", "-certify"},
		{"-addr", "127.0.0.1:1", "-workload", "closedloop", "-sweep", "1,2"},
		{"-addr", "127.0.0.1:1", "-workload", "closedloop", "-engine", "psi"},
	} {
		var out, errw bytes.Buffer
		if code, err := run(args, &out, &errw); err == nil || code != 2 {
			t.Errorf("run(%v) = %d, %v; want code 2 and an error", args, code, err)
		}
	}
}
