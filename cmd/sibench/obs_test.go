package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMetricsDump is the acceptance path: sibench -engine si
// -workload smallbank -metrics - must print the Prometheus registry
// including the commit-latency histogram buckets.
func TestRunMetricsDump(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "smallbank",
		"-sessions", "2", "-txs", "5", "-accounts", "4",
		"-metrics", "-",
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"# TYPE engine_commits_total counter",
		"# TYPE engine_commit_latency_ns histogram",
		`engine_commit_latency_ns_bucket{engine="SI",le="+Inf"}`,
		`engine_commit_latency_ns_sum{engine="SI"}`,
		`engine_snapshot_age_ns_count{engine="SI"}`,
		`engine_sessions{engine="SI"}`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, s)
		}
	}
}

// TestRunTrace checks -trace prints phase timing lines on stderr.
func TestRunTrace(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "registers",
		"-sessions", "2", "-txs", "5", "-certify", "-trace",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	es := errOut.String()
	for _, want := range []string{"trace: phase=", "workload", "extension-search"} {
		if !strings.Contains(es, want) {
			t.Errorf("stderr missing %q:\n%s", want, es)
		}
	}
}

// TestRunBenchJSON checks -bench-json writes a parseable summary with
// throughput and latency quantiles.
func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "smallbank",
		"-sessions", "2", "-txs", "5", "-accounts", "4",
		"-bench-json", path,
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench JSON does not parse: %v\n%s", err, raw)
	}
	if rep.Schema != benchSchema {
		t.Errorf("schema = %q, want %s", rep.Schema, benchSchema)
	}
	if rep.GOMAXPROCS <= 0 {
		t.Errorf("gomaxprocs = %d, want > 0", rep.GOMAXPROCS)
	}
	if rep.Engine != "si" || rep.Workload != "smallbank" {
		t.Errorf("identity = %s/%s, want si/smallbank", rep.Engine, rep.Workload)
	}
	if rep.Commits <= 0 {
		t.Errorf("commits = %d, want > 0", rep.Commits)
	}
	if rep.TxsPerSec <= 0 {
		t.Errorf("txs_per_sec = %v, want > 0", rep.TxsPerSec)
	}
	if rep.P50CommitLatencyNS <= 0 || rep.P99CommitLatencyNS < rep.P50CommitLatencyNS {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", rep.P50CommitLatencyNS, rep.P99CommitLatencyNS)
	}
}

// TestRunMetricsJSONFile checks a *.json -metrics path selects the
// JSON exporter.
func TestRunMetricsJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "ser", "-workload", "registers",
		"-sessions", "2", "-txs", "5",
		"-metrics", path,
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []map[string]any
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(metrics) == 0 {
		t.Error("metrics JSON is empty")
	}
}
