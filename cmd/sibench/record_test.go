package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/histio"
	"sian/internal/obs/eventlog"
)

// TestRunRecordAndTimeline is the flight-recorder acceptance path:
// -record must emit NDJSON that decodes back into events, and
// -timeline must emit well-formed Chrome trace JSON with per-session
// timelines.
func TestRunRecordAndTimeline(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	recPath := filepath.Join(dir, "events.ndjson")
	tlPath := filepath.Join(dir, "timeline.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "registers",
		"-sessions", "2", "-txs", "5", "-ops", "2", "-objects", "3",
		"-record", recPath, "-timeline", tlPath,
	}, &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "recorded ") {
		t.Errorf("no record confirmation in output:\n%s", out.String())
	}

	f, err := os.Open(recPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := histio.DecodeEvents(f)
	if err != nil {
		t.Fatalf("decode recorded NDJSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var commits int
	sessions := map[string]bool{}
	for i, ev := range events {
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("event %d: seq %d not increasing after %d", i, ev.Seq, events[i-1].Seq)
		}
		sessions[ev.Session] = true
		if ev.Kind == eventlog.Commit {
			commits++
		}
	}
	if commits == 0 {
		t.Error("no commit events recorded")
	}
	if len(sessions) < 2 {
		t.Errorf("sessions in recording = %d, want at least the 2 workers", len(sessions))
	}

	raw, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("timeline has no trace events")
	}
	var haveComplete bool
	for _, te := range trace.TraceEvents {
		if te.Phase == "X" {
			haveComplete = true
		}
	}
	if !haveComplete {
		t.Error("timeline has no complete ('X') spans")
	}
}

// TestRunRecordDefaultCapWarning: an over-tight ring capacity drops
// events and must warn rather than silently truncate.
func TestRunRecordCapDropsWarn(t *testing.T) {
	t.Parallel()
	recPath := filepath.Join(t.TempDir(), "events.ndjson")
	var out, errOut bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "registers",
		"-sessions", "2", "-txs", "10", "-ops", "3", "-objects", "3",
		"-record", recPath, "-record-cap", "4",
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut.String(), "overwrote") {
		t.Errorf("no overwrite warning on stderr:\n%s", errOut.String())
	}
}
