// Command sibench exercises the reference transactional engines (SI,
// SER, PSI) with the built-in workloads, reports commit/conflict
// statistics, and optionally certifies the recorded history against
// the engine's own consistency model.
//
// Usage:
//
//	sibench -engine si|ser|psi|ssi -workload registers|writeskew|transfers|longfork|banking|smallbank
//	        [-sessions N] [-txs N] [-ops N] [-objects N] [-rounds N]
//	        [-accounts N] [-hops N] [-chopped] [-seed N] [-certify]
//
// Exit status 0 on success, 1 when -certify fails, 2 on usage or
// processing errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sibench:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("sibench", flag.ContinueOnError)
	engineFlag := fs.String("engine", "si", "engine: si, ser, psi or ssi")
	workloadFlag := fs.String("workload", "registers", "workload: registers, writeskew, transfers, longfork, banking or smallbank")
	sessions := fs.Int("sessions", 4, "concurrent sessions")
	txs := fs.Int("txs", 50, "transactions per session (registers)")
	ops := fs.Int("ops", 3, "operations per transaction (registers)")
	objects := fs.Int("objects", 4, "object pool size (registers)")
	rounds := fs.Int("rounds", 50, "rounds (writeskew)")
	accounts := fs.Int("accounts", 8, "account pool size (transfers)")
	hops := fs.Int("hops", 4, "accounts per transfer (transfers)")
	transfers := fs.Int("transfers", 20, "transfers per session (transfers)")
	chopped := fs.Bool("chopped", false, "run transfers chopped into one transaction per account")
	seed := fs.Int64("seed", 1, "workload seed")
	atomicLookup := fs.Bool("atomic-lookup", false, "banking: query both accounts in one transaction (the incorrect Figure 5 chopping)")
	certify := fs.Bool("certify", false, "certify the recorded history against the engine's model")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	kind, m, err := selectEngine(*engineFlag)
	if err != nil {
		return 2, err
	}
	cfg := engine.Config{}
	if *workloadFlag == "longfork" {
		cfg.ManualPropagation = true
	}
	db, err := engine.New(kind, cfg)
	if err != nil {
		return 2, err
	}
	defer db.Close()

	start := time.Now()
	var h *model.History
	switch *workloadFlag {
	case "registers":
		h, err = workload.RunRegisters(db, workload.RegistersConfig{
			Sessions: *sessions, TxPerSession: *txs, OpsPerTx: *ops,
			Objects: *objects, Seed: *seed,
		})
	case "writeskew":
		var out *workload.WriteSkewOutcome
		out, err = workload.RunWriteSkew(db, *rounds)
		if err == nil {
			fmt.Fprintf(stdout, "write-skew anomalies: %d / %d rounds\n", out.Anomalies, out.Rounds)
			db.Flush()
			h = db.History()
		}
	case "transfers":
		var out *workload.TransferOutcome
		out, err = workload.RunTransfers(db, workload.TransferConfig{
			Sessions: *sessions, Transfers: *transfers, Accounts: *accounts,
			Hops: *hops, Chopped: *chopped, Seed: *seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "transfers: %d commits, %d conflict aborts\n", out.Commits, out.Conflicts)
			db.Flush()
			h = db.History()
		}
	case "longfork":
		if kind != engine.PSI {
			return 2, fmt.Errorf("workload longfork requires -engine psi")
		}
		h, err = workload.StageLongFork(db)
	case "smallbank":
		var out *workload.SmallBankOutcome
		out, err = workload.RunSmallBank(db, workload.SmallBankConfig{
			Customers: *accounts / 2, Sessions: *sessions, TxPerSession: *txs, Seed: *seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "smallbank: %d operations, %d overdrawn customers\n", out.Operations, out.Overdrafts)
			db.Flush()
			h = db.History()
		}
	case "banking":
		h, err = workload.StageBankingChopped(db, *atomicLookup)
		if err == nil {
			spliced, serr := check.Certify(h.Splice(), m, check.Options{
				AddInit: false, PinInit: true, Budget: 1_000_000,
			})
			if serr != nil {
				return 2, serr
			}
			fmt.Fprintf(stdout, "spliced history allowed by %v: %v\n", m, spliced.Member)
		}
	default:
		return 2, fmt.Errorf("unknown workload %q", *workloadFlag)
	}
	if err != nil {
		return 2, err
	}
	elapsed := time.Since(start)

	stats := db.Stats()
	fmt.Fprintf(stdout, "engine=%s workload=%s commits=%d conflicts=%d elapsed=%v\n",
		kind, *workloadFlag, stats.Commits, stats.Conflicts, elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "history: %d sessions, %d transactions\n", h.NumSessions(), h.NumTransactions())

	if *certify {
		res, err := check.Certify(h, m, check.Options{AddInit: false, PinInit: true, Budget: 10_000_000})
		if err != nil {
			return 2, fmt.Errorf("certify: %w", err)
		}
		if !res.Member {
			fmt.Fprintf(stdout, "CERTIFICATION FAILED: history not allowed by %v\n", m)
			return 1, nil
		}
		fmt.Fprintf(stdout, "history certified %v (%d candidate graphs examined)\n", m, res.Examined)
	}
	return 0, nil
}

func selectEngine(s string) (engine.Kind, depgraph.Model, error) {
	switch s {
	case "si":
		return engine.SI, depgraph.SI, nil
	case "ser":
		return engine.SER, depgraph.SER, nil
	case "psi":
		return engine.PSI, depgraph.PSI, nil
	case "ssi":
		// SSI guarantees serializable histories; certify against SER.
		return engine.SSI, depgraph.SER, nil
	default:
		return 0, 0, fmt.Errorf("unknown engine %q (want si, ser, psi or ssi)", s)
	}
}
