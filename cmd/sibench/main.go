// Command sibench exercises the reference transactional engines (SI,
// SER, PSI) with the built-in workloads, reports commit/conflict
// statistics, and optionally certifies the recorded history against
// the engine's own consistency model.
//
// Usage:
//
//	sibench -engine si|ser|psi|ssi -workload registers|writeskew|transfers|longfork|banking|smallbank|closedloop
//	        [-sessions N] [-txs N] [-ops N] [-objects N] [-rounds N]
//	        [-accounts N] [-hops N] [-chopped] [-seed N] [-certify]
//	        [-duration D] [-hotkeys N] [-disjoint] [-sweep 1,2,4]
//	        [-sweep-reps N] [-parallel N] [-trace] [-metrics file|-]
//	        [-bench-json file] [-ledger file.ndjson] [-compare file]
//	        [-compare-threshold F] [-serve addr] [-pprof addr]
//	        [-record file.ndjson] [-timeline file.json]
//	        [-addr host:port] [-trace-txns]
//
// The closedloop workload is the concurrent benchmark driver: one
// goroutine per session, each firing its next transaction the moment
// the previous one finishes. -disjoint gives each session a private
// object pool (the scaling workload); -hotkeys N skews accesses onto N
// shared objects (the contention workload); -duration bounds the run
// by wall clock instead of -txs. -sweep 1,2,4 repeats the workload at
// each GOMAXPROCS value against a fresh database and reports the
// scaling table (recorded under the sweep key of -bench-json).
//
// -metrics dumps the metrics registry (engine counters,
// commit-latency and snapshot-age histograms, phase durations) on
// exit in Prometheus text format ('-' for stdout, *.json for JSON).
// In a sweep the dump reflects the last point's registry (each point
// gets a fresh one). -trace prints per-phase timing lines on stderr.
// -bench-json writes a machine-readable benchmark summary
// (throughput, p50/p99 commit latency) to the named file. -pprof
// serves net/http/pprof on the given address (for example
// localhost:6060) for the duration of the run.
//
// -record attaches a flight recorder to the engine and dumps the
// transactional event stream as NDJSON on exit — feed it to simon for
// online certification. -timeline renders the same stream (plus the
// -trace certifier phases) as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. -record-cap bounds
// the recorder ring (older events are overwritten beyond it).
//
// -serve starts the live observability plane (internal/obs/obshttp)
// for the duration of the run: /metrics, /metrics.json, /healthz, an
// /events SSE tail of the flight recorder (attached automatically
// while serving), /timeline and /debug/pprof — so a long -duration or
// -sweep run can be watched from a browser or curl while in flight.
//
// -addr switches sibench into network client mode: instead of an
// in-process engine it drives a running siserve (cmd/siserve) over the
// siwire binary protocol, one client connection per session running
// the closed-loop workload with client-side conflict retry. The
// report then carries mode "network" and the server's git revision
// (from its info document), and -compare baselines match mode — a
// ledger shared between in-process and network runs always gates like
// against like. -certify, -sweep and -record are unavailable in
// network mode (there is no in-process engine); -timeline is available
// only together with -trace-txns, where it renders the merged
// client+server transaction traces instead of the engine event stream.
//
// -trace-txns traces every transaction's commit pipeline
// (internal/obs/txtrace) and prints a per-stage p50/p99 table after
// the run; the breakdown also lands in the bench report and ledger
// entry (stages field — old ledger lines parse unchanged, and
// -compare keeps gating only the headline throughput metrics).
// In-process it times begin, validation, WAL append, fsync wait,
// publish and ack inside the engine. Against -addr the client
// propagates its trace IDs inside the siwire frames, the server sends
// its pipeline spans back on the commit response, and each trace
// merges the client's wire round-trip spans with the server's
// pipeline spans — -timeline then writes the merged rows as
// Perfetto-loadable Chrome trace JSON, and /trace/{id} on either
// side's -serve plane resolves the same IDs. Incompatible with -sweep
// (each sweep point would need its own tracer; trace one point
// directly instead).
//
// -ledger appends the run's report plus provenance (git revision,
// host fingerprint, GOMAXPROCS) as one NDJSON line to the named run
// ledger. -compare loads a baseline — a ledger file (newest matching
// entry) or a single bench-report JSON like BENCH_sibench.json — and
// compares the fresh run's throughput metrics against it, printing a
// per-metric delta table; a gating metric falling more than
// -compare-threshold (fraction, default 0.3) below the baseline makes
// the run exit 1. The comparison runs before the -ledger append, so
// pointing both flags at the same file gates each run against the
// previous one. -sweep-reps N repeats every sweep point N times and
// records the median-throughput repetition, so one noisy run cannot
// poison the ledger or trip the gate.
//
// Exit status 0 on success, 1 when -certify fails or -compare finds a
// regression, 2 on usage or processing errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sian/internal/check"
	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/histio"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/ledger"
	"sian/internal/obs/txtrace"
	"sian/internal/workload"
)

// The bench report schema now lives in internal/obs/ledger so the run
// ledger and the -compare gate share it; these aliases keep the local
// names meaningful.
type benchReport = ledger.BenchReport

const benchSchema = ledger.BenchSchema

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sibench:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// runConfig carries the parsed flag values through the run.
type runConfig struct {
	engine       string
	kind         engine.Kind
	model        depgraph.Model
	workload     string
	sessions     int
	txs          int
	ops          int
	objects      int
	rounds       int
	accounts     int
	hops         int
	transfers    int
	chopped      bool
	seed         int64
	atomicLookup bool
	certify      bool
	parallel     int
	benchJSON    string
	recordOut    string
	timelineOut  string
	recordCap    int
	duration     time.Duration
	hotkeys      int
	disjoint     bool
	groupCommit  bool
	readCache    bool
	sweep        string
	sweepReps    int
	ledgerPath   string
	comparePath  string
	compareThr   float64
	addr         string
	traceTxns    bool
	args         []string
}

// modeName is the report/baseline mode key: "network" when the run
// drives a remote siserve, "" for the in-process engine.
func (cfg runConfig) modeName() string {
	if cfg.addr != "" {
		return "network"
	}
	return ""
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sibench", flag.ContinueOnError)
	engineFlag := fs.String("engine", "si", "engine: si, ser, psi or ssi")
	workloadFlag := fs.String("workload", "registers", "workload: registers, writeskew, transfers, longfork, banking or smallbank")
	sessions := fs.Int("sessions", 4, "concurrent sessions")
	txs := fs.Int("txs", 50, "transactions per session (registers)")
	ops := fs.Int("ops", 3, "operations per transaction (registers)")
	objects := fs.Int("objects", 4, "object pool size (registers)")
	rounds := fs.Int("rounds", 50, "rounds (writeskew)")
	accounts := fs.Int("accounts", 8, "account pool size (transfers)")
	hops := fs.Int("hops", 4, "accounts per transfer (transfers)")
	transfers := fs.Int("transfers", 20, "transfers per session (transfers)")
	chopped := fs.Bool("chopped", false, "run transfers chopped into one transaction per account")
	seed := fs.Int64("seed", 1, "workload seed")
	atomicLookup := fs.Bool("atomic-lookup", false, "banking: query both accounts in one transaction (the incorrect Figure 5 chopping)")
	certify := fs.Bool("certify", false, "certify the recorded history against the engine's model")
	parallel := fs.Int("parallel", 0, "worker goroutines for the certification search (0 = one per CPU)")
	benchJSON := fs.String("bench-json", "", "write a machine-readable benchmark summary (JSON) to this file")
	recordOut := fs.String("record", "", "dump the transactional event stream as NDJSON to this file on exit")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline (Perfetto-loadable JSON) to this file on exit")
	recordCap := fs.Int("record-cap", 0, "flight-recorder ring capacity in events (0 = default)")
	duration := fs.Duration("duration", 0, "closedloop: bound the run by wall clock instead of -txs")
	hotkeys := fs.Int("hotkeys", 0, "closedloop: skew accesses onto the first N objects (contention)")
	disjoint := fs.Bool("disjoint", false, "closedloop: give every session a private object pool (no conflicts)")
	groupCommit := fs.Bool("group-commit", true, "SI: batch disjoint concurrent commits through the group-commit sequencer (-group-commit=false for the solo-path A/B)")
	readCache := fs.Bool("read-cache", true, "SI: memoise committed reads per session while the snapshot stands still (-read-cache=false for the A/B)")
	sweepFlag := fs.String("sweep", "", "run the closedloop workload once per GOMAXPROCS value (e.g. 1,2,4) and report scaling")
	sweepReps := fs.Int("sweep-reps", 1, "repetitions per sweep point; the median-throughput rep is recorded")
	ledgerPath := fs.String("ledger", "", "append the run's report plus provenance to this NDJSON run ledger")
	comparePath := fs.String("compare", "", "compare the run against a baseline (run ledger or bench-report JSON); regressions exit 1")
	compareThr := fs.Float64("compare-threshold", 0.3, "tolerated fractional throughput loss for -compare before failing")
	addrFlag := fs.String("addr", "", "drive a running siserve at this address over the siwire protocol instead of an in-process engine (closedloop only)")
	traceTxns := fs.Bool("trace-txns", false, "trace every transaction's commit-pipeline stages and print the per-stage latency table (with -addr: merged client+server traces)")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	kind, m, err := selectEngine(*engineFlag)
	if err != nil {
		return 2, err
	}
	if *sweepFlag != "" && *workloadFlag != "closedloop" {
		return 2, fmt.Errorf("-sweep requires -workload closedloop")
	}
	if *sweepReps < 1 {
		return 2, fmt.Errorf("-sweep-reps must be >= 1")
	}
	if *compareThr < 0 || *compareThr >= 1 {
		return 2, fmt.Errorf("-compare-threshold must be in [0, 1)")
	}
	if *traceTxns && *sweepFlag != "" {
		return 2, fmt.Errorf("-trace-txns is incompatible with -sweep (trace a single point directly instead)")
	}
	if *addrFlag != "" {
		// Network mode drives a remote server: there is no in-process
		// engine to certify, record or sweep, and the server picked its
		// engine at startup.
		if *workloadFlag != "closedloop" {
			return 2, fmt.Errorf("-addr supports only -workload closedloop")
		}
		if *certify || *sweepFlag != "" || *recordOut != "" {
			return 2, fmt.Errorf("-addr is incompatible with -certify, -sweep and -record (no in-process engine)")
		}
		if *timelineOut != "" && !*traceTxns {
			return 2, fmt.Errorf("-addr supports -timeline only with -trace-txns (the merged client+server transaction timeline)")
		}
		if *engineFlag != "si" {
			return 2, fmt.Errorf("-addr ignores -engine (the server chose at startup); leave it at the default")
		}
	}
	cfg := runConfig{
		engine: *engineFlag, kind: kind, model: m, workload: *workloadFlag,
		sessions: *sessions, txs: *txs, ops: *ops, objects: *objects,
		rounds: *rounds, accounts: *accounts, hops: *hops, transfers: *transfers,
		chopped: *chopped, seed: *seed, atomicLookup: *atomicLookup,
		certify: *certify, parallel: *parallel, benchJSON: *benchJSON,
		recordOut: *recordOut, timelineOut: *timelineOut, recordCap: *recordCap,
		duration: *duration, hotkeys: *hotkeys, disjoint: *disjoint,
		groupCommit: *groupCommit, readCache: *readCache,
		sweep: *sweepFlag, sweepReps: *sweepReps,
		ledgerPath: *ledgerPath, comparePath: *comparePath, compareThr: *compareThr,
		addr: *addrFlag, traceTxns: *traceTxns, args: args,
	}

	o, err := obsFlags.Start("sibench", stderr)
	if err != nil {
		return 2, err
	}
	code, err := cfg.execute(o, stdout, stderr)
	return o.Finish(code, err, stdout, stderr)
}

// execute runs the configured workload (single run or sweep) and then
// the shared artifact pipeline: bench JSON, ledger append, baseline
// comparison, recorder dumps.
func (cfg runConfig) execute(o *cliutil.Obs, stdout, stderr io.Writer) (int, error) {
	// The flight recorder feeds -record / -timeline dumps and, while
	// -serve is up, the live /events tail and /timeline endpoint. In
	// network mode -timeline is the merged transaction-trace dump
	// (written by runNetwork itself), not a recorder snapshot.
	var rec *eventlog.Recorder
	if cfg.recordOut != "" || (cfg.timelineOut != "" && cfg.addr == "") || o.Serving() {
		rec = eventlog.NewRecorder(cfg.recordCap)
		o.SetRecorder(rec)
	}

	var (
		exit int
		rep  benchReport
		err  error
	)
	switch {
	case cfg.addr != "":
		exit, rep, err = cfg.runNetwork(o, stdout)
	case cfg.sweep != "":
		exit, rep, err = runSweep(cfg, o, rec, stdout)
	default:
		exit, rep, err = cfg.runSingle(o, rec, stdout)
	}
	if err != nil {
		return 2, err
	}

	if cfg.benchJSON != "" {
		if err := encodeBenchReport(cfg.benchJSON, rep); err != nil {
			return 2, err
		}
	}
	// Compare before the ledger append: when both flags name the same
	// file the run gates against the *previous* recorded run, not the
	// line it is about to write (self-comparison always passes).
	if cfg.comparePath != "" {
		code, err := cfg.compare(rep, stdout, stderr)
		if err != nil {
			return 2, err
		}
		if code > exit {
			exit = code
		}
	}
	if cfg.ledgerPath != "" {
		if err := ledger.Append(cfg.ledgerPath, ledger.NewEntry("sibench", cfg.args, rep)); err != nil {
			return 2, err
		}
		fmt.Fprintf(stdout, "ledger: appended %s/%s run to %s\n", rep.Engine, rep.Workload, cfg.ledgerPath)
	}

	if rec != nil {
		if code, err := cfg.dumpRecorder(rec, o, stdout, stderr); err != nil {
			return code, err
		}
	}
	return exit, nil
}

// compare loads the -compare baseline, prints the per-metric delta
// table, and returns exit 1 when a gating metric regressed beyond the
// threshold.
func (cfg runConfig) compare(rep benchReport, stdout, stderr io.Writer) (int, error) {
	base, desc, err := ledger.LoadBaseline(cfg.comparePath, cfg.engine, cfg.workload, cfg.modeName())
	if err != nil {
		return 2, err
	}
	if base.Engine != rep.Engine || base.Workload != rep.Workload || base.Mode != rep.Mode {
		fmt.Fprintf(stderr, "compare: baseline is %s/%s/%q but this run is %s/%s/%q — comparing anyway\n",
			base.Engine, base.Workload, base.Mode, rep.Engine, rep.Workload, rep.Mode)
	}
	fmt.Fprintf(stdout, "compare: baseline %s\n", desc)
	deltas, regressed := ledger.Compare(base, rep, cfg.compareThr)
	ledger.WriteDeltas(stdout, deltas)
	if regressed {
		fmt.Fprintf(stdout, "compare: REGRESSION — gating throughput fell more than %.0f%% below baseline\n", cfg.compareThr*100)
		return 1, nil
	}
	fmt.Fprintf(stdout, "compare: ok (threshold %.0f%%)\n", cfg.compareThr*100)
	return 0, nil
}

// dumpRecorder performs the -record / -timeline exit dumps.
func (cfg runConfig) dumpRecorder(rec *eventlog.Recorder, o *cliutil.Obs, stdout, stderr io.Writer) (int, error) {
	events := rec.Events()
	if dropped := rec.Dropped(); dropped > 0 {
		fmt.Fprintf(stderr, "flight recorder: ring overwrote %d events; raise -record-cap for a full stream\n", dropped)
	}
	if cfg.recordOut != "" {
		if err := writeFileWith(cfg.recordOut, func(w io.Writer) error {
			return histio.EncodeEvents(w, events)
		}); err != nil {
			return 2, fmt.Errorf("record: %w", err)
		}
		fmt.Fprintf(stdout, "recorded %d events to %s\n", len(events), cfg.recordOut)
	}
	if cfg.timelineOut != "" && cfg.addr == "" {
		if err := writeFileWith(cfg.timelineOut, func(w io.Writer) error {
			return eventlog.WriteChromeTrace(w, events, o.Tracer.Phases())
		}); err != nil {
			return 2, fmt.Errorf("timeline: %w", err)
		}
		fmt.Fprintf(stdout, "timeline written to %s (load in ui.perfetto.dev)\n", cfg.timelineOut)
	}
	return 0, nil
}

// runSingle executes one workload run against a fresh engine and
// returns its exit code and bench report.
func (cfg runConfig) runSingle(o *cliutil.Obs, rec *eventlog.Recorder, stdout io.Writer) (int, benchReport, error) {
	reg := o.Registry
	tr := o.Tracer
	econf := engine.Config{
		Metrics: reg, Recorder: rec,
		DisableGroupCommit: !cfg.groupCommit,
		DisableReadCache:   !cfg.readCache,
	}
	if cfg.workload == "longfork" {
		econf.ManualPropagation = true
	}
	var txt *txtrace.Tracer
	if cfg.traceTxns {
		txt = txtrace.New(txtrace.Options{})
		econf.TxTracer = txt
		o.SetTxTracer(txt)
	}
	db, err := engine.New(cfg.kind, econf)
	if err != nil {
		return 2, benchReport{}, err
	}
	defer db.Close()

	doneWorkload := tr.Phase("workload")
	start := time.Now()
	var h *model.History
	switch cfg.workload {
	case "registers":
		h, err = workload.RunRegisters(db, workload.RegistersConfig{
			Sessions: cfg.sessions, TxPerSession: cfg.txs, OpsPerTx: cfg.ops,
			Objects: cfg.objects, Seed: cfg.seed,
		})
	case "writeskew":
		var out *workload.WriteSkewOutcome
		out, err = workload.RunWriteSkew(db, cfg.rounds)
		if err == nil {
			fmt.Fprintf(stdout, "write-skew anomalies: %d / %d rounds\n", out.Anomalies, out.Rounds)
			db.Flush()
			h = db.History()
		}
	case "transfers":
		var out *workload.TransferOutcome
		out, err = workload.RunTransfers(db, workload.TransferConfig{
			Sessions: cfg.sessions, Transfers: cfg.transfers, Accounts: cfg.accounts,
			Hops: cfg.hops, Chopped: cfg.chopped, Seed: cfg.seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "transfers: %d commits, %d conflict aborts\n", out.Commits, out.Conflicts)
			db.Flush()
			h = db.History()
		}
	case "longfork":
		if cfg.kind != engine.PSI {
			return 2, benchReport{}, fmt.Errorf("workload longfork requires -engine psi")
		}
		h, err = workload.StageLongFork(db)
	case "closedloop":
		var out *workload.ClosedLoopOutcome
		out, err = workload.RunClosedLoop(db, workload.ClosedLoopConfig{
			Sessions: cfg.sessions, Ops: cfg.txs, OpsPerTx: cfg.ops, Objects: cfg.objects,
			Duration: cfg.duration, HotKeys: cfg.hotkeys, Disjoint: cfg.disjoint, Seed: cfg.seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "closedloop: %d commits, %d conflicts, %d retries in %v\n",
				out.Commits, out.Conflicts, out.Retries, out.Elapsed.Round(time.Microsecond))
			db.Flush()
			h = db.History()
		}
	case "smallbank":
		var out *workload.SmallBankOutcome
		out, err = workload.RunSmallBank(db, workload.SmallBankConfig{
			Customers: cfg.accounts / 2, Sessions: cfg.sessions, TxPerSession: cfg.txs, Seed: cfg.seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "smallbank: %d operations, %d overdrawn customers\n", out.Operations, out.Overdrafts)
			db.Flush()
			h = db.History()
		}
	case "banking":
		h, err = workload.StageBankingChopped(db, cfg.atomicLookup)
		if err == nil {
			spliced, serr := check.Certify(h.Splice(), cfg.model, check.Options{
				NoInit: true, PinInit: true, Budget: 1_000_000,
				Parallelism: cfg.parallel,
			})
			if serr != nil {
				return 2, benchReport{}, serr
			}
			fmt.Fprintf(stdout, "spliced history allowed by %v: %v\n", cfg.model, spliced.Member)
		}
	default:
		return 2, benchReport{}, fmt.Errorf("unknown workload %q", cfg.workload)
	}
	if err != nil {
		return 2, benchReport{}, err
	}
	elapsed := time.Since(start)
	doneWorkload()

	stats := db.Stats()
	fmt.Fprintf(stdout, "engine=%s workload=%s commits=%d conflicts=%d aborts=%d retries=%d elapsed=%v\n",
		cfg.kind, cfg.workload, stats.Commits, stats.Conflicts, stats.Aborts, stats.Retries,
		elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "history: %d sessions, %d transactions\n", h.NumSessions(), h.NumTransactions())

	exit := 0
	var certifyDur time.Duration
	certifyExamined := 0
	if cfg.certify {
		certifyStart := time.Now()
		res, err := check.Certify(h, cfg.model, check.Options{
			NoInit: true, PinInit: true, Budget: 10_000_000,
			Parallelism: cfg.parallel, Tracer: tr, Metrics: reg,
		})
		certifyDur = time.Since(certifyStart)
		if err != nil {
			return 2, benchReport{}, fmt.Errorf("certify: %w", err)
		}
		certifyExamined = res.Examined
		switch {
		case res.Member:
			fmt.Fprintf(stdout, "history certified %v (%d candidate graphs examined)\n", cfg.model, res.Examined)
		default:
			fmt.Fprintf(stdout, "CERTIFICATION FAILED: history not allowed by %v\n", cfg.model)
			if res.Explain != nil {
				fmt.Fprintf(stdout, "  explain: %s\n", res.Explain)
			}
			exit = 1
		}
	}

	rep := cfg.buildReport(elapsed, certifyDur, certifyExamined, stats, reg)
	rep.GroupCommit = groupCommitStats(reg, cfg.kind)
	if txt != nil {
		stages := txt.StageLatencies()
		printStageTable(stdout, stages)
		rep.Stages = ledgerStages(stages)
	}
	return exit, rep, nil
}

// buildReport assembles the machine-readable summary of a single run
// from the engine stats and the run's metrics registry.
func (cfg runConfig) buildReport(elapsed, certifyDur time.Duration, certifyExamined int, stats engine.Stats, reg *obs.Registry) benchReport {
	lbl := obs.L("engine", cfg.kind.String())
	commitLat := reg.Histogram("engine_commit_latency_ns", lbl)
	snapAge := reg.Histogram("engine_snapshot_age_ns", lbl)
	rep := benchReport{
		Schema:             benchSchema,
		Engine:             cfg.engine,
		Workload:           cfg.workload,
		Sessions:           cfg.sessions,
		CPUs:               runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		ElapsedNS:          elapsed.Nanoseconds(),
		Commits:            stats.Commits,
		Conflicts:          stats.Conflicts,
		Aborts:             stats.Aborts,
		Retries:            stats.Retries,
		P50CommitLatencyNS: commitLat.Quantile(0.50),
		P99CommitLatencyNS: commitLat.Quantile(0.99),
		P50SnapshotAgeNS:   snapAge.Quantile(0.50),
		P99SnapshotAgeNS:   snapAge.Quantile(0.99),
	}
	if certifyExamined > 0 {
		rep.CertifyParallelism = cfg.parallel
		if cfg.parallel <= 0 {
			rep.CertifyParallelism = runtime.GOMAXPROCS(0)
		}
		rep.CertifyNS = certifyDur.Nanoseconds()
		rep.CertifyExamined = certifyExamined
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.TxsPerSec = float64(stats.Commits) / secs
	}
	return rep
}

// groupCommitStats reads the SI group-commit sequencer's accounting
// out of the run's metrics registry; nil when the run executed no
// batches (sequencer disabled or a non-SI engine), keeping the field
// absent from reports and ledger lines exactly like pre-batching
// runs.
func groupCommitStats(reg *obs.Registry, kind engine.Kind) *ledger.GroupCommitStats {
	lbl := obs.L("engine", kind.String())
	batches := reg.Counter("engine_commit_batches_total", lbl).Value()
	if batches == 0 {
		return nil
	}
	size := reg.Histogram("engine_commit_batch_size", lbl)
	return &ledger.GroupCommitStats{
		Batches:        batches,
		BatchedCommits: reg.Counter("engine_commit_batch_members_total", lbl).Value(),
		SoloCommits:    reg.Counter("engine_commit_solo_total", lbl).Value(),
		P50BatchSize:   size.Quantile(0.50),
		P99BatchSize:   size.Quantile(0.99),
	}
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeBenchReport writes a benchReport as indented JSON.
func encodeBenchReport(path string, rep benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectEngine(s string) (engine.Kind, depgraph.Model, error) {
	switch s {
	case "si":
		return engine.SI, depgraph.SI, nil
	case "ser":
		return engine.SER, depgraph.SER, nil
	case "psi":
		return engine.PSI, depgraph.PSI, nil
	case "ssi":
		// SSI guarantees serializable histories; certify against SER.
		return engine.SSI, depgraph.SER, nil
	default:
		return 0, 0, fmt.Errorf("unknown engine %q (want si, ser, psi or ssi)", s)
	}
}
