// Command sibench exercises the reference transactional engines (SI,
// SER, PSI) with the built-in workloads, reports commit/conflict
// statistics, and optionally certifies the recorded history against
// the engine's own consistency model.
//
// Usage:
//
//	sibench -engine si|ser|psi|ssi -workload registers|writeskew|transfers|longfork|banking|smallbank|closedloop
//	        [-sessions N] [-txs N] [-ops N] [-objects N] [-rounds N]
//	        [-accounts N] [-hops N] [-chopped] [-seed N] [-certify]
//	        [-duration D] [-hotkeys N] [-disjoint] [-sweep 1,2,4]
//	        [-parallel N] [-trace] [-metrics file|-] [-bench-json file]
//	        [-pprof addr] [-record file.ndjson] [-timeline file.json]
//
// The closedloop workload is the concurrent benchmark driver: one
// goroutine per session, each firing its next transaction the moment
// the previous one finishes. -disjoint gives each session a private
// object pool (the scaling workload); -hotkeys N skews accesses onto N
// shared objects (the contention workload); -duration bounds the run
// by wall clock instead of -txs. -sweep 1,2,4 repeats the workload at
// each GOMAXPROCS value against a fresh database and reports the
// scaling table (recorded under the sweep key of -bench-json).
//
// -metrics dumps the metrics registry (engine counters,
// commit-latency and snapshot-age histograms, phase durations) on
// exit in Prometheus text format ('-' for stdout, *.json for JSON).
// -trace prints per-phase timing lines on stderr. -bench-json writes
// a machine-readable benchmark summary (throughput, p50/p99 commit
// latency) to the named file. -pprof serves net/http/pprof on the
// given address (for example localhost:6060) for the duration of the
// run.
//
// -record attaches a flight recorder to the engine and dumps the
// transactional event stream as NDJSON on exit — feed it to simon for
// online certification. -timeline renders the same stream (plus the
// -trace certifier phases) as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. -record-cap bounds
// the recorder ring (older events are overwritten beyond it).
//
// Exit status 0 on success, 1 when -certify fails, 2 on usage or
// processing errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sian/internal/check"
	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/histio"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/workload"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sibench:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sibench", flag.ContinueOnError)
	engineFlag := fs.String("engine", "si", "engine: si, ser, psi or ssi")
	workloadFlag := fs.String("workload", "registers", "workload: registers, writeskew, transfers, longfork, banking or smallbank")
	sessions := fs.Int("sessions", 4, "concurrent sessions")
	txs := fs.Int("txs", 50, "transactions per session (registers)")
	ops := fs.Int("ops", 3, "operations per transaction (registers)")
	objects := fs.Int("objects", 4, "object pool size (registers)")
	rounds := fs.Int("rounds", 50, "rounds (writeskew)")
	accounts := fs.Int("accounts", 8, "account pool size (transfers)")
	hops := fs.Int("hops", 4, "accounts per transfer (transfers)")
	transfers := fs.Int("transfers", 20, "transfers per session (transfers)")
	chopped := fs.Bool("chopped", false, "run transfers chopped into one transaction per account")
	seed := fs.Int64("seed", 1, "workload seed")
	atomicLookup := fs.Bool("atomic-lookup", false, "banking: query both accounts in one transaction (the incorrect Figure 5 chopping)")
	certify := fs.Bool("certify", false, "certify the recorded history against the engine's model")
	parallel := fs.Int("parallel", 0, "worker goroutines for the certification search (0 = one per CPU)")
	trace := fs.Bool("trace", false, "print per-phase timing lines on stderr")
	metricsOut := fs.String("metrics", "", "dump the metrics registry on exit to this file ('-' for stdout, *.json for JSON)")
	benchJSON := fs.String("bench-json", "", "write a machine-readable benchmark summary (JSON) to this file")
	recordOut := fs.String("record", "", "dump the transactional event stream as NDJSON to this file on exit")
	timelineOut := fs.String("timeline", "", "write a Chrome trace-event timeline (Perfetto-loadable JSON) to this file on exit")
	recordCap := fs.Int("record-cap", 0, "flight-recorder ring capacity in events (0 = default)")
	duration := fs.Duration("duration", 0, "closedloop: bound the run by wall clock instead of -txs")
	hotkeys := fs.Int("hotkeys", 0, "closedloop: skew accesses onto the first N objects (contention)")
	disjoint := fs.Bool("disjoint", false, "closedloop: give every session a private object pool (no conflicts)")
	sweepFlag := fs.String("sweep", "", "run the closedloop workload once per GOMAXPROCS value (e.g. 1,2,4) and report scaling")
	startPprof := cliutil.PprofFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	kind, m, err := selectEngine(*engineFlag)
	if err != nil {
		return 2, err
	}
	if *sweepFlag != "" {
		if *workloadFlag != "closedloop" {
			return 2, fmt.Errorf("-sweep requires -workload closedloop")
		}
		return runSweep(sweepConfig{
			spec: *sweepFlag, engine: *engineFlag, kind: kind, model: m,
			sessions: *sessions, txs: *txs, ops: *ops, objects: *objects,
			duration: *duration, hotkeys: *hotkeys, disjoint: *disjoint,
			seed: *seed, certify: *certify, parallel: *parallel,
			benchJSON: *benchJSON,
		}, stdout)
	}
	reg := obs.NewRegistry()
	var tr *obs.Tracer
	if *trace {
		tr = obs.NewTracer(reg)
	}
	stopPprof, err := startPprof(stderr)
	if err != nil {
		return 2, err
	}
	defer stopPprof()
	var rec *eventlog.Recorder
	if *recordOut != "" || *timelineOut != "" {
		rec = eventlog.NewRecorder(*recordCap)
	}
	cfg := engine.Config{Metrics: reg, Recorder: rec}
	if *workloadFlag == "longfork" {
		cfg.ManualPropagation = true
	}
	db, err := engine.New(kind, cfg)
	if err != nil {
		return 2, err
	}
	defer db.Close()

	doneWorkload := tr.Phase("workload")
	start := time.Now()
	var h *model.History
	switch *workloadFlag {
	case "registers":
		h, err = workload.RunRegisters(db, workload.RegistersConfig{
			Sessions: *sessions, TxPerSession: *txs, OpsPerTx: *ops,
			Objects: *objects, Seed: *seed,
		})
	case "writeskew":
		var out *workload.WriteSkewOutcome
		out, err = workload.RunWriteSkew(db, *rounds)
		if err == nil {
			fmt.Fprintf(stdout, "write-skew anomalies: %d / %d rounds\n", out.Anomalies, out.Rounds)
			db.Flush()
			h = db.History()
		}
	case "transfers":
		var out *workload.TransferOutcome
		out, err = workload.RunTransfers(db, workload.TransferConfig{
			Sessions: *sessions, Transfers: *transfers, Accounts: *accounts,
			Hops: *hops, Chopped: *chopped, Seed: *seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "transfers: %d commits, %d conflict aborts\n", out.Commits, out.Conflicts)
			db.Flush()
			h = db.History()
		}
	case "longfork":
		if kind != engine.PSI {
			return 2, fmt.Errorf("workload longfork requires -engine psi")
		}
		h, err = workload.StageLongFork(db)
	case "closedloop":
		var out *workload.ClosedLoopOutcome
		out, err = workload.RunClosedLoop(db, workload.ClosedLoopConfig{
			Sessions: *sessions, Ops: *txs, OpsPerTx: *ops, Objects: *objects,
			Duration: *duration, HotKeys: *hotkeys, Disjoint: *disjoint, Seed: *seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "closedloop: %d commits, %d conflicts, %d retries in %v\n",
				out.Commits, out.Conflicts, out.Retries, out.Elapsed.Round(time.Microsecond))
			db.Flush()
			h = db.History()
		}
	case "smallbank":
		var out *workload.SmallBankOutcome
		out, err = workload.RunSmallBank(db, workload.SmallBankConfig{
			Customers: *accounts / 2, Sessions: *sessions, TxPerSession: *txs, Seed: *seed,
		})
		if err == nil {
			fmt.Fprintf(stdout, "smallbank: %d operations, %d overdrawn customers\n", out.Operations, out.Overdrafts)
			db.Flush()
			h = db.History()
		}
	case "banking":
		h, err = workload.StageBankingChopped(db, *atomicLookup)
		if err == nil {
			spliced, serr := check.Certify(h.Splice(), m, check.Options{
				NoInit: true, PinInit: true, Budget: 1_000_000,
				Parallelism: *parallel,
			})
			if serr != nil {
				return 2, serr
			}
			fmt.Fprintf(stdout, "spliced history allowed by %v: %v\n", m, spliced.Member)
		}
	default:
		return 2, fmt.Errorf("unknown workload %q", *workloadFlag)
	}
	if err != nil {
		return 2, err
	}
	elapsed := time.Since(start)
	doneWorkload()

	stats := db.Stats()
	fmt.Fprintf(stdout, "engine=%s workload=%s commits=%d conflicts=%d aborts=%d retries=%d elapsed=%v\n",
		kind, *workloadFlag, stats.Commits, stats.Conflicts, stats.Aborts, stats.Retries,
		elapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "history: %d sessions, %d transactions\n", h.NumSessions(), h.NumTransactions())

	exit := 0
	var certifyDur time.Duration
	certifyExamined := 0
	if *certify {
		certifyStart := time.Now()
		res, err := check.Certify(h, m, check.Options{
			NoInit: true, PinInit: true, Budget: 10_000_000,
			Parallelism: *parallel, Tracer: tr, Metrics: reg,
		})
		certifyDur = time.Since(certifyStart)
		if err != nil {
			return 2, fmt.Errorf("certify: %w", err)
		}
		certifyExamined = res.Examined
		switch {
		case res.Member:
			fmt.Fprintf(stdout, "history certified %v (%d candidate graphs examined)\n", m, res.Examined)
		default:
			fmt.Fprintf(stdout, "CERTIFICATION FAILED: history not allowed by %v\n", m)
			if res.Explain != nil {
				fmt.Fprintf(stdout, "  explain: %s\n", res.Explain)
			}
			exit = 1
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *engineFlag, *workloadFlag, *sessions, *parallel, kind, elapsed, certifyDur, certifyExamined, stats, reg); err != nil {
			return 2, err
		}
	}
	tr.Report(stderr)
	if *metricsOut != "" {
		if err := reg.Dump(*metricsOut, stdout); err != nil {
			return 2, err
		}
	}
	if rec != nil {
		events := rec.Events()
		if dropped := rec.Dropped(); dropped > 0 {
			fmt.Fprintf(stderr, "flight recorder: ring overwrote %d events; raise -record-cap for a full stream\n", dropped)
		}
		if *recordOut != "" {
			if err := writeFileWith(*recordOut, func(w io.Writer) error {
				return histio.EncodeEvents(w, events)
			}); err != nil {
				return 2, fmt.Errorf("record: %w", err)
			}
			fmt.Fprintf(stdout, "recorded %d events to %s\n", len(events), *recordOut)
		}
		if *timelineOut != "" {
			if err := writeFileWith(*timelineOut, func(w io.Writer) error {
				return eventlog.WriteChromeTrace(w, events, tr.Phases())
			}); err != nil {
				return 2, fmt.Errorf("timeline: %w", err)
			}
			fmt.Fprintf(stdout, "timeline written to %s (load in ui.perfetto.dev)\n", *timelineOut)
		}
	}
	return exit, nil
}

// writeFileWith creates path and streams fn's output into it.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchSchema versions the -bench-json format. v2 added GOMAXPROCS
// and the Sweep scaling table.
const benchSchema = "sibench/v2"

// benchReport is the machine-readable benchmark summary emitted by
// -bench-json, one JSON object per run. Latency quantiles come from
// the engine's log-scale commit-latency histogram.
type benchReport struct {
	Schema             string  `json:"schema"`
	Engine             string  `json:"engine"`
	Workload           string  `json:"workload"`
	Sessions           int     `json:"sessions"`
	CPUs               int     `json:"cpus"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	ElapsedNS          int64   `json:"elapsed_ns"`
	Commits            int64   `json:"commits"`
	Conflicts          int64   `json:"conflicts"`
	Aborts             int64   `json:"aborts"`
	Retries            int64   `json:"retries"`
	TxsPerSec          float64 `json:"txs_per_sec"`
	P50CommitLatencyNS float64 `json:"p50_commit_latency_ns"`
	P99CommitLatencyNS float64 `json:"p99_commit_latency_ns"`
	P50SnapshotAgeNS   float64 `json:"p50_snapshot_age_ns"`
	P99SnapshotAgeNS   float64 `json:"p99_snapshot_age_ns"`

	// Certification fields are present when -certify ran.
	CertifyParallelism int   `json:"certify_parallelism,omitempty"`
	CertifyNS          int64 `json:"certify_ns,omitempty"`
	CertifyExamined    int   `json:"certify_examined,omitempty"`

	// CheckerBench carries the offline seed-vs-incremental search
	// benchmark when a recorded report includes one (see
	// internal/check/search_bench_test.go); sibench itself does not
	// populate it, but round-trips it for the committed artifact.
	CheckerBench *checkerBenchRecord `json:"checker_bench,omitempty"`

	// Sweep holds the -sweep scaling table: the closed-loop workload
	// repeated at each GOMAXPROCS value. The top-level throughput
	// fields then reflect the best point.
	Sweep []sweepPoint `json:"sweep,omitempty"`

	// Note carries free-form provenance for recorded artifacts (for
	// example the host's core count); sibench round-trips it.
	Note string `json:"note,omitempty"`
}

// checkerBenchRecord is a hand-recorded result of
// `go test -bench Search ./internal/check`: the seed clone-based
// search versus the incremental core at 1, 2 and 4 workers over the
// same corpus and budget, in nanoseconds per corpus sweep.
type checkerBenchRecord struct {
	Source                  string  `json:"source"`
	Corpus                  string  `json:"corpus"`
	CPUs                    int     `json:"cpus"`
	SeedCloneNSPerSweep     int64   `json:"seed_clone_ns_per_sweep"`
	IncrementalP1NSPerSweep int64   `json:"incremental_p1_ns_per_sweep"`
	IncrementalP2NSPerSweep int64   `json:"incremental_p2_ns_per_sweep"`
	IncrementalP4NSPerSweep int64   `json:"incremental_p4_ns_per_sweep"`
	SpeedupP1VsSeed         float64 `json:"speedup_p1_vs_seed"`
	Note                    string  `json:"note,omitempty"`
}

func writeBenchJSON(path, engineName, workloadName string, sessions, parallel int, kind engine.Kind, elapsed, certifyDur time.Duration, certifyExamined int, stats engine.Stats, reg *obs.Registry) error {
	lbl := obs.L("engine", kind.String())
	commitLat := reg.Histogram("engine_commit_latency_ns", lbl)
	snapAge := reg.Histogram("engine_snapshot_age_ns", lbl)
	rep := benchReport{
		Schema:             benchSchema,
		Engine:             engineName,
		Workload:           workloadName,
		Sessions:           sessions,
		CPUs:               runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		ElapsedNS:          elapsed.Nanoseconds(),
		Commits:            stats.Commits,
		Conflicts:          stats.Conflicts,
		Aborts:             stats.Aborts,
		Retries:            stats.Retries,
		P50CommitLatencyNS: commitLat.Quantile(0.50),
		P99CommitLatencyNS: commitLat.Quantile(0.99),
		P50SnapshotAgeNS:   snapAge.Quantile(0.50),
		P99SnapshotAgeNS:   snapAge.Quantile(0.99),
	}
	if certifyExamined > 0 {
		rep.CertifyParallelism = parallel
		if parallel <= 0 {
			rep.CertifyParallelism = runtime.GOMAXPROCS(0)
		}
		rep.CertifyNS = certifyDur.Nanoseconds()
		rep.CertifyExamined = certifyExamined
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.TxsPerSec = float64(stats.Commits) / secs
	}
	return encodeBenchReport(path, rep)
}

// encodeBenchReport writes a benchReport as indented JSON.
func encodeBenchReport(path string, rep benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectEngine(s string) (engine.Kind, depgraph.Model, error) {
	switch s {
	case "si":
		return engine.SI, depgraph.SI, nil
	case "ser":
		return engine.SER, depgraph.SER, nil
	case "psi":
		return engine.PSI, depgraph.PSI, nil
	case "ssi":
		// SSI guarantees serializable histories; certify against SER.
		return engine.SSI, depgraph.SER, nil
	default:
		return 0, 0, fmt.Errorf("unknown engine %q (want si, ser, psi or ssi)", s)
	}
}
