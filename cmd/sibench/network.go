package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/cliutil"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/txtrace"
	"sian/internal/siwire"
)

// runNetwork drives the closed-loop workload against a running siserve
// over the siwire binary protocol: one client connection per session,
// each firing the next read-modify-write transaction the moment the
// previous one finishes, with the standard client-side conflict retry.
// It is the network-mode twin of workload.RunClosedLoop — same pool
// naming (-objects, -disjoint, -hotkeys) and the same globally-unique
// written values — but the commits land on the server's engine, and
// the latency quantiles are client-observed commit round-trips (wire
// plus fsync), not engine-internal commit latencies. The report
// carries Mode "network" and the server's git revision so ledger
// baselines only ever compare network runs with network runs.
func (cfg runConfig) runNetwork(o *cliutil.Obs, stdout io.Writer) (int, benchReport, error) {
	const hotFraction = 800 // per-mille hot-set probability, as in workload.ClosedLoopConfig

	objName := func(worker, n int) model.Obj {
		if cfg.disjoint {
			return model.Obj(fmt.Sprintf("cl%d_%d", worker, n))
		}
		return model.Obj(fmt.Sprintf("cl%d", n))
	}
	pick := func(rng *rand.Rand) int {
		if !cfg.disjoint && cfg.hotkeys > 0 && rng.Intn(1000) < hotFraction {
			return rng.Intn(min(cfg.hotkeys, cfg.objects))
		}
		return rng.Intn(cfg.objects)
	}

	probe, err := siwire.Dial(cfg.addr)
	if err != nil {
		return 2, benchReport{}, fmt.Errorf("network: %w", err)
	}
	info, err := probe.Info()
	if err != nil {
		probe.Close()
		return 2, benchReport{}, fmt.Errorf("network: info: %w", err)
	}
	fmt.Fprintf(stdout, "network: server %s engine=%s durable=%v rev=%s\n",
		cfg.addr, info.Engine, info.Durable, shortRev(info.GitRev))

	// Initialise every pool object to 0 in one transaction, like the
	// in-process runner does, so workload reads never hit an
	// uninitialised object.
	pools := 1
	if cfg.disjoint {
		pools = cfg.sessions
	}
	if _, err := probe.Transact(func(tx *siwire.ClientTx) error {
		for w := 0; w < pools; w++ {
			for n := 0; n < cfg.objects; n++ {
				if err := tx.Write(objName(w, n), 0); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		probe.Close()
		return 2, benchReport{}, fmt.Errorf("network: initialising pool: %w", err)
	}
	probe.Close()

	commitLat := o.Registry.Histogram("siwire_client_commit_latency_ns", obs.L("mode", "network"))
	// With -trace-txns every transaction carries a client-assigned
	// trace ID across the wire; the server's pipeline spans ride back
	// on the commit response and merge into the client's trace, so one
	// span tree covers the full round trip.
	var ct *txtrace.Tracer
	if cfg.traceTxns {
		ct = txtrace.New(txtrace.Options{})
		o.SetTxTracer(ct)
	}
	var counter, commits, conflicts atomic.Int64
	var stopFlag atomic.Bool
	if cfg.duration > 0 {
		timer := time.AfterFunc(cfg.duration, func() { stopFlag.Store(true) })
		defer timer.Stop()
	}

	errs := make([]error, cfg.sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := siwire.Dial(cfg.addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*6364136223846793005))
			pool := 0
			if cfg.disjoint {
				pool = w
			}
			for n := 0; ; n++ {
				if cfg.duration > 0 {
					if stopFlag.Load() {
						return
					}
				} else if n >= cfg.txs {
					return
				}
				// One transaction, retried on conflict with a fresh
				// object draw — the same shape as Session.Transact.
				// Every txtrace call below is a nil-safe no-op when
				// tracing is off (ct nil ⇒ tr nil).
				for {
					var tr *txtrace.Trace
					if ct != nil {
						tr = ct.Begin(fmt.Sprintf("w%d", w))
					}
					if err := c.BeginTraced(tr.ID()); err != nil {
						tr.Finish(txtrace.OutcomeError, 0)
						errs[w] = err
						return
					}
					tr.Mark(txtrace.StageWireBegin)
					ok := true
					for i := 0; i < cfg.ops; i++ {
						x := objName(pool, pick(rng))
						if _, err := c.Read(x); err != nil {
							errs[w] = fmt.Errorf("read %s: %w", x, err)
							ok = false
							break
						}
						if err := c.Write(x, model.Value(counter.Add(1))); err != nil {
							errs[w] = fmt.Errorf("write %s: %w", x, err)
							ok = false
							break
						}
					}
					tr.Mark(txtrace.StageWireOps)
					if !ok {
						tr.Finish(txtrace.OutcomeAbort, 0)
						c.Abort()
						return
					}
					t0 := time.Now()
					res, err := c.CommitTraced()
					if err == nil {
						tr.Mark(txtrace.StageWireCommit)
						tr.AddSpans(res.ServerSpans)
						commitLat.ObserveExemplar(time.Since(t0).Nanoseconds(), tr.ID())
						tr.Finish(txtrace.OutcomeCommit, res.LSN)
						commits.Add(1)
						break
					}
					if errors.Is(err, siwire.ErrConflict) {
						tr.Finish(txtrace.OutcomeConflict, 0)
						conflicts.Add(1)
						continue
					}
					tr.Finish(txtrace.OutcomeError, 0)
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 2, benchReport{}, fmt.Errorf("network: %w", err)
		}
	}

	fmt.Fprintf(stdout, "network closedloop: %d commits, %d conflicts in %v\n",
		commits.Load(), conflicts.Load(), elapsed.Round(time.Microsecond))
	rep := benchReport{
		Schema:             benchSchema,
		Engine:             info.Engine,
		Workload:           cfg.workload,
		Mode:               cfg.modeName(),
		ServerRev:          info.GitRev,
		Sessions:           cfg.sessions,
		CPUs:               runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		ElapsedNS:          elapsed.Nanoseconds(),
		Commits:            commits.Load(),
		Conflicts:          conflicts.Load(),
		Retries:            conflicts.Load(), // every conflict costs exactly one retry here
		P50CommitLatencyNS: commitLat.Quantile(0.50),
		P99CommitLatencyNS: commitLat.Quantile(0.99),
	}
	if rep.Engine == "" {
		rep.Engine = cfg.engine
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.TxsPerSec = float64(rep.Commits) / secs
	}
	if ct != nil {
		stages := ct.StageLatencies()
		printStageTable(stdout, stages)
		rep.Stages = ledgerStages(stages)
		if cfg.timelineOut != "" {
			merged := ct.Finished(0)
			if err := writeFileWith(cfg.timelineOut, func(w io.Writer) error {
				return txtrace.WriteChromeTrace(w, merged)
			}); err != nil {
				return 2, benchReport{}, fmt.Errorf("timeline: %w", err)
			}
			fmt.Fprintf(stdout, "merged client+server timeline (%d traces) written to %s (load in ui.perfetto.dev)\n",
				len(merged), cfg.timelineOut)
		}
	}
	return 0, rep, nil
}

// shortRev abbreviates a git revision for log lines.
func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	if rev == "" {
		return "unknown"
	}
	return rev
}
