package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sian/internal/obs/ledger"
)

// TestRunLedgerAppend pins the -ledger flag: every run appends one
// provenance-stamped NDJSON entry.
func TestRunLedgerAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.ndjson")
	for i := 0; i < 2; i++ {
		var out, errOut bytes.Buffer
		code, err := run([]string{
			"-engine", "si", "-workload", "closedloop",
			"-sessions", "2", "-txs", "5", "-objects", "4",
			"-ledger", path,
		}, &out, &errOut)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("exit = %d\n%s", code, out.String())
		}
		if !strings.Contains(out.String(), "ledger: appended") {
			t.Errorf("output missing append announcement:\n%s", out.String())
		}
	}
	entries, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("ledger entries = %d, want 2", len(entries))
	}
	e := entries[1]
	if e.Schema != ledger.EntrySchema || e.Tool != "sibench" {
		t.Errorf("entry envelope = %+v", e)
	}
	if e.Report.Workload != "closedloop" || e.Report.Engine != "si" {
		t.Errorf("entry report = engine=%s workload=%s", e.Report.Engine, e.Report.Workload)
	}
	if e.Report.TxsPerSec <= 0 || e.Report.Commits <= 0 {
		t.Errorf("entry report numbers: %+v", e.Report)
	}
	if len(e.Args) == 0 {
		t.Error("entry did not echo the command line")
	}
}

// TestRunCompareRegression is the regression-gate acceptance path: a
// synthetic baseline claiming absurd throughput makes any real run a
// regression, and sibench must exit nonzero saying so.
func TestRunCompareRegression(t *testing.T) {
	base := ledger.BenchReport{
		Schema: ledger.BenchSchema, Engine: "si", Workload: "closedloop",
		TxsPerSec: 1e12, P99CommitLatencyNS: 1,
	}
	path := writeBaseline(t, base)
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sessions", "2", "-txs", "5", "-objects", "4",
		"-compare", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (regression)\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "compare: REGRESSION") {
		t.Errorf("output missing regression verdict:\n%s", s)
	}
	if !strings.Contains(s, "txs_per_sec") || !strings.Contains(s, "REGRESSED") {
		t.Errorf("output missing delta table:\n%s", s)
	}
}

// TestRunCompareOK: against a trivially slow baseline the gate passes
// and the exit stays 0.
func TestRunCompareOK(t *testing.T) {
	base := ledger.BenchReport{
		Schema: ledger.BenchSchema, Engine: "si", Workload: "closedloop",
		TxsPerSec: 0.0001,
	}
	path := writeBaseline(t, base)
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sessions", "2", "-txs", "5", "-objects", "4",
		"-compare", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "compare: ok") {
		t.Errorf("output missing pass verdict:\n%s", out.String())
	}
}

// TestRunCompareMismatchWarns: baseline recorded for another
// engine/workload still compares, with a warning.
func TestRunCompareMismatchWarns(t *testing.T) {
	base := ledger.BenchReport{
		Schema: ledger.BenchSchema, Engine: "psi", Workload: "registers",
		TxsPerSec: 0.0001,
	}
	path := writeBaseline(t, base)
	var out, errOut bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sessions", "2", "-txs", "5", "-objects", "4",
		"-compare", path,
	}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "comparing anyway") {
		t.Errorf("stderr missing mismatch warning:\n%s", errOut.String())
	}
}

// TestRunCompareBeforeLedgerAppend: with -ledger and -compare naming
// the same file, the gate must run against the previous entry, not
// the line the run is about to append (self-comparison always
// passes). A first slow run recorded in the ledger then gates a
// second run, proving the baseline predates the append.
func TestRunCompareBeforeLedgerAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.ndjson")
	slow := ledger.NewEntry("sibench", nil, ledger.BenchReport{
		Schema: ledger.BenchSchema, Engine: "si", Workload: "closedloop",
		TxsPerSec: 0.0001,
	})
	if err := ledger.Append(path, slow); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sessions", "2", "-txs", "5", "-objects", "4",
		"-ledger", path, "-compare", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	// The delta table must show the slow baseline, not the fresh run
	// compared against itself (which would print ratio=1 exactly).
	if !strings.Contains(out.String(), "base=0.0001") {
		t.Errorf("compare did not use the pre-append baseline:\n%s", out.String())
	}
	entries, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("ledger entries = %d, want 2 (append still happened)", len(entries))
	}
}

func TestRunCompareBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-engine", "si", "-workload", "closedloop", "-compare", "no-such-file.json"},
		{"-engine", "si", "-workload", "closedloop", "-compare-threshold", "1.5"},
		{"-engine", "si", "-workload", "closedloop", "-compare-threshold", "-0.1"},
	} {
		if _, err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunSweepReps pins the median-of-reps reporting: per-rep lines,
// the spread summary, and the reps/min/max fields in the JSON table.
func TestRunSweepReps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sweep", "1", "-sweep-reps", "3",
		"-sessions", "2", "-txs", "8", "-objects", "4",
		"-bench-json", path,
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"rep 1/3", "rep 3/3", "median of 3 reps, spread"} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep-reps output missing %q:\n%s", want, s)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 1 {
		t.Fatalf("sweep points = %d, want 1", len(rep.Sweep))
	}
	pt := rep.Sweep[0]
	if pt.Reps != 3 {
		t.Errorf("reps = %d, want 3", pt.Reps)
	}
	if pt.MinTxsPerSec <= 0 || pt.MaxTxsPerSec < pt.MinTxsPerSec {
		t.Errorf("spread fields: min=%v max=%v", pt.MinTxsPerSec, pt.MaxTxsPerSec)
	}
	if pt.TxsPerSec < pt.MinTxsPerSec || pt.TxsPerSec > pt.MaxTxsPerSec {
		t.Errorf("median %v outside [%v, %v]", pt.TxsPerSec, pt.MinTxsPerSec, pt.MaxTxsPerSec)
	}
	if _, err := run([]string{
		"-engine", "si", "-workload", "closedloop", "-sweep-reps", "0",
	}, io.Discard, io.Discard); err == nil {
		t.Error("-sweep-reps 0 accepted")
	}
}

// lockedWriter lets the serve test read stderr while the run goroutine
// writes to it.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRunServeLivePlane is the live-demo acceptance path: sibench
// -serve answers /healthz, /metrics and /events while the closed-loop
// workload is still running.
func TestRunServeLivePlane(t *testing.T) {
	stderr := &lockedWriter{}
	var out bytes.Buffer
	done := make(chan struct{})
	var code int
	var runErr error
	go func() {
		defer close(done)
		code, runErr = run([]string{
			"-engine", "si", "-workload", "closedloop",
			"-duration", "3s", "-sessions", "2", "-objects", "4",
			"-serve", "127.0.0.1:0",
		}, &out, stderr)
	}()

	addrRE := regexp.MustCompile(`obs: serving http://([^/]+)/`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced; stderr:\n%s", stderr.String())
		}
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return resp.StatusCode, string(body)
	}

	if sc, body := get("/healthz"); sc != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", sc, body)
	}
	if sc, body := get("/metrics"); sc != http.StatusOK || !strings.Contains(body, "engine_commits_total") {
		t.Errorf("/metrics = %d, body:\n%s", sc, body)
	}
	if sc, body := get("/metrics.json"); sc != http.StatusOK || !strings.Contains(body, "engine_commits_total") {
		t.Errorf("/metrics.json = %d, body:\n%s", sc, body)
	}
	// The recorder is attached when serving, so a bounded replay of
	// /events yields engine events mid-run.
	resp, err := http.Get(fmt.Sprintf("http://%s/events?replay=5", addr))
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("/events content-type = %q", ct)
	}
	frame := make([]byte, 4096)
	n, _ := resp.Body.Read(frame)
	resp.Body.Close()
	if !strings.Contains(string(frame[:n]), "data:") {
		t.Errorf("/events produced no SSE frame: %q", frame[:n])
	}

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "closedloop:") {
		t.Errorf("run output:\n%s", out.String())
	}
}

func writeBaseline(t *testing.T, rep ledger.BenchReport) string {
	t.Helper()
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
