package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunRegistersCertified(t *testing.T) {
	t.Parallel()
	for _, eng := range []string{"si", "ser", "psi"} {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			t.Parallel()
			var out bytes.Buffer
			code, err := run([]string{
				"-engine", eng, "-workload", "registers",
				"-sessions", "2", "-txs", "5", "-ops", "2", "-objects", "3",
				"-certify",
			}, &out, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if code != 0 {
				t.Errorf("exit = %d\n%s", code, out.String())
			}
			if !strings.Contains(out.String(), "history certified") {
				t.Errorf("output: %s", out.String())
			}
		})
	}
}

func TestRunWriteSkewWorkload(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-engine", "ser", "-workload", "writeskew", "-rounds", "5"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "write-skew anomalies: 0 / 5") {
		t.Errorf("SER engine should produce zero anomalies:\n%s", out.String())
	}
}

func TestRunTransfersWorkload(t *testing.T) {
	t.Parallel()
	for _, chopped := range []string{"-chopped=false", "-chopped=true"} {
		var out bytes.Buffer
		code, err := run([]string{
			"-engine", "si", "-workload", "transfers",
			"-sessions", "2", "-transfers", "3", "-accounts", "4", "-hops", "2", chopped,
		}, &out, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 || !strings.Contains(out.String(), "transfers:") {
			t.Errorf("%s: code=%d out=%s", chopped, code, out.String())
		}
	}
}

func TestRunLongForkWorkload(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-engine", "psi", "-workload", "longfork", "-certify"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "history certified PSI") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-engine", "bogus"}, &out, io.Discard); err == nil {
		t.Error("bogus engine accepted")
	}
	if _, err := run([]string{"-workload", "bogus"}, &out, io.Discard); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := run([]string{"-engine", "si", "-workload", "longfork"}, &out, io.Discard); err == nil {
		t.Error("longfork on SI engine accepted")
	}
}

func TestRunBankingWorkload(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-engine", "si", "-workload", "banking", "-atomic-lookup", "-certify"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "spliced history allowed by SI: false") {
		t.Errorf("Figure 5 staging output:\n%s", out.String())
	}
	out.Reset()
	if _, err := run([]string{"-engine", "si", "-workload", "banking", "-certify"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "spliced history allowed by SI: true") {
		t.Errorf("Figure 6 staging output:\n%s", out.String())
	}
}

func TestRunSSIEngine(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "ssi", "-workload", "registers",
		"-sessions", "2", "-txs", "4", "-ops", "2", "-objects", "3", "-certify",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "history certified SER") {
		t.Errorf("SSI history should certify SER:\n%s", out.String())
	}
}

func TestRunSmallBankWorkload(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{
		"-engine", "ssi", "-workload", "smallbank",
		"-sessions", "2", "-txs", "10", "-accounts", "4",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 overdrawn customers") {
		t.Errorf("SSI smallbank output:\n%s", out.String())
	}
}
