package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunGroupCommitReport pins the batch accounting in the bench
// artifact: an SI closed-loop run records the group-commit block
// (batches executed, batch members, solo fall-outs, batch-size
// quantiles), and -group-commit=false removes both the sequencer and
// the block — the ledger shape of pre-batching runs.
func TestRunGroupCommitReport(t *testing.T) {
	t.Parallel()
	readReport := func(t *testing.T, extra ...string) benchReport {
		t.Helper()
		path := filepath.Join(t.TempDir(), "bench.json")
		args := append([]string{
			"-engine", "si", "-workload", "closedloop",
			"-sessions", "4", "-txs", "25", "-objects", "8",
			"-bench-json", path,
		}, extra...)
		code, err := run(args, new(bytes.Buffer), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("exit = %d", code)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep benchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	t.Run("on", func(t *testing.T) {
		t.Parallel()
		rep := readReport(t)
		gc := rep.GroupCommit
		if gc == nil {
			t.Fatal("no group_commit block with batching on")
		}
		if gc.Batches <= 0 || gc.BatchedCommits < gc.Batches {
			t.Errorf("batch accounting = %+v", gc)
		}
		// Only writing commit attempts go through a batch or fall out
		// solo (read-only commits touch neither counter), so the two
		// together are bounded by the run's commit attempts.
		if total := gc.BatchedCommits + gc.SoloCommits; total <= 0 || total > rep.Commits+rep.Conflicts {
			t.Errorf("batched %d + solo %d outside (0, commits %d + conflicts %d]",
				gc.BatchedCommits, gc.SoloCommits, rep.Commits, rep.Conflicts)
		}
		if gc.P50BatchSize < 1 {
			t.Errorf("p50 batch size = %v, want >= 1", gc.P50BatchSize)
		}
	})
	t.Run("off", func(t *testing.T) {
		t.Parallel()
		rep := readReport(t, "-group-commit=false")
		if rep.GroupCommit != nil {
			t.Errorf("group_commit block present with the sequencer disabled: %+v", rep.GroupCommit)
		}
	})
}

// TestRunSweepGroupCommitPoints pins the per-point accounting: every
// sweep point of an SI closed-loop sweep carries its repetition's
// group-commit block, and the headline block mirrors the best point.
func TestRunSweepGroupCommitPoints(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "bench.json")
	code, err := run([]string{
		"-engine", "si", "-workload", "closedloop",
		"-sweep", "1,2", "-sessions", "4", "-txs", "15", "-objects", "8",
		"-bench-json", path,
	}, new(bytes.Buffer), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("sweep points: %d", len(rep.Sweep))
	}
	for _, pt := range rep.Sweep {
		if pt.GroupCommit == nil || pt.GroupCommit.Batches <= 0 {
			t.Errorf("procs=%d missing batch accounting: %+v", pt.Procs, pt.GroupCommit)
		}
	}
	if rep.GroupCommit == nil {
		t.Error("headline group_commit block missing")
	}
}
