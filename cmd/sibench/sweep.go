package main

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/obs"
	"sian/internal/workload"
)

// sweepPoint is one entry of a -sweep run: the closed-loop workload
// executed from scratch at a given GOMAXPROCS.
type sweepPoint struct {
	Procs              int     `json:"procs"`
	Sessions           int     `json:"sessions"`
	ElapsedNS          int64   `json:"elapsed_ns"`
	Commits            int64   `json:"commits"`
	Conflicts          int64   `json:"conflicts"`
	Retries            int64   `json:"retries"`
	TxsPerSec          float64 `json:"txs_per_sec"`
	P50CommitLatencyNS float64 `json:"p50_commit_latency_ns"`
	P99CommitLatencyNS float64 `json:"p99_commit_latency_ns"`
}

// parseSweep parses a comma-separated GOMAXPROCS list like "1,2,4".
func parseSweep(spec string) ([]int, error) {
	var procs []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sweep entry %q (want positive integers, e.g. 1,2,4)", f)
		}
		procs = append(procs, n)
	}
	return procs, nil
}

// sweepConfig carries the flag values a sweep run needs.
type sweepConfig struct {
	spec      string
	engine    string
	kind      engine.Kind
	model     depgraph.Model
	sessions  int
	txs       int
	ops       int
	objects   int
	duration  time.Duration
	hotkeys   int
	disjoint  bool
	seed      int64
	certify   bool
	parallel  int
	benchJSON string
}

// runSweep executes the closed-loop workload once per GOMAXPROCS value
// in the sweep, each against a fresh database and metrics registry, and
// reports a scaling table (optionally as a sibench/v2 JSON artifact).
// With -certify every swept run's recorded history is certified against
// the engine's model; a non-member history fails the sweep.
func runSweep(cfg sweepConfig, stdout io.Writer) (int, error) {
	procsList, err := parseSweep(cfg.spec)
	if err != nil {
		return 2, err
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	exit := 0
	points := make([]sweepPoint, 0, len(procsList))
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		reg := obs.NewRegistry()
		db, err := engine.New(cfg.kind, engine.Config{Metrics: reg})
		if err != nil {
			return 2, err
		}
		out, err := workload.RunClosedLoop(db, workload.ClosedLoopConfig{
			Sessions: cfg.sessions, Ops: cfg.txs, OpsPerTx: cfg.ops,
			Objects: cfg.objects, Duration: cfg.duration,
			HotKeys: cfg.hotkeys, Disjoint: cfg.disjoint, Seed: cfg.seed,
		})
		if err != nil {
			db.Close()
			return 2, fmt.Errorf("sweep procs=%d: %w", procs, err)
		}
		commitLat := reg.Histogram("engine_commit_latency_ns", obs.L("engine", cfg.kind.String()))
		pt := sweepPoint{
			Procs:              procs,
			Sessions:           cfg.sessions,
			ElapsedNS:          out.Elapsed.Nanoseconds(),
			Commits:            out.Commits,
			Conflicts:          out.Conflicts,
			Retries:            out.Retries,
			P50CommitLatencyNS: commitLat.Quantile(0.50),
			P99CommitLatencyNS: commitLat.Quantile(0.99),
		}
		if secs := out.Elapsed.Seconds(); secs > 0 {
			pt.TxsPerSec = float64(out.Commits) / secs
		}
		points = append(points, pt)
		fmt.Fprintf(stdout, "sweep procs=%d sessions=%d commits=%d conflicts=%d retries=%d elapsed=%v txs/sec=%.0f\n",
			procs, cfg.sessions, out.Commits, out.Conflicts, out.Retries,
			out.Elapsed.Round(time.Microsecond), pt.TxsPerSec)
		if cfg.certify {
			db.Flush()
			res, cerr := check.Certify(db.History(), cfg.model, check.Options{
				NoInit: true, PinInit: true, Budget: 10_000_000, Parallelism: cfg.parallel,
			})
			if cerr != nil {
				db.Close()
				return 2, fmt.Errorf("sweep procs=%d certify: %w", procs, cerr)
			}
			if !res.Member {
				fmt.Fprintf(stdout, "CERTIFICATION FAILED at procs=%d: history not allowed by %v\n", procs, cfg.model)
				if res.Explain != nil {
					fmt.Fprintf(stdout, "  explain: %s\n", res.Explain)
				}
				exit = 1
			} else {
				fmt.Fprintf(stdout, "  history certified %v (%d candidate graphs examined)\n", cfg.model, res.Examined)
			}
		}
		if err := db.Close(); err != nil {
			return 2, err
		}
	}
	if len(points) > 1 {
		base := points[0]
		for _, pt := range points[1:] {
			if base.TxsPerSec > 0 {
				fmt.Fprintf(stdout, "scaling: procs=%d is %.2fx procs=%d\n",
					pt.Procs, pt.TxsPerSec/base.TxsPerSec, base.Procs)
			}
		}
	}
	if cfg.benchJSON != "" {
		rep := benchReport{
			Schema:     benchSchema,
			Engine:     cfg.engine,
			Workload:   "closedloop",
			Sessions:   cfg.sessions,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: orig,
			Sweep:      points,
		}
		// Headline the best point so single-run consumers of the
		// schema still see throughput fields.
		best := points[0]
		for _, pt := range points[1:] {
			if pt.TxsPerSec > best.TxsPerSec {
				best = pt
			}
		}
		rep.ElapsedNS = best.ElapsedNS
		rep.Commits = best.Commits
		rep.Conflicts = best.Conflicts
		rep.Retries = best.Retries
		rep.TxsPerSec = best.TxsPerSec
		rep.P50CommitLatencyNS = best.P50CommitLatencyNS
		rep.P99CommitLatencyNS = best.P99CommitLatencyNS
		if err := encodeBenchReport(cfg.benchJSON, rep); err != nil {
			return 2, err
		}
	}
	return exit, nil
}
