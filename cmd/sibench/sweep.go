package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"sian/internal/check"
	"sian/internal/cliutil"
	"sian/internal/engine"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/ledger"
	"sian/internal/workload"
)

// parseSweep parses a comma-separated GOMAXPROCS list like "1,2,4".
func parseSweep(spec string) ([]int, error) {
	var procs []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sweep entry %q (want positive integers, e.g. 1,2,4)", f)
		}
		procs = append(procs, n)
	}
	return procs, nil
}

// repOutcome is one repetition of one sweep point: the recorded point
// plus the certification statistics needed for reporting.
type repOutcome struct {
	pt       ledger.SweepPoint
	examined int
}

// runSweep executes the closed-loop workload once (or -sweep-reps
// times) per GOMAXPROCS value in the sweep, each repetition against a
// fresh database and metrics registry, and reports a scaling table.
// With reps > 1 the recorded point is the repetition with median
// throughput, annotated with the spread — a single noisy run on a
// shared host can then neither poison the ledger nor trip the
// -compare gate. With -certify every repetition's recorded history is
// certified against the engine's model; a non-member history fails
// the sweep. The live plane (when serving) tracks the current
// repetition's registry.
func runSweep(cfg runConfig, o *cliutil.Obs, rec *eventlog.Recorder, stdout io.Writer) (int, ledger.BenchReport, error) {
	procsList, err := parseSweep(cfg.sweep)
	if err != nil {
		return 2, ledger.BenchReport{}, err
	}
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	exit := 0
	points := make([]ledger.SweepPoint, 0, len(procsList))
	for _, procs := range procsList {
		runtime.GOMAXPROCS(procs)
		outcomes := make([]repOutcome, 0, cfg.sweepReps)
		pointFailed := false
		for r := 0; r < cfg.sweepReps; r++ {
			reg := obs.NewRegistry()
			o.SetRegistry(reg)
			db, err := engine.New(cfg.kind, engine.Config{
				Metrics: reg, Recorder: rec,
				DisableGroupCommit: !cfg.groupCommit,
				DisableReadCache:   !cfg.readCache,
			})
			if err != nil {
				return 2, ledger.BenchReport{}, err
			}
			out, err := workload.RunClosedLoop(db, workload.ClosedLoopConfig{
				Sessions: cfg.sessions, Ops: cfg.txs, OpsPerTx: cfg.ops,
				Objects: cfg.objects, Duration: cfg.duration,
				HotKeys: cfg.hotkeys, Disjoint: cfg.disjoint, Seed: cfg.seed,
			})
			if err != nil {
				db.Close()
				return 2, ledger.BenchReport{}, fmt.Errorf("sweep procs=%d: %w", procs, err)
			}
			commitLat := reg.Histogram("engine_commit_latency_ns", obs.L("engine", cfg.kind.String()))
			oc := repOutcome{pt: ledger.SweepPoint{
				Procs:              procs,
				Sessions:           cfg.sessions,
				ElapsedNS:          out.Elapsed.Nanoseconds(),
				Commits:            out.Commits,
				Conflicts:          out.Conflicts,
				Retries:            out.Retries,
				P50CommitLatencyNS: commitLat.Quantile(0.50),
				P99CommitLatencyNS: commitLat.Quantile(0.99),
			}}
			oc.pt.GroupCommit = groupCommitStats(reg, cfg.kind)
			if secs := out.Elapsed.Seconds(); secs > 0 {
				oc.pt.TxsPerSec = float64(out.Commits) / secs
			}
			if cfg.sweepReps > 1 {
				fmt.Fprintf(stdout, "  rep %d/%d procs=%d txs/sec=%.0f\n", r+1, cfg.sweepReps, procs, oc.pt.TxsPerSec)
			}
			if cfg.certify {
				db.Flush()
				res, cerr := check.Certify(db.History(), cfg.model, check.Options{
					NoInit: true, PinInit: true, Budget: 10_000_000, Parallelism: cfg.parallel,
				})
				if cerr != nil {
					db.Close()
					return 2, ledger.BenchReport{}, fmt.Errorf("sweep procs=%d certify: %w", procs, cerr)
				}
				if !res.Member {
					fmt.Fprintf(stdout, "CERTIFICATION FAILED at procs=%d: history not allowed by %v\n", procs, cfg.model)
					if res.Explain != nil {
						fmt.Fprintf(stdout, "  explain: %s\n", res.Explain)
					}
					exit = 1
					pointFailed = true
				}
				oc.examined = res.Examined
			}
			if err := db.Close(); err != nil {
				return 2, ledger.BenchReport{}, err
			}
			outcomes = append(outcomes, oc)
		}

		// Record the median-throughput repetition, annotated with the
		// spread when there was more than one.
		sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].pt.TxsPerSec < outcomes[j].pt.TxsPerSec })
		med := outcomes[(len(outcomes)-1)/2]
		if cfg.sweepReps > 1 {
			med.pt.Reps = cfg.sweepReps
			med.pt.MinTxsPerSec = outcomes[0].pt.TxsPerSec
			med.pt.MaxTxsPerSec = outcomes[len(outcomes)-1].pt.TxsPerSec
		}
		points = append(points, med.pt)
		fmt.Fprintf(stdout, "sweep procs=%d sessions=%d commits=%d conflicts=%d retries=%d elapsed=%v txs/sec=%.0f\n",
			procs, cfg.sessions, med.pt.Commits, med.pt.Conflicts, med.pt.Retries,
			time.Duration(med.pt.ElapsedNS).Round(time.Microsecond), med.pt.TxsPerSec)
		if cfg.sweepReps > 1 {
			fmt.Fprintf(stdout, "  median of %d reps, spread %.0f..%.0f txs/sec\n",
				cfg.sweepReps, med.pt.MinTxsPerSec, med.pt.MaxTxsPerSec)
		}
		if cfg.certify && !pointFailed {
			fmt.Fprintf(stdout, "  history certified %v (%d candidate graphs examined)\n", cfg.model, med.examined)
		}
	}
	if len(points) > 1 {
		base := points[0]
		for _, pt := range points[1:] {
			if base.TxsPerSec > 0 {
				fmt.Fprintf(stdout, "scaling: procs=%d is %.2fx procs=%d\n",
					pt.Procs, pt.TxsPerSec/base.TxsPerSec, base.Procs)
			}
		}
	}

	rep := ledger.BenchReport{
		Schema:     benchSchema,
		Engine:     cfg.engine,
		Workload:   "closedloop",
		Sessions:   cfg.sessions,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: orig,
		Sweep:      points,
	}
	// Headline the best point so single-run consumers of the schema
	// still see throughput fields.
	best := points[0]
	for _, pt := range points[1:] {
		if pt.TxsPerSec > best.TxsPerSec {
			best = pt
		}
	}
	rep.ElapsedNS = best.ElapsedNS
	rep.Commits = best.Commits
	rep.Conflicts = best.Conflicts
	rep.Retries = best.Retries
	rep.TxsPerSec = best.TxsPerSec
	rep.P50CommitLatencyNS = best.P50CommitLatencyNS
	rep.P99CommitLatencyNS = best.P99CommitLatencyNS
	rep.GroupCommit = best.GroupCommit
	return exit, rep, nil
}
