// Command sitables regenerates the reproduction's result tables: the
// anomaly × model classification of Figure 2, the chopping verdicts of
// Figures 5/6/11/12, the robustness verdicts of §6, and an operational
// engine × anomaly matrix obtained by staging the anomalies on the
// reference engines. Its output backs EXPERIMENTS.md.
//
// Usage:
//
//	sitables [-table all|anomalies|chopping|robustness|engines]
//	         [-trace] [-metrics file|-] [-serve addr] [-pprof addr]
//
// The shared observability flags (see internal/cliutil) expose the
// staging engines' metrics: -metrics dumps the registry on exit,
// -serve runs the live plane while the tables regenerate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sian/internal/check"
	"sian/internal/chopping"
	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/robustness"
	"sian/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sitables:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sitables", flag.ContinueOnError)
	table := fs.String("table", "all", "table to print: all, anomalies, chopping, robustness or engines")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := obsFlags.Start("sitables", os.Stderr)
	if err != nil {
		return err
	}
	defer func() { _, _ = o.Finish(0, nil, w, os.Stderr) }()
	all := *table == "all"
	printed := false
	if all || *table == "anomalies" {
		if err := anomalyTable(w); err != nil {
			return err
		}
		printed = true
	}
	if all || *table == "chopping" {
		if err := choppingTable(w); err != nil {
			return err
		}
		printed = true
	}
	if all || *table == "robustness" {
		robustnessTable(w)
		printed = true
	}
	if all || *table == "engines" {
		if err := engineTable(w, o.Registry); err != nil {
			return err
		}
		printed = true
	}
	if !printed {
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}

func mark(b bool) string {
	if b {
		return "allowed"
	}
	return "-"
}

// anomalyTable certifies the Figure 2 histories against all four
// models.
func anomalyTable(w io.Writer) error {
	fmt.Fprintln(w, "Table 1 — Figure 2 anomalies vs consistency models (certifier verdicts)")
	fmt.Fprintf(w, "  %-28s %-8s %-8s %-8s %-8s %-8s\n", "history", "SER", "SI", "PSI", "PC", "GSI")
	models := []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}
	for _, ex := range workload.Examples() {
		row := make([]bool, len(models))
		for i, m := range models {
			res, err := check.Certify(ex.History, m, check.Options{
				NoInit: true, PinInit: true, Budget: 1_000_000,
			})
			if err != nil {
				return fmt.Errorf("%s under %v: %w", ex.Name, m, err)
			}
			row[i] = res.Member
		}
		fmt.Fprintf(w, "  %-28s %-8s %-8s %-8s %-8s %-8s\n",
			ex.Name, mark(row[0]), mark(row[1]), mark(row[2]), mark(row[3]), mark(row[4]))
	}
	fmt.Fprintln(w)
	return nil
}

// choppingTable runs the static chopping analysis on the paper's
// program sets at all three levels.
func choppingTable(w io.Writer) error {
	fmt.Fprintln(w, "Table 2 — static chopping analysis (correct = no critical cycle)")
	fmt.Fprintf(w, "  %-34s %-10s %-10s %-10s\n", "programs", "SER", "SI", "PSI")
	sets := []struct {
		name     string
		programs []chopping.Program
	}{
		{"Fig 5 {transfer, lookupAll}", workload.Fig5Programs()},
		{"Fig 6 {transfer, lookup1/2}", workload.Fig6Programs()},
		{"Fig 11 {write1, write2}", workload.Fig11Programs()},
		{"Fig 12 {write1/2, read1/2}", workload.Fig12Programs()},
	}
	levels := []chopping.Criticality{chopping.SERCritical, chopping.SICritical, chopping.PSICritical}
	for _, set := range sets {
		cells := make([]string, len(levels))
		for i, l := range levels {
			v, err := chopping.CheckStatic(set.programs, l)
			if err != nil {
				return fmt.Errorf("%s at %v: %w", set.name, l, err)
			}
			if v.OK {
				cells[i] = "correct"
			} else {
				cells[i] = "critical"
			}
		}
		fmt.Fprintf(w, "  %-34s %-10s %-10s %-10s\n", set.name, cells[0], cells[1], cells[2])
	}
	fmt.Fprintln(w)
	return nil
}

// robustnessTable runs the §6 static analyses on the example apps.
func robustnessTable(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — static robustness analyses")
	fmt.Fprintf(w, "  %-28s %-12s %-12s\n", "application", "SI→SER", "PSI→SI")
	apps := []struct {
		name string
		app  robustness.App
	}{
		{"write skew (broken)", workload.WriteSkewApp()},
		{"write skew (fixed)", workload.WriteSkewAppFixed()},
		{"transfer + lookups", workload.TransferApp()},
		{"long fork", workload.LongForkApp()},
		{"SmallBank", workload.SmallBankApp(2, false)},
		{"SmallBank (fixed)", workload.SmallBankApp(2, true)},
	}
	verdict := func(robust bool) string {
		if robust {
			return "robust"
		}
		return "NOT robust"
	}
	for _, a := range apps {
		_, si := robustness.CheckSIRobust(a.app)
		_, psi := robustness.CheckPSIRobust(a.app)
		fmt.Fprintf(w, "  %-28s %-12s %-12s\n", a.name, verdict(si), verdict(psi))
	}
	fmt.Fprintln(w)
}

// engineTable stages the write-skew and long-fork anomalies on each
// engine and reports whether they are realisable.
func engineTable(w io.Writer, reg *obs.Registry) error {
	fmt.Fprintln(w, "Table 4 — anomalies staged on the reference engines")
	fmt.Fprintf(w, "  %-8s %-22s %-22s\n", "engine", "write skew", "long fork")
	for _, kind := range []engine.Kind{engine.SER, engine.SSI, engine.SI, engine.PSI} {
		ws, err := stageWriteSkew(kind, reg)
		if err != nil {
			return err
		}
		lf := "n/a"
		if kind == engine.PSI {
			ok, err := stageLongFork(reg)
			if err != nil {
				return err
			}
			lf = realised(ok)
		} else {
			lf = "not realisable"
		}
		fmt.Fprintf(w, "  %-8s %-22s %-22s\n", kind, realised(ws), lf)
	}
	fmt.Fprintln(w)
	return nil
}

func realised(ok bool) string {
	if ok {
		return "realisable"
	}
	return "not realisable"
}

// stageWriteSkew attempts the Figure 2(d) interleaving; it reports
// whether both withdrawals committed.
func stageWriteSkew(kind engine.Kind, reg *obs.Registry) (bool, error) {
	db, err := engine.New(kind, engine.Config{Metrics: reg})
	if err != nil {
		return false, err
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"a1": 60, "a2": 60}); err != nil {
		return false, err
	}
	t1, err := db.Session("s1").Begin("w1")
	if err != nil {
		return false, err
	}
	t2, err := db.Session("s2").Begin("w2")
	if err != nil {
		return false, err
	}
	for _, m := range []*engine.ManualTx{t1, t2} {
		if _, err := m.Read("a1"); err != nil {
			return false, err
		}
		if _, err := m.Read("a2"); err != nil {
			return false, err
		}
	}
	if err := t1.Write("a1", -40); err != nil {
		return false, err
	}
	if err := t2.Write("a2", -40); err != nil {
		return false, err
	}
	err1 := t1.Commit()
	err2 := t2.Commit()
	return err1 == nil && err2 == nil, nil
}

// stageLongFork stages Figure 2(c) on a manual-propagation PSI engine
// and reports whether the recorded history certifies PSI but not SI.
func stageLongFork(reg *obs.Registry) (bool, error) {
	db, err := engine.New(engine.PSI, engine.Config{ManualPropagation: true, Metrics: reg})
	if err != nil {
		return false, err
	}
	defer db.Close()
	h, err := workload.StageLongFork(db)
	if err != nil {
		return false, err
	}
	opts := check.Options{NoInit: true, PinInit: true, Budget: 1_000_000}
	psi, err := check.Certify(h, depgraph.PSI, opts)
	if err != nil {
		return false, err
	}
	si, err := check.Certify(h, depgraph.SI, opts)
	if err != nil {
		return false, err
	}
	return psi.Member && !si.Member, nil
}
