package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllTables(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	wants := []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		// Figure 2 classification row fragments.
		"write skew (Fig 2d)", "long fork (Fig 2c)",
		// Chopping verdicts.
		"Fig 5", "critical", "Fig 6", "correct",
		// Robustness.
		"NOT robust",
		// Engine staging: SER must not realise the write skew, SI must.
		"SER", "not realisable", "realisable",
	}
	for _, w := range wants {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestRunSingleTable(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-table", "anomalies"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Table 2") {
		t.Error("unexpected chopping table")
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Error("missing anomaly table")
	}
}

func TestRunUnknownTable(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-table", "bogus"}, &out); err == nil {
		t.Error("unknown table accepted")
	}
}

// TestEngineRows verifies the semantic content of Table 4: the SI and
// PSI engines realise the write skew, the SER engine does not, and
// only PSI realises the long fork.
func TestEngineRows(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run([]string{"-table", "engines"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		switch fields[0] {
		case "SER":
			if !strings.Contains(line, "not realisable") {
				t.Errorf("SER row: %s", line)
			}
		case "SI":
			if !strings.HasPrefix(strings.TrimSpace(line), "SI       realisable") &&
				!strings.Contains(line, "realisable") {
				t.Errorf("SI row: %s", line)
			}
		case "PSI":
			if strings.Count(line, "realisable")-strings.Count(line, "not realisable") < 1 {
				t.Errorf("PSI row should realise both anomalies: %s", line)
			}
		}
	}
}
