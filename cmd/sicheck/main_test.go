package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/histio"
	"sian/internal/workload"
)

// historyFile writes the example history to a temp file and returns
// its path.
func historyFile(t *testing.T, name string, ex *workload.Example) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := histio.EncodeHistory(f, ex.History); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWriteSkew(t *testing.T) {
	t.Parallel()
	path := historyFile(t, "ws", workload.WriteSkew())
	var out bytes.Buffer
	code, err := run([]string{"-init=false", path}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (SER rejects write skew)", code)
	}
	s := out.String()
	for _, want := range []string{"SER  DISALLOWED", "SI   ALLOWED", "PSI  ALLOWED"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSingleModelWithWitness(t *testing.T) {
	t.Parallel()
	path := historyFile(t, "ws", workload.WriteSkew())
	var out bytes.Buffer
	code, err := run([]string{"-init=false", "-model", "si", "-witness", path}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	s := out.String()
	for _, want := range []string{"SI   ALLOWED", "WR(", "WW("} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunStdin(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := histio.EncodeHistory(&buf, workload.SessionGuarantees().History); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run([]string{"-model", "ser"}, &buf, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out.String(), "ALLOWED") {
		t.Errorf("code=%d out=%q", code, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-model", "bogus"}, strings.NewReader("{}"), &out, io.Discard); err == nil {
		t.Error("bogus model accepted")
	}
	if _, err := run([]string{"nope.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := run([]string{"a", "b"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("extra args accepted")
	}
	if _, err := run(nil, strings.NewReader("not json"), &out, io.Discard); err == nil {
		t.Error("invalid json accepted")
	}
}

func TestRunDotOutput(t *testing.T) {
	t.Parallel()
	path := historyFile(t, "ws", workload.WriteSkew())
	dotPath := filepath.Join(t.TempDir(), "out.dot")
	var out bytes.Buffer
	code, err := run([]string{"-init=false", "-model", "si", "-dot", dotPath, path}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph") {
		t.Errorf("dot file content: %s", data)
	}
	// '-' writes to stdout.
	out.Reset()
	if _, err := run([]string{"-init=false", "-model", "si", "-dot", "-", path}, strings.NewReader(""), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph dependencies") {
		t.Errorf("stdout missing dot: %s", out.String())
	}
}

// TestRunFixtures exercises the committed sample files in testdata/.
func TestRunFixtures(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-init=false", "../../testdata/longfork_history.json"}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"SI   DISALLOWED", "PSI  ALLOWED", "forbidden cycle"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRunClassify(t *testing.T) {
	t.Parallel()
	path := historyFile(t, "ws", workload.WriteSkew())
	var out bytes.Buffer
	code, err := run([]string{"-init=false", "-classify", path}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "write skew") {
		t.Errorf("output: %s", out.String())
	}
	// A serializable history exits 0.
	path2 := historyFile(t, "ok", workload.SessionGuarantees())
	out.Reset()
	code, err = run([]string{"-init=false", "-classify", path2}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || !strings.Contains(out.String(), "serializable") {
		t.Errorf("code=%d out=%s", code, out.String())
	}
}
