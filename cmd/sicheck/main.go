// Command sicheck certifies a transactional history against
// serializability, snapshot isolation, parallel snapshot isolation,
// prefix consistency and generalised SI, using the dependency-graph
// characterisations of Cerone & Gotsman (PODC 2016) and the extension
// characterisations this module derives with the same technique.
//
// Usage:
//
//	sicheck [-model all|ser|si|psi|pc|gsi] [-init] [-init-value N]
//	        [-budget N] [-parallel N] [-witness] [-classify]
//	        [-dot out.dot] [-trace] [-metrics file|-] [-serve addr]
//	        [-pprof addr] [history.json]
//
// The history is read from the file argument or standard input; see
// internal/histio for the JSON schema. -trace prints per-phase timing
// lines on stderr; -metrics dumps the metrics registry (search
// counters and phase-duration histograms) on exit, in Prometheus text
// format ('-' for stdout, a path ending in .json for JSON). -serve
// runs the live observability plane (/metrics, /healthz,
// /debug/pprof/) during the check — useful for watching or profiling
// a long certification search; -pprof serves bare net/http/pprof.
// Exit status 0 means the history is allowed by every requested
// model, 1 that some model rejects it, 2 a usage or processing error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sian/internal/check"
	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/dot"
	"sian/internal/histio"
	"sian/internal/model"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sicheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the tool; it returns the process exit code and a usage
// or processing error (which maps to exit code 2).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sicheck", flag.ContinueOnError)
	modelFlag := fs.String("model", "all", "model to check: all, ser, si, psi, pc or gsi")
	addInit := fs.Bool("init", true, "add an initialisation transaction writing init-value to every object")
	initValue := fs.Int64("init-value", 0, "value written by the added initialisation transaction")
	budget := fs.Int("budget", 1_000_000, "maximum number of candidate dependency graphs to examine")
	parallel := fs.Int("parallel", 0, "worker goroutines for the certification search (0 = one per CPU)")
	witness := fs.Bool("witness", false, "print the witness dependency graph for members")
	dotOut := fs.String("dot", "", "write the first witness dependency graph as Graphviz DOT to this file ('-' for stdout)")
	classify := fs.Bool("classify", false, "name the anomaly class of the history across the model lattice")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	var in io.Reader = stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		in = f
	default:
		return 2, fmt.Errorf("at most one history file expected, got %d args", fs.NArg())
	}

	h, err := histio.DecodeHistory(in)
	if err != nil {
		return 2, err
	}

	models, err := selectModels(*modelFlag)
	if err != nil {
		return 2, err
	}

	o, err := obsFlags.Start("sicheck", stderr)
	if err != nil {
		return 2, err
	}
	reg, tr := o.Registry, o.Tracer
	finish := func(code int, err error) (int, error) {
		return o.Finish(code, err, stdout, stderr)
	}

	opts := check.Options{
		NoInit:      !*addInit,
		PinInit:     true,
		InitValue:   model.Value(*initValue),
		Budget:      *budget,
		Parallelism: *parallel,
		Tracer:      tr,
		Metrics:     reg,
	}
	if !*addInit {
		// Pin only when the history visibly carries its own init
		// transaction in front.
		opts.PinInit = h.NumTransactions() > 0 && h.Transaction(0).ID == model.InitTransactionID
	}

	if *classify {
		rep, err := check.Classify(h, opts)
		if err != nil {
			return finish(2, err)
		}
		fmt.Fprintf(stdout, "classification: %v\n", rep.Anomaly)
		if rep.Anomaly == check.Serializable {
			return finish(0, nil)
		}
		return finish(1, nil)
	}

	exit := 0
	dotDone := false
	for _, m := range models {
		res, err := check.Certify(h, m, opts)
		if err != nil {
			return finish(2, fmt.Errorf("%v: %w", m, err))
		}
		verdict := "ALLOWED"
		if !res.Member {
			verdict = "DISALLOWED"
			exit = 1
		}
		fmt.Fprintf(stdout, "%-4s %s (%d candidate graphs examined)\n", m, verdict, res.Examined)
		if res.Member && *witness {
			printGraph(stdout, res.Graph)
		}
		if !res.Member && res.Explain != nil {
			printExplain(stdout, res.Explain)
		}
		if res.Member && *dotOut != "" && !dotDone {
			dotDone = true
			if err := writeDot(*dotOut, stdout, res.Graph); err != nil {
				return finish(2, err)
			}
		}
	}
	return finish(exit, nil)
}

// printExplain renders the explainable verdict: the violated axiom
// and, when available, the witnessing forbidden cycle with labelled
// edges.
func printExplain(w io.Writer, e *check.Explanation) {
	fmt.Fprintf(w, "  explain: axiom %s\n", e.Axiom)
	if len(e.Cycle) > 0 && e.Graph != nil {
		fmt.Fprintf(w, "  forbidden cycle: %s\n", e.Graph.FormatCycle(e.Cycle))
	}
	if e.Detail != "" {
		fmt.Fprintf(w, "  detail: %s\n", e.Detail)
	}
	if !e.Definitive {
		fmt.Fprintln(w, "  (non-definitive: the search branched; the cycle explains one rejected candidate)")
	}
}

// writeDot emits the witness graph as DOT to the named file, or to
// stdout when the name is "-".
func writeDot(name string, stdout io.Writer, g *depgraph.Graph) error {
	if name == "-" {
		return dot.Graph(stdout, g)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := dot.Graph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectModels(s string) ([]depgraph.Model, error) {
	switch s {
	case "all":
		return []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}, nil
	case "ser":
		return []depgraph.Model{depgraph.SER}, nil
	case "si":
		return []depgraph.Model{depgraph.SI}, nil
	case "psi":
		return []depgraph.Model{depgraph.PSI}, nil
	case "pc":
		return []depgraph.Model{depgraph.PC}, nil
	case "gsi":
		return []depgraph.Model{depgraph.GSI}, nil
	default:
		return nil, fmt.Errorf("unknown model %q (want all, ser, si, psi, pc or gsi)", s)
	}
}

func printGraph(w io.Writer, g *depgraph.Graph) {
	name := func(i int) string {
		if id := g.History.Transaction(i).ID; id != "" {
			return id
		}
		return fmt.Sprintf("#%d", i)
	}
	for _, x := range g.Objects() {
		for _, p := range g.WRObj(x).Pairs() {
			fmt.Fprintf(w, "  WR(%s): %s -> %s\n", x, name(p[0]), name(p[1]))
		}
		for _, p := range g.WWObj(x).Pairs() {
			fmt.Fprintf(w, "  WW(%s): %s -> %s\n", x, name(p[0]), name(p[1]))
		}
		for _, p := range g.RWObj(x).Pairs() {
			fmt.Fprintf(w, "  RW(%s): %s -> %s\n", x, name(p[0]), name(p[1]))
		}
	}
}
