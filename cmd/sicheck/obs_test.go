package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTraceAndExplain runs sicheck with -trace on the write-skew
// fixture and checks both observability outputs: phase timing lines on
// stderr and the explainable verdict (axiom + witness cycle) on stdout.
func TestRunTraceAndExplain(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run([]string{"-init=false", "-trace", "../../testdata/writeskew_history.json"},
		strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (SER disallows write skew)\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"DISALLOWED",
		"explain: axiom TOTALVIS",
		"forbidden cycle: ",
		"-RW(",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("stdout missing %q:\n%s", want, s)
		}
	}
	es := errOut.String()
	if !strings.Contains(es, "trace: phase=") {
		t.Errorf("stderr missing trace lines:\n%s", es)
	}
	for _, phase := range []string{"validate", "wr-enumeration", "extension-search", "explain"} {
		if !strings.Contains(es, phase) {
			t.Errorf("stderr missing phase %q:\n%s", phase, es)
		}
	}
}

// TestRunMetricsDump runs sicheck with -metrics - and checks the
// Prometheus registry (search counters) lands on stdout.
func TestRunMetricsDump(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-init=false", "-metrics", "-", "../../testdata/writeskew_history.json"},
		strings.NewReader(""), &out, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	s := out.String()
	for _, want := range []string{
		"# TYPE check_graphs_examined_total counter",
		`check_graphs_examined_total{model="SER"}`,
		"check_wr_assignments_total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, s)
		}
	}
}
