// Command siserve is the networked transactional KV server: the
// multicore SI engine behind the siwire binary protocol
// (internal/siwire), with commits made durable through the WAL storage
// driver (internal/storage/wal) and startup recovery certified by the
// online SI monitor.
//
// Usage:
//
//	siserve -dir waldir [-addr host:port] [-nosync] [-snapshot-every N]
//	        [-window N] [-check-recovery] [-volatile] [-trace-txns]
//	        [-trace] [-metrics file|-] [-serve addr] [-pprof addr]
//
// On startup siserve replays the write-ahead log in -dir (creating it
// when empty), feeds every replayed commit through the online monitor,
// and prints the recovery summary. If the replayed history is NOT a
// member of SI — torn state, a corrupt snapshot, or a genuinely
// anomalous log — the server refuses to serve: it prints the witness
// violations and exits 1 rather than expose uncertified state.
// -check-recovery runs exactly that startup (replay + certification)
// and exits without serving: 0 when the state is certified, 1 when
// refused — the crash-recovery smoke check in CI is this flag.
//
// -addr is the binary-protocol listener (framing documented on package
// siwire). A client that received a commit ok owns a durable commit:
// the ok is sent only after the record is fsynced. -nosync trades that
// guarantee for speed (testing only); -volatile skips the WAL entirely
// and serves the in-memory driver.
//
// -serve mounts the live observability plane and adds the serving
// endpoints to it: POST /v1/transact and GET /v1/info (the HTTP/JSON
// fallback for clients without the binary codec), plus /healthz fields
// reporting the WAL fsync lag (appended minus synced LSN) and the
// startup recovery verdict.
//
// -trace-txns turns on per-transaction commit-pipeline tracing
// (internal/obs/txtrace): every transaction gets a trace ID (adopted
// from the client when the siwire begin carries one) and monotonic
// stage spans through begin, validation, WAL append, group-fsync wait,
// publish and ack. Finished traces are served on the observability
// plane at GET /trace/{id} and GET /slow, commit-latency histogram
// buckets carry trace-ID exemplars, and commit responses return the
// span tree to tracing clients. Off by default; when off the
// per-commit cost is a nil check.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, sever
// connections (their open transactions abort — nothing acknowledged is
// lost), fsync and close the log. Exit status 0 on clean shutdown, 1
// when recovery is refused, 2 on usage or I/O errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"sian/internal/cliutil"
	"sian/internal/engine"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/ledger"
	"sian/internal/obs/txtrace"
	"sian/internal/siwire"
	"sian/internal/storage"
	"sian/internal/storage/wal"
)

func main() {
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	code, err := run(os.Args[1:], os.Stdout, os.Stderr, shutdown)
	if err != nil {
		fmt.Fprintln(os.Stderr, "siserve:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run is the testable main: it returns the exit code, serving until a
// value arrives on shutdown.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan os.Signal) (int, error) {
	fs := flag.NewFlagSet("siserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "binary-protocol listen address")
	dir := fs.String("dir", "", "write-ahead-log directory (created when empty)")
	volatile := fs.Bool("volatile", false, "serve the in-memory driver: no WAL, no durability")
	nosync := fs.Bool("nosync", false, "skip fsync on commit (testing only: acknowledged commits may be lost)")
	snapshotEvery := fs.Int("snapshot-every", 0, "snapshot + truncate the log every N records (0 = default, negative disables)")
	window := fs.Int("window", 0, "recovery certification monitor window (0 = default)")
	checkRecovery := fs.Bool("check-recovery", false, "replay and certify the log, then exit without serving (0 certified, 1 refused)")
	traceTxns := fs.Bool("trace-txns", false, "trace every transaction's commit-pipeline stages (served at /trace/{id} and /slow on the -serve plane)")
	obsFlags := cliutil.RegisterObsFlags(fs)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *volatile && (*dir != "" || *checkRecovery) {
		return 2, fmt.Errorf("-volatile is incompatible with -dir and -check-recovery")
	}
	if !*volatile && *dir == "" {
		return 2, fmt.Errorf("-dir is required (or pass -volatile for an in-memory server)")
	}

	o, err := obsFlags.Start("siserve", stderr)
	if err != nil {
		return 2, err
	}
	code, err := serve(serveConfig{
		addr: *addr, dir: *dir, volatile: *volatile, nosync: *nosync,
		snapshotEvery: *snapshotEvery, window: *window, checkRecovery: *checkRecovery,
		traceTxns: *traceTxns,
	}, o, stdout, stderr, shutdown)
	return o.Finish(code, err, stdout, stderr)
}

type serveConfig struct {
	addr          string
	dir           string
	volatile      bool
	nosync        bool
	snapshotEvery int
	window        int
	checkRecovery bool
	traceTxns     bool
}

func serve(cfg serveConfig, o *cliutil.Obs, stdout, stderr io.Writer, shutdown <-chan os.Signal) (int, error) {
	var (
		drv     storage.Driver
		wdrv    *wal.Driver
		gitRev  string
		durable bool
	)
	gitRev, _ = ledger.GitRev(".")
	if !cfg.volatile {
		var err error
		wdrv, err = wal.Open(wal.Options{
			Dir: cfg.dir, NoSync: cfg.nosync, SnapshotEvery: cfg.snapshotEvery,
			Window: cfg.window, Metrics: o.Registry,
		})
		var cerr *wal.CertifyError
		if errors.As(err, &cerr) {
			// Uncertified state: report the witness and refuse to serve.
			printRecovery(stdout, cerr.Info)
			fmt.Fprintf(stdout, "siserve: RECOVERY REFUSED: %s\n", cerr.Info.Verdict)
			for _, v := range cerr.Info.Violations {
				fmt.Fprintf(stdout, "  %s\n", v)
			}
			return 1, nil
		}
		if err != nil {
			return 2, err
		}
		printRecovery(stdout, wdrv.Recovery())
		drv, durable = wdrv, !cfg.nosync
		if cfg.checkRecovery {
			if err := wdrv.Close(); err != nil {
				return 2, err
			}
			fmt.Fprintln(stdout, "siserve: check-recovery ok")
			return 0, nil
		}
	} else {
		fmt.Fprintln(stdout, "siserve: volatile: serving the in-memory driver, commits are not durable")
	}

	var rec *eventlog.Recorder
	if o.Serving() {
		rec = eventlog.NewRecorder(0)
		o.SetRecorder(rec)
	}
	var txt *txtrace.Tracer
	if cfg.traceTxns {
		txt = txtrace.New(txtrace.Options{})
		o.SetTxTracer(txt)
		fmt.Fprintln(stdout, "siserve: transaction tracing on (/trace/{id}, /slow)")
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv, Metrics: o.Registry, Recorder: rec, TxTracer: txt})
	if err != nil {
		return 2, err
	}
	defer db.Close()

	info := func() siwire.Info {
		doc := siwire.Info{Name: "siserve", Engine: "si", GitRev: gitRev, Durable: durable}
		if wdrv != nil {
			r, st := wdrv.Recovery(), wdrv.Stats()
			doc.RecoveryCertified = r.Certified
			doc.RecoveryVerdict = r.Verdict
			doc.RecoveredCommits = r.Commits
			doc.AppendedLSN = st.AppendedLSN
			doc.SyncedLSN = st.SyncedLSN
		}
		return doc
	}
	srv := siwire.NewServer(siwire.ServerConfig{DB: db, Info: info})
	o.Handle("/v1/", srv.HTTPHandler())
	o.SetHealth(func() map[string]any {
		h := map[string]any{"durable": durable}
		if wdrv != nil {
			r, st := wdrv.Recovery(), wdrv.Stats()
			h["recovery_certified"] = r.Certified
			h["recovery_verdict"] = r.Verdict
			h["wal_appended_lsn"] = st.AppendedLSN
			h["wal_synced_lsn"] = st.SyncedLSN
			h["wal_fsync_lag"] = st.AppendedLSN - st.SyncedLSN
			h["wal_last_sync_unix_nano"] = st.LastSyncUnixNano
			h["wal_segment"] = st.Segment
			if st.SnapshotError != "" {
				h["wal_snapshot_error"] = st.SnapshotError
			}
		}
		return h
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return 2, err
	}
	// The parent of a supervised run scans for this line to learn the
	// bound address (the crash-recovery smoke check relies on it).
	fmt.Fprintf(stdout, "siserve: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case sig := <-shutdown:
		fmt.Fprintf(stderr, "siserve: %v: shutting down\n", sig)
		if err := srv.Close(); err != nil {
			return 2, err
		}
		<-serveErr
	case err := <-serveErr:
		if err != nil {
			return 2, err
		}
	}
	if err := db.Close(); err != nil {
		return 2, err
	}
	fmt.Fprintln(stdout, "siserve: shut down cleanly")
	return 0, nil
}

// printRecovery reports the startup replay on one or two lines.
func printRecovery(w io.Writer, r wal.RecoveryInfo) {
	fmt.Fprintf(w, "siserve: recovery: %d commits (%d records, %d skipped) from %d segment(s), snapshot %d objects, max ts %d, last lsn %d\n",
		r.Commits, r.Records, r.Skipped, r.Segments, r.SnapshotObjects, r.MaxTS, r.LastLSN)
	if r.TruncatedBytes > 0 {
		fmt.Fprintf(w, "siserve: recovery: truncated %d bytes of torn log tail (never acknowledged)\n", r.TruncatedBytes)
	}
	fmt.Fprintf(w, "siserve: recovery: %s\n", r.Verdict)
}
