package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"sync"
	"testing"
	"time"

	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/siwire"
	"sian/internal/storage/wal"
)

// TestHelperSiserve is not a test: it is the child process of
// TestCrashRecovery, re-executing this test binary as a real siserve
// (fsync enabled) so the parent can SIGKILL it mid-load.
func TestHelperSiserve(t *testing.T) {
	if os.Getenv("GO_SISERVE_HELPER") != "1" {
		t.Skip("helper process, not a test")
	}
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt)
	code, err := run([]string{"-dir", os.Getenv("GO_SISERVE_DIR"), "-addr", "127.0.0.1:0"},
		os.Stdout, os.Stderr, shutdown)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// TestCrashRecovery is the end-to-end durability check: a real siserve
// process (fsync on) is killed with SIGKILL mid-benchmark, and every
// commit the server acknowledged before the kill must survive — first
// verified by an in-process replay (which must certify), then by a
// restarted server read over the wire. "Acknowledged" is exactly the
// binary protocol's commit-ok: sent only after the record is fsynced.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a child process and fsyncs a real WAL")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestHelperSiserve$", "-test.v")
	cmd.Env = append(os.Environ(), "GO_SISERVE_HELPER=1", "GO_SISERVE_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Learn the child's bound address from its stdout.
	listenRE := regexp.MustCompile(`siserve: listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		for sc.Scan() {
		} // drain so the child never blocks on a full pipe
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported its listen address")
	}

	// Drive load: every worker increments its own object and records
	// the last acknowledged value. Workers run until the kill severs
	// their connections.
	const workers = 4
	var mu sync.Mutex
	acked := make(map[model.Obj]model.Value)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := model.Obj(fmt.Sprintf("crash/%d", w))
			c, err := siwire.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for v := model.Value(1); ; v++ {
				if _, err := c.Transact(func(tx *siwire.ClientTx) error {
					return tx.Write(obj, v)
				}); err != nil {
					return // the kill severed the connection
				}
				mu.Lock()
				acked[obj] = v
				mu.Unlock()
			}
		}(w)
	}

	// Let the load run, then SIGKILL mid-flight: no shutdown hook, no
	// final fsync, exactly a crash.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	killed = true
	cmd.Wait()
	wg.Wait()

	mu.Lock()
	ackedCopy := make(map[model.Obj]model.Value, len(acked))
	for k, v := range acked {
		ackedCopy[k] = v
	}
	mu.Unlock()
	if len(ackedCopy) == 0 {
		t.Fatal("no commit was acknowledged before the kill; nothing to verify")
	}
	total := model.Value(0)
	for _, v := range ackedCopy {
		total += v
	}
	t.Logf("killed after %d acknowledged commits across %d objects", total, len(ackedCopy))

	// 1. In-process replay must certify and contain every acknowledged
	// value (possibly more: a commit fsynced but killed before its ok
	// reached the client is durable yet unacknowledged).
	drv, err := wal.Open(wal.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	rinfo := drv.Recovery()
	if !rinfo.Certified {
		t.Fatalf("recovery not certified: %s", rinfo.Verdict)
	}
	for obj, want := range ackedCopy {
		v, ok := drv.Latest(obj)
		if !ok {
			t.Fatalf("acknowledged object %s lost entirely", obj)
		}
		if v.Val < want {
			t.Fatalf("acknowledged commit lost: %s recovered at %d, acknowledged %d", obj, v.Val, want)
		}
	}
	if err := drv.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. A restarted server over the same directory serves the
	// recovered state over the wire.
	drv2, err := wal.Open(wal.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	db, err := engine.New(engine.SI, engine.Config{Driver: drv2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := siwire.NewServer(siwire.ServerConfig{DB: db})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := siwire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	for obj, want := range ackedCopy {
		v, err := c.Read(obj)
		if err != nil {
			t.Fatalf("read %s over the wire: %v", obj, err)
		}
		if v < want {
			t.Fatalf("restarted server serves %s=%d, below acknowledged %d", obj, v, want)
		}
	}
	if _, err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}
