package main

import (
	"bytes"
	"io"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"

	"sian/internal/siwire"
)

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no dir", []string{"-addr", "127.0.0.1:0"}},
		{"volatile with dir", []string{"-volatile", "-dir", t.TempDir()}},
		{"volatile with check", []string{"-volatile", "-check-recovery"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code, err := run(tc.args, &out, &errw, nil)
			if err == nil || code != 2 {
				t.Fatalf("run(%v) = %d, %v; want code 2 and an error", tc.args, code, err)
			}
		})
	}
}

func TestCheckRecoveryFreshDir(t *testing.T) {
	var out, errw bytes.Buffer
	code, err := run([]string{"-dir", t.TempDir(), "-check-recovery"}, &out, &errw, nil)
	if err != nil || code != 0 {
		t.Fatalf("check-recovery: %d, %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "check-recovery ok") {
		t.Errorf("output: %s", out.String())
	}
}

// lineWatcher tees writes while watching for the "listening on" line,
// delivering the bound address once on addr.
type lineWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

var listenRE = regexp.MustCompile(`siserve: listening on (\S+)`)

func newLineWatcher() *lineWatcher { return &lineWatcher{addr: make(chan string, 1)} }

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := listenRE.FindSubmatch(w.buf.Bytes()); m != nil {
			w.sent = true
			w.addr <- string(m[1])
		}
	}
	return len(p), nil
}

func (w *lineWatcher) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeGracefulShutdown runs the full serve path in-process: a
// durable server comes up, accepts a transaction, and SIGTERM-style
// shutdown exits 0 after fsyncing and closing the log.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	stdout := newLineWatcher()
	var errw bytes.Buffer
	shutdown := make(chan os.Signal, 1)
	done := make(chan struct{})
	var code int
	var err error
	go func() {
		defer close(done)
		code, err = run([]string{"-dir", dir, "-addr", "127.0.0.1:0", "-nosync"}, stdout, &errw, shutdown)
	}()
	addr := <-stdout.addr

	c, derr := siwire.Dial(addr)
	if derr != nil {
		t.Fatal(derr)
	}
	lsn, terr := c.Transact(func(tx *siwire.ClientTx) error { return tx.Write("g", 1) })
	if terr != nil {
		t.Fatal(terr)
	}
	if lsn == 0 {
		t.Fatal("durable server returned LSN 0")
	}
	info, ierr := c.Info()
	if ierr != nil || info.Name != "siserve" || !info.RecoveryCertified {
		t.Fatalf("info: %+v, %v", info, ierr)
	}
	c.Close()

	shutdown <- syscall.SIGTERM
	<-done
	if err != nil || code != 0 {
		t.Fatalf("serve: %d, %v\nstdout: %s\nstderr: %s", code, err, stdout.String(), errw.String())
	}
	if !strings.Contains(stdout.String(), "shut down cleanly") {
		t.Errorf("stdout: %s", stdout.String())
	}

	// The committed write survived into a second incarnation.
	var out2 bytes.Buffer
	code, err = run([]string{"-dir", dir, "-check-recovery"}, &out2, io.Discard, nil)
	if err != nil || code != 0 {
		t.Fatalf("recheck: %d, %v\n%s", code, err, out2.String())
	}
	if !strings.Contains(out2.String(), "recovery: 1 commits") {
		t.Errorf("recheck output: %s", out2.String())
	}
}

// TestVolatileServe pins the -volatile path: no WAL, LSN 0 on commit.
func TestVolatileServe(t *testing.T) {
	stdout := newLineWatcher()
	shutdown := make(chan os.Signal, 1)
	done := make(chan struct{})
	var code int
	var err error
	go func() {
		defer close(done)
		code, err = run([]string{"-volatile", "-addr", "127.0.0.1:0"}, stdout, io.Discard, shutdown)
	}()
	addr := <-stdout.addr
	c, derr := siwire.Dial(addr)
	if derr != nil {
		t.Fatal(derr)
	}
	lsn, terr := c.Transact(func(tx *siwire.ClientTx) error { return tx.Write("v", 1) })
	if terr != nil {
		t.Fatal(terr)
	}
	if lsn != 0 {
		t.Errorf("volatile server returned LSN %d, want 0", lsn)
	}
	if info, err := c.Info(); err != nil || info.Durable {
		t.Errorf("info: %+v, %v", info, err)
	}
	c.Close()
	shutdown <- syscall.SIGTERM
	<-done
	if err != nil || code != 0 {
		t.Fatalf("serve: %d, %v", code, err)
	}
}
