package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSivet compiles the sivet binary into a scratch dir and returns
// its path, skipping the test when no go toolchain is on PATH.
func buildSivet(t *testing.T) (bin, repoRoot string) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain on PATH")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "sivet")
	cmd := exec.Command(goTool, "build", "-o", bin, "sian/cmd/sivet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sivet: %v\n%s", err, out)
	}
	return bin, root
}

// TestVettoolProtocol drives the real thing: `go vet -vettool=sivet`
// over a clean package (exit 0) and over the write-skew fixture (vet
// fails, diagnostic plus suggested fixes on stderr).
func TestVettoolProtocol(t *testing.T) {
	t.Parallel()
	bin, root := buildSivet(t)

	run := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = root
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	out, err := run("./internal/silint/fixtures/banking")
	if err != nil {
		t.Fatalf("clean package: go vet failed: %v\n%s", err, out)
	}

	out, err = run("./internal/silint/testdata/src/writeskew")
	if err == nil {
		t.Fatalf("write-skew package: go vet passed\n%s", out)
	}
	if !strings.Contains(out, "write-skew: dangerous cycle") {
		t.Errorf("missing diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "fix: promote read of") {
		t.Errorf("missing suggested fix:\n%s", out)
	}
}

// TestVersionAndFlagsProtocol pins the two auxiliary invocations
// cmd/go makes before running units: -V=full for the tool ID and
// -flags for the supported analyzer flags.
func TestVersionAndFlagsProtocol(t *testing.T) {
	t.Parallel()
	bin, _ := buildSivet(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "sivet version ") {
		t.Errorf("-V=full output %q lacks the tool-ID prefix", out)
	}
	out, err = exec.Command(bin, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags output %q, want []", out)
	}
}

// TestStandaloneMode runs sivet without a driver: source-loading mode.
func TestStandaloneMode(t *testing.T) {
	t.Parallel()
	bin, root := buildSivet(t)

	cmd := exec.Command(bin, "./internal/silint/fixtures/...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("clean run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no findings") {
		t.Errorf("output: %s", out)
	}

	cmd = exec.Command(bin, "-model", "si", "./internal/silint/testdata/src/writeskew")
	cmd.Dir = root
	out, err = cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Errorf("err = %v, want exit status 2", err)
	}
	if !strings.Contains(string(out), "write-skew: dangerous cycle") {
		t.Errorf("output: %s", out)
	}
}
