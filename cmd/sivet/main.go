// Command sivet runs the silint analyzers as a `go vet` tool:
//
//	go vet -vettool=$(which sivet) ./...
//
// go vet invokes the tool once per package with a JSON configuration
// file describing the type-check unit (source files plus compiled
// export data for every dependency); sivet implements that driver
// protocol — the same contract as x/tools' unitchecker, hand-rolled
// here because this module carries no third-party dependencies — and
// reports silint diagnostics with their suggested fixes at the
// offending call sites.
//
// Invoked directly (without a .cfg argument), sivet falls back to a
// standalone mode that loads packages from source like the silint
// command:
//
//	sivet [-model si|psi|all] [packages...]
//
// The analyzer selection in vettool mode comes from the SIVET_MODEL
// environment variable (si, psi or all; default si), since go vet
// offers no way to pass tool-specific flags through to the unit
// executions.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sian/internal/silint"
	"sian/internal/silint/analyzer"
)

func main() {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// cmd/go hashes this line into its action IDs; the binary
			// fingerprint makes rebuilt tools invalidate vet caches.
			fmt.Printf("%s version devel buildID=%s\n", progname, fingerprint())
			return
		case "-flags", "--flags":
			// cmd/go asks which analyzer flags the tool accepts.
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}
	os.Exit(standalone(os.Args[1:]))
}

// fingerprint hashes the executable itself, so `go vet` re-runs
// cached packages when sivet is rebuilt.
func fingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// config is the JSON unit description go vet writes for each package
// (the unitchecker.Config contract).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitcheck analyses one go vet unit: parse the package's files,
// type-check against the compiled export data of its dependencies, run
// the selected analyzer, print diagnostics. Exit 0 clean, 1 on driver
// errors, 2 when diagnostics were reported (the unitchecker contract).
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sivet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// sivet computes no cross-package facts, but go vet expects the
	// output file of every unit to exist before dependents run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "sivet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	a, err := analyzer.ByName(os.Getenv("SIVET_MODEL"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "sivet:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export data of each dependency comes from the compiled package
	// files go vet lists; ImportMap canonicalises source import paths.
	compiled := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if canonical, ok := cfg.ImportMap[importPath]; ok {
			importPath = canonical
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compiled.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}

	diags, err := analyzer.Check(a, &silint.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}
	printDiagnostics(os.Stderr, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printDiagnostics renders findings in the canonical file:line:col
// form, with suggested fixes indented beneath each.
func printDiagnostics(w io.Writer, diags []analyzer.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
		for _, f := range d.SuggestedFixes {
			fmt.Fprintf(w, "\tfix: %s\n", f.Message)
		}
	}
}

// standalone loads packages from source (like cmd/silint) and runs the
// selected analyzer over each — no go vet driver required. Exit 0
// clean, 1 on errors, 2 when diagnostics were reported.
func standalone(args []string) int {
	fs := flag.NewFlagSet("sivet", flag.ContinueOnError)
	model := fs.String("model", "si", "analyzer selection: si, psi or all")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	a, err := analyzer.ByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	loader, err := silint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sivet:", err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := analyzer.Check(a, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sivet:", err)
			return 1
		}
		printDiagnostics(os.Stderr, diags)
		total += len(diags)
	}
	if total > 0 {
		return 2
	}
	fmt.Printf("sivet: no findings in %d package(s)\n", len(pkgs))
	return 0
}
