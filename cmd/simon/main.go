// Command simon is the online snapshot-isolation monitor: it tails a
// transactional event stream (NDJSON, as recorded by sibench -record
// or any eventlog dump) or a static history file, certifies it live
// against a consistency model, and streams violation verdicts as they
// are detected.
//
// Usage:
//
//	simon [-model ser|si|psi|pc|gsi] [-window N] [-budget N]
//	      [-parallel N] [-quiet] [-follow] [-idle-exit D]
//	      [-trace] [-metrics file|-] [-serve addr] [-pprof addr]
//	      [events.ndjson|history.json]
//
// The input is read from the file argument or standard input and
// auto-detected: a JSON history document (as consumed by sicheck) is
// replayed as a synthetic event stream; anything else is treated as
// NDJSON events. Reading from a pipe follows the writer naturally;
// -follow additionally keeps polling a regular file as it grows, and
// -idle-exit bounds how long -follow waits without new data before
// concluding the stream is complete (0 waits forever).
//
// -window N collapses the oldest committed transactions into a
// frontier once more than N are live, bounding memory for unbounded
// streams at the cost of definitive rejections (see internal/monitor).
// Violations print on stdout as they are found unless -quiet is set;
// a summary always follows at end of stream. -metrics dumps the
// monitor's metric registry on exit ('-' for stdout Prometheus, a
// *.json path for JSON).
//
// -serve starts the live observability plane (internal/obs/obshttp):
// while a -follow tail runs, /verdicts streams every per-commit
// verdict (and the end-of-stream summary) as SSE with witness-cycle
// explanations, /events re-serves the ingested event stream, and
// /metrics exposes the monitor's counters — so a long-lived monitor
// can itself be monitored.
//
// Exit status 0 when the stream is allowed by the model, 1 when it is
// not, 2 on usage or processing errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/histio"
	"sian/internal/model"
	"sian/internal/monitor"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/obshttp"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simon:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("simon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modelFlag := fs.String("model", "si", "model to certify against: ser, si, psi, pc or gsi")
	window := fs.Int("window", 0, "collapse the oldest transactions beyond this many live ones (0 = keep all, exact verdicts)")
	budget := fs.Int("budget", 0, "candidate budget per slow-path certification (0 = checker default)")
	parallel := fs.Int("parallel", 1, "worker goroutines for slow-path certifications")
	initValue := fs.Int64("init-value", 0, "value every object holds before any write")
	quiet := fs.Bool("quiet", false, "suppress live violation lines; print only the final summary")
	follow := fs.Bool("follow", false, "keep polling a regular file as it grows (pipes follow naturally)")
	idleExit := fs.Duration("idle-exit", 0, "with -follow, stop after this long without new events (0 = never)")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	m, err := parseModel(*modelFlag)
	if err != nil {
		return 2, err
	}
	var in io.Reader = stdin
	name := "stdin"
	switch fs.NArg() {
	case 0:
	case 1:
		if fs.Arg(0) != "-" {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				return 2, err
			}
			defer f.Close()
			in = f
			name = fs.Arg(0)
		}
	default:
		return 2, fmt.Errorf("at most one input file expected, got %d args", fs.NArg())
	}
	if *follow {
		in = &followReader{r: in, poll: 100 * time.Millisecond, idle: *idleExit}
	}
	o, err := obsFlags.Start("simon", stderr)
	if err != nil {
		return 2, err
	}

	code, rerr := func() (int, error) {
		// While serving, re-record the ingested stream so /events and
		// /timeline have something to tail.
		var rec *eventlog.Recorder
		if o.Serving() {
			rec = eventlog.NewRecorder(0)
			o.SetRecorder(rec)
		}
		mon := monitor.New(monitor.Config{
			Model:       m,
			Window:      *window,
			Budget:      *budget,
			Parallelism: *parallel,
			InitValue:   model.Value(*initValue),
			Metrics:     o.Registry,
			OnViolation: func(v monitor.Violation) {
				if !*quiet {
					fmt.Fprintln(stdout, v)
				}
			},
		})

		ingest := func(ev eventlog.Event) {
			rec.Record(ev)
			if v := mon.Ingest(ev); v != nil {
				o.PublishVerdict(verdictEvent(m, *v))
			}
		}
		br := bufio.NewReader(in)
		prefix, _ := br.Peek(512)
		if histio.LooksLikeHistory(prefix) {
			h, err := histio.DecodeHistory(br)
			if err != nil {
				return 2, err
			}
			for _, ev := range histio.HistoryToEvents(h) {
				ingest(ev)
			}
		} else {
			sc := histio.NewEventScanner(br)
			for {
				ev, serr := sc.Next()
				if serr == io.EOF {
					break
				}
				if serr != nil {
					return 2, serr
				}
				ingest(ev)
			}
		}

		rep, err := mon.Finish()
		if err != nil {
			return 2, err
		}
		o.PublishVerdict(summaryEvent(mon, rep))
		verdict := "allowed by"
		if !rep.Member {
			verdict = "NOT allowed by"
		}
		qualifier := ""
		if !rep.Definitive {
			qualifier = " (non-definitive: context beyond the window was collapsed)"
		}
		fmt.Fprintf(stdout, "%s: %s %v%s\n", name, verdict, rep.Model, qualifier)
		fmt.Fprintf(stdout, "  %d events, %d commits, %d collapsed, window %d, %d pending reads, %d recertifications, %d violations\n",
			rep.Events, rep.Commits, rep.GCd, mon.Window(), rep.Pending, rep.Rechecks, len(rep.Violations))
		if rep.Final != nil {
			fmt.Fprintf(stdout, "  final: %s\n", rep.Final)
		}
		if !rep.Member {
			return 1, nil
		}
		return 0, nil
	}()
	return o.Finish(code, rerr, stdout, stderr)
}

// verdictEvent converts a per-commit monitor verdict to the /verdicts
// wire form, keeping obshttp decoupled from internal/monitor.
func verdictEvent(m depgraph.Model, v monitor.Verdict) obshttp.VerdictEvent {
	ve := obshttp.VerdictEvent{
		Seq:     v.Seq,
		Txn:     v.Txn,
		Model:   m.String(),
		Member:  v.Member,
		Checked: v.Checked,
		Window:  v.Window,
		Pending: v.Pending,
	}
	if v.Violation != nil {
		ve.Violation = &obshttp.ViolationEvent{
			Axiom:      v.Violation.Axiom,
			Cycle:      v.Violation.Cycle,
			Detail:     v.Violation.Detail,
			Definitive: v.Violation.Definitive,
		}
	}
	return ve
}

// summaryEvent renders the end-of-stream report as a final /verdicts
// message so SSE clients see the stream's settled verdict.
func summaryEvent(mon *monitor.Monitor, rep *monitor.Report) obshttp.VerdictEvent {
	ve := obshttp.VerdictEvent{
		Txn:     "(end of stream)",
		Model:   rep.Model.String(),
		Member:  rep.Member,
		Window:  mon.Window(),
		Pending: rep.Pending,
	}
	if rep.Final != nil {
		ve.Violation = &obshttp.ViolationEvent{
			Detail:     rep.Final.String(),
			Definitive: rep.Definitive,
		}
	}
	return ve
}

func parseModel(s string) (depgraph.Model, error) {
	switch s {
	case "ser":
		return depgraph.SER, nil
	case "si":
		return depgraph.SI, nil
	case "psi":
		return depgraph.PSI, nil
	case "pc":
		return depgraph.PC, nil
	case "gsi":
		return depgraph.GSI, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want ser, si, psi, pc or gsi)", s)
	}
}

// followReader turns EOF into a poll-and-retry loop so a regular file
// can be tailed while a writer appends to it. With idle > 0 it gives
// up (returning io.EOF) once that long passes without new data.
type followReader struct {
	r    io.Reader
	poll time.Duration
	idle time.Duration
}

func (f *followReader) Read(p []byte) (int, error) {
	var waited time.Duration
	for {
		n, err := f.r.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		if f.idle > 0 && waited >= f.idle {
			return 0, io.EOF
		}
		time.Sleep(f.poll)
		waited += f.poll
	}
}
