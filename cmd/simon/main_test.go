package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sian/internal/histio"
	"sian/internal/workload"
)

func testdata(name string) string {
	return filepath.Join("..", "..", "testdata", name)
}

// TestHistoryFileVerdicts: write skew is allowed by SI and rejected
// by SER, mapped to exit codes 0 and 1.
func TestHistoryFileVerdicts(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si", testdata("writeskew_history.json")}, strings.NewReader(""), &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("si: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "allowed by SI") {
		t.Errorf("si output: %s", out.String())
	}
	out.Reset()
	code, err = run([]string{"-model", "ser", testdata("writeskew_history.json")}, strings.NewReader(""), &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("ser: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "NOT allowed by SER") {
		t.Errorf("ser output: %s", out.String())
	}
	if !strings.Contains(out.String(), "violation") {
		t.Errorf("ser output has no violation line: %s", out.String())
	}
}

// TestEventFileMode streams an NDJSON event dump.
func TestEventFileMode(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := histio.EncodeEvents(f, histio.HistoryToEvents(workload.LostUpdate().History)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si", path}, strings.NewReader(""), &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "NOCONFLICT") {
		t.Errorf("output lacks the NOCONFLICT verdict: %s", out.String())
	}
}

// TestStdinPipeStreaming feeds events through a pipe, the live-tail
// path: the monitor must consume them as they arrive.
func TestStdinPipeStreaming(t *testing.T) {
	t.Parallel()
	var encoded bytes.Buffer
	if err := histio.EncodeEvents(&encoded, histio.HistoryToEvents(workload.WriteSkew().History)); err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		lines := strings.SplitAfter(strings.TrimSuffix(encoded.String(), "\n"), "\n")
		for _, line := range lines {
			if _, err := io.WriteString(pw, line); err != nil {
				return
			}
		}
		pw.Close()
	}()
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si"}, pr, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "allowed by SI") {
		t.Errorf("output: %s", out.String())
	}
}

// TestHistoryOnStdinAutodetect pipes a history JSON document (not
// events) into stdin.
func TestHistoryOnStdinAutodetect(t *testing.T) {
	t.Parallel()
	data, err := os.ReadFile(testdata("longfork_history.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "psi"}, bytes.NewReader(data), &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("psi: code=%d err=%v\n%s", code, err, out.String())
	}
	out.Reset()
	code, err = run([]string{"-model", "si"}, bytes.NewReader(data), &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("si: code=%d err=%v\n%s", code, err, out.String())
	}
}

// TestFollowIdleExit tails a pre-written file with -follow; -idle-exit
// bounds the wait so the run concludes on its own.
func TestFollowIdleExit(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "events.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := histio.EncodeEvents(f, histio.HistoryToEvents(workload.SessionGuarantees().History)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si", "-follow", "-idle-exit", "300ms", path}, strings.NewReader(""), &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
}

// TestMetricsDump prints the monitor registry in Prometheus format.
func TestMetricsDump(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si", "-metrics", "-", testdata("writeskew_history.json")}, strings.NewReader(""), &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, want := range []string{"monitor_events_ingested_total", "monitor_commits_total", "monitor_window_txns"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("metrics dump lacks %s:\n%s", want, out.String())
		}
	}
}

// TestWindowedRun exercises the bounded-window path end to end.
func TestWindowedRun(t *testing.T) {
	t.Parallel()
	var in bytes.Buffer
	n := 0
	seq := func() int64 { n++; return int64(n) }
	for i := 1; i <= 100; i++ {
		fmt.Fprintf(&in, `{"seq":%d,"kind":"begin","session":"s","tx":"s#%d"}`+"\n", seq(), i)
		fmt.Fprintf(&in, `{"seq":%d,"kind":"write","session":"s","tx":"s#%d","obj":"x","val":%d}`+"\n", seq(), i, i)
		fmt.Fprintf(&in, `{"seq":%d,"kind":"commit","session":"s","tx":"s#%d","name":"T%d"}`+"\n", seq(), i, i)
	}
	var out, errb bytes.Buffer
	code, err := run([]string{"-model", "si", "-window", "8"}, &in, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "92 collapsed") {
		t.Errorf("output lacks collapse count: %s", out.String())
	}
}

// TestUsageErrors: unknown model and unreadable file map to errors.
func TestUsageErrors(t *testing.T) {
	t.Parallel()
	var out, errb bytes.Buffer
	if _, err := run([]string{"-model", "bogus"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := run([]string{filepath.Join(t.TempDir(), "missing.ndjson")}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := run([]string{"a", "b"}, strings.NewReader(""), &out, &errb); err == nil {
		t.Error("two positional args accepted")
	}
}
