// Command silint statically analyses Go packages written against the
// sian engine API: it lifts per-transaction read/write sets out of
// Session.Transact/TransactNamed closures and Begin…Commit spans, then
// runs the paper's static criteria (robustness, §6; chopping
// correctness, §5 and Appendix B) and reports violations at the
// offending call sites.
//
// Usage:
//
//	silint [-model si|psi|ser|all] [-format text|json] [-fix] [packages...]
//
// Package patterns are directories, with an optional /... suffix to
// walk subdirectories; the default is the current directory. Exit
// status 0 means every check passed, 1 at least one potential anomaly
// was reported, 2 an analysis error (unparseable or untypeable code,
// bad flags, exceeded search budget).
//
// With -fix, the repair advisor's first-ranked suggestions — verified
// read→write promotions (§6's materialised conflict) — are applied to
// the source files in place; re-running silint afterwards shows which
// diagnostics remain.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/silint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// models maps the -model flag to the checks Analyze should run.
func models(flag string) ([]depgraph.Model, error) {
	switch flag {
	case "si":
		return []depgraph.Model{depgraph.SI}, nil
	case "psi":
		return []depgraph.Model{depgraph.PSI}, nil
	case "ser":
		return []depgraph.Model{depgraph.SER}, nil
	case "all":
		return []depgraph.Model{depgraph.SI, depgraph.PSI, depgraph.SER}, nil
	}
	return nil, fmt.Errorf("unknown model %q (want si, psi, ser or all)", flag)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("silint", flag.ContinueOnError)
	model := fs.String("model", "si", "consistency model to check: si, psi, ser or all")
	format := fs.String("format", "text", "output format: text or json")
	notes := fs.Bool("notes", false, "also print analysis notes (⊤-widenings, session identity losses)")
	fix := fs.Bool("fix", false, "apply the first-ranked suggested promotions to the source files")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	ms, err := models(*model)
	if err != nil {
		return 2, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	o, err := obsFlags.Start("silint", stderr)
	if err != nil {
		return 2, err
	}
	reg, tr := o.Registry, o.Tracer
	finish := func(code int, err error) (int, error) {
		return o.Finish(code, err, stdout, stderr)
	}

	done := tr.Phase("analyze")
	report, err := silint.Analyze(patterns, silint.Options{Models: ms, Registry: reg})
	done()
	if err != nil {
		return finish(2, err)
	}

	exit := 0
	if report.Anomalies() > 0 {
		exit = 1
	}
	if *fix {
		if err := applyFixes(report, stdout); err != nil {
			return finish(2, err)
		}
	}
	doneOut := tr.Phase("output")
	defer doneOut()
	if *format == "json" {
		return finish(exit, writeJSON(stdout, report, exit))
	}
	txs := 0
	for _, p := range report.Packages {
		for _, s := range p.Sessions {
			txs += len(s.Txs)
		}
		for _, d := range p.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		if *notes {
			for _, n := range p.Notes {
				fmt.Fprintln(stderr, "note:", n)
			}
		}
	}
	if exit == 0 {
		fmt.Fprintf(stdout, "silint: no anomalies in %d package(s), %d transaction(s)\n",
			len(report.Packages), txs)
	}
	return finish(exit, nil)
}

// writeJSON emits the report in the shared verdict schema: one verdict
// per diagnostic, plus an OK verdict for every clean package.
func writeJSON(w io.Writer, report *silint.Report, exit int) error {
	set := cliutil.VerdictSet{Tool: "silint", Verdicts: []cliutil.Verdict{}, Exit: exit}
	for _, p := range report.Packages {
		if len(p.Diagnostics) == 0 {
			set.Verdicts = append(set.Verdicts, cliutil.Verdict{
				Check:  "silint",
				Target: p.Path,
				OK:     true,
			})
			continue
		}
		for _, d := range p.Diagnostics {
			v := cliutil.Verdict{
				Check:    d.Check,
				Target:   d.Package,
				OK:       false,
				Category: d.Category,
				Theorem:  d.Theorem,
				Witness:  d.Witness,
				Pos:      fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Tx:       d.Tx,
				Detail:   d.Message,
			}
			for _, f := range d.Fixes {
				cf := cliutil.SuggestedFix{
					Obj:     f.Obj,
					Txs:     f.Txs,
					Pos:     fmt.Sprintf("%s:%d:%d", f.Pos.Filename, f.Pos.Line, f.Pos.Column),
					Rank:    f.Rank,
					Message: f.Message,
				}
				for _, e := range f.Edits {
					cf.Edits = append(cf.Edits, cliutil.TextEdit{
						Filename: e.Filename, Offset: e.Offset, End: e.End, NewText: e.NewText,
					})
				}
				v.Fixes = append(v.Fixes, cf)
			}
			set.Verdicts = append(set.Verdicts, v)
		}
	}
	return cliutil.WriteVerdicts(w, set)
}

// applyFixes applies every rank-1 suggested edit to the source files in
// place (identical edits suggested by several diagnostics are applied
// once; edits are applied back-to-front so offsets stay valid).
func applyFixes(report *silint.Report, stdout io.Writer) error {
	type edit = silint.TextEdit
	perFile := make(map[string][]edit)
	seen := make(map[string]bool)
	for _, d := range report.Diagnostics() {
		for _, f := range d.Fixes {
			if f.Rank != 1 {
				continue
			}
			for _, e := range f.Edits {
				key := fmt.Sprintf("%s\x00%d\x00%d\x00%s", e.Filename, e.Offset, e.End, e.NewText)
				if seen[key] {
					continue
				}
				seen[key] = true
				perFile[e.Filename] = append(perFile[e.Filename], e)
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	applied := 0
	for _, fn := range files {
		edits := perFile[fn]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Offset > edits[j].Offset })
		data, err := os.ReadFile(fn)
		if err != nil {
			return err
		}
		for _, e := range edits {
			if e.Offset < 0 || e.End < e.Offset || e.End > len(data) {
				return fmt.Errorf("fix edit out of range for %s: [%d,%d)", fn, e.Offset, e.End)
			}
			data = append(data[:e.Offset], append([]byte(e.NewText), data[e.End:]...)...)
		}
		if err := os.WriteFile(fn, data, 0o644); err != nil {
			return err
		}
		applied += len(edits)
	}
	fmt.Fprintf(stdout, "silint: applied %d suggested fix(es) in %d file(s)\n", applied, len(files))
	return nil
}
