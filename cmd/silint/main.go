// Command silint statically analyses Go packages written against the
// sian engine API: it lifts per-transaction read/write sets out of
// Session.Transact/TransactNamed closures and Begin…Commit spans, then
// runs the paper's static criteria (robustness, §6; chopping
// correctness, §5 and Appendix B) and reports violations at the
// offending call sites.
//
// Usage:
//
//	silint [-model si|psi|ser|all] [-format text|json] [packages...]
//
// Package patterns are directories, with an optional /... suffix to
// walk subdirectories; the default is the current directory. Exit
// status 0 means every check passed, 1 at least one potential anomaly
// was reported, 2 an analysis error (unparseable or untypeable code,
// bad flags, exceeded search budget).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sian/internal/cliutil"
	"sian/internal/depgraph"
	"sian/internal/silint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// models maps the -model flag to the checks Analyze should run.
func models(flag string) ([]depgraph.Model, error) {
	switch flag {
	case "si":
		return []depgraph.Model{depgraph.SI}, nil
	case "psi":
		return []depgraph.Model{depgraph.PSI}, nil
	case "ser":
		return []depgraph.Model{depgraph.SER}, nil
	case "all":
		return []depgraph.Model{depgraph.SI, depgraph.PSI, depgraph.SER}, nil
	}
	return nil, fmt.Errorf("unknown model %q (want si, psi, ser or all)", flag)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("silint", flag.ContinueOnError)
	model := fs.String("model", "si", "consistency model to check: si, psi, ser or all")
	format := fs.String("format", "text", "output format: text or json")
	notes := fs.Bool("notes", false, "also print analysis notes (⊤-widenings, session identity losses)")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	ms, err := models(*model)
	if err != nil {
		return 2, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	o, err := obsFlags.Start("silint", stderr)
	if err != nil {
		return 2, err
	}
	reg, tr := o.Registry, o.Tracer
	finish := func(code int, err error) (int, error) {
		return o.Finish(code, err, stdout, stderr)
	}

	done := tr.Phase("analyze")
	report, err := silint.Analyze(patterns, silint.Options{Models: ms, Registry: reg})
	done()
	if err != nil {
		return finish(2, err)
	}

	exit := 0
	if report.Anomalies() > 0 {
		exit = 1
	}
	doneOut := tr.Phase("output")
	defer doneOut()
	if *format == "json" {
		return finish(exit, writeJSON(stdout, report, exit))
	}
	txs := 0
	for _, p := range report.Packages {
		for _, s := range p.Sessions {
			txs += len(s.Txs)
		}
		for _, d := range p.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		if *notes {
			for _, n := range p.Notes {
				fmt.Fprintln(stderr, "note:", n)
			}
		}
	}
	if exit == 0 {
		fmt.Fprintf(stdout, "silint: no anomalies in %d package(s), %d transaction(s)\n",
			len(report.Packages), txs)
	}
	return finish(exit, nil)
}

// writeJSON emits the report in the shared verdict schema: one verdict
// per diagnostic, plus an OK verdict for every clean package.
func writeJSON(w io.Writer, report *silint.Report, exit int) error {
	set := cliutil.VerdictSet{Tool: "silint", Verdicts: []cliutil.Verdict{}, Exit: exit}
	for _, p := range report.Packages {
		if len(p.Diagnostics) == 0 {
			set.Verdicts = append(set.Verdicts, cliutil.Verdict{
				Check:  "silint",
				Target: p.Path,
				OK:     true,
			})
			continue
		}
		for _, d := range p.Diagnostics {
			set.Verdicts = append(set.Verdicts, cliutil.Verdict{
				Check:    d.Check,
				Target:   d.Package,
				OK:       false,
				Category: d.Category,
				Theorem:  d.Theorem,
				Witness:  d.Witness,
				Pos:      fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Tx:       d.Tx,
				Detail:   d.Message,
			})
		}
	}
	return cliutil.WriteVerdicts(w, set)
}
