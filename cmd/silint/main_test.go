package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"sian/internal/cliutil"
)

const (
	writeSkewPkg = "../../internal/silint/testdata/src/writeskew"
	bankingPkg   = "../../internal/silint/fixtures/banking"
)

func TestRunTextWriteSkew(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-model", "si", writeSkewPkg}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "write-skew: dangerous cycle") || !strings.Contains(s, "Theorem 19") {
		t.Errorf("output: %s", s)
	}
	if !strings.Contains(s, "main.go:") {
		t.Errorf("diagnostic not anchored to a position: %s", s)
	}
}

func TestRunTextClean(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-model", "si", bankingPkg}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "silint: no anomalies") {
		t.Errorf("output: %s", out.String())
	}
}

// TestRunJSON pins the shared machine-readable verdict schema.
func TestRunJSON(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-model", "si", "-format", "json", writeSkewPkg}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var set cliutil.VerdictSet
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if set.Tool != "silint" || set.Exit != 1 || len(set.Verdicts) == 0 {
		t.Fatalf("set = %+v", set)
	}
	v := set.Verdicts[0]
	if v.Check != "robustness-si" || v.OK || v.Category != "write-skew" ||
		v.Theorem != "Theorem 19, §6.1" || v.Tx == "" || v.Witness == "" ||
		!strings.Contains(v.Pos, "main.go:") {
		t.Errorf("verdict = %+v", v)
	}
	// The repair advisor's suggestions ride along in the schema: the
	// write-skew fixture is repairable by a single promotion, so the
	// verdict carries at least one rank-1 fix with a textual edit.
	if len(v.Fixes) == 0 {
		t.Fatalf("verdict has no suggested fixes: %+v", v)
	}
	f := v.Fixes[0]
	if f.Rank != 1 || f.Obj == "" || len(f.Txs) == 0 ||
		!strings.Contains(f.Message, "promote read of") ||
		!strings.Contains(v.Detail, "suggested fix: promote read of") {
		t.Errorf("fix = %+v (detail %q)", f, v.Detail)
	}
	if len(f.Edits) == 0 || !strings.Contains(f.Edits[0].NewText, ".Promote(") {
		t.Errorf("fix edits = %+v", f.Edits)
	}

	out.Reset()
	code, err = run([]string{"-format", "json", bankingPkg}, strings.NewReader(""), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("clean package: exit = %d, want 0", code)
	}
	set = cliutil.VerdictSet{}
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatal(err)
	}
	if set.Exit != 0 || len(set.Verdicts) != 1 || !set.Verdicts[0].OK || set.Verdicts[0].Check != "silint" {
		t.Errorf("clean set = %+v", set)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-model", "bogus"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("bogus model accepted")
	}
	if _, err := run([]string{"-format", "yaml"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("bogus format accepted")
	}
	if code, err := run([]string{"no/such/dir"}, strings.NewReader(""), &out, io.Discard); err == nil || code != 2 {
		t.Errorf("missing package: code=%d err=%v", code, err)
	}
}
