// Command sirobust runs the static robustness analyses of §6 of
// Cerone & Gotsman (PODC 2016) on an application described by per-
// transaction read and write sets.
//
// Usage:
//
//	sirobust [-analysis both|si|psi] [app.json]
//
// The application spec is read from the file argument or standard
// input; see internal/histio for the JSON schema. "si" checks
// robustness against SI towards serializability (§6.1); "psi" checks
// robustness against parallel SI towards SI (§6.2). Exit status 0
// means robust for every requested analysis, 1 not robust, 2 a usage
// or processing error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sian/internal/cliutil"
	"sian/internal/histio"
	"sian/internal/robustness"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sirobust:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sirobust", flag.ContinueOnError)
	analysis := fs.String("analysis", "both", "analysis to run: both, si or psi")
	format := fs.String("format", "text", "output format: text or json")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	o, err := obsFlags.Start("sirobust", stderr)
	if err != nil {
		return 2, err
	}
	reg, tr := o.Registry, o.Tracer
	finish := func(code int, err error) (int, error) {
		return o.Finish(code, err, stdout, stderr)
	}

	var in io.Reader = stdin
	target := "stdin"
	switch fs.NArg() {
	case 0:
	case 1:
		target = fs.Arg(0)
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		in = f
	default:
		return 2, fmt.Errorf("at most one app file expected, got %d args", fs.NArg())
	}

	doneDecode := tr.Phase("decode")
	app, err := histio.DecodeApp(in)
	doneDecode()
	if err != nil {
		return finish(2, err)
	}

	runSI := *analysis == "both" || *analysis == "si"
	runPSI := *analysis == "both" || *analysis == "psi"
	if !runSI && !runPSI {
		return finish(2, fmt.Errorf("unknown analysis %q (want both, si or psi)", *analysis))
	}

	cRobust := reg.Counter("sirobust_robust_total")
	cDangerous := reg.Counter("sirobust_dangerous_cycles_total")
	exit := 0
	set := cliutil.VerdictSet{Tool: "sirobust", Verdicts: []cliutil.Verdict{}}
	if runSI {
		done := tr.Phase("analysis-si-ser")
		w, robust := robustness.CheckSIRobust(app)
		done()
		v := cliutil.Verdict{Check: "robustness-si", Target: target, OK: robust, Theorem: "Theorem 19, §6.1"}
		if robust {
			cRobust.Inc()
			if *format == "text" {
				fmt.Fprintln(stdout, "SI→SER  ROBUST: running under SI gives only serializable behaviour")
			}
		} else {
			cDangerous.Inc()
			exit = 1
			v.Category = "write-skew"
			v.Witness = fmt.Sprint(w)
			v.Detail = fmt.Sprintf("write-skew: dangerous cycle %s (Theorem 19, §6.1)", w)
			if *format == "text" {
				fmt.Fprintf(stdout, "SI→SER  NOT ROBUST: dangerous cycle %s\n", w)
			}
		}
		set.Verdicts = append(set.Verdicts, v)
	}
	if runPSI {
		done := tr.Phase("analysis-psi-si")
		w, robust := robustness.CheckPSIRobust(app)
		done()
		v := cliutil.Verdict{Check: "robustness-psi", Target: target, OK: robust, Theorem: "Theorem 22, §6.2"}
		if robust {
			cRobust.Inc()
			if *format == "text" {
				fmt.Fprintln(stdout, "PSI→SI  ROBUST: running under parallel SI gives only SI behaviour")
			}
		} else {
			cDangerous.Inc()
			exit = 1
			v.Category = "long-fork"
			v.Witness = fmt.Sprint(w)
			v.Detail = fmt.Sprintf("long-fork: dangerous cycle %s (Theorem 22, §6.2)", w)
			if *format == "text" {
				fmt.Fprintf(stdout, "PSI→SI  NOT ROBUST: dangerous cycle %s\n", w)
			}
		}
		set.Verdicts = append(set.Verdicts, v)
	}
	if *format == "json" {
		set.Exit = exit
		if err := cliutil.WriteVerdicts(stdout, set); err != nil {
			return finish(2, err)
		}
	}
	return finish(exit, nil)
}
