package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"sian/internal/histio"
	"sian/internal/robustness"
	"sian/internal/workload"
)

func appInput(t *testing.T, app robustness.App) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := histio.EncodeApp(&buf, app); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunWriteSkewApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "si"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "NOT ROBUST") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunFixedApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "both"}, appInput(t, workload.WriteSkewAppFixed()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0\n%s", code, out.String())
	}
	if strings.Count(out.String(), "ROBUST") != 2 {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunLongForkApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run(nil, appInput(t, workload.LongForkApp()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	s := out.String()
	if !strings.Contains(s, "SI→SER  ROBUST") {
		t.Errorf("long fork app should be SI-robust:\n%s", s)
	}
	if !strings.Contains(s, "PSI→SI  NOT ROBUST") {
		t.Errorf("long fork app should not be PSI-robust:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-analysis", "bogus"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard); err == nil {
		t.Error("bogus analysis accepted")
	}
	if _, err := run(nil, strings.NewReader("nope"), &out, io.Discard); err == nil {
		t.Error("invalid json accepted")
	}
	if _, err := run([]string{"a", "b"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("extra args accepted")
	}
	if _, err := run([]string{"missing.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunFixtures exercises the committed SmallBank sample.
func TestRunFixtures(t *testing.T) {
	t.Parallel()
	f, err := os.Open("../../testdata/smallbank_app.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "si"}, f, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "NOT ROBUST") {
		t.Errorf("code=%d out=%s", code, out.String())
	}
}
