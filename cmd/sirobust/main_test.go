package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"sian/internal/cliutil"
	"sian/internal/histio"
	"sian/internal/robustness"
	"sian/internal/workload"
)

func appInput(t *testing.T, app robustness.App) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := histio.EncodeApp(&buf, app); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunWriteSkewApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "si"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "NOT ROBUST") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunFixedApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "both"}, appInput(t, workload.WriteSkewAppFixed()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0\n%s", code, out.String())
	}
	if strings.Count(out.String(), "ROBUST") != 2 {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunLongForkApp(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run(nil, appInput(t, workload.LongForkApp()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	s := out.String()
	if !strings.Contains(s, "SI→SER  ROBUST") {
		t.Errorf("long fork app should be SI-robust:\n%s", s)
	}
	if !strings.Contains(s, "PSI→SI  NOT ROBUST") {
		t.Errorf("long fork app should not be PSI-robust:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-analysis", "bogus"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard); err == nil {
		t.Error("bogus analysis accepted")
	}
	if _, err := run(nil, strings.NewReader("nope"), &out, io.Discard); err == nil {
		t.Error("invalid json accepted")
	}
	if _, err := run([]string{"a", "b"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("extra args accepted")
	}
	if _, err := run([]string{"missing.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunFixtures exercises the committed SmallBank sample.
func TestRunFixtures(t *testing.T) {
	t.Parallel()
	f, err := os.Open("../../testdata/smallbank_app.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	code, err := run([]string{"-analysis", "si"}, f, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "NOT ROBUST") {
		t.Errorf("code=%d out=%s", code, out.String())
	}
}

// TestRunJSON pins the shared machine-readable verdict schema.
func TestRunJSON(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-format", "json"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var set cliutil.VerdictSet
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if set.Tool != "sirobust" || set.Exit != 1 || len(set.Verdicts) != 2 {
		t.Fatalf("set = %+v", set)
	}
	si, psi := set.Verdicts[0], set.Verdicts[1]
	if si.Check != "robustness-si" || si.OK || si.Category != "write-skew" ||
		si.Theorem != "Theorem 19, §6.1" || !strings.Contains(si.Witness, "-RW*->") {
		t.Errorf("si verdict = %+v", si)
	}
	if psi.Check != "robustness-psi" || psi.Target != "stdin" {
		t.Errorf("psi verdict = %+v", psi)
	}
	if strings.Contains(out.String(), "ROBUST:") {
		t.Errorf("json output mixed with text lines:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"-format", "json"}, appInput(t, workload.WriteSkewAppFixed()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("fixed app: exit = %d, want 0", code)
	}
	set = cliutil.VerdictSet{}
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatal(err)
	}
	if set.Exit != 0 || len(set.Verdicts) != 2 || !set.Verdicts[0].OK || !set.Verdicts[1].OK {
		t.Errorf("fixed app set = %+v", set)
	}
	for _, v := range set.Verdicts {
		if v.Category != "" || v.Witness != "" || v.Detail != "" {
			t.Errorf("ok verdict carries anomaly fields: %+v", v)
		}
	}

	if _, err := run([]string{"-format", "yaml"}, appInput(t, workload.WriteSkewApp()), &out, io.Discard); err == nil {
		t.Error("bogus format accepted")
	}
}
