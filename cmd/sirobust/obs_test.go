package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTraceAndMetrics checks -trace prints per-analysis phase lines
// on stderr and -metrics - dumps the verdict counters on stdout.
func TestRunTraceAndMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run([]string{"-trace", "-metrics", "-", "../../testdata/writeskew_app.json"},
		strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (write skew is not robust)\n%s", code, out.String())
	}
	es := errOut.String()
	for _, want := range []string{"trace: phase=", "decode", "analysis-si-ser"} {
		if !strings.Contains(es, want) {
			t.Errorf("stderr missing %q:\n%s", want, es)
		}
	}
	s := out.String()
	if !strings.Contains(s, "sirobust_dangerous_cycles_total") {
		t.Errorf("metrics dump missing dangerous-cycle counter:\n%s", s)
	}
}
