package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"sian/internal/chopping"
	"sian/internal/cliutil"
	"sian/internal/histio"
	"sian/internal/workload"
)

func programsInput(t *testing.T, programs []chopping.Program) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := histio.EncodePrograms(&buf, programs); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunFig5Incorrect(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-level", "si"}, programsInput(t, workload.Fig5Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "MAY BE INCORRECT") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunFig6Correct(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-level", "all"}, programsInput(t, workload.Fig6Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0\n%s", code, out.String())
	}
	if got := strings.Count(out.String(), "CORRECT"); got != 3 {
		t.Errorf("want 3 CORRECT lines, got %d:\n%s", got, out.String())
	}
}

func TestRunFig11PerLevel(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-level", "si"}, programsInput(t, workload.Fig11Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("Fig11 under SI: exit = %d\n%s", code, out.String())
	}
	out.Reset()
	code, err = run([]string{"-level", "ser"}, programsInput(t, workload.Fig11Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("Fig11 under SER: exit = %d\n%s", code, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if _, err := run([]string{"-level", "bogus"}, strings.NewReader(`{"programs":[{"pieces":[{}]}]}`), &out, io.Discard); err == nil {
		t.Error("bogus level accepted")
	}
	if _, err := run(nil, strings.NewReader("nope"), &out, io.Discard); err == nil {
		t.Error("invalid json accepted")
	}
	if _, err := run([]string{"a", "b"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("extra args accepted")
	}
	if _, err := run([]string{"missing.json"}, strings.NewReader(""), &out, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunDotOutput(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-level", "si", "-dot", "-"}, programsInput(t, workload.Fig5Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "digraph chopping") || !strings.Contains(out.String(), "penwidth=2") {
		t.Errorf("missing highlighted dot output:\n%s", out.String())
	}
}

// TestRunFixtures exercises the committed sample files in testdata/.
func TestRunFixtures(t *testing.T) {
	t.Parallel()
	f, err := os.Open("../../testdata/fig5_programs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	code, err := run([]string{"-level", "si"}, f, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "MAY BE INCORRECT") {
		t.Errorf("code=%d out=%s", code, out.String())
	}
}

func TestRunAutochop(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-level", "si", "-autochop"}, programsInput(t, workload.Fig5Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "suggested correct chopping") {
		t.Errorf("missing suggestion:\n%s", out.String())
	}
}

// TestRunJSON pins the shared machine-readable verdict schema.
func TestRunJSON(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	code, err := run([]string{"-format", "json", "-level", "si"}, programsInput(t, workload.Fig5Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	var set cliutil.VerdictSet
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if set.Tool != "sichop" || set.Exit != 1 || len(set.Verdicts) != 1 {
		t.Fatalf("set = %+v", set)
	}
	v := set.Verdicts[0]
	if v.Check != "chopping-si" || v.OK || v.Category != "incorrect-chopping" ||
		v.Theorem != "Corollary 18, §5" || v.Target != "stdin" || v.Witness == "" {
		t.Errorf("verdict = %+v", v)
	}
	if strings.Contains(out.String(), "chopping CORRECT") || strings.Contains(out.String(), "MAY BE INCORRECT") {
		t.Errorf("json output mixed with text lines:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"-format", "json", "-level", "all"}, programsInput(t, workload.Fig6Programs()), &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("Fig6: exit = %d, want 0", code)
	}
	set = cliutil.VerdictSet{}
	if err := json.Unmarshal(out.Bytes(), &set); err != nil {
		t.Fatal(err)
	}
	if set.Exit != 0 || len(set.Verdicts) != 3 {
		t.Fatalf("Fig6 set = %+v", set)
	}
	wantChecks := map[string]string{
		"chopping-ser": "Theorem 29, Appendix B",
		"chopping-si":  "Corollary 18, §5",
		"chopping-psi": "Theorem 31, Appendix B",
	}
	for _, v := range set.Verdicts {
		if !v.OK || wantChecks[v.Check] != v.Theorem {
			t.Errorf("Fig6 verdict = %+v", v)
		}
		delete(wantChecks, v.Check)
	}
	if len(wantChecks) != 0 {
		t.Errorf("missing checks: %v", wantChecks)
	}

	if _, err := run([]string{"-format", "yaml"}, programsInput(t, workload.Fig5Programs()), &out, io.Discard); err == nil {
		t.Error("bogus format accepted")
	}
}
