// Command sichop runs the static transaction-chopping analysis of §5
// of Cerone & Gotsman (PODC 2016) on a set of programs with declared
// per-piece read and write sets.
//
// Usage:
//
//	sichop [-level all|ser|si|psi] [programs.json]
//
// The program set is read from the file argument or standard input;
// see internal/histio for the JSON schema. For each requested level
// the tool reports whether the chopping is correct under the
// corresponding consistency model (Theorem 29 for SER, Corollary 18
// for SI, Theorem 31 for PSI) and prints the critical cycle otherwise.
// Exit status 0 means correct at every requested level, 1 that some
// level has a critical cycle, 2 a usage or processing error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sian/internal/chopping"
	"sian/internal/cliutil"
	"sian/internal/dot"
	"sian/internal/histio"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sichop:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("sichop", flag.ContinueOnError)
	level := fs.String("level", "all", "criticality level: all, ser, si or psi")
	format := fs.String("format", "text", "output format: text or json")
	dotOut := fs.String("dot", "", "write the static chopping graph (with the first critical cycle highlighted) as Graphviz DOT to this file ('-' for stdout)")
	autochop := fs.Bool("autochop", false, "when a chopping is incorrect, print a coarsened correct chopping")
	obsFlags := cliutil.RegisterObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	o, err := obsFlags.Start("sichop", stderr)
	if err != nil {
		return 2, err
	}
	reg, tr := o.Registry, o.Tracer
	finish := func(code int, err error) (int, error) {
		return o.Finish(code, err, stdout, stderr)
	}

	var in io.Reader = stdin
	target := "stdin"
	switch fs.NArg() {
	case 0:
	case 1:
		target = fs.Arg(0)
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		in = f
	default:
		return 2, fmt.Errorf("at most one programs file expected, got %d args", fs.NArg())
	}

	doneDecode := tr.Phase("decode")
	programs, err := histio.DecodePrograms(in)
	doneDecode()
	if err != nil {
		return finish(2, err)
	}

	levels, err := selectLevels(*level)
	if err != nil {
		return finish(2, err)
	}

	cCorrect := reg.Counter("sichop_correct_total")
	cCritical := reg.Counter("sichop_critical_cycles_total")
	exit := 0
	dotDone := false
	set := cliutil.VerdictSet{Tool: "sichop", Verdicts: []cliutil.Verdict{}}
	for _, l := range levels {
		doneLevel := tr.Phase("check-" + l.String())
		verdict, err := chopping.CheckStatic(programs, l)
		doneLevel()
		if err != nil {
			return finish(2, fmt.Errorf("%v: %w", l, err))
		}
		if *dotOut != "" && !dotDone {
			dotDone = true
			if err := writeDot(*dotOut, stdout, verdict.Graph, verdict.Witness); err != nil {
				return finish(2, err)
			}
		}
		check, theorem := levelVerdict(l)
		if verdict.OK {
			cCorrect.Inc()
			set.Verdicts = append(set.Verdicts, cliutil.Verdict{Check: check, Target: target, OK: true, Theorem: theorem})
			if *format == "text" {
				fmt.Fprintf(stdout, "%-12s chopping CORRECT: no critical cycle\n", l)
			}
			continue
		}
		cCritical.Inc()
		exit = 1
		witness := verdict.Graph.DescribeCycle(verdict.Witness)
		set.Verdicts = append(set.Verdicts, cliutil.Verdict{
			Check: check, Target: target, Category: "incorrect-chopping", Theorem: theorem,
			Witness: witness,
			Detail:  fmt.Sprintf("incorrect-chopping: critical cycle %s (%s)", witness, theorem),
		})
		if *format == "text" {
			fmt.Fprintf(stdout, "%-12s chopping MAY BE INCORRECT: %s\n", l, witness)
		}
		if *autochop {
			doneChop := tr.Phase("autochop-" + l.String())
			fixed, err := chopping.Autochop(programs, l)
			doneChop()
			if err != nil {
				return finish(2, err)
			}
			fmt.Fprintf(stdout, "%-12s suggested correct chopping:\n", l)
			for _, p := range fixed {
				fmt.Fprintf(stdout, "  %s:", p.Name)
				for _, pc := range p.Pieces {
					fmt.Fprintf(stdout, "  [R%v W%v]", pc.Reads, pc.Writes)
				}
				fmt.Fprintln(stdout)
			}
		}
	}
	if *format == "json" {
		set.Exit = exit
		if err := cliutil.WriteVerdicts(stdout, set); err != nil {
			return finish(2, err)
		}
	}
	return finish(exit, nil)
}

// levelVerdict maps a criticality level to the shared verdict schema's
// check name and theorem citation (matching silint's).
func levelVerdict(l chopping.Criticality) (check, theorem string) {
	switch l {
	case chopping.SERCritical:
		return "chopping-ser", "Theorem 29, Appendix B"
	case chopping.SICritical:
		return "chopping-si", "Corollary 18, §5"
	default:
		return "chopping-psi", "Theorem 31, Appendix B"
	}
}

// writeDot emits the chopping graph as DOT to the named file, or to
// stdout when the name is "-".
func writeDot(name string, stdout io.Writer, g *chopping.Graph, cyc chopping.Cycle) error {
	if name == "-" {
		return dot.ChopGraph(stdout, g, cyc)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := dot.ChopGraph(f, g, cyc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectLevels(s string) ([]chopping.Criticality, error) {
	switch s {
	case "all":
		return []chopping.Criticality{chopping.SERCritical, chopping.SICritical, chopping.PSICritical}, nil
	case "ser":
		return []chopping.Criticality{chopping.SERCritical}, nil
	case "si":
		return []chopping.Criticality{chopping.SICritical}, nil
	case "psi":
		return []chopping.Criticality{chopping.PSICritical}, nil
	default:
		return nil, fmt.Errorf("unknown level %q (want all, ser, si or psi)", s)
	}
}
