package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTraceAndMetrics checks -trace prints per-level phase lines on
// stderr and -metrics - dumps the verdict counters on stdout.
func TestRunTraceAndMetrics(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := run([]string{"-trace", "-metrics", "-", "../../testdata/fig5_programs.json"},
		strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (Figure 5 chopping has a critical cycle)\n%s", code, out.String())
	}
	es := errOut.String()
	for _, want := range []string{"trace: phase=", "decode", "check-"} {
		if !strings.Contains(es, want) {
			t.Errorf("stderr missing %q:\n%s", want, es)
		}
	}
	s := out.String()
	for _, want := range []string{"# TYPE sichop_correct_total counter", "sichop_critical_cycles_total"} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, s)
		}
	}
}
