module sian

go 1.22
