// Package workload provides the paper's worked examples as executable
// artefacts — the anomaly histories and dependency graphs of Figure 2,
// the banking example of Figures 4–6, the chopping examples of Figures
// 11 and 12 — together with random-history generators for property
// testing and runnable workloads for the engines in internal/engine.
package workload

import (
	"sian/internal/depgraph"
	"sian/internal/model"
)

// Example is a named history with its paper-given dependency graph and
// the expected classification against the three models.
type Example struct {
	Name    string
	History *model.History
	// Graph is the dependency graph shown in the paper's figure
	// (including the initialisation transaction at index 0 where one
	// exists).
	Graph *depgraph.Graph
	// Expected membership of the history in HistSER / HistSI /
	// HistPSI / HistPC / HistGSI (PC = prefix consistency, SI without
	// NOCONFLICT; GSI = generalised SI, SI without SESSION).
	InSER, InSI, InPSI, InPC, InGSI bool
}

// Object names used throughout the examples.
const (
	objX     model.Obj = "x"
	objY     model.Obj = "y"
	objAcct  model.Obj = "acct"
	objAcct1 model.Obj = "acct1"
	objAcct2 model.Obj = "acct2"
)

// SessionGuarantees is Figure 2(a): two transactions of one session;
// the second reads the first's write (SESSION forces the visibility
// edge). Allowed by every model.
func SessionGuarantees() *Example {
	h := model.NewHistory(
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write(objX, 1)),
			model.NewTransaction("T2", model.Read(objX, 1)),
		}},
	)
	g := depgraph.New(h)
	g.AddWR(objX, 0, 1)
	return &Example{
		Name:    "session-guarantees (Fig 2a)",
		History: h,
		Graph:   g,
		InSER:   true, InSI: true, InPSI: true, InPC: true, InGSI: true,
	}
}

// LostUpdate is Figure 2(b): two concurrent deposits both read the
// initial balance 0 and write 50 and 25 respectively, losing one
// deposit. Disallowed by SER, SI and PSI (NOCONFLICT). The graph's
// WW order puts T1 before T2; the symmetric choice is isomorphic.
func LostUpdate() *Example {
	h := model.NewHistory(
		model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write(objAcct, 0)),
		}},
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Read(objAcct, 0), model.Write(objAcct, 50)),
		}},
		model.Session{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read(objAcct, 0), model.Write(objAcct, 25)),
		}},
	)
	g := depgraph.New(h)
	g.AddWR(objAcct, 0, 1) // init → T1
	g.AddWR(objAcct, 0, 2) // init → T2
	g.AddWW(objAcct, 0, 1)
	g.AddWW(objAcct, 0, 2)
	g.AddWW(objAcct, 1, 2) // T1 → T2 (the other order is symmetric)
	return &Example{
		Name:    "lost update (Fig 2b)",
		History: h,
		Graph:   g,
		InSER:   false, InSI: false, InPSI: false, InPC: true, InGSI: false,
	}
}

// LongFork is Figure 2(c): T1 and T2 write x and y concurrently; T3
// observes only T1's write, T4 only T2's. Allowed by PSI, disallowed
// by SI (PREFIX) and SER.
func LongFork() *Example {
	h := model.NewHistory(
		model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write(objX, 0), model.Write(objY, 0)),
		}},
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write(objX, 1)),
		}},
		model.Session{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Write(objY, 1)),
		}},
		model.Session{ID: "s3", Transactions: []model.Transaction{
			model.NewTransaction("T3", model.Read(objX, 1), model.Read(objY, 0)),
		}},
		model.Session{ID: "s4", Transactions: []model.Transaction{
			model.NewTransaction("T4", model.Read(objY, 1), model.Read(objX, 0)),
		}},
	)
	g := depgraph.New(h)
	g.AddWW(objX, 0, 1) // init → T1
	g.AddWW(objY, 0, 2) // init → T2
	g.AddWR(objX, 1, 3) // T1 → T3
	g.AddWR(objY, 0, 3) // init → T3
	g.AddWR(objY, 2, 4) // T2 → T4
	g.AddWR(objX, 0, 4) // init → T4
	return &Example{
		Name:    "long fork (Fig 2c)",
		History: h,
		Graph:   g,
		InSER:   false, InSI: false, InPSI: true, InPC: false, InGSI: false,
	}
}

// WriteSkew is Figure 2(d): both transactions check the combined
// balance (60 + 60 ≥ 100) and withdraw 100 from different accounts,
// driving the total negative. Allowed by SI (and PSI), disallowed by
// serializability.
func WriteSkew() *Example {
	h := model.NewHistory(
		model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write(objAcct1, 60), model.Write(objAcct2, 60)),
		}},
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1",
				model.Read(objAcct1, 60), model.Read(objAcct2, 60),
				model.Write(objAcct1, -40)),
		}},
		model.Session{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("T2",
				model.Read(objAcct1, 60), model.Read(objAcct2, 60),
				model.Write(objAcct2, -40)),
		}},
	)
	g := depgraph.New(h)
	g.AddWW(objAcct1, 0, 1) // init → T1
	g.AddWW(objAcct2, 0, 2) // init → T2
	g.AddWR(objAcct1, 0, 1)
	g.AddWR(objAcct2, 0, 1)
	g.AddWR(objAcct1, 0, 2)
	g.AddWR(objAcct2, 0, 2)
	return &Example{
		Name:    "write skew (Fig 2d)",
		History: h,
		Graph:   g,
		InSER:   false, InSI: true, InPSI: true, InPC: true, InGSI: true,
	}
}

// Examples returns all Figure 2 examples.
func Examples() []*Example {
	return []*Example{SessionGuarantees(), LostUpdate(), LongFork(), WriteSkew()}
}

// Fig4 bundles the two dependency graphs of the Figure 4 banking
// example: G1, where a balance query observes half of a chopped
// transfer (not spliceable; its dynamic chopping graph has an
// SI-critical cycle), and G2, where per-account queries observe
// consistent cuts (spliceable).
type Fig4 struct {
	G1, G2 *depgraph.Graph
}

// Fig4Graphs constructs concrete instances of the Figure 4 graphs.
//
// Both share the transfer session chopped in two: T moves acct1
// 100 → 0 and T′ moves acct2 100 → 200. In G1 a lookupAll session
// reads acct1 = 0 (after T) but acct2 = 100 (before T′). In G2,
// lookup1 reads acct1 = 0 and a separate lookup2 session reads
// acct2 = 100.
func Fig4Graphs() *Fig4 {
	transfer := model.Session{ID: "transfer", Transactions: []model.Transaction{
		model.NewTransaction("T", model.Read(objAcct1, 100), model.Write(objAcct1, 0)),
		model.NewTransaction("T'", model.Read(objAcct2, 100), model.Write(objAcct2, 200)),
	}}
	init := model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
		model.NewTransaction("init", model.Write(objAcct1, 100), model.Write(objAcct2, 100)),
	}}

	h1 := model.NewHistory(
		init,
		transfer,
		model.Session{ID: "lookupAll", Transactions: []model.Transaction{
			model.NewTransaction("S", model.Read(objAcct1, 0), model.Read(objAcct2, 100)),
		}},
	)
	// Indices: 0 init, 1 T, 2 T', 3 S.
	g1 := depgraph.New(h1)
	g1.AddWW(objAcct1, 0, 1)
	g1.AddWW(objAcct2, 0, 2)
	g1.AddWR(objAcct1, 0, 1) // T reads the initial acct1
	g1.AddWR(objAcct2, 0, 2) // T' reads the initial acct2
	g1.AddWR(objAcct1, 1, 3) // S sees T's write…
	g1.AddWR(objAcct2, 0, 3) // …but not T''s (anti-dependency S → T')

	h2 := model.NewHistory(
		init,
		transfer,
		model.Session{ID: "lookup1", Transactions: []model.Transaction{
			model.NewTransaction("S1", model.Read(objAcct1, 0)),
		}},
		model.Session{ID: "lookup2", Transactions: []model.Transaction{
			model.NewTransaction("S2", model.Read(objAcct2, 100)),
		}},
	)
	// Indices: 0 init, 1 T, 2 T', 3 S1, 4 S2.
	g2 := depgraph.New(h2)
	g2.AddWW(objAcct1, 0, 1)
	g2.AddWW(objAcct2, 0, 2)
	g2.AddWR(objAcct1, 0, 1)
	g2.AddWR(objAcct2, 0, 2)
	g2.AddWR(objAcct1, 1, 3)
	g2.AddWR(objAcct2, 0, 4)

	return &Fig4{G1: g1, G2: g2}
}
