package workload

import (
	"sian/internal/chopping"
	"sian/internal/model"
	"sian/internal/robustness"
)

// objs is shorthand for building object-set literals.
func objs(xs ...model.Obj) []model.Obj { return xs }

// TransferChopped is the transfer program of Figure 4 chopped into two
// pieces: "acct1 = acct1 - 100" and "acct2 = acct2 + 100".
func TransferChopped() chopping.Program {
	return chopping.NewProgram("transfer",
		chopping.NewPiece("acct1=acct1-100", objs(objAcct1), objs(objAcct1)),
		chopping.NewPiece("acct2=acct2+100", objs(objAcct2), objs(objAcct2)),
	)
}

// Lookup1 returns the single-piece program reading acct1 (Figure 6).
func Lookup1() chopping.Program {
	return chopping.NewProgram("lookup1",
		chopping.NewPiece("return acct1", objs(objAcct1), nil),
	)
}

// Lookup2 returns the single-piece program reading acct2 (Figure 6).
func Lookup2() chopping.Program {
	return chopping.NewProgram("lookup2",
		chopping.NewPiece("return acct2", objs(objAcct2), nil),
	)
}

// LookupAll returns the single-piece program reading both accounts
// (Figure 5).
func LookupAll() chopping.Program {
	return chopping.NewProgram("lookupAll",
		chopping.NewPiece("return acct1+acct2", objs(objAcct1, objAcct2), nil),
	)
}

// Fig5Programs is {transfer, lookupAll}: its static chopping graph
// contains the SI-critical cycle (8), so the chopping is incorrect
// under SI.
func Fig5Programs() []chopping.Program {
	return []chopping.Program{TransferChopped(), LookupAll()}
}

// Fig6Programs is {transfer, lookup1, lookup2}: no critical cycles;
// the chopping is correct under SI.
func Fig6Programs() []chopping.Program {
	return []chopping.Program{TransferChopped(), Lookup1(), Lookup2()}
}

// Fig11Programs is the Appendix B.1 example {write1, write2}
//
//	session write1 { tx { var1 = x }; tx { y = var1 } }
//	session write2 { tx { var2 = y }; tx { x = var2 } }
//
// whose chopping is correct under SI but not under serializability
// (cycle (9) is SER-critical but not SI-critical). The session-local
// variables var1/var2 are not shared objects and do not appear in the
// read/write sets.
func Fig11Programs() []chopping.Program {
	write1 := chopping.NewProgram("write1",
		chopping.NewPiece("var1=x", objs(objX), nil),
		chopping.NewPiece("y=var1", nil, objs(objY)),
	)
	write2 := chopping.NewProgram("write2",
		chopping.NewPiece("var2=y", objs(objY), nil),
		chopping.NewPiece("x=var2", nil, objs(objX)),
	)
	return []chopping.Program{write1, write2}
}

// Fig12Programs is the Appendix B.2 example
//
//	session write1 { tx { x = post1 } }
//	session write2 { tx { y = post2 } }
//	session read1  { tx { a = y }; tx { b = x } }
//	session read2  { tx { a = x }; tx { b = y } }
//
// whose chopping is correct under PSI but not under SI (cycle (10) is
// SI-critical but not PSI-critical).
func Fig12Programs() []chopping.Program {
	write1 := chopping.NewProgram("write1",
		chopping.NewPiece("x=post1", nil, objs(objX)),
	)
	write2 := chopping.NewProgram("write2",
		chopping.NewPiece("y=post2", nil, objs(objY)),
	)
	read1 := chopping.NewProgram("read1",
		chopping.NewPiece("a=y", objs(objY), nil),
		chopping.NewPiece("b=x", objs(objX), nil),
	)
	read2 := chopping.NewProgram("read2",
		chopping.NewPiece("a=x", objs(objX), nil),
		chopping.NewPiece("b=y", objs(objY), nil),
	)
	return []chopping.Program{write1, write2, read1, read2}
}

// WriteSkewApp is the §6.1 motivating application: two withdrawal
// transactions that each read both accounts and write one of them. It
// is not robust against SI — the static dependency graph has the cycle
// withdraw1 —RW→ withdraw2 —RW→ withdraw1 with two adjacent
// anti-dependencies (the write-skew shape of Figure 2(d)).
func WriteSkewApp() robustness.App {
	return robustness.SingleTxApp(
		robustness.NewTxSpec("withdraw1", objs(objAcct1, objAcct2), objs(objAcct1)),
		robustness.NewTxSpec("withdraw2", objs(objAcct1, objAcct2), objs(objAcct2)),
	)
}

// WriteSkewAppFixed materialises the conflict: both withdrawals also
// write a common object ("total"), so SI's write-conflict detection
// orders them and the application becomes robust against SI — the
// standard fix for write skew.
func WriteSkewAppFixed() robustness.App {
	total := model.Obj("total")
	return robustness.SingleTxApp(
		robustness.NewTxSpec("withdraw1", objs(objAcct1, objAcct2, total), objs(objAcct1, total)),
		robustness.NewTxSpec("withdraw2", objs(objAcct1, objAcct2, total), objs(objAcct2, total)),
	)
}

// LongForkApp is the §6.2 example: two writers and two readers of x
// and y (the programs of Figure 12 with unchopped reads). It is robust
// against SI towards serializability (writers read nothing, so no two
// anti-dependencies can be adjacent) but *not* robust against parallel
// SI towards SI: the static dependency graph has a cycle with two
// non-adjacent anti-dependencies — the long-fork shape of Figure 2(c).
func LongForkApp() robustness.App {
	return robustness.SingleTxApp(
		robustness.NewTxSpec("write1", nil, objs(objX)),
		robustness.NewTxSpec("write2", nil, objs(objY)),
		robustness.NewTxSpec("read1", objs(objX, objY), nil),
		robustness.NewTxSpec("read2", objs(objX, objY), nil),
	)
}

// TransferApp is the unchopped Figure 4 application: one transfer and
// the two single-account lookups. Robust against SI (no two adjacent
// anti-dependencies are possible) and against parallel SI towards SI.
func TransferApp() robustness.App {
	return robustness.SingleTxApp(
		robustness.NewTxSpec("transfer", objs(objAcct1, objAcct2), objs(objAcct1, objAcct2)),
		robustness.NewTxSpec("lookup1", objs(objAcct1), nil),
		robustness.NewTxSpec("lookup2", objs(objAcct2), nil),
	)
}
