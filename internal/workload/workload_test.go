package workload_test

import (
	"fmt"
	"math/rand"
	"testing"

	"sian/internal/check"
	"sian/internal/chopping"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	. "sian/internal/workload"
)

func TestExamplesWellFormed(t *testing.T) {
	t.Parallel()
	for _, ex := range Examples() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			t.Parallel()
			if err := ex.History.Validate(); err != nil {
				t.Errorf("history: %v", err)
			}
			if err := ex.History.CheckInt(); err != nil {
				t.Errorf("INT: %v", err)
			}
			if err := ex.Graph.Validate(); err != nil {
				t.Errorf("graph: %v", err)
			}
			// The attached graph's membership must match the declared
			// expectations except for SER/SI upgrades: a graph is one
			// witness; the declared flags are about the history. For
			// the examples the graph is the canonical witness, so they
			// agree on SI and PSI.
			if got := ex.Graph.InSI(); got != ex.InSI {
				t.Errorf("graph InSI = %v, want %v", got, ex.InSI)
			}
			if got := ex.Graph.InPSI(); got != ex.InPSI {
				t.Errorf("graph InPSI = %v, want %v", got, ex.InPSI)
			}
		})
	}
}

func TestFig4GraphsValid(t *testing.T) {
	t.Parallel()
	figs := Fig4Graphs()
	for name, g := range map[string]*depgraph.Graph{"G1": figs.G1, "G2": figs.G2} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !g.InSI() {
			t.Errorf("%s should be in GraphSI", name)
		}
	}
}

func TestRandomHistoryShape(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		h := RandomHistory(rng, RandomConfig{Sessions: 3, TxPerSession: 3, OpsPerTx: 4, Objects: 3, Values: 5})
		if h.NumSessions() != 3 {
			t.Fatalf("sessions = %d", h.NumSessions())
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("invalid random history: %v", err)
		}
		for _, tr := range h.Transactions() {
			if len(tr.Ops) == 0 || len(tr.Ops) > 4 {
				t.Fatalf("ops out of range: %v", tr)
			}
		}
	}
}

func TestRandomHistoryDefaults(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	h := RandomHistory(rng, RandomConfig{})
	if h.NumSessions() == 0 {
		t.Error("defaults produced empty history")
	}
}

func TestRandomPlausibleHistoryInt(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		h := RandomPlausibleHistory(rng, RandomConfig{Sessions: 3, TxPerSession: 2, OpsPerTx: 4, Objects: 2})
		if err := h.CheckInt(); err != nil {
			t.Fatalf("plausible history violates INT: %v\n%v", err, h)
		}
	}
}

func TestRandomPlausibleHistoryUniqueWrites(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	h := RandomPlausibleHistory(rng, RandomConfig{Sessions: 4, TxPerSession: 3, OpsPerTx: 4, Objects: 2})
	seen := map[model.Value]bool{}
	for _, tr := range h.Transactions() {
		for _, op := range tr.Ops {
			if op.Kind != model.OpWrite {
				continue
			}
			if seen[op.Val] {
				t.Fatalf("duplicate written value %d", op.Val)
			}
			seen[op.Val] = true
		}
	}
}

func TestRunRegistersCertifiable(t *testing.T) {
	t.Parallel()
	for _, kind := range []engine.Kind{engine.SI, engine.SER, engine.PSI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db, err := engine.New(kind, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			h, err := RunRegisters(db, RegistersConfig{Sessions: 3, TxPerSession: 4, OpsPerTx: 2, Objects: 3, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			var m depgraph.Model
			switch kind {
			case engine.SI:
				m = depgraph.SI
			case engine.SER:
				m = depgraph.SER
			case engine.PSI:
				m = depgraph.PSI
			}
			res, err := check.Certify(h, m, check.Options{NoInit: true, PinInit: true, Budget: 5_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Member {
				t.Errorf("%v registers history not certified", kind)
			}
		})
	}
}

func TestRunWriteSkewSERNeverAnomalous(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SER, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := RunWriteSkew(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Anomalies != 0 {
		t.Errorf("SER engine produced %d write-skew anomalies", out.Anomalies)
	}
	if out.Rounds != 20 {
		t.Errorf("rounds = %d", out.Rounds)
	}
}

func TestRunWriteSkewSIRuns(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := RunWriteSkew(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Anomalies are timing-dependent; just check accounting. The
	// deterministic write-skew reproduction lives in the engine tests
	// via ManualTx.
	if out.Anomalies < 0 || out.Anomalies > 20 {
		t.Errorf("anomalies = %d", out.Anomalies)
	}
}

func TestStageLongFork(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.PSI, engine.Config{ManualPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	h, err := StageLongFork(db)
	if err != nil {
		t.Fatal(err)
	}
	// The staged history is PSI but not SI (Figure 2(c)).
	psi, err := check.Certify(h, depgraph.PSI, check.Options{NoInit: true, PinInit: true, Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !psi.Member {
		t.Errorf("staged long fork not PSI-certifiable:\n%v", h)
	}
	si, err := check.Certify(h, depgraph.SI, check.Options{NoInit: true, PinInit: true, Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if si.Member {
		t.Errorf("staged long fork certified SI — fork not realised:\n%v", h)
	}
}

func TestStageLongForkRequiresPSI(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := StageLongFork(db); err == nil {
		t.Error("non-PSI database accepted")
	}
}

func TestRunTransfersBothModes(t *testing.T) {
	t.Parallel()
	for _, chopped := range []bool{false, true} {
		chopped := chopped
		name := "monolithic"
		if chopped {
			name = "chopped"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db, err := engine.New(engine.SI, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			out, err := RunTransfers(db, TransferConfig{
				Sessions: 3, Transfers: 5, Accounts: 4, Hops: 3, Chopped: chopped, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			wantCommits := int64(3 * 5) // sessions × transfers…
			if chopped {
				wantCommits = 3 * 5 * 3 // …× hops when chopped
			}
			if out.Commits != wantCommits {
				t.Errorf("commits = %d, want %d", out.Commits, wantCommits)
			}
		})
	}
}

func TestProgramsShape(t *testing.T) {
	t.Parallel()
	if got := len(Fig5Programs()); got != 2 {
		t.Errorf("Fig5Programs = %d programs", got)
	}
	if got := len(Fig6Programs()); got != 3 {
		t.Errorf("Fig6Programs = %d programs", got)
	}
	if got := len(Fig11Programs()); got != 2 {
		t.Errorf("Fig11Programs = %d programs", got)
	}
	if got := len(Fig12Programs()); got != 4 {
		t.Errorf("Fig12Programs = %d programs", got)
	}
	tr := TransferChopped()
	if len(tr.Pieces) != 2 {
		t.Errorf("transfer pieces = %d", len(tr.Pieces))
	}
	if len(WriteSkewApp().Sessions) != 2 || len(LongForkApp().Sessions) != 4 {
		t.Error("app shapes wrong")
	}
}

// TestStageBankingChopped is the operational Figure 4: the recorded
// chopped histories are always SI, but splicing keeps SI membership
// only for per-account lookups (Figure 6), not for the atomic
// balance-sum lookup (Figure 5).
func TestStageBankingChopped(t *testing.T) {
	t.Parallel()
	for _, atomic := range []bool{true, false} {
		atomic := atomic
		name := "lookupAll"
		if !atomic {
			name = "perAccount"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			db, err := engine.New(engine.SI, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			h, err := StageBankingChopped(db, atomic)
			if err != nil {
				t.Fatal(err)
			}
			opts := check.Options{NoInit: true, PinInit: true, Budget: 1_000_000}
			res, err := check.Certify(h, depgraph.SI, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Member {
				t.Fatal("chopped history itself must be SI")
			}
			spliced, err := check.Certify(h.Splice(), depgraph.SI, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantSpliced := !atomic
			if spliced.Member != wantSpliced {
				t.Errorf("spliced SI membership = %v, want %v", spliced.Member, wantSpliced)
			}
			// The dynamic chopping criterion agrees: the witness graph
			// of the chopped history has a critical cycle exactly in
			// the atomic case.
			dyn, err := chopping.CheckDynamic(res.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if atomic && dyn.Critical == nil {
				t.Error("no critical cycle for the Figure 5 staging")
			}
			if !atomic && dyn.Critical != nil {
				t.Errorf("unexpected critical cycle: %v", dyn.DCG.DescribeCycle(dyn.Critical))
			}
		})
	}
}

// TestChoppedProgramsCorollary18 is the end-to-end form of Corollary
// 18: for random program sets whose static chopping graph has no
// SI-critical cycle, every history the chopped application produces on
// the SI engine splices into an SI-certifiable history. (The recorded
// chopped history itself is always SI — it ran under SI.)
func TestChoppedProgramsCorollary18(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(271))
	objs := []model.Obj{"x", "y"}
	randomSets := func() []model.Obj {
		var out []model.Obj
		for _, x := range objs {
			if rng.Intn(3) == 0 {
				out = append(out, x)
			}
		}
		return out
	}
	correct, flagged := 0, 0
	for trial := 0; trial < 40; trial++ {
		nprog := 2
		var programs []chopping.Program
		for pi := 0; pi < nprog; pi++ {
			npieces := 1 + rng.Intn(2)
			var pieces []chopping.Piece
			for j := 0; j < npieces; j++ {
				reads, writes := randomSets(), randomSets()
				if len(reads) == 0 && len(writes) == 0 {
					writes = []model.Obj{objs[rng.Intn(len(objs))]}
				}
				pieces = append(pieces, chopping.NewPiece(fmt.Sprintf("p%d", j), reads, writes))
			}
			programs = append(programs, chopping.NewProgram(fmt.Sprintf("prog%d", pi), pieces...))
		}
		// Each program runs twice (in separate sessions), so the static
		// over-approximation needs two copies of every program.
		var doubled []chopping.Program
		for _, p := range programs {
			doubled = append(doubled, chopping.Replicate(p, 2)...)
		}
		verdict, err := chopping.CheckStatic(doubled, chopping.SICritical)
		if err != nil {
			t.Fatal(err)
		}
		db, err := engine.New(engine.SI, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := RunChoppedPrograms(db, programs, ChoppedRunConfig{Rounds: 2, Seed: int64(trial)})
		db.Close()
		if err != nil {
			t.Fatal(err)
		}
		opts := check.Options{NoInit: true, PinInit: true, Budget: 5_000_000}
		res, err := check.Certify(h, depgraph.SI, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			t.Fatalf("trial %d: chopped SI-engine history not SI:\n%v", trial, h)
		}
		if !verdict.OK {
			flagged++
			continue
		}
		correct++
		sres, err := check.Certify(h.Splice(), depgraph.SI, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !sres.Member {
			t.Fatalf("trial %d: Corollary 18 violated — SCG-correct chopping produced a non-spliceable history\nprograms: %v\nhistory:\n%v",
				trial, programs, h)
		}
	}
	if correct == 0 {
		t.Error("no SCG-correct program sets generated")
	}
	t.Logf("correct=%d flagged=%d", correct, flagged)
}

// TestStageSmallBankOverdraft: the SmallBank write skew is realisable
// under SI (combined balance goes negative) and prevented by SER and
// SSI.
func TestStageSmallBankOverdraft(t *testing.T) {
	t.Parallel()
	tests := []struct {
		kind engine.Kind
		both bool
	}{
		{engine.SI, true},
		{engine.SER, false},
		{engine.SSI, false},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.kind.String(), func(t *testing.T) {
			t.Parallel()
			db, err := engine.New(tc.kind, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			both, total, err := StageSmallBankOverdraft(db)
			if err != nil {
				t.Fatal(err)
			}
			if both != tc.both {
				t.Errorf("both committed = %v, want %v", both, tc.both)
			}
			if tc.both && total >= 0 {
				t.Errorf("SI overdraft not realised: total = %d", total)
			}
			if !tc.both && total < 0 {
				t.Errorf("%v overdrew: total = %d", tc.kind, total)
			}
		})
	}
}

// TestRunSmallBankInvariants: the randomized SmallBank run never
// overdraws under SER or SSI; under SI overdrafts may occur (not
// asserted — timing-dependent) but accounting must hold.
func TestRunSmallBankInvariants(t *testing.T) {
	t.Parallel()
	for _, kind := range []engine.Kind{engine.SER, engine.SSI, engine.SI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db, err := engine.New(kind, engine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			out, err := RunSmallBank(db, SmallBankConfig{
				Customers: 2, Sessions: 3, TxPerSession: 15, Seed: 77,
			})
			if err != nil {
				t.Fatal(err)
			}
			if kind != engine.SI && out.Overdrafts != 0 {
				t.Errorf("%v overdrafts = %d", kind, out.Overdrafts)
			}
			if out.Operations != 45 {
				t.Errorf("operations = %d", out.Operations)
			}
		})
	}
}
