package silform_test

import (
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/silint"
	"sian/internal/workload/silform"
)

// analyzeSilform runs the §6.1 static analysis over this package.
func analyzeSilform(t *testing.T) *silint.PackageReport {
	t.Helper()
	report, err := silint.Analyze([]string{"."}, silint.Options{
		Models: []depgraph.Model{depgraph.SI},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Packages) != 1 {
		t.Fatalf("%d packages analyzed, want 1", len(report.Packages))
	}
	return report.Packages[0]
}

// staticTxs indexes the extracted transactions by name.
func staticTxs(pkg *silint.PackageReport) map[string]*silint.Tx {
	txs := make(map[string]*silint.Tx)
	for _, s := range pkg.Sessions {
		for _, tx := range s.Txs {
			txs[tx.Name] = tx
		}
	}
	return txs
}

// TestSilformStatic pins the acceptance criterion for the
// interprocedural extractor: the factored SmallBank and closed-loop
// forms extract exact per-object sets — no diagnostics, zero
// ⊤-widenings.
func TestSilformStatic(t *testing.T) {
	pkg := analyzeSilform(t)
	if len(pkg.Diagnostics) != 0 {
		t.Fatalf("diagnostics on silform: %+v", pkg.Diagnostics)
	}
	if pkg.Widenings != 0 {
		t.Fatalf("widenings = %d, want 0 (factored helpers must extract exactly)", pkg.Widenings)
	}
	txs := staticTxs(pkg)
	want := map[string]struct{ reads, writes []model.Obj }{
		"Balance":         {reads: []model.Obj{"checking0", "savings0"}},
		"DepositChecking": {reads: []model.Obj{"checking0"}, writes: []model.Obj{"checking0"}},
		"TransactSavings": {
			reads:  []model.Obj{"conflict0", "savings0"},
			writes: []model.Obj{"conflict0", "savings0"},
		},
		"WriteCheck": {
			reads:  []model.Obj{"checking0", "conflict0", "savings0"},
			writes: []model.Obj{"checking0", "conflict0"},
		},
		"rmw0": {reads: []model.Obj{"hits"}, writes: []model.Obj{"hits"}},
		"rmw1": {reads: []model.Obj{"hits"}, writes: []model.Obj{"hits"}},
		"rmw2": {reads: []model.Obj{"hits"}, writes: []model.Obj{"hits"}},
	}
	if len(txs) != len(want) {
		t.Errorf("extracted %d transactions, want %d", len(txs), len(want))
	}
	for name, w := range want {
		tx, ok := txs[name]
		if !ok {
			t.Errorf("transaction %s not extracted", name)
			continue
		}
		checkExact(t, name+" reads", tx.Reads, w.reads)
		checkExact(t, name+" writes", tx.Writes, w.writes)
	}
}

func checkExact(t *testing.T, what string, s *silint.ObjSet, want []model.Obj) {
	t.Helper()
	if s.Top {
		t.Errorf("%s: widened to ⊤, want exact %v", what, want)
		return
	}
	got := s.Objects()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", what, got, want)
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", what, got, want)
			return
		}
	}
}

// TestSilformDifferential closes the static-vs-dynamic loop: replay
// the silform programs through the SI engine and assert that every
// recorded read/write set is covered by the statically extracted one —
// the soundness direction of the §6.1 extraction.
func TestSilformDifferential(t *testing.T) {
	txs := staticTxs(analyzeSilform(t))

	replay := func(name string, init, run func(*engine.DB) error) {
		db, err := engine.New(engine.SI, engine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := init(db); err != nil {
			t.Fatal(err)
		}
		if err := run(db); err != nil {
			t.Fatal(err)
		}
		db.Flush()
		compared := 0
		for _, sess := range db.History().Sessions() {
			for _, tr := range sess.Transactions {
				i := strings.LastIndex(tr.ID, "/")
				if i < 0 {
					continue // the init transaction
				}
				txName := tr.ID[i+1:]
				tx, ok := txs[txName]
				if !ok {
					t.Errorf("%s: recorded transaction %s has no static counterpart", name, tr.ID)
					continue
				}
				compared++
				covers(t, name+"/"+txName+" reads", tx.Reads, tr.ReadSet())
				covers(t, name+"/"+txName+" writes", tx.Writes, tr.WriteSet())
			}
		}
		if compared == 0 {
			t.Errorf("%s: no recorded transactions compared", name)
		}
	}

	replay("smallbank", silform.InitSmallBank, silform.SmallBank)
	replay("closedloop", silform.InitClosedLoop, func(db *engine.DB) error {
		// Two rounds: re-entry is the closed loop.
		if err := silform.ClosedLoop(db); err != nil {
			return err
		}
		return silform.ClosedLoop(db)
	})
}

// covers asserts that the static set over-approximates the recorded
// one.
func covers(t *testing.T, what string, static *silint.ObjSet, recorded []model.Obj) {
	t.Helper()
	if static.Top {
		return // ⊤ covers everything (silform should never get here)
	}
	in := make(map[model.Obj]bool)
	for _, x := range static.Objects() {
		in[x] = true
	}
	for _, x := range recorded {
		if !in[x] {
			t.Errorf("%s: engine recorded %s, not in static set %v", what, x, static.Objects())
		}
	}
}
