package randmix_test

import (
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/silint"
	"sian/internal/workload/silform/randmix"
)

// TestRandmixFlagged pins the expected-failure side of the CI gate:
// the skew-prone mix is statically rejected under SI, with the repair
// advisor pointing at the racing pair.
func TestRandmixFlagged(t *testing.T) {
	report, err := silint.Analyze([]string{"."}, silint.Options{
		Models: []depgraph.Model{depgraph.SI},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Packages) != 1 {
		t.Fatalf("%d packages analyzed, want 1", len(report.Packages))
	}
	diags := report.Packages[0].Diagnostics
	if len(diags) == 0 {
		t.Fatal("randmix not flagged — the expected-failure CI gate would pass vacuously")
	}
	found := false
	for _, d := range diags {
		if d.Category == "write-skew" && len(d.Fixes) > 0 &&
			strings.Contains(d.Fixes[0].Message, "promote read of") {
			found = true
		}
	}
	if !found {
		t.Errorf("no write-skew diagnostic with a promotion fix: %+v", diags)
	}
}

// TestMixReplays checks the form still runs: a sequential replay
// commits every transaction (the skew needs overlapping snapshots).
func TestMixReplays(t *testing.T) {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := randmix.Init(db); err != nil {
		t.Fatal(err)
	}
	if err := randmix.Mix(db); err != nil {
		t.Fatal(err)
	}
}
