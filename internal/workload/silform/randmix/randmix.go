// Package randmix is the silint-checkable form of the skew-prone
// random mix: two withdrawal programs authorise against the combined
// balance of a shared pair of objects but write disjoint halves — the
// Figure 2(d) write skew embedded in a mixed workload, deliberately
// left unfixed. silint must flag this package (write-skew, Theorem
// 19), and the CI sivet gate runs it as the expected-failure case.
package randmix

import (
	"sian/internal/engine"
	"sian/internal/model"
)

const (
	left  = "left"
	right = "right"
	audit = "auditlog"
)

// Init funds both halves.
func Init(db *engine.DB) error {
	return db.Initialize(map[model.Obj]model.Value{
		left: 60, right: 60, audit: 0,
	})
}

// covered reads both halves and reports whether the combined balance
// covers the amount.
func covered(tx *engine.Tx, amount model.Value) (model.Value, model.Value, bool, error) {
	lv, err := tx.Read(left)
	if err != nil {
		return 0, 0, false, err
	}
	rv, err := tx.Read(right)
	if err != nil {
		return 0, 0, false, err
	}
	return lv, rv, lv+rv >= amount, nil
}

// Mix replays one round of the skew-prone mix: the two racing
// withdrawals plus a read-only observer and a log append.
func Mix(db *engine.DB) error {
	a := db.Session("mix-a")
	if err := a.TransactNamed("drainLeft", func(tx *engine.Tx) error {
		lv, _, ok, err := covered(tx, 100)
		if err != nil || !ok {
			return err
		}
		return tx.Write(left, lv-100)
	}); err != nil {
		return err
	}

	b := db.Session("mix-b")
	if err := b.TransactNamed("drainRight", func(tx *engine.Tx) error {
		_, rv, ok, err := covered(tx, 100)
		if err != nil || !ok {
			return err
		}
		return tx.Write(right, rv-100)
	}); err != nil {
		return err
	}

	watcher := db.Session("mix-watch")
	if err := watcher.TransactNamed("observe", func(tx *engine.Tx) error {
		_, _, _, err := covered(tx, 0)
		return err
	}); err != nil {
		return err
	}

	logger := db.Session("mix-log")
	return logger.TransactNamed("logAppend", func(tx *engine.Tx) error {
		n, err := tx.Read(audit)
		if err != nil {
			return err
		}
		return tx.Write(audit, n+1)
	})
}
