// Package silform holds silint-checkable program forms of the
// registered workloads: the same transaction programs the operational
// runners in internal/workload drive with goroutines and RNG mixes,
// rewritten as straight-line Go that the §6.1 static analysis can
// extract exactly — constant object keys, single-transaction sessions,
// and helpers that take the *engine.Tx handle (exercising the
// interprocedural summariser). The package must stay diagnostic-free
// with zero ⊤-widenings; the differential test asserts that the
// statically extracted read/write sets over-approximate what the
// engine records when the same forms are replayed, and CI runs sivet
// over the package as a quality gate.
//
// The SmallBank form carries the Promote-materialised conflict fix
// (Alomari et al., ICDE 2008; the paper's §6 remedy): TransactSavings
// and WriteCheck both promote a dedicated conflict object, so the
// write-skew race between them cannot commit on overlapping snapshots.
package silform

import (
	"sian/internal/engine"
	"sian/internal/model"
)

// The fixed customer's account objects and the materialised-conflict
// object shared by the racing pair.
const (
	checking = "checking0"
	savings  = "savings0"
	conflict = "conflict0"
)

// The closed-loop counter object, read-modify-written by every worker.
const hits = "hits"

// InitSmallBank funds the fixed customer.
func InitSmallBank(db *engine.DB) error {
	return db.Initialize(map[model.Obj]model.Value{
		checking: 100, savings: 100, conflict: 0,
	})
}

// InitClosedLoop zeroes the shared counter.
func InitClosedLoop(db *engine.DB) error {
	return db.Initialize(map[model.Obj]model.Value{hits: 0})
}

// readAccounts reads both accounts of the fixed customer — the shared
// authorisation step of Balance, TransactSavings and WriteCheck.
func readAccounts(tx *engine.Tx) (cv, sv model.Value, err error) {
	cv, err = tx.Read(checking)
	if err != nil {
		return 0, 0, err
	}
	sv, err = tx.Read(savings)
	if err != nil {
		return 0, 0, err
	}
	return cv, sv, nil
}

// materialise promotes the conflict object: the §6 remedy making the
// disjoint-write TransactSavings/WriteCheck pair conflict under SI.
func materialise(tx *engine.Tx) error {
	return tx.Promote(conflict)
}

// deposit adds amount to the account named by the constant key acct.
func deposit(tx *engine.Tx, acct string, amount model.Value) error {
	v, err := tx.Read(model.Obj(acct))
	if err != nil {
		return err
	}
	return tx.Write(model.Obj(acct), v+amount)
}

// SmallBank replays one round of the Promote-fixed SmallBank programs,
// each transaction in its own session.
func SmallBank(db *engine.DB) error {
	balance := db.Session("sb-balance")
	if err := balance.TransactNamed("Balance", func(tx *engine.Tx) error {
		_, _, err := readAccounts(tx)
		return err
	}); err != nil {
		return err
	}

	depositing := db.Session("sb-deposit")
	if err := depositing.TransactNamed("DepositChecking", func(tx *engine.Tx) error {
		return deposit(tx, checking, 20)
	}); err != nil {
		return err
	}

	saver := db.Session("sb-transactsavings")
	if err := saver.TransactNamed("TransactSavings", func(tx *engine.Tx) error {
		if err := materialise(tx); err != nil {
			return err
		}
		sv, err := tx.Read(savings)
		if err != nil {
			return err
		}
		if sv < 30 {
			return nil // insufficient savings: no-op
		}
		return tx.Write(savings, sv-30)
	}); err != nil {
		return err
	}

	casher := db.Session("sb-writecheck")
	return casher.TransactNamed("WriteCheck", func(tx *engine.Tx) error {
		if err := materialise(tx); err != nil {
			return err
		}
		cv, sv, err := readAccounts(tx)
		if err != nil {
			return err
		}
		if cv+sv < 35 {
			return nil // check not covered: reject
		}
		return tx.Write(checking, cv-35)
	})
}

// increment is the closed-loop body: read-modify-write of one counter.
func increment(tx *engine.Tx, obj string) error {
	v, err := tx.Read(model.Obj(obj))
	if err != nil {
		return err
	}
	return tx.Write(model.Obj(obj), v+1)
}

// ClosedLoop replays the per-round program shape of the closed-loop
// RMW workload: three workers each increment the shared counter once,
// every transaction in its own session. (The operational runner,
// internal/workload.RunClosedLoop, drives many rounds per session; a
// multi-transaction session is a chopping under Corollary 18 and
// RMW-on-the-same-object pieces do not chop correctly, so the
// checkable form keeps the loop in the caller — re-invoke ClosedLoop
// for more rounds.) Every transaction both reads and writes the same
// object, so any concurrent pair conflicts — robust under SI by
// construction.
func ClosedLoop(db *engine.DB) error {
	w0 := db.Session("loop-w0")
	if err := w0.TransactNamed("rmw0", func(tx *engine.Tx) error {
		return increment(tx, hits)
	}); err != nil {
		return err
	}
	w1 := db.Session("loop-w1")
	if err := w1.TransactNamed("rmw1", func(tx *engine.Tx) error {
		return increment(tx, hits)
	}); err != nil {
		return err
	}
	w2 := db.Session("loop-w2")
	return w2.TransactNamed("rmw2", func(tx *engine.Tx) error {
		return increment(tx, hits)
	})
}
