package workload_test

import (
	"testing"
	"time"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	. "sian/internal/workload"
)

func TestClosedLoopOpsMode(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cfg := ClosedLoopConfig{Sessions: 4, Ops: 30, Objects: 8, Seed: 7}
	out, err := RunClosedLoop(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done int64
	for _, n := range out.PerSession {
		done += n
	}
	if done != 4*30 {
		t.Errorf("transactions = %d, want %d", done, 4*30)
	}
	// The delta excludes the initialisation transaction by design.
	if out.Commits != done {
		t.Errorf("commit delta = %d, want %d", out.Commits, done)
	}
	// The recorded history must certify SI: the unique-value discipline
	// makes reads traceable.
	db.Flush()
	res, err := check.Certify(db.History(), depgraph.SI, check.Options{
		NoInit: true, PinInit: true, Budget: 2_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Member {
		t.Errorf("closed-loop history not allowed by SI: %v", res.Explain)
	}
}

func TestClosedLoopDurationMode(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := RunClosedLoop(db, ClosedLoopConfig{
		Sessions: 2, Duration: 30 * time.Millisecond, Objects: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Commits < 2 {
		t.Errorf("duration mode committed only %d transactions", out.Commits)
	}
	if out.Elapsed <= 0 {
		t.Errorf("elapsed = %v", out.Elapsed)
	}
}

func TestClosedLoopDisjointNoConflicts(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := RunClosedLoop(db, ClosedLoopConfig{
		Sessions: 4, Ops: 40, Objects: 4, Disjoint: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Private pools: first-committer-wins can never fire.
	if out.Conflicts != 0 {
		t.Errorf("disjoint workload hit %d conflicts", out.Conflicts)
	}
	if out.Retries != 0 {
		t.Errorf("disjoint workload retried %d times", out.Retries)
	}
}

func TestClosedLoopHotKeysSkew(t *testing.T) {
	t.Parallel()
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, err = RunClosedLoop(db, ClosedLoopConfig{
		Sessions: 4, Ops: 25, Objects: 64, HotKeys: 1, HotFraction: 1000,
		ReadFraction: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// HotFraction 1000 pins every access to the single hot object, so
	// no workload transaction may touch anything but cl0. (Conflict
	// counts are scheduler-dependent — on a single CPU short
	// transactions rarely overlap — so we assert the skew itself.)
	db.Flush()
	for _, tr := range db.History().Transactions() {
		if len(tr.Ops) == 64 {
			continue // the initialisation transaction seeds all 64 objects
		}
		for _, op := range tr.Ops {
			if op.Obj != "cl0" {
				t.Fatalf("transaction %s touched %s; hot-key skew not applied", tr.ID, op.Obj)
			}
		}
	}
}
