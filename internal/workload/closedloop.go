package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/engine"
	"sian/internal/model"
)

// ClosedLoopConfig parameterises RunClosedLoop, the concurrent
// benchmark driver: one goroutine per session, each issuing its next
// transaction as soon as the previous one finishes (a closed loop —
// offered load equals 1 outstanding transaction per session).
type ClosedLoopConfig struct {
	// Sessions is the number of concurrent worker sessions.
	Sessions int
	// Duration bounds the run by wall clock; when zero, Ops bounds it
	// by count instead.
	Duration time.Duration
	// Ops is the number of transactions per session when Duration is
	// zero (default 100).
	Ops int
	// OpsPerTx is the number of read/write operations per transaction
	// (default 3).
	OpsPerTx int
	// Objects sizes the object pool: shared across sessions, or per
	// session when Disjoint is set (default 16).
	Objects int
	// ReadFraction is the per-mille probability of a pure read
	// (default 500); every other operation is a read-modify-write of
	// the picked object.
	ReadFraction int
	// Disjoint gives every session a private object pool, so write
	// sets never overlap — the scaling workload: commits proceed on
	// disjoint store shards with no conflicts.
	Disjoint bool
	// HotKeys, when positive, skews accesses: HotFraction per mille
	// of object picks come from the first HotKeys objects of the
	// shared pool — the contention workload. Ignored with Disjoint.
	HotKeys int
	// HotFraction is the per-mille probability of picking a hot key
	// when HotKeys > 0 (default 800).
	HotFraction int
	// Seed makes the per-worker RNG streams reproducible.
	Seed int64
}

func (c ClosedLoopConfig) withDefaults() ClosedLoopConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 3
	}
	if c.Objects <= 0 {
		c.Objects = 16
	}
	if c.ReadFraction <= 0 {
		c.ReadFraction = 500
	}
	if c.HotFraction <= 0 {
		c.HotFraction = 800
	}
	if c.HotKeys > c.Objects {
		c.HotKeys = c.Objects
	}
	return c
}

// ClosedLoopOutcome reports a closed-loop run.
type ClosedLoopOutcome struct {
	// Elapsed is the wall-clock span between the first worker start
	// and the last worker exit.
	Elapsed time.Duration
	// Commits, Conflicts, Retries are the engine counter deltas over
	// the run (workload transactions only, not initialisation).
	Commits   int64
	Conflicts int64
	Retries   int64
	// PerSession counts committed transactions per worker; the spread
	// diagnoses fairness collapse under contention.
	PerSession []int64
}

// objName returns the n-th object of a worker's pool: private pools
// under Disjoint, one shared pool otherwise.
func (c ClosedLoopConfig) objName(worker, n int) model.Obj {
	if c.Disjoint {
		return model.Obj(fmt.Sprintf("cl%d_%d", worker, n))
	}
	return model.Obj(fmt.Sprintf("cl%d", n))
}

// pick draws an object index, honouring the hot-set skew.
func (c ClosedLoopConfig) pick(rng *rand.Rand) int {
	if !c.Disjoint && c.HotKeys > 0 && rng.Intn(1000) < c.HotFraction {
		return rng.Intn(c.HotKeys)
	}
	return rng.Intn(c.Objects)
}

// RunClosedLoop drives the closed-loop workload: Sessions goroutines,
// each on its own session with its own RNG stream, running random
// read/write transactions until the duration or per-session op count
// is exhausted. Every written value is globally unique, so the
// recorded history is value-traceable and check.Certify can recover
// its read dependencies. The database must be fresh; the runner
// initialises every pool object to 0.
func RunClosedLoop(db *engine.DB, cfg ClosedLoopConfig) (*ClosedLoopOutcome, error) {
	cfg = cfg.withDefaults()
	init := make(map[model.Obj]model.Value)
	pools := 1
	if cfg.Disjoint {
		pools = cfg.Sessions
	}
	for w := 0; w < pools; w++ {
		for n := 0; n < cfg.Objects; n++ {
			init[cfg.objName(w, n)] = 0
		}
	}
	if err := db.Initialize(init); err != nil {
		return nil, fmt.Errorf("workload: initialising closed loop: %w", err)
	}

	before := db.Stats()
	var counter atomic.Int64
	var stopFlag atomic.Bool
	var timer *time.Timer
	if cfg.Duration > 0 {
		timer = time.AfterFunc(cfg.Duration, func() { stopFlag.Store(true) })
		defer timer.Stop()
	}

	out := &ClosedLoopOutcome{PerSession: make([]int64, cfg.Sessions)}
	errs := make([]error, cfg.Sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Sessions; w++ {
		sess := db.Session(fmt.Sprintf("cl%d", w))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*6364136223846793005))
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := 0
			if cfg.Disjoint {
				pool = w
			}
			for n := 0; ; n++ {
				if cfg.Duration > 0 {
					if stopFlag.Load() {
						return
					}
				} else if n >= cfg.Ops {
					return
				}
				err := sess.Transact(func(tx *engine.Tx) error {
					for o := 0; o < cfg.OpsPerTx; o++ {
						x := cfg.objName(pool, cfg.pick(rng))
						if rng.Intn(1000) < cfg.ReadFraction {
							if _, err := tx.Read(x); err != nil {
								return err
							}
						} else {
							// Read-modify-write rather than a blind
							// write: the read pins the predecessor
							// version, so the recorded history's
							// version order is traceable and
							// certification stays near-linear (long
							// concurrent blind-write chains force the
							// checker to search WW orders).
							if _, err := tx.Read(x); err != nil {
								return err
							}
							if err := tx.Write(x, model.Value(counter.Add(1))); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
				out.PerSession[w]++
			}
		}(w)
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	after := db.Stats()
	out.Commits = after.Commits - before.Commits
	out.Conflicts = after.Conflicts - before.Conflicts
	out.Retries = after.Retries - before.Retries
	return out, nil
}
