package workload

import (
	"fmt"
	"math/rand"

	"sian/internal/model"
)

// RandomConfig parameterises RandomHistory.
type RandomConfig struct {
	// Sessions is the number of sessions.
	Sessions int
	// TxPerSession bounds transactions per session (uniform 1..max).
	TxPerSession int
	// OpsPerTx bounds operations per transaction (uniform 1..max).
	OpsPerTx int
	// Objects is the size of the object pool ("k0", "k1", …).
	Objects int
	// Values is the size of the value domain for writes and for read
	// expectations (0..Values-1). Small domains create value
	// coincidences that force the certifier to branch on WR sources;
	// they also make most histories non-members, exercising rejection
	// paths.
	Values int
	// ReadFraction is the per-mille probability (0–1000) that an
	// operation is a read; the default 500 gives an even mix.
	ReadFraction int
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.Sessions <= 0 {
		c.Sessions = 2
	}
	if c.TxPerSession <= 0 {
		c.TxPerSession = 2
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 2
	}
	if c.Objects <= 0 {
		c.Objects = 2
	}
	if c.Values <= 0 {
		c.Values = 3
	}
	if c.ReadFraction <= 0 {
		c.ReadFraction = 500
	}
	return c
}

// RandomHistory generates an arbitrary history: operations, objects
// and values drawn independently at random. Such histories are often
// outside every model; use RandomPlausibleHistory to bias towards
// members. Histories do not include an initialisation transaction
// (values may be read that nobody wrote); certification with
// the checker's default init transaction (Options.NoInit unset)
// handles the initial reads of value 0.
func RandomHistory(rng *rand.Rand, cfg RandomConfig) *model.History {
	cfg = cfg.withDefaults()
	sessions := make([]model.Session, 0, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		ntx := 1 + rng.Intn(cfg.TxPerSession)
		txs := make([]model.Transaction, 0, ntx)
		for t := 0; t < ntx; t++ {
			nops := 1 + rng.Intn(cfg.OpsPerTx)
			ops := make([]model.Op, 0, nops)
			for o := 0; o < nops; o++ {
				x := model.Obj(fmt.Sprintf("k%d", rng.Intn(cfg.Objects)))
				v := model.Value(rng.Intn(cfg.Values))
				if rng.Intn(1000) < cfg.ReadFraction {
					ops = append(ops, model.Read(x, v))
				} else {
					ops = append(ops, model.Write(x, v))
				}
			}
			txs = append(txs, model.NewTransaction(fmt.Sprintf("s%d/t%d", s, t), ops...))
		}
		sessions = append(sessions, model.Session{ID: fmt.Sprintf("s%d", s), Transactions: txs})
	}
	return model.NewHistory(sessions...)
}

// RandomPlausibleHistory generates a history by simulating a weakly
// consistent execution: every transaction reads the value of a
// randomly chosen earlier write to the object (or 0), respecting INT
// within the transaction. The result is frequently (not always) a
// member of at least PSI, giving property tests a healthy mix of
// members and non-members.
func RandomPlausibleHistory(rng *rand.Rand, cfg RandomConfig) *model.History {
	cfg = cfg.withDefaults()
	written := make(map[model.Obj][]model.Value)
	sessions := make([]model.Session, 0, cfg.Sessions)
	nextVal := model.Value(1)
	for s := 0; s < cfg.Sessions; s++ {
		ntx := 1 + rng.Intn(cfg.TxPerSession)
		txs := make([]model.Transaction, 0, ntx)
		for t := 0; t < ntx; t++ {
			nops := 1 + rng.Intn(cfg.OpsPerTx)
			ops := make([]model.Op, 0, nops)
			local := make(map[model.Obj]model.Value)
			for o := 0; o < nops; o++ {
				x := model.Obj(fmt.Sprintf("k%d", rng.Intn(cfg.Objects)))
				if rng.Intn(1000) < cfg.ReadFraction {
					v, seen := local[x]
					if !seen {
						if ws := written[x]; len(ws) > 0 && rng.Intn(4) > 0 {
							v = ws[rng.Intn(len(ws))]
						} else {
							v = 0
						}
					}
					ops = append(ops, model.Read(x, v))
					local[x] = v
				} else {
					v := nextVal
					nextVal++
					ops = append(ops, model.Write(x, v))
					local[x] = v
					written[x] = append(written[x], v)
				}
			}
			txs = append(txs, model.NewTransaction(fmt.Sprintf("s%d/t%d", s, t), ops...))
		}
		sessions = append(sessions, model.Session{ID: fmt.Sprintf("s%d", s), Transactions: txs})
	}
	return model.NewHistory(sessions...)
}
