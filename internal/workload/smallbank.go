package workload

import (
	"fmt"

	"sian/internal/model"
	"sian/internal/robustness"
)

// SmallBank is the classical benchmark used in the SI-robustness
// literature (Alomari, Cahill, Fekete, Röhm: "The Cost of
// Serializability on Platforms That Use Snapshot Isolation", ICDE
// 2008) and a natural stress test for the §6.1 analysis. Each customer
// has a checking and a savings account; the application has five
// transaction programs:
//
//   - Balance(N): read both accounts (read-only);
//   - DepositChecking(N): read and write checking;
//   - TransactSavings(N): read and write savings;
//   - Amalgamate(N1, N2): move all funds of N1 into N2's checking —
//     reads and writes both of N1's accounts and N2's checking;
//   - WriteCheck(N): read both accounts, write checking.
//
// The application is not robust against SI: WriteCheck decides on the
// combined balance but only conflicts on checking, so it can race a
// TransactSavings — observed by a Balance — in a write-skew shape.

// smallBankObjs returns the checking and savings objects of a
// customer.
func smallBankObjs(customer int) (checking, savings model.Obj) {
	return model.Obj(fmt.Sprintf("checking%d", customer)),
		model.Obj(fmt.Sprintf("savings%d", customer))
}

// SmallBankApp builds the SmallBank application spec over the given
// number of customers, with one concurrent instance of every program
// per customer (Amalgamate moves customer i's funds to customer
// (i+1) mod n). When fixed is true the standard materialised-conflict
// fix is applied: TransactSavings and WriteCheck both update a
// per-customer conflict object, so SI's write-conflict detection
// orders the racing pair.
func SmallBankApp(customers int, fixed bool) robustness.App {
	if customers < 1 {
		customers = 1
	}
	var txs []robustness.TxSpec
	for n := 0; n < customers; n++ {
		c, s := smallBankObjs(n)
		conflict := model.Obj(fmt.Sprintf("conflict%d", n))
		both := []model.Obj{c, s}

		balance := robustness.NewTxSpec(fmt.Sprintf("Balance(%d)", n), both, nil)
		deposit := robustness.NewTxSpec(fmt.Sprintf("DepositChecking(%d)", n),
			[]model.Obj{c}, []model.Obj{c})

		tsReads, tsWrites := []model.Obj{s}, []model.Obj{s}
		wcReads, wcWrites := both, []model.Obj{c}
		if fixed {
			tsWrites = append(tsWrites, conflict)
			wcWrites = append(wcWrites, conflict)
		}
		transact := robustness.NewTxSpec(fmt.Sprintf("TransactSavings(%d)", n), tsReads, tsWrites)
		writeCheck := robustness.NewTxSpec(fmt.Sprintf("WriteCheck(%d)", n), wcReads, wcWrites)

		c2, _ := smallBankObjs((n + 1) % customers)
		amalgamate := robustness.NewTxSpec(fmt.Sprintf("Amalgamate(%d,%d)", n, (n+1)%customers),
			both, []model.Obj{c, s, c2})

		txs = append(txs, balance, deposit, transact, writeCheck, amalgamate)
	}
	return robustness.SingleTxApp(txs...)
}
