package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/engine"
	"sian/internal/model"
)

// RegistersConfig parameterises RunRegisters.
type RegistersConfig struct {
	Sessions     int
	TxPerSession int
	OpsPerTx     int
	Objects      int
	// ReadFraction is the per-mille probability of a read (default
	// 500).
	ReadFraction int
	// Seed makes op sequences reproducible per session.
	Seed int64
}

func (c RegistersConfig) withDefaults() RegistersConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.TxPerSession <= 0 {
		c.TxPerSession = 10
	}
	if c.OpsPerTx <= 0 {
		c.OpsPerTx = 3
	}
	if c.Objects <= 0 {
		c.Objects = 4
	}
	if c.ReadFraction <= 0 {
		c.ReadFraction = 500
	}
	return c
}

// RunRegisters drives a value-traceable register workload against the
// database: concurrent sessions perform random reads and writes, with
// every written value globally unique so that the recorded history's
// read dependencies are recoverable. The database must be fresh; the
// runner initialises every object to 0. Returns the recorded history.
func RunRegisters(db *engine.DB, cfg RegistersConfig) (*model.History, error) {
	cfg = cfg.withDefaults()
	init := make(map[model.Obj]model.Value, cfg.Objects)
	for i := 0; i < cfg.Objects; i++ {
		init[model.Obj(fmt.Sprintf("k%d", i))] = 0
	}
	if err := db.Initialize(init); err != nil {
		return nil, fmt.Errorf("workload: initialising registers: %w", err)
	}
	var counter atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		sess := db.Session(fmt.Sprintf("reg%d", s))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for t := 0; t < cfg.TxPerSession; t++ {
				err := sess.Transact(func(tx *engine.Tx) error {
					for o := 0; o < cfg.OpsPerTx; o++ {
						x := model.Obj(fmt.Sprintf("k%d", rng.Intn(cfg.Objects)))
						if rng.Intn(1000) < cfg.ReadFraction {
							if _, err := tx.Read(x); err != nil {
								return err
							}
						} else {
							if err := tx.Write(x, model.Value(counter.Add(1))); err != nil {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	db.Flush()
	return db.History(), nil
}

// WriteSkewOutcome reports a write-skew experiment.
type WriteSkewOutcome struct {
	// Rounds is the number of rounds run.
	Rounds int
	// Anomalies counts rounds where both withdrawals committed,
	// driving the combined balance negative — impossible under
	// serializability, possible under SI and PSI.
	Anomalies int
}

// RunWriteSkew runs the Figure 2(d) scenario for the given number of
// rounds. Each round uses a fresh pair of accounts initialised to 60
// each; two concurrent sessions read both balances and, if the
// combined balance is at least 100, withdraw 100 from their own
// account. An anomaly is a round whose final combined balance is
// negative.
func RunWriteSkew(db *engine.DB, rounds int) (*WriteSkewOutcome, error) {
	out := &WriteSkewOutcome{Rounds: rounds}
	s1 := db.Session("withdraw1")
	s2 := db.Session("withdraw2")
	for r := 0; r < rounds; r++ {
		a1 := model.Obj(fmt.Sprintf("acct1_%d", r))
		a2 := model.Obj(fmt.Sprintf("acct2_%d", r))
		if err := db.Initialize(map[model.Obj]model.Value{a1: 60, a2: 60}); err != nil {
			return nil, err
		}
		withdraw := func(sess *engine.Session, own model.Obj) error {
			return sess.TransactNamed(fmt.Sprintf("withdraw%d", r), func(tx *engine.Tx) error {
				v1, err := tx.Read(a1)
				if err != nil {
					return err
				}
				v2, err := tx.Read(a2)
				if err != nil {
					return err
				}
				if v1+v2 >= 100 {
					ownVal := v1
					if own == a2 {
						ownVal = v2
					}
					return tx.Write(own, ownVal-100)
				}
				return nil
			})
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = withdraw(s1, a1) }()
		go func() { defer wg.Done(); errs[1] = withdraw(s2, a2) }()
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
		db.Flush()
		total, err := readPair(db, a1, a2)
		if err != nil {
			return nil, err
		}
		if total < 0 {
			out.Anomalies++
		}
	}
	return out, nil
}

// readPair reads two objects in one fresh transaction and returns
// their sum.
func readPair(db *engine.DB, a1, a2 model.Obj) (model.Value, error) {
	s := db.Session("audit")
	var total model.Value
	err := s.Transact(func(tx *engine.Tx) error {
		v1, err := tx.Read(a1)
		if err != nil {
			return err
		}
		v2, err := tx.Read(a2)
		if err != nil {
			return err
		}
		total = v1 + v2
		return nil
	})
	return total, err
}

// TransferConfig parameterises the chopping-speedup experiment (§1,
// §5 motivation): concurrent sessions each move value along a chain of
// accounts. Unchopped, a session updates all Hops accounts in one
// transaction; chopped, it issues one transaction per hop.
type TransferConfig struct {
	Sessions  int
	Transfers int // transfers per session
	Accounts  int // size of the shared account pool
	Hops      int // accounts touched per transfer
	Chopped   bool
	Seed      int64
	// Think simulates per-hop application work between the read and
	// the write. Long-running transactions are the motivation for
	// chopping (§1, §5): with a non-zero think time, a monolithic
	// transfer holds an SI conflict window of Hops × Think, while each
	// chopped piece holds only Think.
	Think time.Duration
}

func (c TransferConfig) withDefaults() TransferConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Transfers <= 0 {
		c.Transfers = 20
	}
	if c.Accounts <= 0 {
		c.Accounts = 8
	}
	if c.Hops <= 0 {
		c.Hops = 4
	}
	return c
}

// TransferOutcome reports the chopping experiment.
type TransferOutcome struct {
	Commits   int64
	Conflicts int64
}

// RunTransfers executes the transfer workload and returns commit and
// conflict counts (the conflict rate is the quantity chopping is meant
// to reduce under SI, by shrinking the conflict window of each piece).
func RunTransfers(db *engine.DB, cfg TransferConfig) (*TransferOutcome, error) {
	cfg = cfg.withDefaults()
	init := make(map[model.Obj]model.Value, cfg.Accounts)
	for i := 0; i < cfg.Accounts; i++ {
		init[acctName(i)] = 1000
	}
	if err := db.Initialize(init); err != nil {
		return nil, err
	}
	before := db.Stats()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		sess := db.Session(fmt.Sprintf("transfer%d", s))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(s)*7919))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for t := 0; t < cfg.Transfers; t++ {
				accounts := pickDistinct(rng, cfg.Accounts, cfg.Hops)
				var err error
				if cfg.Chopped {
					err = choppedTransfer(sess, accounts, cfg.Think)
				} else {
					err = monolithicTransfer(sess, accounts, cfg.Think)
				}
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	after := db.Stats()
	return &TransferOutcome{
		Commits:   after.Commits - before.Commits,
		Conflicts: after.Conflicts - before.Conflicts,
	}, nil
}

func acctName(i int) model.Obj { return model.Obj(fmt.Sprintf("acct%d", i)) }

// pickDistinct draws k distinct indices from [0, n).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// monolithicTransfer updates every account in a single transaction,
// thinking between the read and the write of each hop.
func monolithicTransfer(sess *engine.Session, accounts []int, think time.Duration) error {
	return sess.Transact(func(tx *engine.Tx) error {
		for _, a := range accounts {
			v, err := tx.Read(acctName(a))
			if err != nil {
				return err
			}
			sleep(think)
			if err := tx.Write(acctName(a), v+1); err != nil {
				return err
			}
		}
		return nil
	})
}

// choppedTransfer performs the same per-account updates as a session
// of single-account transactions — the chopping of
// monolithicTransfer.
func choppedTransfer(sess *engine.Session, accounts []int, think time.Duration) error {
	for _, a := range accounts {
		err := sess.Transact(func(tx *engine.Tx) error {
			v, err := tx.Read(acctName(a))
			if err != nil {
				return err
			}
			sleep(think)
			return tx.Write(acctName(a), v+1)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// StageBankingChopped realises Figure 4 operationally on a database:
// the transfer is chopped into two transactions (debit acct1, credit
// acct2), and balance queries run *between* the two pieces. With
// atomicLookup a single lookupAll transaction reads both accounts —
// observing the half-completed transfer, so that splicing the recorded
// history leaves HistSI (the incorrect chopping of Figure 5); with
// per-account lookups the spliced history stays in HistSI (the correct
// chopping of Figure 6). The returned history is the recorded one;
// call History.Splice to obtain the spliced counterpart.
func StageBankingChopped(db *engine.DB, atomicLookup bool) (*model.History, error) {
	if err := db.Initialize(map[model.Obj]model.Value{objAcct1: 100, objAcct2: 100}); err != nil {
		return nil, err
	}
	transfer := db.Session("transfer")
	// Piece 1: acct1 -= 100.
	err := transfer.TransactNamed("piece1", func(tx *engine.Tx) error {
		v, err := tx.Read(objAcct1)
		if err != nil {
			return err
		}
		return tx.Write(objAcct1, v-100)
	})
	if err != nil {
		return nil, err
	}
	// Queries between the pieces.
	readObj := func(sess *engine.Session, objs ...model.Obj) error {
		return sess.Transact(func(tx *engine.Tx) error {
			for _, x := range objs {
				if _, err := tx.Read(x); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if atomicLookup {
		if err := readObj(db.Session("lookupAll"), objAcct1, objAcct2); err != nil {
			return nil, err
		}
	} else {
		if err := readObj(db.Session("lookup1"), objAcct1); err != nil {
			return nil, err
		}
		if err := readObj(db.Session("lookup2"), objAcct2); err != nil {
			return nil, err
		}
	}
	// Piece 2: acct2 += 100.
	err = transfer.TransactNamed("piece2", func(tx *engine.Tx) error {
		v, err := tx.Read(objAcct2)
		if err != nil {
			return err
		}
		return tx.Write(objAcct2, v+100)
	})
	if err != nil {
		return nil, err
	}
	db.Flush()
	return db.History(), nil
}

// StageLongFork drives a PSI database (in manual-propagation mode)
// through the Figure 2(c) long fork deterministically and returns the
// recorded history: T1 writes x at site A, T2 writes y at site B; T3
// at site A observes x=1, y=0; T4 at site B observes y=1, x=0. The
// caller owns db and should create it with
// Config{ManualPropagation: true}.
func StageLongFork(db *engine.DB) (*model.History, error) {
	if db.Kind() != engine.PSI {
		return nil, fmt.Errorf("workload: long fork staging requires a PSI database, got %v", db.Kind())
	}
	if err := db.Initialize(map[model.Obj]model.Value{objX: 0, objY: 0}); err != nil {
		return nil, err
	}
	siteA := db.Session("siteA")
	siteB := db.Session("siteB")
	write := func(s *engine.Session, obj model.Obj) error {
		return s.Transact(func(tx *engine.Tx) error { return tx.Write(obj, 1) })
	}
	readBoth := func(s *engine.Session, first, second model.Obj) error {
		return s.Transact(func(tx *engine.Tx) error {
			if _, err := tx.Read(first); err != nil {
				return err
			}
			_, err := tx.Read(second)
			return err
		})
	}
	// Concurrent writes at two sites, not yet propagated.
	if err := write(siteA, objX); err != nil {
		return nil, err
	}
	if err := write(siteB, objY); err != nil {
		return nil, err
	}
	// Each site reads with only its own write applied: the fork.
	if err := readBoth(siteA, objX, objY); err != nil {
		return nil, err
	}
	if err := readBoth(siteB, objY, objX); err != nil {
		return nil, err
	}
	db.Flush()
	return db.History(), nil
}
