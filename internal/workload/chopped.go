package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"sian/internal/chopping"
	"sian/internal/engine"
	"sian/internal/model"
)

// ChoppedRunConfig parameterises RunChoppedPrograms.
type ChoppedRunConfig struct {
	// Rounds runs every program Rounds times in its session
	// (sequentially within the session, concurrently across sessions).
	Rounds int
	// Seed drives the per-session interleaving jitter.
	Seed int64
}

// RunChoppedPrograms executes a chopped application (§5) on a
// database: every execution of a program becomes one session issuing
// the program's pieces in order as separate transactions (the paper's
// one-to-one correspondence between sessions and programs — a session
// is the chopping of a single original transaction), concurrently with
// the other programs, following the paper's client assumptions
// (conflict-aborted pieces are resubmitted until they commit; clients
// never abort). Each piece reads its whole read set and writes
// globally unique values to its whole write set, making the recorded
// history value-traceable for certification. With Rounds > 1 each
// program is executed Rounds times, each execution in a fresh session
// (sequentially per program, concurrently across programs); note that
// the static analysis then needs Rounds concurrent copies of each
// program to over-approximate the run (chopping.Replicate).
//
// The database must be fresh; every object mentioned by any piece is
// initialised to 0. The recorded history is returned; splice it with
// History.Splice to check the chopping's observable behaviour against
// the static verdict of chopping.CheckStatic.
func RunChoppedPrograms(db *engine.DB, programs []chopping.Program, cfg ChoppedRunConfig) (*model.History, error) {
	if len(programs) == 0 {
		return nil, errors.New("workload: no programs")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	objs := make(map[model.Obj]model.Value)
	for _, p := range programs {
		for _, pc := range p.Pieces {
			for _, x := range pc.Reads {
				objs[x] = 0
			}
			for _, x := range pc.Writes {
				objs[x] = 0
			}
		}
	}
	if len(objs) == 0 {
		return nil, errors.New("workload: programs access no objects")
	}
	if err := db.Initialize(objs); err != nil {
		return nil, err
	}
	var counter atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, len(programs))
	// Sessions must be created by the caller goroutine for engines
	// that allocate sites; pre-create one per (program, round).
	sessions := make([][]*engine.Session, len(programs))
	for pi, p := range programs {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("program%d", pi)
		}
		for round := 0; round < cfg.Rounds; round++ {
			sessions[pi] = append(sessions[pi], db.Session(fmt.Sprintf("%s#%d", name, round)))
		}
	}
	for pi, p := range programs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(pi)*104729))
		wg.Add(1)
		go func(idx int, prog chopping.Program) {
			defer wg.Done()
			for round := 0; round < cfg.Rounds; round++ {
				sess := sessions[idx][round]
				for pj, piece := range prog.Pieces {
					label := piece.Name
					if label == "" {
						label = fmt.Sprintf("p%d", pj)
					}
					err := sess.TransactNamed(label, func(tx *engine.Tx) error {
						for _, x := range piece.Reads {
							if _, err := tx.Read(x); err != nil {
								return err
							}
						}
						for _, x := range piece.Writes {
							if err := tx.Write(x, model.Value(counter.Add(1))); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						errs[idx] = err
						return
					}
					// Jitter between pieces widens the window in which
					// other sessions can interleave — the situation
					// chopping analysis must tolerate.
					if rng.Intn(2) == 0 {
						runtime.Gosched()
					}
				}
			}
		}(pi, p)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	db.Flush()
	return db.History(), nil
}
