package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"sian/internal/engine"
	"sian/internal/model"
)

// SmallBankConfig parameterises RunSmallBank.
type SmallBankConfig struct {
	Customers    int
	Sessions     int
	TxPerSession int
	Seed         int64
	// InitialChecking / InitialSavings are the opening balances.
	InitialChecking model.Value
	InitialSavings  model.Value
}

func (c SmallBankConfig) withDefaults() SmallBankConfig {
	if c.Customers <= 0 {
		c.Customers = 2
	}
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.TxPerSession <= 0 {
		c.TxPerSession = 20
	}
	if c.InitialChecking == 0 {
		c.InitialChecking = 100
	}
	if c.InitialSavings == 0 {
		c.InitialSavings = 100
	}
	return c
}

// SmallBankOutcome reports a SmallBank run.
type SmallBankOutcome struct {
	// Overdrafts counts customers whose final combined balance is
	// negative. The application logic never authorises an uncovered
	// withdrawal, so under serializability (and SSI) this is always 0;
	// under SI a WriteCheck racing a TransactSavings withdrawal can
	// overdraw — the SmallBank write skew the §6.1 analysis flags
	// statically.
	Overdrafts int
	// Operations counts committed application transactions.
	Operations int
}

// RunSmallBank drives the SmallBank application (Alomari et al.)
// operationally: concurrent sessions issue random Balance,
// DepositChecking, TransactSavings, WriteCheck and Amalgamate
// transactions with real money semantics, and a final audit checks the
// never-overdrawn invariant per customer.
func RunSmallBank(db *engine.DB, cfg SmallBankConfig) (*SmallBankOutcome, error) {
	cfg = cfg.withDefaults()
	init := make(map[model.Obj]model.Value, 2*cfg.Customers)
	for n := 0; n < cfg.Customers; n++ {
		c, s := smallBankObjs(n)
		init[c] = cfg.InitialChecking
		init[s] = cfg.InitialSavings
	}
	if err := db.Initialize(init); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		sess := db.Session(fmt.Sprintf("teller%d", i))
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*6151))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for t := 0; t < cfg.TxPerSession; t++ {
				customer := rng.Intn(cfg.Customers)
				var err error
				switch rng.Intn(5) {
				case 0:
					err = sbBalance(sess, customer)
				case 1:
					err = sbDepositChecking(sess, customer, model.Value(1+rng.Intn(20)))
				case 2:
					err = sbTransactSavings(sess, customer, -model.Value(1+rng.Intn(80)))
				case 3:
					err = sbWriteCheck(sess, customer, model.Value(1+rng.Intn(120)))
				case 4:
					err = sbAmalgamate(sess, customer, (customer+1)%cfg.Customers)
				}
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	db.Flush()
	out := &SmallBankOutcome{Operations: cfg.Sessions * cfg.TxPerSession}
	audit := db.Session("audit")
	for n := 0; n < cfg.Customers; n++ {
		c, s := smallBankObjs(n)
		var total model.Value
		err := audit.Transact(func(tx *engine.Tx) error {
			cv, err := tx.Read(c)
			if err != nil {
				return err
			}
			sv, err := tx.Read(s)
			if err != nil {
				return err
			}
			total = cv + sv
			return nil
		})
		if err != nil {
			return nil, err
		}
		if total < 0 {
			out.Overdrafts++
		}
	}
	return out, nil
}

// sbBalance reads both accounts.
func sbBalance(sess *engine.Session, n int) error {
	c, s := smallBankObjs(n)
	return sess.TransactNamed("Balance", func(tx *engine.Tx) error {
		if _, err := tx.Read(c); err != nil {
			return err
		}
		_, err := tx.Read(s)
		return err
	})
}

// sbDepositChecking adds amount to checking.
func sbDepositChecking(sess *engine.Session, n int, amount model.Value) error {
	c, _ := smallBankObjs(n)
	return sess.TransactNamed("DepositChecking", func(tx *engine.Tx) error {
		v, err := tx.Read(c)
		if err != nil {
			return err
		}
		return tx.Write(c, v+amount)
	})
}

// sbTransactSavings applies amount (possibly negative) to savings.
// Withdrawals are authorised against the *combined* balance — the
// precondition that makes "total never negative" a serial invariant,
// and exactly what creates the disjoint-write race with WriteCheck
// under SI.
func sbTransactSavings(sess *engine.Session, n int, amount model.Value) error {
	c, s := smallBankObjs(n)
	return sess.TransactNamed("TransactSavings", func(tx *engine.Tx) error {
		cv, err := tx.Read(c)
		if err != nil {
			return err
		}
		sv, err := tx.Read(s)
		if err != nil {
			return err
		}
		if cv+sv+amount < 0 {
			return nil // insufficient funds: no-op
		}
		return tx.Write(s, sv+amount)
	})
}

// sbWriteCheck cashes a check against the combined balance: only
// authorised when covered, deducted from checking.
func sbWriteCheck(sess *engine.Session, n int, amount model.Value) error {
	c, s := smallBankObjs(n)
	return sess.TransactNamed("WriteCheck", func(tx *engine.Tx) error {
		cv, err := tx.Read(c)
		if err != nil {
			return err
		}
		sv, err := tx.Read(s)
		if err != nil {
			return err
		}
		if cv+sv < amount {
			return nil // not covered: reject the check
		}
		return tx.Write(c, cv-amount)
	})
}

// sbAmalgamate moves all of customer a's funds into customer b's
// checking.
func sbAmalgamate(sess *engine.Session, a, b int) error {
	ca, sa := smallBankObjs(a)
	cb, _ := smallBankObjs(b)
	if a == b {
		return nil
	}
	return sess.TransactNamed("Amalgamate", func(tx *engine.Tx) error {
		cav, err := tx.Read(ca)
		if err != nil {
			return err
		}
		sav, err := tx.Read(sa)
		if err != nil {
			return err
		}
		cbv, err := tx.Read(cb)
		if err != nil {
			return err
		}
		if err := tx.Write(ca, 0); err != nil {
			return err
		}
		if err := tx.Write(sa, 0); err != nil {
			return err
		}
		return tx.Write(cb, cbv+cav+sav)
	})
}

// StageSmallBankOverdraft stages the SmallBank write skew
// deterministically: a WriteCheck and a TransactSavings withdrawal on
// the same customer run on overlapping snapshots. Under SI both
// commit, overdrawing the customer; under SER and SSI one aborts. It
// returns whether both committed and the final combined balance.
func StageSmallBankOverdraft(db *engine.DB) (bothCommitted bool, finalTotal model.Value, err error) {
	c, s := smallBankObjs(0)
	if err := db.Initialize(map[model.Obj]model.Value{c: 10, s: 30}); err != nil {
		return false, 0, err
	}
	wc, err := db.Session("writecheck").Begin("WriteCheck")
	if err != nil {
		return false, 0, err
	}
	ts, err := db.Session("transactsavings").Begin("TransactSavings")
	if err != nil {
		return false, 0, err
	}
	// WriteCheck: cash 35 against combined 40.
	cv, err := wc.Read(c)
	if err != nil {
		return false, 0, err
	}
	sv, err := wc.Read(s)
	if err != nil {
		return false, 0, err
	}
	if cv+sv < 35 {
		return false, 0, fmt.Errorf("workload: staging broken: combined %d", cv+sv)
	}
	if err := wc.Write(c, cv-35); err != nil {
		return false, 0, err
	}
	// TransactSavings: withdraw 30, authorised against the combined
	// snapshot balance 40.
	tcv, err := ts.Read(c)
	if err != nil {
		return false, 0, err
	}
	tsv, err := ts.Read(s)
	if err != nil {
		return false, 0, err
	}
	if tcv+tsv < 30 {
		return false, 0, fmt.Errorf("workload: staging broken: combined %d", tcv+tsv)
	}
	if err := ts.Write(s, tsv-30); err != nil {
		return false, 0, err
	}
	err1 := wc.Commit()
	err2 := ts.Commit()
	db.Flush()
	var total model.Value
	audit := db.Session("audit")
	aerr := audit.Transact(func(tx *engine.Tx) error {
		cv, err := tx.Read(c)
		if err != nil {
			return err
		}
		sv, err := tx.Read(s)
		if err != nil {
			return err
		}
		total = cv + sv
		return nil
	})
	if aerr != nil {
		return false, 0, aerr
	}
	return err1 == nil && err2 == nil, total, nil
}
