package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// random returns a random relation over n elements with the given edge
// probability (per mille).
func random(rng *rand.Rand, n, perMille int) *Rel {
	r := New(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if rng.Intn(1000) < perMille {
				r.Add(a, b)
			}
		}
	}
	return r
}

func TestNewEmpty(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		r := New(n)
		if r.N() != n {
			t.Errorf("N() = %d, want %d", r.N(), n)
		}
		if !r.IsEmpty() {
			t.Errorf("New(%d) not empty", n)
		}
		if r.Size() != 0 {
			t.Errorf("Size() = %d, want 0", r.Size())
		}
	}
}

func TestAddHasRemove(t *testing.T) {
	t.Parallel()
	r := New(130)
	pairs := [][2]int{{0, 0}, {0, 129}, {129, 0}, {64, 63}, {63, 64}, {127, 128}}
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	for _, p := range pairs {
		if !r.Has(p[0], p[1]) {
			t.Errorf("missing pair %v", p)
		}
	}
	if r.Size() != len(pairs) {
		t.Errorf("Size() = %d, want %d", r.Size(), len(pairs))
	}
	if r.Has(1, 1) {
		t.Error("unexpected pair (1,1)")
	}
	r.Remove(0, 129)
	if r.Has(0, 129) {
		t.Error("pair (0,129) survived Remove")
	}
	if r.Size() != len(pairs)-1 {
		t.Errorf("Size() after Remove = %d, want %d", r.Size(), len(pairs)-1)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		fn   func()
	}{
		{"Add negative", func() { New(3).Add(-1, 0) }},
		{"Add too big", func() { New(3).Add(0, 3) }},
		{"Has too big", func() { New(3).Has(3, 0) }},
		{"Successors", func() { New(3).Successors(5) }},
		{"carrier mismatch", func() { New(3).Union(New(4)) }},
		{"negative carrier", func() { New(-1) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestFromPairs(t *testing.T) {
	t.Parallel()
	r, err := FromPairs(4, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatalf("FromPairs: %v", err)
	}
	if !r.Has(0, 1) || !r.Has(1, 2) || r.Size() != 2 {
		t.Errorf("unexpected contents: %v", r)
	}
	if _, err := FromPairs(2, [][2]int{{0, 2}}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestIdentityFull(t *testing.T) {
	t.Parallel()
	id := Identity(70)
	if id.Size() != 70 {
		t.Errorf("Identity size = %d, want 70", id.Size())
	}
	full := Full(70)
	if full.Size() != 70*70 {
		t.Errorf("Full size = %d, want %d", full.Size(), 70*70)
	}
	if !id.SubsetOf(full) {
		t.Error("Identity ⊄ Full")
	}
}

func TestSetAlgebra(t *testing.T) {
	t.Parallel()
	a, _ := FromPairs(4, [][2]int{{0, 1}, {1, 2}})
	b, _ := FromPairs(4, [][2]int{{1, 2}, {2, 3}})
	union := a.Union(b)
	want, _ := FromPairs(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if !union.Equal(want) {
		t.Errorf("Union = %v, want %v", union, want)
	}
	inter := a.Intersect(b)
	wantI, _ := FromPairs(4, [][2]int{{1, 2}})
	if !inter.Equal(wantI) {
		t.Errorf("Intersect = %v, want %v", inter, wantI)
	}
	minus := a.Minus(b)
	wantM, _ := FromPairs(4, [][2]int{{0, 1}})
	if !minus.Equal(wantM) {
		t.Errorf("Minus = %v, want %v", minus, wantM)
	}
	// Union must not mutate its operands.
	if a.Size() != 2 || b.Size() != 2 {
		t.Error("Union mutated an operand")
	}
}

func TestCompose(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		r, s, w [][2]int
	}{
		{"chain", [][2]int{{0, 1}}, [][2]int{{1, 2}}, [][2]int{{0, 2}}},
		{"no match", [][2]int{{0, 1}}, [][2]int{{2, 3}}, nil},
		{"fan", [][2]int{{0, 1}, {0, 2}}, [][2]int{{1, 3}, {2, 3}}, [][2]int{{0, 3}}},
		{"self", [][2]int{{1, 1}}, [][2]int{{1, 1}}, [][2]int{{1, 1}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, _ := FromPairs(4, tc.r)
			s, _ := FromPairs(4, tc.s)
			w, _ := FromPairs(4, tc.w)
			if got := r.Compose(s); !got.Equal(w) {
				t.Errorf("Compose = %v, want %v", got, w)
			}
		})
	}
}

func TestComposeMatchesDefinition(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		r := random(rng, n, 100)
		s := random(rng, n, 100)
		got := r.Compose(s)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := false
				for c := 0; c < n; c++ {
					if r.Has(a, c) && s.Has(c, b) {
						want = true
						break
					}
				}
				if got.Has(a, b) != want {
					t.Fatalf("n=%d: Compose(%d,%d) = %v, want %v", n, a, b, got.Has(a, b), want)
				}
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name  string
		in, w [][2]int
		n     int
	}{
		{"chain", [][2]int{{0, 1}, {1, 2}, {2, 3}}, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, 4},
		{"cycle", [][2]int{{0, 1}, {1, 0}}, [][2]int{{0, 1}, {1, 0}, {0, 0}, {1, 1}}, 2},
		{"empty", nil, nil, 3},
		{"self loop", [][2]int{{1, 1}}, [][2]int{{1, 1}}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, _ := FromPairs(tc.n, tc.in)
			w, _ := FromPairs(tc.n, tc.w)
			if got := r.TransitiveClosure(); !got.Equal(w) {
				t.Errorf("closure = %v, want %v", got, w)
			}
		})
	}
}

func TestTransitiveClosureProperties(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		r := random(rng, n, 60)
		tc := r.TransitiveClosure()
		if !r.SubsetOf(tc) {
			t.Fatal("R ⊄ R⁺")
		}
		if !tc.IsTransitive() {
			t.Fatal("R⁺ not transitive")
		}
		// Minimality: R⁺ ⊆ any transitive superset; compare against a
		// naive fixed-point computation.
		naive := r.Clone()
		for {
			next := naive.Union(naive.Compose(naive))
			if next.Equal(naive) {
				break
			}
			naive = next
		}
		if !tc.Equal(naive) {
			t.Fatalf("closure mismatch: %v vs naive %v", tc, naive)
		}
	}
}

func TestMaybeInverse(t *testing.T) {
	t.Parallel()
	r, _ := FromPairs(3, [][2]int{{0, 1}, {2, 1}})
	m := r.Maybe()
	if m.Size() != 5 || !m.Has(0, 0) || !m.Has(1, 1) || !m.Has(2, 2) {
		t.Errorf("Maybe = %v", m)
	}
	inv := r.Inverse()
	want, _ := FromPairs(3, [][2]int{{1, 0}, {1, 2}})
	if !inv.Equal(want) {
		t.Errorf("Inverse = %v, want %v", inv, want)
	}
	if !inv.Inverse().Equal(r) {
		t.Error("double inverse differs")
	}
}

func TestAcyclicity(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   [][2]int
		n    int
		want bool
	}{
		{"empty", nil, 5, true},
		{"chain", [][2]int{{0, 1}, {1, 2}}, 3, true},
		{"self loop", [][2]int{{1, 1}}, 3, false},
		{"two cycle", [][2]int{{0, 1}, {1, 0}}, 2, false},
		{"long cycle", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 4, false},
		{"diamond", [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 4, true},
		{"cycle far from start", [][2]int{{5, 6}, {6, 5}}, 8, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, _ := FromPairs(tc.n, tc.in)
			if got := r.IsAcyclic(); got != tc.want {
				t.Errorf("IsAcyclic = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAcyclicAgreesWithClosure(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(25)
		r := random(rng, n, 40+rng.Intn(100))
		fromDFS := r.IsAcyclic()
		fromClosure := r.TransitiveClosure().IsIrreflexive()
		if fromDFS != fromClosure {
			t.Fatalf("IsAcyclic=%v but closure irreflexive=%v for %v", fromDFS, fromClosure, r)
		}
	}
}

func TestOrders(t *testing.T) {
	t.Parallel()
	chain, _ := FromPairs(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if !chain.IsStrictPartialOrder() {
		t.Error("transitive chain should be a strict partial order")
	}
	if !chain.IsTotal() || !chain.IsTotalOrderOn([]int{0, 1, 2}) {
		t.Error("chain should be total")
	}
	partial, _ := FromPairs(3, [][2]int{{0, 1}})
	if partial.IsTotal() {
		t.Error("partial order reported total")
	}
	if !partial.IsTotalOrderOn([]int{0, 1}) {
		t.Error("restriction to {0,1} is a total order")
	}
	nonTransitive, _ := FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	if nonTransitive.IsStrictPartialOrder() {
		t.Error("non-transitive relation reported as strict partial order")
	}
	if nonTransitive.IsTotalOrderOn([]int{0, 1, 2}) {
		t.Error("non-transitive relation reported as total order")
	}
	reflexive, _ := FromPairs(2, [][2]int{{0, 0}, {0, 1}})
	if reflexive.IsStrictPartialOrder() || reflexive.IsTotalOrderOn([]int{0, 1}) {
		t.Error("reflexive relation reported as strict order")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	t.Parallel()
	r, _ := FromPairs(70, [][2]int{{0, 5}, {0, 64}, {3, 5}, {64, 0}})
	if got := r.Successors(0); len(got) != 2 || got[0] != 5 || got[1] != 64 {
		t.Errorf("Successors(0) = %v", got)
	}
	if got := r.Predecessors(5); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Predecessors(5) = %v", got)
	}
	if got := r.Predecessors(1); got != nil {
		t.Errorf("Predecessors(1) = %v, want nil", got)
	}
}

func TestTopoSort(t *testing.T) {
	t.Parallel()
	r, _ := FromPairs(4, [][2]int{{2, 0}, {0, 1}, {3, 1}})
	order, err := r.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, p := range r.Pairs() {
		if pos[p[0]] >= pos[p[1]] {
			t.Errorf("order %v violates edge %v", order, p)
		}
	}
	cyc, _ := FromPairs(2, [][2]int{{0, 1}, {1, 0}})
	if _, err := cyc.TopoSort(); err == nil {
		t.Error("expected error on cyclic relation")
	}
	selfloop, _ := FromPairs(2, [][2]int{{1, 1}})
	if _, err := selfloop.TopoSort(); err == nil {
		t.Error("expected error on self-loop")
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	t.Parallel()
	r, _ := FromPairs(5, [][2]int{{4, 2}})
	order, err := r.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (lowest-index-first tie break)", order, want)
		}
	}
}

func TestFindCycle(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   [][2]int
		n    int
		want bool // cycle exists
	}{
		{"acyclic", [][2]int{{0, 1}, {1, 2}}, 3, false},
		{"self loop", [][2]int{{2, 2}}, 3, true},
		{"triangle", [][2]int{{0, 1}, {1, 2}, {2, 0}}, 3, true},
		{"deep", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}}, 4, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r, _ := FromPairs(tc.n, tc.in)
			cyc := r.FindCycle()
			if (cyc != nil) != tc.want {
				t.Fatalf("FindCycle = %v, want existence %v", cyc, tc.want)
			}
			if cyc == nil {
				return
			}
			if cyc[0] != cyc[len(cyc)-1] {
				t.Errorf("cycle %v not closed", cyc)
			}
			for i := 0; i+1 < len(cyc); i++ {
				if !r.Has(cyc[i], cyc[i+1]) {
					t.Errorf("cycle %v uses missing edge (%d,%d)", cyc, cyc[i], cyc[i+1])
				}
			}
		})
	}
}

func TestFindCycleRandomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(20)
		r := random(rng, n, 80)
		cyc := r.FindCycle()
		if (cyc == nil) != r.IsAcyclic() {
			t.Fatalf("FindCycle/IsAcyclic disagree on %v", r)
		}
		for i := 0; i+1 < len(cyc); i++ {
			if !r.Has(cyc[i], cyc[i+1]) {
				t.Fatalf("invalid cycle edge in %v", cyc)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	t.Parallel()
	r, _ := FromPairs(3, [][2]int{{2, 0}, {0, 1}})
	if got, want := r.String(), "{(0,1), (2,0)}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := New(2).String(), "{}"; got != want {
		t.Errorf("empty String() = %q, want %q", got, want)
	}
}

// TestQuickUnionCommutes is a testing/quick property: union is
// commutative and composition distributes over union on the left.
func TestQuickUnionCommutes(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b, c := random(rng, n, 150), random(rng, n, 150), random(rng, n, 150)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		// (a ∪ b) ; c == (a ; c) ∪ (b ; c)
		left := a.Union(b).Compose(c)
		right := a.Compose(c).Union(b.Compose(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickClosureIdempotent: (R⁺)⁺ = R⁺ and R* = (R?)⁺.
func TestQuickClosureIdempotent(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		r := random(rng, n, 120)
		tc := r.TransitiveClosure()
		if !tc.TransitiveClosure().Equal(tc) {
			return false
		}
		return r.ReflexiveTransitiveClosure().Equal(r.Maybe().TransitiveClosure())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubsetMonotone: R ⊆ S implies R⁺ ⊆ S⁺ and R;X ⊆ S;X.
func TestQuickSubsetMonotone(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		r := random(rng, n, 100)
		s := r.Union(random(rng, n, 100))
		x := random(rng, n, 100)
		if !r.TransitiveClosure().SubsetOf(s.TransitiveClosure()) {
			return false
		}
		return r.Compose(x).SubsetOf(s.Compose(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
