// Package relation implements dense binary relations over {0, …, n-1}
// backed by bitset adjacency matrices.
//
// The analyses in this module are dominated by relational algebra over
// transaction sets: unions, sequential composition (R1 ; R2),
// transitive closures, acyclicity and totality checks (Figures 1 and 3
// of the paper). Representing a relation as n rows of ⌈n/64⌉ machine
// words makes composition and closure word-parallel, which keeps the
// soundness construction of Theorem 10(i) — which recomputes closures
// while totalising the commit order — comfortably fast for histories
// with thousands of transactions.
//
// All operations treat relations as immutable values unless the method
// name says otherwise (the mutating methods are the *InPlace variants
// and Add/Remove); the convention follows the style of the standard
// library's big.Int: result-producing methods allocate.
package relation

import (
	"fmt"
	"math/bits"
	"strings"
)

// Rel is a binary relation over the set {0, …, N-1}. The zero value is
// an empty relation over the empty set; use New to create a relation
// over a non-empty carrier.
type Rel struct {
	n     int
	words int      // words per row: ⌈n/64⌉
	rows  []uint64 // n*words bits, row-major
}

// New returns the empty relation over {0, …, n-1}. n must be
// non-negative.
func New(n int) *Rel {
	if n < 0 {
		panic(fmt.Sprintf("relation: negative carrier size %d", n))
	}
	w := (n + 63) / 64
	return &Rel{n: n, words: w, rows: make([]uint64, n*w)}
}

// FromPairs returns the relation over {0, …, n-1} containing exactly
// the given pairs. It returns an error if any pair is out of range.
func FromPairs(n int, pairs [][2]int) (*Rel, error) {
	r := New(n)
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, fmt.Errorf("relation: pair (%d,%d) out of range [0,%d)", p[0], p[1], n)
		}
		r.Add(p[0], p[1])
	}
	return r, nil
}

// Identity returns the identity relation {(i,i) | 0 ≤ i < n}.
func Identity(n int) *Rel {
	r := New(n)
	for i := 0; i < n; i++ {
		r.Add(i, i)
	}
	return r
}

// Full returns the complete relation over {0, …, n-1} (including the
// diagonal).
func Full(n int) *Rel {
	r := New(n)
	for i := range r.rows {
		r.rows[i] = ^uint64(0)
	}
	r.maskTail()
	return r
}

// maskTail clears the unused bits past column n-1 in every row.
func (r *Rel) maskTail() {
	if r.words == 0 {
		return
	}
	rem := r.n % 64
	if rem == 0 {
		return
	}
	mask := (uint64(1) << rem) - 1
	for i := 0; i < r.n; i++ {
		r.rows[i*r.words+r.words-1] &= mask
	}
}

// N returns the size of the carrier set.
func (r *Rel) N() int { return r.n }

// row returns the bitset row for element i.
func (r *Rel) row(i int) []uint64 {
	return r.rows[i*r.words : (i+1)*r.words]
}

// check panics if (a, b) is outside the carrier. Carrier mismatches in
// this package are programming errors (all relations in an analysis
// share one history), hence panic rather than error.
func (r *Rel) check(a, b int) {
	if a < 0 || a >= r.n || b < 0 || b >= r.n {
		panic(fmt.Sprintf("relation: pair (%d,%d) out of range [0,%d)", a, b, r.n))
	}
}

// Add inserts the pair (a, b).
func (r *Rel) Add(a, b int) {
	r.check(a, b)
	r.row(a)[b/64] |= 1 << (uint(b) % 64)
}

// Remove deletes the pair (a, b).
func (r *Rel) Remove(a, b int) {
	r.check(a, b)
	r.row(a)[b/64] &^= 1 << (uint(b) % 64)
}

// Has reports whether (a, b) is in the relation.
func (r *Rel) Has(a, b int) bool {
	r.check(a, b)
	return r.row(a)[b/64]&(1<<(uint(b)%64)) != 0
}

// Clone returns a deep copy of r.
func (r *Rel) Clone() *Rel {
	c := &Rel{n: r.n, words: r.words, rows: make([]uint64, len(r.rows))}
	copy(c.rows, r.rows)
	return c
}

// Clear removes every pair, keeping the carrier.
func (r *Rel) Clear() {
	for i := range r.rows {
		r.rows[i] = 0
	}
}

// CopyFrom overwrites r with the pairs of s (same carrier) and returns
// r. Together with ComposeOf and the *InPlace variants it lets hot
// paths reuse scratch relations instead of allocating per candidate.
func (r *Rel) CopyFrom(s *Rel) *Rel {
	r.sameCarrier(s)
	copy(r.rows, s.rows)
	return r
}

// sameCarrier panics unless r and s range over the same carrier.
func (r *Rel) sameCarrier(s *Rel) {
	if r.n != s.n {
		panic(fmt.Sprintf("relation: carrier mismatch %d vs %d", r.n, s.n))
	}
}

// Union returns r ∪ s.
func (r *Rel) Union(s *Rel) *Rel {
	r.sameCarrier(s)
	out := r.Clone()
	for i := range out.rows {
		out.rows[i] |= s.rows[i]
	}
	return out
}

// UnionInPlace adds every pair of s into r and returns r.
func (r *Rel) UnionInPlace(s *Rel) *Rel {
	r.sameCarrier(s)
	for i := range r.rows {
		r.rows[i] |= s.rows[i]
	}
	return r
}

// Intersect returns r ∩ s.
func (r *Rel) Intersect(s *Rel) *Rel {
	r.sameCarrier(s)
	out := r.Clone()
	for i := range out.rows {
		out.rows[i] &= s.rows[i]
	}
	return out
}

// Minus returns r \ s.
func (r *Rel) Minus(s *Rel) *Rel {
	r.sameCarrier(s)
	out := r.Clone()
	for i := range out.rows {
		out.rows[i] &^= s.rows[i]
	}
	return out
}

// Compose returns the sequential composition r ; s =
// {(a, c) | ∃b. (a, b) ∈ r ∧ (b, c) ∈ s}.
func (r *Rel) Compose(s *Rel) *Rel {
	r.sameCarrier(s)
	out := New(r.n)
	for a := 0; a < r.n; a++ {
		ra := r.row(a)
		oa := out.row(a)
		for w, word := range ra {
			for word != 0 {
				b := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				sb := s.row(b)
				for k := range oa {
					oa[k] |= sb[k]
				}
			}
		}
	}
	return out
}

// ComposeOf overwrites r with the sequential composition a ; b and
// returns r. r must not alias a or b.
func (r *Rel) ComposeOf(a, b *Rel) *Rel {
	r.sameCarrier(a)
	r.sameCarrier(b)
	if r == a || r == b {
		panic("relation: ComposeOf destination aliases an operand")
	}
	r.Clear()
	for i := 0; i < r.n; i++ {
		ai := a.row(i)
		oi := r.row(i)
		for w, word := range ai {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				bj := b.row(j)
				for k := range oi {
					oi[k] |= bj[k]
				}
			}
		}
	}
	return r
}

// Maybe returns R? = R ∪ Id, the reflexive closure.
func (r *Rel) Maybe() *Rel {
	out := r.Clone()
	for i := 0; i < out.n; i++ {
		out.row(i)[i/64] |= 1 << (uint(i) % 64)
	}
	return out
}

// MaybeInPlace adds the identity pairs to r and returns r.
func (r *Rel) MaybeInPlace() *Rel {
	for i := 0; i < r.n; i++ {
		r.row(i)[i/64] |= 1 << (uint(i) % 64)
	}
	return r
}

// Inverse returns R⁻¹ = {(b, a) | (a, b) ∈ R}.
func (r *Rel) Inverse() *Rel {
	out := New(r.n)
	for a := 0; a < r.n; a++ {
		ra := r.row(a)
		for w, word := range ra {
			for word != 0 {
				b := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				out.Add(b, a)
			}
		}
	}
	return out
}

// TransitiveClosure returns R⁺ using the bit-parallel Warshall
// algorithm: for every pivot k, each row that reaches k absorbs k's
// row. O(n²·⌈n/64⌉).
func (r *Rel) TransitiveClosure() *Rel {
	out := r.Clone()
	for k := 0; k < out.n; k++ {
		rk := out.row(k)
		kw, kb := k/64, uint64(1)<<(uint(k)%64)
		for i := 0; i < out.n; i++ {
			if i == k {
				continue
			}
			ri := out.row(i)
			if ri[kw]&kb != 0 {
				for w := range ri {
					ri[w] |= rk[w]
				}
			}
		}
		// Row k may reach itself through a cycle; if so it absorbs
		// nothing new from itself, so no self-step is needed.
	}
	return out
}

// ReflexiveTransitiveClosure returns R*.
func (r *Rel) ReflexiveTransitiveClosure() *Rel {
	return r.TransitiveClosure().Maybe()
}

// IsEmpty reports whether the relation has no pairs.
func (r *Rel) IsEmpty() bool {
	for _, w := range r.rows {
		if w != 0 {
			return false
		}
	}
	return true
}

// Size returns the number of pairs in the relation.
func (r *Rel) Size() int {
	total := 0
	for _, w := range r.rows {
		total += bits.OnesCount64(w)
	}
	return total
}

// Equal reports whether r and s contain exactly the same pairs over
// the same carrier.
func (r *Rel) Equal(s *Rel) bool {
	if r.n != s.n {
		return false
	}
	for i := range r.rows {
		if r.rows[i] != s.rows[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every pair of r is in s.
func (r *Rel) SubsetOf(s *Rel) bool {
	r.sameCarrier(s)
	for i := range r.rows {
		if r.rows[i]&^s.rows[i] != 0 {
			return false
		}
	}
	return true
}

// IsIrreflexive reports whether no element is related to itself.
func (r *Rel) IsIrreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.row(i)[i/64]&(1<<(uint(i)%64)) != 0 {
			return false
		}
	}
	return true
}

// IsTransitive reports whether (R ; R) ⊆ R.
func (r *Rel) IsTransitive() bool {
	return r.Compose(r).SubsetOf(r)
}

// IsAcyclic reports whether the relation, viewed as a directed graph,
// has no cycles (equivalently, R⁺ is irreflexive). It runs an
// iterative three-colour DFS rather than computing the closure.
func (r *Rel) IsAcyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, r.n)
	// Iterative DFS with an explicit stack of (node, word index,
	// remaining word bits) frames to avoid recursion on deep graphs.
	type frame struct {
		node int
		w    int
		bits uint64
	}
	var stack []frame
	push := func(v int) {
		colour[v] = grey
		var first uint64
		if r.words > 0 {
			first = r.row(v)[0]
		}
		stack = append(stack, frame{node: v, w: 0, bits: first})
	}
	for start := 0; start < r.n; start++ {
		if colour[start] != white {
			continue
		}
		push(start)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.w < r.words {
				if f.bits == 0 {
					f.w++
					if f.w < r.words {
						f.bits = r.row(f.node)[f.w]
					}
					continue
				}
				b := f.w*64 + bits.TrailingZeros64(f.bits)
				f.bits &= f.bits - 1
				switch colour[b] {
				case grey:
					return false
				case white:
					push(b)
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced && f.w >= r.words {
				colour[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// IsStrictPartialOrder reports whether the relation is transitive and
// irreflexive (Definition 1 of the paper).
func (r *Rel) IsStrictPartialOrder() bool {
	return r.IsIrreflexive() && r.IsTransitive()
}

// IsTotalOn reports whether the relation relates every two distinct
// elements of the given subset one way or the other.
func (r *Rel) IsTotalOn(set []int) bool {
	for i, a := range set {
		for _, b := range set[i+1:] {
			if a != b && !r.Has(a, b) && !r.Has(b, a) {
				return false
			}
		}
	}
	return true
}

// IsTotalOrderOn reports whether the relation restricted to the subset
// is a strict total order: irreflexive, transitive over the subset,
// and total.
func (r *Rel) IsTotalOrderOn(set []int) bool {
	for _, a := range set {
		if a < 0 || a >= r.n || r.Has(a, a) {
			return false
		}
	}
	for _, a := range set {
		for _, b := range set {
			if !r.Has(a, b) {
				continue
			}
			if r.Has(b, a) {
				return false // antisymmetry violated
			}
			for _, c := range set {
				if r.Has(b, c) && !r.Has(a, c) {
					return false
				}
			}
		}
	}
	return r.IsTotalOn(set)
}

// IsTotal reports whether every two distinct elements of the whole
// carrier are related one way or the other.
func (r *Rel) IsTotal() bool {
	for a := 0; a < r.n; a++ {
		for b := a + 1; b < r.n; b++ {
			if !r.Has(a, b) && !r.Has(b, a) {
				return false
			}
		}
	}
	return true
}

// Successors returns the sorted list of elements b with (a, b) ∈ R.
func (r *Rel) Successors(a int) []int {
	if a < 0 || a >= r.n {
		panic(fmt.Sprintf("relation: element %d out of range [0,%d)", a, r.n))
	}
	var out []int
	ra := r.row(a)
	for w, word := range ra {
		for word != 0 {
			b := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, b)
		}
	}
	return out
}

// EachSuccessor calls fn for every b with (a, b) ∈ R, in increasing
// order, without allocating.
func (r *Rel) EachSuccessor(a int, fn func(b int)) {
	if a < 0 || a >= r.n {
		panic(fmt.Sprintf("relation: element %d out of range [0,%d)", a, r.n))
	}
	ra := r.row(a)
	for w, word := range ra {
		for word != 0 {
			b := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			fn(b)
		}
	}
}

// Predecessors returns the sorted list of elements b with (b, a) ∈ R.
// This is R⁻¹(a) in the paper's notation.
func (r *Rel) Predecessors(a int) []int {
	if a < 0 || a >= r.n {
		panic(fmt.Sprintf("relation: element %d out of range [0,%d)", a, r.n))
	}
	var out []int
	w, b := a/64, uint64(1)<<(uint(a)%64)
	for p := 0; p < r.n; p++ {
		if r.row(p)[w]&b != 0 {
			out = append(out, p)
		}
	}
	return out
}

// Pairs returns every pair of the relation in row-major order.
func (r *Rel) Pairs() [][2]int {
	var out [][2]int
	for a := 0; a < r.n; a++ {
		for _, b := range r.Successors(a) {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// TopoSort returns a topological order of the carrier consistent with
// the relation, or an error if the relation is cyclic. Ties are broken
// by preferring lower-numbered elements first, making the output
// deterministic.
func (r *Rel) TopoSort() ([]int, error) {
	indeg := make([]int, r.n)
	for a := 0; a < r.n; a++ {
		ra := r.row(a)
		for w, word := range ra {
			for word != 0 {
				b := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if b != a {
					indeg[b]++
				} else {
					return nil, fmt.Errorf("relation: self-loop at %d", a)
				}
			}
		}
	}
	// Min-heap-free deterministic Kahn: scan for the smallest ready
	// node. O(n²) but n is small and determinism matters for tests.
	order := make([]int, 0, r.n)
	done := make([]bool, r.n)
	for len(order) < r.n {
		next := -1
		for v := 0; v < r.n; v++ {
			if !done[v] && indeg[v] == 0 {
				next = v
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("relation: cycle detected after %d of %d nodes", len(order), r.n)
		}
		done[next] = true
		order = append(order, next)
		for _, b := range r.Successors(next) {
			indeg[b]--
		}
	}
	return order, nil
}

// FindCycle returns one cycle of the relation as a node sequence
// v₀ → v₁ → … → v₀ (first element repeated at the end), or nil if the
// relation is acyclic. Intended for diagnostics.
func (r *Rel) FindCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]byte, r.n)
	parent := make([]int, r.n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		colour[v] = grey
		for _, b := range r.Successors(v) {
			switch colour[b] {
			case grey:
				// Unwind the parent chain v → … → b, then emit the
				// cycle in forward edge order b → … → v → b.
				var rev []int
				for u := v; u != b; u = parent[u] {
					rev = append(rev, u)
				}
				cycle = append(cycle, b)
				for i := len(rev) - 1; i >= 0; i-- {
					cycle = append(cycle, rev[i])
				}
				cycle = append(cycle, b)
				return true
			case white:
				parent[b] = v
				if dfs(b) {
					return true
				}
			}
		}
		colour[v] = black
		return false
	}
	for v := 0; v < r.n; v++ {
		if colour[v] == white && dfs(v) {
			return cycle
		}
	}
	return nil
}

// String renders the relation as a sorted pair list, e.g.
// "{(0,1), (2,0)}". Intended for tests and diagnostics.
func (r *Rel) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, p := range r.Pairs() {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "(%d,%d)", p[0], p[1])
	}
	sb.WriteByte('}')
	return sb.String()
}
