package relation

import (
	"fmt"
	"math/bits"
)

// Mark is a checkpoint into a Closure's undo journal; pass it back to
// Rollback to restore the closure to the state at Checkpoint time.
type Mark int

// Closure maintains the transitive closure of a growing relation
// incrementally. Where TransitiveClosure recomputes R⁺ from scratch in
// O(n²·⌈n/64⌉), AddEdge propagates only the delta of one new edge —
// the rows that reach its source absorb the row of its target,
// word-parallel — and records every changed word in an undo journal so
// that Checkpoint/Rollback give the exact closure of any prefix of the
// edge sequence. This is the reachability substrate of the
// certification search: the searcher pushes WR/WW edges while
// descending and pops them on backtrack, so reachability (and hence
// cycle detection and the forced-precedence masks of the write-order
// enumeration) is maintained instead of recomputed at every node.
type Closure struct {
	n, words int
	rows     []uint64 // closure bits, row-major: rows[i*words+j/64]
	journal  []closureEntry
	// selfReach counts elements i with (i, i) in the closure: non-zero
	// exactly when the underlying edge set is cyclic.
	selfReach int
	scratch   []uint64

	// Observability totals (monotonic; rollbacks do not subtract).
	deltaEdges int64 // closure pairs materialised by delta propagation
	undoWords  int64 // journal words restored by Rollback
}

// closureEntry is one journaled word overwrite: rows[idx] held old.
type closureEntry struct {
	idx int
	old uint64
}

// NewClosure returns the closure of the empty relation over
// {0, …, n-1}.
func NewClosure(n int) *Closure {
	if n < 0 {
		panic(fmt.Sprintf("relation: negative carrier size %d", n))
	}
	w := (n + 63) / 64
	return &Closure{n: n, words: w, rows: make([]uint64, n*w), scratch: make([]uint64, w)}
}

// ClosureOf returns the closure seeded with R⁺ of the given relation.
// Edges added later propagate incrementally; the seed itself is below
// every checkpoint and is never rolled back.
func ClosureOf(r *Rel) *Closure {
	c := NewClosure(r.n)
	tc := r.TransitiveClosure()
	copy(c.rows, tc.rows)
	for i := 0; i < c.n; i++ {
		if c.has(i, i) {
			c.selfReach++
		}
	}
	return c
}

// N returns the size of the carrier set.
func (c *Closure) N() int { return c.n }

func (c *Closure) row(i int) []uint64 {
	return c.rows[i*c.words : (i+1)*c.words]
}

func (c *Closure) has(a, b int) bool {
	return c.row(a)[b/64]&(1<<(uint(b)%64)) != 0
}

func (c *Closure) checkPair(a, b int) {
	if a < 0 || a >= c.n || b < 0 || b >= c.n {
		panic(fmt.Sprintf("relation: pair (%d,%d) out of range [0,%d)", a, b, c.n))
	}
}

// Reaches reports whether b is reachable from a through the edges
// added so far (one or more steps).
func (c *Closure) Reaches(a, b int) bool {
	c.checkPair(a, b)
	return c.has(a, b)
}

// HasCycle reports whether the underlying edge set is cyclic
// (equivalently, the closure is not irreflexive).
func (c *Closure) HasCycle() bool { return c.selfReach > 0 }

// AddEdge inserts the edge (a, b) and propagates the reachability
// delta: every element that reaches a (and a itself) absorbs
// {b} ∪ reach(b), word-parallel. Redundant edges (b already reachable
// from a) are free. Changed words are journaled for Rollback.
func (c *Closure) AddEdge(a, b int) {
	c.checkPair(a, b)
	if c.has(a, b) {
		return
	}
	// Snapshot {b} ∪ reach(b) before any row changes: when the new edge
	// closes a cycle, row(b) is itself among the rows being updated.
	copy(c.scratch, c.row(b))
	c.scratch[b/64] |= 1 << (uint(b) % 64)
	aw, abit := a/64, uint64(1)<<(uint(a)%64)
	for i := 0; i < c.n; i++ {
		ri := c.row(i)
		if i != a && ri[aw]&abit == 0 {
			continue // i does not reach a
		}
		base := i * c.words
		dw, dbit := i/64, uint64(1)<<(uint(i)%64)
		for w := 0; w < c.words; w++ {
			merged := ri[w] | c.scratch[w]
			if merged == ri[w] {
				continue
			}
			c.journal = append(c.journal, closureEntry{idx: base + w, old: ri[w]})
			c.deltaEdges += int64(bits.OnesCount64(merged &^ ri[w]))
			if w == dw && ri[w]&dbit == 0 && merged&dbit != 0 {
				c.selfReach++
			}
			ri[w] = merged
		}
	}
}

// Checkpoint returns a mark capturing the current closure state.
func (c *Closure) Checkpoint() Mark { return Mark(len(c.journal)) }

// Rollback restores the closure to the state at the given checkpoint,
// undoing every AddEdge since. Rolling back to a mark older than a
// previous rollback target is a no-op for the already-undone part.
func (c *Closure) Rollback(m Mark) {
	if int(m) > len(c.journal) {
		panic(fmt.Sprintf("relation: rollback mark %d beyond journal length %d", m, len(c.journal)))
	}
	for i := len(c.journal) - 1; i >= int(m); i-- {
		e := c.journal[i]
		row := e.idx / c.words
		w := e.idx % c.words
		if w == row/64 {
			dbit := uint64(1) << (uint(row) % 64)
			if c.rows[e.idx]&dbit != 0 && e.old&dbit == 0 {
				c.selfReach--
			}
		}
		c.rows[e.idx] = e.old
	}
	c.undoWords += int64(len(c.journal) - int(m))
	c.journal = c.journal[:m]
}

// ComposeInto sets dst = left ; C (or left ; C? when reflexive is
// true), where C is the maintained closure. The cost is proportional
// to the number of pairs in left times the row width, so a sparse left
// operand composes cheaply even when the closure is dense — the trick
// the certification search uses to test candidate graphs with a sparse
// anti-dependency relation on the left instead of a dense composite on
// the right.
func (c *Closure) ComposeInto(dst, left *Rel) {
	if dst.n != c.n || left.n != c.n {
		panic(fmt.Sprintf("relation: carrier mismatch (closure %d, dst %d, left %d)", c.n, dst.n, left.n))
	}
	dst.Clear()
	for i := 0; i < c.n; i++ {
		li := left.row(i)
		di := dst.row(i)
		for w, word := range li {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				cj := c.row(j)
				for k := range di {
					di[k] |= cj[k]
				}
			}
		}
	}
}

// ComposeMaybeInto sets dst = left ; C? = left ∪ (left ; C): like
// ComposeInto but with the reflexive closure on the right.
func (c *Closure) ComposeMaybeInto(dst, left *Rel) {
	c.ComposeInto(dst, left)
	dst.UnionInPlace(left)
}

// Rel returns the closure as a standalone relation (a copy).
func (c *Closure) Rel() *Rel {
	r := New(c.n)
	copy(r.rows, c.rows)
	return r
}

// Stats returns the observability totals: closure pairs materialised
// by delta propagation and journal words restored by rollbacks. Both
// are monotonic over the Closure's lifetime.
func (c *Closure) Stats() (deltaEdges, undoWords int64) {
	return c.deltaEdges, c.undoWords
}
