package relation

import (
	"math/rand"
	"testing"
)

func TestClosureBasics(t *testing.T) {
	t.Parallel()
	c := NewClosure(4)
	if c.HasCycle() {
		t.Fatal("empty closure cyclic")
	}
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	if !c.Reaches(0, 2) || !c.Reaches(0, 1) || !c.Reaches(1, 2) {
		t.Fatal("transitive reach missing")
	}
	if c.Reaches(2, 0) || c.HasCycle() {
		t.Fatal("spurious reach or cycle")
	}
	c.AddEdge(2, 0)
	if !c.HasCycle() {
		t.Fatal("3-cycle not detected")
	}
	if !c.Reaches(0, 0) || !c.Reaches(2, 1) {
		t.Fatal("cycle members must reach everything on the cycle")
	}
}

func TestClosureRollback(t *testing.T) {
	t.Parallel()
	c := NewClosure(5)
	c.AddEdge(0, 1)
	m1 := c.Checkpoint()
	c.AddEdge(1, 2)
	m2 := c.Checkpoint()
	c.AddEdge(2, 0) // cycle
	if !c.HasCycle() {
		t.Fatal("cycle missing")
	}
	c.Rollback(m2)
	if c.HasCycle() || !c.Reaches(0, 2) {
		t.Fatal("rollback to m2 wrong")
	}
	c.Rollback(m1)
	if c.Reaches(0, 2) || c.Reaches(1, 2) || !c.Reaches(0, 1) {
		t.Fatal("rollback to m1 wrong")
	}
	// Redundant edges journal nothing and rollback cleanly.
	m3 := c.Checkpoint()
	c.AddEdge(0, 1)
	c.Rollback(m3)
	if !c.Reaches(0, 1) {
		t.Fatal("redundant edge rollback removed the original")
	}
}

func TestClosureOfSeed(t *testing.T) {
	t.Parallel()
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	c := ClosureOf(r)
	if !c.Reaches(0, 2) {
		t.Fatal("seed closure incomplete")
	}
	mark := c.Checkpoint()
	c.AddEdge(2, 3)
	if !c.Reaches(0, 3) {
		t.Fatal("delta after seed missing")
	}
	c.Rollback(mark)
	if c.Reaches(0, 3) || !c.Reaches(0, 2) {
		t.Fatal("rollback disturbed the seed")
	}
	// A cyclic seed reports the cycle immediately.
	r2 := New(3)
	r2.Add(0, 1)
	r2.Add(1, 0)
	if !ClosureOf(r2).HasCycle() {
		t.Fatal("cyclic seed not detected")
	}
}

// TestClosureMatchesBatch cross-checks incremental maintenance against
// the batch Warshall closure on random edge sequences with random
// nested rollbacks.
func TestClosureMatchesBatch(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		c := NewClosure(n)
		base := New(n)
		type frame struct {
			mark Mark
			rel  *Rel
		}
		var stack []frame
		for step := 0; step < 40; step++ {
			switch {
			case len(stack) > 0 && rng.Intn(4) == 0:
				// Pop: roll back to the frame's state.
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				c.Rollback(f.mark)
				base = f.rel
			case rng.Intn(3) == 0:
				stack = append(stack, frame{mark: c.Checkpoint(), rel: base.Clone()})
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				c.AddEdge(a, b)
				base.Add(a, b)
			}
			want := base.TransitiveClosure()
			if !c.Rel().Equal(want) {
				t.Fatalf("trial %d step %d: closure diverged\nbase %v\ninc  %v\nwant %v",
					trial, step, base, c.Rel(), want)
			}
			if c.HasCycle() != !want.IsIrreflexive() {
				t.Fatalf("trial %d step %d: HasCycle = %v, batch irreflexive = %v",
					trial, step, c.HasCycle(), want.IsIrreflexive())
			}
		}
	}
}

func TestClosureStats(t *testing.T) {
	t.Parallel()
	c := NewClosure(4)
	c.AddEdge(0, 1)
	m := c.Checkpoint()
	c.AddEdge(1, 2)
	c.Rollback(m)
	delta, undo := c.Stats()
	if delta == 0 || undo == 0 {
		t.Errorf("stats not recorded: delta=%d undo=%d", delta, undo)
	}
}

func TestRelInPlaceHelpers(t *testing.T) {
	t.Parallel()
	a := New(3)
	a.Add(0, 1)
	b := New(3)
	b.Add(1, 2)
	dst := New(3)
	if !dst.ComposeOf(a, b).Equal(a.Compose(b)) {
		t.Error("ComposeOf differs from Compose")
	}
	// Reuse overwrites previous content.
	if !dst.ComposeOf(b, a).Equal(b.Compose(a)) {
		t.Error("ComposeOf reuse differs")
	}
	m := a.Clone()
	if !m.MaybeInPlace().Equal(a.Maybe()) {
		t.Error("MaybeInPlace differs from Maybe")
	}
	cp := New(3)
	cp.Add(2, 0)
	cp.CopyFrom(a)
	if !cp.Equal(a) {
		t.Error("CopyFrom incomplete")
	}
	cp.Clear()
	if !cp.IsEmpty() {
		t.Error("Clear left pairs")
	}
	var got []int
	a.Add(0, 2)
	a.EachSuccessor(0, func(x int) { got = append(got, x) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("EachSuccessor = %v", got)
	}
}
