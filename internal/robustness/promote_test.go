package robustness_test

import (
	"strings"
	"testing"

	"sian/internal/model"
	. "sian/internal/robustness"
	"sian/internal/workload"
)

// TestRepairWriteSkew: the Figure 2(d) write skew is repaired by a
// single promotion — promoting either withdrawal's read of the other
// account materialises the conflict on that account and defuses both
// anti-dependencies of the cycle.
func TestRepairWriteSkew(t *testing.T) {
	t.Parallel()
	app := workload.WriteSkewApp()
	repairs := RepairAgainstSI(app, RepairOptions{})
	if len(repairs) == 0 {
		t.Fatal("no repair found for the write-skew app")
	}
	for _, r := range repairs {
		if len(r.Promotions) != 1 {
			t.Errorf("repair %s: %d promotions, want 1 (minimal)", r, len(r.Promotions))
		}
	}
	// Re-verify the top suggestion from scratch: apply it manually and
	// re-run the check.
	top := repairs[0].Promotions[0]
	fixed := App{}
	for _, s := range app.Sessions {
		cp := SessionSpec{Name: s.Name}
		for _, tx := range s.Txs {
			if tx.Name == top.Txs[0] {
				tx = NewTxSpec(tx.Name,
					append(append([]model.Obj(nil), tx.Reads...), top.Obj),
					append(append([]model.Obj(nil), tx.Writes...), top.Obj))
			}
			cp.Txs = append(cp.Txs, tx)
		}
		fixed.Sessions = append(fixed.Sessions, cp)
	}
	if w, ok := CheckSIRobust(fixed); !ok {
		t.Errorf("suggested repair %s does not pass Theorem 19: %s", repairs[0], w)
	}
}

// TestRepairRobustAppIsNil: a robust application needs no repair.
func TestRepairRobustAppIsNil(t *testing.T) {
	t.Parallel()
	if r := RepairAgainstSI(workload.WriteSkewAppFixed(), RepairOptions{}); r != nil {
		t.Errorf("repair on robust app = %v, want nil", r)
	}
	if r := RepairAgainstSI(workload.TransferApp(), RepairOptions{}); r != nil {
		t.Errorf("repair on transfer app = %v, want nil", r)
	}
}

// TestRepairSmallBank: the classical SmallBank fix is found
// automatically. The advisor's promotions, applied, must pass Theorem
// 19 — the search re-verifies internally, so finding any repair is the
// assertion; the test additionally pins that the racing WriteCheck /
// TransactSavings pair is what gets promoted.
func TestRepairSmallBank(t *testing.T) {
	t.Parallel()
	repairs := RepairAgainstSI(workload.SmallBankApp(1, false), RepairOptions{})
	if len(repairs) == 0 {
		t.Fatal("no repair found for SmallBank")
	}
	s := repairs[0].String()
	if !strings.Contains(s, "WriteCheck") && !strings.Contains(s, "TransactSavings") &&
		!strings.Contains(s, "Balance") {
		t.Errorf("repair %q does not touch the racing programs", s)
	}
}

// TestRepairLongForkPSI: the §6.2 long fork is repaired for the PSI
// criterion by promoting reads so the forked writers conflict.
func TestRepairLongForkPSI(t *testing.T) {
	t.Parallel()
	repairs := RepairAgainstPSI(workload.LongForkApp(), RepairOptions{})
	if len(repairs) == 0 {
		t.Fatal("no repair found for the long-fork app")
	}
}

// TestRepairGrouped: promotion groups tie instances together — with
// both copies of a looped transaction in one group, a repair promotes
// them jointly and reports both labels.
func TestRepairGrouped(t *testing.T) {
	t.Parallel()
	mk := func(name, group string, reads, writes []model.Obj) TxSpec {
		ts := NewTxSpec(name, reads, writes)
		ts.PromoteGroup = group
		return ts
	}
	app := NewApp(
		SessionSpec{Name: "s1", Txs: []TxSpec{
			mk("w1", "g1", []model.Obj{"a", "b"}, []model.Obj{"a"}),
			mk("w1@it2", "g1", []model.Obj{"a", "b"}, []model.Obj{"a"}),
		}},
		SessionSpec{Name: "s2", Txs: []TxSpec{
			mk("w2", "g2", []model.Obj{"a", "b"}, []model.Obj{"b"}),
		}},
	)
	repairs := RepairAgainstSI(app, RepairOptions{})
	if len(repairs) == 0 {
		t.Fatal("no repair found")
	}
	for _, r := range repairs {
		for _, p := range r.Promotions {
			if p.Group == "g1" && len(p.Txs) != 2 {
				t.Errorf("group g1 promotion lists %v, want both instances", p.Txs)
			}
		}
	}
}

// TestRepairWidenedWriterUnfixable: an anti-dependency into a widened
// writer can never be defused by promotion, so no repair exists.
func TestRepairWidenedWriterUnfixable(t *testing.T) {
	t.Parallel()
	sweep := NewTxSpec("sweep", []model.Obj{"x", "y"}, []model.Obj{"x", "y"})
	sweep.WritesWidened = true
	put := NewTxSpec("put", []model.Obj{"x", "y"}, []model.Obj{"y"})
	app := SingleTxApp(sweep, put)
	if w, ok := CheckSIRobust(app); ok {
		t.Fatalf("widened app unexpectedly robust (witness %v)", w)
	}
	if r := RepairAgainstSI(app, RepairOptions{}); r != nil {
		t.Errorf("repair against a widened writer = %v, want nil", r)
	}
}
