// Package robustness implements the robustness analyses of §6 of the
// paper.
//
// Dynamic side: classify a concrete dependency graph against the three
// model characterisations — Theorem 19 decides membership in
// GraphSI \ GraphSER (executions SI admits but serializability does
// not) and Theorem 22 membership in GraphPSI \ GraphSI.
//
// Static side: build a static dependency graph over transaction
// specifications (read/write sets) that over-approximates the
// dependencies of any execution, then check the absence of the
// dangerous cycle shapes:
//
//   - robustness against SI (towards serializability, §6.1): no cycle
//     with two adjacent anti-dependency edges;
//   - robustness against parallel SI (towards SI, §6.2): no cycle with
//     at least two anti-dependency edges none of which are adjacent.
//
// Two standard refinements sharpen the naive statement of §6 without
// losing soundness:
//
//  1. Only *vulnerable* anti-dependencies matter: an RW edge between
//     transactions with intersecting write sets always carries a
//     parallel WW edge in any concrete graph (in GraphSI/GraphPSI the
//     WW must agree with the RW direction, else WW ; RW is a forbidden
//     composite self-loop), so such an RW edge can be rewritten to the
//     WW edge in any dangerous cycle; a dangerous cycle in a concrete
//     graph therefore always yields one whose anti-dependencies are
//     all between write-disjoint pairs. This is the classical
//     vulnerability condition of Fekete et al. [18], and it is what
//     makes the materialised-conflict fix for write skew pass the
//     analysis.
//  2. Only *simple* cycles matter: distinct transactions of a concrete
//     execution map to distinct programs (§5's one-to-one session
//     correspondence), so a simple dangerous cycle in a concrete graph
//     lifts to a simple cycle in the static graph.
package robustness

import (
	"fmt"
	"sort"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/relation"
)

// TxSpec is the static specification of one transaction: the sets of
// objects it may read and write.
type TxSpec struct {
	Name   string
	Reads  []model.Obj
	Writes []model.Obj
	// WritesWidened marks the write set as a strict may-write
	// over-approximation (e.g. silint's ⊤-widening of a non-constant
	// key): the transaction is not guaranteed to write any particular
	// listed object at run time, so an intersection with another write
	// set does not imply a concrete write-write conflict. The
	// vulnerability refinement (see the package comment) requires that
	// implication, so anti-dependencies incident to a widened
	// transaction are always treated as vulnerable.
	WritesWidened bool
	// PromoteGroup keys read→write promotion (see promote.go): a
	// suggested promotion applies to every transaction specification
	// sharing the same non-empty group. silint uses this to tie the
	// loop- and instance-expanded copies of one source transaction
	// together, so a suggested source edit is modelled on all of them.
	// Empty means the specification promotes alone.
	PromoteGroup string
}

// NewTxSpec builds a specification; both sets are copied, deduplicated
// and canonically sorted so that map-ordered inputs yield deterministic
// graphs and witnesses.
func NewTxSpec(name string, reads, writes []model.Obj) TxSpec {
	return TxSpec{Name: name, Reads: model.NormalizeObjs(reads), Writes: model.NormalizeObjs(writes)}
}

// SessionSpec is an ordered list of transaction specifications issued
// by one client session.
type SessionSpec struct {
	Name string
	Txs  []TxSpec
}

// App is the static description of an application: the sessions it may
// run concurrently. To model a transaction that may run concurrently
// with itself, list it in two sessions.
type App struct {
	Sessions []SessionSpec
}

// NewApp builds an application from session specifications.
func NewApp(sessions ...SessionSpec) App {
	cp := make([]SessionSpec, len(sessions))
	copy(cp, sessions)
	return App{Sessions: cp}
}

// SingleTxApp is a convenience constructor for the common case of the
// paper's §6 examples: every transaction in its own session.
func SingleTxApp(txs ...TxSpec) App {
	sessions := make([]SessionSpec, 0, len(txs))
	for _, t := range txs {
		sessions = append(sessions, SessionSpec{Name: t.Name, Txs: []TxSpec{t}})
	}
	return App{Sessions: sessions}
}

// StaticGraph is a static dependency graph: vertices are the
// application's transactions (session-major order) and the relations
// over-approximate the session order and dependencies of any
// execution.
type StaticGraph struct {
	Labels []string
	SO     *relation.Rel
	WR     *relation.Rel
	WW     *relation.Rel
	RW     *relation.Rel
}

// BuildStatic constructs the static dependency graph of an
// application: for transactions of different sessions,
// W₁ ∩ R₂ ≠ ∅ yields a WR edge, W₁ ∩ W₂ ≠ ∅ a WW edge (both
// directions arise symmetrically from the two ordered pairs) and
// R₁ ∩ W₂ ≠ ∅ an RW edge; transactions of the same session are
// ordered by SO.
func BuildStatic(app App) *StaticGraph {
	var specs []TxSpec
	var session []int
	for si, s := range app.Sessions {
		for _, t := range s.Txs {
			specs = append(specs, t)
			session = append(session, si)
		}
	}
	n := len(specs)
	g := &StaticGraph{
		Labels: make([]string, n),
		SO:     relation.New(n),
		WR:     relation.New(n),
		WW:     relation.New(n),
		RW:     relation.New(n),
	}
	for i, t := range specs {
		if t.Name != "" {
			g.Labels[i] = t.Name
		} else {
			g.Labels[i] = fmt.Sprintf("tx%d", i)
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if session[a] == session[b] {
				if a < b {
					g.SO.Add(a, b)
				}
				continue
			}
			if model.ObjsIntersect(specs[a].Writes, specs[b].Reads) {
				g.WR.Add(a, b)
			}
			if model.ObjsIntersect(specs[a].Writes, specs[b].Writes) {
				g.WW.Add(a, b)
			}
			if model.ObjsIntersect(specs[a].Reads, specs[b].Writes) {
				g.RW.Add(a, b)
			}
		}
	}
	return g
}

// EdgeKind labels an edge of a static dependency graph for witness
// reporting.
type EdgeKind int

// Static dependency edge kinds. VulnerableRW marks anti-dependencies
// between transactions with disjoint write sets — the only ones that
// can participate in dangerous structures (see the package comment).
const (
	EdgeInvalid EdgeKind = iota
	EdgeSO
	EdgeWR
	EdgeWW
	EdgeVulnerableRW
)

// String returns "SO", "WR", "WW" or "RW*".
func (k EdgeKind) String() string {
	switch k {
	case EdgeSO:
		return "SO"
	case EdgeWR:
		return "WR"
	case EdgeWW:
		return "WW"
	case EdgeVulnerableRW:
		return "RW*"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// WitnessStep is one edge of a dangerous cycle.
type WitnessStep struct {
	From, To int
	Kind     EdgeKind
}

// Witness is a dangerous simple cycle in a static dependency graph,
// with vertex labels for display.
type Witness struct {
	Steps  []WitnessStep
	Labels []string
}

// String renders the witness cycle, e.g.
// "withdraw1 -RW*-> withdraw2 -RW*-> withdraw1".
func (w *Witness) String() string {
	if w == nil || len(w.Steps) == 0 {
		return "<none>"
	}
	out := w.Labels[w.Steps[0].From]
	for _, s := range w.Steps {
		out += fmt.Sprintf(" -%s-> %s", s.Kind, w.Labels[s.To])
	}
	return out
}

// vulnerableRW returns the anti-dependency edges between transactions
// whose write sets are disjoint (so the pair can be concurrent and
// escape write-conflict detection). A widened write set (TxSpec.
// WritesWidened) never certifies a concrete write-write conflict, so
// edges incident to widened transactions stay vulnerable even when the
// declared sets intersect.
func (g *StaticGraph) vulnerableRW(app App) *relation.Rel {
	var specs []TxSpec
	for _, s := range app.Sessions {
		specs = append(specs, s.Txs...)
	}
	out := relation.New(g.RW.N())
	for _, p := range g.RW.Pairs() {
		a, b := specs[p[0]], specs[p[1]]
		if a.WritesWidened || b.WritesWidened || !model.ObjsIntersect(a.Writes, b.Writes) {
			out.Add(p[0], p[1])
		}
	}
	return out
}

// edgeKindsAt returns the kinds present on (u, v), with anti-
// dependencies restricted to the vulnerable ones.
func staticEdges(g *StaticGraph, vuln *relation.Rel, u, v int) []EdgeKind {
	var out []EdgeKind
	if g.SO.Has(u, v) {
		out = append(out, EdgeSO)
	}
	if g.WR.Has(u, v) {
		out = append(out, EdgeWR)
	}
	if g.WW.Has(u, v) {
		out = append(out, EdgeWW)
	}
	if vuln.Has(u, v) {
		out = append(out, EdgeVulnerableRW)
	}
	return out
}

// findDangerous enumerates vertex-simple cycles over the dependency
// and vulnerable-anti-dependency edges, returning the first whose kind
// sequence satisfies pred. Canonical form (smallest vertex first)
// avoids duplicate rotations.
func findDangerous(g *StaticGraph, vuln *relation.Rel, pred func([]EdgeKind) bool) *Witness {
	n := g.RW.N()
	onStack := make([]bool, n)
	var steps []WitnessStep
	var kindsBuf []EdgeKind
	var dfs func(start, v int) *Witness
	dfs = func(start, v int) *Witness {
		for next := 0; next < n; next++ {
			kinds := staticEdges(g, vuln, v, next)
			if len(kinds) == 0 {
				continue
			}
			switch {
			case next == start && len(steps) >= 1:
				for _, k := range kinds {
					kindsBuf = kindsBuf[:0]
					for _, s := range steps {
						kindsBuf = append(kindsBuf, s.Kind)
					}
					kindsBuf = append(kindsBuf, k)
					if pred(kindsBuf) {
						full := append(append([]WitnessStep{}, steps...), WitnessStep{From: v, To: next, Kind: k})
						return &Witness{Steps: full, Labels: g.Labels}
					}
				}
			case next > start && !onStack[next]:
				for _, k := range kinds {
					onStack[next] = true
					steps = append(steps, WitnessStep{From: v, To: next, Kind: k})
					if w := dfs(start, next); w != nil {
						return w
					}
					steps = steps[:len(steps)-1]
					onStack[next] = false
				}
			}
		}
		return nil
	}
	for start := 0; start < n; start++ {
		onStack[start] = true
		if w := dfs(start, start); w != nil {
			return w
		}
		onStack[start] = false
	}
	return nil
}

// CheckSIRobust implements the static analysis of §6.1: the
// application is robust against SI (it produces no histories in
// HistSI \ HistSER; running it under SI gives only serializable
// behaviour) if the static dependency graph has no simple cycle with
// two adjacent vulnerable anti-dependency edges. It returns
// (nil, true) when robust and a witness cycle otherwise.
func CheckSIRobust(app App) (*Witness, bool) {
	g := BuildStatic(app)
	vuln := g.vulnerableRW(app)
	w := findDangerous(g, vuln, func(kinds []EdgeKind) bool {
		n := len(kinds)
		if n < 2 {
			return false
		}
		for i := 0; i < n; i++ {
			if kinds[i] == EdgeVulnerableRW && kinds[(i+1)%n] == EdgeVulnerableRW {
				return true
			}
		}
		return false
	})
	return w, w == nil
}

// CheckPSIRobust implements the static analysis of §6.2: the
// application is robust against parallel SI towards SI (it produces no
// histories in HistPSI \ HistSI) if the static dependency graph has no
// simple cycle with at least two vulnerable anti-dependency edges of
// which no two are adjacent.
func CheckPSIRobust(app App) (*Witness, bool) {
	g := BuildStatic(app)
	vuln := g.vulnerableRW(app)
	w := findDangerous(g, vuln, func(kinds []EdgeKind) bool {
		n := len(kinds)
		count := 0
		for _, k := range kinds {
			if k == EdgeVulnerableRW {
				count++
			}
		}
		if count < 2 {
			return false
		}
		for i := 0; i < n; i++ {
			if kinds[i] == EdgeVulnerableRW && kinds[(i+1)%n] == EdgeVulnerableRW {
				return false
			}
		}
		return true
	})
	return w, w == nil
}

// Classification places a concrete dependency graph in the model
// lattice HistSER ⊆ HistSI ⊆ HistPSI.
type Classification struct {
	SER bool
	SI  bool
	PSI bool
}

// String renders e.g. "SER+SI+PSI" or "PSI only" or "none".
func (c Classification) String() string {
	var parts []string
	if c.SER {
		parts = append(parts, "SER")
	}
	if c.SI {
		parts = append(parts, "SI")
	}
	if c.PSI {
		parts = append(parts, "PSI")
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	return fmt.Sprintf("%v", parts)
}

// Classify runs the three dependency-graph characterisations on a
// concrete graph. By Theorem 19, SI && !SER identifies executions
// witnessing non-robustness against SI; by Theorem 22, PSI && !SI
// identifies executions witnessing non-robustness against parallel SI
// towards SI.
func Classify(g *depgraph.Graph) Classification {
	return Classification{
		SER: g.InSER(),
		SI:  g.InSI(),
		PSI: g.InPSI(),
	}
}

// Theorem19 decides G ∈ GraphSI \ GraphSER for a concrete graph and
// returns a witness cycle of the SER composite when it holds.
func Theorem19(g *depgraph.Graph) (inDifference bool, witness []int) {
	c := Classify(g)
	if c.SI && !c.SER {
		return true, g.Witness(depgraph.SER)
	}
	return false, nil
}

// Theorem22 decides G ∈ GraphPSI \ GraphSI for a concrete graph and
// returns a witness cycle of the SI composite when it holds.
func Theorem22(g *depgraph.Graph) (inDifference bool, witness []int) {
	c := Classify(g)
	if c.PSI && !c.SI {
		return true, g.Witness(depgraph.SI)
	}
	return false, nil
}
