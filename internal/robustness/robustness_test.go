package robustness_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/model"
	. "sian/internal/robustness"
	"sian/internal/workload"
)

func TestBuildStatic(t *testing.T) {
	t.Parallel()
	app := NewApp(
		SessionSpec{Name: "s1", Txs: []TxSpec{
			NewTxSpec("t1", []model.Obj{"x"}, []model.Obj{"y"}),
			NewTxSpec("t2", []model.Obj{"y"}, nil),
		}},
		SessionSpec{Name: "s2", Txs: []TxSpec{
			NewTxSpec("t3", nil, []model.Obj{"x", "y"}),
		}},
	)
	g := BuildStatic(app)
	if len(g.Labels) != 3 || g.Labels[0] != "t1" || g.Labels[2] != "t3" {
		t.Fatalf("labels = %v", g.Labels)
	}
	if !g.SO.Has(0, 1) || g.SO.Has(1, 0) || g.SO.Has(0, 2) {
		t.Error("SO edges wrong")
	}
	// t3 writes y which t2 reads: WR t3→t2; t1 writes y too: WW both
	// directions between t1 and t3; t1 reads x which t3 writes: RW
	// t1→t3.
	if !g.WR.Has(2, 1) {
		t.Error("missing WR t3→t2")
	}
	if !g.WW.Has(0, 2) || !g.WW.Has(2, 0) {
		t.Error("missing symmetric WW t1↔t3")
	}
	if !g.RW.Has(0, 2) {
		t.Error("missing RW t1→t3")
	}
	// Same-session pairs never get conflict edges.
	if g.WR.Has(0, 1) || g.RW.Has(1, 0) {
		t.Error("same-session conflict edges present")
	}
	// t1 writes y which t2 reads — but same session, so only SO.
	if g.WR.Has(0, 1) {
		t.Error("same-session WR present")
	}
}

func TestWriteSkewAppNotRobust(t *testing.T) {
	t.Parallel()
	w, robust := CheckSIRobust(workload.WriteSkewApp())
	if robust {
		t.Fatal("write-skew app reported robust against SI")
	}
	if w == nil {
		t.Fatal("no witness")
	}
	s := w.String()
	if !strings.Contains(s, "RW") {
		t.Errorf("witness = %q", s)
	}
}

func TestWriteSkewAppFixedRobust(t *testing.T) {
	t.Parallel()
	if w, robust := CheckSIRobust(workload.WriteSkewAppFixed()); !robust {
		t.Fatalf("materialised-conflict fix not robust: %v", w)
	}
}

func TestTransferAppRobust(t *testing.T) {
	t.Parallel()
	if w, robust := CheckSIRobust(workload.TransferApp()); !robust {
		t.Fatalf("transfer app not robust against SI: %v", w)
	}
	if w, robust := CheckPSIRobust(workload.TransferApp()); !robust {
		t.Fatalf("transfer app not robust against PSI: %v", w)
	}
}

func TestLongForkAppPSIRobustness(t *testing.T) {
	t.Parallel()
	app := workload.LongForkApp()
	// Robust against SI (no adjacent anti-dependencies possible)…
	if w, robust := CheckSIRobust(app); !robust {
		t.Errorf("long-fork app not robust against SI: %v", w)
	}
	// …but not against parallel SI towards SI.
	w, robust := CheckPSIRobust(app)
	if robust {
		t.Fatal("long-fork app reported robust against PSI")
	}
	if w == nil || w.String() == "" {
		t.Error("missing witness")
	}
}

func TestClassifyFigures(t *testing.T) {
	t.Parallel()
	tests := []struct {
		ex   *workload.Example
		want Classification
	}{
		{workload.SessionGuarantees(), Classification{SER: true, SI: true, PSI: true}},
		{workload.LostUpdate(), Classification{}},
		{workload.WriteSkew(), Classification{SI: true, PSI: true}},
		{workload.LongFork(), Classification{PSI: true}},
	}
	for _, tc := range tests {
		t.Run(tc.ex.Name, func(t *testing.T) {
			if got := Classify(tc.ex.Graph); got != tc.want {
				t.Errorf("Classify = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestClassificationString(t *testing.T) {
	t.Parallel()
	if s := (Classification{}).String(); s != "none" {
		t.Errorf("empty classification = %q", s)
	}
	s := Classification{SER: true, SI: true, PSI: true}.String()
	for _, want := range []string{"SER", "SI", "PSI"} {
		if !strings.Contains(s, want) {
			t.Errorf("classification %q missing %q", s, want)
		}
	}
}

// TestTheorem19 identifies write skew as GraphSI \ GraphSER with a
// witness, and rejects lost update and serializable graphs.
func TestTheorem19(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	in, witness := Theorem19(ws.Graph)
	if !in {
		t.Fatal("write skew not in GraphSI \\ GraphSER")
	}
	if len(witness) == 0 {
		t.Error("no witness cycle")
	}
	if in, _ := Theorem19(workload.LostUpdate().Graph); in {
		t.Error("lost update misclassified")
	}
	if in, _ := Theorem19(workload.SessionGuarantees().Graph); in {
		t.Error("serializable example misclassified")
	}
}

// TestTheorem22 identifies the long fork as GraphPSI \ GraphSI.
func TestTheorem22(t *testing.T) {
	t.Parallel()
	lf := workload.LongFork()
	in, witness := Theorem22(lf.Graph)
	if !in {
		t.Fatal("long fork not in GraphPSI \\ GraphSI")
	}
	if len(witness) == 0 {
		t.Error("no witness cycle")
	}
	if in, _ := Theorem22(workload.WriteSkew().Graph); in {
		t.Error("write skew misclassified (it is in GraphSI)")
	}
	if in, _ := Theorem22(workload.LostUpdate().Graph); in {
		t.Error("lost update misclassified (outside GraphPSI)")
	}
}

// TestSIRobustSoundnessRandomised: when the static analysis reports an
// application robust against SI, every SI-certifiable history it can
// produce must also be SER-certifiable. We generate histories
// syntactically conforming to the app's read/write sets and check the
// implication.
func TestSIRobustSoundnessRandomised(t *testing.T) {
	t.Parallel()
	app := workload.TransferApp() // robust
	if _, robust := CheckSIRobust(app); !robust {
		t.Skip("app unexpectedly not robust")
	}
	rng := rand.New(rand.NewSource(5))
	var specs []TxSpec
	for _, s := range app.Sessions {
		specs = append(specs, s.Txs...)
	}
	checked := 0
	for trial := 0; trial < 60; trial++ {
		h := randomAppHistory(rng, specs)
		res, err := check.Certify(h, depgraph.SI, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			continue
		}
		checked++
		ser, err := check.Certify(h, depgraph.SER, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ser.Member {
			t.Fatalf("robust app produced SI-only history:\n%v", h)
		}
	}
	if checked == 0 {
		t.Error("no SI-certifiable app histories generated")
	}
}

// randomAppHistory builds a history whose transactions conform to the
// given specs (reads/writes within the declared sets), with unique
// write values and arbitrary read values drawn from plausible writes.
func randomAppHistory(rng *rand.Rand, specs []TxSpec) *model.History {
	var sessions []model.Session
	next := model.Value(1)
	written := map[model.Obj][]model.Value{}
	for i, spec := range specs {
		var ops []model.Op
		for _, x := range spec.Reads {
			vals := written[x]
			v := model.Value(0)
			if len(vals) > 0 && rng.Intn(2) == 0 {
				v = vals[rng.Intn(len(vals))]
			}
			ops = append(ops, model.Read(x, v))
		}
		for _, x := range spec.Writes {
			ops = append(ops, model.Write(x, next))
			written[x] = append(written[x], next)
			next++
		}
		if len(ops) == 0 {
			continue
		}
		sessions = append(sessions, model.Session{
			ID:           spec.Name,
			Transactions: []model.Transaction{model.NewTransaction(spec.Name, ops...)},
		})
		_ = i
	}
	return model.NewHistory(sessions...)
}

func TestSingleTxApp(t *testing.T) {
	t.Parallel()
	app := SingleTxApp(
		NewTxSpec("a", nil, []model.Obj{"x"}),
		NewTxSpec("b", []model.Obj{"x"}, nil),
	)
	if len(app.Sessions) != 2 || len(app.Sessions[0].Txs) != 1 {
		t.Fatalf("app = %+v", app)
	}
	g := BuildStatic(app)
	if !g.SO.IsEmpty() {
		t.Error("single-tx sessions should have empty SO")
	}
	if !g.WR.Has(0, 1) || !g.RW.Has(1, 0) {
		t.Error("conflict edges missing")
	}
}

func TestNewTxSpecCopies(t *testing.T) {
	t.Parallel()
	reads := []model.Obj{"x"}
	spec := NewTxSpec("t", reads, nil)
	reads[0] = "mutated"
	if spec.Reads[0] != "x" {
		t.Error("NewTxSpec aliases caller slice")
	}
}

// TestSmallBank reproduces the classical SI-robustness case study
// (Alomari et al., ICDE 2008): the SmallBank application is not robust
// against SI — the witness is the textbook dangerous structure
// Balance -RW-> WriteCheck -RW-> TransactSavings -WR-> Balance — and
// the materialised-conflict fix restores robustness.
func TestSmallBank(t *testing.T) {
	t.Parallel()
	for _, customers := range []int{1, 2, 3} {
		customers := customers
		t.Run(fmt.Sprintf("customers=%d", customers), func(t *testing.T) {
			t.Parallel()
			w, robust := CheckSIRobust(workload.SmallBankApp(customers, false))
			if robust {
				t.Fatal("SmallBank reported robust against SI")
			}
			s := w.String()
			for _, want := range []string{"WriteCheck", "TransactSavings"} {
				if !strings.Contains(s, want) {
					t.Errorf("witness %q misses the %s race", s, want)
				}
			}
			if _, robust := CheckSIRobust(workload.SmallBankApp(customers, true)); !robust {
				t.Error("materialised-conflict fix did not restore robustness")
			}
		})
	}
}

// TestSmallBankPSI: the same app under the PSI→SI analysis. With
// multiple customers the read-only Balance transactions can observe
// independent writers in different orders (long-fork shapes), so the
// unfixed app is not robust there either.
func TestSmallBankPSI(t *testing.T) {
	t.Parallel()
	w, robust := CheckPSIRobust(workload.SmallBankApp(2, false))
	if robust {
		t.Skip("PSI analysis found no dangerous cycle; nothing to assert")
	}
	if w == nil {
		t.Fatal("not robust but no witness")
	}
}
