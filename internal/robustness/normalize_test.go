package robustness

import (
	"reflect"
	"testing"

	"sian/internal/model"
)

// NewTxSpec must canonicalise its sets: silint feeds it map-ordered,
// possibly duplicated extraction results, and witnesses must not depend
// on that order.
func TestNewTxSpecNormalizes(t *testing.T) {
	t.Parallel()
	s := NewTxSpec("t",
		[]model.Obj{"b", "a", "b"},
		[]model.Obj{"z", "z", "y"})
	if !reflect.DeepEqual(s.Reads, []model.Obj{"a", "b"}) {
		t.Errorf("Reads = %v, want [a b]", s.Reads)
	}
	if !reflect.DeepEqual(s.Writes, []model.Obj{"y", "z"}) {
		t.Errorf("Writes = %v, want [y z]", s.Writes)
	}
}

// The same application declared with shuffled, duplicated sets must
// produce the identical witness cycle.
func TestWitnessDeterministicUnderInputOrder(t *testing.T) {
	t.Parallel()
	mk := func(reads1, reads2 []model.Obj) App {
		return SingleTxApp(
			NewTxSpec("withdraw1", reads1, []model.Obj{"acct1"}),
			NewTxSpec("withdraw2", reads2, []model.Obj{"acct2"}),
		)
	}
	a := mk([]model.Obj{"acct1", "acct2"}, []model.Obj{"acct1", "acct2"})
	b := mk([]model.Obj{"acct2", "acct1", "acct1"}, []model.Obj{"acct2", "acct2", "acct1"})
	wa, ra := CheckSIRobust(a)
	wb, rb := CheckSIRobust(b)
	if ra || rb {
		t.Fatalf("write-skew app reported robust (%v, %v)", ra, rb)
	}
	if wa.String() != wb.String() {
		t.Errorf("witness depends on input order: %q vs %q", wa, wb)
	}
}

// A widened write set must not defuse the vulnerability refinement:
// with exact sets the materialised conflict below is robust, but when
// one write set is only a may-write over-approximation the analysis
// has to keep its anti-dependencies vulnerable.
func TestWritesWidenedDisablesVulnerabilityRefinement(t *testing.T) {
	t.Parallel()
	withTotal := []model.Obj{"acct1", "acct2", "total"}
	mk := func(widened bool) App {
		t1 := NewTxSpec("withdraw1", withTotal, []model.Obj{"acct1", "total"})
		t2 := NewTxSpec("withdraw2", withTotal, []model.Obj{"acct2", "total"})
		t1.WritesWidened = widened
		return SingleTxApp(t1, t2)
	}
	if _, robust := CheckSIRobust(mk(false)); !robust {
		t.Fatalf("materialised conflict with exact sets must be robust")
	}
	if w, robust := CheckSIRobust(mk(true)); robust {
		t.Fatalf("widened write set must keep the app non-robust")
	} else if w == nil {
		t.Fatalf("missing witness")
	}
}
