// Read→write promotion search: the automatic remedy of §6.
//
// When the static analyses of §6 reject an application, the witness is
// a dangerous cycle through vulnerable anti-dependency edges. The
// paper's fix is to *materialise the conflict*: promote a read on one
// of those edges to a write of the same object, so the racing pair
// gains a write-write conflict, the anti-dependency stops being
// vulnerable, and the dangerous cycle disappears. This file searches
// for minimal sets of such promotions whose application makes the
// criterion pass, re-verifying every candidate by re-running the full
// static check on the promoted application.
package robustness

import (
	"fmt"
	"sort"
	"strings"

	"sian/internal/model"
)

// Promotion is one suggested read→write promotion: in every
// transaction of Group, the read of Obj is promoted to also write Obj
// (read the value, write it back — engine.Tx.Promote).
type Promotion struct {
	// Group is the promotion-group key (TxSpec.PromoteGroup, or the
	// synthetic per-vertex key for ungrouped specifications).
	Group string
	// Txs are the labels of the promoted transaction instances.
	Txs []string
	// Obj is the object whose read is promoted.
	Obj model.Obj
}

// String renders e.g. `promote read of "total" in tx withdraw1`.
func (p Promotion) String() string {
	return fmt.Sprintf("promote read of %q in tx %s", string(p.Obj), strings.Join(p.Txs, ", "))
}

// Repair is one verified fix: applying every listed promotion makes
// the failed static check pass.
type Repair struct {
	Promotions []Promotion
}

// String renders the promotions joined by "; ".
func (r Repair) String() string {
	parts := make([]string, len(r.Promotions))
	for i, p := range r.Promotions {
		parts[i] = p.String()
	}
	return strings.Join(parts, "; ")
}

// RepairOptions bounds the promotion search.
type RepairOptions struct {
	// MaxPromotions caps the size of a suggested promotion set
	// (default 3).
	MaxPromotions int
	// MaxRepairs caps how many verified repairs are returned
	// (default 3).
	MaxRepairs int
	// MaxChecks caps how many candidate applications are re-verified
	// before the search gives up (default 512).
	MaxChecks int
}

func (o RepairOptions) withDefaults() RepairOptions {
	if o.MaxPromotions <= 0 {
		o.MaxPromotions = 3
	}
	if o.MaxRepairs <= 0 {
		o.MaxRepairs = 3
	}
	if o.MaxChecks <= 0 {
		o.MaxChecks = 512
	}
	return o
}

// RepairAgainstSI searches for minimal promotion sets that make
// CheckSIRobust pass. It returns verified repairs ranked smallest
// first (ties broken lexicographically), or nil when the application
// is already robust or no repair exists within the bounds.
func RepairAgainstSI(app App, opts RepairOptions) []Repair {
	return repair(app, CheckSIRobust, opts)
}

// RepairAgainstPSI is RepairAgainstSI for the §6.2 criterion
// (robustness against parallel SI towards SI, Theorem 22).
func RepairAgainstPSI(app App, opts RepairOptions) []Repair {
	return repair(app, CheckPSIRobust, opts)
}

// promKey identifies a promotion candidate.
type promKey struct {
	group string
	obj   model.Obj
}

// groupKeyOf returns the promotion group of the vertex-th flattened
// specification: its PromoteGroup, or a synthetic per-vertex key.
func groupKeyOf(spec TxSpec, vertex int) string {
	if spec.PromoteGroup != "" {
		return spec.PromoteGroup
	}
	return fmt.Sprintf("#%d", vertex)
}

// flatten returns the application's specifications in session-major
// (static-graph vertex) order, as (session index, tx index) pairs.
func flatten(app App) (specs []TxSpec, at [][2]int) {
	for si, s := range app.Sessions {
		for ti, t := range s.Txs {
			specs = append(specs, t)
			at = append(at, [2]int{si, ti})
		}
	}
	return specs, at
}

// applyPromotions returns a deep copy of app with every promotion
// applied: each transaction of a promoted group additionally reads and
// writes the promoted object (Promote performs both).
func applyPromotions(app App, set []promKey) App {
	specs, at := flatten(app)
	out := App{Sessions: make([]SessionSpec, len(app.Sessions))}
	for i, s := range app.Sessions {
		out.Sessions[i] = SessionSpec{Name: s.Name, Txs: append([]TxSpec(nil), s.Txs...)}
	}
	for v, spec := range specs {
		g := groupKeyOf(spec, v)
		var add []model.Obj
		for _, p := range set {
			if p.group == g {
				add = append(add, p.obj)
			}
		}
		if len(add) == 0 {
			continue
		}
		si, ti := at[v][0], at[v][1]
		t := out.Sessions[si].Txs[ti]
		t.Reads = model.NormalizeObjs(append(append([]model.Obj(nil), t.Reads...), add...))
		t.Writes = model.NormalizeObjs(append(append([]model.Obj(nil), t.Writes...), add...))
		out.Sessions[si].Txs[ti] = t
	}
	return out
}

// candidatesOf derives the promotion candidates of a witness cycle:
// for every vulnerable anti-dependency edge From -RW*-> To, each
// object in Reads(From) ∩ Writes(To) names a promotion of From's read.
// Edges incident to a widened writer are skipped — a promotion cannot
// certify a concrete conflict against a may-write set, so it can never
// defuse such an edge.
func candidatesOf(app App, w *Witness) []promKey {
	specs, _ := flatten(app)
	var out []promKey
	seen := make(map[promKey]bool)
	for _, step := range w.Steps {
		if step.Kind != EdgeVulnerableRW {
			continue
		}
		from, to := specs[step.From], specs[step.To]
		if from.WritesWidened || to.WritesWidened {
			continue
		}
		for _, x := range from.Reads {
			if !model.ObjsIntersect([]model.Obj{x}, to.Writes) {
				continue
			}
			k := promKey{group: groupKeyOf(specs[step.From], step.From), obj: x}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

// setKey canonicalises a promotion set for the visited map.
func setKey(set []promKey) string {
	parts := make([]string, len(set))
	for i, p := range set {
		parts[i] = p.group + "\x00" + string(p.obj)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// repair runs a breadth-first search over promotion sets: level k
// explores sets of k promotions, each derived by extending a failing
// level-(k-1) set with a candidate from its own witness cycle. The
// first level that yields any verified repair is completed and the
// search stops — every returned repair is therefore minimal in the
// number of promotions. Each candidate set is verified by re-running
// the full static check on the promoted application.
func repair(app App, check func(App) (*Witness, bool), opts RepairOptions) []Repair {
	opts = opts.withDefaults()
	w0, ok := check(app)
	if ok {
		return nil
	}
	specs, _ := flatten(app)
	labelsOf := func(group string) []string {
		var out []string
		for v, spec := range specs {
			if groupKeyOf(spec, v) == group {
				out = append(out, labelOf(spec, v))
			}
		}
		return out
	}

	type node struct {
		set     []promKey
		app     App // app with set applied; witness indexes its vertices
		witness *Witness
	}
	frontier := []node{{set: nil, app: app, witness: w0}}
	visited := map[string]bool{setKey(nil): true}
	checks := 0
	var found [][]promKey
	for level := 1; level <= opts.MaxPromotions && len(found) == 0 && len(frontier) > 0; level++ {
		var next []node
		for _, n := range frontier {
			for _, cand := range candidatesOf(n.app, n.witness) {
				set := append(append([]promKey(nil), n.set...), cand)
				key := setKey(set)
				if visited[key] {
					continue
				}
				visited[key] = true
				if checks++; checks > opts.MaxChecks {
					return repairsFrom(found, labelsOf, opts)
				}
				promoted := applyPromotions(app, set)
				w, ok := check(promoted)
				if ok {
					found = append(found, set)
					continue
				}
				next = append(next, node{set: set, app: promoted, witness: w})
			}
		}
		frontier = next
	}
	return repairsFrom(found, labelsOf, opts)
}

// labelOf mirrors BuildStatic's vertex labelling.
func labelOf(spec TxSpec, vertex int) string {
	if spec.Name != "" {
		return spec.Name
	}
	return fmt.Sprintf("tx%d", vertex)
}

// repairsFrom materialises and ranks the found promotion sets.
func repairsFrom(found [][]promKey, labelsOf func(string) []string, opts RepairOptions) []Repair {
	var out []Repair
	for _, set := range found {
		r := Repair{}
		for _, p := range set {
			r.Promotions = append(r.Promotions, Promotion{Group: p.group, Txs: labelsOf(p.group), Obj: p.obj})
		}
		sort.Slice(r.Promotions, func(i, j int) bool {
			a, b := r.Promotions[i], r.Promotions[j]
			if a.Group != b.Group {
				return a.Group < b.Group
			}
			return a.Obj < b.Obj
		})
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Promotions) != len(out[j].Promotions) {
			return len(out[i].Promotions) < len(out[j].Promotions)
		}
		return out[i].String() < out[j].String()
	})
	if len(out) > opts.MaxRepairs {
		out = out[:opts.MaxRepairs]
	}
	return out
}
