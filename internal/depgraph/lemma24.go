package depgraph

import "fmt"

// CycleStep is one edge of a cycle in the union relation
// SO ∪ WR ∪ WW ∪ RW, tagged with whether it is an anti-dependency
// (the only distinction Lemma 24 cares about).
type CycleStep struct {
	From, To int
	AntiDep  bool
}

// SimplifyCycle implements Lemma 24 of the paper: given a cycle in
// (SO ∪ WR ∪ WW) ; RW? — i.e. a cycle with no two adjacent
// anti-dependency edges — it extracts a vertex-simple sub-cycle that
// still has no two adjacent anti-dependency edges, by repeatedly
// splitting at a repeated vertex and keeping the half whose junction
// does not create an RW–RW adjacency (the case analysis of Figure 9).
//
// The input is the cycle's edges in order, with steps[i].To ==
// steps[(i+1) % n].From; the last step returns to steps[0].From. An
// error is returned for malformed cycles or inputs that already have
// two adjacent anti-dependencies.
func SimplifyCycle(steps []CycleStep) ([]CycleStep, error) {
	n := len(steps)
	if n == 0 {
		return nil, fmt.Errorf("depgraph: empty cycle")
	}
	for i, s := range steps {
		next := steps[(i+1)%n]
		if s.To != next.From {
			return nil, fmt.Errorf("depgraph: discontinuous cycle at step %d", i)
		}
		if s.AntiDep && next.AntiDep {
			return nil, fmt.Errorf("depgraph: cycle has adjacent anti-dependencies at step %d", i)
		}
	}
	for {
		rep := repeatedVertex(steps)
		if rep < 0 {
			return steps, nil
		}
		// Rotate so the cycle starts at the repeated vertex T, then
		// split into γ₁ = first loop through T and γ₂ = the rest
		// (exactly the dashed boxes of Figure 9).
		steps = rotateToStart(steps, rep)
		second := nextOccurrence(steps)
		gamma1 := append([]CycleStep{}, steps[:second]...)
		gamma2 := append([]CycleStep{}, steps[second:]...)
		// γ₁'s junction joins steps[second-1] to steps[0]; γ₂'s joins
		// the final step to steps[second]. Per the paper: if γ₁'s
		// junction is not RW–RW, keep γ₁; otherwise γ₂'s junction
		// cannot be RW–RW (the original had no adjacent pair), keep
		// γ₂.
		if !(gamma1[len(gamma1)-1].AntiDep && gamma1[0].AntiDep) {
			steps = gamma1
		} else {
			steps = gamma2
		}
	}
}

// repeatedVertex returns the index of a step whose From vertex occurs
// as From of another step, or -1 when the cycle is simple.
func repeatedVertex(steps []CycleStep) int {
	seen := make(map[int]int, len(steps))
	for i, s := range steps {
		if j, ok := seen[s.From]; ok {
			return j
		}
		seen[s.From] = i
	}
	return -1
}

// rotateToStart rotates the cycle so that it begins at step i.
func rotateToStart(steps []CycleStep, i int) []CycleStep {
	out := make([]CycleStep, 0, len(steps))
	out = append(out, steps[i:]...)
	out = append(out, steps[:i]...)
	return out
}

// nextOccurrence returns the index of the second step whose From
// equals steps[0].From. The caller guarantees one exists.
func nextOccurrence(steps []CycleStep) int {
	for i := 1; i < len(steps); i++ {
		if steps[i].From == steps[0].From {
			return i
		}
	}
	return len(steps)
}
