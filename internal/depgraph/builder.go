package depgraph

import (
	"errors"
	"fmt"

	"sian/internal/model"
	"sian/internal/relation"
)

// Builder is the mutable counterpart of Graph used by the
// certification search. Where Graph is an immutable value that
// recomputes unions, anti-dependencies and closures on demand, Builder
// applies WR and WW edges in place, derives the affected RW
// anti-dependencies incrementally, and maintains the transitive
// closure of the model's base relation (SO ∪ WR ∪ WW, or WR ∪ WW for
// GSI) through relation.Closure. Every mutation is journaled, so a
// depth-first search can push edges while descending and pop them with
// Undo while backtracking — no per-branch graph clones.
//
// The membership test InModel is evaluated against the maintained
// state. Writing B for the base relation and observing that a base
// cycle lies inside every model's composite (RW? is reflexive), each
// candidate check reduces, once B is known acyclic, to a cycle check
// on a composition with the sparse RW on the left:
//
//	SER: B ∪ RW cyclic        ⟺  RW ; B* cyclic
//	SI:  B ; RW? cyclic       ⟺  RW ; B⁺ cyclic
//	PSI: B⁺ ; RW? reflexive   ⟺  ∃ RW(a,b) with b →B⁺ a
//	PC:  (A ; RW?) ∪ WW cyclic ⟺ (RW ; B*) ; A cyclic  (A = SO ∪ WR)
//	GSI: as SI with B = WR ∪ WW
//
// (collapse the pure-B segments of any composite cycle: what remains
// alternates RW edges with non-empty — or possibly empty, for SER —
// B-paths). B⁺ is exactly the maintained closure, so no candidate
// check recomputes a transitive closure.
//
// Builder is not safe for concurrent use; parallel searches give each
// worker its own Builder.
type Builder struct {
	h *model.History
	m Model
	n int

	wr map[model.Obj]*relation.Rel
	ww map[model.Obj]*relation.Rel
	// Maintained unions and derived anti-dependencies.
	wrAll, wwAll, rw *relation.Rel
	// so seeds the closure base: the session order, or empty under GSI
	// (whose composite ignores sessions).
	so *relation.Rel
	// cl is the transitive closure of so ∪ wrAll ∪ wwAll.
	cl *relation.Closure

	journal []builderOp
	// Scratch relations reused across InModel calls.
	s1, s2, s3 *relation.Rel

	undoOps int64
}

// builderOp journals one newly set bit; Undo clears it. Edges that
// were already present (a union bit witnessed by another object, a
// re-applied per-object edge) are not journaled, so LIFO undo restores
// exact prior state.
type builderOp struct {
	kind uint8
	x    model.Obj
	a, b int
}

const (
	opWRObj uint8 = iota
	opWWObj
	opWRAll
	opWWAll
	opRW
)

// NewBuilder returns an empty builder over the history for membership
// tests against the given model.
func NewBuilder(h *model.History, m Model) *Builder {
	n := h.NumTransactions()
	var so *relation.Rel
	if m == GSI {
		so = relation.New(n)
	} else {
		so = h.SessionOrder()
	}
	return &Builder{
		h: h, m: m, n: n,
		wr:    make(map[model.Obj]*relation.Rel),
		ww:    make(map[model.Obj]*relation.Rel),
		wrAll: relation.New(n), wwAll: relation.New(n), rw: relation.New(n),
		so: so, cl: relation.ClosureOf(so),
		s1: relation.New(n), s2: relation.New(n), s3: relation.New(n),
	}
}

// BuilderMark captures a builder state for Undo.
type BuilderMark struct {
	ops int
	cl  relation.Mark
}

// Mark returns a checkpoint of the current edge set.
func (b *Builder) Mark() BuilderMark {
	return BuilderMark{ops: len(b.journal), cl: b.cl.Checkpoint()}
}

// Undo reverts every ApplyWR/ApplyWW since the mark.
func (b *Builder) Undo(m BuilderMark) {
	for i := len(b.journal) - 1; i >= m.ops; i-- {
		op := b.journal[i]
		switch op.kind {
		case opWRObj:
			b.wr[op.x].Remove(op.a, op.b)
		case opWWObj:
			b.ww[op.x].Remove(op.a, op.b)
		case opWRAll:
			b.wrAll.Remove(op.a, op.b)
		case opWWAll:
			b.wwAll.Remove(op.a, op.b)
		case opRW:
			b.rw.Remove(op.a, op.b)
		}
	}
	b.undoOps += int64(len(b.journal) - m.ops)
	b.journal = b.journal[:m.ops]
	b.cl.Rollback(m.cl)
}

func (b *Builder) obj(m map[model.Obj]*relation.Rel, x model.Obj) *relation.Rel {
	r, ok := m[x]
	if !ok {
		r = relation.New(b.n)
		m[x] = r
	}
	return r
}

func (b *Builder) addRW(a, c int) {
	if b.rw.Has(a, c) {
		return
	}
	b.rw.Add(a, c)
	b.journal = append(b.journal, builderOp{kind: opRW, a: a, b: c})
}

// ApplyWR records T —WR(x)→ S, updating the union, the derived
// anti-dependencies (S now races with every WW(x)-successor of T) and
// the maintained closure. Re-applying an existing edge is a no-op.
func (b *Builder) ApplyWR(x model.Obj, t, s int) {
	wr := b.obj(b.wr, x)
	if wr.Has(t, s) {
		return
	}
	wr.Add(t, s)
	b.journal = append(b.journal, builderOp{kind: opWRObj, x: x, a: t, b: s})
	if !b.wrAll.Has(t, s) {
		b.wrAll.Add(t, s)
		b.journal = append(b.journal, builderOp{kind: opWRAll, a: t, b: s})
	}
	if ww, ok := b.ww[x]; ok {
		ww.EachSuccessor(t, func(s2 int) {
			if s2 != s {
				b.addRW(s, s2)
			}
		})
	}
	b.cl.AddEdge(t, s)
}

// ApplyWW records T —WW(x)→ S, updating the union, the derived
// anti-dependencies (every reader of T on x races with S) and the
// maintained closure. Re-applying an existing edge is a no-op.
func (b *Builder) ApplyWW(x model.Obj, t, s int) {
	ww := b.obj(b.ww, x)
	if ww.Has(t, s) {
		return
	}
	ww.Add(t, s)
	b.journal = append(b.journal, builderOp{kind: opWWObj, x: x, a: t, b: s})
	if !b.wwAll.Has(t, s) {
		b.wwAll.Add(t, s)
		b.journal = append(b.journal, builderOp{kind: opWWAll, a: t, b: s})
	}
	if wr, ok := b.wr[x]; ok {
		wr.EachSuccessor(t, func(r int) {
			if r != s {
				b.addRW(r, s)
			}
		})
	}
	b.cl.AddEdge(t, s)
}

// Cyclic reports whether the base relation (SO ∪ WR ∪ WW, without SO
// under GSI) is cyclic. A cyclic base excludes membership in every
// model, so the search prunes on it.
func (b *Builder) Cyclic() bool { return b.cl.HasCycle() }

// Reaches reports whether s is reachable from t through the base
// relation (one or more steps) — the forced-precedence oracle of the
// write-order enumeration.
func (b *Builder) Reaches(t, s int) bool { return b.cl.Reaches(t, s) }

// InModel reports membership of the current edge set in the builder's
// model, against the same composite-relation characterisations as
// Graph.InModel. It assumes the history already passed CheckInt (the
// INT axiom constrains transactions, not dependency choices, so the
// search front-loads it). A nil error means membership.
func (b *Builder) InModel() error {
	cyclic := b.cl.HasCycle()
	switch b.m {
	case SER:
		if cyclic {
			return errors.New("SO ∪ WR ∪ WW ∪ RW is cyclic")
		}
		b.cl.ComposeMaybeInto(b.s1, b.rw)
		if !b.s1.IsAcyclic() {
			return errors.New("SO ∪ WR ∪ WW ∪ RW is cyclic")
		}
	case SI:
		if cyclic {
			return errors.New("(SO ∪ WR ∪ WW) ; RW? is cyclic")
		}
		b.cl.ComposeInto(b.s1, b.rw)
		if !b.s1.IsAcyclic() {
			return errors.New("(SO ∪ WR ∪ WW) ; RW? is cyclic")
		}
	case PSI:
		if cyclic {
			return errors.New("(SO ∪ WR ∪ WW)⁺ ; RW? is not irreflexive")
		}
		bad := false
		for a := 0; a < b.n && !bad; a++ {
			b.rw.EachSuccessor(a, func(c int) {
				if !bad && b.cl.Reaches(c, a) {
					bad = true
				}
			})
		}
		if bad {
			return errors.New("(SO ∪ WR ∪ WW)⁺ ; RW? is not irreflexive")
		}
	case PC:
		if cyclic {
			return errors.New("((SO ∪ WR) ; RW?) ∪ WW is cyclic")
		}
		b.cl.ComposeMaybeInto(b.s1, b.rw)         // RW ; B*
		b.s2.CopyFrom(b.so).UnionInPlace(b.wrAll) // A = SO ∪ WR
		if !b.s3.ComposeOf(b.s1, b.s2).IsAcyclic() {
			return errors.New("((SO ∪ WR) ; RW?) ∪ WW is cyclic")
		}
	case GSI:
		if cyclic {
			return errors.New("(WR ∪ WW) ; RW? is cyclic")
		}
		b.cl.ComposeInto(b.s1, b.rw)
		if !b.s1.IsAcyclic() {
			return errors.New("(WR ∪ WW) ; RW? is cyclic")
		}
	default:
		return fmt.Errorf("unknown model %v", b.m)
	}
	return nil
}

// Snapshot returns the current edge set as an immutable Graph, for
// witness reporting once the search finds a member.
func (b *Builder) Snapshot() *Graph {
	g := New(b.h)
	for x, r := range b.wr {
		if !r.IsEmpty() {
			g.wr[x] = r.Clone()
		}
	}
	for x, r := range b.ww {
		if !r.IsEmpty() {
			g.ww[x] = r.Clone()
		}
	}
	return g
}

// Stats returns the observability totals: journal entries reverted by
// Undo and closure pairs materialised by delta propagation.
func (b *Builder) Stats() (undoOps, closureDeltaEdges int64) {
	delta, _ := b.cl.Stats()
	return b.undoOps, delta
}
