package depgraph

import (
	"fmt"
	"strings"

	"sian/internal/model"
)

// EdgeKind labels one dependency-graph edge kind.
type EdgeKind int

// Edge kinds: session order, read dependency, write dependency,
// anti-dependency.
const (
	EdgeSO EdgeKind = iota + 1
	EdgeWR
	EdgeWW
	EdgeRW
)

// String returns "SO", "WR", "WW" or "RW".
func (k EdgeKind) String() string {
	switch k {
	case EdgeSO:
		return "SO"
	case EdgeWR:
		return "WR"
	case EdgeWW:
		return "WW"
	case EdgeRW:
		return "RW"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one labelled dependency edge: From —Kind(Obj)→ To. Obj is
// empty for SO edges.
type Edge struct {
	Kind     EdgeKind
	Obj      model.Obj
	From, To int
}

// Label renders the edge label: "WR(x)", "SO", ….
func (e Edge) Label() string {
	if e.Kind == EdgeSO || e.Obj == "" {
		return e.Kind.String()
	}
	return fmt.Sprintf("%s(%s)", e.Kind, e.Obj)
}

// WitnessExplanation is an explainable negative verdict: the axiom of
// the paper's Figure 1 specification that the history cannot satisfy,
// and a forbidden cycle of labelled dependency edges witnessing it.
type WitnessExplanation struct {
	Model Model
	// Axiom names the violated axiom (or axiom group) of the model's
	// specification, attributed from the shape of the witness cycle —
	// see axiomFor for the attribution rules.
	Axiom string
	// Cycle is the witnessing cycle as consecutive labelled edges
	// (Cycle[i].To == Cycle[i+1].From, last edge closing back to
	// Cycle[0].From). Composite-relation steps are decomposed into
	// their underlying SO/WR/WW/RW edges.
	Cycle []Edge
}

// ExplainWitness explains why the graph is outside the given model:
// it finds a forbidden cycle of the model's composite relation
// (Theorems 8, 9 and 21), decomposes every composite step into the
// underlying labelled edges, and attributes the violation to an axiom
// of the paper's Figure 1 specification. It returns nil when the graph
// is in the model.
func (g *Graph) ExplainWitness(m Model) *WitnessExplanation {
	cyc := g.Witness(m)
	if cyc == nil {
		return nil
	}
	var edges []Edge
	for i := 0; i+1 < len(cyc); i++ {
		step := g.expandStep(m, cyc[i], cyc[i+1])
		if step == nil {
			// The composite step cannot be decomposed (should not
			// happen for cycles produced by Witness); fall back to an
			// unlabelled edge rather than lying about the kind.
			step = []Edge{{Kind: 0, From: cyc[i], To: cyc[i+1]}}
		}
		edges = append(edges, step...)
	}
	return &WitnessExplanation{Model: m, Axiom: axiomFor(m, edges), Cycle: edges}
}

// ExplainBaseCycle explains a cycle of the plain dependency relation
// SO ∪ WR ∪ WW (no anti-dependencies). It is used by the certifier
// when a search branch dies before completing a candidate graph: a
// base cycle excludes membership in every model, since dependencies
// must embed into the commit order. Returns nil when the base relation
// is acyclic.
func (g *Graph) ExplainBaseCycle(m Model) *WitnessExplanation {
	base := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	cyc := base.FindCycle()
	if cyc == nil {
		return nil
	}
	var edges []Edge
	for i := 0; i+1 < len(cyc); i++ {
		e := g.labelDep(cyc[i], cyc[i+1], EdgeWW, EdgeWR, EdgeSO)
		if e == nil {
			e = &Edge{From: cyc[i], To: cyc[i+1]}
		}
		edges = append(edges, *e)
	}
	return &WitnessExplanation{Model: m, Axiom: axiomFor(m, edges), Cycle: edges}
}

// FormatCycle renders an edge cycle with transaction labels, e.g.
// "t1 -WW(x)-> t2 -RW(x)-> t1".
func (g *Graph) FormatCycle(cycle []Edge) string {
	if len(cycle) == 0 {
		return ""
	}
	name := func(i int) string {
		if id := g.History.Transaction(i).ID; id != "" {
			return id
		}
		return fmt.Sprintf("#%d", i)
	}
	var b strings.Builder
	b.WriteString(name(cycle[0].From))
	for _, e := range cycle {
		fmt.Fprintf(&b, " -%s-> %s", e.Label(), name(e.To))
	}
	return b.String()
}

// String renders the explanation as "axiom <axiom>; cycle <cycle>".
func (w *WitnessExplanation) String(g *Graph) string {
	if w == nil {
		return ""
	}
	if len(w.Cycle) == 0 {
		return "axiom " + w.Axiom
	}
	return fmt.Sprintf("axiom %s; cycle %s", w.Axiom, g.FormatCycle(w.Cycle))
}

// depKinds returns the dependency-edge kinds that may start a
// composite step of the model (the relation left of "; RW?").
func depKinds(m Model) []EdgeKind {
	switch m {
	case GSI:
		return []EdgeKind{EdgeWW, EdgeWR}
	case PC:
		return []EdgeKind{EdgeWR, EdgeSO}
	default:
		return []EdgeKind{EdgeWW, EdgeWR, EdgeSO}
	}
}

// expandStep decomposes one composite-relation step a→b of model m
// into the underlying labelled edges, or nil if no decomposition
// exists.
func (g *Graph) expandStep(m Model, a, b int) []Edge {
	switch m {
	case SER:
		// SO ∪ WR ∪ WW ∪ RW: always a direct edge.
		if e := g.labelDep(a, b, EdgeWW, EdgeWR, EdgeSO, EdgeRW); e != nil {
			return []Edge{*e}
		}
		return nil
	case SI, GSI:
		// (deps) ; RW?
		return g.expandDepThenRW(depKinds(m), a, b)
	case PC:
		// ((SO ∪ WR) ; RW?) ∪ WW: try the WW disjunct first.
		if e := g.labelDep(a, b, EdgeWW); e != nil {
			return []Edge{*e}
		}
		return g.expandDepThenRW(depKinds(m), a, b)
	case PSI:
		// (deps)⁺ ; RW?: BFS over dependency edges.
		return g.expandPathThenRW(depKinds(m), a, b)
	default:
		return nil
	}
}

// expandDepThenRW decomposes a step of the form dep ; RW?: either a
// single dependency edge a→b, or a dependency edge a→m followed by an
// anti-dependency m→b.
func (g *Graph) expandDepThenRW(kinds []EdgeKind, a, b int) []Edge {
	if e := g.labelDep(a, b, kinds...); e != nil {
		return []Edge{*e}
	}
	for m := 0; m < g.n(); m++ {
		dep := g.labelDep(a, m, kinds...)
		if dep == nil {
			continue
		}
		if rw := g.labelRW(m, b); rw != nil {
			return []Edge{*dep, *rw}
		}
	}
	return nil
}

// expandPathThenRW decomposes a step of the form dep⁺ ; RW?: a
// shortest non-empty dependency path a ⇝ b, or a ⇝ m followed by an
// anti-dependency m→b. BFS keeps the witness minimal. The start node
// is never marked visited, so paths may return to a (self-loop
// witnesses, the shape PSI's irreflexivity check finds).
func (g *Graph) expandPathThenRW(kinds []EdgeKind, a, b int) []Edge {
	n := g.n()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, n)
	// pathTo rebuilds the BFS dependency path a ⇝ u (empty for u == a).
	pathTo := func(u int) []Edge {
		var nodes []int
		for v := u; v != a; v = parent[v] {
			nodes = append(nodes, v)
		}
		var edges []Edge
		prev := a
		for i := len(nodes) - 1; i >= 0; i-- {
			edges = append(edges, *g.labelDep(prev, nodes[i], kinds...))
			prev = nodes[i]
		}
		return edges
	}
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			dep := g.labelDep(u, v, kinds...)
			if dep == nil {
				continue
			}
			if v == b {
				return append(pathTo(u), *dep)
			}
			if rw := g.labelRW(v, b); rw != nil {
				return append(append(pathTo(u), *dep), *rw)
			}
			if !visited[v] && v != a {
				visited[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil
}

// labelDep finds a dependency edge a→b among the given kinds, trying
// them in order; for WR/WW/RW it also resolves the object. Returns nil
// if none exists.
func (g *Graph) labelDep(a, b int, kinds ...EdgeKind) *Edge {
	for _, k := range kinds {
		switch k {
		case EdgeSO:
			if g.History.SessionOrder().Has(a, b) {
				return &Edge{Kind: EdgeSO, From: a, To: b}
			}
		case EdgeWR:
			// Iterate objects in sorted order, not the map, so the
			// labeling object is deterministic when a pair is a
			// dependency on several objects.
			for _, x := range g.History.Objects() {
				if g.WRObj(x).Has(a, b) {
					return &Edge{Kind: EdgeWR, Obj: x, From: a, To: b}
				}
			}
		case EdgeWW:
			for _, x := range g.History.Objects() {
				if g.WWObj(x).Has(a, b) {
					return &Edge{Kind: EdgeWW, Obj: x, From: a, To: b}
				}
			}
		case EdgeRW:
			if e := g.labelRW(a, b); e != nil {
				return e
			}
		}
	}
	return nil
}

// labelRW finds an anti-dependency edge a→b, resolving its object.
func (g *Graph) labelRW(a, b int) *Edge {
	for _, x := range g.History.Objects() {
		if g.RWObj(x).Has(a, b) {
			return &Edge{Kind: EdgeRW, Obj: x, From: a, To: b}
		}
	}
	return nil
}

// axiomFor attributes a forbidden cycle to an axiom (or axiom group)
// of the paper's Figure 1 specification, from the cycle's shape:
//
//   - no anti-dependency: the dependencies SO ∪ WR ∪ WW themselves are
//     cyclic, yet every model requires them to embed into the commit
//     order — a SESSION/EXT violation;
//   - exactly one anti-dependency: the lost-update shape that
//     NOCONFLICT forbids (Figure 2(b));
//   - two or more (necessarily non-adjacent) anti-dependencies: under
//     SER this is the write-skew shape excluded by TOTALVIS
//     (Figure 2(d)); under SI/GSI/PC it is the long-fork shape
//     excluded by PREFIX (Figure 2(c)).
//
// Cycles with adjacent anti-dependency pairs never reach here: the
// composite relations place at most one RW per step, so such cycles
// are not forbidden (Theorem 9's "allowed" direction).
func axiomFor(m Model, cycle []Edge) string {
	rw := 0
	for _, e := range cycle {
		if e.Kind == EdgeRW {
			rw++
		}
	}
	switch {
	case rw == 0:
		return "SESSION/EXT (dependency cycle: SO ∪ WR ∪ WW must embed into the commit order)"
	case rw == 1:
		return "NOCONFLICT (lost-update shape: cycle with a single anti-dependency)"
	case m == SER:
		return "TOTALVIS (write-skew shape: anti-dependency cycle, Theorem 8)"
	default:
		return "PREFIX (long-fork shape: cycle with non-adjacent anti-dependencies, Theorem 9)"
	}
}
