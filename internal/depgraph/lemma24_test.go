package depgraph

import (
	"math/rand"
	"testing"
)

func validNoAdjacent(t *testing.T, steps []CycleStep) {
	t.Helper()
	n := len(steps)
	if n == 0 {
		t.Fatal("empty result")
	}
	seen := map[int]bool{}
	for i, s := range steps {
		next := steps[(i+1)%n]
		if s.To != next.From {
			t.Fatalf("discontinuous at %d: %+v", i, steps)
		}
		if s.AntiDep && next.AntiDep {
			t.Fatalf("adjacent anti-dependencies at %d: %+v", i, steps)
		}
		if seen[s.From] {
			t.Fatalf("repeated vertex %d: %+v", s.From, steps)
		}
		seen[s.From] = true
	}
}

func TestSimplifyCycleAlreadySimple(t *testing.T) {
	t.Parallel()
	steps := []CycleStep{
		{From: 0, To: 1, AntiDep: true},
		{From: 1, To: 2},
		{From: 2, To: 0, AntiDep: true},
	}
	// Wrap adjacency: steps[2] anti followed by steps[0] anti would be
	// adjacent — use a non-anti closer instead.
	steps[2].AntiDep = false
	out, err := SimplifyCycle(steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("simple cycle changed: %+v", out)
	}
	validNoAdjacent(t, out)
}

func TestSimplifyCycleFigure9(t *testing.T) {
	t.Parallel()
	// The Figure 9 shape: S → … → T → … → T → … → S with vertex T
	// repeated. Vertices: S=0, T=1, with intermediates 2, 3.
	steps := []CycleStep{
		{From: 0, To: 1},                // S → T
		{From: 1, To: 2, AntiDep: true}, // T → 2 (RW)
		{From: 2, To: 1},                // 2 → T
		{From: 1, To: 3, AntiDep: true}, // T → 3 (RW)
		{From: 3, To: 0},                // 3 → S
	}
	out, err := SimplifyCycle(steps)
	if err != nil {
		t.Fatal(err)
	}
	validNoAdjacent(t, out)
	if len(out) >= len(steps) {
		t.Errorf("no shrinkage: %+v", out)
	}
}

func TestSimplifyCycleErrors(t *testing.T) {
	t.Parallel()
	if _, err := SimplifyCycle(nil); err == nil {
		t.Error("empty cycle accepted")
	}
	if _, err := SimplifyCycle([]CycleStep{{From: 0, To: 1}, {From: 2, To: 0}}); err == nil {
		t.Error("discontinuous cycle accepted")
	}
	adj := []CycleStep{
		{From: 0, To: 1, AntiDep: true},
		{From: 1, To: 0, AntiDep: true},
	}
	if _, err := SimplifyCycle(adj); err == nil {
		t.Error("adjacent anti-dependencies accepted")
	}
}

// TestSimplifyCycleRandomised builds random closed walks with no two
// adjacent anti-dependencies and checks the Lemma 24 guarantee: the
// extraction yields a vertex-simple sub-cycle preserving the property.
func TestSimplifyCycleRandomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(10)
		verts := make([]int, n)
		for i := range verts {
			verts[i] = rng.Intn(5) // small vertex pool forces repeats
		}
		steps := make([]CycleStep, n)
		for i := range steps {
			steps[i] = CycleStep{From: verts[i], To: verts[(i+1)%n]}
		}
		// Assign anti-dependency flags with no two adjacent
		// (cyclically): greedily flip eligible edges.
		for i := range steps {
			prev := steps[(i+n-1)%n].AntiDep
			next := steps[(i+1)%n].AntiDep
			if !prev && !next && rng.Intn(2) == 0 {
				steps[i].AntiDep = true
			}
		}
		out, err := SimplifyCycle(steps)
		if err != nil {
			t.Fatalf("trial %d: %v\n%+v", trial, err, steps)
		}
		validNoAdjacent(t, out)
		// Every edge of the output appears in the input.
		type edge struct {
			f, t int
			a    bool
		}
		in := map[edge]bool{}
		for _, s := range steps {
			in[edge{s.From, s.To, s.AntiDep}] = true
		}
		for _, s := range out {
			if !in[edge{s.From, s.To, s.AntiDep}] {
				t.Fatalf("trial %d: invented edge %+v", trial, s)
			}
		}
	}
}
