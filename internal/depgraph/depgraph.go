// Package depgraph implements Adya-style transactional dependency
// graphs (Definition 6 of the paper): per-object read dependencies WR,
// write dependencies WW and the derived anti-dependencies RW, together
// with the dependency-graph characterisations of serializability
// (Theorem 8), snapshot isolation (Theorem 9) and parallel snapshot
// isolation (Theorem 21).
package depgraph

import (
	"errors"
	"fmt"

	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/relation"
)

// Graph is a dependency graph G = (T, SO, WR, WW, RW). WR and WW are
// stored per object; RW is always derived from them per Definition 5
// and never set directly.
type Graph struct {
	History *model.History
	// wr[x] and ww[x] are relations over the history's transaction
	// indices.
	wr map[model.Obj]*relation.Rel
	ww map[model.Obj]*relation.Rel
}

// New returns an empty dependency graph over the given history.
func New(h *model.History) *Graph {
	return &Graph{
		History: h,
		wr:      make(map[model.Obj]*relation.Rel),
		ww:      make(map[model.Obj]*relation.Rel),
	}
}

func (g *Graph) n() int { return g.History.NumTransactions() }

func (g *Graph) rel(m map[model.Obj]*relation.Rel, x model.Obj) *relation.Rel {
	r, ok := m[x]
	if !ok {
		r = relation.New(g.n())
		m[x] = r
	}
	return r
}

// AddWR records T —WR(x)→ S.
func (g *Graph) AddWR(x model.Obj, t, s int) { g.rel(g.wr, x).Add(t, s) }

// AddWW records T —WW(x)→ S.
func (g *Graph) AddWW(x model.Obj, t, s int) { g.rel(g.ww, x).Add(t, s) }

// WRObj returns WR(x) (a copy-free view; treat as read-only).
func (g *Graph) WRObj(x model.Obj) *relation.Rel { return g.rel(g.wr, x) }

// WWObj returns WW(x) (a copy-free view; treat as read-only).
func (g *Graph) WWObj(x model.Obj) *relation.Rel { return g.rel(g.ww, x) }

// RWObj computes the derived anti-dependency relation RW(x) of
// Definition 5: T —RW(x)→ S iff T ≠ S and ∃T'. T' —WR(x)→ T ∧
// T' —WW(x)→ S.
func (g *Graph) RWObj(x model.Obj) *relation.Rel {
	wr, okWR := g.wr[x]
	ww, okWW := g.ww[x]
	out := relation.New(g.n())
	if !okWR || !okWW {
		return out
	}
	// RW(x) = WR(x)⁻¹ ; WW(x), minus the diagonal.
	out = wr.Inverse().Compose(ww)
	for i := 0; i < g.n(); i++ {
		out.Remove(i, i)
	}
	return out
}

// WR returns the union ⋃_x WR(x).
func (g *Graph) WR() *relation.Rel { return unionAll(g.n(), g.wr) }

// WW returns the union ⋃_x WW(x).
func (g *Graph) WW() *relation.Rel { return unionAll(g.n(), g.ww) }

// RW returns the union ⋃_x RW(x).
func (g *Graph) RW() *relation.Rel {
	out := relation.New(g.n())
	for x := range g.wr {
		out.UnionInPlace(g.RWObj(x))
	}
	return out
}

func unionAll(n int, m map[model.Obj]*relation.Rel) *relation.Rel {
	out := relation.New(n)
	for _, r := range m {
		out.UnionInPlace(r)
	}
	return out
}

// Objects returns the objects that carry at least one WR or WW edge.
func (g *Graph) Objects() []model.Obj {
	seen := make(map[model.Obj]bool)
	for x, r := range g.wr {
		if !r.IsEmpty() {
			seen[x] = true
		}
	}
	for x, r := range g.ww {
		if !r.IsEmpty() {
			seen[x] = true
		}
	}
	objs := make([]model.Obj, 0, len(seen))
	for _, x := range g.History.Objects() {
		if seen[x] {
			objs = append(objs, x)
		}
	}
	return objs
}

// Validate checks the well-formedness constraints of Definition 6:
//
//   - T —WR(x)→ S implies T ≠ S, T ⊢ write(x, n) and S ⊢ read(x, n)
//     for the same n;
//   - every transaction reading x has exactly one incoming WR(x) edge;
//   - WW(x) is a strict total order on WriteTx_x and relates only
//     members of WriteTx_x.
func (g *Graph) Validate() error {
	h := g.History
	for x, wr := range g.wr {
		for _, p := range wr.Pairs() {
			t, s := p[0], p[1]
			if t == s {
				return fmt.Errorf("WR(%s): self edge at %d", x, t)
			}
			rv, reads := h.Transaction(s).ReadsBeforeWrites(x)
			if !reads {
				return fmt.Errorf("WR(%s): target %d does not read %s before writing it", x, s, x)
			}
			wv, writes := h.Transaction(t).FinalWrite(x)
			if !writes {
				return fmt.Errorf("WR(%s): source %d does not write %s", x, t, x)
			}
			if rv != wv {
				return fmt.Errorf("WR(%s): %d reads %d but source %d wrote %d", x, s, rv, t, wv)
			}
		}
	}
	// Exactly one reader in-edge per read.
	for s := 0; s < g.n(); s++ {
		t := h.Transaction(s)
		for _, x := range t.Objects() {
			if !t.Reads(x) {
				continue
			}
			count := 0
			if wr, ok := g.wr[x]; ok {
				count = len(wr.Predecessors(s))
			}
			if count != 1 {
				return fmt.Errorf("WR(%s): transaction %d has %d sources, want exactly 1", x, s, count)
			}
		}
	}
	for x, ww := range g.ww {
		writers := h.WriteTx(x)
		inSet := make(map[int]bool, len(writers))
		for _, w := range writers {
			inSet[w] = true
		}
		for _, p := range ww.Pairs() {
			if !inSet[p[0]] || !inSet[p[1]] {
				return fmt.Errorf("WW(%s): edge (%d,%d) involves a non-writer", x, p[0], p[1])
			}
		}
		if !ww.IsTotalOrderOn(writers) {
			return fmt.Errorf("WW(%s): not a strict total order on WriteTx", x)
		}
	}
	// Objects written by ≥2 transactions must carry a WW order even if
	// no edge was added explicitly.
	for _, x := range h.Objects() {
		writers := h.WriteTx(x)
		if len(writers) < 2 {
			continue
		}
		ww, ok := g.ww[x]
		if !ok || !ww.IsTotalOrderOn(writers) {
			return fmt.Errorf("WW(%s): missing total order over %d writers", x, len(writers))
		}
	}
	return nil
}

// Model identifies one of the paper's consistency models.
type Model int

// The three consistency models the paper characterises, plus prefix
// consistency (PC), the §7 future-work model this module characterises
// with the same machinery.
const (
	ModelInvalid Model = iota
	SER
	SI
	PSI
	PC
	GSI
)

// String returns "SER", "SI", "PSI", "PC" or "GSI".
func (m Model) String() string {
	switch m {
	case SER:
		return "SER"
	case SI:
		return "SI"
	case PSI:
		return "PSI"
	case PC:
		return "PC"
	case GSI:
		return "GSI"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// SIComposite returns (SO ∪ WR ∪ WW) ; RW?, the relation whose
// acyclicity characterises GraphSI (Theorem 9).
func (g *Graph) SIComposite() *relation.Rel {
	base := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	return base.Compose(g.RW().Maybe())
}

// SERComposite returns SO ∪ WR ∪ WW ∪ RW, the relation whose
// acyclicity characterises GraphSER (Theorem 8).
func (g *Graph) SERComposite() *relation.Rel {
	return g.History.SessionOrder().
		UnionInPlace(g.WR()).
		UnionInPlace(g.WW()).
		UnionInPlace(g.RW())
}

// PSIComposite returns (SO ∪ WR ∪ WW)⁺ ; RW?, the relation whose
// irreflexivity characterises GraphPSI (Theorem 21).
func (g *Graph) PSIComposite() *relation.Rel {
	base := g.History.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
	return base.TransitiveClosure().Compose(g.RW().Maybe())
}

// PCComposite returns ((SO ∪ WR) ; RW?) ∪ WW, the relation whose
// acyclicity characterises prefix consistency.
//
// The characterisation is obtained by replaying the paper's §4 proof
// with the NOCONFLICT axiom dropped: write dependencies then need not
// be visible (WW ⊄ VIS), but must still agree with the commit order
// (WW ⊆ CO), so the Figure 3 inequality system becomes
//
//	SO ∪ WR ⊆ VIS    WW ⊆ CO    CO ; VIS ⊆ VIS
//	VIS ⊆ CO         CO ; CO ⊆ CO      VIS ; RW ⊆ CO
//
// whose Lemma 15-style least solution is CO = (((SO ∪ WR) ; RW?) ∪
// WW)⁺ and VIS = CO? ; (SO ∪ WR). Soundness (an execution can be
// built whenever the composite is acyclic, core.BuildExecutionPC) and
// completeness are property-tested against the axiomatic definition in
// internal/check.
func (g *Graph) PCComposite() *relation.Rel {
	soWR := g.History.SessionOrder().UnionInPlace(g.WR())
	return soWR.Compose(g.RW().Maybe()).UnionInPlace(g.WW())
}

// GSIComposite returns (WR ∪ WW) ; RW?, the relation whose acyclicity
// characterises generalised SI — the SI characterisation of Theorem 9
// with the session order dropped, obtained by replaying the §4 proof
// without the SESSION axiom (so SO ⊄ VIS is no longer forced).
func (g *Graph) GSIComposite() *relation.Rel {
	base := g.WR().UnionInPlace(g.WW())
	return base.Compose(g.RW().Maybe())
}

// InModel reports whether the graph belongs to GraphSER, GraphSI or
// GraphPSI. A nil error means membership; the error otherwise explains
// the violated condition (an INT violation or a forbidden cycle).
func (g *Graph) InModel(m Model) error {
	if err := g.History.CheckInt(); err != nil {
		return fmt.Errorf("INT: %w", err)
	}
	switch m {
	case SER:
		if !g.SERComposite().IsAcyclic() {
			return errors.New("SO ∪ WR ∪ WW ∪ RW is cyclic")
		}
	case SI:
		if !g.SIComposite().IsAcyclic() {
			return errors.New("(SO ∪ WR ∪ WW) ; RW? is cyclic")
		}
	case PSI:
		if !g.PSIComposite().IsIrreflexive() {
			return errors.New("(SO ∪ WR ∪ WW)⁺ ; RW? is not irreflexive")
		}
	case PC:
		if !g.PCComposite().IsAcyclic() {
			return errors.New("((SO ∪ WR) ; RW?) ∪ WW is cyclic")
		}
	case GSI:
		if !g.GSIComposite().IsAcyclic() {
			return errors.New("(WR ∪ WW) ; RW? is cyclic")
		}
	default:
		return fmt.Errorf("unknown model %v", m)
	}
	return nil
}

// InGSI reports membership in GraphGSI (the generalised-SI
// characterisation).
func (g *Graph) InGSI() bool { return g.InModel(GSI) == nil }

// InPC reports membership in GraphPC (the prefix-consistency
// characterisation).
func (g *Graph) InPC() bool { return g.InModel(PC) == nil }

// InSER reports membership in GraphSER (Theorem 8).
func (g *Graph) InSER() bool { return g.InModel(SER) == nil }

// InSI reports membership in GraphSI (Theorem 9).
func (g *Graph) InSI() bool { return g.InModel(SI) == nil }

// InPSI reports membership in GraphPSI (Theorem 21).
func (g *Graph) InPSI() bool { return g.InModel(PSI) == nil }

// Witness returns one forbidden cycle for the given model as a
// sequence of transaction indices (first repeated last), or nil if the
// graph is in the model. For SI and PSI the cycle is over the
// composite relation, so consecutive nodes may be connected by a
// dependency followed by an optional anti-dependency.
func (g *Graph) Witness(m Model) []int {
	switch m {
	case SER:
		return g.SERComposite().FindCycle()
	case SI:
		return g.SIComposite().FindCycle()
	case PSI:
		comp := g.PSIComposite()
		for i := 0; i < g.n(); i++ {
			if comp.Has(i, i) {
				return []int{i, i}
			}
		}
		return nil
	case PC:
		return g.PCComposite().FindCycle()
	case GSI:
		return g.GSIComposite().FindCycle()
	default:
		return nil
	}
}

// FromExecution extracts graph(X) per Definition 5 from an execution
// satisfying EXT (Proposition 23 guarantees the result is a well-
// formed dependency graph). CO must totally order the writers of every
// object read; otherwise an error is returned.
func FromExecution(x *execution.Execution) (*Graph, error) {
	h := x.History
	g := New(h)
	// WW(x): restriction of CO to WriteTx_x.
	for _, obj := range h.Objects() {
		writers := h.WriteTx(obj)
		for _, a := range writers {
			for _, b := range writers {
				if a != b && x.CO.Has(a, b) {
					g.AddWW(obj, a, b)
				}
			}
		}
	}
	// WR(x): the CO-maximal visible writer for every read.
	for s := 0; s < h.NumTransactions(); s++ {
		t := h.Transaction(s)
		for _, obj := range t.Objects() {
			if !t.Reads(obj) {
				continue
			}
			w, ok, err := visibleWriter(x, s, obj)
			if err != nil {
				return nil, fmt.Errorf("graph(X): transaction %d reads %q: %w", s, obj, err)
			}
			if !ok {
				return nil, fmt.Errorf("graph(X): transaction %d reads %q with no visible writer", s, obj)
			}
			g.AddWR(obj, w, s)
		}
	}
	return g, nil
}

// visibleWriter mirrors execution's EXT helper: max_CO(VIS⁻¹(s) ∩
// WriteTx_x).
func visibleWriter(x *execution.Execution, s int, obj model.Obj) (int, bool, error) {
	var candidates []int
	for _, w := range x.History.WriteTx(obj) {
		if x.VIS.Has(w, s) {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return 0, false, nil
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		switch {
		case x.CO.Has(best, c):
			best = c
		case x.CO.Has(c, best):
		default:
			return 0, false, fmt.Errorf("CO does not order writers %d and %d", best, c)
		}
	}
	return best, true, nil
}

// Equal reports whether two graphs over the same history have
// identical per-object WR and WW relations (and hence identical RW).
func (g *Graph) Equal(o *Graph) bool {
	if g.n() != o.n() {
		return false
	}
	objs := make(map[model.Obj]bool)
	for x := range g.wr {
		objs[x] = true
	}
	for x := range o.wr {
		objs[x] = true
	}
	for x := range g.ww {
		objs[x] = true
	}
	for x := range o.ww {
		objs[x] = true
	}
	for x := range objs {
		if !g.WRObj(x).Equal(o.WRObj(x)) || !g.WWObj(x).Equal(o.WWObj(x)) {
			return false
		}
	}
	return true
}
