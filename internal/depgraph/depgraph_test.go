package depgraph

import (
	"strings"
	"testing"

	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/relation"
)

func tx(id string, ops ...model.Op) model.Transaction { return model.NewTransaction(id, ops...) }

func sess(id string, txs ...model.Transaction) model.Session {
	return model.Session{ID: id, Transactions: txs}
}

// lostUpdate: 0 init, 1 T1, 2 T2 — Figure 2(b).
func lostUpdate() *Graph {
	h := model.NewHistory(
		sess("init", tx("init", model.Write("acct", 0))),
		sess("a", tx("T1", model.Read("acct", 0), model.Write("acct", 50))),
		sess("b", tx("T2", model.Read("acct", 0), model.Write("acct", 25))),
	)
	g := New(h)
	g.AddWR("acct", 0, 1)
	g.AddWR("acct", 0, 2)
	g.AddWW("acct", 0, 1)
	g.AddWW("acct", 0, 2)
	g.AddWW("acct", 1, 2)
	return g
}

// writeSkew: 0 init, 1 T1, 2 T2 — Figure 2(d).
func writeSkew() *Graph {
	h := model.NewHistory(
		sess("init", tx("init", model.Write("a1", 60), model.Write("a2", 60))),
		sess("a", tx("T1", model.Read("a1", 60), model.Read("a2", 60), model.Write("a1", -40))),
		sess("b", tx("T2", model.Read("a1", 60), model.Read("a2", 60), model.Write("a2", -40))),
	)
	g := New(h)
	g.AddWW("a1", 0, 1)
	g.AddWW("a2", 0, 2)
	for _, reader := range []int{1, 2} {
		g.AddWR("a1", 0, reader)
		g.AddWR("a2", 0, reader)
	}
	return g
}

// longFork: 0 init, 1 T1 (writes x), 2 T2 (writes y), 3 T3, 4 T4 —
// Figure 2(c).
func longFork() *Graph {
	h := model.NewHistory(
		sess("init", tx("init", model.Write("x", 0), model.Write("y", 0))),
		sess("a", tx("T1", model.Write("x", 1))),
		sess("b", tx("T2", model.Write("y", 1))),
		sess("c", tx("T3", model.Read("x", 1), model.Read("y", 0))),
		sess("d", tx("T4", model.Read("y", 1), model.Read("x", 0))),
	)
	g := New(h)
	g.AddWW("x", 0, 1)
	g.AddWW("y", 0, 2)
	g.AddWR("x", 1, 3)
	g.AddWR("y", 0, 3)
	g.AddWR("y", 2, 4)
	g.AddWR("x", 0, 4)
	return g
}

func TestRWDerivation(t *testing.T) {
	t.Parallel()
	g := lostUpdate()
	rw := g.RWObj("acct")
	// T1 reads init's write, overwritten by T2 ⇒ T1 —RW→ T2;
	// T2 reads init's write, overwritten by T1 ⇒ T2 —RW→ T1;
	// the diagonal candidates (T1 overwritten by T1) are excluded.
	for _, want := range [][2]int{{1, 2}, {2, 1}} {
		if !rw.Has(want[0], want[1]) {
			t.Errorf("missing RW %v", want)
		}
	}
	if rw.Size() != 2 {
		t.Errorf("RW = %v, want exactly 2 edges", rw)
	}
	if !g.RW().Equal(rw) {
		t.Error("union RW differs from per-object RW")
	}
}

func TestRWEmptyWithoutWRorWW(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(sess("a", tx("T0", model.Write("x", 1))))
	g := New(h)
	if !g.RWObj("x").IsEmpty() || !g.RW().IsEmpty() {
		t.Error("RW should be empty with no WR/WW edges")
	}
}

func TestValidateAcceptsFigures(t *testing.T) {
	t.Parallel()
	for _, g := range []*Graph{lostUpdate(), writeSkew(), longFork()} {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		sess("init", tx("init", model.Write("x", 0))),
		sess("a", tx("T1", model.Read("x", 0), model.Write("x", 1))),
		sess("b", tx("T2", model.Read("x", 0))),
	)
	tests := []struct {
		name  string
		build func() *Graph
		want  string
	}{
		{
			name: "self WR edge",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 1, 1)
				return g
			},
			want: "self edge",
		},
		{
			name: "value mismatch",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 1, 2) // T1 wrote 1 but T2 read 0
				g.AddWR("x", 0, 1)
				g.AddWW("x", 0, 1)
				return g
			},
			want: "read",
		},
		{
			name: "missing WR source",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 0, 1) // T2's read unsourced
				g.AddWW("x", 0, 1)
				return g
			},
			want: "sources",
		},
		{
			name: "two WR sources",
			build: func() *Graph {
				// T2 reads 0, written finally by init only; fake a
				// second source by targeting T1's read instead.
				g := New(h)
				g.AddWR("x", 0, 1)
				g.AddWR("x", 0, 2)
				g.AddWR("x", 0, 2) // duplicate is idempotent, so use ww trick below
				g.AddWW("x", 0, 1)
				return g
			},
			want: "", // this graph is actually valid; see distinct test below
		},
		{
			name: "WW not total",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 0, 1)
				g.AddWR("x", 0, 2)
				return g // two writers of x (init, T1) but no WW order
			},
			want: "total order",
		},
		{
			name: "WW involves non-writer",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 0, 1)
				g.AddWR("x", 0, 2)
				g.AddWW("x", 0, 1)
				g.AddWW("x", 0, 2) // T2 does not write x
				return g
			},
			want: "non-writer",
		},
		{
			name: "WR source does not write",
			build: func() *Graph {
				g := New(h)
				g.AddWR("x", 2, 1) // T2 writes nothing
				g.AddWR("x", 0, 2)
				g.AddWW("x", 0, 1)
				return g
			},
			want: "does not write",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if tc.want == "" {
				if err != nil {
					t.Errorf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate accepted an ill-formed graph")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsTwoSources(t *testing.T) {
	t.Parallel()
	// Two transactions both finally write 0 to x; a third reads 0 with
	// two WR sources.
	h := model.NewHistory(
		sess("a", tx("W1", model.Write("x", 0))),
		sess("b", tx("W2", model.Write("x", 0))),
		sess("c", tx("R", model.Read("x", 0))),
	)
	g := New(h)
	g.AddWR("x", 0, 2)
	g.AddWR("x", 1, 2)
	g.AddWW("x", 0, 1)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "2 sources") {
		t.Errorf("two WR sources not rejected: %v", err)
	}
}

func TestModelMembershipOfFigures(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name         string
		g            *Graph
		ser, si, psi bool
	}{
		{"lost update (2b)", lostUpdate(), false, false, false},
		{"write skew (2d)", writeSkew(), false, true, true},
		{"long fork (2c)", longFork(), false, false, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.InSER(); got != tc.ser {
				t.Errorf("InSER = %v, want %v (%v)", got, tc.ser, tc.g.InModel(SER))
			}
			if got := tc.g.InSI(); got != tc.si {
				t.Errorf("InSI = %v, want %v (%v)", got, tc.si, tc.g.InModel(SI))
			}
			if got := tc.g.InPSI(); got != tc.psi {
				t.Errorf("InPSI = %v, want %v (%v)", got, tc.psi, tc.g.InModel(PSI))
			}
		})
	}
}

func TestWitness(t *testing.T) {
	t.Parallel()
	g := lostUpdate()
	for _, m := range []Model{SER, SI, PSI} {
		w := g.Witness(m)
		if w == nil {
			t.Errorf("no %v witness for lost update", m)
		}
	}
	ws := writeSkew()
	if w := ws.Witness(SER); w == nil {
		t.Error("write skew should have a SER witness cycle")
	}
	if w := ws.Witness(SI); w != nil {
		t.Errorf("write skew is in GraphSI; unexpected witness %v", w)
	}
	if w := New(model.NewHistory()).Witness(Model(99)); w != nil {
		t.Error("unknown model should have nil witness")
	}
}

func TestInModelRejectsINTViolation(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(sess("a", tx("T0", model.Write("x", 1), model.Read("x", 2))))
	g := New(h)
	for _, m := range []Model{SER, SI, PSI} {
		err := g.InModel(m)
		if err == nil || !strings.Contains(err.Error(), "INT") {
			t.Errorf("%v: INT violation not reported: %v", m, err)
		}
	}
	if err := g.InModel(Model(99)); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestSERSubsetOfSISubsetOfPSI(t *testing.T) {
	t.Parallel()
	// On the figures: SER membership implies SI implies PSI.
	for _, g := range []*Graph{lostUpdate(), writeSkew(), longFork()} {
		if g.InSER() && !g.InSI() {
			t.Error("GraphSER ⊄ GraphSI")
		}
		if g.InSI() && !g.InPSI() {
			t.Error("GraphSI ⊄ GraphPSI")
		}
	}
}

func TestFromExecution(t *testing.T) {
	t.Parallel()
	// Serial execution: init < T1 < T2 with full visibility.
	h := model.NewHistory(
		sess("init", tx("init", model.Write("x", 0))),
		sess("a", tx("T1", model.Read("x", 0), model.Write("x", 1))),
		sess("b", tx("T2", model.Read("x", 1))),
	)
	co := relation.New(3)
	co.Add(0, 1)
	co.Add(0, 2)
	co.Add(1, 2)
	x := execution.New(h, co.Clone(), co)
	g, err := FromExecution(x)
	if err != nil {
		t.Fatalf("FromExecution: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("extracted graph invalid: %v", err)
	}
	if !g.WRObj("x").Has(0, 1) || !g.WRObj("x").Has(1, 2) {
		t.Errorf("WR = %v", g.WRObj("x"))
	}
	if !g.WWObj("x").Has(0, 1) || g.WWObj("x").Size() != 1 {
		t.Errorf("WW = %v", g.WWObj("x"))
	}
	if !g.InSER() {
		t.Error("serial execution's graph should be in GraphSER")
	}
}

func TestFromExecutionWriteSkew(t *testing.T) {
	t.Parallel()
	gWant := writeSkew()
	h := gWant.History
	vis := relation.New(3)
	vis.Add(0, 1)
	vis.Add(0, 2)
	co := vis.Clone()
	co.Add(1, 2)
	x := execution.New(h, vis, co)
	g, err := FromExecution(x)
	if err != nil {
		t.Fatalf("FromExecution: %v", err)
	}
	if !g.Equal(gWant) {
		t.Error("extracted graph differs from the Figure 2(d) graph")
	}
}

func TestFromExecutionUnorderedWriters(t *testing.T) {
	t.Parallel()
	// Two writers unrelated by CO and a reader seeing both: the
	// CO-max is undefined and extraction must fail.
	h := model.NewHistory(
		sess("a", tx("W1", model.Write("x", 1))),
		sess("b", tx("W2", model.Write("x", 2))),
		sess("c", tx("R", model.Read("x", 2))),
	)
	vis := relation.New(3)
	vis.Add(0, 2)
	vis.Add(1, 2)
	x := execution.New(h, vis, vis.Clone())
	if _, err := FromExecution(x); err == nil {
		t.Error("expected error for CO-unordered visible writers")
	}
}

func TestEqual(t *testing.T) {
	t.Parallel()
	a, b := writeSkew(), writeSkew()
	if !a.Equal(b) {
		t.Error("identical graphs not Equal")
	}
	b.AddWW("a1", 1, 2) // extra edge (ill-formed, but Equal is structural)
	if a.Equal(b) {
		t.Error("graphs with different WW reported Equal")
	}
	if a.Equal(lostUpdate()) {
		t.Error("different-history graphs reported Equal")
	}
}

func TestObjects(t *testing.T) {
	t.Parallel()
	g := longFork()
	objs := g.Objects()
	if len(objs) != 2 || objs[0] != "x" || objs[1] != "y" {
		t.Errorf("Objects = %v", objs)
	}
}

func TestModelString(t *testing.T) {
	t.Parallel()
	if SER.String() != "SER" || SI.String() != "SI" || PSI.String() != "PSI" {
		t.Error("Model.String broken")
	}
	if !strings.Contains(Model(42).String(), "42") {
		t.Error("unknown model String should include the number")
	}
}
