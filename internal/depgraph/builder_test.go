package depgraph

import (
	"math/rand"
	"testing"

	"sian/internal/model"
)

// builderHistory is a small multi-session, multi-object history for
// exercising the builder. Edge validity does not matter for these
// tests (composites are pure relational algebra), only the carrier
// size and the session order.
func builderHistory() *model.History {
	return model.NewHistory(
		sess("s1", tx("A", model.Write("x", 1)), tx("B", model.Write("y", 1))),
		sess("s2", tx("C", model.Write("x", 2)), tx("D", model.Write("y", 2))),
		sess("s3", tx("E", model.Read("x", 1)), tx("F", model.Read("y", 2))),
	)
}

var builderModels = []Model{SER, SI, PSI, PC, GSI}

// graphAgrees checks Builder.InModel against the immutable Graph's
// composite characterisations (skipping the INT check, which is not
// the builder's concern).
func graphAgrees(t *testing.T, b *Builder, g *Graph, m Model) {
	t.Helper()
	var want bool
	switch m {
	case SER:
		want = g.SERComposite().IsAcyclic()
	case SI:
		want = g.SIComposite().IsAcyclic()
	case PSI:
		want = g.PSIComposite().IsIrreflexive()
	case PC:
		want = g.PCComposite().IsAcyclic()
	case GSI:
		want = g.GSIComposite().IsAcyclic()
	}
	got := b.InModel() == nil
	if got != want {
		t.Fatalf("%v: builder member=%v, composite member=%v\nWR=%v\nWW=%v",
			m, got, want, g.WR(), g.WW())
	}
}

// TestBuilderMatchesGraph drives random WR/WW edge sequences with
// nested mark/undo through a Builder and cross-checks membership and
// snapshots against graphs rebuilt from scratch, for every model.
func TestBuilderMatchesGraph(t *testing.T) {
	t.Parallel()
	h := builderHistory()
	n := h.NumTransactions()
	objs := []model.Obj{"x", "y"}
	rng := rand.New(rand.NewSource(7))
	for _, m := range builderModels {
		for trial := 0; trial < 60; trial++ {
			b := NewBuilder(h, m)
			g := New(h)
			type frame struct {
				mark BuilderMark
				g    *Graph
			}
			var stack []frame
			cloneG := func() *Graph {
				c := New(h)
				for _, x := range objs {
					for _, p := range g.WRObj(x).Pairs() {
						c.AddWR(x, p[0], p[1])
					}
					for _, p := range g.WWObj(x).Pairs() {
						c.AddWW(x, p[0], p[1])
					}
				}
				return c
			}
			for step := 0; step < 30; step++ {
				switch {
				case len(stack) > 0 && rng.Intn(4) == 0:
					f := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					b.Undo(f.mark)
					g = f.g
				case rng.Intn(3) == 0:
					stack = append(stack, frame{mark: b.Mark(), g: cloneG()})
				default:
					x := objs[rng.Intn(len(objs))]
					a, c := rng.Intn(n), rng.Intn(n)
					if a == c {
						continue
					}
					if rng.Intn(2) == 0 {
						b.ApplyWR(x, a, c)
						g.AddWR(x, a, c)
					} else {
						b.ApplyWW(x, a, c)
						g.AddWW(x, a, c)
					}
				}
				graphAgrees(t, b, g, m)
				if snap := b.Snapshot(); !snap.Equal(g) {
					t.Fatalf("%v trial %d step %d: snapshot diverged from reference graph", m, trial, step)
				}
				if cyc := b.Cyclic(); m != GSI {
					base := h.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW())
					if cyc != !base.TransitiveClosure().IsIrreflexive() {
						t.Fatalf("%v trial %d step %d: Cyclic()=%v disagrees with batch closure", m, trial, step, cyc)
					}
				}
			}
		}
	}
}

// TestBuilderReaches pins the forced-precedence oracle to the batch
// closure of the base relation.
func TestBuilderReaches(t *testing.T) {
	t.Parallel()
	h := builderHistory()
	n := h.NumTransactions()
	b := NewBuilder(h, SI)
	b.ApplyWR("x", 0, 4)
	b.ApplyWW("x", 0, 2)
	g := New(h)
	g.AddWR("x", 0, 4)
	g.AddWW("x", 0, 2)
	want := h.SessionOrder().UnionInPlace(g.WR()).UnionInPlace(g.WW()).TransitiveClosure()
	for a := 0; a < n; a++ {
		for c := 0; c < n; c++ {
			if b.Reaches(a, c) != want.Has(a, c) {
				t.Fatalf("Reaches(%d,%d)=%v, batch closure says %v", a, c, b.Reaches(a, c), want.Has(a, c))
			}
		}
	}
}

// TestBuilderRederivesRW checks that undoing one witness of an
// anti-dependency keeps the pair while another witness remains.
func TestBuilderRederivesRW(t *testing.T) {
	t.Parallel()
	h := builderHistory()
	b := NewBuilder(h, SI)
	// Witness 1: WR(x)(0,4), WW(x)(0,2) ⟹ RW(4,2).
	b.ApplyWR("x", 0, 4)
	b.ApplyWW("x", 0, 2)
	mark := b.Mark()
	// Witness 2 for the same pair via object y.
	b.ApplyWR("y", 1, 4)
	b.ApplyWW("y", 1, 2)
	b.Undo(mark)
	if !b.Snapshot().RW().Has(4, 2) {
		t.Fatal("undoing the second witness dropped a still-derivable RW pair")
	}
	b2 := NewBuilder(h, SI)
	b2.ApplyWR("x", 0, 4)
	b2.ApplyWW("x", 0, 2)
	if !b.Snapshot().Equal(b2.Snapshot()) {
		t.Fatal("undo did not restore the exact edge set")
	}
}

// TestBuilderStats checks the observability totals move.
func TestBuilderStats(t *testing.T) {
	t.Parallel()
	h := builderHistory()
	b := NewBuilder(h, SI)
	m := b.Mark()
	b.ApplyWR("x", 0, 4)
	b.Undo(m)
	undo, delta := b.Stats()
	if undo == 0 || delta == 0 {
		t.Errorf("stats not recorded: undo=%d delta=%d", undo, delta)
	}
}
