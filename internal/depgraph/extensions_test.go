package depgraph

import (
	"strings"
	"testing"

	"sian/internal/model"
)

// TestPCAndGSIMemberships exercises the extension-model composites on
// the in-package figure graphs.
func TestPCAndGSIMemberships(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		g       *Graph
		pc, gsi bool
	}{
		{"lost update", lostUpdate(), true, false},
		{"write skew", writeSkew(), true, true},
		{"long fork", longFork(), false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.InPC(); got != tc.pc {
				t.Errorf("InPC = %v, want %v (%v)", got, tc.pc, tc.g.InModel(PC))
			}
			if got := tc.g.InGSI(); got != tc.gsi {
				t.Errorf("InGSI = %v, want %v (%v)", got, tc.gsi, tc.g.InModel(GSI))
			}
		})
	}
	if PC.String() != "PC" || GSI.String() != "GSI" {
		t.Error("extension model strings broken")
	}
}

// TestExtensionWitnesses: the long fork yields a PC witness cycle; the
// lost update a GSI one.
func TestExtensionWitnesses(t *testing.T) {
	t.Parallel()
	if w := longFork().Witness(PC); len(w) < 2 {
		t.Errorf("PC witness = %v", w)
	}
	if w := lostUpdate().Witness(GSI); len(w) < 2 {
		t.Errorf("GSI witness = %v", w)
	}
	if w := writeSkew().Witness(PC); w != nil {
		t.Errorf("unexpected PC witness %v", w)
	}
}

// TestGSIIgnoresSessionOrder: a same-session stale read is a GSI
// member but violates SI purely through SO.
func TestGSIIgnoresSessionOrder(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		sess("init", tx("init", model.Write("x", 0))),
		sess("s", tx("T1", model.Write("x", 1)), tx("T2", model.Read("x", 0))),
	)
	g := New(h)
	g.AddWW("x", 0, 1)
	g.AddWR("x", 0, 2)
	if !g.InGSI() {
		t.Errorf("stale session read outside GraphGSI: %v", g.InModel(GSI))
	}
	if g.InSI() {
		t.Error("stale session read inside GraphSI")
	}
	err := g.InModel(SI)
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("SI rejection reason: %v", err)
	}
}
