// Package kvstore provides the multi-version key-value storage
// substrate used by the transactional engines in internal/engine.
//
// A Store keeps, per object, a chain of versions ordered by a caller-
// supplied logical timestamp. Snapshot reads (ReadAt) return the
// latest version at or below a timestamp — exactly the primitive the
// SI concurrency-control algorithm of §1 of the paper needs ("a
// transaction reads values of shared objects from a snapshot taken at
// its start"), and the one each parallel-SI replica needs for its
// local snapshots. Garbage collection truncates chains below a
// caller-chosen watermark.
//
// The store is safe for concurrent use.
package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"sian/internal/model"
)

// Version is one committed version of an object.
type Version struct {
	// Val is the value written.
	Val model.Value
	// TS is the logical commit timestamp; chains are strictly
	// increasing in TS.
	TS uint64
	// Writer optionally identifies the committing transaction for
	// diagnostics and conflict attribution.
	Writer string
	// Meta carries engine-specific metadata (e.g. the global
	// write-sequence stamp the PSI engine uses for conflict checks).
	Meta uint64
}

// Store is a multi-version key-value store. The zero value is ready to
// use.
type Store struct {
	mu     sync.RWMutex
	chains map[model.Obj][]Version
}

// New returns an empty store. Equivalent to new(Store); provided for
// symmetry with the rest of the module.
func New() *Store { return &Store{} }

// Install appends a version to the object's chain. The version's
// timestamp must strictly exceed the current latest; otherwise an
// error is returned and the store is unchanged.
func (s *Store) Install(x model.Obj, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chains == nil {
		s.chains = make(map[model.Obj][]Version)
	}
	chain := s.chains[x]
	if len(chain) > 0 && chain[len(chain)-1].TS >= v.TS {
		return fmt.Errorf("kvstore: non-monotonic install on %q: ts %d ≤ latest %d",
			x, v.TS, chain[len(chain)-1].TS)
	}
	s.chains[x] = append(chain, v)
	return nil
}

// ReadAt returns the latest version of x with TS ≤ ts, if any.
func (s *Store) ReadAt(x model.Obj, ts uint64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[x]
	// Chains are sorted by TS; binary-search the first version > ts.
	i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > ts })
	if i == 0 {
		return Version{}, false
	}
	return chain[i-1], true
}

// Latest returns the most recent version of x, if any.
func (s *Store) Latest(x model.Obj) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[x]
	if len(chain) == 0 {
		return Version{}, false
	}
	return chain[len(chain)-1], true
}

// LatestTS returns the timestamp of the most recent version of x, or
// zero when x has never been written.
func (s *Store) LatestTS(x model.Obj) uint64 {
	v, ok := s.Latest(x)
	if !ok {
		return 0
	}
	return v.TS
}

// Objects returns the sorted list of objects with at least one
// version.
func (s *Store) Objects() []model.Obj {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Obj, 0, len(s.chains))
	for x := range s.chains {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VersionCount returns the number of stored versions of x.
func (s *Store) VersionCount(x model.Obj) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[x])
}

// Clone returns a deep copy of the store (used for replica state
// transfer).
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := &Store{chains: make(map[model.Obj][]Version, len(s.chains))}
	for x, chain := range s.chains {
		cp := make([]Version, len(chain))
		copy(cp, chain)
		out.chains[x] = cp
	}
	return out
}

// GC drops all versions of every object that are older than the
// latest version with TS ≤ watermark (which is kept, since snapshot
// reads at or above the watermark may still need it). It returns the
// number of versions discarded.
func (s *Store) GC(watermark uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for x, chain := range s.chains {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > watermark })
		// chain[i-1] is the version a read at the watermark returns;
		// everything before it is unreachable for ts ≥ watermark.
		if i > 1 {
			keep := make([]Version, len(chain)-(i-1))
			copy(keep, chain[i-1:])
			s.chains[x] = keep
			dropped += i - 1
		}
	}
	return dropped
}
