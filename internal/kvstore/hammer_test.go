package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"sian/internal/model"
)

// refStore is the seed engine's single-lock store: one RWMutex around
// one chain map. It is the reference implementation the sharded store
// is differentially pinned against.
type refStore struct {
	mu     sync.RWMutex
	chains map[model.Obj][]Version
}

func (s *refStore) install(x model.Obj, v Version) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chains == nil {
		s.chains = make(map[model.Obj][]Version)
	}
	chain := s.chains[x]
	if len(chain) > 0 && chain[len(chain)-1].TS >= v.TS {
		return fmt.Errorf("ref: non-monotonic install on %q", x)
	}
	s.chains[x] = append(chain, v)
	return nil
}

func (s *refStore) readAt(x model.Obj, ts uint64) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[x]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > ts })
	if i == 0 {
		return Version{}, false
	}
	return chain[i-1], true
}

func (s *refStore) gc(watermark uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for x, chain := range s.chains {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].TS > watermark })
		if i > 1 {
			keep := make([]Version, len(chain)-(i-1))
			copy(keep, chain[i-1:])
			s.chains[x] = keep
			dropped += i - 1
		}
	}
	return dropped
}

// hammerOp is one entry of a randomized op log: an install of version
// ts onto obj, or (install=false) a read probe at ts.
type hammerOp struct {
	obj     model.Obj
	ts      uint64
	install bool
}

// TestHammerDifferential pins the sharded store to the seed
// single-lock store on a randomized op log. The log is generated with
// per-object monotonically increasing install timestamps, partitioned
// across goroutines by object (so concurrent application is
// deterministic per chain), applied concurrently to the sharded store
// while readers probe it, then replayed sequentially into the
// reference store; every chain and every read probe must agree.
// Run under -race in CI.
func TestHammerDifferential(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			const objects = 24
			const opsPerObj = 60

			// Per-object op logs with strictly increasing timestamps.
			logs := make([][]hammerOp, objects)
			for o := range logs {
				obj := model.Obj(fmt.Sprintf("h%d", o))
				ts := uint64(0)
				for i := 0; i < opsPerObj; i++ {
					ts += 1 + uint64(rng.Intn(5))
					logs[o] = append(logs[o], hammerOp{obj: obj, ts: ts, install: rng.Intn(4) != 0})
				}
			}

			sharded := New()
			var wg sync.WaitGroup
			for o := range logs {
				wg.Add(1)
				go func(log []hammerOp) {
					defer wg.Done()
					for _, op := range log {
						if op.install {
							if err := sharded.Install(op.obj, Version{Val: model.Value(op.ts), TS: op.ts}); err != nil {
								t.Errorf("Install(%s,%d): %v", op.obj, op.ts, err)
								return
							}
						} else {
							// Probe concurrently; the value, if present, must
							// be the timestamp it was installed with.
							if v, ok := sharded.ReadAt(op.obj, op.ts); ok && uint64(v.Val) != v.TS {
								t.Errorf("ReadAt(%s,%d) returned torn version %+v", op.obj, op.ts, v)
								return
							}
						}
					}
				}(logs[o])
			}
			// Cross-object readers exercising the batch paths while
			// installs run.
			stop := make(chan struct{})
			var readers sync.WaitGroup
			readers.Add(1)
			go func() {
				defer readers.Done()
				probe := make([]model.Obj, objects)
				for o := range probe {
					probe[o] = model.Obj(fmt.Sprintf("h%d", o))
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					vs, oks := sharded.ReadAtBatch(probe, uint64(1+rng.Intn(200)))
					for i := range vs {
						if oks[i] && uint64(vs[i].Val) != vs[i].TS {
							t.Errorf("ReadAtBatch returned torn version %+v", vs[i])
							return
						}
					}
					sharded.LatestTSBatch(probe)
				}
			}()
			wg.Wait()
			close(stop)
			readers.Wait()

			// Sequential replay into the reference store.
			ref := &refStore{}
			for _, log := range logs {
				for _, op := range log {
					if op.install {
						if err := ref.install(op.obj, Version{Val: model.Value(op.ts), TS: op.ts}); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Differential read sweep over every object and timestamp.
			compare := func() {
				for _, log := range logs {
					for ts := uint64(0); ts <= log[len(log)-1].ts+1; ts++ {
						got, gok := sharded.ReadAt(log[0].obj, ts)
						want, wok := ref.readAt(log[0].obj, ts)
						if gok != wok || got != want {
							t.Fatalf("ReadAt(%s,%d): sharded (%+v,%v) != ref (%+v,%v)",
								log[0].obj, ts, got, gok, want, wok)
						}
					}
				}
			}
			compare()

			// GC both at the same watermark; drop counts and post-GC
			// reads must agree.
			watermark := uint64(rng.Intn(200))
			if g, w := sharded.GC(watermark), ref.gc(watermark); g != w {
				t.Fatalf("GC(%d): sharded dropped %d, ref dropped %d", watermark, g, w)
			}
			compare()
		})
	}
}

// TestInstallBatchMatchesSequential pins InstallBatch to the
// semantics of per-object Install calls.
func TestInstallBatchMatchesSequential(t *testing.T) {
	t.Parallel()
	batch := New()
	seq := New()
	var ws []Write
	for i := 0; i < 50; i++ {
		obj := model.Obj(fmt.Sprintf("b%d", i%7))
		v := Version{Val: model.Value(i), TS: uint64(i + 1), Meta: uint64(i)}
		ws = append(ws, Write{Obj: obj, Version: v})
		if err := seq.Install(obj, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.InstallBatch(ws); err != nil {
		t.Fatal(err)
	}
	for _, obj := range seq.Objects() {
		if batch.VersionCount(obj) != seq.VersionCount(obj) {
			t.Errorf("%s: batch %d versions, seq %d", obj, batch.VersionCount(obj), seq.VersionCount(obj))
		}
		for ts := uint64(0); ts <= 51; ts++ {
			got, gok := batch.ReadAt(obj, ts)
			want, wok := seq.ReadAt(obj, ts)
			if gok != wok || got != want {
				t.Fatalf("ReadAt(%s,%d) mismatch", obj, ts)
			}
		}
	}
	// A non-monotonic batch write surfaces the install error.
	if err := batch.InstallBatch([]Write{{Obj: "b0", Version: Version{TS: 1}}}); err == nil {
		t.Error("non-monotonic batch accepted")
	}
}

// TestLockObjsWindow exercises the commit-window lock: validation and
// installation under LockObjs must be atomic against a concurrent
// commit of an overlapping write set.
func TestLockObjsWindow(t *testing.T) {
	t.Parallel()
	s := New()
	objs := []model.Obj{"x", "y"}
	const rounds = 200
	var wins [2]int
	var wg sync.WaitGroup
	start := make(chan int, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := range start {
				l := s.LockObjs(objs)
				ok := true
				for _, x := range objs {
					if l.LatestTS(x) > uint64(round) {
						ok = false
					}
				}
				if ok {
					for _, x := range objs {
						if err := l.Install(x, Version{Val: model.Value(w), TS: uint64(round + 1)}); err != nil {
							t.Errorf("install: %v", err)
						}
					}
					wins[w]++ // guarded: only one goroutine can win a round
				}
				l.Unlock()
			}
		}(w)
	}
	// Feed each round to both workers; first-committer-wins must hold
	// per round, so total installs per object equal total won rounds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for r := 0; r < rounds; r += 1 {
		start <- r
		start <- r
	}
	close(start)
	<-done
	total := wins[0] + wins[1]
	if got := s.VersionCount("x"); got != total || got != s.VersionCount("y") {
		t.Errorf("versions x=%d y=%d, want both %d (wins %v)", s.VersionCount("x"), s.VersionCount("y"), total, wins)
	}
}
