package check

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/obs"
)

// readSite is one transaction-level external read (T ⊢ read(x, v)).
type readSite struct {
	reader     int
	obj        model.Obj
	val        model.Value
	candidates []int
}

// choice records the decisions identifying one node of the search
// tree: the WR source chosen for every read site and the write orders
// placed so far. The search journal-mutates a single builder, so
// instead of cloning graphs for diagnostics it records choices and
// replays the interesting ones (the last candidate, the last pruned
// branch) into fresh graphs once the search is over.
type choice struct {
	wr     []int   // writer chosen for reads[i]
	orders [][]int // write order chosen for objs[0 .. len(orders))
}

// search carries the state of the dependency-graph search. The
// top-level WR assignment space is split into lexicographic branches
// (prefixes of read-site candidate choices) that a bounded worker pool
// explores concurrently; within a branch the search is a sequential
// mutate-and-undo DFS on one depgraph.Builder.
type search struct {
	h           *model.History
	m           depgraph.Model
	budget      int
	parallelism int
	pinned      int // index forced first in every WW order, or -1
	reads       []readSite
	objs        []model.Obj // objects with ≥2 writers needing a WW order
	writers     map[model.Obj][]int

	// Shared across branch workers.
	examined atomic.Int64 // candidates tested, bounds the budget
	winner   atomic.Int64 // lowest branch index that found a member
	minErr   atomic.Int64 // lowest branch index that stopped on an error

	// lastCandidate is the most recent complete candidate graph in
	// deterministic (sequential) order; when the search ends negative
	// with one candidate examined it is the definitive rejection
	// explanation. lastPruned is the most recent partial graph whose
	// dependencies were already cyclic.
	lastCandidate *depgraph.Graph
	lastPruned    *depgraph.Graph

	// Optional observability (all nil-safe no-ops when unset).
	tracer    *obs.Tracer
	cExamined *obs.Counter
	cPruned   *obs.Counter
	cWR       *obs.Counter
	cUndo     *obs.Counter
	cDelta    *obs.Counter
	cWorkers  *obs.Counter
}

func newSearch(h *model.History, m depgraph.Model, budget, parallelism, pinned int) (*search, error) {
	s := &search{h: h, m: m, budget: budget, parallelism: parallelism, pinned: pinned,
		writers: make(map[model.Obj][]int)}
	s.winner.Store(math.MaxInt64)
	s.minErr.Store(math.MaxInt64)
	n := h.NumTransactions()
	for i := 0; i < n; i++ {
		t := h.Transaction(i)
		for _, x := range t.Objects() {
			v, reads := t.ReadsBeforeWrites(x)
			if !reads {
				continue
			}
			site := readSite{reader: i, obj: x, val: v}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if w, ok := h.Transaction(j).FinalWrite(x); ok && w == v {
					site.candidates = append(site.candidates, j)
				}
			}
			if len(site.candidates) == 0 {
				return nil, fmt.Errorf("check: transaction %d reads (%s, %d) never finally written", i, x, v)
			}
			s.reads = append(s.reads, site)
		}
	}
	for _, x := range h.Objects() {
		w := h.WriteTx(x)
		s.writers[x] = w
		if len(w) >= 2 {
			s.objs = append(s.objs, x)
		}
	}
	return s, nil
}

// planBranches picks the branch decomposition: the shortest read-site
// prefix whose candidate combinations give at least ~4 branches per
// worker (bounded to keep the plan small). With Parallelism 1 the
// whole space is one branch and the search is exactly the sequential
// DFS.
func (s *search) planBranches() (depth, total int) {
	total = 1
	if s.parallelism <= 1 {
		return 0, 1
	}
	const maxBranches = 1 << 12
	target := s.parallelism * 4
	for depth < len(s.reads) && total < target {
		c := len(s.reads[depth].candidates)
		if total*c > maxBranches {
			break
		}
		total *= c
		depth++
	}
	return depth, total
}

// branchResult is the outcome of one branch, merged deterministically
// after all workers join.
type branchResult struct {
	found         *depgraph.Graph // member snapshot, nil if none
	foundExamined int64           // branch-local candidates tested up to the find
	err           error
	fullExamined  int64 // branch-local candidates tested in total
	lastCandidate *choice
	lastPruned    *choice
}

// run performs the search and returns the first member graph in the
// deterministic exploration order (nil if none), the number of
// candidates examined, and an error for budget exhaustion or
// unsearchable write sets.
func (s *search) run() (*depgraph.Graph, int, error) {
	depth, branches := s.planBranches()
	results := make([]branchResult, branches)
	workers := s.parallelism
	if workers > branches {
		workers = branches
	}
	if workers < 1 {
		workers = 1
	}
	s.cWorkers.Add(int64(workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := next.Add(1) - 1
				if idx >= int64(branches) {
					return
				}
				// A lower branch already decided the outcome: everything
				// from here on would be dead work the sequential search
				// never performed.
				if s.winner.Load() < idx || s.minErr.Load() < idx {
					continue
				}
				s.runBranch(idx, depth, &results[idx])
			}
		}()
	}
	wg.Wait()
	return s.merge(results)
}

// runBranch explores one lexicographic prefix of the WR assignment
// space on its own builder.
func (s *search) runBranch(idx int64, depth int, res *branchResult) {
	b := &branchRun{
		s: s, idx: idx, res: res,
		bld:       depgraph.NewBuilder(s.h, s.m),
		curWR:     make([]int, len(s.reads)),
		curOrders: make([][]int, len(s.objs)),
	}
	// Decode the branch index into candidate choices for the prefix
	// sites, most-significant site first (lexicographic = DFS order).
	stride := int64(1)
	for i := depth - 1; i >= 0; i-- {
		c := int64(len(s.reads[i].candidates))
		digit := (idx / stride) % c
		b.curWR[i] = s.reads[i].candidates[digit]
		stride *= c
	}
	for i := 0; i < depth; i++ {
		site := s.reads[i]
		s.cWR.Inc()
		b.bld.ApplyWR(site.obj, b.curWR[i], site.reader)
	}
	found, err := b.assignReads(depth)
	res.fullExamined = b.localExamined
	if err != nil {
		res.err = err
		casMin(&s.minErr, idx)
	} else if found {
		res.found = b.bld.Snapshot()
		res.foundExamined = b.localExamined
		casMin(&s.winner, idx)
	}
	undo, delta := b.bld.Stats()
	s.cUndo.Add(undo)
	s.cDelta.Add(delta)
}

// merge combines the branch results in deterministic branch order:
// the first decisive event (member found or terminal error) in
// sequential exploration order wins.
func (s *search) merge(results []branchResult) (*depgraph.Graph, int, error) {
	winner := s.winner.Load()
	errIdx := s.minErr.Load()
	if winner < errIdx {
		// Every branch below the winner ran to completion without
		// finding, so the examined count up to the find is the
		// sequential one.
		var examined int64
		for j := int64(0); j < winner; j++ {
			examined += results[j].fullExamined
		}
		examined += results[winner].foundExamined
		return results[winner].found, int(examined), nil
	}
	if errIdx != math.MaxInt64 {
		return nil, int(s.examined.Load()), results[errIdx].err
	}
	// Negative verdict: all branches completed. Replay the last
	// recorded diagnostics in sequential order (branches are
	// consecutive segments of the DFS, so the highest branch holding
	// one recorded it last).
	for j := len(results) - 1; j >= 0; j-- {
		if results[j].lastCandidate != nil {
			s.lastCandidate = s.replay(results[j].lastCandidate)
			break
		}
	}
	for j := len(results) - 1; j >= 0; j-- {
		if results[j].lastPruned != nil {
			s.lastPruned = s.replay(results[j].lastPruned)
			break
		}
	}
	return nil, int(s.examined.Load()), nil
}

// replay rebuilds the dependency graph a recorded choice identifies.
func (s *search) replay(c *choice) *depgraph.Graph {
	g := depgraph.New(s.h)
	for i, w := range c.wr {
		g.AddWR(s.reads[i].obj, w, s.reads[i].reader)
	}
	for oi, order := range c.orders {
		x := s.objs[oi]
		for i := range order {
			for j := i + 1; j < len(order); j++ {
				g.AddWW(x, order[i], order[j])
			}
		}
	}
	return g
}

// branchRun is the per-branch DFS state: one builder mutated in place
// plus the current decision vector for diagnostics.
type branchRun struct {
	s             *search
	idx           int64
	bld           *depgraph.Builder
	curWR         []int
	curOrders     [][]int
	localExamined int64
	res           *branchResult
}

// aborted reports whether a lower-indexed branch has already decided
// the search outcome, making this branch's remainder dead work.
// Branches below the eventual winner never abort, which is what keeps
// the merged result deterministic.
func (b *branchRun) aborted() bool {
	return b.s.winner.Load() < b.idx || b.s.minErr.Load() < b.idx
}

// assignReads chooses a WR source for every read site from b.start
// on, then moves on to WW orders.
func (b *branchRun) assignReads(i int) (bool, error) {
	if b.aborted() {
		return false, nil
	}
	if i == len(b.s.reads) {
		return b.orderWrites(0)
	}
	site := b.s.reads[i]
	for _, w := range site.candidates {
		b.s.cWR.Inc()
		mark := b.bld.Mark()
		b.bld.ApplyWR(site.obj, w, site.reader)
		b.curWR[i] = w
		found, err := b.assignReads(i + 1)
		if found || err != nil {
			return found, err // keep the builder state for Snapshot
		}
		b.bld.Undo(mark)
	}
	return false, nil
}

// orderWrites chooses a total WW order for each multi-writer object.
// Rather than enumerating all k! permutations, it only enumerates
// linear extensions of the precedence already forced on the writers by
// (SO ∪ WR ∪ WW-chosen-so-far)⁺: ordering two base-related writers
// against the base relation would create a base cycle, which excludes
// membership in every model (RW? is reflexive, so every base cycle is
// a composite cycle). The precedence comes straight from the
// builder's maintained closure instead of a per-node recomputation.
func (b *branchRun) orderWrites(oi int) (bool, error) {
	if b.aborted() {
		return false, nil
	}
	s := b.s
	if oi == len(s.objs) {
		total := s.examined.Add(1)
		b.localExamined++
		if total > int64(s.budget) {
			return false, ErrBudgetExceeded
		}
		b.res.lastCandidate = b.snapshotChoice(len(s.objs))
		s.cExamined.Inc()
		var cycleStart time.Time
		if s.tracer != nil {
			cycleStart = time.Now()
		}
		err := b.bld.InModel()
		if s.tracer != nil {
			s.tracer.Add("cycle-search", time.Since(cycleStart))
		}
		return err == nil, nil
	}
	x := s.objs[oi]
	if b.bld.Cyclic() {
		s.cPruned.Inc()
		b.res.lastPruned = b.snapshotChoice(oi)
		return false, nil // base already cyclic: dead branch
	}
	writers := s.writers[x]
	k := len(writers)
	if k > 64 {
		return false, fmt.Errorf("check: object %q has %d writers; search limited to 64", x, k)
	}
	// forced[i] is the bitmask of writer positions that must precede
	// writers[i]: base-reachability plus the pinned init transaction.
	forced := make([]uint64, k)
	for i, a := range writers {
		for j, c := range writers {
			if i != j && (b.bld.Reaches(c, a) || c == s.pinned) {
				forced[i] |= 1 << uint(j)
			}
		}
	}
	order := make([]int, 0, k)
	return b.extend(oi, x, writers, forced, 0, order)
}

// extend enumerates linear extensions of the forced precedence via
// DFS: at each step any writer whose forced predecessors are all
// placed may come next.
func (b *branchRun) extend(oi int, x model.Obj, writers []int, forced []uint64, placed uint64, order []int) (bool, error) {
	if len(order) == len(writers) {
		mark := b.bld.Mark()
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				b.bld.ApplyWW(x, order[i], order[j])
			}
		}
		b.curOrders[oi] = order
		found, err := b.orderWrites(oi + 1)
		if found || err != nil {
			return found, err // keep the builder state for Snapshot
		}
		b.bld.Undo(mark)
		return false, nil
	}
	for i := range writers {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || forced[i]&^placed != 0 {
			continue
		}
		found, err := b.extend(oi, x, writers, forced, placed|bit, append(order, writers[i]))
		if found || err != nil {
			return found, err
		}
	}
	return false, nil
}

// snapshotChoice copies the current decision vector: every WR choice
// plus the write orders for the first numOrders objects.
func (b *branchRun) snapshotChoice(numOrders int) *choice {
	c := &choice{wr: append([]int(nil), b.curWR...), orders: make([][]int, numOrders)}
	for i := 0; i < numOrders; i++ {
		c.orders[i] = append([]int(nil), b.curOrders[i]...)
	}
	return c
}

// casMin lowers a to v if v is smaller.
func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
