// Package check implements history certification: deciding whether a
// history is allowed by serializability, snapshot isolation or
// parallel snapshot isolation, using the dependency-graph
// characterisations of Theorems 8, 9 and 21.
//
// The certifier searches the space of dependency-graph extensions of
// the history — read-dependency (WR) assignments consistent with the
// values read, and per-object total write orders (WW) — and tests each
// candidate for membership in GraphSER / GraphSI / GraphPSI. For
// value-traceable histories (every object value written at most once,
// as produced by internal/workload and internal/engine) the WR
// assignment is unique, leaving only the WW orders to search.
//
// The package also contains a brute-force checker that enumerates
// abstract executions directly against the axioms of Figure 1; it is
// exponential and restricted to very small histories, and exists to
// cross-validate the characterisations (an executable form of
// Theorems 8, 9 and 21).
package check

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/relation"
)

// Options configures certification.
type Options struct {
	// AddInit, when true, extends the history with an initialisation
	// transaction writing InitValue to every object before checking.
	// Enabled in DefaultOptions; disable when the history already
	// contains its own initialising writes.
	AddInit bool
	// InitValue is the value written by the initialisation
	// transaction.
	InitValue model.Value
	// PinInit constrains transaction 0 to behave as the paper's
	// initialisation transaction: it precedes every other transaction
	// in the write orders (and, semantically, in VIS and CO). It is
	// implied by AddInit; set it explicitly when certifying a history
	// that carries its own init transaction at index 0.
	PinInit bool
	// Budget bounds the number of candidate dependency graphs
	// examined before the search gives up with ErrBudgetExceeded.
	Budget int
	// BuildExecution, when certifying SI membership, additionally runs
	// the Theorem 10(i) construction to produce an abstract execution
	// certificate.
	BuildExecution bool
	// Tracer, when non-nil, records the certification phases: validate
	// (history well-formedness and INT), wr-enumeration (read-site
	// candidate discovery), extension-search (WR assignment and WW
	// linear extensions), cycle-search (the per-candidate composite
	// cycle checks, accumulated), solve-inequalities (the Figure 3 /
	// Lemma 15 execution construction) and explain (witness
	// decomposition). cycle-search time is a subset of
	// extension-search time.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the search counters
	// check_graphs_examined_total, check_branches_pruned_total and
	// check_wr_assignments_total, labelled model="<model>".
	Metrics *obs.Registry
}

// DefaultOptions returns the options used by Certify when passed the
// zero Options value: init transaction with value 0 and a one-million
// graph budget.
func DefaultOptions() Options {
	return Options{AddInit: true, PinInit: true, InitValue: 0, Budget: 1_000_000}
}

// ErrBudgetExceeded reports that the certification search examined
// more candidate graphs than the configured budget.
var ErrBudgetExceeded = errors.New("check: search budget exceeded")

// Result reports the outcome of certification.
type Result struct {
	// Member reports whether the history is allowed by the model.
	Member bool
	// Graph is a witness dependency graph in the model when Member is
	// true (over the possibly init-extended history).
	Graph *depgraph.Graph
	// Execution is the Theorem 10(i) certificate when requested via
	// Options.BuildExecution and the model is SI.
	Execution *execution.Execution
	// Examined counts candidate graphs tested.
	Examined int
	// History is the history actually analysed (init-extended when
	// Options.AddInit).
	History *model.History
	// Rejection explains a negative verdict when the dependency
	// extension was fully determined (a single candidate graph): it is
	// that graph, whose forbidden cycle (Graph.Witness) is then the
	// definitive reason the history is disallowed. Nil when the search
	// branched (a negative verdict then quantifies over all
	// candidates) or when the history is a member.
	Rejection *depgraph.Graph
	// Explain is the explainable trace of a negative verdict: the
	// violated axiom and, where a candidate graph exists, the
	// witnessing cycle as labelled edges. Nil for members.
	Explain *Explanation
}

// Explanation makes a negative verdict explainable: which axiom of the
// paper's Figure 1 specification the history cannot satisfy, and (when
// a candidate dependency graph witnessed it) the forbidden cycle as an
// edge list with dependency kinds.
type Explanation struct {
	// Model the verdict is about.
	Model depgraph.Model
	// Axiom names the violated axiom or axiom group (INT, EXT,
	// SESSION/EXT, NOCONFLICT, PREFIX, TOTALVIS).
	Axiom string
	// Cycle is the witnessing forbidden cycle (empty for INT/EXT
	// violations, which are not cycle-shaped).
	Cycle []depgraph.Edge
	// Graph is the candidate dependency graph the cycle lives in; use
	// Graph.FormatCycle(Cycle) to render it with transaction IDs.
	Graph *depgraph.Graph
	// Detail carries free-text context (the INT violation, or how many
	// candidate extensions were rejected).
	Detail string
	// Definitive reports whether the explanation covers every
	// candidate extension (true when the search had exactly one
	// candidate; false when it branched, in which case Cycle explains
	// the last rejected candidate only).
	Definitive bool
}

// String renders the explanation on one line, e.g.
// "axiom NOCONFLICT (…); cycle t1 -WW(x)-> t2 -RW(x)-> t1".
func (e *Explanation) String() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "axiom %s", e.Axiom)
	if len(e.Cycle) > 0 && e.Graph != nil {
		fmt.Fprintf(&b, "; cycle %s", e.Graph.FormatCycle(e.Cycle))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " [%s]", e.Detail)
	}
	return b.String()
}

// Certify decides whether the history is allowed by the given model.
// The zero Options value selects DefaultOptions.
func Certify(h *model.History, m depgraph.Model, opts Options) (*Result, error) {
	switch m {
	case depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI:
	default:
		return nil, fmt.Errorf("check: unknown model %v", m)
	}
	if opts == (Options{}) {
		opts = DefaultOptions()
	}
	if opts.Budget <= 0 {
		opts.Budget = DefaultOptions().Budget
	}
	target := h
	if opts.AddInit {
		target = h.WithInit(opts.InitValue)
	}
	doneValidate := opts.Tracer.Phase("validate")
	if err := target.Validate(); err != nil {
		doneValidate()
		return nil, fmt.Errorf("check: invalid history: %w", err)
	}
	res := &Result{History: target}
	// INT is model-independent (it constrains transactions, not
	// dependencies); fail fast.
	if err := target.CheckInt(); err != nil {
		doneValidate()
		res.Explain = &Explanation{
			Model: m, Axiom: "INT", Detail: err.Error(), Definitive: true,
		}
		return res, nil //nolint:nilerr // INT violation simply means non-membership.
	}
	doneValidate()
	pinned := -1
	if opts.AddInit || opts.PinInit {
		pinned = 0
	}
	doneWR := opts.Tracer.Phase("wr-enumeration")
	s, err := newSearch(target, m, opts.Budget, pinned)
	doneWR()
	if err != nil {
		// A read with no candidate writer: no extension exists.
		res.Member = false
		res.Explain = &Explanation{
			Model: m, Axiom: "EXT", Detail: err.Error(), Definitive: true,
		}
		return res, nil //nolint:nilerr // unresolvable read means non-membership
	}
	s.tracer = opts.Tracer
	if opts.Metrics != nil {
		lbl := obs.L("model", m.String())
		s.cExamined = opts.Metrics.Counter("check_graphs_examined_total", lbl)
		s.cPruned = opts.Metrics.Counter("check_branches_pruned_total", lbl)
		s.cWR = opts.Metrics.Counter("check_wr_assignments_total", lbl)
	}
	doneSearch := opts.Tracer.Phase("extension-search")
	g, examined, err := s.run()
	doneSearch()
	res.Examined = examined
	if err != nil {
		return res, err
	}
	if g == nil {
		if examined == 1 {
			res.Rejection = s.lastCandidate
		}
		res.Explain = s.explainNegative(m, examined, opts.Tracer)
		return res, nil
	}
	res.Member = true
	res.Graph = g
	if opts.BuildExecution && m == depgraph.SI {
		doneSolve := opts.Tracer.Phase("solve-inequalities")
		x, err := core.BuildExecution(g)
		doneSolve()
		if err != nil {
			return res, fmt.Errorf("check: building SI execution certificate: %w", err)
		}
		res.Execution = x
	}
	return res, nil
}

// explainNegative builds the Explanation for a negative verdict from
// the search's final state: the last complete candidate graph when one
// exists, or the dependency (base) cycle that killed the last pruned
// branch when every branch died early.
func (s *search) explainNegative(m depgraph.Model, examined int, tr *obs.Tracer) *Explanation {
	doneExplain := tr.Phase("explain")
	defer doneExplain()
	definitive := examined == 1
	detail := ""
	if !definitive && examined > 1 {
		detail = fmt.Sprintf("cycle from the last of %d rejected candidate extensions", examined)
	}
	if s.lastCandidate != nil {
		if we := s.lastCandidate.ExplainWitness(m); we != nil {
			return &Explanation{
				Model: m, Axiom: we.Axiom, Cycle: we.Cycle,
				Graph: s.lastCandidate, Detail: detail, Definitive: definitive,
			}
		}
		// A complete candidate that is not in the model must have a
		// witness; reaching here means only INT could have failed,
		// which Certify already ruled out. Fall through to a generic
		// explanation rather than returning nil.
	}
	if s.lastPruned != nil {
		if we := s.lastPruned.ExplainBaseCycle(m); we != nil {
			if detail == "" {
				detail = "every write-order extension of this WR assignment makes the dependencies cyclic"
			}
			return &Explanation{
				Model: m, Axiom: we.Axiom, Cycle: we.Cycle,
				Graph: s.lastPruned, Detail: detail, Definitive: definitive,
			}
		}
	}
	return &Explanation{Model: m, Axiom: "EXT",
		Detail: "no dependency-graph extension of the history lies in the model", Definitive: definitive}
}

// CertifyAll certifies the history against several models
// concurrently, one goroutine per model, and returns the results keyed
// by model. The first error encountered is returned (results for other
// models may still be present).
func CertifyAll(h *model.History, models []depgraph.Model, opts Options) (map[depgraph.Model]*Result, error) {
	type outcome struct {
		m   depgraph.Model
		res *Result
		err error
	}
	ch := make(chan outcome, len(models))
	for _, m := range models {
		go func(m depgraph.Model) {
			res, err := Certify(h, m, opts)
			ch <- outcome{m: m, res: res, err: err}
		}(m)
	}
	out := make(map[depgraph.Model]*Result, len(models))
	var firstErr error
	for range models {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%v: %w", o.m, o.err)
		}
		out[o.m] = o.res
	}
	return out, firstErr
}

// readSite is one transaction-level external read (T ⊢ read(x, v)).
type readSite struct {
	reader     int
	obj        model.Obj
	val        model.Value
	candidates []int
}

// search carries the state of the dependency-graph search.
type search struct {
	h       *model.History
	m       depgraph.Model
	budget  int
	pinned  int // index forced first in every WW order, or -1
	reads   []readSite
	objs    []model.Obj // objects with ≥2 writers needing a WW order
	writers map[model.Obj][]int

	examined int
	// lastCandidate is the most recent complete candidate graph; when
	// the search ends negative with examined == 1 it is the definitive
	// rejection explanation.
	lastCandidate *depgraph.Graph
	// lastPruned is the most recent partial graph whose dependencies
	// were already cyclic (a dead branch); it explains negatives where
	// no branch ever completed a candidate.
	lastPruned *depgraph.Graph

	// Optional observability (all nil-safe no-ops when unset).
	tracer    *obs.Tracer
	cExamined *obs.Counter
	cPruned   *obs.Counter
	cWR       *obs.Counter
}

func newSearch(h *model.History, m depgraph.Model, budget, pinned int) (*search, error) {
	s := &search{h: h, m: m, budget: budget, pinned: pinned, writers: make(map[model.Obj][]int)}
	n := h.NumTransactions()
	for i := 0; i < n; i++ {
		t := h.Transaction(i)
		for _, x := range t.Objects() {
			v, reads := t.ReadsBeforeWrites(x)
			if !reads {
				continue
			}
			site := readSite{reader: i, obj: x, val: v}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if w, ok := h.Transaction(j).FinalWrite(x); ok && w == v {
					site.candidates = append(site.candidates, j)
				}
			}
			if len(site.candidates) == 0 {
				return nil, fmt.Errorf("check: transaction %d reads (%s, %d) never finally written", i, x, v)
			}
			s.reads = append(s.reads, site)
		}
	}
	for _, x := range h.Objects() {
		w := h.WriteTx(x)
		s.writers[x] = w
		if len(w) >= 2 {
			s.objs = append(s.objs, x)
		}
	}
	return s, nil
}

// run performs the search and returns the first member graph found
// (nil if none), the number of candidates examined, and an error only
// for budget exhaustion.
func (s *search) run() (*depgraph.Graph, int, error) {
	g, err := s.assignReads(0, depgraph.New(s.h))
	return g, s.examined, err
}

// assignReads chooses a WR source for every read site, then moves on
// to WW orders.
func (s *search) assignReads(i int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if i == len(s.reads) {
		return s.orderWrites(0, g)
	}
	site := s.reads[i]
	for _, w := range site.candidates {
		s.cWR.Inc()
		g2 := cloneGraph(s.h, g)
		g2.AddWR(site.obj, w, site.reader)
		found, err := s.assignReads(i+1, g2)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

// orderWrites chooses a total WW order for each multi-writer object.
// Rather than enumerating all k! permutations, it only enumerates
// linear extensions of the precedence already forced on the writers by
// (SO ∪ WR ∪ WW-chosen-so-far)⁺: ordering two base-related writers
// against the base relation would create a base cycle, which excludes
// membership in all three models (RW? is reflexive, so every base
// cycle is a composite cycle). On the value-traceable histories the
// engines record, reads chain most writers, leaving few extensions.
func (s *search) orderWrites(oi int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if oi == len(s.objs) {
		s.examined++
		if s.examined > s.budget {
			return nil, ErrBudgetExceeded
		}
		s.lastCandidate = g
		s.cExamined.Inc()
		var cycleStart time.Time
		if s.tracer != nil {
			cycleStart = time.Now()
		}
		err := g.InModel(s.m)
		if s.tracer != nil {
			s.tracer.Add("cycle-search", time.Since(cycleStart))
		}
		if err == nil {
			return g, nil
		}
		return nil, nil
	}
	x := s.objs[oi]
	writers := s.writers[x]
	// The forced precedence comes from edges guaranteed to lie inside
	// the model's composite relation (so that contradicting them makes
	// a composite cycle). For every model that is WR ∪ WW; SO joins
	// except under GSI, whose composite ignores the session order.
	var base *relation.Rel
	if s.m == depgraph.GSI {
		base = relation.New(s.h.NumTransactions())
	} else {
		base = s.h.SessionOrder()
	}
	base.UnionInPlace(g.WR()).UnionInPlace(g.WW())
	closure := base.TransitiveClosure()
	if !closure.IsIrreflexive() {
		s.cPruned.Inc()
		s.lastPruned = g
		return nil, nil // base already cyclic: dead branch
	}
	// forced[i] is the bitmask of writer positions that must precede
	// writers[i].
	k := len(writers)
	if k > 64 {
		return nil, fmt.Errorf("check: object %q has %d writers; search limited to 64", x, k)
	}
	forced := make([]uint64, k)
	for i, a := range writers {
		for j, b := range writers {
			if i != j && closure.Has(b, a) {
				forced[i] |= 1 << uint(j)
			}
			// The pinned init transaction precedes every writer.
			if i != j && writers[j] == s.pinned {
				forced[i] |= 1 << uint(j)
			}
		}
	}
	order := make([]int, 0, k)
	return s.extend(oi, x, writers, forced, 0, order, g)
}

// extend enumerates linear extensions of the forced precedence via
// DFS: at each step any writer whose forced predecessors are all
// placed may come next.
func (s *search) extend(oi int, x model.Obj, writers []int, forced []uint64, placed uint64, order []int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if len(order) == len(writers) {
		g2 := cloneGraph(s.h, g)
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				g2.AddWW(x, order[a], order[b])
			}
		}
		return s.orderWrites(oi+1, g2)
	}
	for i := range writers {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || forced[i]&^placed != 0 {
			continue
		}
		found, err := s.extend(oi, x, writers, forced, placed|bit, append(order, writers[i]), g)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

// cloneGraph copies the WR/WW edges of g into a fresh graph over h.
func cloneGraph(h *model.History, g *depgraph.Graph) *depgraph.Graph {
	out := depgraph.New(h)
	for _, x := range h.Objects() {
		for _, p := range g.WRObj(x).Pairs() {
			out.AddWR(x, p[0], p[1])
		}
		for _, p := range g.WWObj(x).Pairs() {
			out.AddWW(x, p[0], p[1])
		}
	}
	return out
}

// relationFromOrder builds the strict total order relation of a
// permutation (earlier elements precede later ones).
func relationFromOrder(n int, order []int) *relation.Rel {
	r := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			r.Add(a, b)
		}
	}
	return r
}
