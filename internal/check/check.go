// Package check implements history certification: deciding whether a
// history is allowed by serializability, snapshot isolation or
// parallel snapshot isolation, using the dependency-graph
// characterisations of Theorems 8, 9 and 21.
//
// The certifier searches the space of dependency-graph extensions of
// the history — read-dependency (WR) assignments consistent with the
// values read, and per-object total write orders (WW) — and tests each
// candidate for membership in GraphSER / GraphSI / GraphPSI. The
// search mutates a single depgraph.Builder per worker, undoing edges
// on backtrack, and fans the top-level WR branches across a bounded
// worker pool (Options.Parallelism) while keeping verdicts and
// witnesses deterministic. For value-traceable histories (every object
// value written at most once, as produced by internal/workload and
// internal/engine) the WR assignment is unique, leaving only the WW
// orders to search.
//
// The package also contains a brute-force checker that enumerates
// abstract executions directly against the axioms of Figure 1; it is
// exponential and restricted to very small histories, and exists to
// cross-validate the characterisations (an executable form of
// Theorems 8, 9 and 21).
package check

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"sian/internal/core"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/obs"
)

// Options configures certification. The zero value selects the
// defaults: an initialisation transaction writing 0, a one-million
// candidate budget and one worker per CPU. Each field is normalised
// individually, so setting only some fields (a Tracer, a Metrics
// registry) keeps the defaults for the rest.
type Options struct {
	// NoInit disables extending the history with an initialisation
	// transaction writing InitValue to every object before checking.
	// Set it when the history already contains its own initialising
	// writes.
	NoInit bool
	// InitValue is the value written by the initialisation
	// transaction.
	InitValue model.Value
	// PinInit constrains transaction 0 to behave as the paper's
	// initialisation transaction: it precedes every other transaction
	// in the write orders (and, semantically, in VIS and CO). It is
	// implied unless NoInit is set; set it explicitly when certifying a
	// history that carries its own init transaction at index 0.
	PinInit bool
	// Budget bounds the number of candidate dependency graphs
	// examined before the search gives up with ErrBudgetExceeded.
	// Non-positive means the default of one million.
	Budget int
	// Parallelism bounds the number of worker goroutines exploring
	// top-level WR assignment branches. Non-positive means
	// runtime.GOMAXPROCS(0). Verdicts, witnesses and explanations are
	// deterministic at any setting; with Parallelism 1 the search is
	// exactly the sequential depth-first exploration.
	Parallelism int
	// BuildExecution, when certifying SI membership, additionally runs
	// the Theorem 10(i) construction to produce an abstract execution
	// certificate.
	BuildExecution bool
	// Tracer, when non-nil, records the certification phases: validate
	// (history well-formedness and INT), wr-enumeration (read-site
	// candidate discovery), extension-search (WR assignment and WW
	// linear extensions), cycle-search (the per-candidate composite
	// cycle checks, accumulated), solve-inequalities (the Figure 3 /
	// Lemma 15 execution construction) and explain (witness
	// decomposition). cycle-search time is a subset of
	// extension-search time.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the search counters
	// check_graphs_examined_total, check_branches_pruned_total,
	// check_wr_assignments_total, check_undo_ops_total,
	// check_closure_delta_edges_total and check_workers_spawned_total,
	// labelled model="<model>".
	Metrics *obs.Registry
}

// DefaultOptions returns the fully normalised options the zero
// Options value selects: init transaction with value 0, a one-million
// graph budget and one worker per CPU.
func DefaultOptions() Options {
	return Options{}.normalized()
}

// normalized fills in the per-field defaults. Every field stands on
// its own — there is deliberately no "zero value means all defaults"
// comparison, which used to silently disable the init transaction and
// budget when only Tracer or Metrics were set.
func (o Options) normalized() Options {
	if o.Budget <= 0 {
		o.Budget = 1_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if !o.NoInit {
		// The added init transaction sits at index 0 and precedes
		// everything by construction.
		o.PinInit = true
	}
	return o
}

// ErrBudgetExceeded reports that the certification search examined
// more candidate graphs than the configured budget.
var ErrBudgetExceeded = errors.New("check: search budget exceeded")

// Result reports the outcome of certification.
type Result struct {
	// Member reports whether the history is allowed by the model.
	Member bool
	// Graph is a witness dependency graph in the model when Member is
	// true (over the possibly init-extended history).
	Graph *depgraph.Graph
	// Execution is the Theorem 10(i) certificate when requested via
	// Options.BuildExecution and the model is SI.
	Execution *execution.Execution
	// Examined counts candidate graphs tested. It is deterministic for
	// any verdict at any parallelism (workers beyond the first explore
	// work the sequential search would have reached anyway, and the
	// count reflects the sequential prefix).
	Examined int
	// History is the history actually analysed (init-extended unless
	// Options.NoInit).
	History *model.History
	// Rejection explains a negative verdict when the dependency
	// extension was fully determined (a single candidate graph): it is
	// that graph, whose forbidden cycle (Graph.Witness) is then the
	// definitive reason the history is disallowed. Nil when the search
	// branched (a negative verdict then quantifies over all
	// candidates) or when the history is a member.
	Rejection *depgraph.Graph
	// Explain is the explainable trace of a negative verdict: the
	// violated axiom and, where a candidate graph exists, the
	// witnessing cycle as labelled edges. Nil for members.
	Explain *Explanation
}

// Explanation makes a negative verdict explainable: which axiom of the
// paper's Figure 1 specification the history cannot satisfy, and (when
// a candidate dependency graph witnessed it) the forbidden cycle as an
// edge list with dependency kinds.
type Explanation struct {
	// Model the verdict is about.
	Model depgraph.Model
	// Axiom names the violated axiom or axiom group (INT, EXT,
	// SESSION/EXT, NOCONFLICT, PREFIX, TOTALVIS).
	Axiom string
	// Cycle is the witnessing forbidden cycle (empty for INT/EXT
	// violations, which are not cycle-shaped).
	Cycle []depgraph.Edge
	// Graph is the candidate dependency graph the cycle lives in; use
	// Graph.FormatCycle(Cycle) to render it with transaction IDs.
	Graph *depgraph.Graph
	// Detail carries free-text context (the INT violation, or how many
	// candidate extensions were rejected).
	Detail string
	// Definitive reports whether the explanation covers every
	// candidate extension (true when the search had exactly one
	// candidate; false when it branched, in which case Cycle explains
	// the last rejected candidate only).
	Definitive bool
}

// String renders the explanation on one line, e.g.
// "axiom NOCONFLICT (…); cycle t1 -WW(x)-> t2 -RW(x)-> t1".
func (e *Explanation) String() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "axiom %s", e.Axiom)
	if len(e.Cycle) > 0 && e.Graph != nil {
		fmt.Fprintf(&b, "; cycle %s", e.Graph.FormatCycle(e.Cycle))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " [%s]", e.Detail)
	}
	return b.String()
}

// Certify decides whether the history is allowed by the given model.
// Zero-valued Options fields select their defaults individually.
func Certify(h *model.History, m depgraph.Model, opts Options) (*Result, error) {
	switch m {
	case depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI:
	default:
		return nil, fmt.Errorf("check: unknown model %v", m)
	}
	opts = opts.normalized()
	target := h
	if !opts.NoInit {
		target = h.WithInit(opts.InitValue)
	}
	doneValidate := opts.Tracer.Phase("validate")
	if err := target.Validate(); err != nil {
		doneValidate()
		return nil, fmt.Errorf("check: invalid history: %w", err)
	}
	res := &Result{History: target}
	// INT is model-independent (it constrains transactions, not
	// dependencies); fail fast.
	if err := target.CheckInt(); err != nil {
		doneValidate()
		res.Explain = &Explanation{
			Model: m, Axiom: "INT", Detail: err.Error(), Definitive: true,
		}
		return res, nil //nolint:nilerr // INT violation simply means non-membership.
	}
	doneValidate()
	pinned := -1
	if opts.PinInit {
		pinned = 0
	}
	doneWR := opts.Tracer.Phase("wr-enumeration")
	s, err := newSearch(target, m, opts.Budget, opts.Parallelism, pinned)
	doneWR()
	if err != nil {
		// A read with no candidate writer: no extension exists.
		res.Member = false
		res.Explain = &Explanation{
			Model: m, Axiom: "EXT", Detail: err.Error(), Definitive: true,
		}
		return res, nil //nolint:nilerr // unresolvable read means non-membership
	}
	s.tracer = opts.Tracer
	if opts.Metrics != nil {
		lbl := obs.L("model", m.String())
		s.cExamined = opts.Metrics.Counter("check_graphs_examined_total", lbl)
		s.cPruned = opts.Metrics.Counter("check_branches_pruned_total", lbl)
		s.cWR = opts.Metrics.Counter("check_wr_assignments_total", lbl)
		s.cUndo = opts.Metrics.Counter("check_undo_ops_total", lbl)
		s.cDelta = opts.Metrics.Counter("check_closure_delta_edges_total", lbl)
		s.cWorkers = opts.Metrics.Counter("check_workers_spawned_total", lbl)
	}
	doneSearch := opts.Tracer.Phase("extension-search")
	// cycle-search is accumulated by the search workers; reserve its
	// report position now so the trace order does not depend on which
	// worker records the first interval.
	opts.Tracer.Reserve("cycle-search")
	g, examined, err := s.run()
	doneSearch()
	res.Examined = examined
	if err != nil {
		return res, err
	}
	if g == nil {
		if examined == 1 {
			res.Rejection = s.lastCandidate
		}
		res.Explain = s.explainNegative(m, examined, opts.Tracer)
		return res, nil
	}
	res.Member = true
	res.Graph = g
	if opts.BuildExecution && m == depgraph.SI {
		doneSolve := opts.Tracer.Phase("solve-inequalities")
		x, err := core.BuildExecution(g)
		doneSolve()
		if err != nil {
			return res, fmt.Errorf("check: building SI execution certificate: %w", err)
		}
		res.Execution = x
	}
	return res, nil
}

// explainNegative builds the Explanation for a negative verdict from
// the search's final state: the last complete candidate graph when one
// exists, or the dependency (base) cycle that killed the last pruned
// branch when every branch died early.
func (s *search) explainNegative(m depgraph.Model, examined int, tr *obs.Tracer) *Explanation {
	doneExplain := tr.Phase("explain")
	defer doneExplain()
	definitive := examined == 1
	detail := ""
	if !definitive && examined > 1 {
		detail = fmt.Sprintf("cycle from the last of %d rejected candidate extensions", examined)
	}
	if s.lastCandidate != nil {
		if we := s.lastCandidate.ExplainWitness(m); we != nil {
			return &Explanation{
				Model: m, Axiom: we.Axiom, Cycle: we.Cycle,
				Graph: s.lastCandidate, Detail: detail, Definitive: definitive,
			}
		}
		// A complete candidate that is not in the model must have a
		// witness; reaching here means only INT could have failed,
		// which Certify already ruled out. Fall through to a generic
		// explanation rather than returning nil.
	}
	if s.lastPruned != nil {
		if we := s.lastPruned.ExplainBaseCycle(m); we != nil {
			if detail == "" {
				detail = "every write-order extension of this WR assignment makes the dependencies cyclic"
			}
			return &Explanation{
				Model: m, Axiom: we.Axiom, Cycle: we.Cycle,
				Graph: s.lastPruned, Detail: detail, Definitive: definitive,
			}
		}
	}
	return &Explanation{Model: m, Axiom: "EXT",
		Detail: "no dependency-graph extension of the history lies in the model", Definitive: definitive}
}

// CertifyAll certifies the history against several models
// concurrently, one goroutine per model, and returns the results keyed
// by model. On failure it returns the error of the first failing model
// in the order of the models argument (results for other models may
// still be present).
func CertifyAll(h *model.History, models []depgraph.Model, opts Options) (map[depgraph.Model]*Result, error) {
	results := make([]*Result, len(models))
	errs := make([]error, len(models))
	var wg sync.WaitGroup
	for i, m := range models {
		wg.Add(1)
		go func(i int, m depgraph.Model) {
			defer wg.Done()
			results[i], errs[i] = Certify(h, m, opts)
		}(i, m)
	}
	wg.Wait()
	out := make(map[depgraph.Model]*Result, len(models))
	var firstErr error
	for i, m := range models {
		if errs[i] != nil && firstErr == nil {
			firstErr = fmt.Errorf("%v: %w", m, errs[i])
		}
		out[m] = results[i]
	}
	return out, firstErr
}
