package check

import (
	"fmt"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
)

// enumerateOps yields every operation over the given objects and
// values.
func enumerateOps(objs []model.Obj, vals []model.Value) []model.Op {
	var out []model.Op
	for _, x := range objs {
		for _, v := range vals {
			out = append(out, model.Read(x, v), model.Write(x, v))
		}
	}
	return out
}

// enumerateTxs yields every transaction with 1..maxOps operations.
func enumerateTxs(ops []model.Op, maxOps int) [][]model.Op {
	var out [][]model.Op
	var cur []model.Op
	var rec func(depth int)
	rec = func(depth int) {
		if len(cur) > 0 {
			cp := make([]model.Op, len(cur))
			copy(cp, cur)
			out = append(out, cp)
		}
		if depth == maxOps {
			return
		}
		for _, op := range ops {
			cur = append(cur, op)
			rec(depth + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// TestExhaustiveSmallScope is the executable form of Theorems 8, 9 and
// 21 (plus the PC characterisation) on an exhaustively enumerated
// space: every history of two transactions over objects {x, y} and
// values {0, 1}, with up to two operations each, in one session or
// two. For each history (extended with a pinned init transaction) the
// graph-search certifier must agree exactly with the brute-force
// axiomatic checker, for all four models.
func TestExhaustiveSmallScope(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	objs := []model.Obj{"x", "y"}
	vals := []model.Value{0, 1}
	txs := enumerateTxs(enumerateOps(objs, vals), 2)
	t.Logf("%d transaction shapes, %d history candidates", len(txs), 2*len(txs)*len(txs))

	pairs := []struct {
		graph depgraph.Model
		brute Model
	}{
		{depgraph.SER, BruteSER},
		{depgraph.SI, BruteSI},
		{depgraph.PSI, BrutePSI},
		{depgraph.PC, BrutePC},
		{depgraph.GSI, BruteGSI},
	}

	checked := 0
	for _, sameSession := range []bool{true, false} {
		for i, ops1 := range txs {
			for j, ops2 := range txs {
				var h *model.History
				t1 := model.NewTransaction("T1", ops1...)
				t2 := model.NewTransaction("T2", ops2...)
				if sameSession {
					// Unordered pairs are symmetric across the two-
					// session case but NOT here (session order);
					// enumerate all ordered pairs in one session and
					// only i ≤ j across two sessions.
					h = model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{t1, t2}})
				} else {
					if i > j {
						continue
					}
					h = model.NewHistory(
						model.Session{ID: "s1", Transactions: []model.Transaction{t1}},
						model.Session{ID: "s2", Transactions: []model.Transaction{t2}},
					)
				}
				hi := h.WithInit(0)
				checked++
				for _, p := range pairs {
					res, err := Certify(hi, p.graph, Options{NoInit: true, PinInit: true, Budget: 1_000_000})
					if err != nil {
						t.Fatalf("certify: %v\n%v", err, hi)
					}
					brute, err := BruteForce(hi, p.brute, true)
					if err != nil {
						t.Fatalf("brute force: %v", err)
					}
					if res.Member != brute {
						t.Fatalf("characterisation of %v violated on\n%v\ngraph=%v brute=%v",
							p.graph, hi, res.Member, brute)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing enumerated")
	}
	t.Logf("exhaustively validated %d histories × 4 models", checked)
}

// TestExhaustiveLattice checks the model lattice on the same space:
// SER ⊆ SI, SI ⊆ PSI, SI ⊆ PC.
func TestExhaustiveLattice(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	objs := []model.Obj{"x", "y"}
	vals := []model.Value{0, 1}
	txs := enumerateTxs(enumerateOps(objs, vals), 2)
	for i, ops1 := range txs {
		for j, ops2 := range txs {
			if i > j {
				continue
			}
			h := model.NewHistory(
				model.Session{ID: "s1", Transactions: []model.Transaction{model.NewTransaction("T1", ops1...)}},
				model.Session{ID: "s2", Transactions: []model.Transaction{model.NewTransaction("T2", ops2...)}},
			).WithInit(0)
			member := func(m depgraph.Model) bool {
				res, err := Certify(h, m, Options{NoInit: true, PinInit: true, Budget: 1_000_000})
				if err != nil {
					t.Fatalf("certify: %v", err)
				}
				return res.Member
			}
			ser, si, psi, pc := member(depgraph.SER), member(depgraph.SI), member(depgraph.PSI), member(depgraph.PC)
			gsi := member(depgraph.GSI)
			describe := func() string {
				return fmt.Sprintf("SER=%v SI=%v PSI=%v PC=%v GSI=%v\n%v", ser, si, psi, pc, gsi, h)
			}
			if ser && !si {
				t.Fatalf("SER ⊄ SI: %s", describe())
			}
			if si && !psi {
				t.Fatalf("SI ⊄ PSI: %s", describe())
			}
			if si && !pc {
				t.Fatalf("SI ⊄ PC: %s", describe())
			}
			if si && !gsi {
				t.Fatalf("SI ⊄ GSI: %s", describe())
			}
		}
	}
}

// TestExhaustiveThreeTransactions extends the exhaustive validation to
// three single-operation transactions over every session arrangement
// (one, two or three sessions, in every order). This is the scope
// where PREFIX, TRANSVIS and NOCONFLICT start to interact.
func TestExhaustiveThreeTransactions(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	ops := enumerateOps([]model.Obj{"x", "y"}, []model.Value{0, 1})
	pairs := []struct {
		graph depgraph.Model
		brute Model
	}{
		{depgraph.SER, BruteSER},
		{depgraph.SI, BruteSI},
		{depgraph.PSI, BrutePSI},
		{depgraph.PC, BrutePC},
		{depgraph.GSI, BruteGSI},
	}
	checked := 0
	for _, o1 := range ops {
		for _, o2 := range ops {
			for _, o3 := range ops {
				three := []model.Op{o1, o2, o3}
				// Session assignment: txn i goes to session assign[i].
				for assign := 0; assign < 27; assign++ {
					sess := [3]int{assign % 3, (assign / 3) % 3, assign / 9}
					var sessions [3][]model.Transaction
					for i, op := range three {
						id := fmt.Sprintf("T%d", i+1)
						sessions[sess[i]] = append(sessions[sess[i]],
							model.NewTransaction(id, op))
					}
					var hs []model.Session
					for si, txs := range sessions {
						if len(txs) > 0 {
							hs = append(hs, model.Session{ID: fmt.Sprintf("s%d", si), Transactions: txs})
						}
					}
					hi := model.NewHistory(hs...).WithInit(0)
					checked++
					for _, p := range pairs {
						res, err := Certify(hi, p.graph, Options{NoInit: true, PinInit: true, Budget: 1_000_000})
						if err != nil {
							t.Fatalf("certify: %v\n%v", err, hi)
						}
						brute, err := BruteForce(hi, p.brute, true)
						if err != nil {
							t.Fatalf("brute force: %v", err)
						}
						if res.Member != brute {
							t.Fatalf("characterisation of %v violated on\n%v\ngraph=%v brute=%v",
								p.graph, hi, res.Member, brute)
						}
					}
				}
			}
		}
	}
	t.Logf("exhaustively validated %d three-transaction histories × 4 models", checked)
}
