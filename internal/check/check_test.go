package check

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/workload"
)

func certify(t *testing.T, h *model.History, m depgraph.Model) *Result {
	t.Helper()
	res, err := Certify(h, m, Options{})
	if err != nil {
		t.Fatalf("Certify(%v): %v", m, err)
	}
	return res
}

// certifyNoInit certifies a history that already contains its own
// initialising writes; the init transaction (when present at index 0)
// is pinned first, matching the paper's convention.
func certifyNoInit(t *testing.T, h *model.History, m depgraph.Model) *Result {
	t.Helper()
	pin := h.NumTransactions() > 0 && h.Transaction(0).ID == model.InitTransactionID
	res, err := Certify(h, m, Options{NoInit: true, PinInit: pin, Budget: 1_000_000})
	if err != nil {
		t.Fatalf("Certify(%v): %v", m, err)
	}
	return res
}

// brutePin mirrors certifyNoInit's pinning choice for BruteForce.
func brutePin(h *model.History) bool {
	return h.NumTransactions() > 0 && h.Transaction(0).ID == model.InitTransactionID
}

func TestCertifyFigure2Examples(t *testing.T) {
	t.Parallel()
	for _, ex := range workload.Examples() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			t.Parallel()
			got := map[depgraph.Model]bool{
				depgraph.SER: certifyNoInit(t, ex.History, depgraph.SER).Member,
				depgraph.SI:  certifyNoInit(t, ex.History, depgraph.SI).Member,
				depgraph.PSI: certifyNoInit(t, ex.History, depgraph.PSI).Member,
				depgraph.PC:  certifyNoInit(t, ex.History, depgraph.PC).Member,
				depgraph.GSI: certifyNoInit(t, ex.History, depgraph.GSI).Member,
			}
			want := map[depgraph.Model]bool{
				depgraph.SER: ex.InSER,
				depgraph.SI:  ex.InSI,
				depgraph.PSI: ex.InPSI,
				depgraph.PC:  ex.InPC,
				depgraph.GSI: ex.InGSI,
			}
			for m, w := range want {
				if got[m] != w {
					t.Errorf("%v membership = %v, want %v", m, got[m], w)
				}
			}
		})
	}
}

func TestCertifyReturnsWitnessInModel(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	res := certifyNoInit(t, ws.History, depgraph.SI)
	if !res.Member {
		t.Fatal("write skew should be SI-certifiable")
	}
	if res.Graph == nil {
		t.Fatal("member without witness graph")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Errorf("witness graph invalid: %v", err)
	}
	if err := res.Graph.InModel(depgraph.SI); err != nil {
		t.Errorf("witness graph outside GraphSI: %v", err)
	}
}

func TestCertifyBuildsExecutionCertificate(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	res, err := Certify(ws.History, depgraph.SI, Options{NoInit: true, Budget: 100000, BuildExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Execution == nil {
		t.Fatal("no execution certificate")
	}
	if err := res.Execution.IsSI(); err != nil {
		t.Errorf("certificate outside ExecSI: %v", err)
	}
}

func TestCertifyAddsInit(t *testing.T) {
	t.Parallel()
	// A single read of value 0 from nowhere: member only with init.
	h := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T", model.Read("x", 0)),
	}})
	with := certify(t, h, depgraph.SER)
	if !with.Member {
		t.Error("read of initial value should be serializable with init")
	}
	without := certifyNoInit(t, h, depgraph.SER)
	if without.Member {
		t.Error("read of unwritten value certified without init")
	}
	// Reading a value nobody writes is never certifiable.
	h9 := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T", model.Read("x", 9)),
	}})
	if certify(t, h9, depgraph.SER).Member {
		t.Error("read of value 9 certified with init writing 0")
	}
}

func TestCertifyINTViolation(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T", model.Write("x", 1), model.Read("x", 2)),
	}})
	for _, m := range []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI} {
		if certify(t, h, m).Member {
			t.Errorf("%v accepted an INT-violating history", m)
		}
	}
}

func TestCertifyInvalidHistory(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T"),
	}})
	if _, err := Certify(h, depgraph.SI, Options{NoInit: true, Budget: 10}); err == nil {
		t.Error("empty transaction accepted")
	}
}

func TestCertifyBudget(t *testing.T) {
	t.Parallel()
	// Many writers of one object with identical final values force WR
	// branching and WW permutations: exhaust a tiny budget.
	var sessions []model.Session
	for i := 0; i < 6; i++ {
		sessions = append(sessions, model.Session{
			ID: string(rune('a' + i)),
			Transactions: []model.Transaction{
				model.NewTransaction("w", model.Write("x", 1), model.Write("x", model.Value(i))),
			},
		})
	}
	sessions = append(sessions, model.Session{ID: "r", Transactions: []model.Transaction{
		model.NewTransaction("r", model.Read("x", 3)),
	}})
	h := model.NewHistory(sessions...)
	_, err := Certify(h, depgraph.SER, Options{Budget: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		// The first candidate may already be a member; only fail on
		// unexpected errors.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestCertifyWRBranching(t *testing.T) {
	t.Parallel()
	// Two writers write the same value 7; a reader reads 7. Exactly
	// one WR assignment is consistent with serializability given the
	// extra ordering constraints; the certifier must find it.
	h := model.NewHistory(
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("W1", model.Write("x", 7)),
			model.NewTransaction("R1", model.Read("x", 7), model.Read("y", 5)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("W2", model.Write("x", 7), model.Write("y", 5)),
		}},
	)
	res := certify(t, h, depgraph.SER)
	if !res.Member {
		t.Fatal("history should be serializable")
	}
	if res.Examined < 1 {
		t.Error("no candidates examined")
	}
}

func TestMonotonicityAcrossModels(t *testing.T) {
	t.Parallel()
	// HistSER ⊆ HistSI ⊆ HistPSI on random histories.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
		})
		ser := certify(t, h, depgraph.SER).Member
		si := certify(t, h, depgraph.SI).Member
		psi := certify(t, h, depgraph.PSI).Member
		if ser && !si {
			t.Fatalf("HistSER ⊄ HistSI:\n%v", h)
		}
		if si && !psi {
			t.Fatalf("HistSI ⊄ HistPSI:\n%v", h)
		}
	}
}

// TestCharacterisationsAgainstBruteForce is the executable form of
// Theorems 8, 9 and 21: on random small histories, the graph-search
// certifier (dependency-graph characterisations) agrees exactly with
// brute-force enumeration of abstract executions (axiomatic
// definitions), in both directions.
func TestCharacterisationsAgainstBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	trials := 0
	agreeSI, agreePSI, agreeSER := 0, 0, 0
	for trials < 140 {
		var h *model.History
		if trials%2 == 0 {
			h = workload.RandomPlausibleHistory(rng, workload.RandomConfig{
				Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
			})
		} else {
			h = workload.RandomHistory(rng, workload.RandomConfig{
				Sessions: 2, TxPerSession: 1, OpsPerTx: 2, Objects: 2, Values: 2,
			})
		}
		hi := h.WithInit(0)
		if hi.NumTransactions() > 4 { // keep PSI brute force feasible
			continue
		}
		trials++

		serGraph := certifyNoInit(t, hi, depgraph.SER).Member
		serBrute, err := BruteForce(hi, BruteSER, true)
		if err != nil {
			t.Fatal(err)
		}
		if serGraph != serBrute {
			t.Fatalf("Theorem 8 violated: graph=%v brute=%v\n%v", serGraph, serBrute, hi)
		}
		agreeSER++

		siGraph := certifyNoInit(t, hi, depgraph.SI).Member
		siBrute, err := BruteForce(hi, BruteSI, true)
		if err != nil {
			t.Fatal(err)
		}
		if siGraph != siBrute {
			t.Fatalf("Theorem 9 violated: graph=%v brute=%v\n%v", siGraph, siBrute, hi)
		}
		agreeSI++

		psiGraph := certifyNoInit(t, hi, depgraph.PSI).Member
		psiBrute, err := BruteForce(hi, BrutePSI, true)
		if err != nil {
			t.Fatal(err)
		}
		if psiGraph != psiBrute {
			t.Fatalf("Theorem 21 violated: graph=%v brute=%v\n%v", psiGraph, psiBrute, hi)
		}
		agreePSI++
	}
	if agreeSER == 0 || agreeSI == 0 || agreePSI == 0 {
		t.Error("no comparisons performed")
	}
}

// TestBruteForceOnFigures cross-checks the brute-force checker itself
// on the paper's examples.
func TestBruteForceOnFigures(t *testing.T) {
	t.Parallel()
	for _, ex := range workload.Examples() {
		ex := ex
		if ex.History.NumTransactions() > maxBrutePSI {
			continue
		}
		t.Run(ex.Name, func(t *testing.T) {
			t.Parallel()
			ser, err := BruteForce(ex.History, BruteSER, brutePin(ex.History))
			if err != nil {
				t.Fatal(err)
			}
			si, err := BruteForce(ex.History, BruteSI, brutePin(ex.History))
			if err != nil {
				t.Fatal(err)
			}
			psi, err := BruteForce(ex.History, BrutePSI, brutePin(ex.History))
			if err != nil {
				t.Fatal(err)
			}
			if ser != ex.InSER || si != ex.InSI || psi != ex.InPSI {
				t.Errorf("brute force = SER %v / SI %v / PSI %v, want %v/%v/%v",
					ser, si, psi, ex.InSER, ex.InSI, ex.InPSI)
			}
		})
	}
}

func TestBruteForceSizeLimits(t *testing.T) {
	t.Parallel()
	var sessions []model.Session
	for i := 0; i < maxBruteSER+1; i++ {
		sessions = append(sessions, model.Session{ID: string(rune('a' + i)), Transactions: []model.Transaction{
			model.NewTransaction("w", model.Write("x", model.Value(i))),
		}})
	}
	h := model.NewHistory(sessions...)
	if _, err := BruteForce(h, BruteSER, false); err == nil {
		t.Error("oversized history accepted for brute-force SER")
	}
	if _, err := BruteForce(h, BruteSI, false); err == nil {
		t.Error("oversized history accepted for brute-force SI")
	}
	if _, err := BruteForce(h, BrutePSI, false); err == nil {
		t.Error("oversized history accepted for brute-force PSI")
	}
	if _, err := BruteForce(h, BruteInvalid, false); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestBruteForceModelString(t *testing.T) {
	t.Parallel()
	if BruteSER.String() != "SER" || BruteSI.String() != "SI" || BrutePSI.String() != "PSI" {
		t.Error("Model strings broken")
	}
}

func TestCertifySessionOrderMatters(t *testing.T) {
	t.Parallel()
	// A session reading stale data after writing: T1 writes x=1; then
	// T2 (same session) reads x=0. SESSION forces T2 to see T1, so no
	// model admits it.
	h := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("x", 0)),
		}},
		model.Session{ID: "s", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
			model.NewTransaction("T2", model.Read("x", 0)),
		}},
	)
	for _, m := range []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI} {
		if certifyNoInit(t, h, m).Member {
			t.Errorf("%v accepted a session-order violation", m)
		}
	}
	// The same two transactions in different sessions are fine under
	// every model (T2 just has an older snapshot).
	h2 := model.NewHistory(
		model.Session{ID: "init", Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("x", 0)),
		}},
		model.Session{ID: "a", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
		}},
		model.Session{ID: "b", Transactions: []model.Transaction{
			model.NewTransaction("T2", model.Read("x", 0)),
		}},
	)
	for _, m := range []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI} {
		if !certifyNoInit(t, h2, m).Member {
			t.Errorf("%v rejected a stale-but-legal read", m)
		}
	}
}

// TestRejectionExplanation: when the dependency extension is fully
// determined (no branching), a negative verdict carries the candidate
// graph, whose Witness pinpoints the forbidden cycle.
func TestRejectionExplanation(t *testing.T) {
	t.Parallel()
	lf := workload.LongFork()
	res := certifyNoInit(t, lf.History, depgraph.SI)
	if res.Member {
		t.Fatal("long fork certified SI")
	}
	if res.Examined != 1 {
		t.Fatalf("expected a fully determined search, examined = %d", res.Examined)
	}
	if res.Rejection == nil {
		t.Fatal("no rejection graph")
	}
	cyc := res.Rejection.Witness(depgraph.SI)
	if len(cyc) < 2 {
		t.Errorf("witness cycle = %v", cyc)
	}
	// Members carry no rejection.
	psi := certifyNoInit(t, lf.History, depgraph.PSI)
	if !psi.Member || psi.Rejection != nil {
		t.Error("member result should have nil Rejection")
	}
}

// TestCertifyAll runs the concurrent multi-model certification.
func TestCertifyAll(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	models := []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}
	out, err := CertifyAll(ws.History, models, Options{NoInit: true, PinInit: true, Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	want := map[depgraph.Model]bool{
		depgraph.SER: false, depgraph.SI: true, depgraph.PSI: true,
		depgraph.PC: true, depgraph.GSI: true,
	}
	for m, w := range want {
		res, ok := out[m]
		if !ok || res == nil {
			t.Fatalf("missing result for %v", m)
		}
		if res.Member != w {
			t.Errorf("%v = %v, want %v", m, res.Member, w)
		}
	}
	// An invalid model propagates an error but keeps other results.
	if _, err := CertifyAll(ws.History, []depgraph.Model{depgraph.Model(99)}, Options{}); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestCertifyTooManyWriters: the WW search is capped at 64 writers per
// object; beyond that the certifier reports an error instead of
// silently failing.
func TestCertifyTooManyWriters(t *testing.T) {
	t.Parallel()
	var sessions []model.Session
	for i := 0; i < 65; i++ {
		sessions = append(sessions, model.Session{
			ID: fmt.Sprintf("s%d", i),
			Transactions: []model.Transaction{
				model.NewTransaction(fmt.Sprintf("w%d", i), model.Write("x", model.Value(i))),
			},
		})
	}
	h := model.NewHistory(sessions...)
	if _, err := Certify(h, depgraph.SI, Options{NoInit: true, Budget: 10}); err == nil {
		t.Error("65 writers accepted")
	}
}

// TestClassify names the anomaly class of each canonical history.
func TestClassify(t *testing.T) {
	t.Parallel()
	staleSession := model.NewHistory(
		model.Session{ID: model.InitTransactionID, Transactions: []model.Transaction{
			model.NewTransaction("init", model.Write("x", 0)),
		}},
		model.Session{ID: "s", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
			model.NewTransaction("T2", model.Read("x", 0)),
		}},
	)
	unreadable := model.NewHistory(model.Session{ID: "s", Transactions: []model.Transaction{
		model.NewTransaction("T", model.Read("x", 99)),
	}})
	tests := []struct {
		name string
		h    *model.History
		want Anomaly
	}{
		{"serializable", workload.SessionGuarantees().History, Serializable},
		{"write skew", workload.WriteSkew().History, WriteSkew},
		{"long fork", workload.LongFork().History, LongFork},
		{"lost update", workload.LostUpdate().History, LostUpdate},
		{"stale session", staleSession, StaleSessionRead},
		{"inconsistent", unreadable, Inconsistent},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			pin := brutePin(tc.h)
			rep, err := Classify(tc.h, Options{NoInit: true, PinInit: pin, Budget: 1_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Anomaly != tc.want {
				t.Errorf("Anomaly = %v, want %v (membership %v)", rep.Anomaly, tc.want, rep.Membership)
			}
			if len(rep.Results) != 5 {
				t.Errorf("results for %d models", len(rep.Results))
			}
		})
	}
}
