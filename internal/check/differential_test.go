package check

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/histio"
	"sian/internal/model"
	"sian/internal/relation"
	"sian/internal/workload"
)

// This file pins the refactored incremental/parallel certifier to the
// pre-refactor semantics. refSearch below is a faithful port of the
// original search: it clones the whole dependency graph at every WR
// branch and write-order leaf and recomputes a full transitive closure
// at every orderWrites node. The differential tests drive both
// implementations over the example corpus, the testdata histories and
// thousands of seeded random histories, and require identical
// verdicts, witnesses, explanations and examined counts.

type refSearch struct {
	h       *model.History
	m       depgraph.Model
	budget  int
	pinned  int
	reads   []readSite
	objs    []model.Obj
	writers map[model.Obj][]int

	examined      int
	lastCandidate *depgraph.Graph
	lastPruned    *depgraph.Graph
}

func newRefSearch(h *model.History, m depgraph.Model, budget, pinned int) (*refSearch, error) {
	s := &refSearch{h: h, m: m, budget: budget, pinned: pinned, writers: make(map[model.Obj][]int)}
	n := h.NumTransactions()
	for i := 0; i < n; i++ {
		t := h.Transaction(i)
		for _, x := range t.Objects() {
			v, reads := t.ReadsBeforeWrites(x)
			if !reads {
				continue
			}
			site := readSite{reader: i, obj: x, val: v}
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if w, ok := h.Transaction(j).FinalWrite(x); ok && w == v {
					site.candidates = append(site.candidates, j)
				}
			}
			if len(site.candidates) == 0 {
				return nil, fmt.Errorf("check: transaction %d reads (%s, %d) never finally written", i, x, v)
			}
			s.reads = append(s.reads, site)
		}
	}
	for _, x := range h.Objects() {
		w := h.WriteTx(x)
		s.writers[x] = w
		if len(w) >= 2 {
			s.objs = append(s.objs, x)
		}
	}
	return s, nil
}

func (s *refSearch) run() (*depgraph.Graph, int, error) {
	g, err := s.assignReads(0, depgraph.New(s.h))
	return g, s.examined, err
}

func (s *refSearch) assignReads(i int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if i == len(s.reads) {
		return s.orderWrites(0, g)
	}
	site := s.reads[i]
	for _, w := range site.candidates {
		g2 := refCloneGraph(s.h, g)
		g2.AddWR(site.obj, w, site.reader)
		found, err := s.assignReads(i+1, g2)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

func (s *refSearch) orderWrites(oi int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if oi == len(s.objs) {
		s.examined++
		if s.examined > s.budget {
			return nil, ErrBudgetExceeded
		}
		s.lastCandidate = g
		if g.InModel(s.m) == nil {
			return g, nil
		}
		return nil, nil
	}
	x := s.objs[oi]
	writers := s.writers[x]
	var base *relation.Rel
	if s.m == depgraph.GSI {
		base = relation.New(s.h.NumTransactions())
	} else {
		base = s.h.SessionOrder()
	}
	base.UnionInPlace(g.WR()).UnionInPlace(g.WW())
	closure := base.TransitiveClosure()
	if !closure.IsIrreflexive() {
		s.lastPruned = g
		return nil, nil
	}
	k := len(writers)
	if k > 64 {
		return nil, fmt.Errorf("check: object %q has %d writers; search limited to 64", x, k)
	}
	forced := make([]uint64, k)
	for i, a := range writers {
		for j, b := range writers {
			if i != j && closure.Has(b, a) {
				forced[i] |= 1 << uint(j)
			}
			if i != j && writers[j] == s.pinned {
				forced[i] |= 1 << uint(j)
			}
		}
	}
	order := make([]int, 0, k)
	return s.extend(oi, x, writers, forced, 0, order, g)
}

func (s *refSearch) extend(oi int, x model.Obj, writers []int, forced []uint64, placed uint64, order []int, g *depgraph.Graph) (*depgraph.Graph, error) {
	if len(order) == len(writers) {
		g2 := refCloneGraph(s.h, g)
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				g2.AddWW(x, order[a], order[b])
			}
		}
		return s.orderWrites(oi+1, g2)
	}
	for i := range writers {
		bit := uint64(1) << uint(i)
		if placed&bit != 0 || forced[i]&^placed != 0 {
			continue
		}
		found, err := s.extend(oi, x, writers, forced, placed|bit, append(order, writers[i]), g)
		if err != nil || found != nil {
			return found, err
		}
	}
	return nil, nil
}

func refCloneGraph(h *model.History, g *depgraph.Graph) *depgraph.Graph {
	out := depgraph.New(h)
	for _, x := range h.Objects() {
		for _, p := range g.WRObj(x).Pairs() {
			out.AddWR(x, p[0], p[1])
		}
		for _, p := range g.WWObj(x).Pairs() {
			out.AddWW(x, p[0], p[1])
		}
	}
	return out
}

// refOutcome is the reference verdict in comparable form.
type refOutcome struct {
	member   bool
	graph    *depgraph.Graph
	examined int
	axiom    string
	cycle    []depgraph.Edge
	explainG *depgraph.Graph
}

// refCertify mirrors the pre-refactor Certify control flow around
// refSearch. A non-nil error is a search error (budget, >64 writers).
func refCertify(h *model.History, m depgraph.Model, noInit, pinInit bool, budget int) (*refOutcome, error) {
	target := h
	if !noInit {
		target = h.WithInit(0)
		pinInit = true
	}
	if err := target.Validate(); err != nil {
		panic("differential corpus produced an invalid history: " + err.Error())
	}
	out := &refOutcome{}
	if err := target.CheckInt(); err != nil {
		out.axiom = "INT"
		return out, nil
	}
	pinned := -1
	if pinInit {
		pinned = 0
	}
	s, err := newRefSearch(target, m, budget, pinned)
	if err != nil {
		out.axiom = "EXT"
		return out, nil
	}
	g, examined, err := s.run()
	out.examined = examined
	if err != nil {
		return out, err
	}
	if g != nil {
		out.member = true
		out.graph = g
		return out, nil
	}
	// Pre-refactor explainNegative.
	if s.lastCandidate != nil {
		if we := s.lastCandidate.ExplainWitness(m); we != nil {
			out.axiom, out.cycle, out.explainG = we.Axiom, we.Cycle, s.lastCandidate
			return out, nil
		}
	}
	if s.lastPruned != nil {
		if we := s.lastPruned.ExplainBaseCycle(m); we != nil {
			out.axiom, out.cycle, out.explainG = we.Axiom, we.Cycle, s.lastPruned
			return out, nil
		}
	}
	out.axiom = "EXT"
	return out, nil
}

var diffModels = []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}

// diffCompare certifies h under the new implementation at the given
// parallelism and requires agreement with the reference.
func diffCompare(t *testing.T, label string, h *model.History, m depgraph.Model, noInit bool, budget, par int) {
	t.Helper()
	ref, refErr := refCertify(h, m, noInit, true, budget)
	opts := Options{NoInit: noInit, PinInit: true, Budget: budget, Parallelism: par}
	res, err := Certify(h, m, opts)
	if refErr != nil {
		// Search error (budget or >64 writers). With one worker the
		// new search is the same sequential exploration and must agree
		// exactly; extra workers may legitimately find a member before
		// the shared budget trips (documented tolerance), so only the
		// error case is pinned there.
		if par == 1 {
			if err == nil {
				t.Fatalf("%s/%v p%d: reference errored (%v), new certifier returned member=%v", label, m, par, refErr, res.Member)
			}
			if errors.Is(refErr, ErrBudgetExceeded) != errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("%s/%v p%d: error kind diverged: ref %v, new %v", label, m, par, refErr, err)
			}
			if res.Examined != ref.examined {
				t.Fatalf("%s/%v p%d: examined at error diverged: ref %d, new %d", label, m, par, ref.examined, res.Examined)
			}
		}
		return
	}
	if err != nil {
		t.Fatalf("%s/%v p%d: new certifier errored (%v), reference did not", label, m, par, err)
	}
	if res.Member != ref.member {
		t.Fatalf("%s/%v p%d: verdict diverged: ref member=%v, new member=%v", label, m, par, ref.member, res.Member)
	}
	if res.Examined != ref.examined {
		t.Fatalf("%s/%v p%d: examined diverged: ref %d, new %d", label, m, par, ref.examined, res.Examined)
	}
	if ref.member {
		if res.Graph == nil || !res.Graph.Equal(ref.graph) {
			t.Fatalf("%s/%v p%d: witness graph diverged from reference", label, m, par)
		}
		return
	}
	if res.Explain == nil {
		t.Fatalf("%s/%v p%d: negative verdict without explanation", label, m, par)
	}
	if res.Explain.Axiom != ref.axiom {
		t.Fatalf("%s/%v p%d: axiom diverged: ref %s, new %s", label, m, par, ref.axiom, res.Explain.Axiom)
	}
	if !reflect.DeepEqual(res.Explain.Cycle, ref.cycle) {
		t.Fatalf("%s/%v p%d: witness cycle diverged:\nref %v\nnew %v", label, m, par, ref.cycle, res.Explain.Cycle)
	}
	if ref.explainG != nil && (res.Explain.Graph == nil || !res.Explain.Graph.Equal(ref.explainG)) {
		t.Fatalf("%s/%v p%d: explanation graph diverged from reference", label, m, par)
	}
}

// diffCorpus returns the curated histories: the Figure 2 examples and
// the testdata corpus.
func diffCorpus(t *testing.T) map[string]*model.History {
	t.Helper()
	out := make(map[string]*model.History)
	for _, ex := range workload.Examples() {
		out[ex.Name] = ex.History
	}
	for _, name := range []string{"longfork_history.json", "writeskew_history.json"} {
		f, err := os.Open("../../testdata/" + name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		h, err := histio.DecodeHistory(f)
		f.Close()
		if err != nil {
			t.Fatalf("decode %s: %v", name, err)
		}
		out[name] = h
	}
	return out
}

// TestDifferentialCorpus pins the new certifier to the reference on
// every curated history, sequentially and with four workers.
func TestDifferentialCorpus(t *testing.T) {
	t.Parallel()
	for name, h := range diffCorpus(t) {
		for _, m := range diffModels {
			for _, par := range []int{1, 4} {
				// The curated histories carry their own init
				// transactions; certify both raw and init-extended.
				diffCompare(t, name, h, m, true, 100_000, par)
				diffCompare(t, name+"+init", h, m, false, 100_000, par)
			}
		}
	}
}

// TestDifferentialRandom pins the new certifier to the reference on
// seeded random histories — well over a thousand, mixing the
// unconstrained and plausible generators — under every model, with
// one and with four workers.
func TestDifferentialRandom(t *testing.T) {
	t.Parallel()
	const histories = 1200
	rng := rand.New(rand.NewSource(20260805))
	cfgs := []workload.RandomConfig{
		{Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2, Values: 2},
		{Sessions: 3, TxPerSession: 2, OpsPerTx: 3, Objects: 2, Values: 2, ReadFraction: 400},
		{Sessions: 2, TxPerSession: 3, OpsPerTx: 2, Objects: 3, Values: 2, ReadFraction: 600},
		{Sessions: 3, TxPerSession: 1, OpsPerTx: 4, Objects: 2, Values: 3},
	}
	for i := 0; i < histories; i++ {
		cfg := cfgs[i%len(cfgs)]
		var h *model.History
		if i%2 == 0 {
			h = workload.RandomHistory(rng, cfg)
		} else {
			h = workload.RandomPlausibleHistory(rng, cfg)
		}
		label := fmt.Sprintf("random-%d", i)
		m := diffModels[i%len(diffModels)]
		// Every history under one rotating model at both parallelism
		// levels, plus a full model sweep on a sample.
		for _, par := range []int{1, 4} {
			diffCompare(t, label, h, m, false, 20_000, par)
		}
		if i%10 == 0 {
			for _, other := range diffModels {
				if other == m {
					continue
				}
				diffCompare(t, label, h, other, false, 20_000, 1)
				diffCompare(t, label, h, other, false, 20_000, 4)
			}
		}
	}
}
