package check

import (
	"math/rand"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/workload"
)

// TestPCFigures pins the expected prefix-consistency classification of
// the paper's Figure 2 examples: PC is SI without write-conflict
// detection, so it admits the lost update but still forbids the long
// fork (PREFIX).
func TestPCFigures(t *testing.T) {
	t.Parallel()
	want := map[string]bool{
		workload.SessionGuarantees().Name: true,
		workload.LostUpdate().Name:        true, // allowed without NOCONFLICT
		workload.WriteSkew().Name:         true,
		workload.LongFork().Name:          false, // PREFIX still applies
	}
	for _, ex := range workload.Examples() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			t.Parallel()
			res := certifyNoInit(t, ex.History, depgraph.PC)
			if res.Member != want[ex.Name] {
				t.Errorf("PC membership = %v, want %v", res.Member, want[ex.Name])
			}
			brute, err := BruteForce(ex.History, BrutePC, brutePin(ex.History))
			if err != nil {
				t.Fatal(err)
			}
			if brute != want[ex.Name] {
				t.Errorf("brute-force PC = %v, want %v", brute, want[ex.Name])
			}
		})
	}
}

// TestPCCharacterisationAgainstBruteForce validates the conjectured
// GraphPC characterisation (((SO ∪ WR) ; RW?) ∪ WW acyclic) against
// direct enumeration of PC executions, in both directions, on random
// small histories.
func TestPCCharacterisationAgainstBruteForce(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2024))
	trials := 0
	for trials < 150 {
		var h = workload.RandomHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2, Values: 2,
		})
		if trials%2 == 0 {
			h = workload.RandomPlausibleHistory(rng, workload.RandomConfig{
				Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
			})
		}
		hi := h.WithInit(0)
		if hi.NumTransactions() > 5 {
			continue
		}
		trials++
		graphPC := certifyNoInit(t, hi, depgraph.PC).Member
		brutePC, err := BruteForce(hi, BrutePC, true)
		if err != nil {
			t.Fatal(err)
		}
		if graphPC != brutePC {
			t.Fatalf("PC characterisation violated: graph=%v brute=%v\n%v", graphPC, brutePC, hi)
		}
	}
}

// TestPCInLattice: HistSER ⊆ HistSI ⊆ HistPC on random histories, and
// PC is incomparable with PSI (witnessed by the figures above: lost
// update ∈ PC \ PSI, long fork ∈ PSI \ PC).
func TestPCInLattice(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 150; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 2, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
		})
		si := certify(t, h, depgraph.SI).Member
		pc := certify(t, h, depgraph.PC).Member
		if si && !pc {
			t.Fatalf("HistSI ⊄ HistPC:\n%v", h)
		}
	}
	lu := workload.LostUpdate()
	if !certifyNoInit(t, lu.History, depgraph.PC).Member {
		t.Error("lost update should be PC-allowed")
	}
	if certifyNoInit(t, lu.History, depgraph.PSI).Member {
		t.Error("lost update should be PSI-disallowed")
	}
	lf := workload.LongFork()
	if certifyNoInit(t, lf.History, depgraph.PC).Member {
		t.Error("long fork should be PC-disallowed")
	}
	if !certifyNoInit(t, lf.History, depgraph.PSI).Member {
		t.Error("long fork should be PSI-allowed")
	}
}
