package check

import (
	"fmt"

	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/relation"
)

// Brute-force size limits. Beyond these the enumeration spaces
// (permutations of CO, visibility prefixes / subsets) become too large
// to be useful; BruteForce returns an error rather than running for
// hours.
const (
	maxBruteSER = 8
	maxBruteSI  = 6
	maxBrutePSI = 5
)

// BruteForce decides HistSER / HistSI / HistPSI membership directly
// from the axiomatic definitions (Definitions 4 and 20), by
// enumerating abstract executions. It is exponential and accepts only
// very small histories; it exists to cross-validate the
// dependency-graph characterisations in tests. The history must
// already contain its initialising writes (use History.WithInit).
//
// When pinInit is true, transaction 0 is treated as the paper's
// initialisation transaction: it precedes every other transaction in
// CO and VIS (§2: "a special transaction that writes initial versions
// of all objects and precedes all the other transactions in VIS and
// CO"). This matches Certify's PinInit option.
func BruteForce(h *model.History, m Model, pinInit bool) (bool, error) {
	if err := h.Validate(); err != nil {
		return false, fmt.Errorf("check: invalid history: %w", err)
	}
	if h.CheckInt() != nil {
		return false, nil
	}
	n := h.NumTransactions()
	switch m {
	case BruteSER:
		if n > maxBruteSER {
			return false, fmt.Errorf("check: history too large for brute-force SER (%d > %d)", n, maxBruteSER)
		}
		return bruteSER(h, pinInit), nil
	case BruteSI:
		if n > maxBruteSI {
			return false, fmt.Errorf("check: history too large for brute-force SI (%d > %d)", n, maxBruteSI)
		}
		return bruteSI(h, pinInit), nil
	case BrutePSI:
		if n > maxBrutePSI {
			return false, fmt.Errorf("check: history too large for brute-force PSI (%d > %d)", n, maxBrutePSI)
		}
		return brutePSI(h, pinInit), nil
	case BrutePC:
		if n > maxBruteSI {
			return false, fmt.Errorf("check: history too large for brute-force PC (%d > %d)", n, maxBruteSI)
		}
		return brutePC(h, pinInit), nil
	case BruteGSI:
		if n > maxBruteSI {
			return false, fmt.Errorf("check: history too large for brute-force GSI (%d > %d)", n, maxBruteSI)
		}
		return bruteGSI(h, pinInit), nil
	default:
		return false, fmt.Errorf("check: unknown brute-force model %v", m)
	}
}

// Model selects the consistency model for BruteForce. (A separate type
// from depgraph.Model to keep the axiomatic checker independent of the
// graph characterisations it validates.)
type Model int

// Brute-force model selectors.
const (
	BruteInvalid Model = iota
	BruteSER
	BruteSI
	BrutePSI
	BrutePC
	BruteGSI
)

// String returns "SER", "SI", "PSI", "PC" or "GSI".
func (m Model) String() string {
	switch m {
	case BruteSER:
		return "SER"
	case BruteSI:
		return "SI"
	case BrutePSI:
		return "PSI"
	case BrutePC:
		return "PC"
	case BruteGSI:
		return "GSI"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// permutations invokes fn with every permutation of {0,…,n-1},
// stopping early when fn returns true.
func permutations(n int, fn func(perm []int) bool) bool {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return fn(perm)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if rec(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return rec(0)
}

// bruteSER enumerates total orders as CO = VIS and checks the ExecSER
// axioms.
func bruteSER(h *model.History, pinInit bool) bool {
	n := h.NumTransactions()
	return permutations(n, func(perm []int) bool {
		if pinInit && perm[0] != 0 {
			return false
		}
		co := relationFromOrder(n, perm)
		x := execution.New(h, co, co.Clone())
		return x.IsSER() == nil
	})
}

// bruteSI exploits the shape forced by the SI axioms: given a total CO
// (a permutation), PREFIX and VIS ⊆ CO force every VIS⁻¹(T) to be a
// CO-prefix, so VIS is determined by a cut position per transaction.
// The cuts are enumerated with backtracking; SESSION, NOCONFLICT and
// EXT constrain each cut locally against earlier transactions only.
func bruteSI(h *model.History, pinInit bool) bool {
	n := h.NumTransactions()
	so := h.SessionOrder()
	return permutations(n, func(perm []int) bool {
		if pinInit && perm[0] != 0 {
			return false
		}
		pos := make([]int, n) // pos[t] = position of transaction t in perm
		for i, t := range perm {
			pos[t] = i
		}
		// cut[p] for transaction perm[p]: VIS⁻¹(perm[p]) = perm[0:cut[p]].
		cut := make([]int, n)
		var rec func(p int) bool
		rec = func(p int) bool {
			if p == n {
				return true
			}
			t := perm[p]
			minCut := 0
			if pinInit && p > 0 {
				minCut = 1 // the init transaction is visible to everyone
			}
			// SESSION: every SO-predecessor must be visible.
			for _, s := range so.Predecessors(t) {
				if pos[s] >= p {
					return false // SO contradicts this CO order
				}
				if pos[s]+1 > minCut {
					minCut = pos[s] + 1
				}
			}
			// NOCONFLICT: every earlier writer of an object t also
			// writes must be visible.
			for _, x := range h.Transaction(t).WriteSet() {
				for _, w := range h.WriteTx(x) {
					if w != t && pos[w] < p && pos[w]+1 > minCut {
						minCut = pos[w] + 1
					}
				}
			}
			for c := minCut; c <= p; c++ {
				if siExtOK(h, perm, t, c) {
					cut[p] = c
					if rec(p + 1) {
						return true
					}
				}
			}
			return false
		}
		return rec(0)
	})
}

// siExtOK checks EXT for transaction t when its snapshot is
// perm[0:cut]: each external read of t must return the final write of
// the latest (in perm order) writer within the cut.
func siExtOK(h *model.History, perm []int, t, cut int) bool {
	tx := h.Transaction(t)
	for _, x := range tx.Objects() {
		val, reads := tx.ReadsBeforeWrites(x)
		if !reads {
			continue
		}
		last := -1
		for p := 0; p < cut; p++ {
			if h.Transaction(perm[p]).Writes(x) {
				last = perm[p]
			}
		}
		if last < 0 {
			return false // reads with an empty visible writer set
		}
		w, _ := h.Transaction(last).FinalWrite(x)
		if w != val {
			return false
		}
	}
	return true
}

// brutePC is bruteSI without the NOCONFLICT constraint: PREFIX and
// VIS ⊆ CO still force VIS⁻¹(T) to be a CO-prefix, but earlier writers
// of T's write set need not be visible.
func brutePC(h *model.History, pinInit bool) bool {
	n := h.NumTransactions()
	so := h.SessionOrder()
	return permutations(n, func(perm []int) bool {
		if pinInit && perm[0] != 0 {
			return false
		}
		pos := make([]int, n)
		for i, t := range perm {
			pos[t] = i
		}
		var rec func(p int) bool
		rec = func(p int) bool {
			if p == n {
				return true
			}
			t := perm[p]
			minCut := 0
			if pinInit && p > 0 {
				minCut = 1
			}
			for _, s := range so.Predecessors(t) {
				if pos[s] >= p {
					return false
				}
				if pos[s]+1 > minCut {
					minCut = pos[s] + 1
				}
			}
			for c := minCut; c <= p; c++ {
				if siExtOK(h, perm, t, c) {
					if rec(p + 1) {
						return true
					}
				}
			}
			return false
		}
		return rec(0)
	})
}

// bruteGSI is bruteSI without the SESSION constraints: the commit
// order need not respect the session order, and a transaction's
// snapshot need not include its session predecessors. PREFIX and
// NOCONFLICT still shape the search.
func bruteGSI(h *model.History, pinInit bool) bool {
	n := h.NumTransactions()
	return permutations(n, func(perm []int) bool {
		pos := make([]int, n)
		for i, t := range perm {
			pos[t] = i
		}
		var rec func(p int) bool
		rec = func(p int) bool {
			if p == n {
				return true
			}
			t := perm[p]
			minCut := 0
			if pinInit && p > 0 {
				minCut = 1
			}
			// NOCONFLICT: earlier writers of t's write set must be
			// visible.
			for _, x := range h.Transaction(t).WriteSet() {
				for _, w := range h.WriteTx(x) {
					if w != t && pos[w] < p && pos[w]+1 > minCut {
						minCut = pos[w] + 1
					}
				}
			}
			for c := minCut; c <= p; c++ {
				if siExtOK(h, perm, t, c) {
					if rec(p + 1) {
						return true
					}
				}
			}
			return false
		}
		if pinInit && perm[0] != 0 {
			return false
		}
		return rec(0)
	})
}

// brutePSI enumerates a total CO (permutation) and every
// order-compatible visibility relation, checking the ExecPSI axioms.
func brutePSI(h *model.History, pinInit bool) bool {
	n := h.NumTransactions()
	var pairs [][2]int
	return permutations(n, func(perm []int) bool {
		if pinInit && perm[0] != 0 {
			return false
		}
		// With a pinned init, the VIS edges init → t are mandatory and
		// excluded from enumeration.
		pairs = pairs[:0]
		first := 0
		if pinInit {
			first = 1
		}
		for i := first; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{perm[i], perm[j]})
			}
		}
		co := relationFromOrder(n, perm)
		k := len(pairs)
		for mask := 0; mask < 1<<uint(k); mask++ {
			vis := relation.New(n)
			if pinInit {
				for _, t := range perm[1:] {
					vis.Add(0, t)
				}
			}
			for b := 0; b < k; b++ {
				if mask&(1<<uint(b)) != 0 {
					vis.Add(pairs[b][0], pairs[b][1])
				}
			}
			x := execution.New(h, vis, co)
			if x.IsPSI() == nil {
				return true
			}
		}
		return false
	})
}

// relationFromOrder builds the strict total order relation of a
// permutation (earlier elements precede later ones).
func relationFromOrder(n int, order []int) *relation.Rel {
	r := relation.New(n)
	for i, a := range order {
		for _, b := range order[i+1:] {
			r.Add(a, b)
		}
	}
	return r
}
