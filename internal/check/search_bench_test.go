package check

import (
	"math/rand"
	"sync"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/workload"
)

// The benchmarks below compare the seed clone-based search
// (refCertify, the faithful port in differential_test.go) against the
// incremental mutate-and-undo core, on multi-writer random histories
// of at least eight transactions whose certification genuinely
// branches. BENCH_sibench.json records a run of these.

const searchBenchBudget = 20_000

var searchBench struct {
	once sync.Once
	hs   []*model.History
}

// searchBenchCorpus deterministically selects random histories that
// are (a) at least eight transactions, (b) fan out into at least eight
// top-level WR branches so the worker pool has work to distribute,
// (c) non-members of SI within the budget, so seed, sequential and
// parallel searches all exhaust the same candidate space.
func searchBenchCorpus(tb testing.TB) []*model.History {
	searchBench.once.Do(func() {
		rng := rand.New(rand.NewSource(7))
		cfg := workload.RandomConfig{
			Sessions: 4, TxPerSession: 2, OpsPerTx: 3,
			Objects: 2, Values: 2, ReadFraction: 400,
		}
		for attempts := 0; len(searchBench.hs) < 10 && attempts < 20_000; attempts++ {
			h := workload.RandomHistory(rng, cfg)
			if h.NumTransactions() < 8 {
				continue
			}
			target := h.WithInit(0)
			if target.Validate() != nil || target.CheckInt() != nil {
				continue
			}
			s, err := newSearch(target, depgraph.SI, searchBenchBudget, 4, 0)
			if err != nil {
				continue
			}
			if _, total := s.planBranches(); total < 8 {
				continue
			}
			res, err := Certify(h, depgraph.SI, Options{Budget: searchBenchBudget, Parallelism: 1})
			if err != nil || res.Member || res.Examined < 100 {
				continue
			}
			searchBench.hs = append(searchBench.hs, h)
		}
	})
	if len(searchBench.hs) < 4 {
		tb.Fatalf("search bench corpus too small: %d histories", len(searchBench.hs))
	}
	return searchBench.hs
}

// BenchmarkSearchSeedClone measures the pre-refactor clone-based
// search (one graph clone per WR branch and write-order leaf, a full
// transitive closure per orderWrites node) over the corpus. One op =
// one full certification sweep of the corpus under SI.
func BenchmarkSearchSeedClone(b *testing.B) {
	hs := searchBenchCorpus(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, h := range hs {
			out, err := refCertify(h, depgraph.SI, false, true, searchBenchBudget)
			if err != nil {
				b.Fatal(err)
			}
			if out.member {
				b.Fatal("corpus history unexpectedly member")
			}
		}
	}
}

// BenchmarkSearchIncremental measures the incremental mutate-and-undo
// core at 1, 2 and 4 workers over the same corpus and budget. At p1
// the exploration order is exactly the seed's; speedup over
// BenchmarkSearchSeedClone is purely algorithmic. Parallel speedup is
// additionally bounded by the host's GOMAXPROCS.
func BenchmarkSearchIncremental(b *testing.B) {
	hs := searchBenchCorpus(b)
	for _, par := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "p1", 2: "p2", 4: "p4"}[par], func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				for _, h := range hs {
					res, err := Certify(h, depgraph.SI, Options{Budget: searchBenchBudget, Parallelism: par})
					if err != nil {
						b.Fatal(err)
					}
					if res.Member {
						b.Fatal("corpus history unexpectedly member")
					}
				}
			}
		})
	}
}
