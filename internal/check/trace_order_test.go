package check

import (
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/obs"
)

// branchingWriteSkew is a write-skew history with a duplicated write
// of a=1, so WR enumeration branches and the parallel search explores
// several candidates concurrently.
func branchingWriteSkew() *model.History {
	return model.NewHistory(
		model.Session{ID: "s0", Transactions: []model.Transaction{
			model.NewTransaction("t0", model.Write("a", 1), model.Write("b", 1)),
		}},
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("t1", model.Write("a", 1)),
		}},
		model.Session{ID: "sA", Transactions: []model.Transaction{
			model.NewTransaction("tA", model.Read("a", 1), model.Write("b", 2)),
		}},
		model.Session{ID: "sB", Transactions: []model.Transaction{
			model.NewTransaction("tB", model.Read("b", 1), model.Write("a", 2)),
		}},
	)
}

// TestTracePhaseOrderDeterministic pins the fix for the tracer
// phase-ordering race: with a parallel search, worker goroutines used
// to record "cycle-search" at whatever moment the first worker reached
// it, so the reported phase sequence varied from run to run. Certify
// now reserves the slot up front, and the phase order must be
// identical across repeated runs.
func TestTracePhaseOrderDeterministic(t *testing.T) {
	t.Parallel()
	h := branchingWriteSkew()
	var want string
	for i := 0; i < 20; i++ {
		tr := obs.NewTracer(nil)
		_, err := Certify(h, depgraph.SER, Options{
			NoInit:      true,
			PinInit:     false,
			Parallelism: 4,
			Tracer:      tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, p := range tr.Phases() {
			names = append(names, p.Name)
		}
		got := strings.Join(names, ",")
		if i == 0 {
			want = got
			if !strings.Contains(got, "cycle-search") {
				t.Fatalf("run did not exercise cycle-search: phases %q", got)
			}
			continue
		}
		if got != want {
			t.Fatalf("run %d phase order %q differs from first run %q", i, got, want)
		}
	}
}
