package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/obs"
)

// writeSkewNoInit is the classic write-skew history with its own
// initialising transaction: t0 writes a=1, b=1; tA reads a and writes
// b; tB reads b and writes a. SI admits it, SER does not.
func writeSkewNoInit() *model.History {
	return model.NewHistory(
		model.Session{ID: "s0", Transactions: []model.Transaction{
			model.NewTransaction("t0", model.Write("a", 1), model.Write("b", 1)),
		}},
		model.Session{ID: "sA", Transactions: []model.Transaction{
			model.NewTransaction("tA", model.Read("a", 1), model.Write("b", 2)),
		}},
		model.Session{ID: "sB", Transactions: []model.Transaction{
			model.NewTransaction("tB", model.Read("b", 1), model.Write("a", 2)),
		}},
	)
}

// manyWriters builds a history of n single-write transactions, each in
// its own session, all writing distinct values to object x.
func manyWriters(n int) *model.History {
	sessions := make([]model.Session, n)
	for i := range sessions {
		sessions[i] = model.Session{
			ID: fmt.Sprintf("s%d", i),
			Transactions: []model.Transaction{
				model.NewTransaction(fmt.Sprintf("t%d", i), model.Write("x", model.Value(i))),
			},
		}
	}
	return model.NewHistory(sessions...)
}

// TestOptionsPerFieldDefaults guards against the old zero-value trap:
// Options used to be compared against Options{} wholesale, so setting
// any single field (a metrics registry, a tracer) silently disabled
// the init transaction and zeroed the budget. Defaults must now apply
// per field.
func TestOptionsPerFieldDefaults(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	res, err := Certify(writeSkewNoInit(), depgraph.SI, Options{Metrics: reg})
	if err != nil {
		t.Fatalf("Certify with only Metrics set: %v", err)
	}
	if !res.Member {
		t.Fatalf("write skew must be in SI; a non-member verdict means defaults were dropped")
	}

	n := (Options{Metrics: reg}).normalized()
	if n.Budget != DefaultOptions().Budget {
		t.Errorf("Budget not defaulted alongside Metrics: got %d", n.Budget)
	}
	if n.Parallelism < 1 {
		t.Errorf("Parallelism not defaulted alongside Metrics: got %d", n.Parallelism)
	}
	if n.NoInit || !n.PinInit {
		t.Errorf("init defaults not applied alongside Metrics: NoInit=%v PinInit=%v", n.NoInit, n.PinInit)
	}
	// The explicit escape hatch must survive normalisation.
	n2 := (Options{NoInit: true}).normalized()
	if !n2.NoInit || n2.PinInit {
		t.Errorf("NoInit escape hatch broken: NoInit=%v PinInit=%v", n2.NoInit, n2.PinInit)
	}
}

// TestCertifyAllFirstErrorInArgumentOrder pins CertifyAll's error to
// the first failing model in the models argument order, independent of
// goroutine scheduling.
func TestCertifyAllFirstErrorInArgumentOrder(t *testing.T) {
	t.Parallel()
	h := manyWriters(65) // every model fails with the >64-writer error
	for i := 0; i < 10; i++ {
		_, err := CertifyAll(h, []depgraph.Model{depgraph.PSI, depgraph.SER}, Options{NoInit: true})
		if err == nil {
			t.Fatal("CertifyAll on 65 writers: want error, got nil")
		}
		if !strings.HasPrefix(err.Error(), "PSI:") {
			t.Fatalf("error not attributed to first model in argument order: %v", err)
		}
		_, err = CertifyAll(h, []depgraph.Model{depgraph.SER, depgraph.PSI}, Options{NoInit: true})
		if err == nil || !strings.HasPrefix(err.Error(), "SER:") {
			t.Fatalf("reversed model order: want SER-attributed error, got %v", err)
		}
	}
}

// TestTooManyWriters exercises the >64 writers-per-object error path,
// sequentially and with workers, and checks 64 writers still certify.
func TestTooManyWriters(t *testing.T) {
	t.Parallel()
	for _, par := range []int{1, 4} {
		_, err := Certify(manyWriters(65), depgraph.SER, Options{NoInit: true, Parallelism: par})
		if err == nil {
			t.Fatalf("p%d: 65 writers must be rejected with an error", par)
		}
		if !strings.Contains(err.Error(), "65 writers") || !strings.Contains(err.Error(), "limited to 64") {
			t.Fatalf("p%d: unexpected error text: %v", par, err)
		}
		if errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("p%d: writer-limit error must not be a budget error: %v", par, err)
		}

		res, err := Certify(manyWriters(64), depgraph.SER, Options{NoInit: true, Parallelism: par})
		if err != nil {
			t.Fatalf("p%d: 64 blind writers: %v", par, err)
		}
		if !res.Member || res.Examined != 1 {
			t.Fatalf("p%d: 64 blind writers: want member on first candidate, got member=%v examined=%d", par, res.Member, res.Examined)
		}
	}
}

// budgetHistory builds a guaranteed non-member of SER with a large
// candidate space: four same-value writers of x feed one reader (four
// top-level branches), five distinct writers of y contribute 120
// write orders per branch, and a write-skew gadget on a and b makes
// every candidate fail the SER check — so the search must exhaust the
// budget rather than stop at a member.
func budgetHistory() *model.History {
	var sessions []model.Session
	one := func(id string, ops ...model.Op) model.Session {
		return model.Session{ID: "s-" + id, Transactions: []model.Transaction{model.NewTransaction(id, ops...)}}
	}
	for i := 0; i < 4; i++ {
		sessions = append(sessions, one(fmt.Sprintf("wx%d", i), model.Write("x", 1)))
	}
	sessions = append(sessions, one("rx", model.Read("x", 1)))
	for i := 0; i < 5; i++ {
		sessions = append(sessions, one(fmt.Sprintf("wy%d", i), model.Write("y", model.Value(10+i))))
	}
	sessions = append(sessions,
		one("g0", model.Write("a", 1), model.Write("b", 1)),
		one("gA", model.Read("a", 1), model.Write("b", 2)),
		one("gB", model.Read("b", 1), model.Write("a", 2)),
	)
	return model.NewHistory(sessions...)
}

// TestBudgetExceededUnderParallelism checks ErrBudgetExceeded fires
// under the worker pool and that the shared budget is respected within
// a worker-count tolerance: each worker can overshoot the shared
// counter by at most one candidate before it observes the breach.
func TestBudgetExceededUnderParallelism(t *testing.T) {
	t.Parallel()
	const budget = 50
	h := budgetHistory()

	res, err := Certify(h, depgraph.SER, Options{NoInit: true, Budget: budget, Parallelism: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("p1: want ErrBudgetExceeded, got %v", err)
	}
	if res.Examined != budget+1 {
		t.Fatalf("p1: sequential budget stop must examine exactly budget+1, got %d", res.Examined)
	}

	const workers = 4
	res, err = Certify(h, depgraph.SER, Options{NoInit: true, Budget: budget, Parallelism: workers})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("p%d: want ErrBudgetExceeded, got %v", workers, err)
	}
	if res.Examined <= budget || res.Examined > budget+workers {
		t.Fatalf("p%d: examined %d outside (budget, budget+workers] = (%d, %d]", workers, res.Examined, budget, budget+workers)
	}
}
