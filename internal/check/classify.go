package check

import (
	"fmt"

	"sian/internal/depgraph"
	"sian/internal/model"
)

// Anomaly names the weakest-model boundary a history sits on: the
// class of behaviour that must be given up to admit it.
type Anomaly int

// Anomaly classes, ordered from benign to exotic. The names follow the
// paper's Figure 2 taxonomy; each class is defined by the membership
// vector across the model lattice rather than by syntactic pattern
// matching, so it is exact.
const (
	AnomalyInvalid Anomaly = iota
	// Serializable: allowed by every model.
	Serializable
	// WriteSkew: SI-allowed but not serializable — the Figure 2(d)
	// class (two adjacent anti-dependencies).
	WriteSkew
	// LongFork: PSI-allowed but not SI-allowed — the Figure 2(c)
	// class (non-adjacent anti-dependencies, PREFIX violation).
	LongFork
	// LostUpdate: PC-allowed but not PSI-allowed — the Figure 2(b)
	// class (NOCONFLICT violation).
	LostUpdate
	// StaleSessionRead: GSI-allowed but outside every strong-session
	// model — a SESSION violation.
	StaleSessionRead
	// Inconsistent: outside every supported model (including an INT
	// violation or an unreadable value).
	Inconsistent
)

// String names the anomaly class.
func (a Anomaly) String() string {
	switch a {
	case Serializable:
		return "serializable"
	case WriteSkew:
		return "write skew (SI, not SER)"
	case LongFork:
		return "long fork (PSI, not SI)"
	case LostUpdate:
		return "lost update (PC, not PSI)"
	case StaleSessionRead:
		return "stale session read (GSI only)"
	case Inconsistent:
		return "inconsistent (no supported model)"
	default:
		return fmt.Sprintf("Anomaly(%d)", int(a))
	}
}

// Report is the outcome of Classify.
type Report struct {
	// Membership per model.
	Membership map[depgraph.Model]bool
	// Anomaly is the boundary class (see the Anomaly constants).
	Anomaly Anomaly
	// Results carries the underlying per-model certification results
	// (witness graphs for members, rejection graphs where available).
	Results map[depgraph.Model]*Result
}

// Classify certifies the history against the full model lattice and
// names the anomaly class of the weakest boundary it crosses.
func Classify(h *model.History, opts Options) (*Report, error) {
	models := []depgraph.Model{depgraph.SER, depgraph.SI, depgraph.PSI, depgraph.PC, depgraph.GSI}
	results, err := CertifyAll(h, models, opts)
	if err != nil {
		return nil, err
	}
	member := make(map[depgraph.Model]bool, len(models))
	for m, r := range results {
		member[m] = r != nil && r.Member
	}
	rep := &Report{Membership: member, Results: results}
	switch {
	case member[depgraph.SER]:
		rep.Anomaly = Serializable
	case member[depgraph.SI]:
		rep.Anomaly = WriteSkew
	case member[depgraph.PSI]:
		rep.Anomaly = LongFork
	case member[depgraph.PC]:
		rep.Anomaly = LostUpdate
	case member[depgraph.GSI]:
		rep.Anomaly = StaleSessionRead
	default:
		rep.Anomaly = Inconsistent
	}
	return rep, nil
}
