package check

import (
	"strings"
	"testing"

	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/workload"
)

// explainOpts matches the options the Figure 2 example histories are
// built for: they carry their own init transaction, pinned first.
var explainOpts = Options{NoInit: true, PinInit: true, Budget: 1_000_000}

// assertCycleWellFormed checks the witness is a genuine cycle: each
// edge starts where the previous one ended and the last edge returns to
// the start of the first.
func assertCycleWellFormed(t *testing.T, cycle []depgraph.Edge) {
	t.Helper()
	if len(cycle) == 0 {
		t.Fatal("empty witness cycle")
	}
	for i := 1; i < len(cycle); i++ {
		if cycle[i].From != cycle[i-1].To {
			t.Errorf("edge %d starts at %d but edge %d ended at %d", i, cycle[i].From, i-1, cycle[i-1].To)
		}
	}
	if last := cycle[len(cycle)-1]; last.To != cycle[0].From {
		t.Errorf("cycle does not close: last edge ends at %d, first starts at %d", last.To, cycle[0].From)
	}
}

func countKind(cycle []depgraph.Edge, k depgraph.EdgeKind) int {
	n := 0
	for _, e := range cycle {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestExplainWriteSkew asserts the Figure 2(d) write-skew history is
// rejected under SER with a TOTALVIS explanation whose witness is the
// pure anti-dependency cycle T1 -RW-> T2 -RW-> T1 (Theorem 8).
func TestExplainWriteSkew(t *testing.T) {
	ws := workload.WriteSkew()
	res, err := Certify(ws.History, depgraph.SER, explainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Fatal("write skew must be rejected under SER")
	}
	e := res.Explain
	if e == nil {
		t.Fatal("negative verdict without Explain")
	}
	if !strings.Contains(e.Axiom, "TOTALVIS") {
		t.Errorf("axiom = %q, want TOTALVIS (write-skew shape)", e.Axiom)
	}
	if !e.Definitive || res.Examined != 1 {
		t.Errorf("definitive = %v, examined = %d; write skew has a unique extension", e.Definitive, res.Examined)
	}
	assertCycleWellFormed(t, e.Cycle)
	if got := countKind(e.Cycle, depgraph.EdgeRW); got != 2 {
		t.Errorf("witness has %d RW edges, want 2 (both anti-dependencies)", got)
	}
	if len(e.Cycle) != 2 {
		t.Errorf("witness has %d edges, want the 2-edge RW cycle, got %s", len(e.Cycle), e.Graph.FormatCycle(e.Cycle))
	}
	if s := e.String(); !strings.Contains(s, "TOTALVIS") || !strings.Contains(s, "RW") {
		t.Errorf("String() = %q, want axiom and cycle rendered", s)
	}
}

// TestExplainLongFork asserts the Figure 2(c) long-fork history is
// rejected under SI with a PREFIX explanation: a 4-edge cycle with two
// non-adjacent anti-dependencies (Theorem 9).
func TestExplainLongFork(t *testing.T) {
	lf := workload.LongFork()
	res, err := Certify(lf.History, depgraph.SI, explainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Fatal("long fork must be rejected under SI")
	}
	e := res.Explain
	if e == nil {
		t.Fatal("negative verdict without Explain")
	}
	if !strings.Contains(e.Axiom, "PREFIX") {
		t.Errorf("axiom = %q, want PREFIX (long-fork shape)", e.Axiom)
	}
	if !e.Definitive {
		t.Error("long fork has a unique extension; explanation must be definitive")
	}
	assertCycleWellFormed(t, e.Cycle)
	if got := countKind(e.Cycle, depgraph.EdgeRW); got != 2 {
		t.Errorf("witness has %d RW edges, want 2", got)
	}
	if got := countKind(e.Cycle, depgraph.EdgeWR); got != 2 {
		t.Errorf("witness has %d WR edges, want 2", got)
	}
	// The paper's witness alternates WR and RW through T3 and T4: no
	// two anti-dependencies are adjacent, so NOCONFLICT alone cannot
	// explain it — that is what makes it a PREFIX violation.
	for i, edge := range e.Cycle {
		next := e.Cycle[(i+1)%len(e.Cycle)]
		if edge.Kind == depgraph.EdgeRW && next.Kind == depgraph.EdgeRW {
			t.Errorf("adjacent RW edges at %d in %s; long fork's are non-adjacent", i, e.Graph.FormatCycle(e.Cycle))
		}
	}
}

// TestExplainLostUpdate asserts the Figure 2(b) lost-update history is
// rejected under SI with a NOCONFLICT explanation: a WW edge followed
// by a single anti-dependency. The WW order branches (T1 before T2 or
// the reverse), so the explanation is per-candidate, not definitive.
func TestExplainLostUpdate(t *testing.T) {
	lu := workload.LostUpdate()
	res, err := Certify(lu.History, depgraph.SI, explainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Fatal("lost update must be rejected under SI")
	}
	e := res.Explain
	if e == nil {
		t.Fatal("negative verdict without Explain")
	}
	if !strings.Contains(e.Axiom, "NOCONFLICT") {
		t.Errorf("axiom = %q, want NOCONFLICT (lost-update shape)", e.Axiom)
	}
	if res.Examined != 2 || e.Definitive {
		t.Errorf("examined = %d, definitive = %v; both WW orders must be tried and rejected", res.Examined, e.Definitive)
	}
	if e.Detail == "" {
		t.Error("non-definitive explanation must say which candidate the cycle comes from")
	}
	assertCycleWellFormed(t, e.Cycle)
	if got := countKind(e.Cycle, depgraph.EdgeRW); got != 1 {
		t.Errorf("witness has %d RW edges, want exactly 1 (lost-update shape)", got)
	}
	if got := countKind(e.Cycle, depgraph.EdgeWW); got != 1 {
		t.Errorf("witness has %d WW edges, want 1", got)
	}
}

// TestExplainInt asserts INT violations explain themselves without a
// cycle: the axiom constrains single transactions, not dependencies.
func TestExplainInt(t *testing.T) {
	h := model.NewHistory(
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("T1",
				model.Write("x", 1),
				model.Read("x", 2), // contradicts the transaction's own write
			),
		}},
	)
	res, err := Certify(h, depgraph.SI, Options{PinInit: true, Budget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Fatal("INT-violating history must be rejected")
	}
	e := res.Explain
	if e == nil || e.Axiom != "INT" {
		t.Fatalf("explain = %v, want axiom INT", e)
	}
	if len(e.Cycle) != 0 {
		t.Errorf("INT violations are not cycle-shaped, got %d edges", len(e.Cycle))
	}
	if !e.Definitive || e.Detail == "" {
		t.Errorf("INT explanation must be definitive with detail, got %+v", e)
	}
}

// TestExplainNilForMembers asserts positive verdicts carry no
// explanation.
func TestExplainNilForMembers(t *testing.T) {
	ws := workload.WriteSkew() // allowed under SI
	res, err := Certify(ws.History, depgraph.SI, explainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Member {
		t.Fatal("write skew must be allowed under SI")
	}
	if res.Explain != nil {
		t.Errorf("members must not carry an Explain, got %s", res.Explain)
	}
}
