package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapRegistryWatermark(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	now.Store(10)
	if w := r.watermark(now.Load()); w != 10 {
		t.Errorf("idle watermark = %d, want 10", w)
	}
	t1 := r.acquire(now.Load)
	now.Store(15)
	t2 := r.acquire(now.Load)
	if t1.snap != 10 || t2.snap != 15 {
		t.Fatalf("snaps = %d, %d", t1.snap, t2.snap)
	}
	if w := r.watermark(now.Load()); w != 10 {
		t.Errorf("watermark with live snaps = %d, want 10", w)
	}
	r.release(t1)
	if w := r.watermark(now.Load()); w != 15 {
		t.Errorf("watermark after release = %d, want 15", w)
	}
	r.release(t2)
	now.Store(20)
	if w := r.watermark(now.Load()); w != 20 {
		t.Errorf("watermark when idle again = %d, want 20", w)
	}
}

// TestSnapRegistryOverflow exhausts every slot: registrations beyond
// the array must still hold the watermark down. Epoch reclamation is
// conservative — an overflowed registration contributes its epoch
// floor, not its exact snapshot — so the watermark with live overflow
// tickets is the floor, and releasing everything frees it entirely.
func TestSnapRegistryOverflow(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	now.Store(5)
	tickets := make([]snapTicket, 0, snapSlots+10)
	for i := 0; i < snapSlots+10; i++ {
		tickets = append(tickets, r.acquire(now.Load))
	}
	overflowed := 0
	for _, tk := range tickets {
		if tk.slot == nil {
			overflowed++
		}
	}
	if overflowed != 10 {
		t.Errorf("overflowed registrations = %d, want 10", overflowed)
	}
	now.Store(50)
	floor := uint64(5) >> epochShift << epochShift
	if w := r.watermark(now.Load()); w != floor {
		t.Errorf("watermark = %d, want the overflow epoch floor %d", w, floor)
	}
	for _, tk := range tickets {
		r.release(tk)
	}
	if w := r.watermark(now.Load()); w != 50 {
		t.Errorf("watermark after releasing all = %d, want 50", w)
	}
}

// TestSnapRegistryOverflowEpochs pins the epoch arithmetic: overflow
// registrations spread across distinct epochs each hold the watermark
// at their own epoch's floor, and releasing the older epoch advances
// the watermark to the next live one.
func TestSnapRegistryOverflowEpochs(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	// Fill the fast path at a high snapshot so overflow dominates the
	// watermark.
	now.Store(10 * (1 << epochShift))
	var slotTickets []snapTicket
	for i := 0; i < snapSlots; i++ {
		slotTickets = append(slotTickets, r.acquire(now.Load))
	}
	old := r.acquire(now.Load) // epoch 10, floor 10<<shift
	now.Store(12*(1<<epochShift) + 3)
	young := r.acquire(now.Load) // epoch 12, floor 12<<shift
	if old.slot != nil || young.slot != nil {
		t.Fatal("expected overflow registrations")
	}
	if w := r.watermark(now.Load()); w != 10<<epochShift {
		t.Errorf("watermark = %d, want old epoch floor %d", w, 10<<epochShift)
	}
	r.release(old)
	if w := r.watermark(now.Load()); w != 10<<epochShift {
		// The slot tickets (snap 10<<shift) still hold it exactly there.
		t.Errorf("watermark = %d, want %d (slot tickets)", w, 10<<epochShift)
	}
	for _, tk := range slotTickets {
		r.release(tk)
	}
	if w := r.watermark(now.Load()); w != 12<<epochShift {
		t.Errorf("watermark = %d, want young epoch floor %d", w, 12<<epochShift)
	}
	r.release(young)
	if w := r.watermark(now.Load()); w != now.Load() {
		t.Errorf("watermark idle = %d, want %d", w, now.Load())
	}
}

// TestSnapRegistryOverflowConcurrent is the >snapSlots regression
// test for the overflow path: more than 512 concurrent registrations
// churn acquire/release while collectors scan, under -race. The
// safety property is the sentinel invariant: a watermark computed
// while a registration is live never exceeds that registration's
// snapshot — regardless of which path (slot, epoch ring, spill) took
// the registration.
func TestSnapRegistryOverflowConcurrent(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	now.Store(1)
	stop := make(chan struct{})
	var clockDone sync.WaitGroup
	clockDone.Add(1)
	go func() {
		defer clockDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				now.Add(1)
			}
		}
	}()

	const sessions = snapSlots + 256 // force sustained overflow
	const rounds = 200
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tk := r.acquire(now.Load)
				if tk.snap > now.Load() {
					t.Errorf("snapshot %d above the clock", tk.snap)
				}
				if i%8 == 0 {
					// Interleave collector scans with held tickets: the
					// watermark must respect our own live registration.
					if w := r.watermark(now.Load()); w > tk.snap {
						t.Errorf("watermark %d above live snapshot %d", w, tk.snap)
					}
				}
				r.release(tk)
			}
		}()
	}
	wg.Wait()
	close(stop)
	clockDone.Wait()

	// Quiesced: no registrations left anywhere (every epoch word has
	// count zero, the spill map is empty), so the watermark is free.
	final := now.Load()
	if w := r.watermark(final); w != final {
		t.Errorf("idle watermark = %d, want %d (leaked registration?)", w, final)
	}
}

// TestSnapRegistryBeginGCRace hammers the acquire/watermark
// handshake: a ticket's snapshot must never fall below a watermark a
// concurrent collector already returned... the opposite — a collector
// must never return a watermark above a snapshot that was live when
// it scanned. The invariant checked: at release time, every watermark
// observed since the ticket was issued is ≤ the ticket's snapshot or
// was computed before the acquire. Conservatively we check that no
// watermark returned while the ticket is held exceeds its snapshot.
func TestSnapRegistryBeginGCRace(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Clock: advances continuously like the commit pipeline.
	var clockDone sync.WaitGroup
	clockDone.Add(1)
	go func() {
		defer clockDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				now.Add(1)
			}
		}
	}()

	// Transactions: acquire, verify against the collector, release.
	var lowWater atomic.Uint64 // highest watermark any GC returned
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				tk := r.acquire(now.Load)
				// A watermark returned after our acquire can never
				// exceed our snapshot while we are live. lowWater is
				// monotone, so reading it now bounds every earlier GC;
				// GCs that ran entirely before our acquire may have
				// higher values, which is why the collector asserts,
				// not the transaction. Here we only exercise churn.
				if tk.snap > now.Load() {
					t.Errorf("snapshot %d above the clock", tk.snap)
				}
				r.release(tk)
			}
		}()
	}

	// Collector: every watermark must be ≥ the previous one is not
	// guaranteed (snapshots can hold it down), but it must never
	// exceed the clock, and — the safety property — never exceed a
	// snapshot acquired before the scan and still held. We verify
	// safety by registering our own sentinel ticket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			sentinel := r.acquire(now.Load)
			w := r.watermark(now.Load())
			if w > sentinel.snap {
				t.Errorf("watermark %d above live sentinel snapshot %d", w, sentinel.snap)
			}
			if prev := lowWater.Load(); w > prev {
				lowWater.CompareAndSwap(prev, w)
			}
			r.release(sentinel)
		}
	}()

	wg.Wait()
	close(stop)
	clockDone.Wait()
}
