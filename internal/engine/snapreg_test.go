package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapRegistryWatermark(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	now.Store(10)
	if w := r.watermark(now.Load()); w != 10 {
		t.Errorf("idle watermark = %d, want 10", w)
	}
	t1 := r.acquire(now.Load)
	now.Store(15)
	t2 := r.acquire(now.Load)
	if t1.snap != 10 || t2.snap != 15 {
		t.Fatalf("snaps = %d, %d", t1.snap, t2.snap)
	}
	if w := r.watermark(now.Load()); w != 10 {
		t.Errorf("watermark with live snaps = %d, want 10", w)
	}
	r.release(t1)
	if w := r.watermark(now.Load()); w != 15 {
		t.Errorf("watermark after release = %d, want 15", w)
	}
	r.release(t2)
	now.Store(20)
	if w := r.watermark(now.Load()); w != 20 {
		t.Errorf("watermark when idle again = %d, want 20", w)
	}
}

// TestSnapRegistryOverflow exhausts every slot: registrations beyond
// the array must still hold the watermark down.
func TestSnapRegistryOverflow(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	now.Store(5)
	tickets := make([]snapTicket, 0, snapSlots+10)
	for i := 0; i < snapSlots+10; i++ {
		tickets = append(tickets, r.acquire(now.Load))
	}
	now.Store(50)
	if w := r.watermark(now.Load()); w != 5 {
		t.Errorf("watermark = %d, want 5 (held by overflow registrations too)", w)
	}
	for _, tk := range tickets {
		r.release(tk)
	}
	if w := r.watermark(now.Load()); w != 50 {
		t.Errorf("watermark after releasing all = %d, want 50", w)
	}
}

// TestSnapRegistryBeginGCRace hammers the acquire/watermark
// handshake: a ticket's snapshot must never fall below a watermark a
// concurrent collector already returned... the opposite — a collector
// must never return a watermark above a snapshot that was live when
// it scanned. The invariant checked: at release time, every watermark
// observed since the ticket was issued is ≤ the ticket's snapshot or
// was computed before the acquire. Conservatively we check that no
// watermark returned while the ticket is held exceeds its snapshot.
func TestSnapRegistryBeginGCRace(t *testing.T) {
	t.Parallel()
	var r snapRegistry
	var now atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Clock: advances continuously like the commit pipeline.
	var clockDone sync.WaitGroup
	clockDone.Add(1)
	go func() {
		defer clockDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				now.Add(1)
			}
		}
	}()

	// Transactions: acquire, verify against the collector, release.
	var lowWater atomic.Uint64 // highest watermark any GC returned
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				tk := r.acquire(now.Load)
				// A watermark returned after our acquire can never
				// exceed our snapshot while we are live. lowWater is
				// monotone, so reading it now bounds every earlier GC;
				// GCs that ran entirely before our acquire may have
				// higher values, which is why the collector asserts,
				// not the transaction. Here we only exercise churn.
				if tk.snap > now.Load() {
					t.Errorf("snapshot %d above the clock", tk.snap)
				}
				r.release(tk)
			}
		}()
	}

	// Collector: every watermark must be ≥ the previous one is not
	// guaranteed (snapshots can hold it down), but it must never
	// exceed the clock, and — the safety property — never exceed a
	// snapshot acquired before the scan and still held. We verify
	// safety by registering our own sentinel ticket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			sentinel := r.acquire(now.Load)
			w := r.watermark(now.Load())
			if w > sentinel.snap {
				t.Errorf("watermark %d above live sentinel snapshot %d", w, sentinel.snap)
			}
			if prev := lowWater.Load(); w > prev {
				lowWater.CompareAndSwap(prev, w)
			}
			r.release(sentinel)
		}
	}()

	wg.Wait()
	close(stop)
	clockDone.Wait()
}
