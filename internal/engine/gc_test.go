package engine_test

import (
	"sync"
	"testing"

	. "sian/internal/engine"
	"sian/internal/model"
)

func TestCompactSI(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	for i := 1; i <= 20; i++ {
		if err := s.Transact(func(tx *Tx) error { return tx.Write("x", model.Value(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	dropped := db.Compact()
	if dropped != 20 { // 21 versions, latest survives
		t.Errorf("Compact dropped %d versions, want 20", dropped)
	}
	// Reads still see the latest value.
	err := s.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		if v != 20 {
			t.Errorf("x = %d after GC", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing further to drop.
	if d := db.Compact(); d != 0 {
		t.Errorf("second Compact dropped %d", d)
	}
}

// TestCompactPreservesOpenSnapshot is the correctness core of GC: an
// open transaction's snapshot must survive compaction.
func TestCompactPreservesOpenSnapshot(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
		t.Fatal(err)
	}
	reader, err := db.Session("reader").Begin("old-snapshot")
	if err != nil {
		t.Fatal(err)
	}
	writer := db.Session("writer")
	for i := 2; i <= 10; i++ {
		if err := writer.Transact(func(tx *Tx) error { return tx.Write("x", model.Value(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	// GC with the old snapshot still open must keep its version.
	db.Compact()
	v, err := reader.Read("x")
	if err != nil {
		t.Fatalf("read at old snapshot after GC: %v", err)
	}
	if v != 1 {
		t.Errorf("old snapshot read %d, want 1", v)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	// With the snapshot closed, GC can now reclaim the old versions.
	if dropped := db.Compact(); dropped == 0 {
		t.Error("nothing reclaimed after closing the old snapshot")
	}
}

func TestCompactPSI(t *testing.T) {
	t.Parallel()
	db := newDB(t, PSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	for i := 1; i <= 10; i++ {
		if err := s.Transact(func(tx *Tx) error { return tx.Write("x", model.Value(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	db.Flush()
	if dropped := db.Compact(); dropped == 0 {
		t.Error("PSI Compact reclaimed nothing")
	}
	err := s.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		if v != 10 {
			t.Errorf("x = %d after GC", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompactSERNoop(t *testing.T) {
	t.Parallel()
	db := newDB(t, SER, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	if d := db.Compact(); d != 0 {
		t.Errorf("SER Compact = %d", d)
	}
}

// TestCompactUnderLoad runs GC concurrently with a write-heavy
// workload; the engine must stay consistent (exercised under -race).
func TestCompactUnderLoad(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0, "y": 0}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var gcDone sync.WaitGroup
	gcDone.Add(1)
	go func() {
		defer gcDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.Compact()
			}
		}
	}()
	var writers sync.WaitGroup
	for i := 0; i < 2; i++ {
		sess := db.Session(string(rune('a' + i)))
		writers.Add(1)
		go func() {
			defer writers.Done()
			for n := 0; n < 100; n++ {
				err := sess.Transact(func(tx *Tx) error {
					v, err := tx.Read("x")
					if err != nil {
						return err
					}
					if err := tx.Write("x", v+1); err != nil {
						return err
					}
					w, err := tx.Read("y")
					if err != nil {
						return err
					}
					return tx.Write("y", w+1)
				})
				if err != nil {
					t.Errorf("transact: %v", err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	gcDone.Wait()
	s := db.Session("audit")
	err := s.Transact(func(tx *Tx) error {
		x, err := tx.Read("x")
		if err != nil {
			return err
		}
		y, err := tx.Read("y")
		if err != nil {
			return err
		}
		if x != 200 || y != 200 {
			t.Errorf("counters = (%d, %d), want (200, 200)", x, y)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
