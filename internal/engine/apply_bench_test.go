package engine_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	. "sian/internal/engine"
	"sian/internal/model"
)

// BenchmarkPSIApply guards the batched replica apply loop: commits
// with multi-object write sets are staged at site 0 under manual
// propagation, then the timed section applies them at site 1 via
// Flush. Each applied commit installs its whole write set with one
// batch (one shard-lock acquisition per covered shard) instead of one
// store-lock round-trip per object.
func BenchmarkPSIApply(b *testing.B) {
	const objsPerCommit = 8
	db, err := New(PSI, Config{ManualPropagation: true, Sites: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	init := make(map[model.Obj]model.Value, objsPerCommit)
	for i := 0; i < objsPerCommit; i++ {
		init[model.Obj(fmt.Sprintf("p%d", i))] = 0
	}
	if err := db.Initialize(init); err != nil {
		b.Fatal(err)
	}
	origin := db.Session("origin") // site 0
	db.Session("sink")             // materialise site 1
	db.Flush()
	for n := 0; n < b.N; n++ {
		err := origin.Transact(func(tx *Tx) error {
			for i := 0; i < objsPerCommit; i++ {
				if err := tx.Write(model.Obj(fmt.Sprintf("p%d", i)), model.Value(n)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	db.Flush() // the timed apply: b.N staged commits × objsPerCommit installs
}

// BenchmarkSICommitDisjoint measures the multicore SI commit path:
// every worker owns a private object, so commits validate and install
// under disjoint shard locks and only meet at the publication
// handoff. Run with -cpu 1,4,8 to see the scaling the global-mutex
// seed engine could not provide.
func BenchmarkSICommitDisjoint(b *testing.B) {
	db, err := New(SI, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	init := make(map[model.Obj]model.Value)
	const pool = 64
	for i := 0; i < pool; i++ {
		init[model.Obj(fmt.Sprintf("d%d", i))] = 0
	}
	if err := db.Initialize(init); err != nil {
		b.Fatal(err)
	}
	var next atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		// One private object and session per worker goroutine.
		id := int(next.Add(1)) - 1
		sess := db.Session(fmt.Sprintf("bench%d", id))
		obj := model.Obj(fmt.Sprintf("d%d", id%pool))
		v := model.Value(0)
		for pb.Next() {
			v++
			if err := sess.Transact(func(tx *Tx) error { return tx.Write(obj, v) }); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
