// Package engine implements in-process transactional storage engines
// for the three consistency models the paper analyses:
//
//   - SI: multi-version concurrency control with start-timestamp
//     snapshots and first-committer-wins write-conflict detection —
//     the idealised algorithm of §1 of the paper;
//   - SER: strict two-phase locking over a single-version store
//     (serializable);
//   - PSI: one replica per session with local snapshots, global
//     write-conflict detection and asynchronous causal propagation of
//     commit logs (parallel snapshot isolation [31]).
//
// Every engine records the operations of committed transactions,
// session by session, and produces a model.History that the certifier
// in internal/check can judge against the dependency-graph
// characterisations — closing the loop between the paper's operational
// and declarative views of the models.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
)

// Kind selects the concurrency-control protocol of a DB.
type Kind int

// Engine kinds. SSI is serializable snapshot isolation (Cahill et
// al.): the SI protocol with run-time dangerous-structure detection,
// guaranteeing serializable histories.
const (
	KindInvalid Kind = iota
	SI
	SER
	PSI
	SSI
)

// String returns "SI", "SER", "PSI" or "SSI".
func (k Kind) String() string {
	switch k {
	case SI:
		return "SI"
	case SER:
		return "SER"
	case PSI:
		return "PSI"
	case SSI:
		return "SSI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sentinel errors.
var (
	// ErrConflict aborts a transaction that lost a write-conflict or
	// lock-conflict race; Transact retries such transactions
	// automatically (per §5 of the paper, aborted pieces are
	// resubmitted until they commit).
	ErrConflict = errors.New("engine: transaction aborted by conflict")
	// ErrUninitialized is returned when reading an object that has
	// never been written; call DB.Initialize first.
	ErrUninitialized = errors.New("engine: object not initialised")
	// ErrClosed is returned for operations on a closed DB.
	ErrClosed = errors.New("engine: database closed")
	// ErrTooManyRetries is returned by Transact when a transaction
	// keeps conflicting beyond the retry limit.
	ErrTooManyRetries = errors.New("engine: too many conflict retries")
)

// Config tunes a DB. The zero value is usable.
type Config struct {
	// Driver selects the storage driver backing the engine (SI and SSI
	// only; PSI manages one in-memory store per replica and SER keeps
	// no multi-version store at all). Nil selects a fresh in-memory
	// driver (storage.NewMem). Passing a storage/wal driver makes
	// commits durable: the SI commit window appends a CRC-framed
	// record (full op list included) and fsyncs it before the commit
	// timestamp is published, and commit events then carry the durable
	// log sequence number. The DB owns the driver: Close closes it.
	Driver storage.Driver
	// MaxRetries bounds Transact's automatic conflict retries;
	// defaults to 10000.
	MaxRetries int
	// ManualPropagation (PSI only) disables the background
	// propagators; commits then become visible at other replicas only
	// via DB.Propagate or DB.Flush. Used by tests and examples to
	// stage anomalies deterministically.
	ManualPropagation bool
	// Sites (PSI only) fixes the number of replicas; by default each
	// new session gets its own replica.
	Sites int
	// Metrics receives the engine's counters and histograms, labelled
	// engine="<kind>". When nil the DB uses a private registry,
	// reachable via DB.Metrics, so instrumentation is always on and
	// the hot path never branches on "is observability enabled?".
	Metrics *obs.Registry
	// Recorder, when non-nil, receives a structured event for every
	// transaction lifecycle point (begin, read, write, commit, abort,
	// conflict) across all sessions — the flight-recorder stream that
	// internal/monitor certifies online and eventlog.WriteChromeTrace
	// renders as a timeline. Recording is lock-light and never blocks
	// commits; nil keeps the hot path free of event appends.
	Recorder *eventlog.Recorder
	// TxTracer, when non-nil, assigns every transaction attempt a
	// trace ID and records per-stage commit-pipeline spans (begin
	// wait, reads, lock wait, validate, install, WAL append, fsync
	// wait, publish, ack) retained for GET /trace/{id} and the slow
	// log. Tracing is off by default and free when off: with a nil
	// tracer the commit path carries only nil-pointer checks, no
	// clock reads and no allocations.
	TxTracer *txtrace.Tracer
	// RetryBackoffBase and RetryBackoffMax shape the capped
	// exponential backoff (with jitter) Transact applies between
	// conflict retries, after a few initial pure yields. Zero values
	// default to 1µs base and 1ms cap; a negative RetryBackoffMax
	// disables sleeping entirely (every retry just yields, the seed
	// behaviour). Backoff de-synchronises retry storms: without it,
	// contending sessions re-collide in lockstep and the conflict
	// counters grow superlinearly with the session count.
	RetryBackoffBase time.Duration
	RetryBackoffMax  time.Duration
	// DisableGroupCommit turns off the SI group-commit sequencer
	// (batcher.go); every writing commit then takes the solo path —
	// one lock window, one WAL record and fsync negotiation, one
	// publish CAS each. Group commit is on by default; disabling it
	// exists for A/B benchmarking and batch-vs-solo differential
	// tests. Ignored by the other engine kinds.
	DisableGroupCommit bool
	// DisableReadCache turns off the per-session snapshot read cache
	// (SI only): with it off, every Tx.Read outside the write buffer
	// takes the storage shard read-lock. The cache is sound because a
	// session's reads at one snapshot are pure functions of immutable
	// versions; it is invalidated whenever a transaction begins at a
	// newer snapshot. Ignored by the other engine kinds (SSI reads
	// register SIREAD locks and must reach the protocol every time).
	DisableReadCache bool
}

func (c Config) withDefaults() Config {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10000
	}
	if c.RetryBackoffBase <= 0 {
		c.RetryBackoffBase = time.Microsecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = time.Millisecond
	}
	return c
}

// protocol is the engine-specific part of a DB.
type protocol interface {
	// begin starts a transaction for a session pinned to a site.
	begin(site int) (txProtocol, error)
	// ensureSite makes the site index valid (PSI allocates replicas
	// lazily; others ignore it).
	ensureSite(site int)
	// close releases protocol resources (stops goroutines).
	close() error
}

// txProtocol is a live transaction inside a protocol. Reads ignore the
// transaction's own writes — read-your-writes buffering is handled by
// Tx.
type txProtocol interface {
	read(x model.Obj) (model.Value, error)
	// commit atomically applies the buffered writes. It returns the
	// durable log sequence number when the storage driver persists the
	// commit (zero otherwise).
	commit(req commitReq) (lsn uint64, err error)
	abort()
}

// commitReq carries everything a protocol needs to commit: the
// coalesced write set (writes, with order listing the written objects
// deterministically), plus the full operation list and attribution
// that durable drivers persist with the commit record
// (storage.CommitRecord) so that log replay re-certifies the history.
type commitReq struct {
	writes  map[model.Obj]model.Value
	order   []model.Obj
	ops     []model.Op
	session string
	txid    string
	// trace is the attempt's stage-span trace; nil when tracing is
	// off. Protocols Mark pipeline stages on it as they pass them.
	trace *txtrace.Trace
}

// DB is a transactional database handle. Create with New, use Session
// to obtain per-client sessions, and Close when done.
type DB struct {
	kind Kind
	cfg  Config
	impl protocol

	mu       sync.Mutex
	closed   bool
	sessions []*Session
	sites    int

	reg *obs.Registry
	// Counter/histogram handles are resolved once at New; the hot path
	// is a single atomic op per event.
	mCommits   *obs.Counter
	mConflicts *obs.Counter
	mAborts    *obs.Counter
	mRetries   *obs.Counter
	gSessions  *obs.Gauge
	hCommitLat *obs.Histogram
	hSnapAge   *obs.Histogram
}

// Stats reports the database's cumulative counters. Conflicts counts
// only protocol-level losses (first-committer-wins write conflicts,
// lock conflicts, SSI dangerous structures); user-initiated rollbacks
// — a Transact callback returning a non-conflict error, or
// ManualTx.Abort — count as Aborts, so a workload's conflict rate is
// not inflated by explicit business-logic rollbacks. Retries counts
// the automatic re-runs Transact performed after conflicts.
type Stats struct {
	Commits   int64
	Conflicts int64
	Aborts    int64
	Retries   int64
}

// Stats returns a snapshot of the database's counters.
func (db *DB) Stats() Stats {
	return Stats{
		Commits:   db.mCommits.Value(),
		Conflicts: db.mConflicts.Value(),
		Aborts:    db.mAborts.Value(),
		Retries:   db.mRetries.Value(),
	}
}

// Metrics returns the registry holding the engine's metric series
// (Config.Metrics when one was supplied, a private registry
// otherwise): engine_{commits,conflicts,aborts,retries}_total
// counters, an engine_sessions gauge, and
// engine_{commit_latency,snapshot_age}_ns histograms, all labelled
// engine="<kind>".
func (db *DB) Metrics() *obs.Registry { return db.reg }

// New creates a database of the given kind.
func New(kind Kind, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	db := &DB{kind: kind, cfg: cfg}
	db.reg = cfg.Metrics
	if db.reg == nil {
		db.reg = obs.NewRegistry()
	}
	lbl := obs.L("engine", kind.String())
	db.mCommits = db.reg.Counter("engine_commits_total", lbl)
	db.mConflicts = db.reg.Counter("engine_conflicts_total", lbl)
	db.mAborts = db.reg.Counter("engine_aborts_total", lbl)
	db.mRetries = db.reg.Counter("engine_retries_total", lbl)
	db.gSessions = db.reg.Gauge("engine_sessions", lbl)
	db.hCommitLat = db.reg.Histogram("engine_commit_latency_ns", lbl)
	db.hSnapAge = db.reg.Histogram("engine_snapshot_age_ns", lbl)
	if cfg.Driver != nil && kind != SI && kind != SSI {
		return nil, fmt.Errorf("engine: Config.Driver is not supported for %v (SI and SSI only)", kind)
	}
	switch kind {
	case SI:
		db.impl = newSIProtocol(cfg, db.reg)
	case SER:
		db.impl = newSERProtocol()
	case PSI:
		db.impl = newPSIProtocol(cfg)
	case SSI:
		db.impl = newSSIProtocol(cfg)
	default:
		return nil, fmt.Errorf("engine: unknown kind %v", kind)
	}
	return db, nil
}

// Kind returns the engine's protocol kind.
func (db *DB) Kind() Kind { return db.kind }

// Initialize commits a single initialising transaction writing the
// given values, recorded in its own session named
// model.InitTransactionID. Call it once, before starting sessions.
func (db *DB) Initialize(vals map[model.Obj]model.Value) error {
	s := db.Session(model.InitTransactionID)
	err := s.Transact(func(tx *Tx) error {
		objs := make([]model.Obj, 0, len(vals))
		for x := range vals {
			objs = append(objs, x)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		for _, x := range objs {
			if err := tx.Write(x, vals[x]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Make the initial values visible at every replica before the
	// workload starts (no-op for single-site engines).
	db.Flush()
	return nil
}

// Session opens a new client session. Sessions are safe to use from
// one goroutine each; distinct sessions may run concurrently.
func (db *DB) Session(id string) *Session {
	db.mu.Lock()
	defer db.mu.Unlock()
	site := db.sites
	if db.cfg.Sites > 0 {
		site = db.sites % db.cfg.Sites
	}
	db.sites++
	db.impl.ensureSite(site)
	s := &Session{db: db, id: id, site: site}
	db.sessions = append(db.sessions, s)
	db.gSessions.Add(1)
	return s
}

// History snapshots the committed transactions of every session, in
// session-creation order. Call it after the workload has quiesced; it
// is safe at any time but reflects only commits that completed before
// the call.
func (db *DB) History() *model.History {
	db.mu.Lock()
	sessions := make([]*Session, len(db.sessions))
	copy(sessions, db.sessions)
	db.mu.Unlock()
	specs := make([]model.Session, 0, len(sessions))
	for _, s := range sessions {
		txs := s.committed()
		if len(txs) == 0 {
			continue
		}
		specs = append(specs, model.Session{ID: s.id, Transactions: txs})
	}
	return model.NewHistory(specs...)
}

// Close shuts the database down, stopping any background propagation.
// Further transactions fail with ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	return db.impl.close()
}

func (db *DB) isClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.closed
}

// Compact garbage-collects storage versions that no live transaction
// can read — versions older than the oldest active snapshot (per
// replica, for PSI). It returns the number of versions discarded; the
// single-version SER engine has nothing to compact and returns 0.
// Safe to call concurrently with running transactions.
func (db *DB) Compact() int {
	switch p := db.impl.(type) {
	case *siProtocol:
		return p.gc()
	case *psiProtocol:
		return p.gc()
	default:
		return 0
	}
}

// Session is a client session: an ordered sequence of transactions
// (§2). Use Transact to run each transaction.
type Session struct {
	db   *DB
	id   string
	site int

	// rng drives retry-backoff jitter; created lazily on the first
	// backed-off retry and used only from the session's goroutine.
	rng *rand.Rand

	// readCache memoises committed reads, keyed implicitly by the
	// snapshot they were read at (cacheSnap): versions at or below a
	// published snapshot are immutable and compaction always keeps the
	// version visible at the GC watermark, so entries stay valid for
	// as long as the session keeps beginning at the same snapshot, and
	// are dropped wholesale the moment a transaction begins at a newer
	// one. Bound to transactions only for protocols whose reads are
	// side-effect-free snapshot functions (SI). Like rng, it is used
	// only from the session's goroutine, so it needs no lock.
	cacheSnap uint64
	readCache map[model.Obj]cachedRead

	mu       sync.Mutex
	txs      []model.Transaction
	seq      int
	attempts int
}

// cachedRead is one read-cache entry; ok=false caches the negative
// result (ErrUninitialized), which is just as stable as a hit — a
// version at or below the snapshot can never appear later.
type cachedRead struct {
	val model.Value
	ok  bool
}

// readCacheCap bounds the per-session cache; past it, new entries are
// simply not inserted (the hot keys a closed loop re-reads are long
// since cached by then).
const readCacheCap = 4096

// snapshotted is implemented by protocol transactions whose reads are
// pure functions of an immutable snapshot — the precondition for the
// per-session read cache. Only SI qualifies: SSI reads register
// SIREAD locks (side effects), PSI reads depend on mutable replica
// state, SER reads take locks.
type snapshotted interface {
	snapshot() uint64
}

// cacheFor returns the session's read cache bound to a transaction at
// snap, invalidating it when the snapshot moved.
func (s *Session) cacheFor(snap uint64) map[model.Obj]cachedRead {
	if s.readCache == nil {
		s.readCache = make(map[model.Obj]cachedRead)
	} else if s.cacheSnap != snap {
		clear(s.readCache)
	}
	s.cacheSnap = snap
	return s.readCache
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Site returns the replica index the session is pinned to (meaningful
// for PSI).
func (s *Session) Site() int { return s.site }

// beginAttempt records a Begin event for a fresh transaction attempt
// and returns the attempt id ("<session>#<n>"; conflict retries get
// fresh attempts). Without a recorder it returns "" and stays off the
// session mutex.
func (s *Session) beginAttempt() string {
	rec := s.db.cfg.Recorder
	if rec == nil {
		return ""
	}
	s.mu.Lock()
	s.attempts++
	n := s.attempts
	s.mu.Unlock()
	txid := fmt.Sprintf("%s#%d", s.id, n)
	rec.Record(eventlog.Event{Kind: eventlog.Begin, Session: s.id, TxID: txid})
	return txid
}

// event records a lifecycle event for the attempt; a no-op without a
// recorder.
func (s *Session) event(kind eventlog.Kind, txid, name string) {
	if s.db.cfg.Recorder == nil {
		return
	}
	s.db.cfg.Recorder.Record(eventlog.Event{Kind: kind, Session: s.id, TxID: txid, Name: name})
}

// commitEvent records the Commit event, carrying the durable log
// sequence number when the storage driver persisted the commit so the
// flight-recorder timeline and /events frames can correlate publish
// order with log order. A no-op without a recorder.
func (s *Session) commitEvent(txid, name string, lsn uint64) {
	if s.db.cfg.Recorder == nil {
		return
	}
	s.db.cfg.Recorder.Record(eventlog.Event{Kind: eventlog.Commit, Session: s.id, TxID: txid, Name: name, LSN: lsn})
}

func (s *Session) committed() []model.Transaction {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]model.Transaction, len(s.txs))
	copy(out, s.txs)
	return out
}

// Transact runs fn inside a transaction. Conflicts abort and retry the
// whole transaction automatically (up to Config.MaxRetries); any other
// error from fn aborts without retry and is returned. On success the
// transaction's operations are recorded into the session's history.
func (s *Session) Transact(fn func(tx *Tx) error) error {
	return s.TransactNamed("", fn)
}

// TransactNamed is Transact with a diagnostic transaction label.
func (s *Session) TransactNamed(name string, fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		if s.db.isClosed() {
			return ErrClosed
		}
		if attempt > s.db.cfg.MaxRetries {
			return fmt.Errorf("%w (transaction %q, %d attempts)", ErrTooManyRetries, name, attempt)
		}
		if attempt > 0 {
			s.backoff(attempt)
		}
		tr := s.db.cfg.TxTracer.Begin(s.id)
		inner, err := s.db.impl.begin(s.site)
		if err != nil {
			return err
		}
		tr.Mark(txtrace.StageBeginWait)
		began := time.Now()
		txid := s.beginAttempt()
		tr.SetTxID(txid)
		tx := &Tx{inner: inner, writes: make(map[model.Obj]model.Value), rec: s.db.cfg.Recorder, session: s.id, txid: txid}
		// Bind the session read cache for snapshot-pure protocols. Only
		// Transact binds it (one transaction at a time per session);
		// ManualTx interleavings can hold transactions at different
		// snapshots open at once, which one shared map cannot serve.
		if !s.db.cfg.DisableReadCache {
			if sn, ok := inner.(snapshotted); ok {
				tx.cache = s.cacheFor(sn.snapshot())
			}
		}
		err = fn(tx)
		if err != nil {
			inner.abort()
			if errors.Is(err, ErrConflict) {
				s.event(eventlog.Conflict, txid, "")
				s.db.mConflicts.Inc()
				s.db.mRetries.Inc()
				tr.Finish(txtrace.OutcomeConflict, 0)
				continue // fn surfaced a conflict from a read; retry
			}
			s.event(eventlog.Abort, txid, "")
			s.db.mAborts.Inc() // user-initiated rollback, not a conflict
			tr.Finish(txtrace.OutcomeAbort, 0)
			return err
		}
		tr.Mark(txtrace.StageReads)
		commitStart := time.Now()
		lsn, err := inner.commit(commitReq{writes: tx.writes, order: tx.writeOrder, ops: tx.ops, session: s.id, txid: txid, trace: tr})
		if err != nil {
			if errors.Is(err, ErrConflict) {
				s.event(eventlog.Conflict, txid, "")
				s.db.mConflicts.Inc()
				s.db.mRetries.Inc()
				tr.Finish(txtrace.OutcomeConflict, 0)
				continue
			}
			tr.Finish(txtrace.OutcomeError, 0)
			return err
		}
		s.db.mCommits.Inc()
		s.observeCommitLatency(time.Since(commitStart).Nanoseconds(), tr)
		s.db.hSnapAge.Observe(commitStart.Sub(began).Nanoseconds())
		id := s.record(name, tx.ops)
		if txid == "" {
			tr.SetTxID(id)
		}
		s.commitEvent(txid, id, lsn)
		if tr != nil {
			tr.Mark(txtrace.StageAck)
			tr.Finish(txtrace.OutcomeCommit, lsn)
		}
		return nil
	}
}

// observeCommitLatency records the commit latency; traced commits go
// through ObserveExemplar so the histogram bucket links back to the
// trace ID (resolvable via GET /trace/{id}).
func (s *Session) observeCommitLatency(ns int64, tr *txtrace.Trace) {
	if tr != nil {
		s.db.hCommitLat.ObserveExemplar(ns, tr.ID())
		return
	}
	s.db.hCommitLat.Observe(ns)
}

// yieldRetries is the number of initial conflict retries that only
// yield the processor: a couple of immediate re-runs resolve most
// transient races cheaper than any sleep would.
const yieldRetries = 3

// backoff delays the attempt-th conflict retry: pure yields first,
// then capped exponential backoff with jitter so contending sessions
// spread out instead of re-colliding in lockstep.
func (s *Session) backoff(attempt int) {
	cfg := s.db.cfg
	if attempt <= yieldRetries || cfg.RetryBackoffMax < 0 {
		// Yield so competing sessions and the PSI propagator make
		// progress instead of livelocking.
		runtime.Gosched()
		return
	}
	if s.rng == nil {
		// Sessions run on one goroutine each, so an unlocked
		// per-session source is safe; seeding from the global source
		// de-correlates sessions created in the same nanosecond.
		s.rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ rand.Int63()))
	}
	time.Sleep(backoffDelay(attempt-yieldRetries, cfg.RetryBackoffBase, cfg.RetryBackoffMax, s.rng.Int63n))
}

// backoffDelay computes the n-th (1-based) backoff delay: base·2ⁿ⁻¹
// capped at max, with full jitter drawn from [d/2, d] so the expected
// delay keeps growing while synchronised storms decorrelate. randn
// samples uniformly from [0, k).
func backoffDelay(n int, base, max time.Duration, randn func(int64) int64) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(randn(half+1))
	}
	return d
}

// record appends the committed transaction to the session's history
// and returns the canonical id it was recorded under.
func (s *Session) record(name string, ops []model.Op) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	var id string
	switch {
	case s.id == model.InitTransactionID && s.seq == 1 && name == "":
		// The canonical initialisation transaction keeps its bare name
		// so that certifiers and tools recognise it (PinInit).
		id = model.InitTransactionID
	case name != "":
		id = fmt.Sprintf("%s/%s", s.id, name)
	default:
		id = fmt.Sprintf("%s/%d", s.id, s.seq)
	}
	s.txs = append(s.txs, model.NewTransaction(id, ops...))
	return id
}

// Begin starts a manually controlled transaction on the session. Use
// it when a test or example must stage a specific interleaving (e.g.
// two overlapping snapshots for a write skew); prefer Transact for
// normal workloads, which also handles retry. The caller must finish
// the transaction with exactly one of Commit or Abort.
func (s *Session) Begin(name string) (*ManualTx, error) {
	return s.BeginTraced(name, 0)
}

// BeginTraced is Begin with a caller-provided trace ID: when the DB has
// a TxTracer, the transaction's trace is created under that ID instead
// of a fresh one, so a trace ID propagated over the wire joins the
// client's spans with the server's pipeline spans. A zero ID assigns a
// fresh one; without a TxTracer the ID is ignored.
func (s *Session) BeginTraced(name string, traceID uint64) (*ManualTx, error) {
	if s.db.isClosed() {
		return nil, ErrClosed
	}
	tr := s.db.cfg.TxTracer.BeginWithID(traceID, s.id)
	inner, err := s.db.impl.begin(s.site)
	if err != nil {
		return nil, err
	}
	tr.Mark(txtrace.StageBeginWait)
	txid := s.beginAttempt()
	tr.SetTxID(txid)
	return &ManualTx{
		s:     s,
		name:  name,
		began: time.Now(),
		trace: tr,
		tx:    &Tx{inner: inner, writes: make(map[model.Obj]model.Value), rec: s.db.cfg.Recorder, session: s.id, txid: txid},
	}, nil
}

// ManualTx is an explicitly controlled transaction created by
// Session.Begin.
type ManualTx struct {
	s     *Session
	name  string
	began time.Time
	tx    *Tx
	trace *txtrace.Trace
	done  bool
	lsn   uint64
}

// TraceID returns the transaction's trace ID (0 when tracing is off).
func (m *ManualTx) TraceID() uint64 { return m.trace.ID() }

// TraceData returns the finished trace after Commit or Abort, or nil
// when tracing is off or the transaction is still live. The networked
// server sends it back inside the commit response so the client can
// merge server pipeline spans into its own timeline.
func (m *ManualTx) TraceData() *txtrace.TraceData { return m.trace.Data() }

// LSN returns the write-ahead-log sequence number the transaction's
// commit record was fsynced at: non-zero only after a successful
// Commit of a writing transaction on a durable storage driver. The
// networked server reports it to clients as the commit's durability
// token.
func (m *ManualTx) LSN() uint64 { return m.lsn }

// Read reads x at the transaction's snapshot.
func (m *ManualTx) Read(x model.Obj) (model.Value, error) { return m.tx.Read(x) }

// Write buffers a write.
func (m *ManualTx) Write(x model.Obj, v model.Value) error { return m.tx.Write(x, v) }

// Promote promotes a read of x to a write (see Tx.Promote).
func (m *ManualTx) Promote(x model.Obj) error { return m.tx.Promote(x) }

// Commit attempts to commit. A commit that loses a conflict race
// returns ErrConflict (wrapped); unlike Transact, ManualTx does not
// retry. The transaction is finished either way.
func (m *ManualTx) Commit() error {
	if m.done {
		return fmt.Errorf("engine: transaction %q already finished", m.name)
	}
	m.done = true
	tr := m.trace
	tr.Mark(txtrace.StageReads)
	commitStart := time.Now()
	lsn, err := m.tx.inner.commit(commitReq{writes: m.tx.writes, order: m.tx.writeOrder, ops: m.tx.ops, session: m.s.id, txid: m.tx.txid, trace: tr})
	if err != nil {
		if errors.Is(err, ErrConflict) {
			m.s.event(eventlog.Conflict, m.tx.txid, "")
			m.s.db.mConflicts.Inc()
			tr.Finish(txtrace.OutcomeConflict, 0)
		} else {
			tr.Finish(txtrace.OutcomeError, 0)
		}
		return err
	}
	m.lsn = lsn
	m.s.db.mCommits.Inc()
	m.s.observeCommitLatency(time.Since(commitStart).Nanoseconds(), tr)
	m.s.db.hSnapAge.Observe(commitStart.Sub(m.began).Nanoseconds())
	id := m.s.record(m.name, m.tx.ops)
	if m.tx.txid == "" {
		tr.SetTxID(id)
	}
	m.s.commitEvent(m.tx.txid, id, lsn)
	if tr != nil {
		tr.Mark(txtrace.StageAck)
		tr.Finish(txtrace.OutcomeCommit, lsn)
	}
	return nil
}

// Abort abandons the transaction. Safe to call at most once, and only
// if Commit was not called.
func (m *ManualTx) Abort() {
	if m.done {
		return
	}
	m.done = true
	m.tx.inner.abort()
	m.s.event(eventlog.Abort, m.tx.txid, "")
	m.s.db.mAborts.Inc()
	m.trace.Finish(txtrace.OutcomeAbort, 0)
}

// Tx is a live transaction handle passed to Transact callbacks. It
// buffers writes (read-your-writes) and records the operation log that
// becomes the transaction's history entry.
type Tx struct {
	inner      txProtocol
	ops        []model.Op
	writes     map[model.Obj]model.Value
	writeOrder []model.Obj
	// cache is the session read cache bound to this transaction's
	// snapshot (nil when disabled or the protocol's reads are not
	// snapshot-pure); see Session.readCache.
	cache map[model.Obj]cachedRead

	// Flight-recorder plumbing; rec is nil when no recorder is
	// attached, keeping the operation hot path event-free.
	rec     *eventlog.Recorder
	session string
	txid    string
}

// Read returns the value of x as of the transaction's snapshot (or its
// own buffered write).
func (t *Tx) Read(x model.Obj) (model.Value, error) {
	v, ok := t.writes[x]
	if !ok {
		if c, hit := t.cache[x]; hit {
			if !c.ok {
				return 0, ErrUninitialized
			}
			v = c.val
		} else {
			var err error
			v, err = t.inner.read(x)
			if err != nil {
				if t.cache != nil && errors.Is(err, ErrUninitialized) && len(t.cache) < readCacheCap {
					t.cache[x] = cachedRead{}
				}
				return 0, err
			}
			if t.cache != nil && len(t.cache) < readCacheCap {
				t.cache[x] = cachedRead{val: v, ok: true}
			}
		}
	}
	t.ops = append(t.ops, model.Read(x, v))
	if t.rec != nil {
		t.rec.Record(eventlog.Event{Kind: eventlog.Read, Session: t.session, TxID: t.txid, Obj: x, Val: v})
	}
	return v, nil
}

// Promote promotes a read of x to a write: it reads x and writes the
// observed value back unchanged. The write materialises a write-write
// conflict with any concurrent writer of x, so first-committer-wins
// orders the two transactions — the §6 remedy that restores robustness
// against SI for write-skew shapes (see DESIGN.md §14). silint's
// repair advisor suggests inserting exactly this call.
func (t *Tx) Promote(x model.Obj) error {
	v, err := t.Read(x)
	if err != nil {
		return err
	}
	return t.Write(x, v)
}

// Write buffers a write of v to x.
func (t *Tx) Write(x model.Obj, v model.Value) error {
	if _, seen := t.writes[x]; !seen {
		t.writeOrder = append(t.writeOrder, x)
	}
	t.writes[x] = v
	t.ops = append(t.ops, model.Write(x, v))
	if t.rec != nil {
		t.rec.Record(eventlog.Event{Kind: eventlog.Write, Session: t.session, TxID: t.txid, Obj: x, Val: v})
	}
	return nil
}
