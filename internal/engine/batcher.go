package engine

import (
	"sync"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
)

// commitBatcher is the SI group-commit sequencer: concurrently
// arriving writing commits with pairwise-disjoint write sets are
// collected into a batch that one leader commits under a single union
// lock window — one multi-shard critical section, one contiguous WAL
// record group with one fsync, one commitTS advance — collapsing N
// publish CAS spin-waits and N fsync negotiations into 1.
//
// The shape is classic leader/follower group commit. Every committing
// goroutine enqueues its request; while a leader is running, arrivals
// wait on the condition variable. When the leader finishes it hands
// results to its batch and steps down; the first still-waiting request
// becomes the next leader and drains the queue again. A request whose
// write set overlaps the forming batch falls out to the ordinary solo
// path instead (first-committer-wins between the batch and the
// fall-out is then arbitrated by the shard locks themselves — the solo
// commit blocks on the overlapping stripes until the leader's window
// releases, exactly as two solo commits would). Disjointness within a
// batch is what keeps the protocol sound: per-member validation order
// is irrelevant because no member can invalidate another (DESIGN.md
// §15).
//
// Under no concurrency the sequencer degenerates to batches of one
// whose leader path is step-for-step the solo path, so sequential
// behaviour (and sequential traces) are unchanged.
type commitBatcher struct {
	p *siProtocol

	mu      sync.Mutex
	cond    *sync.Cond
	leading bool
	queue   []*batchReq
}

// maxBatch bounds one batch; requests beyond it stay queued for the
// next leader. The cap keeps the union lock window and the contiguous
// WAL group bounded under extreme fan-in.
const maxBatch = 128

// batchState is the lifecycle of one queued commit request.
type batchState int

const (
	batchWaiting batchState = iota
	batchDecided            // a leader committed (or conflicted) the request
	batchSolo               // overlapped the forming batch; takes the solo path
)

// batchReq is one queued commit request. The result fields (state,
// size, lsn, err) are written only under the batcher mutex, so
// followers reading them after waking are race-free.
type batchReq struct {
	req   *commitReq
	snap  uint64
	state batchState
	size  int // members in the deciding batch, for trace attribution
	lsn   uint64
	err   error
}

func newCommitBatcher(p *siProtocol) *commitBatcher {
	b := &commitBatcher{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// commit runs one writing commit request through the sequencer and
// returns the request's durable LSN and commit error, exactly as the
// solo path would.
func (b *commitBatcher) commit(t *siTx, req commitReq) (uint64, error) {
	r := &batchReq{req: &req, snap: t.ticket.snap}
	b.mu.Lock()
	b.queue = append(b.queue, r)
	for r.state == batchWaiting && b.leading {
		b.cond.Wait()
	}
	if r.state != batchWaiting {
		size, state, lsn, err := r.size, r.state, r.lsn, r.err
		b.mu.Unlock()
		// The follower marks its own wait span — traces are single-
		// goroutine, so the leader cannot mark them on its behalf.
		if state == batchSolo {
			req.trace.MarkAttrs(txtrace.StageBatchWait, map[string]int64{"solo": 1})
			return t.commitSolo(req)
		}
		req.trace.MarkAttrs(txtrace.StageBatchWait, map[string]int64{"batch_size": int64(size)})
		return lsn, err
	}
	// No leader running: lead a batch seeded with our own request.
	b.leading = true
	batch := b.take(r)
	b.cond.Broadcast() // release requests spilled to the solo path
	b.mu.Unlock()

	results := b.p.commitBatch(batch)

	b.mu.Lock()
	for i, m := range batch {
		m.lsn, m.err = results[i].lsn, results[i].err
		m.size = len(batch)
		m.state = batchDecided
	}
	b.leading = false
	b.cond.Broadcast()
	lsn, err := r.lsn, r.err
	b.mu.Unlock()
	return lsn, err
}

// take drains the queue into a batch of pairwise-disjoint write sets
// seeded by the leader's own request, in arrival order. Requests
// overlapping the growing union are marked solo; requests beyond the
// size cap stay queued for the next leader. Caller holds b.mu.
func (b *commitBatcher) take(seed *batchReq) []*batchReq {
	batch := []*batchReq{seed}
	union := make(map[model.Obj]struct{}, len(seed.req.order))
	for _, x := range seed.req.order {
		union[x] = struct{}{}
	}
	rest := b.queue[:0]
	for _, r := range b.queue {
		if r == seed {
			continue
		}
		if len(batch) >= maxBatch {
			rest = append(rest, r)
			continue
		}
		disjoint := true
		for _, x := range r.req.order {
			if _, clash := union[x]; clash {
				disjoint = false
				break
			}
		}
		if !disjoint {
			r.state = batchSolo
			continue
		}
		for _, x := range r.req.order {
			union[x] = struct{}{}
		}
		batch = append(batch, r)
	}
	// Zero the tail so dropped *batchReq pointers don't pin memory.
	for i := len(rest); i < len(b.queue); i++ {
		b.queue[i] = nil
	}
	b.queue = rest
	return batch
}
