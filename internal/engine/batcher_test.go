package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestBatcherGroupsConcurrentCommits stages a deterministic group
// commit: the first committer becomes leader and stalls inside its
// lock window (the test pre-holds the shard stripes), the remaining
// committers queue up behind it, and when the window opens the next
// leader must take every queued request as one batch — one union
// window, one publish. The test then pins the accounting: two batches
// total (the stalled leader's singleton plus the grouped rest), every
// member committed, the published watermark advanced by exactly the
// number of commits, and the traces attribute the grouping (followers
// carry batch_wait spans, the grouped leader's publish span carries
// the batch size).
func TestBatcherGroupsConcurrentCommits(t *testing.T) {
	tracer := txtrace.New(txtrace.Options{})
	db, err := New(SI, Config{TxTracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p := db.impl.(*siProtocol)
	if p.batcher == nil {
		t.Fatal("group commit should be on by default")
	}

	const sessions = 8
	objs := make([]model.Obj, sessions)
	for i := range objs {
		objs[i] = model.Obj(fmt.Sprintf("g%d", i))
	}
	// Pre-hold every stripe the committers need: the first committer
	// becomes leader, takes a singleton batch, and blocks in LockBatch.
	hold := p.store.LockObjs(objs)

	var wg sync.WaitGroup
	commit := func(i int) {
		defer wg.Done()
		sess := db.Session(fmt.Sprintf("s%d", i))
		if err := sess.Transact(func(tx *Tx) error {
			return tx.Write(objs[i], model.Value(i))
		}); err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	wg.Add(1)
	go commit(0)
	waitFor(t, "first committer to lead", func() bool {
		p.batcher.mu.Lock()
		defer p.batcher.mu.Unlock()
		return p.batcher.leading
	})
	for i := 1; i < sessions; i++ {
		wg.Add(1)
		go commit(i)
	}
	waitFor(t, "followers to enqueue", func() bool {
		p.batcher.mu.Lock()
		defer p.batcher.mu.Unlock()
		return len(p.batcher.queue) == sessions-1
	})
	// Open the window: the stalled leader commits its singleton, steps
	// down, and the next leader must drain all seven peers as one
	// disjoint batch.
	hold.Unlock()
	wg.Wait()

	if got := p.cBatches.Value(); got != 2 {
		t.Errorf("batches executed = %d, want 2 (stalled singleton + grouped rest)", got)
	}
	if got := p.cBatchMembers.Value(); got != sessions {
		t.Errorf("batched commit requests = %d, want %d", got, sessions)
	}
	if got := p.hBatchSize.Count(); got != 2 {
		t.Errorf("batch-size observations = %d, want 2", got)
	}
	if got := p.commitTS.Load(); got != sessions {
		t.Errorf("published commitTS = %d, want %d (one timestamp per member)", got, sessions)
	}
	for i, x := range objs {
		v, ok := p.store.Latest(x)
		if !ok || v.Val != model.Value(i) {
			t.Errorf("Latest(%s) = (%+v,%v), want value %d", x, v, ok, i)
		}
	}
	if got := db.Stats().Commits; got != sessions {
		t.Errorf("commits = %d, want %d", got, sessions)
	}

	// Trace attribution: the grouped batch has one leader whose publish
	// span carries batch_size, and sessions−2 followers (everyone but
	// the two leaders) each mark their own batch_wait span.
	followers, groupedLeaders := 0, 0
	for _, td := range tracer.Finished(0) {
		for _, sp := range td.Spans {
			switch {
			case sp.Stage == txtrace.StageBatchWait:
				followers++
				if sp.Attrs["batch_size"] != sessions-1 {
					t.Errorf("follower batch_wait attrs = %v, want batch_size %d", sp.Attrs, sessions-1)
				}
			case sp.Stage == txtrace.StagePublish && sp.Attrs["batch_size"] == sessions-1:
				groupedLeaders++
			}
		}
	}
	if followers != sessions-2 {
		t.Errorf("traces with batch_wait spans = %d, want %d", followers, sessions-2)
	}
	if groupedLeaders != 1 {
		t.Errorf("leader traces publishing the grouped batch = %d, want 1", groupedLeaders)
	}
}

// TestBatcherOverlapFallsOutSolo pins the fall-out path: two queued
// requests writing the same object cannot share a batch, so whichever
// becomes leader spills the other to the solo path — where the shard
// locks arbitrate first-committer-wins between batch and fall-out
// exactly as between two solo commits.
func TestBatcherOverlapFallsOutSolo(t *testing.T) {
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p := db.impl.(*siProtocol)

	// Stall a leader on "a" so two writers of "x" queue up together.
	hold := p.store.LockObjs([]model.Obj{"a"})
	var wg sync.WaitGroup
	commit := func(sess string, obj model.Obj, val model.Value) {
		defer wg.Done()
		if err := db.Session(sess).Transact(func(tx *Tx) error {
			return tx.Write(obj, val)
		}); err != nil {
			t.Errorf("%s: %v", sess, err)
		}
	}
	wg.Add(1)
	go commit("lead", "a", 1)
	waitFor(t, "leader", func() bool {
		p.batcher.mu.Lock()
		defer p.batcher.mu.Unlock()
		return p.batcher.leading
	})
	wg.Add(2)
	go commit("w1", "x", 2)
	go commit("w2", "x", 3)
	waitFor(t, "followers to enqueue", func() bool {
		p.batcher.mu.Lock()
		defer p.batcher.mu.Unlock()
		return len(p.batcher.queue) == 2
	})
	hold.Unlock()
	wg.Wait()

	// One of the x-writers led a batch; the other was spilled solo,
	// lost first-committer-wins to whichever grabbed x's stripe first,
	// and retried (through the batcher, as a fresh singleton batch).
	if got := p.cSoloCommits.Value(); got != 1 {
		t.Errorf("solo fall-outs = %d, want 1 (the overlapping writer's first attempt)", got)
	}
	st := db.Stats()
	if st.Commits != 3 {
		t.Errorf("commits = %d, want 3", st.Commits)
	}
	if st.Conflicts != 1 || st.Retries != 1 {
		t.Errorf("conflicts/retries = %d/%d, want 1/1 (batch vs fall-out FCW)", st.Conflicts, st.Retries)
	}
	if v, ok := p.store.Latest("a"); !ok || v.Val != 1 {
		t.Errorf("Latest(a) = (%+v,%v), want 1", v, ok)
	}
	// Which value of x lands last depends on who won the stripe race,
	// but the loser's retry always commits at the final timestamp.
	if v, ok := p.store.Latest("x"); !ok || v.TS != 3 {
		t.Errorf("Latest(x) = (%+v,%v), want the retried commit at ts 3", v, ok)
	}
}
