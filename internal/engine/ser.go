package engine

import (
	"sian/internal/model"
	"sync"
)

// serProtocol implements serializability with strict two-phase locking
// over a single-version store. Read locks are taken at read time,
// write locks at commit time (still two-phase: all locks are held
// until the transaction ends). Lock conflicts use a no-wait policy —
// the requester aborts with ErrConflict and Transact retries — which
// trades extra aborts for deadlock freedom.
type serProtocol struct {
	mu    sync.Mutex
	vals  map[model.Obj]model.Value
	locks map[model.Obj]*lockState
}

type lockState struct {
	readers map[*serTx]bool
	writer  *serTx
}

func newSERProtocol() *serProtocol {
	return &serProtocol{
		vals:  make(map[model.Obj]model.Value),
		locks: make(map[model.Obj]*lockState),
	}
}

func (p *serProtocol) ensureSite(int) {}

func (p *serProtocol) close() error { return nil }

func (p *serProtocol) begin(int) (txProtocol, error) {
	return &serTx{p: p, held: make(map[model.Obj]bool)}, nil
}

func (p *serProtocol) lockFor(x model.Obj) *lockState {
	ls, ok := p.locks[x]
	if !ok {
		ls = &lockState{readers: make(map[*serTx]bool)}
		p.locks[x] = ls
	}
	return ls
}

type serTx struct {
	p    *serProtocol
	held map[model.Obj]bool // objects on which we hold a (read) lock
	done bool
}

func (t *serTx) read(x model.Obj) (model.Value, error) {
	p := t.p
	p.mu.Lock()
	defer p.mu.Unlock()
	ls := p.lockFor(x)
	if ls.writer != nil && ls.writer != t {
		return 0, ErrConflict
	}
	ls.readers[t] = true
	t.held[x] = true
	v, ok := p.vals[x]
	if !ok {
		return 0, ErrUninitialized
	}
	return v, nil
}

// commit upgrades to exclusive locks on the write set, applies the
// writes and releases every lock. It is terminal: locks are released
// whether it succeeds or conflicts.
func (t *serTx) commit(req commitReq) (uint64, error) {
	writes, order := req.writes, req.order
	p := t.p
	p.mu.Lock()
	defer p.mu.Unlock()
	defer t.releaseLocked()
	for _, x := range order {
		ls := p.lockFor(x)
		if ls.writer != nil && ls.writer != t {
			return 0, ErrConflict
		}
		otherReaders := len(ls.readers)
		if ls.readers[t] {
			otherReaders--
		}
		if otherReaders > 0 {
			return 0, ErrConflict
		}
	}
	for _, x := range order {
		ls := p.lockFor(x)
		ls.writer = t
		t.held[x] = true
	}
	for _, x := range order {
		p.vals[x] = writes[x]
	}
	return 0, nil
}

func (t *serTx) abort() {
	t.p.mu.Lock()
	defer t.p.mu.Unlock()
	t.releaseLocked()
}

// releaseLocked drops every lock held by t. Callers hold p.mu.
func (t *serTx) releaseLocked() {
	if t.done {
		return
	}
	t.done = true
	for x := range t.held {
		ls := t.p.locks[x]
		if ls == nil {
			continue
		}
		delete(ls.readers, t)
		if ls.writer == t {
			ls.writer = nil
		}
	}
	t.held = nil
}
