package engine_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sian/internal/depgraph"
	. "sian/internal/engine"
	"sian/internal/model"
	"sian/internal/storage"
	"sian/internal/storage/wal"
)

// gcDrivers enumerates the storage drivers the GC-concurrency property
// is pinned against: the default in-memory driver and the
// write-ahead-logged one (fsync disabled — the property under test is
// lock/GC interleaving, not disk latency).
var gcDrivers = []struct {
	name string
	open func(t *testing.T) storage.Driver
}{
	{"mem", func(t *testing.T) storage.Driver { return nil }},
	{"wal", func(t *testing.T) storage.Driver {
		d, err := wal.Open(wal.Options{Dir: t.TempDir(), NoSync: true, Window: 64})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}},
}

// TestCompactNeverStarvesSnapshot is the GC-under-concurrency
// property test: Compact racing live begins and commits must never
// discard a version a registered snapshot can read. Every object is
// initialised before the workload, so the property reduces to an
// observable: no read inside any live transaction may ever return
// ErrUninitialized — that would mean GC truncated the chain above the
// snapshot. The schedules are seeded: each seed drives a different
// random mix of short reader transactions (via Begin, holding their
// snapshot open across several reads), writer transactions, and a
// tight Compact loop.
func TestCompactNeverStarvesSnapshot(t *testing.T) {
	t.Parallel()
	for _, drv := range gcDrivers {
		drv := drv
		t.Run(drv.name, func(t *testing.T) {
			t.Parallel()
			gcConcurrencySuite(t, drv.open)
		})
	}
}

func gcConcurrencySuite(t *testing.T, open func(t *testing.T) storage.Driver) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			db := newDB(t, SI, Config{Driver: open(t)})
			const objects = 8
			init := make(map[model.Obj]model.Value, objects)
			objs := make([]model.Obj, objects)
			for i := range objs {
				objs[i] = model.Obj(fmt.Sprintf("g%d", i))
				init[objs[i]] = 1
			}
			if err := db.Initialize(init); err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var gcDone sync.WaitGroup
			gcDone.Add(1)
			go func() {
				defer gcDone.Done()
				for {
					select {
					case <-stop:
						return
					default:
						db.Compact()
					}
				}
			}()

			var wg sync.WaitGroup
			// Writers churn versions so GC always has work.
			for w := 0; w < 2; w++ {
				sess := db.Session(fmt.Sprintf("w%d-%d", seed, w))
				rng := rand.New(rand.NewSource(seed*100 + int64(w)))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < 150; n++ {
						x := objs[rng.Intn(objects)]
						err := sess.Transact(func(tx *Tx) error {
							v, err := tx.Read(x)
							if err != nil {
								return err
							}
							return tx.Write(x, v+1)
						})
						if err != nil {
							t.Errorf("writer: %v", err)
							return
						}
					}
				}()
			}
			// Readers hold manual transactions open across several
			// reads — the snapshots GC must respect.
			for r := 0; r < 3; r++ {
				sess := db.Session(fmt.Sprintf("r%d-%d", seed, r))
				rng := rand.New(rand.NewSource(seed*1000 + int64(r)))
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < 80; n++ {
						m, err := sess.Begin(fmt.Sprintf("snap%d", n))
						if err != nil {
							t.Errorf("begin: %v", err)
							return
						}
						for k := 0; k < 4; k++ {
							x := objs[rng.Intn(objects)]
							if _, err := m.Read(x); err != nil {
								t.Errorf("read %s at a registered snapshot: %v", x, err)
								m.Abort()
								return
							}
						}
						if rng.Intn(2) == 0 {
							m.Abort()
						} else if err := m.Commit(); err != nil {
							t.Errorf("read-only commit: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			gcDone.Wait()

			// The workload's history must still certify SI after all
			// that compaction.
			if !certifyHistory(t, db, depgraph.SI) {
				t.Error("history with concurrent GC not allowed by SI")
			}
		})
	}
}
