package engine_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/obs/txtrace"
)

// TestTracedTransactStages pins the in-process stage sequence: a
// traced committed transaction carries the full pipeline span set in
// order, and untraced engines hand out zero-cost nil traces.
func TestTracedTransactStages(t *testing.T) {
	for _, kind := range []engine.Kind{engine.SI, engine.PSI, engine.SSI} {
		t.Run(kind.String(), func(t *testing.T) {
			tracer := txtrace.New(txtrace.Options{Start: 100})
			db, err := engine.New(kind, engine.Config{TxTracer: tracer})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			sess := db.Session("s1")
			if err := sess.Transact(func(tx *engine.Tx) error {
				return tx.Write("x", 1)
			}); err != nil {
				t.Fatal(err)
			}
			td := tracer.Get(100)
			if td == nil {
				t.Fatal("no trace for the committed transaction")
			}
			if td.Outcome != txtrace.OutcomeCommit {
				t.Errorf("outcome = %s", td.Outcome)
			}
			if td.TxID == "" {
				t.Error("trace has no txid")
			}
			// In-memory driver: the pipeline minus the WAL stages. Only
			// SI has a publish span (the ordered-publish CAS); PSI and
			// SSI install under the engine-wide mutex and have no
			// separate publish step.
			want := []txtrace.Stage{
				txtrace.StageBeginWait, txtrace.StageReads, txtrace.StageLockWait,
				txtrace.StageValidate, txtrace.StageInstall,
			}
			if kind == engine.SI {
				want = append(want, txtrace.StagePublish)
			}
			want = append(want, txtrace.StageAck)
			if len(td.Spans) != len(want) {
				t.Fatalf("spans: %v", td.Spans)
			}
			for i, st := range want {
				if td.Spans[i].Stage != st {
					t.Errorf("span %d = %s, want %s", i, td.Spans[i].Stage, st)
				}
			}
		})
	}
}

// TestTracedConflictOutcome pins the conflict path: the losing
// transaction's trace finishes with outcome "conflict" and stops at
// the validate span.
func TestTracedConflictOutcome(t *testing.T) {
	tracer := txtrace.New(txtrace.Options{Start: 1})
	db, err := engine.New(engine.SI, engine.Config{TxTracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	s1, s2 := db.Session("a"), db.Session("b")
	tx1, err := s1.Begin("t1")
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := s2.Begin("t2")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != engine.ErrConflict {
		t.Fatalf("second writer: %v, want conflict", err)
	}
	loser := tracer.Get(tx2.TraceID())
	if loser == nil || loser.Outcome != txtrace.OutcomeConflict {
		t.Fatalf("loser trace: %+v", loser)
	}
	last := loser.Spans[len(loser.Spans)-1]
	if last.Stage != txtrace.StageValidate {
		t.Errorf("loser's last span = %s, want validate", last.Stage)
	}
}

// TestTracerRaceHammer runs committing sessions, Compact, explicit GC
// and every tracer read path concurrently — the -race gate for the
// claim that tracing adds no unsynchronized state to the commit path.
func TestTracerRaceHammer(t *testing.T) {
	tracer := txtrace.New(txtrace.Options{Capacity: 64, SlowCap: 8})
	db, err := engine.New(engine.SI, engine.Config{TxTracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const sessions = 6
	const txPerSession = 150
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("s%d", w))
			for i := 0; i < txPerSession; i++ {
				obj := model.Obj(fmt.Sprintf("x%d", i%8))
				_ = sess.Transact(func(tx *engine.Tx) error {
					if _, err := tx.Read(obj); err != nil && err != engine.ErrUninitialized {
						return err
					}
					return tx.Write(obj, model.Value(i))
				})
			}
		}(w)
	}
	// Background churn: version GC and the runtime's own GC, plus all
	// tracer readers, racing the commit pipeline.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Compact()
			runtime.GC()
			for _, td := range tracer.Slow(0, 4) {
				tracer.Get(td.ID())
			}
			tracer.Finished(16)
			tracer.StageLatencies()
			tracer.Stats()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	churn.Wait()

	started, finished, _ := tracer.Stats()
	if finished < sessions*txPerSession {
		t.Errorf("finished = %d, want ≥ %d (every transact, including conflict retries, finishes a trace)",
			finished, sessions*txPerSession)
	}
	if started < finished {
		t.Errorf("started %d < finished %d", started, finished)
	}
	// Retention invariant under churn: every slow-log entry resolves.
	for _, td := range tracer.Slow(0, 0) {
		if tracer.Get(td.ID()) == nil {
			t.Errorf("slow trace %s not resolvable", td.TraceID)
		}
	}
}

// TestTracingOffIsFree pins the off-by-default contract: without a
// tracer the engine hands transactions nil traces and records nothing.
func TestTracingOffIsFree(t *testing.T) {
	db, err := engine.New(engine.SI, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sess := db.Session("s")
	tx, err := sess.Begin("t")
	if err != nil {
		t.Fatal(err)
	}
	if tx.TraceID() != 0 {
		t.Error("untraced transaction has a trace ID")
	}
	if err := tx.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.TraceData() != nil {
		t.Error("untraced transaction produced trace data")
	}
}
