package engine

import (
	"testing"

	"sian/internal/model"
)

// TestReadCacheMemoisesWithinSnapshot proves the per-session read
// cache is actually consulted while the snapshot stands still, and
// dropped wholesale the moment it moves. The probe is a poisoned
// entry: after a first transaction populates the cache, the test
// overwrites the cached value directly — a second transaction at the
// same snapshot must return the poisoned value (cache hit, no store
// read), and a transaction after a foreign commit must return the
// store's new value (cache invalidated).
func TestReadCacheMemoisesWithinSnapshot(t *testing.T) {
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("reader")
	readX := func() (model.Value, error) {
		var v model.Value
		err := s.Transact(func(tx *Tx) error {
			var err error
			v, err = tx.Read("x")
			return err
		})
		return v, err
	}
	if v, err := readX(); err != nil || v != 1 {
		t.Fatalf("first read = (%d,%v), want 1", v, err)
	}
	if got := s.readCache["x"]; !got.ok || got.val != 1 {
		t.Fatalf("cache after first read = %+v, want {1 true}", got)
	}
	if s.cacheSnap != db.impl.(*siProtocol).commitTS.Load() {
		t.Fatalf("cacheSnap = %d, want the published snapshot", s.cacheSnap)
	}
	// Poison the entry: a same-snapshot read must come from the cache.
	s.readCache["x"] = cachedRead{val: 42, ok: true}
	if v, err := readX(); err != nil || v != 42 {
		t.Fatalf("same-snapshot read = (%d,%v), want the poisoned 42 (cache not consulted?)", v, err)
	}
	// A foreign commit advances the session's next snapshot: the
	// poisoned cache must be dropped and the real value surfaced.
	if err := db.Session("writer").Transact(func(tx *Tx) error {
		return tx.Write("x", 7)
	}); err != nil {
		t.Fatal(err)
	}
	if v, err := readX(); err != nil || v != 7 {
		t.Fatalf("post-invalidation read = (%d,%v), want 7", v, err)
	}
}

// TestReadCacheNegativeEntries pins negative caching: a read of an
// uninitialized object caches the miss (equally immutable at a fixed
// snapshot) and keeps answering ErrUninitialized from the cache until
// the snapshot advances past the object's first write.
func TestReadCacheNegativeEntries(t *testing.T) {
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session("reader")
	readY := func() error {
		return s.Transact(func(tx *Tx) error {
			_, err := tx.Read("y")
			if err == ErrUninitialized {
				return nil
			}
			if err != nil {
				return err
			}
			return nil
		})
	}
	if err := readY(); err != nil {
		t.Fatal(err)
	}
	if got, hit := s.readCache["y"]; !hit || got.ok {
		t.Fatalf("cache after miss = (%+v,%v), want a negative entry", got, hit)
	}
	// Same snapshot: the miss must be served from the cache.
	var v model.Value
	var rerr error
	if err := s.Transact(func(tx *Tx) error {
		v, rerr = tx.Read("y")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rerr != ErrUninitialized {
		t.Fatalf("cached miss = (%d,%v), want ErrUninitialized", v, rerr)
	}
	// First write of y: the next snapshot must see it despite the
	// cached miss.
	if err := db.Session("writer").Transact(func(tx *Tx) error {
		return tx.Write("y", 9)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Transact(func(tx *Tx) error {
		got, err := tx.Read("y")
		if err != nil || got != 9 {
			t.Errorf("read after first write = (%d,%v), want 9", got, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestReadCacheScope pins where the cache may NOT apply: with
// DisableReadCache set, under manual transactions (whose
// interleavings can hold different snapshots open at once), and under
// protocols whose reads are not pure snapshot functions (SSI, PSI).
func TestReadCacheScope(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		db, err := New(SI, Config{DisableReadCache: true})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
			t.Fatal(err)
		}
		s := db.Session("s")
		if err := s.Transact(func(tx *Tx) error {
			_, err := tx.Read("x")
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if s.readCache != nil {
			t.Errorf("cache allocated with DisableReadCache: %v", s.readCache)
		}
	})
	t.Run("manual-tx", func(t *testing.T) {
		db, err := New(SI, Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
			t.Fatal(err)
		}
		s := db.Session("s")
		tx, err := s.Begin("t")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Read("x"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if s.readCache != nil {
			t.Error("manual transactions must not bind the session read cache")
		}
	})
	for _, kind := range []Kind{SSI, PSI} {
		t.Run(kind.String(), func(t *testing.T) {
			db, err := New(kind, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
				t.Fatal(err)
			}
			s := db.Session("s")
			if err := s.Transact(func(tx *Tx) error {
				_, err := tx.Read("x")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if s.readCache != nil {
				t.Errorf("%s reads are not snapshot-pure and must not be cached", kind)
			}
		})
	}
}
