package engine

import (
	"sync"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
)

// ssiProtocol implements Serializable Snapshot Isolation (Cahill,
// Röhm, Fekete, SIGMOD 2008): the SI protocol augmented with run-time
// detection of the dangerous structure of Fekete et al. — two
// consecutive anti-dependency edges T1 —rw→ T2 —rw→ T3 between
// concurrent transactions. This is precisely the structure the paper's
// Theorem 19 shows to be the signature of SI executions that are not
// serializable; SSI is thus the run-time counterpart of the §6.1
// static robustness analysis, and every history this engine records
// certifies serializable.
//
// Detection uses the classical conservative marking: each transaction
// carries an inConflict flag (some concurrent transaction has an
// anti-dependency INTO it) and an outConflict flag (it has an
// anti-dependency OUT to a concurrent transaction). A transaction that
// would commit with both flags — a potential pivot — aborts, and a
// marking that would turn an already-committed transaction into a
// pivot aborts the marker instead. False positives are possible;
// serializability violations are not.
type ssiProtocol struct {
	store storage.Driver

	mu       sync.Mutex
	commitTS uint64
	// byCommit maps a version-creating commit timestamp to its
	// transaction record, for read-time anti-dependency marking.
	byCommit map[uint64]*ssiTxRecord
	// sireads maps each object to the transactions that read it; the
	// records persist after commit so that later writers can discover
	// anti-dependencies from committed readers.
	sireads map[model.Obj][]*ssiTxRecord
	// active counts live transactions per snapshot, for pruning:
	// a finished record becomes irrelevant once no transaction with an
	// old enough snapshot can still be concurrent with it.
	active map[uint64]int
	// sinceprune counts commits since the last record pruning.
	sinceprune int
}

// minActiveSnapLocked returns the oldest snapshot of any live
// transaction (or the current commit counter when idle). Callers hold
// the mutex.
func (p *ssiProtocol) minActiveSnapLocked() uint64 {
	min := p.commitTS
	for snap := range p.active {
		if snap < min {
			min = snap
		}
	}
	return min
}

// pruneLocked discards finished transaction records that can no longer
// be concurrent with any live or future transaction: committed writers
// with commitTS ≤ minSnap, committed read-only records with
// endTS < minSnap, and aborted records. Without pruning the SIREAD
// tables grow with the total transaction count and every commit scan
// becomes linear in history size. Callers hold the mutex.
func (p *ssiProtocol) pruneLocked() {
	minSnap := p.minActiveSnapLocked()
	dead := func(r *ssiTxRecord) bool {
		if !r.ended {
			return false
		}
		if r.aborted {
			return true
		}
		if r.commitTS > 0 {
			return r.commitTS <= minSnap
		}
		return r.endTS < minSnap
	}
	for x, readers := range p.sireads {
		kept := readers[:0]
		for _, r := range readers {
			if !dead(r) {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(p.sireads, x)
		} else {
			p.sireads[x] = kept
		}
	}
	// Read-time marking only consults commits newer than some live
	// snapshot, so records at or below the minimum are unreachable.
	for ts, r := range p.byCommit {
		if ts <= minSnap && r.ended {
			delete(p.byCommit, ts)
		}
	}
}

// ssiTxRecord carries the conflict flags of a (possibly committed)
// transaction. All fields are guarded by the protocol mutex.
type ssiTxRecord struct {
	snap     uint64
	commitTS uint64 // 0 while active or read-only
	// endTS is the commit counter when the transaction finished; 0
	// while active. Needed so that committed *read-only* transactions
	// remain visible as concurrent readers — dropping them is exactly
	// what admits the read-only anomaly of Fekete, O'Neil & O'Neil.
	endTS   uint64
	ended   bool
	aborted bool
	in, out bool
}

func newSSIProtocol(cfg Config) *ssiProtocol {
	st := cfg.Driver
	if st == nil {
		st = storage.NewMem()
	}
	p := &ssiProtocol{
		store:    st,
		byCommit: make(map[uint64]*ssiTxRecord),
		sireads:  make(map[model.Obj][]*ssiTxRecord),
		active:   make(map[uint64]int),
	}
	// A driver restored from a log already holds versions; resume the
	// commit counter above them. The conflict-flag tables restart
	// empty: nothing recovered can still be concurrent with a live
	// transaction.
	if r, ok := st.(storage.Recovered); ok {
		p.commitTS = r.RecoveredMaxTS()
	}
	return p
}

func (p *ssiProtocol) ensureSite(int) {}

func (p *ssiProtocol) close() error { return p.store.Close() }

func (p *ssiProtocol) begin(int) (txProtocol, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active[p.commitTS]++
	return &ssiTx{p: p, rec: &ssiTxRecord{snap: p.commitTS}}, nil
}

// releaseLocked drops the active-snapshot registration of a finishing
// transaction. Callers hold the mutex and call it at most once per
// transaction.
func (p *ssiProtocol) releaseLocked(snap uint64) {
	if n := p.active[snap]; n > 1 {
		p.active[snap] = n - 1
	} else {
		delete(p.active, snap)
	}
}

type ssiTx struct {
	p   *ssiProtocol
	rec *ssiTxRecord
}

// read returns the snapshot version of x, records the SIREAD, and
// marks the anti-dependencies from this transaction to every
// concurrent writer that has committed a newer version of x.
func (t *ssiTx) read(x model.Obj) (model.Value, error) {
	p := t.p
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.store.ReadAt(x, t.rec.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	// Record the SIREAD once.
	already := false
	for _, r := range p.sireads[x] {
		if r == t.rec {
			already = true
			break
		}
	}
	if !already {
		p.sireads[x] = append(p.sireads[x], t.rec)
	}
	// Anti-dependencies t —rw→ W for every committed newer version.
	latest := p.store.LatestTS(x)
	for ts := t.rec.snap + 1; ts <= latest; ts++ {
		w, ok := p.byCommit[ts]
		if !ok || w == t.rec {
			continue
		}
		// Only timestamps that created a version of x count.
		if ver, ok := p.store.ReadAt(x, ts); !ok || ver.TS != ts {
			continue
		}
		if w.out {
			// Marking w.in would complete a committed pivot: abort the
			// reader instead.
			return 0, ErrConflict
		}
		w.in = true
		t.rec.out = true
	}
	if t.rec.in && t.rec.out {
		return 0, ErrConflict // this transaction became a pivot
	}
	return v.Val, nil
}

// commit runs first-committer-wins write-conflict detection, then the
// dangerous-structure checks, then installs the writes and the
// anti-dependency marks from concurrent readers.
func (t *ssiTx) commit(req commitReq) (uint64, error) {
	writes, order := req.writes, req.order
	tr := req.trace
	p := t.p
	p.mu.Lock()
	tr.Mark(txtrace.StageLockWait)
	defer p.mu.Unlock()
	defer func() {
		t.rec.ended = true
		if t.rec.endTS == 0 {
			t.rec.endTS = p.commitTS
		}
		p.releaseLocked(t.rec.snap)
		p.sinceprune++
		if p.sinceprune >= 256 {
			p.sinceprune = 0
			p.pruneLocked()
		}
	}()
	if len(writes) == 0 {
		// Read-only transactions commit freely under SSI, but their
		// SIREADs stay relevant to later writers. Mark the terminal
		// stage so the commit stays attributable in traces.
		tr.Mark(txtrace.StageROCommit)
		return 0, nil
	}
	// First-committer-wins (plain SI).
	for _, x := range order {
		if p.store.LatestTS(x) > t.rec.snap {
			tr.Mark(txtrace.StageValidate)
			return 0, ErrConflict
		}
	}
	// Collect the concurrent readers of our write set: each yields an
	// anti-dependency R —rw→ t.
	var readers []*ssiTxRecord
	willHaveIn := t.rec.in
	for _, x := range order {
		for _, r := range p.sireads[x] {
			if r == t.rec || !r.concurrentWith(t.rec) {
				continue
			}
			if r.commitTS != 0 && r.in {
				// r is committed and would become a pivot: abort the
				// marker (us).
				tr.Mark(txtrace.StageValidate)
				return 0, ErrConflict
			}
			readers = append(readers, r)
			willHaveIn = true
		}
	}
	if willHaveIn && t.rec.out {
		tr.Mark(txtrace.StageValidate)
		return 0, ErrConflict // we would commit as a pivot
	}
	tr.Mark(txtrace.StageValidate)
	// Point of no return: apply marks and install.
	for _, r := range readers {
		r.out = true
	}
	t.rec.in = willHaveIn
	p.commitTS++
	t.rec.commitTS = p.commitTS
	t.rec.endTS = p.commitTS
	p.byCommit[p.commitTS] = t.rec
	for _, x := range order {
		if err := p.store.Install(x, storage.Version{Val: writes[x], TS: p.commitTS}); err != nil {
			return 0, err
		}
	}
	tr.Mark(txtrace.StageInstall)
	return 0, nil
}

func (t *ssiTx) abort() {
	p := t.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if t.rec.ended {
		return
	}
	t.rec.ended = true
	t.rec.aborted = true
	t.rec.endTS = p.commitTS
	p.releaseLocked(t.rec.snap)
}

// concurrentWith reports whether r's lifetime overlapped o's: r was
// active at some point at or after o's snapshot. Aborted transactions
// carry no edges. The read-only boundary case (r finished at the same
// commit counter o started at) is treated as concurrent, which is
// conservative: SSI may abort more, never less. Callers hold the
// protocol mutex.
func (r *ssiTxRecord) concurrentWith(o *ssiTxRecord) bool {
	switch {
	case r.aborted:
		return false
	case !r.ended:
		return true
	case r.commitTS > 0:
		return r.commitTS > o.snap
	default: // committed read-only
		return r.endTS >= o.snap
	}
}
