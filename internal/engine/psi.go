package engine

import (
	"fmt"
	"sync"
	"time"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
)

// psiProtocol implements parallel snapshot isolation in the style of
// Walter [31]: every session is pinned to a replica (site); a
// transaction reads a causally-consistent snapshot of its replica,
// commits at its origin after a global write-conflict check (ensuring
// NOCONFLICT: a writer must have observed the previous write to every
// object it writes), and its effects propagate to other replicas
// asynchronously in causal order. Two transactions committed at
// different sites without mutual visibility may be observed in
// different orders by different sites — the long-fork anomaly of
// Figure 2(c), allowed by PSI and forbidden by SI.
type psiProtocol struct {
	cfg Config

	mu sync.Mutex
	// logs[o] is the suffix of origin o's commit log that some replica
	// has not yet applied; bases[o] is the absolute sequence number of
	// its first entry. Fully-applied prefixes are truncated
	// periodically so long runs do not accumulate the whole history.
	logs  [][]psiCommit
	bases []int
	// sincetruncate counts commits since the last log truncation.
	sincetruncate int
	// gv[x] counts globally committed writes to x; version Meta fields
	// hold the stamp current when the version was installed.
	gv       map[model.Obj]uint64
	replicas []*replica

	stop chan struct{}
	wg   sync.WaitGroup
}

// psiCommit is one committed transaction in an origin log.
type psiCommit struct {
	origin int
	seq    int   // 1-based position within the origin's log
	dep    []int // causal dependency: required applied count per origin
	order  []model.Obj
	writes map[model.Obj]model.Value
	stamps map[model.Obj]uint64 // gv stamp assigned to each write
}

// replica is one site's local multi-version state.
type replica struct {
	mu       sync.Mutex
	store    storage.Driver
	applied  []int // per-origin applied log prefix lengths
	applySeq uint64
	// active counts live local transactions per snapshot sequence,
	// for garbage collection.
	active map[uint64]int
	// scratch is the reusable batch buffer for applyLocked, so the
	// apply loop does not allocate per commit.
	scratch []storage.Write
}

// releaseLocked drops a snapshot registration. Callers hold r.mu.
func (r *replica) releaseLocked(snap uint64) {
	if n := r.active[snap]; n > 1 {
		r.active[snap] = n - 1
	} else {
		delete(r.active, snap)
	}
}

// gc truncates this replica's version chains below its oldest live
// snapshot and returns the number of versions discarded.
func (r *replica) gc() int {
	r.mu.Lock()
	watermark := r.applySeq
	for snap := range r.active {
		if snap < watermark {
			watermark = snap
		}
	}
	r.mu.Unlock()
	return r.store.Compact(watermark)
}

func newPSIProtocol(cfg Config) *psiProtocol {
	p := &psiProtocol{
		cfg:  cfg,
		gv:   make(map[model.Obj]uint64),
		stop: make(chan struct{}),
	}
	if !cfg.ManualPropagation {
		p.wg.Add(1)
		go p.propagateLoop()
	}
	return p
}

func (p *psiProtocol) ensureSite(site int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.replicas) <= site {
		fresh := &replica{store: storage.NewMem(), active: make(map[uint64]int)}
		p.replicas = append(p.replicas, fresh)
		p.logs = append(p.logs, nil)
		p.bases = append(p.bases, 0)
		// Grow every replica's applied vector to the new origin count.
		for _, r := range p.replicas {
			r.mu.Lock()
			for len(r.applied) < len(p.replicas) {
				r.applied = append(r.applied, 0)
			}
			r.mu.Unlock()
		}
		// Bootstrap the new replica by state transfer from an existing
		// one (any donor works: log truncation only drops entries that
		// every replica, donor included, has applied), then catch up
		// from the retained logs. In manual-propagation mode only the
		// state transfer happens; the logs stay un-applied until the
		// client propagates explicitly.
		if len(p.replicas) > 1 {
			donor := p.replicas[0]
			donor.mu.Lock()
			fresh.mu.Lock()
			// Replica stores are always storage.NewMem drivers, which
			// implement Cloner; the assertion documents the requirement.
			fresh.store = donor.store.(storage.Cloner).Clone()
			fresh.applySeq = donor.applySeq
			copy(fresh.applied, donor.applied)
			fresh.mu.Unlock()
			donor.mu.Unlock()
		}
		if !p.cfg.ManualPropagation {
			for fresh.applyReady(p.logs, p.bases) {
			}
		}
	}
}

func (p *psiProtocol) close() error {
	close(p.stop)
	p.wg.Wait()
	return nil
}

// propagateLoop drives background propagation until close.
func (p *psiProtocol) propagateLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.propagateOnce()
		}
	}
}

// propagateOnce applies, at every replica, every origin-log entry
// whose causal dependencies are satisfied. Returns whether any entry
// was applied.
func (p *psiProtocol) propagateOnce() bool {
	p.mu.Lock()
	logs := make([][]psiCommit, len(p.logs))
	copy(logs, p.logs)
	bases := make([]int, len(p.bases))
	copy(bases, p.bases)
	replicas := make([]*replica, len(p.replicas))
	copy(replicas, p.replicas)
	p.mu.Unlock()

	progress := false
	for _, r := range replicas {
		for {
			if !r.applyReady(logs, bases) {
				break
			}
			progress = true
		}
	}
	return progress
}

// truncateLocked drops log prefixes every replica has applied. Callers
// hold p.mu.
func (p *psiProtocol) truncateLocked() {
	for o := range p.logs {
		min := -1
		for _, r := range p.replicas {
			r.mu.Lock()
			a := 0
			if o < len(r.applied) {
				a = r.applied[o]
			}
			r.mu.Unlock()
			if min < 0 || a < min {
				min = a
			}
		}
		drop := min - p.bases[o]
		if drop <= 0 {
			continue
		}
		kept := make([]psiCommit, len(p.logs[o])-drop)
		copy(kept, p.logs[o][drop:])
		p.logs[o] = kept
		p.bases[o] = min
	}
}

// applyReady applies one causally-ready log entry at the replica, if
// any. bases[o] is the absolute sequence of logs[o][0].
func (r *replica) applyReady(logs [][]psiCommit, bases []int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for o := range logs {
		if o >= len(r.applied) {
			continue
		}
		idx := r.applied[o] - bases[o]
		if idx < 0 || idx >= len(logs[o]) {
			continue
		}
		c := logs[o][idx]
		if !r.depSatisfiedLocked(c.dep) {
			continue
		}
		r.applyLocked(c)
		return true
	}
	return false
}

// depSatisfiedLocked reports whether every causal dependency of the
// commit has been applied here. Callers hold r.mu.
func (r *replica) depSatisfiedLocked(dep []int) bool {
	for o, need := range dep {
		if o >= len(r.applied) {
			if need > 0 {
				return false
			}
			continue
		}
		if r.applied[o] < need {
			return false
		}
	}
	return true
}

// applyLocked installs the commit's writes into the replica's version
// chains, taking each store shard lock once for the whole write set
// rather than once per object. Callers hold r.mu and guarantee the
// commit is the next entry of its origin with satisfied dependencies.
func (r *replica) applyLocked(c psiCommit) {
	r.applySeq++
	r.scratch = r.scratch[:0]
	for _, x := range c.order {
		r.scratch = append(r.scratch, storage.Write{Obj: x, Version: storage.Version{
			Val:  c.writes[x],
			TS:   r.applySeq,
			Meta: c.stamps[x],
		}})
	}
	// InstallBatch can only fail on non-monotonic timestamps, which
	// the per-replica applySeq precludes.
	if err := r.store.InstallBatch(r.scratch); err != nil {
		panic(fmt.Sprintf("engine: psi replica install: %v", err))
	}
	for len(r.applied) <= c.origin {
		r.applied = append(r.applied, 0)
	}
	r.applied[c.origin] = c.seq
}

// Flush propagates until every replica has applied every log entry.
// Meaningful in both manual and automatic modes.
func (p *psiProtocol) Flush() {
	for p.propagateOnce() {
	}
}

// gc compacts every replica's version chains and returns the total
// number of versions discarded.
func (p *psiProtocol) gc() int {
	p.mu.Lock()
	replicas := make([]*replica, len(p.replicas))
	copy(replicas, p.replicas)
	p.mu.Unlock()
	total := 0
	for _, r := range replicas {
		total += r.gc()
	}
	return total
}

func (p *psiProtocol) begin(site int) (txProtocol, error) {
	p.mu.Lock()
	if site >= len(p.replicas) {
		p.mu.Unlock()
		return nil, fmt.Errorf("engine: psi: unknown site %d", site)
	}
	r := p.replicas[site]
	var logs [][]psiCommit
	var bases []int
	if !p.cfg.ManualPropagation {
		logs = make([][]psiCommit, len(p.logs))
		copy(logs, p.logs)
		bases = make([]int, len(p.bases))
		copy(bases, p.bases)
	}
	p.mu.Unlock()
	if logs != nil {
		// Refresh the local replica with everything causally ready
		// before snapshotting, so conflict-aborted transactions make
		// progress on retry instead of spinning on a stale snapshot.
		for r.applyReady(logs, bases) {
		}
	}
	r.mu.Lock()
	snap := r.applySeq
	r.active[snap]++
	r.mu.Unlock()
	return &psiTx{p: p, r: r, site: site, snap: snap}, nil
}

type psiTx struct {
	p    *psiProtocol
	r    *replica
	site int
	snap uint64
	done bool
}

// finish releases the snapshot registration exactly once.
func (t *psiTx) finish() {
	if t.done {
		return
	}
	t.done = true
	t.r.mu.Lock()
	t.r.releaseLocked(t.snap)
	t.r.mu.Unlock()
}

func (t *psiTx) read(x model.Obj) (model.Value, error) {
	v, ok := t.r.store.ReadAt(x, t.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	return v.Val, nil
}

func (t *psiTx) commit(req commitReq) (uint64, error) {
	writes, order := req.writes, req.order
	defer t.finish()
	if len(writes) == 0 {
		// Read-only commit: no lock, no validation. Mark the terminal
		// stage so the commit stays attributable in traces.
		req.trace.Mark(txtrace.StageROCommit)
		return 0, nil
	}
	tr := req.trace
	p := t.p
	p.mu.Lock()
	tr.Mark(txtrace.StageLockWait)
	defer p.mu.Unlock()
	// Write-conflict check: for every written object, the snapshot
	// must contain the globally latest committed write (stamp match);
	// otherwise some concurrent writer was not visible to us and
	// NOCONFLICT would be violated.
	for _, x := range order {
		var seen uint64
		if v, ok := t.r.store.ReadAt(x, t.snap); ok {
			seen = v.Meta
		}
		if p.gv[x] != seen {
			tr.Mark(txtrace.StageValidate)
			return 0, ErrConflict
		}
	}
	tr.Mark(txtrace.StageValidate)
	c := psiCommit{
		origin: t.site,
		order:  append([]model.Obj(nil), order...),
		writes: make(map[model.Obj]model.Value, len(writes)),
		stamps: make(map[model.Obj]uint64, len(writes)),
	}
	for _, x := range order {
		p.gv[x]++
		c.writes[x] = writes[x]
		c.stamps[x] = p.gv[x]
	}
	// Causal dependency: everything applied at the origin when the
	// commit happens.
	t.r.mu.Lock()
	c.dep = append([]int(nil), t.r.applied...)
	c.seq = p.bases[t.site] + len(p.logs[t.site]) + 1
	p.logs[t.site] = append(p.logs[t.site], c)
	// Apply at the origin immediately (a site always sees its own
	// commits — this also yields the SESSION guarantee, since sessions
	// are pinned to sites).
	t.r.applyLocked(c)
	t.r.mu.Unlock()
	tr.Mark(txtrace.StageInstall)
	p.sincetruncate++
	if p.sincetruncate >= 256 {
		p.sincetruncate = 0
		p.truncateLocked()
	}
	return 0, nil
}

func (t *psiTx) abort() { t.finish() }

// Flush exposes PSI log propagation on the DB: it blocks until every
// replica has applied every committed transaction. For non-PSI engines
// it is a no-op.
func (db *DB) Flush() {
	if p, ok := db.impl.(*psiProtocol); ok {
		p.Flush()
	}
}

// PropagateOnce applies at most one round of causally-ready log
// entries at every replica; useful with Config.ManualPropagation to
// stage anomalies step by step. It reports whether anything was
// applied. For non-PSI engines it returns false.
func (db *DB) PropagateOnce() bool {
	if p, ok := db.impl.(*psiProtocol); ok {
		return p.propagateOnce()
	}
	return false
}
