package engine_test

import (
	"errors"
	"testing"

	. "sian/internal/engine"
	"sian/internal/model"
	"sian/internal/obs"
)

// TestAbortsCountedDistinctly checks the Stats asymmetry fix: aborts
// initiated by the client (callback errors, ManualTx.Abort) land in
// Stats.Aborts, while first-committer-wins conflicts land in
// Stats.Conflicts — never mixed.
func TestAbortsCountedDistinctly(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")

	// 1. Callback error: one abort, no conflict.
	boom := errors.New("boom")
	if err := s.Transact(func(tx *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st := db.Stats()
	if st.Aborts != 1 || st.Conflicts != 0 {
		t.Errorf("after callback error: aborts=%d conflicts=%d, want 1/0", st.Aborts, st.Conflicts)
	}

	// 2. ManualTx.Abort: second abort, still no conflict.
	mtx, err := s.Begin("manual")
	if err != nil {
		t.Fatal(err)
	}
	if err := mtx.Write("x", 7); err != nil {
		t.Fatal(err)
	}
	mtx.Abort()
	st = db.Stats()
	if st.Aborts != 2 || st.Conflicts != 0 {
		t.Errorf("after manual abort: aborts=%d conflicts=%d, want 2/0", st.Aborts, st.Conflicts)
	}

	// 3. First-committer-wins: one conflict, aborts unchanged.
	s2 := db.Session("s2")
	t1, err := s.Begin("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Begin("t2")
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	st = db.Stats()
	if st.Aborts != 2 || st.Conflicts != 1 {
		t.Errorf("after conflict: aborts=%d conflicts=%d, want 2/1", st.Aborts, st.Conflicts)
	}
	if st.Commits != 2 {
		t.Errorf("commits = %d, want 2 (Initialize and t1)", st.Commits)
	}
}

// TestMetricsRegistry checks the engine publishes its counters and
// latency histograms into the registry handed in via Config, labelled
// by engine kind.
func TestMetricsRegistry(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	db := newDB(t, SI, Config{Metrics: reg})
	if db.Metrics() != reg {
		t.Fatal("Metrics() must return the configured registry")
	}
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	const commits = 5
	for i := 0; i < commits; i++ {
		if err := s.Transact(func(tx *Tx) error { return tx.Write("x", model.Value(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	lbl := obs.L("engine", SI.String())
	// Initialize commits one transaction too.
	wantCommits := int64(commits + 1)
	if got := reg.Counter("engine_commits_total", lbl).Value(); got != wantCommits {
		t.Errorf("engine_commits_total = %d, want %d", got, wantCommits)
	}
	if got := reg.Counter("engine_commits_total", lbl).Value(); got != db.Stats().Commits {
		t.Errorf("registry counter (%d) and Stats.Commits (%d) disagree", got, db.Stats().Commits)
	}
	if got := reg.Histogram("engine_commit_latency_ns", lbl).Count(); got != wantCommits {
		t.Errorf("commit latency observations = %d, want %d", got, wantCommits)
	}
	if got := reg.Histogram("engine_snapshot_age_ns", lbl).Count(); got != wantCommits {
		t.Errorf("snapshot age observations = %d, want %d", got, wantCommits)
	}
	// Initialize opens its own session, so two sessions total.
	if got := reg.Gauge("engine_sessions", lbl).Value(); got != 2 {
		t.Errorf("engine_sessions = %d, want 2", got)
	}
}

// TestMetricsPerKindLabels checks two engines of different kinds can
// share one registry without their series colliding.
func TestMetricsPerKindLabels(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	si := newDB(t, SI, Config{Metrics: reg})
	ser := newDB(t, SER, Config{Metrics: reg})
	if err := si.Session("a").Transact(func(tx *Tx) error { return tx.Write("x", 1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ser.Session("b").Transact(func(tx *Tx) error { return tx.Write("x", 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("engine_commits_total", obs.L("engine", SI.String())).Value(); got != 1 {
		t.Errorf("SI commits = %d, want 1", got)
	}
	if got := reg.Counter("engine_commits_total", obs.L("engine", SER.String())).Value(); got != 3 {
		t.Errorf("SER commits = %d, want 3", got)
	}
}

// TestStatsSnapshotStable checks Stats() is a value snapshot: mutating
// the engine afterwards does not change an already-taken snapshot.
func TestStatsSnapshotStable(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	s := db.Session("s")
	if err := s.Transact(func(tx *Tx) error { return tx.Write("x", 1) }); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	if err := s.Transact(func(tx *Tx) error { return tx.Write("x", 2) }); err != nil {
		t.Fatal(err)
	}
	if before.Commits != 1 {
		t.Errorf("snapshot mutated: commits = %d, want 1", before.Commits)
	}
	if db.Stats().Commits != 2 {
		t.Errorf("live stats = %d, want 2", db.Stats().Commits)
	}
}
