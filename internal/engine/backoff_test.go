package engine

import (
	"testing"
	"time"

	"sian/internal/model"
)

// mkDB is the in-package twin of engine_test's newDB helper.
func mkDB(t *testing.T, kind Kind, cfg Config) *DB {
	t.Helper()
	db, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return db
}

// fixedRand returns the midpoint of every jitter interval, making
// backoffDelay deterministic for the shape assertions.
func midRand(k int64) int64 { return k / 2 }

func TestBackoffDelayShape(t *testing.T) {
	t.Parallel()
	base := time.Microsecond
	max := time.Millisecond
	var prev time.Duration
	for n := 1; n <= 24; n++ {
		d := backoffDelay(n, base, max, midRand)
		if d < base/2 {
			t.Errorf("n=%d: delay %v below base/2", n, d)
		}
		if d > max {
			t.Errorf("n=%d: delay %v above cap %v", n, d, max)
		}
		if d < prev && prev < max/2 {
			t.Errorf("n=%d: delay %v shrank from %v before reaching the cap", n, d, prev)
		}
		prev = d
	}
	// The cap binds: far-out attempts are exactly capped (mid jitter
	// puts them at 3/4 max).
	if d := backoffDelay(40, base, max, midRand); d > max {
		t.Errorf("capped delay %v exceeds max", d)
	}
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	t.Parallel()
	base := 16 * time.Microsecond
	max := time.Millisecond
	// Full-range jitter: extremes of randn map to [d/2, d].
	lo := backoffDelay(1, base, max, func(int64) int64 { return 0 })
	hi := backoffDelay(1, base, max, func(k int64) int64 { return k - 1 })
	if lo != base/2 {
		t.Errorf("low jitter = %v, want %v", lo, base/2)
	}
	if hi != base {
		t.Errorf("high jitter = %v, want %v", hi, base)
	}
}

// TestRetryStormBounded is the retry-storm regression test: many
// sessions hammering one object must all commit, with conflict and
// retry counters bounded — the capped backoff de-synchronises the
// storm instead of letting sessions re-collide in lockstep until
// MaxRetries.
func TestRetryStormBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("contention storm")
	}
	db := mkDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"hot": 0}); err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	const perSession = 25
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		sess := db.Session(string(rune('a' + i)))
		go func() {
			var err error
			for n := 0; n < perSession && err == nil; n++ {
				err = sess.Transact(func(tx *Tx) error {
					v, rerr := tx.Read("hot")
					if rerr != nil {
						return rerr
					}
					return tx.Write("hot", v+1)
				})
			}
			errs <- err
		}()
	}
	for i := 0; i < sessions; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("storm transaction failed: %v", err)
		}
	}
	stats := db.Stats()
	wantCommits := int64(sessions*perSession) + 1 // + init
	if stats.Commits != wantCommits {
		t.Fatalf("commits = %d, want %d", stats.Commits, wantCommits)
	}
	// Every retry stems from a first-committer-wins loss; with
	// backoff, the conflict count stays within a small multiple of
	// the commit count instead of exploding towards MaxRetries.
	if limit := wantCommits * 40; stats.Conflicts > limit {
		t.Errorf("conflicts = %d for %d commits; retry storm not bounded (limit %d)",
			stats.Conflicts, stats.Commits, limit)
	}
	final := readHot(t, db)
	if final != sessions*perSession {
		t.Errorf("hot = %d, want %d", final, sessions*perSession)
	}
}

func readHot(t *testing.T, db *DB) model.Value {
	t.Helper()
	var v model.Value
	err := db.Session("audit").Transact(func(tx *Tx) error {
		var err error
		v, err = tx.Read("hot")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}
