package engine

import (
	"errors"
	"sync"
	"testing"

	"sian/internal/model"
	"sian/internal/obs/eventlog"
)

// TestRecorderLifecycleEvents drives an SI database with a recorder
// attached and checks the event stream matches the engine's own
// accounting: one Begin per attempt, Commit events carrying the
// canonical recorded ids, Conflict/Abort marks for the losing paths.
func TestRecorderLifecycleEvents(t *testing.T) {
	t.Parallel()
	rec := eventlog.NewRecorder(4096)
	db, err := New(SI, Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s1 := db.Session("s1")
	s2 := db.Session("s2")

	// A forced first-committer-wins conflict: two overlapping manual
	// transactions writing x.
	m1, err := s1.Begin("win")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Begin("lose")
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := m1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("overlapping write commit err = %v, want conflict", err)
	}

	// A user abort and a plain committed transaction.
	m3, err := s2.Begin("rollback")
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.Write("x", 3); err != nil {
		t.Fatal(err)
	}
	m3.Abort()
	if err := s2.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		return tx.Write("x", v+10)
	}); err != nil {
		t.Fatal(err)
	}

	events := rec.Events()
	counts := map[eventlog.Kind]int{}
	var commitNames []string
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Kind == eventlog.Commit {
			commitNames = append(commitNames, ev.Name)
		}
	}
	stats := db.Stats()
	if int64(counts[eventlog.Commit]) != stats.Commits {
		t.Errorf("commit events = %d, engine commits = %d", counts[eventlog.Commit], stats.Commits)
	}
	if int64(counts[eventlog.Conflict]) != stats.Conflicts {
		t.Errorf("conflict events = %d, engine conflicts = %d", counts[eventlog.Conflict], stats.Conflicts)
	}
	if int64(counts[eventlog.Abort]) != stats.Aborts {
		t.Errorf("abort events = %d, engine aborts = %d", counts[eventlog.Abort], stats.Aborts)
	}
	// Every attempt (committed or not) began.
	attempts := counts[eventlog.Commit] + counts[eventlog.Conflict] + counts[eventlog.Abort]
	if counts[eventlog.Begin] != attempts {
		t.Errorf("begin events = %d, attempts = %d", counts[eventlog.Begin], attempts)
	}
	// Commit names are exactly the history's transaction ids, in
	// commit order per session.
	ids := map[string]bool{}
	for _, tx := range db.History().Transactions() {
		ids[tx.ID] = true
	}
	for _, name := range commitNames {
		if !ids[name] {
			t.Errorf("commit event names unknown transaction %q", name)
		}
	}
	if len(commitNames) != len(ids) {
		t.Errorf("commit events = %d, history transactions = %d", len(commitNames), len(ids))
	}
	if commitNames[0] != model.InitTransactionID {
		t.Errorf("first commit = %q, want %q", commitNames[0], model.InitTransactionID)
	}
}

// TestRecorderConcurrentSessions checks the recorder under the
// engine's real worker concurrency (and the race detector): every
// committed transaction has a commit event, attempt ids never collide.
func TestRecorderConcurrentSessions(t *testing.T) {
	t.Parallel()
	rec := eventlog.NewRecorder(1 << 16)
	db, err := New(SI, Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"a": 0, "b": 0}); err != nil {
		t.Fatal(err)
	}
	const sessions, txs = 4, 30
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s := db.Session("w" + string(rune('0'+i)))
		wg.Add(1)
		go func(s *Session, base int64) {
			defer wg.Done()
			for j := 0; j < txs; j++ {
				_ = s.Transact(func(tx *Tx) error {
					v, err := tx.Read("a")
					if err != nil {
						return err
					}
					if err := tx.Write("a", v+1); err != nil {
						return err
					}
					return tx.Write("b", model.Value(base+int64(j)))
				})
			}
		}(s, int64(i)*1000)
	}
	wg.Wait()
	seenAttempt := map[string]bool{}
	commits := 0
	for _, ev := range rec.Events() {
		if ev.Kind == eventlog.Begin {
			if seenAttempt[ev.Session+"\x00"+ev.TxID] {
				t.Fatalf("duplicate attempt id %s/%s", ev.Session, ev.TxID)
			}
			seenAttempt[ev.Session+"\x00"+ev.TxID] = true
		}
		if ev.Kind == eventlog.Commit {
			commits++
		}
	}
	if int64(commits) != db.Stats().Commits {
		t.Errorf("commit events = %d, engine commits = %d", commits, db.Stats().Commits)
	}
}
