package engine_test

import (
	"fmt"
	"testing"

	. "sian/internal/engine"
	"sian/internal/model"
	"sian/internal/obs/eventlog"
	"sian/internal/storage/wal"
)

func openWAL(t *testing.T, dir string) *wal.Driver {
	t.Helper()
	d, err := wal.Open(wal.Options{Dir: dir, NoSync: true, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSIOverWALReopen is the engine-level durability loop: an SI
// engine over the WAL driver, closed and reopened, resumes with the
// committed state visible and the timestamp allocator seeded past the
// recovered frontier.
func TestSIOverWALReopen(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	db := newDB(t, SI, Config{Driver: openWAL(t, dir)})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0, "y": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s1")
	for i := 1; i <= 20; i++ {
		if err := s.Transact(func(tx *Tx) error {
			v, err := tx.Read("x")
			if err != nil {
				return err
			}
			return tx.Write("x", v+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := openWAL(t, dir)
	if !re.Recovery().Certified {
		t.Fatalf("recovery not certified: %s", re.Recovery().Verdict)
	}
	db2, err := New(SI, Config{Driver: re})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session("s2")
	if err := s2.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		if v != 20 {
			return fmt.Errorf("recovered x = %d, want 20", v)
		}
		return tx.Write("x", v+1)
	}); err != nil {
		t.Fatal(err)
	}
	// The post-recovery commit must land above every recovered
	// version (the allocator was seeded by RecoveredMaxTS).
	if v, ok := re.Latest("x"); !ok || v.Val != 21 || v.TS <= re.RecoveredMaxTS() {
		t.Errorf("post-recovery version %+v (recovered max ts %d)", v, re.RecoveredMaxTS())
	}
}

// TestCommitEventsCarryLSN pins the observability contract: with a
// durable driver attached, every commit event of a writing transaction
// carries the WAL sequence number its record was fsynced at, and LSNs
// are unique. Volatile drivers keep LSN zero.
func TestCommitEventsCarryLSN(t *testing.T) {
	t.Parallel()
	rec := eventlog.NewRecorder(1 << 12)
	db := newDB(t, SI, Config{Driver: openWAL(t, t.TempDir()), Recorder: rec})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s1")
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Transact(func(tx *Tx) error {
			v, err := tx.Read("x")
			if err != nil {
				return err
			}
			return tx.Write("x", v+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One read-only transaction: commits without a log record.
	if err := s.Transact(func(tx *Tx) error {
		_, err := tx.Read("x")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	seen := map[uint64]bool{}
	var writing, readOnly int
	for _, ev := range rec.Events() {
		if ev.Kind != eventlog.Commit {
			continue
		}
		if ev.LSN == 0 {
			readOnly++
			continue
		}
		if seen[ev.LSN] {
			t.Errorf("duplicate LSN %d on commit %s", ev.LSN, ev.Name)
		}
		seen[ev.LSN] = true
		writing++
	}
	if writing != n+1 { // n increments + the init transaction
		t.Errorf("%d commit events carry an LSN, want %d", writing, n+1)
	}
	if readOnly != 1 {
		t.Errorf("%d zero-LSN commits, want exactly the read-only one", readOnly)
	}

	// The volatile driver's commits never carry an LSN.
	memRec := eventlog.NewRecorder(1 << 10)
	memDB := newDB(t, SI, Config{Recorder: memRec})
	if err := memDB.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range memRec.Events() {
		if ev.Kind == eventlog.Commit && ev.LSN != 0 {
			t.Errorf("volatile commit event carries LSN %d", ev.LSN)
		}
	}
}

// TestWALRejectsNonSIEngines pins Config.Driver gating: engines that
// manage their own stores refuse an injected driver.
func TestWALRejectsNonSIEngines(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{PSI, SER} {
		d := openWAL(t, t.TempDir())
		if _, err := New(kind, Config{Driver: d}); err == nil {
			t.Errorf("%v accepted an injected driver", kind)
		}
		d.Close()
	}
}
