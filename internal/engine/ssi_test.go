package engine_test

import (
	"errors"
	"sync"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	. "sian/internal/engine"
	"sian/internal/model"
	"sian/internal/workload"
)

// TestSSIPreventsWriteSkew stages the Figure 2(d) interleaving on the
// SSI engine: unlike plain SI, the dangerous-structure detection must
// abort one of the two withdrawals.
func TestSSIPreventsWriteSkew(t *testing.T) {
	t.Parallel()
	db := newDB(t, SSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"a1": 60, "a2": 60}); err != nil {
		t.Fatal(err)
	}
	t1, err := db.Session("s1").Begin("w1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Session("s2").Begin("w2")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*ManualTx{t1, t2} {
		if _, err := m.Read("a1"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Read("a2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Write("a1", -40); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("a2", -40); err != nil {
		t.Fatal(err)
	}
	err1 := t1.Commit()
	err2 := t2.Commit()
	if err1 == nil && err2 == nil {
		t.Fatal("both write-skew transactions committed under SSI")
	}
	if err1 != nil && !errors.Is(err1, ErrConflict) {
		t.Errorf("err1 = %v", err1)
	}
	if err2 != nil && !errors.Is(err2, ErrConflict) {
		t.Errorf("err2 = %v", err2)
	}
	// The committed history is serializable.
	if !certifyHistory(t, db, depgraph.SER) {
		t.Error("SSI history not serializable")
	}
}

// TestSSIAllowsNonConflicting: disjoint transactions commit freely.
func TestSSIAllowsNonConflicting(t *testing.T) {
	t.Parallel()
	db := newDB(t, SSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0, "y": 0}); err != nil {
		t.Fatal(err)
	}
	t1, err := db.Session("a").Begin("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Session("b").Begin("t2")
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("y", 1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2: %v", err)
	}
}

// TestSSIReadOnlyAnomalyPrevented stages Fekete/O'Neil/O'Neil's
// read-only anomaly shape: the batch (T2) and the deposit (T1) write
// disjoint objects, and a read-only audit (T3) observes the deposit
// but not the batch — serializable-breaking under plain SI when the
// batch later overwrites what the deposit read. SSI must abort one
// participant, keeping every committed history serializable.
func TestSSIReadOnlyAnomalyPrevented(t *testing.T) {
	t.Parallel()
	db := newDB(t, SSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"checking": 0, "savings": 0}); err != nil {
		t.Fatal(err)
	}
	// T2 (batch): reads both, will add interest to savings.
	t2, err := db.Session("batch").Begin("T2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("checking"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("savings"); err != nil {
		t.Fatal(err)
	}
	// T1 (deposit): writes checking, commits first.
	t1, err := db.Session("deposit").Begin("T1")
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("checking", 20); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// T3 (audit): reads both, sees T1's deposit but not T2's batch.
	t3, err := db.Session("audit").Begin("T3")
	if err != nil {
		t.Fatal(err)
	}
	r1, err3a := t3.Read("checking")
	_, err3b := t3.Read("savings")
	commit3 := error(nil)
	if err3a == nil && err3b == nil {
		commit3 = t3.Commit()
	}
	// T2 commits its interest write after the audit.
	err2 := t2.Write("savings", -11)
	if err2 == nil {
		err2 = t2.Commit()
	}
	// At least one participant must have aborted, or the audit missed
	// the deposit; in every case the committed history stays
	// serializable.
	_ = r1
	_ = commit3
	_ = err2
	db.Flush()
	if !certifyHistory(t, db, depgraph.SER) {
		t.Fatal("SSI committed a non-serializable history")
	}
}

// TestSSIConcurrentWorkloadsSerializable runs contended register
// workloads and certifies every recorded history as serializable — the
// end-to-end guarantee of SSI, judged by the Theorem 8
// characterisation.
func TestSSIConcurrentWorkloadsSerializable(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 3; seed++ {
		db := newDB(t, SSI, Config{})
		h, err := workload.RunRegisters(db, workload.RegistersConfig{
			Sessions: 3, TxPerSession: 6, OpsPerTx: 2, Objects: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := check.Certify(h, depgraph.SER, check.Options{NoInit: true, PinInit: true, Budget: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			t.Fatalf("seed %d: SSI history not serializable:\n%v", seed, h)
		}
	}
}

// TestSSIStress hammers one hot object from several goroutines; the
// final counter value must equal the number of successful increments
// and the history must certify serializable.
func TestSSIStress(t *testing.T) {
	t.Parallel()
	db := newDB(t, SSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"ctr": 0}); err != nil {
		t.Fatal(err)
	}
	const sessions = 3
	const perSession = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		sess := db.Session(string(rune('a' + i)))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for n := 0; n < perSession; n++ {
				err := sess.Transact(func(tx *Tx) error {
					v, err := tx.Read("ctr")
					if err != nil {
						return err
					}
					return tx.Write("ctr", v+1)
				})
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	s := db.Session("audit")
	err := s.Transact(func(tx *Tx) error {
		v, err := tx.Read("ctr")
		if err != nil {
			return err
		}
		if v != sessions*perSession {
			t.Errorf("ctr = %d, want %d", v, sessions*perSession)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !certifyHistory(t, db, depgraph.SER) {
		t.Error("stressed SSI history not serializable")
	}
}
