package engine

import (
	"errors"
	"testing"

	"sian/internal/model"
)

// TestPromoteMaterialisesConflict pins the §6 remedy primitive: two
// overlapping transactions that Promote the same object must collide
// on SI's first-committer-wins check, so at most one commits — the
// write skew they would otherwise exhibit cannot occur.
func TestPromoteMaterialisesConflict(t *testing.T) {
	t.Parallel()
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"acct1": 60, "acct2": 60, "total": 120}); err != nil {
		t.Fatal(err)
	}

	t1, err := db.Session("alice").Begin("withdraw1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.Session("bob").Begin("withdraw2")
	if err != nil {
		t.Fatal(err)
	}
	// Both decide on the combined balance, write disjoint accounts, and
	// promote their read of the shared total — the suggested fix.
	if _, err := t1.Read("acct1"); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("acct1", 0); err != nil {
		t.Fatal(err)
	}
	if err := t1.Promote("total"); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Read("acct2"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("acct2", 0); err != nil {
		t.Fatal(err)
	}
	if err := t2.Promote("total"); err != nil {
		t.Fatal(err)
	}
	err1 := t1.Commit()
	err2 := t2.Commit()
	if err1 != nil {
		t.Fatalf("first committer failed: %v", err1)
	}
	if !errors.Is(err2, ErrConflict) {
		t.Fatalf("second committer: err = %v, want ErrConflict", err2)
	}
}

// TestPromoteRecordsReadAndWrite checks the recorded operation log: a
// promoted object appears in both the read set and the write set of
// the committed transaction, with the value written back unchanged.
func TestPromoteRecordsReadAndWrite(t *testing.T) {
	t.Parallel()
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Initialize(map[model.Obj]model.Value{"x": 7}); err != nil {
		t.Fatal(err)
	}
	if err := db.Session("s").TransactNamed("promo", func(tx *Tx) error {
		return tx.Promote("x")
	}); err != nil {
		t.Fatal(err)
	}
	db.Flush()
	found := false
	for _, sess := range db.History().Sessions() {
		for _, tr := range sess.Transactions {
			if len(tr.ReadSet()) == 0 {
				continue
			}
			reads, writes := tr.ReadSet(), tr.WriteSet()
			if len(reads) == 1 && reads[0] == "x" && len(writes) == 1 && writes[0] == "x" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no transaction recorded x in both read and write set")
	}
	var v model.Value
	if err := db.Session("check").Transact(func(tx *Tx) error {
		var err error
		v, err = tx.Read("x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("promoted value changed: %d, want 7", v)
	}
}
