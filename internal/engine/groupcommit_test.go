package engine_test

import (
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	"sian/internal/engine"
	"sian/internal/model"
	"sian/internal/monitor"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/txtrace"
	"sian/internal/workload"
)

// TestGroupCommitDifferentialCertification is the differential safety
// gate for the group-commit pipeline: the closed-loop and hot-key
// workloads run with batching on and off, and both histories must
// draw identical verdicts from the offline checker (check.Certify)
// and the online monitor — all four certifying as SI. Run under -race
// in CI, this pins the batched validate/install/publish path to the
// same SI definition as the solo path it replaces.
func TestGroupCommitDifferentialCertification(t *testing.T) {
	t.Parallel()
	configs := []struct {
		name string
		cfg  workload.ClosedLoopConfig
	}{
		{"disjoint", workload.ClosedLoopConfig{Sessions: 4, Ops: 20, Objects: 4, Disjoint: true, Seed: 11}},
		{"hotkeys", workload.ClosedLoopConfig{Sessions: 6, Ops: 15, Objects: 32, HotKeys: 2, Seed: 12}},
	}
	for _, tc := range configs {
		tc := tc
		for _, disable := range []bool{false, true} {
			disable := disable
			name := tc.name + "/batching-on"
			if disable {
				name = tc.name + "/batching-off"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				rec := eventlog.NewRecorder(1 << 17)
				db, err := engine.New(engine.SI, engine.Config{
					Recorder:           rec,
					DisableGroupCommit: disable,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				out, err := workload.RunClosedLoop(db, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if out.Commits != int64(tc.cfg.Sessions*tc.cfg.Ops) {
					t.Fatalf("commits = %d, want %d (closed loop retries to completion)",
						out.Commits, tc.cfg.Sessions*tc.cfg.Ops)
				}
				db.Flush()

				// Both paths route every writing commit through the same
				// accounting: batches when the sequencer is on, solo
				// commits when it is off.
				lbl := obs.L("engine", engine.SI.String())
				batches := db.Metrics().Counter("engine_commit_batches_total", lbl).Value()
				if disable && batches != 0 {
					t.Errorf("batches executed with batching disabled: %d", batches)
				}
				if !disable && batches == 0 {
					t.Error("no batches executed with batching enabled")
				}

				// Offline: the complete recorded history must be SI.
				res, err := check.Certify(db.History(), depgraph.SI, check.Options{
					NoInit: true, PinInit: true, Budget: 5_000_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Member {
					t.Fatalf("history not allowed by SI: %v", res.Explain)
				}

				// Online: the monitor over the same event stream must agree,
				// definitively — the identical verdict the solo path draws.
				if dropped := rec.Dropped(); dropped > 0 {
					t.Fatalf("recorder dropped %d events; raise the ring capacity", dropped)
				}
				mon := monitor.New(monitor.Config{Model: depgraph.SI})
				for _, ev := range rec.Events() {
					mon.Ingest(ev)
				}
				rep, err := mon.Finish()
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Member {
					for _, v := range rep.Violations {
						t.Logf("violation: %v", v)
					}
					t.Fatalf("monitor rejects the stream the checker certified (%d events, %d commits)",
						rep.Events, rep.Commits)
				}
				if !rep.Definitive {
					t.Error("unwindowed monitor verdict should be definitive")
				}
				if int64(rep.Commits) != out.Commits+1 {
					t.Errorf("monitor saw %d commits, engine counted %d (+1 init = %d)",
						rep.Commits, out.Commits, out.Commits+1)
				}
			})
		}
	}
}

// TestReadOnlyCommitTraceStage pins the ack-terminal stage of
// read-only commits: a traced read-only transaction's span sequence
// ends reads → ro_commit → ack on every engine with a read-only fast
// path, so its commit latency stays attributable in /trace/{id} span
// trees instead of jumping from reads straight to ack.
func TestReadOnlyCommitTraceStage(t *testing.T) {
	for _, kind := range []engine.Kind{engine.SI, engine.PSI, engine.SSI} {
		t.Run(kind.String(), func(t *testing.T) {
			tracer := txtrace.New(txtrace.Options{})
			db, err := engine.New(kind, engine.Config{TxTracer: tracer})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
				t.Fatal(err)
			}
			if err := db.Session("r").Transact(func(tx *engine.Tx) error {
				_, err := tx.Read("x")
				return err
			}); err != nil {
				t.Fatal(err)
			}
			finished := tracer.Finished(1)
			if len(finished) != 1 {
				t.Fatal("no trace for the read-only transaction")
			}
			td := finished[0]
			if td.Outcome != txtrace.OutcomeCommit {
				t.Fatalf("outcome = %s", td.Outcome)
			}
			// SI and PSI read-only commits touch no lock; SSI must take
			// the engine mutex even when read-only (its SIREADs stay
			// relevant to later writers), so it honestly reports a
			// lock_wait span first.
			want := []txtrace.Stage{txtrace.StageBeginWait, txtrace.StageReads}
			if kind == engine.SSI {
				want = append(want, txtrace.StageLockWait)
			}
			want = append(want, txtrace.StageROCommit, txtrace.StageAck)
			if len(td.Spans) != len(want) {
				t.Fatalf("spans: %v", td.Spans)
			}
			for i, st := range want {
				if td.Spans[i].Stage != st {
					t.Errorf("span %d = %s, want %s", i, td.Spans[i].Stage, st)
				}
			}
		})
	}
}
