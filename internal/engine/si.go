package engine

import (
	"runtime"
	"sync/atomic"

	"sian/internal/kvstore"
	"sian/internal/model"
)

// siProtocol is the idealised SI concurrency control of §1 of the
// paper: a transaction reads from the snapshot of committed state
// taken at its start, and commits only if no other committed
// transaction has written any object it also wrote since that
// snapshot (first-committer-wins).
//
// The implementation is built for multicore parallelism — no global
// mutex anywhere on the transaction path:
//
//   - begin is lock-free: one atomic load of the published commit
//     timestamp plus a slot registration in snapRegistry (see
//     snapreg.go for the begin/GC handshake);
//   - reads take only the read-lock of the one store shard holding
//     the object;
//   - commit locks only the shards covering its write set, in
//     canonical shard order (kvstore.LockObjs), validates
//     first-committer-wins per shard and installs under that one
//     multi-shard critical section, so transactions with disjoint
//     write sets commit fully in parallel;
//   - read-only transactions touch no lock at all: their commit is a
//     single atomic slot release.
//
// Timestamps are split in two atomics. nextTS allocates commit
// timestamps; commitTS publishes them, strictly in order, once the
// writes are installed. A snapshot is always a published timestamp,
// so every version at or below it is fully installed — the short
// install window between allocation and publication is invisible to
// snapshots. First-committer-wins stays sound because validation and
// installation happen while holding every write-set shard: two
// commits writing a common object serialize on its shard, and the
// second sees the first's installed version (necessarily newer than
// its snapshot — a published snapshot can never be at or above an
// unpublished timestamp) and aborts. See DESIGN.md §10 for the full
// argument.
type siProtocol struct {
	store *kvstore.Store

	// nextTS is the commit-timestamp allocation sequence.
	nextTS atomic.Uint64
	// commitTS is the published watermark: every version with a
	// timestamp at or below it is fully installed. Begins snapshot
	// this value.
	commitTS atomic.Uint64
	// snaps registers live snapshots for the GC watermark.
	snaps snapRegistry
}

func newSIProtocol() *siProtocol {
	return &siProtocol{store: kvstore.New()}
}

func (p *siProtocol) ensureSite(int) {}

func (p *siProtocol) close() error { return nil }

func (p *siProtocol) begin(int) (txProtocol, error) {
	ticket := p.snaps.acquire(p.commitTS.Load)
	return &siTx{p: p, ticket: ticket}, nil
}

// gc truncates version chains below the oldest live snapshot and
// returns the number of versions discarded.
func (p *siProtocol) gc() int {
	return p.store.GC(p.snaps.watermark(p.commitTS.Load()))
}

type siTx struct {
	p      *siProtocol
	ticket snapTicket
	done   bool
}

func (t *siTx) read(x model.Obj) (model.Value, error) {
	v, ok := t.p.store.ReadAt(x, t.ticket.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	return v.Val, nil
}

func (t *siTx) commit(writes map[model.Obj]model.Value, order []model.Obj) error {
	p := t.p
	defer t.finish()
	if len(writes) == 0 {
		return nil // read-only transactions always commit under SI
	}
	snap := t.ticket.snap
	lock := p.store.LockObjs(order)
	// Write-conflict detection: any object we wrote that gained a
	// committed version after our snapshot aborts us. Holding every
	// write-set shard makes validate-then-install atomic against any
	// commit overlapping our write set.
	for _, x := range order {
		if lock.LatestTS(x) > snap {
			lock.Unlock()
			return ErrConflict
		}
	}
	ts := p.nextTS.Add(1)
	var installErr error
	for _, x := range order {
		if err := lock.Install(x, kvstore.Version{Val: writes[x], TS: ts}); err != nil {
			// Unreachable while the write-set shards are held (the
			// allocation order argument above); surface it rather than
			// panic per the no-panic guideline — but only after the
			// timestamp is published, or the pipeline would stall.
			if installErr == nil {
				installErr = err
			}
		}
	}
	lock.Unlock()
	// Publish, strictly in allocation order: timestamp ts becomes
	// visible to snapshots only when everything at or below it is
	// installed. The wait is the short install window of the (at most
	// one) predecessor still installing.
	for !p.commitTS.CompareAndSwap(ts-1, ts) {
		runtime.Gosched()
	}
	return installErr
}

func (t *siTx) abort() { t.finish() }

// finish releases the snapshot registration exactly once.
func (t *siTx) finish() {
	if t.done {
		return
	}
	t.done = true
	t.p.snaps.release(t.ticket)
}
