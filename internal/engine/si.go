package engine

import (
	"runtime"
	"sync/atomic"

	"sian/internal/model"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
)

// siProtocol is the idealised SI concurrency control of §1 of the
// paper: a transaction reads from the snapshot of committed state
// taken at its start, and commits only if no other committed
// transaction has written any object it also wrote since that
// snapshot (first-committer-wins).
//
// The implementation is built for multicore parallelism — no global
// mutex anywhere on the transaction path:
//
//   - begin is lock-free: one atomic load of the published commit
//     timestamp plus a slot registration in snapRegistry (see
//     snapreg.go for the begin/GC handshake);
//   - reads take only the read-lock of the one store shard holding
//     the object;
//   - commit locks only the shards covering its write set, in
//     canonical shard order (Driver.LockObjs), validates
//     first-committer-wins per shard and installs under that one
//     multi-shard critical section, so transactions with disjoint
//     write sets commit fully in parallel;
//   - read-only transactions touch no lock at all: their commit is a
//     single atomic slot release.
//
// Timestamps are split in two atomics. nextTS allocates commit
// timestamps; commitTS publishes them, strictly in order, once the
// writes are installed. A snapshot is always a published timestamp,
// so every version at or below it is fully installed — the short
// install window between allocation and publication is invisible to
// snapshots. First-committer-wins stays sound because validation and
// installation happen while holding every write-set shard: two
// commits writing a common object serialize on its shard, and the
// second sees the first's installed version (necessarily newer than
// its snapshot — a published snapshot can never be at or above an
// unpublished timestamp) and aborts. See DESIGN.md §10 for the full
// argument.
//
// The protocol runs over any storage.Driver. With a durable driver
// (storage/wal) the commit window also persists the transaction:
// LogCommit stages the commit record — full op list included, so
// recovery replay re-certifies the history — inside the window (per-
// object log order therefore matches timestamp order), Unlock returns
// only after the record is fsynced (group fsync permitted), and the
// timestamp is published after Unlock. An acknowledged commit is thus
// always durable, and — because publication is strictly in timestamp
// order — so are all its predecessors; see DESIGN.md §12.
type siProtocol struct {
	store storage.Driver

	// nextTS is the commit-timestamp allocation sequence.
	nextTS atomic.Uint64
	// commitTS is the published watermark: every version with a
	// timestamp at or below it is fully installed. Begins snapshot
	// this value.
	commitTS atomic.Uint64
	// snaps registers live snapshots for the GC watermark.
	snaps snapRegistry
}

func newSIProtocol(cfg Config) *siProtocol {
	st := cfg.Driver
	if st == nil {
		st = storage.NewMem()
	}
	p := &siProtocol{store: st}
	// A driver restored from a log already holds versions; seed the
	// allocator above them so fresh commits stay monotonic and fresh
	// snapshots see the recovered state.
	if r, ok := st.(storage.Recovered); ok {
		ts := r.RecoveredMaxTS()
		p.nextTS.Store(ts)
		p.commitTS.Store(ts)
	}
	return p
}

func (p *siProtocol) ensureSite(int) {}

func (p *siProtocol) close() error { return p.store.Close() }

func (p *siProtocol) begin(int) (txProtocol, error) {
	ticket := p.snaps.acquire(p.commitTS.Load)
	return &siTx{p: p, ticket: ticket}, nil
}

// gc truncates version chains below the oldest live snapshot and
// returns the number of versions discarded.
func (p *siProtocol) gc() int {
	return p.store.Compact(p.snaps.watermark(p.commitTS.Load()))
}

type siTx struct {
	p      *siProtocol
	ticket snapTicket
	done   bool
}

func (t *siTx) read(x model.Obj) (model.Value, error) {
	v, ok := t.p.store.ReadAt(x, t.ticket.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	return v.Val, nil
}

func (t *siTx) commit(req commitReq) (uint64, error) {
	p := t.p
	defer t.finish()
	if len(req.writes) == 0 {
		return 0, nil // read-only transactions always commit under SI
	}
	snap := t.ticket.snap
	tr := req.trace
	lock := p.store.LockObjs(req.order)
	tr.Mark(txtrace.StageLockWait)
	// Write-conflict detection: any object we wrote that gained a
	// committed version after our snapshot aborts us. Holding every
	// write-set shard makes validate-then-install atomic against any
	// commit overlapping our write set.
	for _, x := range req.order {
		if lock.LatestTS(x) > snap {
			tr.Mark(txtrace.StageValidate)
			lock.Unlock()
			return 0, ErrConflict
		}
	}
	tr.Mark(txtrace.StageValidate)
	ts := p.nextTS.Add(1)
	var installErr error
	for _, x := range req.order {
		if err := lock.Install(x, storage.Version{Val: req.writes[x], TS: ts}); err != nil {
			// Unreachable while the write-set shards are held (the
			// allocation order argument above); surface it rather than
			// panic per the no-panic guideline — but only after the
			// timestamp is published, or the pipeline would stall.
			if installErr == nil {
				installErr = err
			}
		}
	}
	tr.Mark(txtrace.StageInstall)
	// Hand a durable window the commit record while the shards are
	// still held, so the log's per-object record order matches the
	// timestamp order installed above.
	if lg, ok := lock.(storage.CommitLogger); ok {
		lg.LogCommit(storage.CommitRecord{TS: ts, Session: req.session, TxID: req.txid, Ops: req.ops})
	}
	// A durable window marks the wal_append and fsync_wait stages
	// itself (they happen inside Unlock, below).
	if tr != nil {
		if ta, ok := lock.(storage.TraceAttacher); ok {
			ta.AttachTrace(tr)
		}
	}
	// For a durable driver, Unlock appends the staged record inside
	// the critical section, releases the shards, and returns only once
	// the record is fsynced — so the publication below never exposes
	// an un-synced commit.
	lock.Unlock()
	// Publish, strictly in allocation order: timestamp ts becomes
	// visible to snapshots only when everything at or below it is
	// installed (and, for durable drivers, synced). The wait is the
	// short install window of the (at most one) predecessor still
	// installing.
	for !p.commitTS.CompareAndSwap(ts-1, ts) {
		runtime.Gosched()
	}
	tr.Mark(txtrace.StagePublish)
	var lsn uint64
	if dw, ok := lock.(storage.DurableWindow); ok {
		durLSN, err := dw.Durable()
		lsn = durLSN
		// A sync failure leaves the writes visible in memory but not
		// durable; surface it (after publishing, so the in-order
		// pipeline cannot stall) and let the caller treat the commit
		// as failed.
		if installErr == nil {
			installErr = err
		}
	}
	return lsn, installErr
}

func (t *siTx) abort() { t.finish() }

// finish releases the snapshot registration exactly once.
func (t *siTx) finish() {
	if t.done {
		return
	}
	t.done = true
	t.p.snaps.release(t.ticket)
}
