package engine

import (
	"runtime"
	"sync/atomic"

	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/txtrace"
	"sian/internal/storage"
)

// siProtocol is the idealised SI concurrency control of §1 of the
// paper: a transaction reads from the snapshot of committed state
// taken at its start, and commits only if no other committed
// transaction has written any object it also wrote since that
// snapshot (first-committer-wins).
//
// The implementation is built for multicore parallelism — no global
// mutex anywhere on the transaction path:
//
//   - begin is lock-free: one atomic load of the published commit
//     timestamp plus a slot registration in snapRegistry (see
//     snapreg.go for the begin/GC handshake);
//   - reads take only the read-lock of the one store shard holding
//     the object;
//   - commit locks only the shards covering its write set, in
//     canonical shard order (Driver.LockObjs), validates
//     first-committer-wins per shard and installs under that one
//     multi-shard critical section, so transactions with disjoint
//     write sets commit fully in parallel;
//   - read-only transactions touch no lock at all: their commit is a
//     single atomic slot release.
//
// Timestamps are split in two atomics. nextTS allocates commit
// timestamps; commitTS publishes them, strictly in order, once the
// writes are installed. A snapshot is always a published timestamp,
// so every version at or below it is fully installed — the short
// install window between allocation and publication is invisible to
// snapshots. First-committer-wins stays sound because validation and
// installation happen while holding every write-set shard: two
// commits writing a common object serialize on its shard, and the
// second sees the first's installed version (necessarily newer than
// its snapshot — a published snapshot can never be at or above an
// unpublished timestamp) and aborts. See DESIGN.md §10 for the full
// argument.
//
// The protocol runs over any storage.Driver. With a durable driver
// (storage/wal) the commit window also persists the transaction:
// LogCommit stages the commit record — full op list included, so
// recovery replay re-certifies the history — inside the window (per-
// object log order therefore matches timestamp order), Unlock returns
// only after the record is fsynced (group fsync permitted), and the
// timestamp is published after Unlock. An acknowledged commit is thus
// always durable, and — because publication is strictly in timestamp
// order — so are all its predecessors; see DESIGN.md §12.
type siProtocol struct {
	store storage.Driver
	// batcher is the group-commit sequencer (batcher.go); nil when
	// Config.DisableGroupCommit is set, in which case every writing
	// commit takes the solo path below.
	batcher *commitBatcher

	// nextTS is the commit-timestamp allocation sequence.
	nextTS atomic.Uint64
	// commitTS is the published watermark: every version with a
	// timestamp at or below it is fully installed. Begins snapshot
	// this value.
	commitTS atomic.Uint64
	// snaps registers live snapshots for the GC watermark.
	snaps snapRegistry

	// Group-commit observability, resolved once at construction.
	hBatchSize    *obs.Histogram // members per executed batch
	cBatches      *obs.Counter   // batches executed
	cBatchMembers *obs.Counter   // commit requests decided inside a batch
	cSoloCommits  *obs.Counter   // commit requests through the solo path
}

func newSIProtocol(cfg Config, reg *obs.Registry) *siProtocol {
	st := cfg.Driver
	if st == nil {
		st = storage.NewMem()
	}
	p := &siProtocol{store: st}
	if !cfg.DisableGroupCommit {
		p.batcher = newCommitBatcher(p)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lbl := obs.L("engine", SI.String())
	p.hBatchSize = reg.Histogram("engine_commit_batch_size", lbl)
	p.cBatches = reg.Counter("engine_commit_batches_total", lbl)
	p.cBatchMembers = reg.Counter("engine_commit_batch_members_total", lbl)
	p.cSoloCommits = reg.Counter("engine_commit_solo_total", lbl)
	// A driver restored from a log already holds versions; seed the
	// allocator above them so fresh commits stay monotonic and fresh
	// snapshots see the recovered state.
	if r, ok := st.(storage.Recovered); ok {
		ts := r.RecoveredMaxTS()
		p.nextTS.Store(ts)
		p.commitTS.Store(ts)
	}
	return p
}

func (p *siProtocol) ensureSite(int) {}

func (p *siProtocol) close() error { return p.store.Close() }

func (p *siProtocol) begin(int) (txProtocol, error) {
	ticket := p.snaps.acquire(p.commitTS.Load)
	return &siTx{p: p, ticket: ticket}, nil
}

// gc truncates version chains below the oldest live snapshot and
// returns the number of versions discarded.
func (p *siProtocol) gc() int {
	return p.store.Compact(p.snaps.watermark(p.commitTS.Load()))
}

type siTx struct {
	p      *siProtocol
	ticket snapTicket
	done   bool
}

// snapshot implements the engine's snapshotted interface: SI reads
// are pure functions of the begin snapshot, which is what makes the
// per-session read cache sound.
func (t *siTx) snapshot() uint64 { return t.ticket.snap }

func (t *siTx) read(x model.Obj) (model.Value, error) {
	v, ok := t.p.store.ReadAt(x, t.ticket.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	return v.Val, nil
}

func (t *siTx) commit(req commitReq) (uint64, error) {
	p := t.p
	defer t.finish()
	if len(req.writes) == 0 {
		// Read-only transactions always commit under SI: no lock, no
		// validation, no publish. Mark the terminal stage anyway so the
		// commit stays attributable in /trace/{id} span trees.
		req.trace.Mark(txtrace.StageROCommit)
		return 0, nil
	}
	if p.batcher != nil {
		return p.batcher.commit(t, req)
	}
	return t.commitSolo(req)
}

// commitSolo is the single-transaction commit path: one lock window,
// one WAL record and fsync negotiation, one publish CAS. It is the
// path of record for the DESIGN.md §10/§12 soundness arguments; the
// group-commit path (commitBatch) preserves them batch-wise, and
// requests that overlap a forming batch fall back to this path.
func (t *siTx) commitSolo(req commitReq) (uint64, error) {
	p := t.p
	p.cSoloCommits.Inc()
	snap := t.ticket.snap
	tr := req.trace
	lock := p.store.LockObjs(req.order)
	tr.Mark(txtrace.StageLockWait)
	// Write-conflict detection: any object we wrote that gained a
	// committed version after our snapshot aborts us. Holding every
	// write-set shard makes validate-then-install atomic against any
	// commit overlapping our write set.
	for _, x := range req.order {
		if lock.LatestTS(x) > snap {
			tr.Mark(txtrace.StageValidate)
			lock.Unlock()
			return 0, ErrConflict
		}
	}
	tr.Mark(txtrace.StageValidate)
	ts := p.nextTS.Add(1)
	var installErr error
	for _, x := range req.order {
		if err := lock.Install(x, storage.Version{Val: req.writes[x], TS: ts}); err != nil {
			// Unreachable while the write-set shards are held (the
			// allocation order argument above); surface it rather than
			// panic per the no-panic guideline — but only after the
			// timestamp is published, or the pipeline would stall.
			if installErr == nil {
				installErr = err
			}
		}
	}
	tr.Mark(txtrace.StageInstall)
	// Hand a durable window the commit record while the shards are
	// still held, so the log's per-object record order matches the
	// timestamp order installed above.
	if lg, ok := lock.(storage.CommitLogger); ok {
		lg.LogCommit(storage.CommitRecord{TS: ts, Session: req.session, TxID: req.txid, Ops: req.ops})
	}
	// A durable window marks the wal_append and fsync_wait stages
	// itself (they happen inside Unlock, below).
	if tr != nil {
		if ta, ok := lock.(storage.TraceAttacher); ok {
			ta.AttachTrace(tr)
		}
	}
	// For a durable driver, Unlock appends the staged record inside
	// the critical section, releases the shards, and returns only once
	// the record is fsynced — so the publication below never exposes
	// an un-synced commit.
	lock.Unlock()
	// Publish, strictly in allocation order: timestamp ts becomes
	// visible to snapshots only when everything at or below it is
	// installed (and, for durable drivers, synced). The wait is the
	// short install window of the (at most one) predecessor still
	// installing.
	for !p.commitTS.CompareAndSwap(ts-1, ts) {
		runtime.Gosched()
	}
	tr.Mark(txtrace.StagePublish)
	var lsn uint64
	if dw, ok := lock.(storage.DurableWindow); ok {
		durLSN, err := dw.Durable()
		lsn = durLSN
		// A sync failure leaves the writes visible in memory but not
		// durable; surface it (after publishing, so the in-order
		// pipeline cannot stall) and let the caller treat the commit
		// as failed.
		if installErr == nil {
			installErr = err
		}
	}
	return lsn, installErr
}

// batchResult is one member's outcome from commitBatch, indexed like
// the batch.
type batchResult struct {
	lsn uint64
	err error
}

// commitBatch commits a batch of pairwise-disjoint commit requests
// under one union lock window: validate every member against its own
// snapshot, install the winners at contiguous timestamps, stage one
// contiguous WAL record group (single fsync), and publish the whole
// range with one commitTS advance. Members that fail first-committer-
// wins validation get ErrConflict and fall out (Transact retries
// them). Disjointness makes per-member validation order irrelevant —
// no member writes an object another member writes, so no member's
// install can invalidate another's validation (DESIGN.md §15).
//
// Pipeline stages are marked on the leader's trace (batch[0]);
// followers mark their own batch_wait span when they wake.
func (p *siProtocol) commitBatch(batch []*batchReq) []batchResult {
	results := make([]batchResult, len(batch))
	tr := batch[0].req.trace
	nObjs := 0
	for _, m := range batch {
		nObjs += len(m.req.order)
	}
	union := make([]model.Obj, 0, nObjs)
	for _, m := range batch {
		union = append(union, m.req.order...)
	}
	lock := p.store.LockBatch(union)
	tr.Mark(txtrace.StageLockWait)
	// First-committer-wins per member: any object a member wrote that
	// gained a committed version after that member's snapshot aborts
	// the member (and only it). Holding the whole union makes every
	// member's validate-then-install atomic against outside commits,
	// exactly as the solo window does for one transaction.
	winners := make([]*batchReq, 0, len(batch))
	widx := make([]int, 0, len(batch))
	for i, m := range batch {
		ok := true
		for _, x := range m.req.order {
			if lock.LatestTS(x) > m.snap {
				ok = false
				break
			}
		}
		if !ok {
			results[i].err = ErrConflict
			continue
		}
		winners = append(winners, m)
		widx = append(widx, i)
	}
	tr.Mark(txtrace.StageValidate)
	if len(winners) == 0 {
		// Every member lost; nothing to install, log or publish. The
		// leader's trace ends at validate, like a solo conflict.
		lock.Unlock()
		p.observeBatch(len(batch))
		return results
	}
	// Allocate a contiguous timestamp range for the winners; member k
	// installs at base+k+1 (arrival order — any order is correct, the
	// write sets being disjoint).
	n := uint64(len(winners))
	base := p.nextTS.Add(n) - n
	recs := make([]storage.CommitRecord, 0, len(winners))
	for k, m := range winners {
		ts := base + uint64(k) + 1
		for _, x := range m.req.order {
			if err := lock.Install(x, storage.Version{Val: m.req.writes[x], TS: ts}); err != nil {
				// Unreachable while the union shards are held (see the
				// solo path); surface it to the member after publish.
				if results[widx[k]].err == nil {
					results[widx[k]].err = err
				}
			}
		}
		recs = append(recs, storage.CommitRecord{TS: ts, Session: m.req.session, TxID: m.req.txid, Ops: m.req.ops})
	}
	tr.Mark(txtrace.StageInstall)
	// One contiguous record group, staged while the union shards are
	// held so per-object log order matches timestamp order.
	lock.LogCommitBatch(recs)
	if tr != nil {
		if ta, ok := lock.(storage.TraceAttacher); ok {
			ta.AttachTrace(tr)
		}
	}
	// Durable drivers append the group and fsync once inside Unlock.
	lock.Unlock()
	// Publish the whole batch with one in-order CAS: the range
	// (base, base+n] becomes visible atomically once every timestamp
	// at or below base is published.
	for !p.commitTS.CompareAndSwap(base, base+n) {
		runtime.Gosched()
	}
	tr.MarkAttrs(txtrace.StagePublish, map[string]int64{
		"batch_size":    int64(len(batch)),
		"batch_winners": int64(len(winners)),
	})
	// One group LSN covers every member: the group's last record is
	// fsynced, hence so is every record before it.
	var lsn uint64
	var syncErr error
	if dw, ok := lock.(storage.DurableWindow); ok {
		lsn, syncErr = dw.Durable()
	}
	for _, i := range widx {
		results[i].lsn = lsn
		if results[i].err == nil {
			results[i].err = syncErr
		}
	}
	p.observeBatch(len(batch))
	return results
}

// observeBatch records group-commit observability for one executed
// batch of the given size.
func (p *siProtocol) observeBatch(size int) {
	p.cBatches.Inc()
	p.cBatchMembers.Add(int64(size))
	p.hBatchSize.Observe(int64(size))
}

func (t *siTx) abort() { t.finish() }

// finish releases the snapshot registration exactly once.
func (t *siTx) finish() {
	if t.done {
		return
	}
	t.done = true
	t.p.snaps.release(t.ticket)
}
