package engine

import (
	"sync"

	"sian/internal/kvstore"
	"sian/internal/model"
)

// siProtocol is the idealised SI concurrency control of §1 of the
// paper: a transaction reads from the snapshot of committed state
// taken at its start, and commits only if no other committed
// transaction has written any object it also wrote since that
// snapshot (first-committer-wins).
type siProtocol struct {
	store *kvstore.Store

	mu       sync.Mutex
	commitTS uint64
	// active counts live transactions per snapshot timestamp, so that
	// garbage collection never discards a version some open snapshot
	// can still read.
	active map[uint64]int
}

func newSIProtocol() *siProtocol {
	return &siProtocol{store: kvstore.New(), active: make(map[uint64]int)}
}

func (p *siProtocol) ensureSite(int) {}

func (p *siProtocol) close() error { return nil }

func (p *siProtocol) begin(int) (txProtocol, error) {
	p.mu.Lock()
	snap := p.commitTS
	p.active[snap]++
	p.mu.Unlock()
	return &siTx{p: p, snap: snap}, nil
}

// release drops a transaction's snapshot registration. Callers hold
// p.mu.
func (p *siProtocol) releaseLocked(snap uint64) {
	if n := p.active[snap]; n > 1 {
		p.active[snap] = n - 1
	} else {
		delete(p.active, snap)
	}
}

// gcWatermark returns the oldest snapshot any live transaction may
// read at (or the current commit timestamp when idle). Callers hold
// p.mu.
func (p *siProtocol) gcWatermarkLocked() uint64 {
	min := p.commitTS
	for snap := range p.active {
		if snap < min {
			min = snap
		}
	}
	return min
}

// gc truncates version chains below the oldest live snapshot and
// returns the number of versions discarded.
func (p *siProtocol) gc() int {
	p.mu.Lock()
	watermark := p.gcWatermarkLocked()
	p.mu.Unlock()
	return p.store.GC(watermark)
}

type siTx struct {
	p    *siProtocol
	snap uint64
	done bool
}

func (t *siTx) read(x model.Obj) (model.Value, error) {
	v, ok := t.p.store.ReadAt(x, t.snap)
	if !ok {
		return 0, ErrUninitialized
	}
	return v.Val, nil
}

func (t *siTx) commit(writes map[model.Obj]model.Value, order []model.Obj) error {
	p := t.p
	p.mu.Lock()
	defer p.mu.Unlock()
	t.finishLocked()
	if len(writes) == 0 {
		return nil // read-only transactions always commit under SI
	}
	// Write-conflict detection: any object we wrote that gained a
	// committed version after our snapshot aborts us.
	for _, x := range order {
		if p.store.LatestTS(x) > t.snap {
			return ErrConflict
		}
	}
	p.commitTS++
	for _, x := range order {
		if err := p.store.Install(x, kvstore.Version{Val: writes[x], TS: p.commitTS}); err != nil {
			// Unreachable while the commit lock is held; surface it
			// rather than panic per the no-panic guideline.
			return err
		}
	}
	return nil
}

func (t *siTx) abort() {
	t.p.mu.Lock()
	defer t.p.mu.Unlock()
	t.finishLocked()
}

// finishLocked releases the snapshot registration exactly once.
// Callers hold p.mu.
func (t *siTx) finishLocked() {
	if t.done {
		return
	}
	t.done = true
	t.p.releaseLocked(t.snap)
}
