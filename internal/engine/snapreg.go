package engine

import (
	"sync"
	"sync/atomic"
)

// snapRegistry tracks the snapshot timestamps of live SI transactions
// so that garbage collection can compute a safe watermark — without a
// global mutex on the begin path and without the O(live-snapshots)
// map scan the seed engine performed under that mutex.
//
// Registration is a lock-free slot array: a beginning transaction
// claims a free slot with one CAS and publishes its snapshot there;
// release is a single atomic store. The watermark scan reads the
// fixed slot array with atomic loads, so its cost is bounded by the
// slot count, not by the number of live snapshots, and it never
// blocks a begin. When every slot is taken (more than snapSlots
// concurrent transactions) registration falls over to a small
// mutex-protected count map — correctness never depends on the fast
// path having room.
//
// # The begin/GC race
//
// A transaction must never read at a snapshot below a watermark some
// concurrent GC has already collected to. The danger window is
// between loading the commit timestamp and publishing it in a slot: a
// GC scanning in between would miss the registration. The registry
// closes it with an intent handshake:
//
//   - watermark(now) first raises gcIntent to now (monotonically,
//     CAS-max), then scans.
//   - acquire(now) publishes the slot value, then re-checks gcIntent.
//     If gcIntent ≤ snap, any GC that could collect above snap must
//     have raised the intent after the slot was published — and then
//     its scan sees the slot. If gcIntent > snap, a scan may have
//     missed us; acquire retries with a fresher timestamp. Retries
//     terminate because gcIntent never exceeds the commit timestamp
//     it was loaded from.
//
// Both sides use atomics with sequentially consistent ordering (Go's
// sync/atomic), which the argument above relies on.
const snapSlots = 512

type snapRegistry struct {
	slots  [snapSlots]atomic.Uint64 // snapshot+1; 0 = free
	cursor atomic.Uint64            // round-robin claim hint
	// gcIntent is the highest watermark any collector has advertised
	// before scanning; begins above it are guaranteed visible to every
	// in-flight scan.
	gcIntent atomic.Uint64

	// overflow registers snapshots when the slot array is full.
	overflowMu sync.Mutex
	overflow   map[uint64]int
}

// snapTicket is one live registration, released exactly once.
type snapTicket struct {
	snap uint64
	slot *atomic.Uint64 // nil ⇒ registered in the overflow map
}

// acquire registers a snapshot read from now (typically the published
// commit timestamp) and returns the ticket carrying the snapshot to
// read at.
func (r *snapRegistry) acquire(now func() uint64) snapTicket {
	start := r.cursor.Add(1)
	for i := uint64(0); i < snapSlots; i++ {
		slot := &r.slots[(start+i)%snapSlots]
		v := now()
		if !slot.CompareAndSwap(0, v+1) {
			continue // taken; probe the next slot
		}
		for {
			if r.gcIntent.Load() <= v {
				return snapTicket{snap: v, slot: slot}
			}
			// A collector may be scanning above v and may have missed
			// this slot; republish with a fresher timestamp.
			v = now()
			slot.Store(v + 1)
		}
	}
	// Slot array exhausted: fall over to the mutex-protected map. The
	// lock orders registration against watermark's map scan, so no
	// intent handshake is needed here (see watermark).
	r.overflowMu.Lock()
	v := now()
	if r.overflow == nil {
		r.overflow = make(map[uint64]int)
	}
	r.overflow[v]++
	r.overflowMu.Unlock()
	return snapTicket{snap: v}
}

// release drops the registration. Call exactly once per ticket.
func (r *snapRegistry) release(t snapTicket) {
	if t.slot != nil {
		t.slot.Store(0)
		return
	}
	r.overflowMu.Lock()
	if n := r.overflow[t.snap]; n > 1 {
		r.overflow[t.snap] = n - 1
	} else {
		delete(r.overflow, t.snap)
	}
	r.overflowMu.Unlock()
}

// watermark returns the oldest snapshot any live transaction may read
// at, bounded above by now (the published commit timestamp). Callers
// collect versions strictly below the result.
func (r *snapRegistry) watermark(now uint64) uint64 {
	// Advertise intent before scanning; CAS-max so a slower concurrent
	// collector with an older timestamp cannot regress it.
	for {
		cur := r.gcIntent.Load()
		if cur >= now || r.gcIntent.CompareAndSwap(cur, now) {
			break
		}
	}
	min := now
	for i := range r.slots {
		if v := r.slots[i].Load(); v != 0 && v-1 < min {
			min = v - 1
		}
	}
	// Overflow registrations happen under the same lock; a scan that
	// runs first is ordered before the registration, whose snapshot is
	// then ≥ the commit timestamp this scan was bounded by — safe.
	r.overflowMu.Lock()
	for snap := range r.overflow {
		if snap < min {
			min = snap
		}
	}
	r.overflowMu.Unlock()
	return min
}
