package engine

import (
	"sync"
	"sync/atomic"
)

// snapRegistry tracks the snapshot timestamps of live SI transactions
// so that garbage collection can compute a safe watermark — without a
// global mutex on the begin path and without the O(live-snapshots)
// map scan the seed engine performed under that mutex.
//
// Registration is a lock-free slot array: a beginning transaction
// claims a free slot with one CAS and publishes its snapshot there;
// release is a single atomic store. The watermark scan reads the
// fixed slot array with atomic loads, so its cost is bounded by the
// slot count, not by the number of live snapshots, and it never
// blocks a begin.
//
// When every slot is taken (more than snapSlots concurrent
// transactions) registration falls over to epoch-based reclamation: a
// registration coarsens its snapshot to an epoch (snap >> epochShift)
// and counts itself into a small lock-free ring of packed
// (epoch, count) words. A live epoch holds the watermark at its floor
// (epoch << epochShift) — a conservative lower bound on every
// snapshot in it — so the scan stays O(slots + epochs) no matter how
// many thousands of transactions are live, at the cost of holding the
// watermark back by at most 2^epochShift − 1 timestamps. (The former
// implementation kept an exact mutex-protected count map here, whose
// scan — and lock hold — grew with the number of distinct overflowed
// snapshots.) If even the ring is saturated, a last-resort
// mutex-protected epoch count map takes the registration; correctness
// never depends on the fast paths having room.
//
// # The begin/GC race
//
// A transaction must never read at a snapshot below a watermark some
// concurrent GC has already collected to. The danger window is
// between loading the commit timestamp and publishing it in a slot: a
// GC scanning in between would miss the registration. The registry
// closes it with an intent handshake:
//
//   - watermark(now) first raises gcIntent to now (monotonically,
//     CAS-max), then scans.
//   - acquire(now) publishes the registration, then re-checks
//     gcIntent. If gcIntent ≤ snap, any GC that could collect above
//     snap must have raised the intent after the registration was
//     published — and then its scan sees it. If gcIntent > snap, a
//     scan may have missed us; acquire retries with a fresher
//     timestamp. Retries terminate because gcIntent never exceeds the
//     commit timestamp it was loaded from.
//
// The epoch ring uses the same handshake (an epoch's floor is ≤ every
// snapshot counted in it, so a scan that sees the epoch bounds the
// watermark safely below them all); the spill map instead orders
// registration against the scan with its mutex, like the old overflow
// map did. Both sides use atomics with sequentially consistent
// ordering (Go's sync/atomic), which the argument above relies on.
const snapSlots = 512

// Epoch-based overflow geometry. 2^epochShift snapshots share an
// epoch; the ring holds up to epochSlots distinct live epochs, each
// counting up to epochCountMask registrations per ring word (an epoch
// may occupy several ring words when one overflows — the scan takes a
// minimum, so duplicates are harmless).
const (
	epochShift     = 6
	epochSlots     = 256 // power of two
	epochCountBits = 16
	epochCountMask = 1<<epochCountBits - 1
)

type snapRegistry struct {
	slots  [snapSlots]atomic.Uint64 // snapshot+1; 0 = free
	cursor atomic.Uint64            // round-robin claim hint
	// gcIntent is the highest watermark any collector has advertised
	// before scanning; begins above it are guaranteed visible to every
	// in-flight scan.
	gcIntent atomic.Uint64

	// epochs is the overflow ring: epoch<<epochCountBits | count,
	// count 0 = free (whatever epoch bits remain).
	epochs [epochSlots]atomic.Uint64

	// spill is the last-resort epoch count map, for a pathological
	// spread of live epochs saturating the ring. The mutex orders
	// registration against watermark's scan, so no intent handshake is
	// needed on this path.
	spillMu sync.Mutex
	spill   map[uint64]int // epoch → live registrations
}

// snapTicket is one live registration, released exactly once.
type snapTicket struct {
	snap uint64
	slot *atomic.Uint64 // fast-path slot; nil ⇒ epoch-registered
	// epochSlot is the overflow ring word holding this registration;
	// nil together with slot ⇒ counted in the spill map under epoch.
	epochSlot *atomic.Uint64
	epoch     uint64
}

// acquire registers a snapshot read from now (typically the published
// commit timestamp) and returns the ticket carrying the snapshot to
// read at.
func (r *snapRegistry) acquire(now func() uint64) snapTicket {
	start := r.cursor.Add(1)
	for i := uint64(0); i < snapSlots; i++ {
		slot := &r.slots[(start+i)%snapSlots]
		v := now()
		if !slot.CompareAndSwap(0, v+1) {
			continue // taken; probe the next slot
		}
		for {
			if r.gcIntent.Load() <= v {
				return snapTicket{snap: v, slot: slot}
			}
			// A collector may be scanning above v and may have missed
			// this slot; republish with a fresher timestamp.
			v = now()
			slot.Store(v + 1)
		}
	}
	// Slot array exhausted: count into the epoch ring, with the same
	// intent handshake as the fast path (a scan that sees the epoch
	// bounds the watermark at its floor, which is ≤ v).
	for {
		v := now()
		e := v >> epochShift
		s := r.epochClaim(e)
		if s == nil {
			break // ring saturated around e; spill below
		}
		if r.gcIntent.Load() <= v {
			return snapTicket{snap: v, epochSlot: s, epoch: e}
		}
		// A scan above v may have missed the registration; drop it and
		// re-register with a fresher timestamp.
		epochRelease(s)
	}
	// Last resort: the mutex-ordered spill map (see watermark).
	r.spillMu.Lock()
	v := now()
	e := v >> epochShift
	if r.spill == nil {
		r.spill = make(map[uint64]int)
	}
	r.spill[e]++
	r.spillMu.Unlock()
	return snapTicket{snap: v, epoch: e}
}

// epochClaim counts one registration into a ring word holding epoch
// e, claiming a free word if none does. It probes a handful of words
// from e's home position; nil means the neighbourhood is saturated
// and the caller must spill.
func (r *snapRegistry) epochClaim(e uint64) *atomic.Uint64 {
	const probes = 8
probe:
	for i := uint64(0); i < probes; i++ {
		s := &r.epochs[(e+i)&(epochSlots-1)]
		for {
			cur := s.Load()
			if cur&epochCountMask == 0 {
				// Free word (count zero); claim it for e.
				if s.CompareAndSwap(cur, e<<epochCountBits|1) {
					return s
				}
				continue
			}
			if cur>>epochCountBits == e && cur&epochCountMask < epochCountMask {
				if s.CompareAndSwap(cur, cur+1) {
					return s
				}
				continue
			}
			// Held by another epoch, or its count is full.
			continue probe
		}
	}
	return nil
}

// epochRelease undoes one epochClaim. The decrement leaves the epoch
// bits in place with count 0, which claimants treat as free.
func epochRelease(s *atomic.Uint64) {
	s.Add(^uint64(0)) // count−1; counts are per-word and never 0 here
}

// release drops the registration. Call exactly once per ticket.
func (r *snapRegistry) release(t snapTicket) {
	if t.slot != nil {
		t.slot.Store(0)
		return
	}
	if t.epochSlot != nil {
		epochRelease(t.epochSlot)
		return
	}
	r.spillMu.Lock()
	if n := r.spill[t.epoch]; n > 1 {
		r.spill[t.epoch] = n - 1
	} else {
		delete(r.spill, t.epoch)
	}
	r.spillMu.Unlock()
}

// watermark returns the oldest snapshot any live transaction may read
// at, bounded above by now (the published commit timestamp). Callers
// collect versions strictly below the result. Registrations in the
// epoch paths contribute their epoch floor — a conservative bound ≤
// every snapshot they cover, so the result can lag the true minimum
// by at most 2^epochShift − 1 when the registry is overflowed.
func (r *snapRegistry) watermark(now uint64) uint64 {
	// Advertise intent before scanning; CAS-max so a slower concurrent
	// collector with an older timestamp cannot regress it.
	for {
		cur := r.gcIntent.Load()
		if cur >= now || r.gcIntent.CompareAndSwap(cur, now) {
			break
		}
	}
	min := now
	for i := range r.slots {
		if v := r.slots[i].Load(); v != 0 && v-1 < min {
			min = v - 1
		}
	}
	for i := range r.epochs {
		if v := r.epochs[i].Load(); v&epochCountMask != 0 {
			if f := (v >> epochCountBits) << epochShift; f < min {
				min = f
			}
		}
	}
	// Spill registrations happen under the same lock; a scan that runs
	// first is ordered before the registration, whose snapshot is then
	// ≥ the commit timestamp this scan was bounded by — safe.
	r.spillMu.Lock()
	for e := range r.spill {
		if f := e << epochShift; f < min {
			min = f
		}
	}
	r.spillMu.Unlock()
	return min
}
