package engine_test

import (
	"errors"
	"sync"
	"testing"

	"sian/internal/check"
	"sian/internal/depgraph"
	. "sian/internal/engine"
	"sian/internal/model"
)

func newDB(t *testing.T, kind Kind, cfg Config) *DB {
	t.Helper()
	db, err := New(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return db
}

// certifyHistory checks the recorded history against a model using the
// engine's own init transaction.
func certifyHistory(t *testing.T, db *DB, m depgraph.Model) bool {
	t.Helper()
	db.Flush()
	h := db.History()
	res, err := check.Certify(h, m, check.Options{NoInit: true, PinInit: true, Budget: 5_000_000})
	if err != nil {
		t.Fatalf("Certify: %v", err)
	}
	return res.Member
}

func TestKindString(t *testing.T) {
	t.Parallel()
	if SI.String() != "SI" || SER.String() != "SER" || PSI.String() != "PSI" {
		t.Error("Kind strings broken")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
	if _, err := New(Kind(9), Config{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBasicReadWrite(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{SI, SER, PSI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db := newDB(t, kind, Config{})
			if err := db.Initialize(map[model.Obj]model.Value{"x": 1, "y": 2}); err != nil {
				t.Fatal(err)
			}
			s := db.Session("s1")
			var got model.Value
			err := s.Transact(func(tx *Tx) error {
				v, err := tx.Read("x")
				if err != nil {
					return err
				}
				got = v
				return tx.Write("y", v+10)
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != 1 {
				t.Errorf("read x = %d, want 1", got)
			}
			// Same session must see its own commit (strong session).
			err = s.Transact(func(tx *Tx) error {
				v, err := tx.Read("y")
				if err != nil {
					return err
				}
				if v != 11 {
					t.Errorf("read y = %d, want 11", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadYourWrites(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{SI, SER, PSI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db := newDB(t, kind, Config{})
			if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
				t.Fatal(err)
			}
			s := db.Session("s")
			err := s.Transact(func(tx *Tx) error {
				if err := tx.Write("x", 42); err != nil {
					return err
				}
				v, err := tx.Read("x")
				if err != nil {
					return err
				}
				if v != 42 {
					t.Errorf("read own write = %d", v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUninitializedRead(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{SI, SER, PSI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db := newDB(t, kind, Config{})
			s := db.Session("s")
			err := s.Transact(func(tx *Tx) error {
				_, err := tx.Read("ghost")
				return err
			})
			if !errors.Is(err, ErrUninitialized) {
				t.Errorf("err = %v, want ErrUninitialized", err)
			}
		})
	}
}

func TestClosedDB(t *testing.T) {
	t.Parallel()
	db, err := New(SI, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := s.Transact(func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Transact after Close: %v", err)
	}
	if _, err := s.Begin("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("Begin after Close: %v", err)
	}
}

func TestClientErrorAborts(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 1}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	boom := errors.New("boom")
	err := s.Transact(func(tx *Tx) error {
		if err := tx.Write("x", 99); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The aborted write must not be visible.
	err = s.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		if v != 1 {
			t.Errorf("aborted write leaked: x = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The aborted transaction must not be recorded.
	h := db.History()
	for _, tr := range h.Transactions() {
		if w, ok := tr.FinalWrite("x"); ok && w == 99 {
			t.Error("aborted transaction recorded in history")
		}
	}
}

// TestSIFirstCommitterWins stages two overlapping transactions writing
// the same object; exactly one commit must succeed.
func TestSIFirstCommitterWins(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db.Session("a"), db.Session("b")
	t1, err := s1.Begin("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Begin("t2")
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer aborted: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	stats := db.Stats()
	if stats.Conflicts < 1 {
		t.Error("conflict not counted")
	}
}

// TestSIWriteSkewStaged reproduces Figure 2(d) operationally: two
// overlapping SI transactions read both accounts and withdraw from
// different ones; both commit, and the recorded history is SI but not
// SER.
func TestSIWriteSkewStaged(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"a1": 60, "a2": 60}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db.Session("s1"), db.Session("s2")
	t1, err := s1.Begin("w1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Begin("w2")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*ManualTx{t1, t2} {
		for _, obj := range []model.Obj{"a1", "a2"} {
			if v, err := m.Read(obj); err != nil || v != 60 {
				t.Fatalf("read %s = (%d, %v)", obj, v, err)
			}
		}
	}
	if err := t1.Write("a1", -40); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("a2", -40); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit (disjoint writes must not conflict): %v", err)
	}
	if !certifyHistory(t, db, depgraph.SI) {
		t.Error("staged write-skew history not certified SI")
	}
	db.Flush()
	res, err := check.Certify(db.History(), depgraph.SER, check.Options{NoInit: true, PinInit: true, Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Error("write-skew history certified SER; engine leaked serializability")
	}
}

// TestSERPreventsWriteSkew stages the same interleaving on the SER
// engine: the second transaction must fail (read locks conflict).
func TestSERPreventsWriteSkew(t *testing.T) {
	t.Parallel()
	db := newDB(t, SER, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"a1": 60, "a2": 60}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db.Session("s1"), db.Session("s2")
	t1, err := s1.Begin("w1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s2.Begin("w2")
	if err != nil {
		t.Fatal(err)
	}
	readBoth := func(m *ManualTx) error {
		if _, err := m.Read("a1"); err != nil {
			return err
		}
		_, err := m.Read("a2")
		return err
	}
	if err := readBoth(t1); err != nil {
		t.Fatal(err)
	}
	if err := readBoth(t2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write("a1", -40); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write("a2", -40); err != nil {
		t.Fatal(err)
	}
	err1 := t1.Commit()
	err2 := t2.Commit()
	if err1 == nil && err2 == nil {
		t.Fatal("both write-skew transactions committed under SER")
	}
}

// TestManualTxLifecycle covers double-commit and abort.
func TestManualTxLifecycle(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	m, err := s.Begin("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write("x", 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	m.Abort() // after commit: must be a no-op
	m2, err := s.Begin("t2")
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Write("x", 7); err != nil {
		t.Fatal(err)
	}
	m2.Abort()
	m2.Abort() // double abort is a no-op
	err = s.Transact(func(tx *Tx) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		if v != 5 {
			t.Errorf("x = %d, want 5", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsCertified runs concurrent conflicting sessions
// on each engine and certifies the recorded history against the
// engine's model.
func TestConcurrentSessionsCertified(t *testing.T) {
	t.Parallel()
	for _, kind := range []Kind{SI, SER, PSI} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			db := newDB(t, kind, Config{})
			if err := db.Initialize(map[model.Obj]model.Value{"k0": 0, "k1": 0}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			var next int64 = 100
			var mu sync.Mutex
			unique := func() model.Value {
				mu.Lock()
				defer mu.Unlock()
				next++
				return model.Value(next)
			}
			errs := make([]error, 3)
			for i := 0; i < 3; i++ {
				sess := db.Session(string(rune('a' + i)))
				wg.Add(1)
				go func(idx int) {
					defer wg.Done()
					for n := 0; n < 5; n++ {
						err := sess.Transact(func(tx *Tx) error {
							obj := model.Obj("k0")
							if (idx+n)%2 == 0 {
								obj = "k1"
							}
							if _, err := tx.Read(obj); err != nil {
								return err
							}
							return tx.Write(obj, unique())
						})
						if err != nil {
							errs[idx] = err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			var m depgraph.Model
			switch kind {
			case SI:
				m = depgraph.SI
			case SER:
				m = depgraph.SER
			case PSI:
				m = depgraph.PSI
			}
			if !certifyHistory(t, db, m) {
				t.Errorf("history not certified %v", m)
			}
		})
	}
}

// TestPSINeverLosesUpdates: concurrent read-modify-write increments on
// one counter must conflict, never silently lose updates (NOCONFLICT).
func TestPSINeverLosesUpdates(t *testing.T) {
	t.Parallel()
	db := newDB(t, PSI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"ctr": 0}); err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	const perSession = 10
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		sess := db.Session(string(rune('a' + i)))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for n := 0; n < perSession; n++ {
				err := sess.Transact(func(tx *Tx) error {
					v, err := tx.Read("ctr")
					if err != nil {
						return err
					}
					return tx.Write("ctr", v+1)
				})
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	db.Flush()
	s := db.Session("audit")
	err := s.Transact(func(tx *Tx) error {
		v, err := tx.Read("ctr")
		if err != nil {
			return err
		}
		if v != sessions*perSession {
			t.Errorf("ctr = %d, want %d (lost update under PSI)", v, sessions*perSession)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("s")
	for i := 0; i < 3; i++ {
		if err := s.Transact(func(tx *Tx) error { return tx.Write("x", model.Value(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Commits != 4 { // init + 3
		t.Errorf("Commits = %d, want 4", st.Commits)
	}
}

func TestHistoryShape(t *testing.T) {
	t.Parallel()
	db := newDB(t, SI, Config{})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	s := db.Session("client")
	if err := s.TransactNamed("first", func(tx *Tx) error { return tx.Write("x", 1) }); err != nil {
		t.Fatal(err)
	}
	h := db.History()
	if h.NumSessions() != 2 {
		t.Fatalf("sessions = %d", h.NumSessions())
	}
	if h.Transaction(0).ID != model.InitTransactionID {
		t.Errorf("first transaction = %q, want init", h.Transaction(0).ID)
	}
	if h.Transaction(1).ID != "client/first" {
		t.Errorf("named transaction id = %q", h.Transaction(1).ID)
	}
	if err := h.Validate(); err != nil {
		t.Errorf("history invalid: %v", err)
	}
	if err := h.CheckInt(); err != nil {
		t.Errorf("history INT: %v", err)
	}
}

// TestPSISharedSites pins several sessions to a bounded replica pool
// (Config.Sites) and checks the recorded history still certifies PSI.
func TestPSISharedSites(t *testing.T) {
	t.Parallel()
	db := newDB(t, PSI, Config{Sites: 2})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0, "y": 0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := model.Value(100)
	unique := func() model.Value {
		mu.Lock()
		defer mu.Unlock()
		next++
		return next
	}
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		sess := db.Session(string(rune('a' + i)))
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for n := 0; n < 5; n++ {
				obj := model.Obj("x")
				if (idx+n)%2 == 0 {
					obj = "y"
				}
				err := sess.Transact(func(tx *Tx) error {
					if _, err := tx.Read(obj); err != nil {
						return err
					}
					return tx.Write(obj, unique())
				})
				if err != nil {
					errs[idx] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if !certifyHistory(t, db, depgraph.PSI) {
		t.Error("shared-site PSI history not certified")
	}
}

// TestTooManyRetries exercises the retry-exhaustion path: a SER
// transaction whose write set stays read-locked by an open manual
// transaction conflicts on every attempt and must eventually give up.
func TestTooManyRetries(t *testing.T) {
	t.Parallel()
	db := newDB(t, SER, Config{MaxRetries: 3})
	if err := db.Initialize(map[model.Obj]model.Value{"x": 0}); err != nil {
		t.Fatal(err)
	}
	holder, err := db.Session("holder").Begin("hold")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Read("x"); err != nil {
		t.Fatal(err)
	}
	writer := db.Session("writer")
	err = writer.Transact(func(tx *Tx) error { return tx.Write("x", 1) })
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	// Releasing the lock unblocks the writer.
	holder.Abort()
	if err := writer.Transact(func(tx *Tx) error { return tx.Write("x", 1) }); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Conflicts < 3 {
		t.Errorf("conflicts = %d, want ≥ 3", db.Stats().Conflicts)
	}
}
