package chopping

import (
	"strings"
	"testing"
)

func kinds(ks ...EdgeKind) []EdgeKind { return ks }

func TestEdgeKindPredicates(t *testing.T) {
	t.Parallel()
	for _, k := range kinds(KindWR, KindWW, KindRW) {
		if !k.IsConflict() {
			t.Errorf("%v should be a conflict kind", k)
		}
	}
	for _, k := range kinds(KindSuccessor, KindPredecessor) {
		if k.IsConflict() {
			t.Errorf("%v should not be a conflict kind", k)
		}
	}
	for _, k := range kinds(KindWR, KindWW) {
		if !k.IsDependency() {
			t.Errorf("%v should be a dependency kind", k)
		}
	}
	for _, k := range kinds(KindRW, KindSuccessor, KindPredecessor) {
		if k.IsDependency() {
			t.Errorf("%v should not be a dependency kind", k)
		}
	}
}

func TestStrings(t *testing.T) {
	t.Parallel()
	want := map[EdgeKind]string{
		KindSuccessor: "S", KindPredecessor: "P", KindWR: "WR", KindWW: "WW", KindRW: "RW",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if SERCritical.String() != "SER-critical" || SICritical.String() != "SI-critical" || PSICritical.String() != "PSI-critical" {
		t.Error("Criticality strings broken")
	}
	c := Cycle{{From: 0, To: 1, Kind: KindRW}, {From: 1, To: 0, Kind: KindPredecessor}}
	if got := c.String(); got != "0 -RW-> 1 -P-> 0" {
		t.Errorf("Cycle.String() = %q", got)
	}
	if Cycle(nil).String() != "<empty>" {
		t.Error("empty cycle string")
	}
}

// TestIsCriticalKinds covers the three criticality definitions on the
// paper's cycles.
func TestIsCriticalKinds(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name         string
		ks           []EdgeKind
		ser, si, psi bool
	}{
		{
			// Figure 5 / cycle (8): RW, S, WR, P — critical everywhere.
			name: "fig5 cycle 8",
			ks:   kinds(KindRW, KindSuccessor, KindWR, KindPredecessor),
			ser:  true, si: true, psi: true,
		},
		{
			// Figure 11 / cycle (9): RW, P, RW, P — SER-critical only:
			// the two RWs are separated by predecessor edges only.
			name: "fig11 cycle 9",
			ks:   kinds(KindRW, KindPredecessor, KindRW, KindPredecessor),
			ser:  true, si: false, psi: false,
		},
		{
			// Figure 12 / cycle (10): WR, P, RW, WR, P, RW —
			// SER- and SI-critical (RWs separated by WRs) but not
			// PSI-critical (two anti-dependencies).
			name: "fig12 cycle 10",
			ks:   kinds(KindWR, KindPredecessor, KindRW, KindWR, KindPredecessor, KindRW),
			ser:  true, si: true, psi: false,
		},
		{
			// No "conflict, predecessor, conflict" fragment at all.
			name: "no fragment",
			ks:   kinds(KindWR, KindSuccessor, KindWR, KindSuccessor),
			ser:  false, si: false, psi: false,
		},
		{
			// Fragment via wraparound: P is the last edge, conflicts
			// wrap from the end to the start.
			name: "fragment wraps",
			ks:   kinds(KindWW, KindSuccessor, KindWR, KindPredecessor),
			ser:  true, si: true, psi: true,
		},
		{
			// Adjacent RWs around the fragment: RW, P, RW with a
			// separating WW elsewhere — still not SI-critical because
			// the wrap RW→RW has no dependency in between on one side.
			name: "adjacent RW pair",
			ks:   kinds(KindRW, KindPredecessor, KindRW, KindWW),
			ser:  true, si: false, psi: false,
		},
		{
			// Single RW with a dependency conflict: SI and PSI
			// critical.
			name: "single RW",
			ks:   kinds(KindRW, KindPredecessor, KindWW),
			ser:  true, si: true, psi: true,
		},
		{
			name: "too short",
			ks:   kinds(KindRW),
			ser:  false, si: false, psi: false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsCriticalKinds(tc.ks, SERCritical); got != tc.ser {
				t.Errorf("SER = %v, want %v", got, tc.ser)
			}
			if got := IsCriticalKinds(tc.ks, SICritical); got != tc.si {
				t.Errorf("SI = %v, want %v", got, tc.si)
			}
			if got := IsCriticalKinds(tc.ks, PSICritical); got != tc.psi {
				t.Errorf("PSI = %v, want %v", got, tc.psi)
			}
		})
	}
}

// TestCriticalityImplications: PSI-critical ⇒ SI-critical ⇒
// SER-critical over systematically enumerated kind sequences.
func TestCriticalityImplications(t *testing.T) {
	t.Parallel()
	all := kinds(KindSuccessor, KindPredecessor, KindWR, KindWW, KindRW)
	var rec func(seq []EdgeKind, depth int)
	rec = func(seq []EdgeKind, depth int) {
		if depth == 0 {
			psi := IsCriticalKinds(seq, PSICritical)
			si := IsCriticalKinds(seq, SICritical)
			ser := IsCriticalKinds(seq, SERCritical)
			if psi && !si {
				t.Fatalf("PSI-critical but not SI-critical: %v", seq)
			}
			if si && !ser {
				t.Fatalf("SI-critical but not SER-critical: %v", seq)
			}
			return
		}
		for _, k := range all {
			rec(append(seq, k), depth-1)
		}
	}
	for length := 2; length <= 5; length++ {
		rec(nil, length)
	}
}

func TestCycleIsCritical(t *testing.T) {
	t.Parallel()
	// A well-formed simple cycle.
	good := Cycle{
		{From: 0, To: 1, Kind: KindRW},
		{From: 1, To: 2, Kind: KindPredecessor},
		{From: 2, To: 0, Kind: KindWW},
	}
	if !good.IsCritical(SERCritical) || !good.IsCritical(SICritical) {
		t.Error("well-formed critical cycle rejected")
	}
	// Repeated vertex violates condition (i).
	repeated := Cycle{
		{From: 0, To: 1, Kind: KindRW},
		{From: 1, To: 0, Kind: KindPredecessor},
		{From: 0, To: 1, Kind: KindWW},
		{From: 1, To: 0, Kind: KindWR},
	}
	if repeated.IsCritical(SERCritical) {
		t.Error("cycle with repeated vertex accepted")
	}
	// Discontinuous steps are rejected.
	broken := Cycle{
		{From: 0, To: 1, Kind: KindRW},
		{From: 2, To: 0, Kind: KindPredecessor},
	}
	if broken.IsCritical(SERCritical) {
		t.Error("discontinuous cycle accepted")
	}
}

func TestGraphBasics(t *testing.T) {
	t.Parallel()
	g := NewGraph(3, []string{"a", "b", ""})
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if g.Label(0) != "a" || g.Label(2) != "2" {
		t.Error("labels broken")
	}
	g.AddEdge(0, 1, KindWR)
	g.AddEdge(0, 1, KindRW)
	if !g.HasEdge(0, 1, KindWR) || !g.HasEdge(0, 1, KindRW) || g.HasEdge(1, 0, KindWR) {
		t.Error("multi-edge storage broken")
	}
	edges := g.Edges()
	if len(edges) != 2 {
		t.Errorf("Edges = %v", edges)
	}
	desc := g.DescribeCycle(Cycle{{From: 0, To: 1, Kind: KindWR}, {From: 1, To: 0, Kind: KindRW}})
	if !strings.Contains(desc, "a -WR-> b") {
		t.Errorf("DescribeCycle = %q", desc)
	}
}

func TestGraphPanics(t *testing.T) {
	t.Parallel()
	g := NewGraph(2, nil)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 2, KindWR) },
		func() { g.AddEdge(-1, 0, KindWR) },
		func() { g.AddEdge(0, 1, KindInvalid) },
		func() { g.AddEdge(0, 1, EdgeKind(17)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFindCriticalCycleSimple(t *testing.T) {
	t.Parallel()
	// Two sessions {0,3} and {1,2}; the cycle
	// 0 -RW-> 1 -S-> 2 -WR-> 3 -P-> 0 has the fragment WR,P,RW (via
	// the wrap) and a single anti-dependency: critical at every level.
	g := NewGraph(4, nil)
	g.AddEdge(0, 1, KindRW)
	g.AddEdge(1, 2, KindSuccessor)
	g.AddEdge(2, 1, KindPredecessor)
	g.AddEdge(2, 3, KindWR)
	g.AddEdge(3, 0, KindPredecessor)
	g.AddEdge(0, 3, KindSuccessor)
	cyc, err := g.FindCriticalCycle(SICritical, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cyc == nil {
		t.Fatal("critical cycle not found")
	}
	if !cyc.IsCritical(SICritical) {
		t.Errorf("returned cycle not critical: %v", cyc)
	}
}

func TestFindCriticalCycleNone(t *testing.T) {
	t.Parallel()
	// Conflicts but no predecessor edge anywhere: no critical cycle.
	g := NewGraph(3, nil)
	g.AddEdge(0, 1, KindWR)
	g.AddEdge(1, 2, KindWW)
	g.AddEdge(2, 0, KindRW)
	cyc, err := g.FindCriticalCycle(SERCritical, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != nil {
		t.Errorf("unexpected critical cycle %v", cyc)
	}
}

func TestFindCriticalCycleLevels(t *testing.T) {
	t.Parallel()
	// The Figure 11 shape: RW, P, RW, P cycle only — SER-critical but
	// not SI-critical.
	g := NewGraph(4, nil)
	// Sessions {0,1} and {2,3}: successors 0→1, 2→3.
	g.AddEdge(0, 1, KindSuccessor)
	g.AddEdge(1, 0, KindPredecessor)
	g.AddEdge(2, 3, KindSuccessor)
	g.AddEdge(3, 2, KindPredecessor)
	// Conflicts: 0 -RW-> 3 and 2 -RW-> 1.
	g.AddEdge(0, 3, KindRW)
	g.AddEdge(2, 1, KindRW)
	ser, err := g.FindCriticalCycle(SERCritical, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ser == nil {
		t.Error("SER-critical cycle not found")
	}
	si, err := g.FindCriticalCycle(SICritical, 0)
	if err != nil {
		t.Fatal(err)
	}
	if si != nil {
		t.Errorf("unexpected SI-critical cycle: %v", si)
	}
}

func TestFindCriticalCycleBudget(t *testing.T) {
	t.Parallel()
	// A dense graph with no predecessor edges cannot have a critical
	// cycle, but enumerating all simple cycles overflows a tiny
	// budget.
	n := 10
	g := NewGraph(n, nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j, KindWW)
			}
		}
	}
	if _, err := g.FindCriticalCycle(SERCritical, 50); err == nil {
		t.Error("expected ErrBudgetExceeded")
	}
}
