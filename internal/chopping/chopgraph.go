// Package chopping implements the transaction-chopping analyses of §5
// and Appendix B of the paper: dynamic chopping graphs DCG(G) and the
// splice operation (Theorem 16), static chopping graphs SCG(P) over
// programs with read/write sets (Corollary 18), and the three
// criticality notions — SER-critical (Definition 28, Shasha et al.),
// SI-critical (§5) and PSI-critical (Definition 30).
package chopping

import (
	"fmt"
	"strings"
)

// EdgeKind classifies the edges of a chopping graph.
type EdgeKind int

// Chopping graph edge kinds. Successor and predecessor edges connect
// pieces of the same session/program; the three conflict kinds connect
// pieces of different sessions/programs.
const (
	KindInvalid EdgeKind = iota
	KindSuccessor
	KindPredecessor
	KindWR
	KindWW
	KindRW
)

const numKinds = 6

// String returns a short name: "S", "P", "WR", "WW" or "RW".
func (k EdgeKind) String() string {
	switch k {
	case KindSuccessor:
		return "S"
	case KindPredecessor:
		return "P"
	case KindWR:
		return "WR"
	case KindWW:
		return "WW"
	case KindRW:
		return "RW"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// IsConflict reports whether the kind is one of the conflict kinds
// (read dependency, write dependency or anti-dependency).
func (k EdgeKind) IsConflict() bool {
	return k == KindWR || k == KindWW || k == KindRW
}

// IsDependency reports whether the kind is a read or write dependency
// (the separators required between anti-dependencies by SI-
// criticality condition (iii)).
func (k EdgeKind) IsDependency() bool {
	return k == KindWR || k == KindWW
}

// Criticality selects which notion of critical cycle to search for.
type Criticality int

// The three criticality notions, ordered from laxest to strictest
// conditions (every PSI-critical cycle is SI-critical, and every
// SI-critical cycle is SER-critical).
const (
	CriticalityInvalid Criticality = iota
	// SERCritical: simple + contains a "conflict, predecessor,
	// conflict" fragment (Definition 28).
	SERCritical
	// SICritical: SER-critical + any two anti-dependency edges are
	// separated (cyclically) by a read or write dependency edge (§5).
	SICritical
	// PSICritical: SER-critical + at most one anti-dependency edge
	// (Definition 30).
	PSICritical
)

// String returns "SER-critical", "SI-critical" or "PSI-critical".
func (c Criticality) String() string {
	switch c {
	case SERCritical:
		return "SER-critical"
	case SICritical:
		return "SI-critical"
	case PSICritical:
		return "PSI-critical"
	default:
		return fmt.Sprintf("Criticality(%d)", int(c))
	}
}

// Step is one edge of a cycle in a chopping graph.
type Step struct {
	From, To int
	Kind     EdgeKind
}

// Cycle is a sequence of steps forming a directed cycle: each step's
// To equals the next step's From, and the last step returns to the
// first step's From.
type Cycle []Step

// String renders the cycle as "0 -RW-> 1 -P-> 0".
func (c Cycle) String() string {
	if len(c) == 0 {
		return "<empty>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", c[0].From)
	for _, s := range c {
		fmt.Fprintf(&sb, " -%s-> %d", s.Kind, s.To)
	}
	return sb.String()
}

// Kinds returns the edge kinds of the cycle in order.
func (c Cycle) Kinds() []EdgeKind {
	out := make([]EdgeKind, len(c))
	for i, s := range c {
		out[i] = s.Kind
	}
	return out
}

// IsCriticalKinds decides, for the cyclic sequence of edge kinds of a
// vertex-simple cycle, whether the cycle is critical at the given
// level. Vertex-simplicity (condition (i)) is the caller's
// responsibility; this function checks the kind conditions:
//
//	(ii)  some three consecutive edges (cyclically) form
//	      "conflict, predecessor, conflict";
//	(iii) SI: between any two cyclically-consecutive anti-dependency
//	      edges there is at least one read/write dependency edge;
//	      PSI: at most one anti-dependency edge.
func IsCriticalKinds(kinds []EdgeKind, level Criticality) bool {
	n := len(kinds)
	if n < 2 {
		// A self-loop cannot contain the three-edge fragment without
		// repeating a vertex.
		return false
	}
	// Condition (ii).
	fragment := false
	for i := 0; i < n; i++ {
		a, b, c := kinds[i], kinds[(i+1)%n], kinds[(i+2)%n]
		if a.IsConflict() && b == KindPredecessor && c.IsConflict() {
			fragment = true
			break
		}
	}
	if !fragment {
		return false
	}
	switch level {
	case SERCritical:
		return true
	case PSICritical:
		anti := 0
		for _, k := range kinds {
			if k == KindRW {
				anti++
			}
		}
		return anti <= 1
	case SICritical:
		return antiDepsSeparated(kinds)
	default:
		return false
	}
}

// antiDepsSeparated checks SI-criticality condition (iii): walking the
// cycle cyclically, every segment between two consecutive RW edges
// contains a WR or WW edge. Cycles with at most one RW edge satisfy
// the condition vacuously.
func antiDepsSeparated(kinds []EdgeKind) bool {
	n := len(kinds)
	first := -1
	for i, k := range kinds {
		if k == KindRW {
			first = i
			break
		}
	}
	if first < 0 {
		return true
	}
	// Walk from the first RW all the way around; require a dependency
	// edge before each subsequent RW (including the wrap back to the
	// first one when there are two or more RW edges).
	rwCount := 0
	for _, k := range kinds {
		if k == KindRW {
			rwCount++
		}
	}
	if rwCount < 2 {
		return true
	}
	sepSeen := false
	for off := 1; off <= n; off++ {
		k := kinds[(first+off)%n]
		switch {
		case k == KindRW:
			if !sepSeen {
				return false
			}
			sepSeen = false
		case k.IsDependency():
			sepSeen = true
		}
	}
	return true
}

// IsCritical reports whether the cycle is critical at the given level,
// checking vertex-simplicity (condition (i)) as well as the kind
// conditions.
func (c Cycle) IsCritical(level Criticality) bool {
	seen := make(map[int]bool, len(c))
	for _, s := range c {
		if seen[s.From] {
			return false
		}
		seen[s.From] = true
	}
	for i, s := range c {
		next := c[(i+1)%len(c)].From
		if s.To != next {
			return false
		}
	}
	return IsCriticalKinds(c.Kinds(), level)
}

// Graph is a chopping graph: a directed multigraph whose parallel
// edges are distinguished by kind. It serves both as the dynamic
// chopping graph DCG(G) (vertices are transactions) and the static
// chopping graph SCG(P) (vertices are program pieces).
type Graph struct {
	labels []string
	// adj[u*n+v] is a bitmask over EdgeKind values.
	adj []uint8
	n   int
}

// NewGraph returns a chopping graph with n vertices labelled by the
// given names; labels may be nil, in which case indices are used.
func NewGraph(n int, labels []string) *Graph {
	l := make([]string, n)
	for i := range l {
		if labels != nil && i < len(labels) && labels[i] != "" {
			l[i] = labels[i]
		} else {
			l[i] = fmt.Sprintf("%d", i)
		}
	}
	return &Graph{labels: l, adj: make([]uint8, n*n), n: n}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Label returns the display label of a vertex.
func (g *Graph) Label(v int) string { return g.labels[v] }

// AddEdge inserts a directed edge of the given kind.
func (g *Graph) AddEdge(u, v int, k EdgeKind) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("chopping: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if k <= KindInvalid || int(k) >= numKinds {
		panic(fmt.Sprintf("chopping: invalid edge kind %d", int(k)))
	}
	g.adj[u*g.n+v] |= 1 << uint(k)
}

// HasEdge reports whether an edge of the given kind exists.
func (g *Graph) HasEdge(u, v int, k EdgeKind) bool {
	return g.adj[u*g.n+v]&(1<<uint(k)) != 0
}

// kindsBetween returns the kinds present on the (u, v) edge bundle.
func (g *Graph) kindsBetween(u, v int) []EdgeKind {
	mask := g.adj[u*g.n+v]
	var out []EdgeKind
	for k := KindSuccessor; int(k) < numKinds; k++ {
		if mask&(1<<uint(k)) != 0 {
			out = append(out, k)
		}
	}
	return out
}

// searchKindsBetween is kindsBetween with WR/WW collapsed to a single
// representative: every criticality predicate treats read and write
// dependencies identically (both are conflicts and both are
// separators), so trying both merely doubles the search.
func (g *Graph) searchKindsBetween(u, v int) []EdgeKind {
	mask := g.adj[u*g.n+v]
	var out []EdgeKind
	if mask&(1<<uint(KindSuccessor)) != 0 {
		out = append(out, KindSuccessor)
	}
	if mask&(1<<uint(KindPredecessor)) != 0 {
		out = append(out, KindPredecessor)
	}
	switch {
	case mask&(1<<uint(KindWR)) != 0:
		out = append(out, KindWR)
	case mask&(1<<uint(KindWW)) != 0:
		out = append(out, KindWW)
	}
	if mask&(1<<uint(KindRW)) != 0 {
		out = append(out, KindRW)
	}
	return out
}

// Edges returns every edge of the graph.
func (g *Graph) Edges() []Step {
	var out []Step
	for u := 0; u < g.n; u++ {
		for v := 0; v < g.n; v++ {
			for _, k := range g.kindsBetween(u, v) {
				out = append(out, Step{From: u, To: v, Kind: k})
			}
		}
	}
	return out
}

// DescribeCycle renders a cycle using vertex labels.
func (g *Graph) DescribeCycle(c Cycle) string {
	if len(c) == 0 {
		return "<empty>"
	}
	var sb strings.Builder
	sb.WriteString(g.labels[c[0].From])
	for _, s := range c {
		fmt.Fprintf(&sb, " -%s-> %s", s.Kind, g.labels[s.To])
	}
	return sb.String()
}

// ErrBudgetExceeded is returned by FindCriticalCycle when the cycle
// search exceeded its work budget without an answer; the analysis is
// then inconclusive and the caller should treat the chopping as
// potentially incorrect.
var ErrBudgetExceeded = fmt.Errorf("chopping: cycle enumeration budget exceeded; analysis inconclusive")

// DefaultBudget bounds the number of DFS extensions performed by the
// critical-cycle search. Static chopping graphs are small (pieces ×
// programs), so the default is generous.
const DefaultBudget = 50_000_000

// FindCriticalCycle searches for a vertex-simple directed cycle that
// is critical at the given level. It returns (cycle, nil) when one is
// found, (nil, nil) when provably none exists, and
// (nil, ErrBudgetExceeded) when the search ran out of budget.
//
// The search enumerates vertex-simple cycles in canonical form (the
// smallest vertex of the cycle is the start) via DFS, carrying the
// chosen edge kinds; per-cycle criticality is decided by
// IsCriticalKinds. Worst-case exponential, as is inherent in
// enumerating simple cycles, but chopping graphs are program-sized.
func (g *Graph) FindCriticalCycle(level Criticality, budget int) (Cycle, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	e := &enumerator{g: g, level: level, budget: budget}
	for start := 0; start < g.n; start++ {
		e.start = start
		e.onStack = make([]bool, g.n)
		e.onStack[start] = true
		if found, err := e.dfs(start, nil); err != nil {
			return nil, err
		} else if found != nil {
			return found, nil
		}
	}
	return nil, nil
}

type enumerator struct {
	g       *Graph
	level   Criticality
	budget  int
	start   int
	onStack []bool
}

// dfs extends the current path (a stack of steps from e.start) and
// returns the first critical cycle found.
func (e *enumerator) dfs(v int, path []Step) (Cycle, error) {
	for next := 0; next < e.g.n; next++ {
		kinds := e.g.searchKindsBetween(v, next)
		if len(kinds) == 0 {
			continue
		}
		switch {
		case next == e.start && len(path) >= 1:
			for _, k := range kinds {
				e.budget--
				if e.budget < 0 {
					return nil, ErrBudgetExceeded
				}
				candidate := append(append(Cycle{}, path...), Step{From: v, To: next, Kind: k})
				if IsCriticalKinds(candidate.Kinds(), e.level) {
					return candidate, nil
				}
			}
		case next > e.start && !e.onStack[next]:
			for _, k := range kinds {
				e.budget--
				if e.budget < 0 {
					return nil, ErrBudgetExceeded
				}
				e.onStack[next] = true
				found, err := e.dfs(next, append(path, Step{From: v, To: next, Kind: k}))
				e.onStack[next] = false
				if err != nil || found != nil {
					return found, err
				}
			}
		}
	}
	return nil, nil
}
