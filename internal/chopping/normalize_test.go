package chopping

import (
	"reflect"
	"testing"

	"sian/internal/model"
)

// NewPiece must canonicalise its sets so that map-ordered extraction
// results (silint) produce deterministic chopping graphs.
func TestNewPieceNormalizes(t *testing.T) {
	t.Parallel()
	p := NewPiece("p",
		[]model.Obj{"y", "x", "y"},
		[]model.Obj{"b", "a", "a"})
	if !reflect.DeepEqual(p.Reads, []model.Obj{"x", "y"}) {
		t.Errorf("Reads = %v, want [x y]", p.Reads)
	}
	if !reflect.DeepEqual(p.Writes, []model.Obj{"a", "b"}) {
		t.Errorf("Writes = %v, want [a b]", p.Writes)
	}
}

// The Figure 5 incorrect chopping must yield the identical critical
// cycle regardless of declaration order/duplication of the sets.
func TestCriticalCycleDeterministicUnderInputOrder(t *testing.T) {
	t.Parallel()
	mk := func(both []model.Obj) []Program {
		transfer := NewProgram("transfer",
			NewPiece("debit", []model.Obj{"acct1"}, []model.Obj{"acct1"}),
			NewPiece("credit", []model.Obj{"acct2"}, []model.Obj{"acct2"}),
		)
		lookupAll := NewProgram("lookupAll", NewPiece("sum", both, nil))
		return []Program{transfer, lookupAll}
	}
	va, err := CheckStatic(mk([]model.Obj{"acct1", "acct2"}), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := CheckStatic(mk([]model.Obj{"acct2", "acct1", "acct2"}), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if va.OK || vb.OK {
		t.Fatalf("Figure 5 chopping reported correct (%v, %v)", va.OK, vb.OK)
	}
	if va.Graph.DescribeCycle(va.Witness) != vb.Graph.DescribeCycle(vb.Witness) {
		t.Errorf("witness depends on input order: %q vs %q",
			va.Graph.DescribeCycle(va.Witness), vb.Graph.DescribeCycle(vb.Witness))
	}
}
