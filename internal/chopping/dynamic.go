package chopping

import (
	"fmt"

	"sian/internal/depgraph"
)

// DCG builds the dynamic chopping graph of a dependency graph (§5):
// the vertices are g's transactions; WR/WW/RW edges between
// transactions of *different* sessions become conflict edges (edges
// between ≈-related transactions are dropped); session order yields
// successor edges and its inverse predecessor edges.
func DCG(g *depgraph.Graph) *Graph {
	h := g.History
	n := h.NumTransactions()
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		if id := h.Transaction(i).ID; id != "" {
			labels[i] = id
		}
	}
	out := NewGraph(n, labels)
	so := h.SessionOrder()
	for _, p := range so.Pairs() {
		out.AddEdge(p[0], p[1], KindSuccessor)
		out.AddEdge(p[1], p[0], KindPredecessor)
	}
	same := h.SameSession()
	addConflicts := func(pairs [][2]int, k EdgeKind) {
		for _, p := range pairs {
			if !same.Has(p[0], p[1]) {
				out.AddEdge(p[0], p[1], k)
			}
		}
	}
	addConflicts(g.WR().Pairs(), KindWR)
	addConflicts(g.WW().Pairs(), KindWW)
	addConflicts(g.RW().Pairs(), KindRW)
	return out
}

// Splice implements the splice(G) construction used to prove Theorem
// 16: it builds the dependency graph over splice(H_G) whose read and
// write dependencies are the liftings of G's to spliced transactions,
//
//	⌜T⌝ —WR(x)→ ⌜S⌝  iff  ⌜T⌝ ≠ ⌜S⌝ ∧ ∃T' ≈ T, S' ≈ S. T' —WR(x)→ S',
//
// and similarly for WW; RW is re-derived per Definition 5. The result
// is returned together with any well-formedness violation: when DCG(G)
// has a critical cycle the lifted graph may fail Definition 6 (e.g. a
// read with two sources), which is precisely what Theorem 16 rules
// out. Callers should Validate or check the returned error.
func Splice(g *depgraph.Graph) (*depgraph.Graph, error) {
	h := g.History
	sh := h.Splice()
	out := depgraph.New(sh)
	for _, x := range h.Objects() {
		for _, p := range g.WRObj(x).Pairs() {
			t, s := h.SplicedIndex(p[0]), h.SplicedIndex(p[1])
			if t != s {
				out.AddWR(x, t, s)
			}
		}
		for _, p := range g.WWObj(x).Pairs() {
			t, s := h.SplicedIndex(p[0]), h.SplicedIndex(p[1])
			if t != s {
				out.AddWW(x, t, s)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return out, fmt.Errorf("chopping: spliced graph is not a dependency graph: %w", err)
	}
	return out, nil
}

// SpliceResult reports the outcome of the dynamic chopping check of a
// single dependency graph.
type SpliceResult struct {
	// Critical is the critical cycle found in DCG(G), nil if none.
	Critical Cycle
	// DCG is the dynamic chopping graph (for diagnostics).
	DCG *Graph
	// Spliced is splice(G) when Critical is nil and splicing
	// succeeded.
	Spliced *depgraph.Graph
}

// CheckDynamic applies Theorem 16 to a dependency graph G ∈ GraphSI:
// if DCG(G) contains no SI-critical cycle, G is spliceable and the
// spliced dependency graph (which Theorem 16 guarantees is in GraphSI)
// is returned in the result. When a critical cycle exists the result
// carries it as a witness; the graph may or may not be spliceable (the
// criterion is sound, not complete).
func CheckDynamic(g *depgraph.Graph) (*SpliceResult, error) {
	return CheckDynamicLevel(g, SICritical)
}

// CheckDynamicLevel is CheckDynamic for any of the three criticality
// levels and their models: SERCritical with GraphSER (the dynamic form
// of Shasha et al.'s Theorem 29), SICritical with GraphSI (Theorem 16)
// and PSICritical with GraphPSI (the dynamic form of Theorem 31). The
// input graph must be in the corresponding model; when its DCG has no
// level-critical cycle, the spliced graph is checked to be in the same
// model and returned.
func CheckDynamicLevel(g *depgraph.Graph, level Criticality) (*SpliceResult, error) {
	m, err := modelForLevel(level)
	if err != nil {
		return nil, err
	}
	if err := g.InModel(m); err != nil {
		return nil, fmt.Errorf("chopping: input graph outside Graph%v: %w", m, err)
	}
	dcg := DCG(g)
	cyc, err := dcg.FindCriticalCycle(level, 0)
	if err != nil {
		return nil, err
	}
	res := &SpliceResult{Critical: cyc, DCG: dcg}
	if cyc != nil {
		return res, nil
	}
	spliced, err := Splice(g)
	if err != nil {
		return nil, fmt.Errorf("chopping: dynamic criterion violated at %v — no critical cycle but %w", level, err)
	}
	if err := spliced.InModel(m); err != nil {
		return nil, fmt.Errorf("chopping: dynamic criterion violated — spliced graph outside Graph%v: %w", m, err)
	}
	res.Spliced = spliced
	return res, nil
}

// modelForLevel maps a criticality level to the consistency model its
// dynamic criterion speaks about.
func modelForLevel(level Criticality) (depgraph.Model, error) {
	switch level {
	case SERCritical:
		return depgraph.SER, nil
	case SICritical:
		return depgraph.SI, nil
	case PSICritical:
		return depgraph.PSI, nil
	default:
		return 0, fmt.Errorf("chopping: unknown criticality level %v", level)
	}
}
