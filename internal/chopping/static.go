package chopping

import (
	"fmt"
	"sort"

	"sian/internal/model"
)

// Piece is one piece of a chopped transaction: the sets of objects it
// may read and write (the paper's R_i^j and W_i^j). The sets
// over-approximate the objects accessed by any execution of the piece.
type Piece struct {
	// Name labels the piece in diagnostics, e.g. a pseudo-code line.
	Name string
	// Reads and Writes are the read and write sets.
	Reads  []model.Obj
	Writes []model.Obj
}

// NewPiece builds a piece from read and write sets; both are copied,
// deduplicated and canonically sorted so that map-ordered inputs yield
// deterministic graphs and witnesses.
func NewPiece(name string, reads, writes []model.Obj) Piece {
	return Piece{Name: name, Reads: model.NormalizeObjs(reads), Writes: model.NormalizeObjs(writes)}
}

// Program is the code of the sessions resulting from chopping a single
// transaction (§5): an ordered sequence of pieces. To model several
// concurrent instances of the same program, include the program
// several times (see Replicate); the static analysis treats listed
// programs as the complete set of concurrent sessions.
type Program struct {
	Name   string
	Pieces []Piece
}

// NewProgram builds a program, copying the piece list.
func NewProgram(name string, pieces ...Piece) Program {
	cp := make([]Piece, len(pieces))
	copy(cp, pieces)
	return Program{Name: name, Pieces: cp}
}

// Unchopped returns the single-piece program whose read and write sets
// are the unions over all pieces — the original, unchopped
// transaction.
func (p Program) Unchopped() Program {
	reads := make(map[model.Obj]bool)
	writes := make(map[model.Obj]bool)
	for _, pc := range p.Pieces {
		for _, x := range pc.Reads {
			reads[x] = true
		}
		for _, x := range pc.Writes {
			writes[x] = true
		}
	}
	return NewProgram(p.Name, NewPiece(p.Name, objSetToSlice(reads), objSetToSlice(writes)))
}

func objSetToSlice(set map[model.Obj]bool) []model.Obj {
	out := make([]model.Obj, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replicate returns k copies of the program, suffixing names with the
// copy number. Use it to model a program that may run concurrently
// with itself.
func Replicate(p Program, k int) []Program {
	out := make([]Program, 0, k)
	for i := 1; i <= k; i++ {
		cp := NewProgram(fmt.Sprintf("%s#%d", p.Name, i), p.Pieces...)
		out = append(out, cp)
	}
	return out
}

// PieceID identifies a piece inside a program set: program index and
// piece index, both zero-based (the paper's pairs (i, j)).
type PieceID struct {
	Program, Piece int
}

// SCG builds the static chopping graph of a set of programs (§5). The
// vertex set is {(i, j)}; vertex order is program-major. Edges:
//
//   - successor (i, j1) → (i, j2) for j1 < j2;
//   - predecessor (i, j1) → (i, j2) for j1 > j2;
//   - read dependency (i1, j1) → (i2, j2) for i1 ≠ i2 when
//     W(i1,j1) ∩ R(i2,j2) ≠ ∅;
//   - write dependency when W ∩ W ≠ ∅;
//   - anti-dependency when R(i1,j1) ∩ W(i2,j2) ≠ ∅.
//
// The second return value maps vertex index → PieceID.
func SCG(programs []Program) (*Graph, []PieceID) {
	var ids []PieceID
	var labels []string
	for pi, p := range programs {
		for ji, piece := range p.Pieces {
			ids = append(ids, PieceID{Program: pi, Piece: ji})
			name := piece.Name
			if name == "" {
				name = fmt.Sprintf("%s[%d]", p.Name, ji)
			} else {
				name = fmt.Sprintf("%s:%s", p.Name, name)
			}
			labels = append(labels, name)
		}
	}
	g := NewGraph(len(ids), labels)
	pieceAt := func(id PieceID) Piece { return programs[id.Program].Pieces[id.Piece] }
	for u, uid := range ids {
		for v, vid := range ids {
			if u == v {
				continue
			}
			if uid.Program == vid.Program {
				if uid.Piece < vid.Piece {
					g.AddEdge(u, v, KindSuccessor)
				} else {
					g.AddEdge(u, v, KindPredecessor)
				}
				continue
			}
			a, b := pieceAt(uid), pieceAt(vid)
			if model.ObjsIntersect(a.Writes, b.Reads) {
				g.AddEdge(u, v, KindWR)
			}
			if model.ObjsIntersect(a.Writes, b.Writes) {
				g.AddEdge(u, v, KindWW)
			}
			if model.ObjsIntersect(a.Reads, b.Writes) {
				g.AddEdge(u, v, KindRW)
			}
		}
	}
	return g, ids
}

// Verdict is the outcome of a static chopping analysis.
type Verdict struct {
	// OK reports that the chopping is correct under the analysed
	// model: no critical cycle exists in SCG(P).
	OK bool
	// Witness is a critical cycle when OK is false.
	Witness Cycle
	// Graph is the static chopping graph, for rendering diagnostics.
	Graph *Graph
	// IDs maps graph vertices back to (program, piece) pairs.
	IDs []PieceID
}

// Describe renders the verdict for humans.
func (v *Verdict) Describe() string {
	if v.OK {
		return "chopping correct: no critical cycle"
	}
	return "chopping may be incorrect: critical cycle " + v.Graph.DescribeCycle(v.Witness)
}

// CheckStatic runs the static chopping analysis at a criticality
// level: Corollary 18 for SICritical, Theorem 29 (Shasha et al.) for
// SERCritical and Theorem 31 for PSICritical. A true verdict means the
// chopping defined by the programs is correct under the corresponding
// consistency model.
func CheckStatic(programs []Program, level Criticality) (*Verdict, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("chopping: no programs given")
	}
	for i, p := range programs {
		if len(p.Pieces) == 0 {
			return nil, fmt.Errorf("chopping: program %d (%s) has no pieces", i, p.Name)
		}
	}
	g, ids := SCG(programs)
	cyc, err := g.FindCriticalCycle(level, 0)
	if err != nil {
		return nil, err
	}
	return &Verdict{OK: cyc == nil, Witness: cyc, Graph: g, IDs: ids}, nil
}
