package chopping

import (
	"fmt"
	"sort"
	"strings"

	"sian/internal/model"
)

// Autochop searches for a fine-grained correct chopping: given
// programs whose pieces express the *desired finest* granularity
// (e.g. one piece per statement), it greedily coarsens them — merging
// contiguous pieces of one program — until the static chopping graph
// has no critical cycle at the given level, and returns the resulting
// programs. Corollary 18 (resp. Theorems 29/31) then guarantees the
// chopping is correct under the corresponding model.
//
// The merge heuristic follows the structure of critical cycles: every
// critical cycle contains a "conflict, predecessor, conflict" fragment
// (condition (ii)), and merging the pieces spanned by that predecessor
// edge removes the fragment. Greedy merging is not guaranteed to be
// the unique finest correct chopping, but it always terminates — in
// the worst case every program collapses back into a single
// transaction, which is trivially a correct chopping.
//
// The result shares no slices with the input.
func Autochop(programs []Program, level Criticality) ([]Program, error) {
	cur := make([]Program, len(programs))
	for i, p := range programs {
		cur[i] = NewProgram(p.Name, p.Pieces...)
	}
	for {
		verdict, err := CheckStatic(cur, level)
		if err != nil {
			return nil, err
		}
		if verdict.OK {
			return cur, nil
		}
		prog, lo, hi, ok := mergeSpan(verdict)
		if !ok {
			// Unreachable for well-formed critical cycles (condition
			// (ii) guarantees a predecessor edge), but guard against
			// it rather than loop forever.
			return nil, fmt.Errorf("chopping: critical cycle without a predecessor edge: %v",
				verdict.Graph.DescribeCycle(verdict.Witness))
		}
		cur[prog] = mergePieces(cur[prog], lo, hi)
	}
}

// mergeSpan picks the predecessor edge of the witness cycle and
// returns the program and the contiguous piece span to merge.
func mergeSpan(v *Verdict) (prog, lo, hi int, ok bool) {
	for _, s := range v.Witness {
		if s.Kind != KindPredecessor {
			continue
		}
		from, to := v.IDs[s.From], v.IDs[s.To]
		if from.Program != to.Program {
			continue
		}
		lo, hi = to.Piece, from.Piece
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			continue
		}
		return from.Program, lo, hi, true
	}
	return 0, 0, 0, false
}

// mergePieces collapses pieces lo..hi (inclusive) of the program into
// a single piece with the union of the read and write sets.
func mergePieces(p Program, lo, hi int) Program {
	var names []string
	reads := make(map[string]bool)
	writes := make(map[string]bool)
	for _, pc := range p.Pieces[lo : hi+1] {
		if pc.Name != "" {
			names = append(names, pc.Name)
		}
		for _, x := range pc.Reads {
			reads[string(x)] = true
		}
		for _, x := range pc.Writes {
			writes[string(x)] = true
		}
	}
	merged := NewPiece(strings.Join(names, "+"), setToObjs(reads), setToObjs(writes))
	pieces := make([]Piece, 0, len(p.Pieces)-(hi-lo))
	pieces = append(pieces, p.Pieces[:lo]...)
	pieces = append(pieces, merged)
	pieces = append(pieces, p.Pieces[hi+1:]...)
	return NewProgram(p.Name, pieces...)
}

// setToObjs converts a string set back into a sorted object slice.
func setToObjs(set map[string]bool) []model.Obj {
	out := make([]model.Obj, 0, len(set))
	for x := range set {
		out = append(out, model.Obj(x))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
