package chopping_test

import (
	"testing"

	. "sian/internal/chopping"
	"sian/internal/depgraph"
	"sian/internal/execution"
	"sian/internal/model"
	"sian/internal/relation"
)

// TestFig13DirectExecutionSplicingFails reproduces §B.3 / Figure 13:
// splicing an abstract execution directly — by lifting VIS and CO to
// spliced transactions — can produce a reflexive commit order even
// when the history is perfectly spliceable, whereas the dependency-
// graph route of Theorem 16 succeeds on the same input.
//
// The instance: session s1 = (A1; A2), session s2 = (B), all writing
// different objects, with commit order A1 < B < A2. Lifting CO gives
// both ⌜A⌝ → ⌜B⌝ (from A1 < B) and ⌜B⌝ → ⌜A⌝ (from B < A2): a cycle.
func TestFig13DirectExecutionSplicingFails(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		model.Session{ID: "s1", Transactions: []model.Transaction{
			model.NewTransaction("A1", model.Write("x", 1)),
			model.NewTransaction("A2", model.Write("y", 1)),
		}},
		model.Session{ID: "s2", Transactions: []model.Transaction{
			model.NewTransaction("B", model.Write("z", 1)),
		}},
	)
	// Indices: 0 A1, 1 A2, 2 B. CO: A1 < B < A2.
	vis := relation.New(3)
	vis.Add(0, 1) // SESSION
	co, err := relation.FromPairs(3, [][2]int{{0, 2}, {2, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	x := execution.New(h, vis, co)
	if err := x.IsSI(); err != nil {
		t.Fatalf("Figure 13 execution should be in ExecSI: %v", err)
	}

	// Naive direct splicing: lift CO through the session map.
	lifted := relation.New(h.NumSessions())
	for _, p := range co.Pairs() {
		a, b := h.SplicedIndex(p[0]), h.SplicedIndex(p[1])
		if a != b {
			lifted.Add(a, b)
		}
	}
	if lifted.IsAcyclic() {
		t.Fatal("naive CO lifting unexpectedly acyclic; the §B.3 obstruction did not materialise")
	}

	// The dependency-graph route: extract graph(X) and splice it.
	g, err := depgraph.FromExecution(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckDynamic(g)
	if err != nil {
		t.Fatalf("CheckDynamic: %v", err)
	}
	if res.Critical != nil {
		t.Fatalf("unexpected critical cycle: %v", res.DCG.DescribeCycle(res.Critical))
	}
	if res.Spliced == nil {
		t.Fatal("graph splicing failed")
	}
	if err := res.Spliced.InModel(depgraph.SI); err != nil {
		t.Errorf("spliced graph outside GraphSI: %v", err)
	}
}
