package chopping_test

import (
	"math/rand"
	"strings"
	"testing"

	"sian/internal/check"
	. "sian/internal/chopping"
	"sian/internal/depgraph"
	"sian/internal/model"
	"sian/internal/workload"
)

func mustStatic(t *testing.T, programs []Program, level Criticality) *Verdict {
	t.Helper()
	v, err := CheckStatic(programs, level)
	if err != nil {
		t.Fatalf("CheckStatic(%v): %v", level, err)
	}
	return v
}

// TestFig5 reproduces Figure 5: SCG{transfer, lookupAll} has an
// SI-critical cycle; the chopping is incorrect under SI (and SER).
func TestFig5(t *testing.T) {
	t.Parallel()
	v := mustStatic(t, workload.Fig5Programs(), SICritical)
	if v.OK {
		t.Fatal("Figure 5 chopping reported correct under SI")
	}
	if v.Witness == nil || !v.Witness.IsCritical(SICritical) {
		t.Errorf("witness cycle not SI-critical: %v", v.Witness)
	}
	if !strings.Contains(v.Describe(), "critical cycle") {
		t.Errorf("Describe = %q", v.Describe())
	}
	if vSER := mustStatic(t, workload.Fig5Programs(), SERCritical); vSER.OK {
		t.Error("Figure 5 chopping reported correct under SER")
	}
	if vPSI := mustStatic(t, workload.Fig5Programs(), PSICritical); vPSI.OK {
		t.Error("Figure 5 chopping reported correct under PSI")
	}
}

// TestFig6 reproduces Figure 6: SCG{transfer, lookup1, lookup2} has no
// critical cycle; the chopping is correct under SI.
func TestFig6(t *testing.T) {
	t.Parallel()
	v := mustStatic(t, workload.Fig6Programs(), SICritical)
	if !v.OK {
		t.Fatalf("Figure 6 chopping reported incorrect: %v", v.Graph.DescribeCycle(v.Witness))
	}
	// It is also correct under serializability and PSI.
	if !mustStatic(t, workload.Fig6Programs(), SERCritical).OK {
		t.Error("Figure 6 chopping incorrect under SER")
	}
	if !mustStatic(t, workload.Fig6Programs(), PSICritical).OK {
		t.Error("Figure 6 chopping incorrect under PSI")
	}
}

// TestFig11 reproduces Appendix B.1: {write1, write2} chops correctly
// under SI but not under serializability.
func TestFig11(t *testing.T) {
	t.Parallel()
	programs := workload.Fig11Programs()
	if v := mustStatic(t, programs, SICritical); !v.OK {
		t.Errorf("Figure 11 chopping incorrect under SI: %v", v.Graph.DescribeCycle(v.Witness))
	}
	v := mustStatic(t, programs, SERCritical)
	if v.OK {
		t.Fatal("Figure 11 chopping reported correct under SER")
	}
	// The witness must be the RW,P,RW,P shape of cycle (9).
	rw, p := 0, 0
	for _, k := range v.Witness.Kinds() {
		switch k {
		case KindRW:
			rw++
		case KindPredecessor:
			p++
		}
	}
	if rw != 2 || p != 2 || len(v.Witness) != 4 {
		t.Errorf("witness %v does not match cycle (9)", v.Witness)
	}
}

// TestFig12 reproduces Appendix B.2: {write1, write2, read1, read2}
// chops correctly under PSI but not under SI.
func TestFig12(t *testing.T) {
	t.Parallel()
	programs := workload.Fig12Programs()
	if v := mustStatic(t, programs, PSICritical); !v.OK {
		t.Errorf("Figure 12 chopping incorrect under PSI: %v", v.Graph.DescribeCycle(v.Witness))
	}
	v := mustStatic(t, programs, SICritical)
	if v.OK {
		t.Fatal("Figure 12 chopping reported correct under SI")
	}
	if !v.Witness.IsCritical(SICritical) || v.Witness.IsCritical(PSICritical) {
		t.Errorf("witness %v should be SI- but not PSI-critical", v.Witness)
	}
}

// TestChoppingHierarchy: correctness under SER implies correctness
// under SI implies correctness under PSI (Appendix B), on the paper's
// program sets.
func TestChoppingHierarchy(t *testing.T) {
	t.Parallel()
	sets := [][]Program{
		workload.Fig5Programs(),
		workload.Fig6Programs(),
		workload.Fig11Programs(),
		workload.Fig12Programs(),
	}
	for i, programs := range sets {
		ser := mustStatic(t, programs, SERCritical).OK
		si := mustStatic(t, programs, SICritical).OK
		psi := mustStatic(t, programs, PSICritical).OK
		if ser && !si {
			t.Errorf("set %d: correct under SER but not SI", i)
		}
		if si && !psi {
			t.Errorf("set %d: correct under SI but not PSI", i)
		}
	}
}

func TestCheckStaticValidation(t *testing.T) {
	t.Parallel()
	if _, err := CheckStatic(nil, SICritical); err == nil {
		t.Error("empty program set accepted")
	}
	if _, err := CheckStatic([]Program{{Name: "p"}}, SICritical); err == nil {
		t.Error("pieceless program accepted")
	}
}

func TestSCGStructure(t *testing.T) {
	t.Parallel()
	g, ids := SCG(workload.Fig6Programs())
	// transfer has 2 pieces, each lookup 1: four vertices.
	if g.N() != 4 || len(ids) != 4 {
		t.Fatalf("SCG has %d vertices", g.N())
	}
	// Successor and predecessor within transfer.
	if !g.HasEdge(0, 1, KindSuccessor) || !g.HasEdge(1, 0, KindPredecessor) {
		t.Error("transfer session edges missing")
	}
	// lookup1 reads acct1 which piece 0 writes: WR 0→2 and RW 2→0.
	if !g.HasEdge(0, 2, KindWR) {
		t.Error("missing WR transfer[0] → lookup1")
	}
	if !g.HasEdge(2, 0, KindRW) {
		t.Error("missing RW lookup1 → transfer[0]")
	}
	// No edges between the two lookups (disjoint objects, different
	// programs).
	for _, k := range []EdgeKind{KindWR, KindWW, KindRW, KindSuccessor, KindPredecessor} {
		if g.HasEdge(2, 3, k) || g.HasEdge(3, 2, k) {
			t.Errorf("unexpected %v edge between lookups", k)
		}
	}
	if ids[1] != (PieceID{Program: 0, Piece: 1}) || ids[3] != (PieceID{Program: 2, Piece: 0}) {
		t.Errorf("ids = %v", ids)
	}
}

func TestUnchoppedAndReplicate(t *testing.T) {
	t.Parallel()
	transfer := workload.TransferChopped()
	u := transfer.Unchopped()
	if len(u.Pieces) != 1 {
		t.Fatalf("Unchopped pieces = %d", len(u.Pieces))
	}
	if len(u.Pieces[0].Reads) != 2 || len(u.Pieces[0].Writes) != 2 {
		t.Errorf("Unchopped sets = %v / %v", u.Pieces[0].Reads, u.Pieces[0].Writes)
	}
	reps := Replicate(transfer, 3)
	if len(reps) != 3 || reps[0].Name == reps[1].Name {
		t.Errorf("Replicate = %v", reps)
	}
	// A single unchopped transaction set is trivially correct.
	if v := mustStatic(t, []Program{u, workload.LookupAll()}, SICritical); !v.OK {
		t.Errorf("unchopped transfer incorrect: %v", v.Graph.DescribeCycle(v.Witness))
	}
}

// TestDCGFig4 reproduces the dynamic side of Figure 4: DCG(G1) has an
// SI-critical cycle (G1 not spliceable); DCG(G2) does not, and
// splice(G2) lands in GraphSI.
func TestDCGFig4(t *testing.T) {
	t.Parallel()
	figs := workload.Fig4Graphs()

	res1, err := CheckDynamic(figs.G1)
	if err != nil {
		t.Fatalf("CheckDynamic(G1): %v", err)
	}
	if res1.Critical == nil {
		t.Fatal("DCG(G1) should contain an SI-critical cycle")
	}
	if res1.Spliced != nil {
		t.Error("G1 must not be spliced")
	}

	res2, err := CheckDynamic(figs.G2)
	if err != nil {
		t.Fatalf("CheckDynamic(G2): %v", err)
	}
	if res2.Critical != nil {
		t.Fatalf("DCG(G2) unexpectedly critical: %v", res2.DCG.DescribeCycle(res2.Critical))
	}
	if res2.Spliced == nil {
		t.Fatal("G2 should be spliced")
	}
	if err := res2.Spliced.InModel(depgraph.SI); err != nil {
		t.Errorf("splice(G2) outside GraphSI: %v", err)
	}
}

// TestSpliceG1NotSI confirms the paper's claim that splice(H_G1) is
// not in HistSI: the spliced graph violates GraphSI, and certifying
// the spliced history also fails.
func TestSpliceG1NotSI(t *testing.T) {
	t.Parallel()
	figs := workload.Fig4Graphs()
	spliced, err := Splice(figs.G1)
	if err == nil {
		// The lifted graph may be well-formed; it must then be outside
		// GraphSI.
		if spliced.InModel(depgraph.SI) == nil {
			t.Error("splice(G1) in GraphSI; Figure 4 contradicted")
		}
	}
	// Independent check through the certifier on the spliced history.
	sh := figs.G1.History.Splice()
	res, err := check.Certify(sh, depgraph.SI, check.Options{NoInit: true, PinInit: true, Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Member {
		t.Error("splice(H_G1) certified SI; Figure 4 contradicted")
	}
}

func TestCheckDynamicRejectsNonSIGraph(t *testing.T) {
	t.Parallel()
	// Lost update graph is outside GraphSI.
	lu := workload.LostUpdate()
	if _, err := CheckDynamic(lu.Graph); err == nil {
		t.Error("CheckDynamic accepted a non-GraphSI input")
	}
}

// TestTheorem16Randomised: for random SI-certifiable histories whose
// DCG has no critical cycle, splice(G) is a dependency graph in
// GraphSI, and the spliced history is SI-certifiable.
func TestTheorem16Randomised(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1234))
	spliceable, critical := 0, 0
	for trial := 0; trial < 150; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 3, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
		})
		res, err := check.Certify(h, depgraph.SI, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Member {
			continue
		}
		dyn, err := CheckDynamic(res.Graph)
		if err != nil {
			t.Fatalf("trial %d: CheckDynamic: %v\n%v", trial, err, res.History)
		}
		if dyn.Critical != nil {
			critical++
			continue
		}
		spliceable++
		if dyn.Spliced == nil {
			t.Fatalf("trial %d: no critical cycle but no spliced graph", trial)
		}
		// Theorem 16's conclusion, re-checked through the certifier:
		// the spliced history is in HistSI.
		sh := res.History.Splice()
		sres, err := check.Certify(sh, depgraph.SI, check.Options{NoInit: true, PinInit: true, Budget: 2_000_000})
		if err != nil {
			t.Fatalf("trial %d: certifying spliced history: %v", trial, err)
		}
		if !sres.Member {
			t.Fatalf("trial %d: Theorem 16 violated: spliced history not SI\noriginal:\n%v\nspliced:\n%v",
				trial, res.History, sh)
		}
	}
	if spliceable == 0 {
		t.Error("no spliceable cases exercised")
	}
	t.Logf("spliceable=%d critical=%d", spliceable, critical)
}

// TestDCGConflictEdgesExcludeSameSession: conflicts inside a session
// must not appear in the DCG.
func TestDCGConflictEdgesExcludeSameSession(t *testing.T) {
	t.Parallel()
	h := model.NewHistory(
		model.Session{ID: "s", Transactions: []model.Transaction{
			model.NewTransaction("T1", model.Write("x", 1)),
			model.NewTransaction("T2", model.Read("x", 1)),
		}},
	)
	g := depgraph.New(h)
	g.AddWR("x", 0, 1)
	dcg := DCG(g)
	if dcg.HasEdge(0, 1, KindWR) {
		t.Error("same-session WR edge leaked into DCG")
	}
	if !dcg.HasEdge(0, 1, KindSuccessor) || !dcg.HasEdge(1, 0, KindPredecessor) {
		t.Error("session edges missing from DCG")
	}
}

// TestDynamicCriteriaAllLevelsRandomised extends the Theorem 16
// property to the SER and PSI dynamic criteria (the dynamic forms of
// Theorems 29 and 31): whenever a model's dynamic chopping graph has
// no level-critical cycle, the spliced history remains in that model.
func TestDynamicCriteriaAllLevelsRandomised(t *testing.T) {
	t.Parallel()
	levels := []struct {
		level Criticality
		m     depgraph.Model
	}{
		{SERCritical, depgraph.SER},
		{SICritical, depgraph.SI},
		{PSICritical, depgraph.PSI},
	}
	rng := rand.New(rand.NewSource(4242))
	spliceable := 0
	for trial := 0; trial < 100; trial++ {
		h := workload.RandomPlausibleHistory(rng, workload.RandomConfig{
			Sessions: 3, TxPerSession: 2, OpsPerTx: 2, Objects: 2,
		})
		for _, lv := range levels {
			res, err := check.Certify(h, lv.m, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Member {
				continue
			}
			dyn, err := CheckDynamicLevel(res.Graph, lv.level)
			if err != nil {
				t.Fatalf("trial %d %v: %v\n%v", trial, lv.level, err, res.History)
			}
			if dyn.Critical != nil {
				continue
			}
			spliceable++
			sres, err := check.Certify(res.History.Splice(), lv.m,
				check.Options{NoInit: true, PinInit: true, Budget: 2_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if !sres.Member {
				t.Fatalf("trial %d: dynamic %v criterion violated: spliced history not in %v\n%v",
					trial, lv.level, lv.m, res.History)
			}
		}
	}
	if spliceable == 0 {
		t.Error("no spliceable cases exercised")
	}
}

// TestCheckDynamicLevelValidation covers the error paths.
func TestCheckDynamicLevelValidation(t *testing.T) {
	t.Parallel()
	ws := workload.WriteSkew()
	// Write skew is outside GraphSER: the SER-level check must refuse.
	if _, err := CheckDynamicLevel(ws.Graph, SERCritical); err == nil {
		t.Error("SER-level check accepted a non-serializable graph")
	}
	// It is inside GraphSI and GraphPSI.
	for _, level := range []Criticality{SICritical, PSICritical} {
		if _, err := CheckDynamicLevel(ws.Graph, level); err != nil {
			t.Errorf("%v: %v", level, err)
		}
	}
	if _, err := CheckDynamicLevel(ws.Graph, Criticality(77)); err == nil {
		t.Error("unknown level accepted")
	}
}
