package chopping_test

import (
	"testing"

	. "sian/internal/chopping"
	"sian/internal/model"
	"sian/internal/workload"
)

func pieceCount(p Program) int { return len(p.Pieces) }

// TestAutochopFig6 keeps the transfer fully chopped when the peers are
// per-account lookups (the Figure 6 situation is already correct).
func TestAutochopFig6(t *testing.T) {
	t.Parallel()
	out, err := Autochop(workload.Fig6Programs(), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(out[0]) != 2 {
		t.Errorf("transfer collapsed to %d pieces; Figure 6 chopping is correct as-is", pieceCount(out[0]))
	}
	v, err := CheckStatic(out, SICritical)
	if err != nil || !v.OK {
		t.Errorf("autochopped set not correct: %v %v", err, v)
	}
}

// TestAutochopFig5 must merge the transfer back into one transaction
// when an atomic balance-sum lookup is present (Figure 5's chopping is
// incorrect, and the only correct chopping keeps the transfer whole).
func TestAutochopFig5(t *testing.T) {
	t.Parallel()
	out, err := Autochop(workload.Fig5Programs(), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(out[0]) != 1 {
		t.Errorf("transfer kept %d pieces; it must merge under lookupAll", pieceCount(out[0]))
	}
	v, err := CheckStatic(out, SICritical)
	if err != nil || !v.OK {
		t.Errorf("autochopped set not correct: %v %v", err, v)
	}
	// Merged piece unions the read/write sets.
	merged := out[0].Pieces[0]
	if len(merged.Reads) != 2 || len(merged.Writes) != 2 {
		t.Errorf("merged sets = %v / %v", merged.Reads, merged.Writes)
	}
}

// TestAutochopLevels: the Figure 11 programs stay fully chopped at the
// SI level but must coarsen at the SER level (their chopping is
// correct under SI only).
func TestAutochopLevels(t *testing.T) {
	t.Parallel()
	si, err := Autochop(workload.Fig11Programs(), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(si[0]) != 2 || pieceCount(si[1]) != 2 {
		t.Errorf("SI level coarsened Figure 11: %d/%d pieces", pieceCount(si[0]), pieceCount(si[1]))
	}
	ser, err := Autochop(workload.Fig11Programs(), SERCritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(ser[0])+pieceCount(ser[1]) >= 4 {
		t.Errorf("SER level did not coarsen Figure 11: %d/%d pieces", pieceCount(ser[0]), pieceCount(ser[1]))
	}
	v, err := CheckStatic(ser, SERCritical)
	if err != nil || !v.OK {
		t.Errorf("SER autochop not correct: %v %v", err, v)
	}
}

// TestAutochopStatementLevel chops a three-statement transaction as
// finely as the peers allow.
func TestAutochopStatementLevel(t *testing.T) {
	t.Parallel()
	objs := func(xs ...string) []model.Obj {
		out := make([]model.Obj, len(xs))
		for i, x := range xs {
			out[i] = model.Obj(x)
		}
		return out
	}
	// A batch touching three disjoint objects, against single-object
	// readers: fully choppable.
	batch := NewProgram("batch",
		NewPiece("s1", objs("a"), objs("a")),
		NewPiece("s2", objs("b"), objs("b")),
		NewPiece("s3", objs("c"), objs("c")),
	)
	readers := []Program{
		NewProgram("ra", NewPiece("ra", objs("a"), nil)),
		NewProgram("rb", NewPiece("rb", objs("b"), nil)),
	}
	out, err := Autochop(append([]Program{batch}, readers...), SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(out[0]) != 3 {
		t.Errorf("disjoint batch coarsened to %d pieces", pieceCount(out[0]))
	}
	// Against an atomic reader of a and c, the span a..c must merge.
	readerAC := NewProgram("rac", NewPiece("rac", objs("a", "c"), nil))
	out2, err := Autochop([]Program{batch, readerAC}, SICritical)
	if err != nil {
		t.Fatal(err)
	}
	if pieceCount(out2[0]) >= 3 {
		t.Errorf("batch not coarsened against atomic reader: %d pieces", pieceCount(out2[0]))
	}
	v, err := CheckStatic(out2, SICritical)
	if err != nil || !v.OK {
		t.Errorf("autochop result not correct: %v %v", err, v)
	}
}
