package ledger

import (
	"fmt"
	"io"
)

// Delta is one per-metric comparison between a baseline report and a
// fresh run.
type Delta struct {
	// Metric names the compared quantity ("txs_per_sec",
	// "sweep[procs=2].txs_per_sec", "p99_commit_latency_ns", ...).
	Metric string
	// Base and New are the baseline and fresh values.
	Base, New float64
	// Ratio is New/Base (0 when Base is 0).
	Ratio float64
	// HigherIsBetter orients the regression test.
	HigherIsBetter bool
	// Gating marks metrics that fail the comparison on regression;
	// non-gating metrics (latency quantiles, which are far noisier
	// than throughput on shared runners) are reported informationally.
	Gating bool
	// Regressed reports that a gating metric moved beyond the
	// threshold in the bad direction.
	Regressed bool
}

// Compare computes per-metric deltas of cur against base. threshold is
// the tolerated fractional loss on gating (throughput) metrics: with
// threshold 0.3, a fresh run below 70% of the baseline regresses.
// Gating metrics are the headline txs_per_sec and each sweep point's
// txs_per_sec matched by procs value; latency quantiles are reported
// but never gate. The second result is true when any gating metric
// regressed.
func Compare(base, cur BenchReport, threshold float64) ([]Delta, bool) {
	var deltas []Delta
	add := func(metric string, b, n float64, higherBetter, gating bool) {
		d := Delta{Metric: metric, Base: b, New: n, HigherIsBetter: higherBetter, Gating: gating}
		if b != 0 {
			d.Ratio = n / b
		}
		if gating && b > 0 {
			if higherBetter {
				d.Regressed = n < b*(1-threshold)
			} else {
				d.Regressed = n > b*(1+threshold)
			}
		}
		deltas = append(deltas, d)
	}

	add("txs_per_sec", base.TxsPerSec, cur.TxsPerSec, true, true)
	add("p50_commit_latency_ns", base.P50CommitLatencyNS, cur.P50CommitLatencyNS, false, false)
	add("p99_commit_latency_ns", base.P99CommitLatencyNS, cur.P99CommitLatencyNS, false, false)
	if base.CertifyNS > 0 && cur.CertifyNS > 0 {
		add("certify_ns", float64(base.CertifyNS), float64(cur.CertifyNS), false, false)
	}
	byProcs := make(map[int]SweepPoint, len(cur.Sweep))
	for _, pt := range cur.Sweep {
		byProcs[pt.Procs] = pt
	}
	for _, bp := range base.Sweep {
		np, ok := byProcs[bp.Procs]
		if !ok {
			continue // the fresh run did not sweep this point
		}
		add(fmt.Sprintf("sweep[procs=%d].txs_per_sec", bp.Procs), bp.TxsPerSec, np.TxsPerSec, true, true)
		add(fmt.Sprintf("sweep[procs=%d].p99_commit_latency_ns", bp.Procs), bp.P99CommitLatencyNS, np.P99CommitLatencyNS, false, false)
	}

	regressed := false
	for _, d := range deltas {
		if d.Regressed {
			regressed = true
		}
	}
	return deltas, regressed
}

// WriteDeltas renders a comparison as an aligned table, one line per
// metric, flagging regressions.
func WriteDeltas(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		status := "ok"
		switch {
		case d.Regressed:
			status = "REGRESSED"
		case !d.Gating:
			status = "info"
		}
		fmt.Fprintf(w, "compare: %-40s base=%-14.4g new=%-14.4g ratio=%-8.3g %s\n",
			d.Metric, d.Base, d.New, d.Ratio, status)
	}
}
