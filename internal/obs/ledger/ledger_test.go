package ledger

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport(engine string, tps float64) BenchReport {
	return BenchReport{
		Schema:             BenchSchema,
		Engine:             engine,
		Workload:           "closedloop",
		Sessions:           8,
		CPUs:               1,
		GOMAXPROCS:         1,
		ElapsedNS:          1_000_000_000,
		Commits:            int64(tps),
		TxsPerSec:          tps,
		P50CommitLatencyNS: 1000,
		P99CommitLatencyNS: 8000,
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	for i, tps := range []float64{100, 200, 300} {
		e := NewEntry("sibench", []string{"-workload", "closedloop"}, sampleReport("si", tps))
		if err := Append(path, e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for i, want := range []float64{100, 200, 300} {
		if got := entries[i].Report.TxsPerSec; got != want {
			t.Errorf("entry %d txs_per_sec = %v, want %v", i, got, want)
		}
	}
}

func TestNewEntryProvenance(t *testing.T) {
	e := NewEntry("sibench", []string{"-sweep", "1,2"}, sampleReport("si", 50))
	if e.Schema != EntrySchema {
		t.Errorf("schema = %q, want %q", e.Schema, EntrySchema)
	}
	if e.Tool != "sibench" {
		t.Errorf("tool = %q", e.Tool)
	}
	if e.Time == "" {
		t.Error("time is empty")
	}
	if e.Host == "" || !strings.Contains(e.Host, "/") {
		t.Errorf("host fingerprint = %q, want hostname/GOOS/GOARCH/ncpu", e.Host)
	}
	if e.GoVersion == "" {
		t.Error("go version is empty")
	}
	if e.CPUs < 1 || e.GOMAXPROCS < 1 {
		t.Errorf("cpus=%d gomaxprocs=%d, want >=1", e.CPUs, e.GOMAXPROCS)
	}
	if len(e.Args) != 2 {
		t.Errorf("args = %v", e.Args)
	}
	// This test runs inside the repo checkout, so the revision should
	// resolve; tolerate absence (provenance is best-effort) but if set
	// it must look like a hex SHA.
	if e.GitRev != "" && len(e.GitRev) != 40 {
		t.Errorf("git rev = %q, want 40-char SHA or empty", e.GitRev)
	}
}

func TestReadSkipsBlanksAndRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.ndjson")
	line := `{"schema":"` + EntrySchema + `","time":"2026-01-01T00:00:00Z","tool":"sibench","host":"h/linux/amd64/1","go_version":"go1.24.0","cpus":1,"gomaxprocs":1,"report":` + mustJSON(t, sampleReport("si", 10)) + `}`
	if err := os.WriteFile(ok, []byte("\n"+line+"\n\n"+line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(ok)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}

	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte(line+"\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bad); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("read of malformed ledger: err = %v, want line-numbered error", err)
	}
}

func TestLoadBaselineBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(mustJSON(t, sampleReport("si", 1234))), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, desc, err := LoadBaseline(path, "si", "closedloop", "")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.TxsPerSec != 1234 {
		t.Errorf("txs_per_sec = %v", rep.TxsPerSec)
	}
	if !strings.Contains(desc, "bench report") {
		t.Errorf("desc = %q, want bench-report description", desc)
	}
}

func TestLoadBaselineLedgerPrefersMatchingRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	// Newest entry overall is a PSI run; the newest SI/closedloop run
	// is older and must win when comparing an SI run.
	for _, e := range []Entry{
		NewEntry("sibench", nil, sampleReport("si", 111)),
		NewEntry("sibench", nil, sampleReport("si", 222)),
		NewEntry("sibench", nil, sampleReport("psi", 999)),
	} {
		if err := Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	rep, desc, err := LoadBaseline(path, "si", "closedloop", "")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.Engine != "si" || rep.TxsPerSec != 222 {
		t.Errorf("chose engine=%s tps=%v, want newest matching si/222", rep.Engine, rep.TxsPerSec)
	}
	if !strings.Contains(desc, "ledger entry") {
		t.Errorf("desc = %q", desc)
	}
	// No matching engine: newest entry overall wins.
	rep, _, err = LoadBaseline(path, "ser", "closedloop", "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "psi" {
		t.Errorf("fallback chose %s, want newest overall (psi)", rep.Engine)
	}
}

func TestLoadBaselineMatchesMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	netRep := sampleReport("si", 50)
	netRep.Mode = "network"
	netRep.ServerRev = "deadbeef"
	// The newest entry overall is the network run; an in-process
	// comparison must skip it, and vice versa.
	for _, e := range []Entry{
		NewEntry("sibench", nil, sampleReport("si", 111)),
		NewEntry("sibench", nil, netRep),
	} {
		if err := Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	rep, _, err := LoadBaseline(path, "si", "closedloop", "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "" || rep.TxsPerSec != 111 {
		t.Errorf("in-process baseline chose mode=%q tps=%v, want the in-process run", rep.Mode, rep.TxsPerSec)
	}
	rep, _, err = LoadBaseline(path, "si", "closedloop", "network")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "network" || rep.ServerRev != "deadbeef" {
		t.Errorf("network baseline chose mode=%q rev=%q, want the network run", rep.Mode, rep.ServerRev)
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadBaseline(filepath.Join(dir, "missing.json"), "si", "closedloop", ""); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadBaseline(empty, "si", "closedloop", ""); err == nil {
		t.Error("empty file: want error")
	}
}

func TestCompareGatingSemantics(t *testing.T) {
	base := sampleReport("si", 1000)
	base.Sweep = []SweepPoint{
		{Procs: 1, TxsPerSec: 1000, P99CommitLatencyNS: 5000},
		{Procs: 2, TxsPerSec: 800, P99CommitLatencyNS: 9000},
	}

	// Within threshold: 20% drop at threshold 0.3 passes.
	cur := sampleReport("si", 800)
	cur.Sweep = []SweepPoint{
		{Procs: 1, TxsPerSec: 900, P99CommitLatencyNS: 20000},
		{Procs: 2, TxsPerSec: 700, P99CommitLatencyNS: 30000},
	}
	deltas, regressed := Compare(base, cur, 0.3)
	if regressed {
		t.Errorf("20%% drop at threshold 0.3 regressed: %+v", deltas)
	}

	// Beyond threshold on the headline metric.
	cur.TxsPerSec = 600
	_, regressed = Compare(base, cur, 0.3)
	if !regressed {
		t.Error("40% headline drop at threshold 0.3 did not regress")
	}

	// Beyond threshold on one sweep point only.
	cur.TxsPerSec = 950
	cur.Sweep[1].TxsPerSec = 100
	deltas, regressed = Compare(base, cur, 0.3)
	if !regressed {
		t.Error("sweep-point collapse did not regress")
	}
	var found bool
	for _, d := range deltas {
		if d.Metric == "sweep[procs=2].txs_per_sec" {
			found = true
			if !d.Regressed || !d.Gating {
				t.Errorf("sweep delta = %+v, want gating regression", d)
			}
		}
		if strings.Contains(d.Metric, "latency") && d.Gating {
			t.Errorf("latency metric %s is gating; latency must be informational", d.Metric)
		}
	}
	if !found {
		t.Error("no sweep[procs=2].txs_per_sec delta emitted")
	}

	// A sweep point absent from the fresh run is skipped, not failed.
	cur.Sweep = cur.Sweep[:1]
	cur.Sweep[0].TxsPerSec = 1000
	_, regressed = Compare(base, cur, 0.3)
	if regressed {
		t.Error("missing sweep point treated as regression")
	}

	// Zero baseline never gates.
	zero := sampleReport("si", 0)
	_, regressed = Compare(zero, sampleReport("si", 0), 0.3)
	if regressed {
		t.Error("zero baseline regressed")
	}
}

func TestWriteDeltasFlagsRegressions(t *testing.T) {
	base := sampleReport("si", 1000)
	cur := sampleReport("si", 100)
	deltas, regressed := Compare(base, cur, 0.3)
	if !regressed {
		t.Fatal("synthetic 10x collapse did not regress")
	}
	var sb strings.Builder
	WriteDeltas(&sb, deltas)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("output lacks REGRESSED flag:\n%s", out)
	}
	if !strings.Contains(out, "txs_per_sec") || !strings.Contains(out, "info") {
		t.Errorf("output lacks expected rows:\n%s", out)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
