// Package ledger is the bench run ledger: an append-only NDJSON file
// recording every benchmark / certification run together with its
// provenance (git revision, host fingerprint, GOMAXPROCS), plus the
// regression comparison that turns two recorded runs into a CI gate.
//
// The package owns the sibench machine-readable report schema
// (BenchReport, SweepPoint, CheckerBench — the "sibench/v2" JSON that
// -bench-json emits and BENCH_sibench.json commits), so a ledger entry
// is exactly "provenance + one report". A ledger file grows one line
// per run and is safe to append to concurrently from independent
// processes (each line is written with a single O_APPEND write).
package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// BenchSchema versions the bench report format. v2 added GOMAXPROCS
// and the Sweep scaling table; sweep points may additionally carry
// median-of-reps fields (reps, min/max throughput) without a schema
// bump, since absent fields mean a single rep.
const BenchSchema = "sibench/v2"

// EntrySchema versions the ledger entry envelope.
const EntrySchema = "siledger/v1"

// BenchReport is the machine-readable benchmark summary emitted by
// sibench -bench-json, one JSON object per run. Latency quantiles come
// from the engine's log-scale commit-latency histogram.
type BenchReport struct {
	Schema   string `json:"schema"`
	Engine   string `json:"engine"`
	Workload string `json:"workload"`
	// Mode distinguishes how the workload reached the engine: absent
	// or "" for the in-process engine, "network" for a run driven
	// against a siserve over the siwire protocol (sibench -addr).
	// Baselines only compare like with like (LoadBaseline matches
	// mode), since wire round-trips dominate network-mode latency.
	Mode string `json:"mode,omitempty"`
	// ServerRev is the serving binary's git revision as reported by
	// the server's info document — the build actually measured, which
	// in network mode need not be the client's checkout.
	ServerRev          string  `json:"server_rev,omitempty"`
	Sessions           int     `json:"sessions"`
	CPUs               int     `json:"cpus"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	ElapsedNS          int64   `json:"elapsed_ns"`
	Commits            int64   `json:"commits"`
	Conflicts          int64   `json:"conflicts"`
	Aborts             int64   `json:"aborts"`
	Retries            int64   `json:"retries"`
	TxsPerSec          float64 `json:"txs_per_sec"`
	P50CommitLatencyNS float64 `json:"p50_commit_latency_ns"`
	P99CommitLatencyNS float64 `json:"p99_commit_latency_ns"`
	P50SnapshotAgeNS   float64 `json:"p50_snapshot_age_ns"`
	P99SnapshotAgeNS   float64 `json:"p99_snapshot_age_ns"`

	// Certification fields are present when -certify ran.
	CertifyParallelism int   `json:"certify_parallelism,omitempty"`
	CertifyNS          int64 `json:"certify_ns,omitempty"`
	CertifyExamined    int   `json:"certify_examined,omitempty"`

	// CheckerBench carries the offline seed-vs-incremental search
	// benchmark when a recorded report includes one (see
	// internal/check/search_bench_test.go); sibench itself does not
	// populate it, but round-trips it for the committed artifact.
	CheckerBench *CheckerBench `json:"checker_bench,omitempty"`

	// Sweep holds the -sweep scaling table: the closed-loop workload
	// repeated at each GOMAXPROCS value. The top-level throughput
	// fields then reflect the best point.
	Sweep []SweepPoint `json:"sweep,omitempty"`

	// Stages is the per-stage latency breakdown of a -trace-txns run:
	// one row per commit-pipeline (or wire round-trip) stage, in
	// pipeline order. Absent on untraced runs, so pre-tracing ledger
	// lines parse unchanged and old readers ignore it; the -compare
	// gate never reads it (only the headline throughput metrics gate).
	Stages []StageLatency `json:"stages,omitempty"`

	// GroupCommit summarises the SI commit sequencer's batch
	// accounting (see internal/engine/batcher.go). Absent when the run
	// executed no batches (sequencer disabled, non-SI engine, or a
	// network run where the accounting lives in the server's metrics),
	// so pre-batching ledger lines parse unchanged; the -compare gate
	// never reads it.
	GroupCommit *GroupCommitStats `json:"group_commit,omitempty"`

	// Note carries free-form provenance for recorded artifacts (for
	// example the host's core count); sibench round-trips it.
	Note string `json:"note,omitempty"`
}

// StageLatency is one row of a traced run's per-stage breakdown,
// mirroring txtrace.StageLatency (redeclared here so the ledger schema
// stays self-contained).
type StageLatency struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P99NS float64 `json:"p99_ns"`
}

// SweepPoint is one entry of a -sweep run: the closed-loop workload
// executed from scratch at a given GOMAXPROCS. With -sweep-reps > 1
// the point is the median-throughput repetition and Reps/Min/Max
// record the spread, so one noisy run cannot poison the ledger.
type SweepPoint struct {
	Procs              int     `json:"procs"`
	Sessions           int     `json:"sessions"`
	ElapsedNS          int64   `json:"elapsed_ns"`
	Commits            int64   `json:"commits"`
	Conflicts          int64   `json:"conflicts"`
	Retries            int64   `json:"retries"`
	TxsPerSec          float64 `json:"txs_per_sec"`
	P50CommitLatencyNS float64 `json:"p50_commit_latency_ns"`
	P99CommitLatencyNS float64 `json:"p99_commit_latency_ns"`

	// Reps is the number of repetitions this point is the median of
	// (absent or 1: a single run). Min/MaxTxsPerSec bound the spread
	// across the repetitions.
	Reps         int     `json:"reps,omitempty"`
	MinTxsPerSec float64 `json:"min_txs_per_sec,omitempty"`
	MaxTxsPerSec float64 `json:"max_txs_per_sec,omitempty"`

	// GroupCommit is the point's batch accounting (the recorded
	// repetition's registry); absent when no batches executed.
	GroupCommit *GroupCommitStats `json:"group_commit,omitempty"`
}

// GroupCommitStats is the batch-size distribution of the SI
// group-commit sequencer for one run, read from the
// engine_commit_batch_* series: how many union lock windows (batches)
// the run's writing commits collapsed into, how the solo fall-out
// path was used, and the shape of the batch-size histogram.
type GroupCommitStats struct {
	// Batches is the number of executed batches — each one lock
	// window, one WAL record group with a single fsync, and one
	// publish advance, however many members it carried.
	Batches int64 `json:"batches"`
	// BatchedCommits is the total number of commit requests decided
	// inside batches (batch members); BatchedCommits/Batches is the
	// mean batch size.
	BatchedCommits int64 `json:"batched_commits"`
	// SoloCommits counts requests that fell out to the solo path
	// (write set overlapped a forming batch, or the sequencer was
	// disabled).
	SoloCommits  int64   `json:"solo_commits"`
	P50BatchSize float64 `json:"p50_batch_size"`
	P99BatchSize float64 `json:"p99_batch_size"`
}

// CheckerBench is a hand-recorded result of
// `go test -bench Search ./internal/check`: the seed clone-based
// search versus the incremental core at 1, 2 and 4 workers over the
// same corpus and budget, in nanoseconds per corpus sweep.
type CheckerBench struct {
	Source                  string  `json:"source"`
	Corpus                  string  `json:"corpus"`
	CPUs                    int     `json:"cpus"`
	SeedCloneNSPerSweep     int64   `json:"seed_clone_ns_per_sweep"`
	IncrementalP1NSPerSweep int64   `json:"incremental_p1_ns_per_sweep"`
	IncrementalP2NSPerSweep int64   `json:"incremental_p2_ns_per_sweep"`
	IncrementalP4NSPerSweep int64   `json:"incremental_p4_ns_per_sweep"`
	SpeedupP1VsSeed         float64 `json:"speedup_p1_vs_seed"`
	Note                    string  `json:"note,omitempty"`
}

// Entry is one ledger line: a report plus the provenance needed to
// interpret it later (which commit, which host, which settings).
type Entry struct {
	Schema string `json:"schema"`
	// Time is the run's wall-clock completion time, RFC3339.
	Time string `json:"time"`
	// Tool names the emitting command ("sibench").
	Tool string `json:"tool"`
	// GitRev is the repository HEAD at run time (empty when the run
	// happened outside a git checkout or git was unavailable);
	// GitDirty marks uncommitted changes.
	GitRev   string `json:"git_rev,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
	// Host is the host fingerprint: hostname/GOOS/GOARCH/ncpu — enough
	// to tell apart runs from different machines sharing one ledger.
	Host       string `json:"host"`
	GoVersion  string `json:"go_version"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Args echoes the command line that produced the run.
	Args []string `json:"args,omitempty"`
	// Report is the run's bench report.
	Report BenchReport `json:"report"`
}

// NewEntry stamps a report with the current time and host/git
// provenance. args is the producing command line (flag arguments).
func NewEntry(tool string, args []string, rep BenchReport) Entry {
	host, _ := os.Hostname()
	rev, dirty := GitRev(".")
	return Entry{
		Schema:     EntrySchema,
		Time:       time.Now().UTC().Format(time.RFC3339),
		Tool:       tool,
		GitRev:     rev,
		GitDirty:   dirty,
		Host:       fmt.Sprintf("%s/%s/%s/%d", host, runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Args:       args,
		Report:     rep,
	}
}

// GitRev returns the git HEAD revision of dir and whether the working
// tree is dirty. Both degrade to zero values when git is unavailable
// or dir is not a checkout — provenance is best-effort, never fatal.
func GitRev(dir string) (rev string, dirty bool) {
	out, err := gitOutput(dir, "rev-parse", "HEAD")
	if err != nil {
		return "", false
	}
	rev = strings.TrimSpace(out)
	status, err := gitOutput(dir, "status", "--porcelain")
	if err == nil && strings.TrimSpace(status) != "" {
		dirty = true
	}
	return rev, dirty
}

func gitOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	if err := cmd.Run(); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Append writes e as one NDJSON line at the end of path, creating the
// file if needed. The line is written with a single O_APPEND write, so
// concurrent appenders from separate processes interleave whole lines.
func Append(path string, e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("ledger: appending to %s: %w", path, err)
	}
	return f.Close()
}

// Read loads every entry of a ledger file, oldest first. Blank lines
// are skipped; a malformed line is an error naming its number.
func Read(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	var out []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("ledger: %s line %d: %w", path, line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: reading %s: %w", path, err)
	}
	return out, nil
}

// LoadBaseline reads a comparison baseline from path, which may be
// either a ledger NDJSON file (the newest entry matching the given
// engine, workload and mode wins, falling back to the newest entry
// overall) or a single bench-report JSON document like
// BENCH_sibench.json. mode is "" for in-process runs, "network" for
// sibench -addr runs — the two are never comparable, so a ledger
// shared between both always gates against its own kind. The returned
// string describes the chosen baseline for reporting.
func LoadBaseline(path, engine, workload, mode string) (BenchReport, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, "", fmt.Errorf("ledger: %w", err)
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return BenchReport{}, "", fmt.Errorf("ledger: %s is empty", path)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	if err := dec.Decode(&probe); err != nil {
		return BenchReport{}, "", fmt.Errorf("ledger: %s: %w", path, err)
	}
	if probe.Schema != EntrySchema {
		// A single bench-report document (e.g. the committed
		// BENCH_sibench.json artifact).
		var rep BenchReport
		if err := json.Unmarshal(trimmed, &rep); err != nil {
			return BenchReport{}, "", fmt.Errorf("ledger: %s: %w", path, err)
		}
		return rep, fmt.Sprintf("%s (bench report)", path), nil
	}
	entries, err := Read(path)
	if err != nil {
		return BenchReport{}, "", err
	}
	if len(entries) == 0 {
		return BenchReport{}, "", fmt.Errorf("ledger: %s has no entries", path)
	}
	chosen := entries[len(entries)-1]
	for i := len(entries) - 1; i >= 0; i-- {
		r := entries[i].Report
		if r.Engine == engine && r.Workload == workload && r.Mode == mode {
			chosen = entries[i]
			break
		}
	}
	desc := fmt.Sprintf("%s (ledger entry %s", path, chosen.Time)
	if chosen.GitRev != "" {
		rev := chosen.GitRev
		if len(rev) > 12 {
			rev = rev[:12]
		}
		desc += " @ " + rev
	}
	desc += ")"
	return chosen.Report, desc, nil
}
