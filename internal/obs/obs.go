// Package obs is the observability substrate of the module: counters,
// gauges and latency histograms behind a small registry, a lightweight
// phase tracer, and Prometheus-text / JSON exporters.
//
// The design goals, in order:
//
//  1. Allocation-free hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on pre-registered
//     series; registration (which allocates and takes a lock) happens
//     once, after which callers hold the series pointer.
//  2. Safe under heavy concurrency. All mutation is atomic; the
//     registry lock is taken only at registration and export time.
//  3. Nil-tolerant. Every method on a nil *Counter, *Gauge,
//     *Histogram or *Tracer is a no-op, so instrumented code needs no
//     "is observability enabled?" branches.
//
// Histograms use fixed log-scale (power-of-two) buckets: a value v ≥ 0
// lands in bucket bits.Len64(v), i.e. bucket i covers [2^(i-1), 2^i).
// This gives full int64 range with 64 fixed buckets, no configuration,
// and constant-time observation — the same trick HdrHistogram and the
// Prometheus native histograms build on.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric series (for example
// engine="SI" or phase="cycle-search").
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets is fixed: bucket i holds values v with bits.Len64(v) == i,
// so bucket 0 is exactly {0} and bucket 63 covers [2^62, 2^63).
const numBuckets = 64

// Histogram is a fixed log-scale (power-of-two bucket) histogram of
// non-negative int64 observations. Observation is one atomic add per
// bucket/sum/count — allocation-free and lock-free. Each bucket can
// additionally carry one exemplar (the latest traced observation that
// landed in it), linking a latency bucket to a resolvable trace ID.
type Histogram struct {
	buckets   [numBuckets]atomic.Int64
	exemplars [numBuckets]atomic.Pointer[Exemplar]
	sum       atomic.Int64
	count     atomic.Int64
}

// Exemplar is one concrete traced observation attached to a histogram
// bucket: the observed value and the trace ID that produced it.
type Exemplar struct {
	Value   int64
	TraceID uint64
	UnixNS  int64
}

// Observe records v. Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records v like Observe and, when traceID is non-zero,
// replaces the containing bucket's exemplar with (v, traceID). Unlike
// Observe it allocates (one Exemplar per call) — callers use it only on
// the traced path, keeping the untraced hot path allocation-free.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != 0 {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, UnixNS: time.Now().UnixNano()})
	}
}

// BucketExemplar returns bucket i's exemplar, or nil when the bucket
// has none (or on a nil histogram / out-of-range index).
func (h *Histogram) BucketExemplar(i int) *Exemplar {
	if h == nil || i < 0 || i >= numBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketUpperBound returns the inclusive upper bound of bucket i:
// 0 for bucket 0, 2^i − 1 otherwise.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1<<uint(i) - 1
}

// BucketLowerBound returns the smallest value landing in bucket i:
// 0 for bucket 0, 2^(i-1) otherwise. Together with BucketUpperBound it
// gives external consumers the exact bucket edges, so quantiles can be
// re-derived from an exported snapshot (empty buckets are elided in
// the JSON export, which makes the lower edge non-derivable from the
// neighbouring entries alone).
func BucketLowerBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observations,
// linearly interpolated within the containing bucket. It returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+float64(n) >= rank {
			lo, hi := float64(BucketLowerBound(i)), float64(BucketUpperBound(i))
			if n == 0 || hi <= lo {
				return hi
			}
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += float64(n)
	}
	return float64(BucketUpperBound(numBuckets - 1))
}

// snapshotBuckets returns the per-bucket counts.
func (h *Histogram) snapshotBuckets() [numBuckets]int64 {
	var out [numBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metricKind discriminates the registry's series types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) pair.
type series struct {
	name   string
	labels []Label
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds named metric series. The zero value is not usable;
// create with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

// Default is a process-wide registry for callers that do not need
// isolation (the CLIs share it across their phases).
var Default = NewRegistry()

// seriesKey is the canonical identity of a series: name plus labels in
// the order given (callers must use a consistent label order, as the
// instrumentation sites in this module do).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// lookup registers or fetches a series, enforcing kind consistency.
func (r *Registry) lookup(name string, kind metricKind, labels []Label) *series {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: series %s already registered as %v, requested as %v", key, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labels: append([]Label(nil), labels...), kind: kind}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.histogram = &Histogram{}
	}
	r.byKey[key] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or fetches) the counter series with the given
// name and labels. Safe to call repeatedly; the same pointer is
// returned each time. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, labels).counter
}

// Gauge registers (or fetches) the gauge series. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram registers (or fetches) the histogram series. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, labels).histogram
}

// sortedSeries returns the series sorted by (name, label key) for
// deterministic export.
func (r *Registry) sortedSeries() []*series {
	r.mu.Lock()
	out := make([]*series, len(r.series))
	copy(out, r.series)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey(out[i].name, out[i].labels) < seriesKey(out[j].name, out[j].labels)
	})
	return out
}
