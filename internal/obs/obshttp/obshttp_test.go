package obshttp

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// demoRegistry builds a small deterministic registry so scrape output
// is byte-stable for golden comparison.
func demoRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("demo_commits_total", obs.L("engine", "SI")).Add(42)
	reg.Gauge("demo_sessions").Set(4)
	h := reg.Histogram("demo_latency_ns")
	for _, v := range []int64{0, 1, 5, 100, 1000} {
		h.Observe(v)
	}
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s mismatch:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestMetricsGolden pins the /metrics and /metrics.json scrape formats
// (application registry followed by the server's own sse_* series,
// histogram bucket edges included in JSON).
func TestMetricsGolden(t *testing.T) {
	s := New(Config{Name: "golden", Registry: demoRegistry()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkGolden(t, "metrics.golden", body)

	code, body = get(t, ts, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	checkGolden(t, "metrics_json.golden", body)

	var metrics []obs.JSONMetric
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	foundHist := false
	for _, m := range metrics {
		if m.Name == "demo_latency_ns" {
			foundHist = true
			if len(m.Buckets) == 0 {
				t.Fatal("histogram JSON has no buckets")
			}
			for _, b := range m.Buckets {
				if b.UpperBound < b.LowerBound {
					t.Errorf("bucket edges inverted: ge=%d le=%d", b.LowerBound, b.UpperBound)
				}
			}
		}
	}
	if !foundHist {
		t.Error("histogram series missing from /metrics.json")
	}
}

// TestHealthzAndMissingBackends covers the degraded configuration: no
// recorder means /events and /timeline are 404 while /healthz and the
// scrapes still work.
func TestHealthzAndMissingBackends(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz does not parse: %v", err)
	}
	if h.Status != "ok" || h.Name != "sian" {
		t.Errorf("healthz = %+v", h)
	}

	for _, path := range []string{"/events", "/timeline"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("GET %s without recorder: status %d, want 404", path, code)
		}
	}
	if code, _ := get(t, ts, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	}
}

// sseClient tails an SSE endpoint, parsing frames into (event, data)
// pairs until the body closes or the caller cancels via resp.Body.
type sseFrameData struct {
	event string
	id    string
	data  string
}

func readFrames(t *testing.T, body io.Reader, frames chan<- sseFrameData) {
	t.Helper()
	sc := bufio.NewScanner(body)
	var cur sseFrameData
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.data != "" {
				frames <- cur
			}
			cur = sseFrameData{}
		}
	}
	close(frames)
}

// TestEventsSSEReplayAndLive exercises the /events contract: a client
// connecting with ?replay=all first receives the retained ring tail,
// then live events as they are recorded, each framed with the event
// kind and global sequence number.
func TestEventsSSEReplayAndLive(t *testing.T) {
	rec := eventlog.NewRecorder(0)
	s := New(Config{Recorder: rec, KeepAlive: 50 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rec.Record(eventlog.Event{Kind: eventlog.Begin, Session: "s1", TxID: "t1"})
	rec.Record(eventlog.Event{Kind: eventlog.Commit, Session: "s1", TxID: "t1"})

	resp, err := ts.Client().Get(ts.URL + "/events?replay=all")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := make(chan sseFrameData, 16)
	go readFrames(t, resp.Body, frames)

	want := []string{"begin", "commit"}
	for i, kind := range want {
		select {
		case f := <-frames:
			if f.event != kind {
				t.Fatalf("replay frame %d: event %q, want %q", i, f.event, kind)
			}
			if !strings.Contains(f.data, `"tx":"t1"`) {
				t.Errorf("frame data missing tx: %s", f.data)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for replay frames")
		}
	}

	// Live tail: a new event recorded after connect must arrive.
	rec.Record(eventlog.Event{Kind: eventlog.Write, Session: "s2", TxID: "t2", Obj: "x", Val: 7})
	select {
	case f := <-frames:
		if f.event != "write" || !strings.Contains(f.data, `"obj":"x"`) {
			t.Fatalf("live frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for live frame")
	}
}

// TestVerdictsSSE checks PublishVerdict fan-out: frames carry the
// verdict JSON including the violation explanation.
func TestVerdictsSSE(t *testing.T) {
	s := New(Config{KeepAlive: 50 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := make(chan sseFrameData, 16)
	go readFrames(t, resp.Body, frames)

	// Wait until the subscriber is registered before publishing.
	deadline := time.Now().Add(5 * time.Second)
	for s.verdicts.clients.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("verdict client never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.PublishVerdict(VerdictEvent{
		Seq: 9, Txn: "t9", Model: "SI", Member: false, Checked: true,
		Violation: &ViolationEvent{Axiom: "NoConflict", Cycle: "t1 -WW-> t9 -RW-> t1", Definitive: true},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-frames:
		if f.event != "verdict" || f.id != "9" {
			t.Fatalf("frame = %+v", f)
		}
		var v VerdictEvent
		if err := json.Unmarshal([]byte(f.data), &v); err != nil {
			t.Fatalf("verdict does not parse: %v", err)
		}
		if v.Member || v.Violation == nil || v.Violation.Axiom != "NoConflict" {
			t.Errorf("verdict = %+v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for verdict frame")
	}
}

// TestSlowConsumerDropAccounting pins the bounded fan-out contract at
// the stream layer: an undrained subscriber with a one-frame buffer
// loses frames instead of blocking the publisher, and the losses are
// counted per subscriber and rolled into the stream totals.
func TestSlowConsumerDropAccounting(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	sub := s.verdicts.subscribe(1)
	for i := 0; i < 5; i++ {
		s.verdicts.publish(sseFrame{event: "verdict", data: []byte(`{}`)})
	}
	if got := sub.dropped.Load(); got != 4 {
		t.Errorf("dropped = %d, want 4 (buffer holds 1 of 5)", got)
	}
	if got := s.verdicts.published.Value(); got != 5 {
		t.Errorf("published = %d, want 5", got)
	}
	s.verdicts.unsubscribe(sub)
	if got := s.verdicts.dropped.Value(); got != 4 {
		t.Errorf("stream dropped total = %d, want 4", got)
	}
	if got := s.verdicts.clients.Value(); got != 0 {
		t.Errorf("clients = %d, want 0 after unsubscribe", got)
	}
}

// TestEventsSSEConcurrentClients runs several clients tailing /events
// while a writer records concurrently — the -race acceptance test for
// the subscription fan-out path.
func TestEventsSSEConcurrentClients(t *testing.T) {
	rec := eventlog.NewRecorder(0)
	s := New(Config{Recorder: rec, KeepAlive: 20 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 4
	const events = 200
	var wg sync.WaitGroup
	received := make([]int, clients)
	for c := 0; c < clients; c++ {
		resp, err := ts.Client().Get(ts.URL + "/events?buf=1024")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		wg.Add(1)
		go func(c int, body io.Reader) {
			defer wg.Done()
			frames := make(chan sseFrameData, events)
			go readFrames(t, body, frames)
			for f := range frames {
				if f.event == "drops" {
					continue
				}
				received[c]++
				if received[c] == events {
					return
				}
			}
		}(c, resp.Body)
	}

	// Let every client's subscription register before the burst.
	deadline := time.Now().Add(5 * time.Second)
	for s.events.clients.Value() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients registered", s.events.clients.Value(), clients)
		}
		time.Sleep(time.Millisecond)
	}

	go func() {
		for i := 0; i < events; i++ {
			rec.Record(eventlog.Event{
				Kind: eventlog.Write, Session: fmt.Sprintf("s%d", i%4),
				TxID: fmt.Sprintf("t%d", i), Obj: "x", Val: model.Value(i),
			})
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("clients stalled; received = %v", received)
	}
	for c, n := range received {
		if n != events {
			t.Errorf("client %d received %d/%d events", c, n, events)
		}
	}
}

// TestCloseUnblocksStreams ensures Close terminates live SSE handlers
// rather than leaking them.
func TestCloseUnblocksStreams(t *testing.T) {
	rec := eventlog.NewRecorder(0)
	s := New(Config{Recorder: rec, KeepAlive: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.events.clients.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	readDone := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body)
		close(readDone)
	}()
	select {
	case <-readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after Close")
	}
}

// TestServeAndAddr covers the standalone listener path used by the
// -serve flag.
func TestServeAndAddr(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Skipf("listen: %v", err) // sandboxed environments may forbid sockets
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("Addr empty after Serve")
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
