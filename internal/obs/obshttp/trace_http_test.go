package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sian/internal/model"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/txtrace"
)

// demoTxTracer builds a tracer holding two deterministic finished
// traces (fixed IDs, timestamps and spans) so endpoint output is
// byte-stable for golden comparison.
func demoTxTracer() *txtrace.Tracer {
	tt := txtrace.New(txtrace.Options{Start: 0x10})
	base := int64(1_700_000_000_000_000_000)
	tt.Ingest(&txtrace.TraceData{
		TraceID: txtrace.FormatID(0x10), Session: "wire/1", TxID: "w3",
		Outcome: txtrace.OutcomeCommit, LSN: 7,
		Start: base, End: base + 5_000_000, Duration: 5_000_000,
		Spans: []txtrace.Span{
			{Stage: txtrace.StageBeginWait, Start: base, End: base + 1_000},
			{Stage: txtrace.StageReads, Start: base + 1_000, End: base + 800_000},
			{Stage: txtrace.StageLockWait, Start: base + 800_000, End: base + 810_000},
			{Stage: txtrace.StageValidate, Start: base + 810_000, End: base + 820_000},
			{Stage: txtrace.StageInstall, Start: base + 820_000, End: base + 840_000},
			{Stage: txtrace.StageWALAppend, Start: base + 840_000, End: base + 900_000,
				Attrs: map[string]int64{"lsn": 7}},
			{Stage: txtrace.StageFsyncWait, Start: base + 900_000, End: base + 4_700_000,
				Attrs: map[string]int64{"group_gap": 3, "lsn": 7, "synced_at_enter": 4}},
			{Stage: txtrace.StagePublish, Start: base + 4_700_000, End: base + 4_900_000},
			{Stage: txtrace.StageAck, Start: base + 4_900_000, End: base + 5_000_000},
		},
	})
	tt.Ingest(&txtrace.TraceData{
		TraceID: txtrace.FormatID(0x11), Session: "wire/2", TxID: "w4",
		Outcome: txtrace.OutcomeConflict,
		Start:   base, End: base + 400_000, Duration: 400_000,
		Spans: []txtrace.Span{
			{Stage: txtrace.StageValidate, Start: base, End: base + 400_000},
		},
	})
	return tt
}

// TestTraceEndpointGolden pins the /trace/{id} JSON schema — the span
// tree consumed by CI, scripts and humans alike.
func TestTraceEndpointGolden(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), TxTracer: demoTxTracer()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/trace/0000000000000010")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d: %s", code, body)
	}
	checkGolden(t, "trace.golden", body)

	// Schema invariants beyond the bytes: ID round-trips through the
	// documented hex form and spans carry absolute nanosecond stamps.
	var td txtrace.TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if _, err := txtrace.ParseID(td.TraceID); err != nil {
		t.Errorf("trace_id %q does not parse: %v", td.TraceID, err)
	}
	if len(td.Spans) != 9 || td.Outcome != txtrace.OutcomeCommit {
		t.Errorf("trace: %d spans, outcome %s", len(td.Spans), td.Outcome)
	}

	// Leading zeros are optional in the route (ParseID semantics).
	if code, _ := get(t, ts, "/trace/10"); code != http.StatusOK {
		t.Errorf("/trace/10 (no leading zeros) status %d", code)
	}
}

// TestSlowEndpoint covers threshold parsing (Go duration and bare
// nanoseconds), ordering and limits.
func TestSlowEndpoint(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), TxTracer: demoTxTracer()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/slow")
	if code != http.StatusOK {
		t.Fatalf("/slow status %d: %s", code, body)
	}
	var doc struct {
		ThresholdNS int64                `json:"threshold_ns"`
		Count       int                  `json:"count"`
		Traces      []*txtrace.TraceData `json:"traces"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("slow does not parse: %v", err)
	}
	if doc.Count != 2 || len(doc.Traces) != 2 {
		t.Fatalf("slow: %+v", doc)
	}
	// Slowest first.
	if doc.Traces[0].Duration < doc.Traces[1].Duration {
		t.Error("slow log not sorted slowest-first")
	}

	for _, q := range []string{"?threshold=1ms", "?threshold=1000000"} {
		_, body := get(t, ts, "/slow"+q)
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("slow%s: %v", q, err)
		}
		if doc.ThresholdNS != 1_000_000 || doc.Count != 1 {
			t.Errorf("slow%s: threshold %d, count %d", q, doc.ThresholdNS, doc.Count)
		}
	}
	if _, body := get(t, ts, "/slow?limit=1"); true {
		if err := json.Unmarshal(body, &doc); err != nil || doc.Count != 1 {
			t.Errorf("slow?limit=1: count %d, %v", doc.Count, err)
		}
	}
	if code, _ := get(t, ts, "/slow?threshold=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus threshold status %d", code)
	}
	if code, _ := get(t, ts, "/slow?limit=-1"); code != http.StatusBadRequest {
		t.Errorf("negative limit status %d", code)
	}
}

// TestTraceEndpointsOff pins the tracing-off and error responses, and
// that SetTxTracer attaches tracing to a running plane.
func TestTraceEndpointsOff(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/trace/0000000000000010", "/slow"} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound || !strings.Contains(string(body), "-trace-txns") {
			t.Errorf("%s without tracer: %d %q (want 404 pointing at -trace-txns)", path, code, body)
		}
	}

	s.SetTxTracer(demoTxTracer())
	if code, _ := get(t, ts, "/trace/0000000000000010"); code != http.StatusOK {
		t.Errorf("after SetTxTracer: status %d", code)
	}
	if code, _ := get(t, ts, "/trace/not-hex"); code != http.StatusBadRequest {
		t.Errorf("bad id status %d", code)
	}
	if code, _ := get(t, ts, "/trace/00000000000000ff"); code != http.StatusNotFound {
		t.Errorf("unknown id status %d", code)
	}

	// /healthz grows the tracer's lifetime counters once attached.
	_, body := get(t, ts, "/healthz")
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["traces_started"] != float64(2) || doc["traces_finished"] != float64(2) {
		t.Errorf("healthz trace counters: started=%v finished=%v", doc["traces_started"], doc["traces_finished"])
	}
}

// TestEventlogDropAccounting forces flight-recorder drops through a
// tiny ring and checks they surface on every plane: the Prometheus
// scrape, the JSON scrape and /healthz.
func TestEventlogDropAccounting(t *testing.T) {
	rec := eventlog.NewRecorder(1) // one event per shard: guaranteed overwrites
	s := New(Config{Registry: obs.NewRegistry(), Recorder: rec})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 64; i++ {
		rec.Record(eventlog.Event{Kind: eventlog.Write, Session: "s1", TxID: fmt.Sprintf("t%d", i), Obj: "x", Val: model.Value(i)})
	}
	if rec.Dropped() == 0 {
		t.Fatal("ring did not drop despite capacity 1")
	}

	_, body := get(t, ts, "/metrics")
	text := string(body)
	if !strings.Contains(text, "# TYPE eventlog_dropped_total counter") {
		t.Errorf("/metrics missing eventlog_dropped_total type line:\n%s", text)
	}
	var recorded, dropped, retained int64
	for _, line := range strings.Split(text, "\n") {
		fmt.Sscanf(line, "eventlog_recorded_total %d", &recorded)
		fmt.Sscanf(line, "eventlog_dropped_total %d", &dropped)
		fmt.Sscanf(line, "eventlog_retained_events %d", &retained)
	}
	if recorded != 64 || dropped == 0 || retained == 0 || retained+dropped != recorded {
		t.Errorf("/metrics accounting: recorded=%d dropped=%d retained=%d", recorded, dropped, retained)
	}

	_, body = get(t, ts, "/metrics.json")
	var metrics []obs.JSONMetric
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range metrics {
		if strings.HasPrefix(m.Name, "eventlog_") {
			found[m.Name] = true
			if m.Name == "eventlog_dropped_total" && (m.Value == nil || *m.Value == 0) {
				t.Error("eventlog_dropped_total is zero in /metrics.json")
			}
		}
	}
	for _, name := range []string{"eventlog_recorded_total", "eventlog_dropped_total", "eventlog_retained_events"} {
		if !found[name] {
			t.Errorf("/metrics.json missing %s", name)
		}
	}

	_, body = get(t, ts, "/healthz")
	var h health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.EventlogDropped == 0 || h.EventlogDropped != h.RingOverwrites {
		t.Errorf("healthz: eventlog_dropped=%d ring_overwrites=%d", h.EventlogDropped, h.RingOverwrites)
	}
}
