package obshttp

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/histio"
	"sian/internal/obs"
	"sian/internal/obs/eventlog"
)

// VerdictEvent is the wire form of one online-monitor verdict on the
// /verdicts stream: the per-commit answer (member / checked) plus, on
// an anomaly, the violation with its witness-cycle explanation. The
// producing CLI (cmd/simon) converts internal/monitor verdicts into
// this shape so the plane itself stays decoupled from the checker.
type VerdictEvent struct {
	// Seq is the event sequence number of the commit the verdict is
	// about (0 for the end-of-stream summary).
	Seq int64 `json:"seq"`
	// Txn is the committing transaction's id ("(end of stream)" for
	// the final summary verdict).
	Txn string `json:"txn"`
	// Model names the consistency model certified against.
	Model string `json:"model"`
	// Member reports whether the live window is still allowed.
	Member bool `json:"member"`
	// Checked marks verdicts that needed a slow-path certification.
	Checked bool `json:"checked,omitempty"`
	// Window and Pending snapshot the monitor after the commit.
	Window  int `json:"window"`
	Pending int `json:"pending"`
	// Violation carries the anomaly when this commit revealed one.
	Violation *ViolationEvent `json:"violation,omitempty"`
}

// ViolationEvent explains one detected anomaly: the violated axiom and
// the witnessing forbidden cycle, as rendered by the checker.
type ViolationEvent struct {
	Axiom  string `json:"axiom,omitempty"`
	Cycle  string `json:"cycle,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Definitive reports whether the verdict necessarily extends to
	// the full stream (false after a window collapse discarded
	// context; see DESIGN.md §11).
	Definitive bool `json:"definitive"`
}

// sseFrame is one Server-Sent Events message.
type sseFrame struct {
	event string
	id    string
	data  []byte
}

// sseSub is one connected stream client: a bounded frame buffer plus a
// count of frames lost to it being full.
type sseSub struct {
	ch      chan sseFrame
	dropped atomic.Int64
}

// sseStream is a bounded fan-out of frames to any number of clients,
// with per-client drop accounting surfaced both in-stream and in the
// server's self registry.
type sseStream struct {
	mu        sync.RWMutex
	subs      map[*sseSub]struct{}
	clients   *obs.Gauge
	dropped   *obs.Counter
	published *obs.Counter
}

func newSSEStream(self *obs.Registry, name string) *sseStream {
	lbl := obs.L("stream", name)
	return &sseStream{
		subs:      make(map[*sseSub]struct{}),
		clients:   self.Gauge("sse_clients", lbl),
		dropped:   self.Counter("sse_dropped_total", lbl),
		published: self.Counter("sse_published_total", lbl),
	}
}

// publish delivers f to every subscriber without blocking; full
// buffers drop the frame and bump the subscriber's counter.
func (st *sseStream) publish(f sseFrame) {
	st.published.Inc()
	st.mu.RLock()
	for sub := range st.subs {
		select {
		case sub.ch <- f:
		default:
			sub.dropped.Add(1)
		}
	}
	st.mu.RUnlock()
}

func (st *sseStream) subscribe(buf int) *sseSub {
	sub := &sseSub{ch: make(chan sseFrame, buf)}
	st.mu.Lock()
	st.subs[sub] = struct{}{}
	st.mu.Unlock()
	st.clients.Add(1)
	return sub
}

func (st *sseStream) unsubscribe(sub *sseSub) {
	st.mu.Lock()
	delete(st.subs, sub)
	st.mu.Unlock()
	st.clients.Add(-1)
	st.dropped.Add(sub.dropped.Load())
}

// clientBuffer parses the ?buf= query parameter: the client's frame
// buffer capacity, clamped to [1, 65536], default 256.
func clientBuffer(r *http.Request) int {
	buf := 256
	if v := r.URL.Query().Get("buf"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			buf = n
		}
	}
	if buf < 1 {
		buf = 1
	}
	if buf > 1<<16 {
		buf = 1 << 16
	}
	return buf
}

// sseWriter pairs the response writer with its flusher and tracks the
// last announced drop total so slow-consumer losses are surfaced
// in-stream exactly once per increase.
type sseWriter struct {
	w         http.ResponseWriter
	fl        http.Flusher
	announced int64
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusNotImplemented)
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseWriter{w: w, fl: fl}, true
}

// frame writes one SSE message and flushes it. SSE data may not
// contain raw newlines; every payload here is compact JSON, which
// cannot.
func (sw *sseWriter) frame(f sseFrame) error {
	if f.event != "" {
		if _, err := fmt.Fprintf(sw.w, "event: %s\n", f.event); err != nil {
			return err
		}
	}
	if f.id != "" {
		if _, err := fmt.Fprintf(sw.w, "id: %s\n", f.id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(sw.w, "data: %s\n\n", f.data); err != nil {
		return err
	}
	sw.fl.Flush()
	return nil
}

// keepAlive writes an SSE comment so idle streams stay visibly live.
func (sw *sseWriter) keepAlive() error {
	if _, err := fmt.Fprint(sw.w, ": keep-alive\n\n"); err != nil {
		return err
	}
	sw.fl.Flush()
	return nil
}

// announceDrops emits a "drops" frame when the subscriber's cumulative
// loss count has grown since the last announcement, so a tailing
// client knows its view has gaps (mirroring the flight recorder's own
// ring-overwrite accounting).
func (sw *sseWriter) announceDrops(total int64) error {
	if total == sw.announced {
		return nil
	}
	sw.announced = total
	return sw.frame(sseFrame{event: "drops", data: []byte(fmt.Sprintf(`{"dropped":%d}`, total))})
}

// handleEvents tails the flight recorder as SSE. Framing: each
// transactional event is one message with `event:` set to the event
// kind (begin/read/write/commit/abort/conflict), `id:` to its global
// sequence number, and `data:` to its NDJSON object (the same wire
// form sibench -record files use, so `curl -N .../events | sed -n
// 's/^data: //p'` reconstructs a simon-consumable stream). A ?replay=N
// query replays up to N retained ring events before going live
// (replay=all for the whole ring); ?buf=N sizes the client's frame
// buffer. Slow consumers lose frames instead of blocking the engine;
// losses are announced with an `event: drops` message carrying the
// cumulative count.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.recorder.Load()
	if rec == nil {
		http.Error(w, "no flight recorder attached (run with -record, -timeline or -serve on a recording command)", http.StatusNotFound)
		return
	}
	sw, ok := newSSEWriter(w)
	if !ok {
		return
	}

	sub := rec.Subscribe(clientBuffer(r))
	defer sub.Close()
	ssub := s.events.subscribe(0) // registered for client/drop accounting only
	defer s.events.unsubscribe(ssub)

	// Replay the retained tail before going live; the subscription was
	// opened first, so events recorded in between are deduplicated by
	// sequence number.
	var lastSeq int64
	if spec := r.URL.Query().Get("replay"); spec != "" {
		replay := 0
		if spec == "all" {
			replay = rec.Len()
		} else if n, err := strconv.Atoi(spec); err == nil && n > 0 {
			replay = n
		}
		if replay > 0 {
			events := rec.Events()
			if len(events) > replay {
				events = events[len(events)-replay:]
			}
			for _, ev := range events {
				if err := s.writeEventFrame(sw, ev); err != nil {
					return
				}
				lastSeq = ev.Seq
			}
		}
	}

	ticker := time.NewTicker(s.keepAlive)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return
			}
			if ev.Seq <= lastSeq {
				continue
			}
			lastSeq = ev.Seq
			// Mirror the recorder-subscription drops into the stream
			// accounting before the next payload frame.
			ssub.dropped.Store(sub.Dropped())
			if err := sw.announceDrops(sub.Dropped()); err != nil {
				return
			}
			if err := s.writeEventFrame(sw, ev); err != nil {
				return
			}
		case <-ticker.C:
			ssub.dropped.Store(sub.Dropped())
			if err := sw.announceDrops(sub.Dropped()); err != nil {
				return
			}
			if err := sw.keepAlive(); err != nil {
				return
			}
		case <-ctx.Done():
			return
		case <-s.done:
			return
		}
	}
}

func (s *Server) writeEventFrame(sw *sseWriter, ev eventlog.Event) error {
	data, err := histio.MarshalEvent(ev)
	if err != nil {
		return err
	}
	return sw.frame(sseFrame{event: ev.Kind.String(), id: strconv.FormatInt(ev.Seq, 10), data: data})
}

// handleVerdicts streams monitor verdicts published with
// PublishVerdict: one `event: verdict` message per verdict, `id:` set
// to the triggering commit's sequence number, `data:` the VerdictEvent
// JSON. Framing and slow-consumer semantics match /events.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	sw, ok := newSSEWriter(w)
	if !ok {
		return
	}
	sub := s.verdicts.subscribe(clientBuffer(r))
	defer s.verdicts.unsubscribe(sub)

	ticker := time.NewTicker(s.keepAlive)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case f := <-sub.ch:
			if err := sw.announceDrops(sub.dropped.Load()); err != nil {
				return
			}
			if err := sw.frame(f); err != nil {
				return
			}
		case <-ticker.C:
			if err := sw.announceDrops(sub.dropped.Load()); err != nil {
				return
			}
			if err := sw.keepAlive(); err != nil {
				return
			}
		case <-ctx.Done():
			return
		case <-s.done:
			return
		}
	}
}
