// Package obshttp is the module's live observability plane: an
// embeddable, stdlib-only net/http server that exposes a running
// process's metrics registry, flight recorder and verdict stream while
// the work is still in flight. The CLIs mount it behind the shared
// -serve flag (internal/cliutil), and it is the wire-facing substrate
// a future networked server (cmd/siserve) will reuse for its health
// and telemetry endpoints.
//
// Endpoints:
//
//	GET /metrics       Prometheus text exposition of the current
//	                   registry plus the server's own sse_* series.
//	GET /metrics.json  The same snapshot as a JSON array (internal/obs
//	                   JSONMetric schema, histogram bucket edges
//	                   included).
//	GET /healthz       Liveness JSON: status, component name, uptime,
//	                   flight-recorder and SSE stream counters.
//	GET /trace/{id}    One finished transaction's span tree (txtrace
//	                   TraceData JSON; id is the 16-hex-digit trace ID,
//	                   e.g. from a histogram exemplar or /slow).
//	GET /slow          The slow-transaction log: finished traces above
//	                   ?threshold= (a Go duration or nanosecond count),
//	                   slowest first, at most ?limit= (default: the
//	                   tracer's top-64 retention).
//	GET /events        Server-Sent Events tail of the flight recorder
//	                   (one NDJSON event per SSE data frame; see
//	                   Server.handleEvents for the framing contract).
//	GET /verdicts      Server-Sent Events stream of monitor verdicts
//	                   published via PublishVerdict.
//	GET /timeline      Chrome trace-event JSON snapshot of the
//	                   retained flight-recorder events plus tracer
//	                   phases (Perfetto-loadable).
//	GET /debug/pprof/  net/http/pprof.
//
// The registry, recorder and tracer are swappable at runtime
// (SetRegistry, SetRecorder, SetTracer) so a sweep driver that builds
// a fresh registry per point can keep one long-lived server pointed at
// the current one.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"sian/internal/obs"
	"sian/internal/obs/eventlog"
	"sian/internal/obs/txtrace"
)

// Config parameterises a Server. Every field is optional: endpoints
// whose backing component is absent respond 404 (/events, /timeline)
// or serve an empty document (/metrics).
type Config struct {
	// Name identifies the serving component in /healthz (for example
	// "sibench"). Empty means "sian".
	Name string
	// Registry is the metrics registry scraped by /metrics and
	// /metrics.json.
	Registry *obs.Registry
	// Recorder is the flight recorder tailed by /events and
	// snapshotted by /timeline.
	Recorder *eventlog.Recorder
	// Tracer contributes phase spans to /timeline.
	Tracer *obs.Tracer
	// TxTracer backs /trace/{id} and /slow. Absent (the default —
	// transaction tracing is opt-in) both endpoints respond 404.
	TxTracer *txtrace.Tracer
	// KeepAlive is the SSE keep-alive interval: how often an idle
	// stream emits a comment frame so proxies and clients can detect
	// liveness. Non-positive selects 5 seconds.
	KeepAlive time.Duration
}

// Server is the observability-plane HTTP server. Create with New,
// mount via Handler or run standalone via Serve, and stop with Close.
type Server struct {
	name      string
	keepAlive time.Duration
	start     time.Time

	registry atomic.Pointer[obs.Registry]
	recorder atomic.Pointer[eventlog.Recorder]
	tracer   atomic.Pointer[obs.Tracer]
	txtracer atomic.Pointer[txtrace.Tracer]

	// self holds the server's own metric series (SSE client gauges and
	// slow-consumer drop counters), appended to every scrape so the
	// plane observes itself with the same exporters.
	self     *obs.Registry
	events   *sseStream
	verdicts *sseStream

	// healthExtra, when set, contributes component-specific fields to
	// the /healthz document (for example siserve's WAL fsync lag and
	// recovery verdict).
	healthExtra atomic.Pointer[func() map[string]any]

	mux  *http.ServeMux
	done chan struct{}
	ln   net.Listener
	srv  *http.Server
}

// New returns an unstarted server for the given configuration.
func New(cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "sian"
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 5 * time.Second
	}
	s := &Server{
		name:      cfg.Name,
		keepAlive: cfg.KeepAlive,
		start:     time.Now(),
		self:      obs.NewRegistry(),
		done:      make(chan struct{}),
	}
	s.registry.Store(cfg.Registry)
	s.recorder.Store(cfg.Recorder)
	s.tracer.Store(cfg.Tracer)
	s.txtracer.Store(cfg.TxTracer)
	s.events = newSSEStream(s.self, "events")
	s.verdicts = newSSEStream(s.self, "verdicts")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /verdicts", s.handleVerdicts)
	mux.HandleFunc("GET /timeline", s.handleTimeline)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /slow", s.handleSlow)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// SetRegistry repoints /metrics at reg (a sweep driver's per-point
// registry, for example). Nil is allowed and serves empty documents.
func (s *Server) SetRegistry(reg *obs.Registry) { s.registry.Store(reg) }

// SetRecorder repoints /events and /timeline at rec. Streams already
// tailing the previous recorder keep it until the client reconnects.
func (s *Server) SetRecorder(rec *eventlog.Recorder) { s.recorder.Store(rec) }

// SetTracer repoints /timeline's phase-span source at tr.
func (s *Server) SetTracer(tr *obs.Tracer) { s.tracer.Store(tr) }

// SetTxTracer repoints /trace/{id} and /slow at t. Nil is allowed and
// returns both endpoints to their tracing-off 404.
func (s *Server) SetTxTracer(t *txtrace.Tracer) { s.txtracer.Store(t) }

// SetHealth registers a callback whose key/value pairs are merged into
// the /healthz document on every request, letting the embedding
// component surface its own liveness signals (WAL fsync lag, recovery
// verdict, …). Keys colliding with the built-in document are ignored.
// Nil unregisters.
func (s *Server) SetHealth(fn func() map[string]any) {
	if fn == nil {
		s.healthExtra.Store(nil)
		return
	}
	s.healthExtra.Store(&fn)
}

// Handle mounts an additional handler on the server's mux (a serving
// component's own API endpoints, for example siserve's /v1/transact).
// It must be called before Serve; the pattern syntax is
// http.ServeMux's.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// PublishVerdict fans v (marshalled once as JSON) out to every
// /verdicts subscriber. Slow consumers drop frames rather than
// blocking the caller; drops are announced in-stream and counted in
// the server's sse_dropped_total{stream="verdicts"} series.
func (s *Server) PublishVerdict(v VerdictEvent) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.verdicts.publish(sseFrame{event: "verdict", id: fmt.Sprint(v.Seq), data: payload})
	return nil
}

// Handler returns the server's root handler, for embedding into an
// existing mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve begins listening on addr (for example ":8080" or
// "127.0.0.1:0") and serves until Close. It returns once the listener
// is bound; use Addr for the bound address.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obshttp: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		_ = s.srv.Serve(ln) // ends when Close closes the listener
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Serve.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and unblocks every live SSE stream. It is
// idempotent.
func (s *Server) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	var err error
	if s.srv != nil {
		err = s.srv.Close()
	} else if s.ln != nil {
		err = s.ln.Close()
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.registry.Load().WritePrometheus(w); err != nil {
		return
	}
	_ = s.self.WritePrometheus(w)
	// Flight-recorder accounting, sampled at scrape time so drops are
	// visible on the scrape plane (not only via per-SSE-subscriber
	// `event: drops` frames).
	if rec := s.recorder.Load(); rec != nil {
		fmt.Fprintf(w, "# TYPE eventlog_recorded_total counter\neventlog_recorded_total %d\n", rec.Recorded())
		fmt.Fprintf(w, "# TYPE eventlog_dropped_total counter\neventlog_dropped_total %d\n", rec.Dropped())
		fmt.Fprintf(w, "# TYPE eventlog_retained_events gauge\neventlog_retained_events %d\n", rec.Len())
	}
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.registry.Load().Snapshot()
	snap = append(snap, s.self.Snapshot()...)
	if rec := s.recorder.Load(); rec != nil {
		snap = append(snap, recorderMetrics(rec)...)
	}
	if snap == nil {
		snap = []obs.JSONMetric{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// recorderMetrics renders the flight recorder's scrape-time counters
// in the JSON export schema.
func recorderMetrics(rec *eventlog.Recorder) []obs.JSONMetric {
	recorded, dropped, retained := rec.Recorded(), rec.Dropped(), int64(rec.Len())
	return []obs.JSONMetric{
		{Name: "eventlog_recorded_total", Kind: "counter", Value: &recorded},
		{Name: "eventlog_dropped_total", Kind: "counter", Value: &dropped},
		{Name: "eventlog_retained_events", Kind: "gauge", Value: &retained},
	}
}

// health is the /healthz document.
type health struct {
	Status   string `json:"status"`
	Name     string `json:"name"`
	UptimeNS int64  `json:"uptime_ns"`
	// Recorder counters (zero when no recorder is attached).
	// EventlogDropped duplicates RingOverwrites under the name the
	// scrape plane uses (eventlog_dropped_total), so dashboards join
	// health and metrics without a translation table.
	EventsRecorded  int64 `json:"events_recorded"`
	EventsRetained  int   `json:"events_retained"`
	RingOverwrites  int64 `json:"ring_overwrites"`
	EventlogDropped int64 `json:"eventlog_dropped"`
	// SSE stream accounting.
	EventClients    int64 `json:"event_clients"`
	EventDropped    int64 `json:"event_dropped"`
	VerdictClients  int64 `json:"verdict_clients"`
	VerdictDropped  int64 `json:"verdict_dropped"`
	VerdictsEmitted int64 `json:"verdicts_emitted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rec := s.recorder.Load()
	h := health{
		Status:          "ok",
		Name:            s.name,
		UptimeNS:        time.Since(s.start).Nanoseconds(),
		EventsRecorded:  rec.Recorded(),
		EventsRetained:  rec.Len(),
		RingOverwrites:  rec.Dropped(),
		EventlogDropped: rec.Dropped(),
		EventClients:    s.events.clients.Value(),
		EventDropped:    s.events.dropped.Value(),
		VerdictClients:  s.verdicts.clients.Value(),
		VerdictDropped:  s.verdicts.dropped.Value(),
		VerdictsEmitted: s.verdicts.published.Value(),
	}
	doc := map[string]any{}
	hb, _ := json.Marshal(h)
	_ = json.Unmarshal(hb, &doc)
	if tt := s.txtracer.Load(); tt != nil {
		started, finished, evicted := tt.Stats()
		doc["traces_started"] = started
		doc["traces_finished"] = finished
		doc["traces_evicted"] = evicted
	}
	if fnp := s.healthExtra.Load(); fnp != nil {
		for k, v := range (*fnp)() {
			if _, taken := doc[k]; !taken {
				doc[k] = v
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleTrace serves one finished transaction's span tree by trace ID
// (the 16-hex-digit form that exemplars, /slow and sibench print).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tt := s.txtracer.Load()
	if tt == nil {
		http.Error(w, "transaction tracing is off (run with -trace-txns)", http.StatusNotFound)
		return
	}
	id, err := txtrace.ParseID(r.PathValue("id"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad trace id: %v", err), http.StatusBadRequest)
		return
	}
	td := tt.Get(id)
	if td == nil {
		http.Error(w, "trace not found (evicted or never finished)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(td)
}

// slowDoc is the /slow response document.
type slowDoc struct {
	ThresholdNS int64                `json:"threshold_ns"`
	Count       int                  `json:"count"`
	Traces      []*txtrace.TraceData `json:"traces"`
}

// handleSlow serves the slow-transaction log: finished traces at or
// above ?threshold= (a Go duration like 2ms, or a bare nanosecond
// count), slowest first, capped at ?limit=.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	tt := s.txtracer.Load()
	if tt == nil {
		http.Error(w, "transaction tracing is off (run with -trace-txns)", http.StatusNotFound)
		return
	}
	var threshold time.Duration
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			ns, nerr := strconv.ParseInt(raw, 10, 64)
			if nerr != nil {
				http.Error(w, fmt.Sprintf("bad threshold: %v", err), http.StatusBadRequest)
				return
			}
			d = time.Duration(ns)
		}
		threshold = d
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	traces := tt.Slow(threshold, limit)
	if traces == nil {
		traces = []*txtrace.TraceData{}
	}
	doc := slowDoc{ThresholdNS: threshold.Nanoseconds(), Count: len(traces), Traces: traces}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	rec := s.recorder.Load()
	if rec == nil {
		http.Error(w, "no flight recorder attached (run with -record, -timeline or -serve on a recording command)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="timeline.json"`)
	_ = eventlog.WriteChromeTrace(w, rec.Events(), s.tracer.Load().Phases())
}
