package txtrace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeTraceMerged renders one merged client+server trace
// plus one server-only trace and pins the structural invariants: wire
// stages land on the client process, pipeline stages on the server
// process, timestamps are rebased to the earliest span, and the output
// is deterministic.
func TestWriteChromeTraceMerged(t *testing.T) {
	base := int64(5_000_000)
	merged := &TraceData{
		TraceID: FormatID(0xa1), TxID: "w0#3", Session: "w0",
		Outcome: OutcomeCommit, LSN: 7,
		Start: base, End: base + 900, Duration: 900,
		Spans: []Span{
			{Stage: StageWireBegin, Start: base, End: base + 100},
			{Stage: StageWireOps, Start: base + 100, End: base + 400},
			{Stage: StageWireCommit, Start: base + 400, End: base + 900},
			// Server spans merged in via AddSpans: nested inside the
			// commit round-trip.
			{Stage: StageValidate, Start: base + 450, End: base + 500},
			{Stage: StageFsyncWait, Start: base + 500, End: base + 800, Attrs: map[string]int64{"group_gap": 3}},
		},
	}
	serverOnly := &TraceData{
		TraceID: FormatID(0xb2), TxID: "wire/1#0", Session: "wire/1",
		Outcome: OutcomeCommit,
		Start:   base + 50, End: base + 300, Duration: 250,
		Spans: []Span{
			{Stage: StageValidate, Start: base + 60, End: base + 80},
			{Stage: StagePublish, Start: base + 80, End: base + 280},
		},
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*TraceData{merged, nil, serverOnly}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	pidOf := map[string]int{}
	var minTS = 1e18
	umbrellas := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		pidOf[ev.Name] = ev.Pid
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.Name == "w0#3" || ev.Name == "wire/1#0" {
			umbrellas++
		}
	}
	if umbrellas != 2 {
		t.Errorf("umbrella slices: %d, want 2", umbrellas)
	}
	// Sides: wire stages client (pid 1), pipeline stages server (pid 2);
	// the merged trace's umbrella sits on its home (client) side, the
	// server-only trace's on the server side.
	for name, wantPid := range map[string]int{
		"wire_begin": pidClient, "wire_ops": pidClient, "wire_commit": pidClient,
		"fsync_wait": pidServer, "publish": pidServer,
		"w0#3": pidClient, "wire/1#0": pidServer,
	} {
		if pidOf[name] != wantPid {
			t.Errorf("%s on pid %d, want %d", name, pidOf[name], wantPid)
		}
	}
	// Rebasing: the earliest slice starts at ts 0.
	if minTS != 0 {
		t.Errorf("earliest ts = %v, want 0 (rebased)", minTS)
	}

	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, []*TraceData{merged, nil, serverOnly}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("output is not deterministic")
	}
}
