package txtrace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// mkTrace hand-builds a finished TraceData for Ingest-based tests,
// with a deterministic ID and duration.
func mkTrace(id uint64, dur int64) *TraceData {
	start := int64(1_000_000)
	return &TraceData{
		TraceID:  FormatID(id),
		Session:  fmt.Sprintf("s%d", id%4),
		Outcome:  OutcomeCommit,
		Start:    start,
		End:      start + dur,
		Duration: dur,
		Spans: []Span{
			{Stage: StageReads, Start: start, End: start + dur/2},
			{Stage: StageFsyncWait, Start: start + dur/2, End: start + dur},
		},
	}
}

func TestMarkProducesContiguousSpans(t *testing.T) {
	tt := New(Options{Start: 0x100})
	tr := tt.Begin("sess-a")
	if got := tr.ID(); got != 0x100 {
		t.Fatalf("ID = %#x, want 0x100", got)
	}
	tr.SetTxID("sess-a#1")
	tr.Mark(StageBeginWait)
	tr.Mark(StageReads)
	tr.MarkAttrs(StageWALAppend, map[string]int64{"lsn": 9})
	tr.Finish(OutcomeCommit, 9)

	td := tr.Data()
	if td == nil {
		t.Fatal("Data() nil after Finish")
	}
	if td.TraceID != "0000000000000100" {
		t.Errorf("TraceID = %q", td.TraceID)
	}
	if td.TxID != "sess-a#1" || td.Outcome != OutcomeCommit || td.LSN != 9 {
		t.Errorf("metadata: %+v", td)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(td.Spans))
	}
	// The cursor model guarantees spans tile the trace: each span
	// starts exactly where the previous ended, the first at the trace
	// start, and none extends past the trace end.
	if td.Spans[0].Start != td.Start {
		t.Errorf("first span starts at %d, trace at %d", td.Spans[0].Start, td.Start)
	}
	for i := 1; i < len(td.Spans); i++ {
		if td.Spans[i].Start != td.Spans[i-1].End {
			t.Errorf("span %d not contiguous: prev end %d, start %d", i, td.Spans[i-1].End, td.Spans[i].Start)
		}
	}
	if last := td.Spans[len(td.Spans)-1]; last.End > td.End {
		t.Errorf("last span ends %d after trace end %d", last.End, td.End)
	}
	if td.Spans[2].Attrs["lsn"] != 9 {
		t.Errorf("wal_append attrs: %v", td.Spans[2].Attrs)
	}
	if td.Duration != td.End-td.Start || td.Duration < 0 {
		t.Errorf("duration %d, start %d, end %d", td.Duration, td.Start, td.End)
	}

	// Finished traces are resolvable by numeric ID and idempotent to
	// re-finish.
	if got := tt.Get(0x100); got != td {
		t.Errorf("Get returned %p, want %p", got, td)
	}
	tr.Finish(OutcomeAbort, 0)
	if tr.Data().Outcome != OutcomeCommit {
		t.Error("second Finish overwrote the trace")
	}
}

func TestNilSafety(t *testing.T) {
	// The "tracing off" representation is a nil tracer handing out nil
	// traces; every method must be a no-op, not a panic.
	var tt *Tracer
	tr := tt.Begin("x")
	if tr != nil {
		t.Fatal("nil tracer minted a trace")
	}
	if tr2 := tt.BeginWithID(7, "x"); tr2 != nil {
		t.Fatal("nil tracer minted a trace via BeginWithID")
	}
	if tr.ID() != 0 {
		t.Error("nil trace has non-zero ID")
	}
	tr.SetTxID("t")
	tr.Mark(StageReads)
	tr.MarkAttrs(StageAck, map[string]int64{"a": 1})
	tr.AddSpans([]Span{{Stage: StageAck}})
	tr.Finish(OutcomeCommit, 1)
	if tr.Data() != nil {
		t.Error("nil trace has data")
	}
	tt.Ingest(mkTrace(1, 10))
	if tt.Get(1) != nil || tt.Slow(0, 0) != nil || tt.Finished(0) != nil || tt.StageLatencies() != nil {
		t.Error("nil tracer returned data")
	}
	if a, b, c := tt.Stats(); a != 0 || b != 0 || c != 0 {
		t.Error("nil tracer has stats")
	}
}

func TestFormatParseID(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, 1<<63 | 42, ^uint64(0)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Errorf("FormatID(%#x) = %q: not 16 digits", id, s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Errorf("ParseID(%q) = %#x, %v; want %#x", s, back, err, id)
		}
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Error("ParseID accepted garbage")
	}
}

func TestSlowLogTopK(t *testing.T) {
	tt := New(Options{Capacity: 64, SlowCap: 4})
	for i := uint64(1); i <= 10; i++ {
		tt.Ingest(mkTrace(i, int64(i)*int64(time.Millisecond)))
	}
	slow := tt.Slow(0, 0)
	if len(slow) != 4 {
		t.Fatalf("slow log holds %d, want 4", len(slow))
	}
	for i, wantID := range []uint64{10, 9, 8, 7} {
		if slow[i].ID() != wantID {
			t.Errorf("slow[%d] = %s, want id %d", i, slow[i].TraceID, wantID)
		}
	}
	if got := tt.Slow(9*time.Millisecond, 0); len(got) != 2 {
		t.Errorf("threshold filter returned %d, want 2", len(got))
	}
	if got := tt.Slow(0, 2); len(got) != 2 || got[0].ID() != 10 {
		t.Errorf("limit: got %d traces", len(got))
	}
}

func TestRingEvictionKeepsSlowTraces(t *testing.T) {
	tt := New(Options{Capacity: 4, SlowCap: 2})
	// Two early monsters claim the slow log, then a long tail of fast
	// traces cycles the ring far past them.
	tt.Ingest(mkTrace(1, int64(time.Second)))
	tt.Ingest(mkTrace(2, 2*int64(time.Second)))
	for i := uint64(3); i <= 20; i++ {
		tt.Ingest(mkTrace(i, int64(i)))
	}
	// Slow-log residents survive ring eviction and stay resolvable —
	// the property that keeps a histogram exemplar's trace ID useful
	// after the ring has churned.
	if tt.Get(1) == nil || tt.Get(2) == nil {
		t.Error("slow-log traces were evicted with the ring")
	}
	// A mid-run trace neither slow nor recent is gone.
	if tt.Get(5) != nil {
		t.Error("trace 5 still resolvable: ring eviction did not fire")
	}
	// The ring itself holds the newest four.
	fin := tt.Finished(0)
	if len(fin) != 4 {
		t.Fatalf("Finished: %d traces, want 4", len(fin))
	}
	for i, wantID := range []uint64{17, 18, 19, 20} {
		if fin[i].ID() != wantID {
			t.Errorf("Finished[%d] = id %d, want %d", i, fin[i].ID(), wantID)
		}
	}
	if _, _, evicted := tt.Stats(); evicted == 0 {
		t.Error("evicted counter never moved")
	}
}

func TestStageLatenciesPipelineOrder(t *testing.T) {
	tt := New(Options{})
	start := int64(1000)
	tt.Ingest(&TraceData{
		TraceID: FormatID(42), Outcome: OutcomeCommit,
		Start: start, End: start + 40, Duration: 40,
		Spans: []Span{
			{Stage: "zz_custom", Start: start, End: start + 10},
			{Stage: StageFsyncWait, Start: start + 10, End: start + 20},
			{Stage: StageWireBegin, Start: start + 20, End: start + 30},
			{Stage: StageAck, Start: start + 30, End: start + 40},
		},
	})
	got := tt.StageLatencies()
	want := []Stage{StageWireBegin, StageFsyncWait, StageAck, "zz_custom"}
	if len(got) != len(want) {
		t.Fatalf("stages: %d, want %d", len(got), len(want))
	}
	for i, st := range want {
		if got[i].Stage != st {
			t.Errorf("stage[%d] = %s, want %s", i, got[i].Stage, st)
		}
		if got[i].Count != 1 {
			t.Errorf("stage[%d] count = %d", i, got[i].Count)
		}
	}
}

func TestBeginWithIDAdoptsAndFallsBack(t *testing.T) {
	tt := New(Options{Start: 500})
	if tr := tt.BeginWithID(0xabc, "w"); tr.ID() != 0xabc {
		t.Errorf("adopted ID = %#x", tr.ID())
	}
	if tr := tt.BeginWithID(0, "w"); tr.ID() == 0 {
		t.Error("zero ID did not fall back to a fresh one")
	}
}

func TestStats(t *testing.T) {
	tt := New(Options{Start: 1})
	tr := tt.Begin("a")
	tt.Begin("b") // started, never finished
	tr.Finish(OutcomeConflict, 0)
	started, finished, _ := tt.Stats()
	if started != 2 || finished != 1 {
		t.Errorf("stats = %d started, %d finished; want 2, 1", started, finished)
	}
}

// TestConcurrentHammer drives begins, marks, finishes, ingests and
// every reader concurrently; run under -race this is the tracer's
// publication-safety check (satellite of the tracing PR).
func TestConcurrentHammer(t *testing.T) {
	tt := New(Options{Capacity: 32, SlowCap: 8})
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := tt.Begin(fmt.Sprintf("w%d", w))
				tr.Mark(StageBeginWait)
				tr.Mark(StageReads)
				tr.MarkAttrs(StageWALAppend, map[string]int64{"lsn": int64(i)})
				tr.Mark(StageAck)
				if i%3 == 0 {
					tr.Finish(OutcomeConflict, 0)
				} else {
					tr.Finish(OutcomeCommit, uint64(i))
				}
				if i%7 == 0 {
					tt.Ingest(mkTrace(uint64(w*perWriter+i)|1<<40, int64(i+1)))
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, td := range tt.Finished(16) {
					if tt.Get(td.ID()) == nil {
						// Raced with eviction: acceptable, just keep going.
						continue
					}
				}
				tt.Slow(0, 4)
				tt.StageLatencies()
				tt.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	started, finished, _ := tt.Stats()
	if finished < writers*perWriter {
		t.Errorf("finished = %d, want ≥ %d", finished, writers*perWriter)
	}
	if started < finished {
		t.Errorf("started %d < finished %d", started, finished)
	}
}
