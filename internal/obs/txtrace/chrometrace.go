package txtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// traceEvent is one entry of the Chrome trace-event JSON format
// (loadable at ui.perfetto.dev and chrome://tracing). ts and dur are
// microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace-event process ids for the merged view: client wire spans on
// one track group, server pipeline spans on another.
const (
	pidClient = 1
	pidServer = 2
)

// isWireStage reports whether a stage was produced on the client side
// of the wire (everything else is server/engine pipeline work).
func isWireStage(s Stage) bool { return strings.HasPrefix(string(s), "wire_") }

// WriteChromeTrace renders finished traces as a Chrome trace-event
// JSON document with the client and server halves of each transaction
// on separate process tracks: per trace, an umbrella "X" slice named
// by its trace ID, and one "X" slice per stage span — wire_* stages
// under the client process, pipeline stages under the server process,
// each grouped into one thread per session. Timestamps are rebased to
// the earliest span so the timeline starts near zero (client and
// server stamps share a timebase only when both halves ran on the same
// host; otherwise tracks may be skewed by the clock offset). Output is
// deterministic for a given input.
func WriteChromeTrace(w io.Writer, traces []*TraceData) error {
	// Stable session → tid assignment per side, in sorted order.
	sessions := map[int]map[string]bool{pidClient: {}, pidServer: {}}
	sideOf := func(td *TraceData) int {
		for _, sp := range td.Spans {
			if isWireStage(sp.Stage) {
				return pidClient
			}
		}
		return pidServer
	}
	for _, td := range traces {
		if td == nil {
			continue
		}
		sessions[sideOf(td)][td.Session] = true
	}
	tidOf := map[int]map[string]int{pidClient: {}, pidServer: {}}
	for pid, set := range sessions {
		names := make([]string, 0, len(set))
		for s := range set {
			names = append(names, s)
		}
		sort.Strings(names)
		for i, s := range names {
			tidOf[pid][s] = i + 1
		}
	}

	base := int64(0)
	first := true
	for _, td := range traces {
		if td == nil {
			continue
		}
		if first || td.Start < base {
			base = td.Start
			first = false
		}
		for _, sp := range td.Spans {
			if sp.Start < base {
				base = sp.Start
			}
		}
	}
	usSince := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var out []traceEvent
	out = append(out,
		traceEvent{Name: "process_name", Ph: "M", Pid: pidClient,
			Args: map[string]any{"name": "client (wire)"}},
		traceEvent{Name: "process_name", Ph: "M", Pid: pidServer,
			Args: map[string]any{"name": "server (commit pipeline)"}},
	)
	for _, pid := range []int{pidClient, pidServer} {
		names := make([]string, 0, len(tidOf[pid]))
		for s := range tidOf[pid] {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			out = append(out, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tidOf[pid][s],
				Args: map[string]any{"name": "session " + s},
			})
		}
	}

	for _, td := range traces {
		if td == nil {
			continue
		}
		homePid := sideOf(td)
		homeTid := tidOf[homePid][td.Session]
		name := td.TxID
		if name == "" {
			name = td.TraceID
		}
		dur := usSince(td.End) - usSince(td.Start)
		out = append(out, traceEvent{
			Name: name, Cat: "txn", Ph: "X",
			Pid: homePid, Tid: homeTid,
			TS: usSince(td.Start), Dur: &dur,
			Args: map[string]any{
				"trace_id": td.TraceID,
				"outcome":  td.Outcome,
				"session":  td.Session,
			},
		})
		for _, sp := range td.Spans {
			pid := pidServer
			if isWireStage(sp.Stage) {
				pid = pidClient
			}
			tid := tidOf[pid][td.Session]
			if tid == 0 {
				// Server spans merged into a client trace: the server
				// side has no thread for this session yet; reuse the
				// client tid so related rows stay adjacent.
				tid = homeTid
			}
			spDur := usSince(sp.End) - usSince(sp.Start)
			args := map[string]any{"trace_id": td.TraceID}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			out = append(out, traceEvent{
				Name: string(sp.Stage), Cat: "stage", Ph: "X",
				Pid: pid, Tid: tid,
				TS: usSince(sp.Start), Dur: &spDur,
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traceDoc{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("txtrace: encoding chrome trace: %w", err)
	}
	return nil
}
