// Package txtrace is the per-transaction tracer: it assigns each
// transaction a trace ID at Begin, records monotonic stage spans as the
// transaction moves through the commit pipeline (begin-wait, reads,
// shard-lock wait, first-committer-wins validation, install, WAL
// append, group-fsync wait, publish CAS, ack), and retains finished
// traces in a bounded ring plus a top-K slow log for forensics.
//
// Design constraints, in order:
//
//  1. Free when off. Instrumented code holds a *Trace that is nil when
//     tracing is disabled; every Trace and Tracer method is nil-safe
//     and returns before touching the clock, so the only cost on the
//     hot path is a pointer nil-check.
//  2. No locks on the live path. A live Trace is owned by exactly one
//     goroutine (the session driving the transaction — stage marks
//     from inside the WAL lock window happen on that same goroutine),
//     so Mark appends to a plain slice. The Tracer's mutex is taken
//     only at Finish, when the immutable TraceData is published.
//  3. Mergeable across machines. Span timestamps are absolute UNIX
//     nanoseconds (derived from one wall-clock anchor plus monotonic
//     offsets, so spans never run backwards), and trace IDs propagate
//     over siwire so the client's wire spans and the server's pipeline
//     spans join into one timeline.
package txtrace

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/obs"
)

// Stage names one segment of a transaction's lifetime. The pipeline
// stages below are emitted by the engine and storage layers; the wire_*
// stages by a tracing siwire client. Consumers should tolerate unknown
// stages (the set grows with the pipeline).
type Stage string

const (
	// StageBeginWait covers Begin: snapshot acquisition (one atomic
	// commitTS load plus a snapshot-registry slot claim under SI).
	StageBeginWait Stage = "begin_wait"
	// StageReads covers the transaction body: every read and buffered
	// write between Begin and the commit request.
	StageReads Stage = "reads"
	// StageROCommit is the ack-terminal stage of a read-only commit:
	// protocols mark it in their empty-write-set early return (no lock,
	// no validation, no publish) so read-only transactions still carry
	// an attributable commit span instead of jumping straight to ack.
	StageROCommit Stage = "ro_commit"
	// StageBatchWait covers waiting in the SI group-commit sequencer:
	// the time between enqueueing a commit request and a batch leader
	// deciding it. Attrs carry the batch size the request was decided
	// in, and solo=1 when the request overlapped the forming batch and
	// fell out to the solo commit path.
	StageBatchWait Stage = "batch_wait"
	// StageLockWait covers acquiring the write-set's shard locks in
	// ascending shard order (PSI/SSI: the engine-wide mutex).
	StageLockWait Stage = "lock_wait"
	// StageValidate covers first-committer-wins validation: comparing
	// each written object's latest committed timestamp to the
	// transaction's snapshot.
	StageValidate Stage = "validate"
	// StageInstall covers installing the write set's new versions into
	// the MVCC store at the freshly allocated commit timestamp.
	StageInstall Stage = "install"
	// StageWALAppend covers encoding and appending the commit record
	// to the write-ahead log (LSN assignment).
	StageWALAppend Stage = "wal_append"
	// StageFsyncWait covers waiting for the group fsync that makes the
	// record durable; attrs carry the append/sync LSN gap that shows
	// how many records the group covered.
	StageFsyncWait Stage = "fsync_wait"
	// StagePublish covers the in-order publish CAS that makes the
	// commit visible to new snapshots.
	StagePublish Stage = "publish"
	// StageAck covers everything after publish up to the commit call
	// returning to the caller (durability wait, metrics, recording).
	StageAck Stage = "ack"

	// StageWireBegin, StageWireOps and StageWireCommit are the client
	// side of a traced network run: the begin round-trip, the
	// read/write op round-trips, and the commit round-trip (which
	// contains the server pipeline stages above).
	StageWireBegin  Stage = "wire_begin"
	StageWireOps    Stage = "wire_ops"
	StageWireCommit Stage = "wire_commit"
)

// Transaction outcomes recorded at Finish.
const (
	OutcomeCommit   = "commit"
	OutcomeConflict = "conflict"
	OutcomeAbort    = "abort"
	OutcomeError    = "error"
)

// stageOrder is the canonical presentation order for per-stage
// aggregates; unknown stages sort after these, alphabetically.
var stageOrder = []Stage{
	StageWireBegin, StageWireOps, StageWireCommit,
	StageBeginWait, StageReads, StageROCommit, StageBatchWait,
	StageLockWait, StageValidate,
	StageInstall, StageWALAppend, StageFsyncWait, StagePublish, StageAck,
}

func stageRank(s Stage) int {
	for i, o := range stageOrder {
		if s == o {
			return i
		}
	}
	return len(stageOrder)
}

// Span is one closed stage interval. Start and End are absolute UNIX
// nanoseconds; Attrs carries optional stage-specific integers (for
// example the WAL append LSN and the group-fsync LSN gap).
type Span struct {
	Stage Stage            `json:"stage"`
	Start int64            `json:"start_ns"`
	End   int64            `json:"end_ns"`
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// TraceData is a finished, immutable trace: the span tree served by
// GET /trace/{id}. The root is the transaction itself; Spans are its
// children in chronological order. The trace ID is rendered as a
// 16-digit hex string (JSON numbers lose precision above 2^53).
type TraceData struct {
	TraceID  string `json:"trace_id"`
	Session  string `json:"session"`
	TxID     string `json:"txid,omitempty"`
	Outcome  string `json:"outcome"`
	LSN      uint64 `json:"lsn,omitempty"`
	Start    int64  `json:"start_ns"`
	End      int64  `json:"end_ns"`
	Duration int64  `json:"duration_ns"`
	Spans    []Span `json:"spans"`

	id uint64
}

// ID returns the numeric trace ID.
func (td *TraceData) ID() uint64 { return td.id }

// FormatID renders a trace ID the way TraceData.TraceID and the
// /trace/{id} route expect it: 16 lowercase hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID parses a hex trace ID (with or without leading zeros).
func ParseID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

// Trace is one live transaction's trace. It is single-goroutine until
// Finish publishes it; all methods are no-ops on a nil receiver so
// instrumentation sites need no enabled-checks beyond holding nil.
type Trace struct {
	tracer  *Tracer
	id      uint64
	session string
	txid    string

	startWall int64     // UNIX ns anchor
	startMono time.Time // monotonic anchor
	cursor    time.Duration
	spans     []Span

	data *TraceData // set by Finish
}

// ID returns the trace ID (0 on nil).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// SetTxID attaches the transaction's recorded ID once known.
func (tr *Trace) SetTxID(txid string) {
	if tr == nil {
		return
	}
	tr.txid = txid
}

// Mark closes the span from the previous boundary (Begin or the last
// Mark) to now under the given stage and advances the boundary.
func (tr *Trace) Mark(stage Stage) { tr.MarkAttrs(stage, nil) }

// MarkAttrs is Mark with stage attributes attached to the span.
func (tr *Trace) MarkAttrs(stage Stage, attrs map[string]int64) {
	if tr == nil {
		return
	}
	now := time.Since(tr.startMono)
	tr.spans = append(tr.spans, Span{
		Stage: stage,
		Start: tr.startWall + int64(tr.cursor),
		End:   tr.startWall + int64(now),
		Attrs: attrs,
	})
	tr.cursor = now
}

// AddSpans appends externally produced spans (for example the server's
// pipeline spans returned inside a siwire commit response). They do not
// move the local boundary; their timestamps are kept verbatim.
func (tr *Trace) AddSpans(spans []Span) {
	if tr == nil || len(spans) == 0 {
		return
	}
	tr.spans = append(tr.spans, spans...)
}

// Finish seals the trace with an outcome (and the durable LSN for
// commits) and publishes it to the tracer's ring, slow log and
// per-stage aggregates. Calling Finish more than once is a no-op.
func (tr *Trace) Finish(outcome string, lsn uint64) {
	if tr == nil || tr.data != nil {
		return
	}
	end := tr.startWall + int64(time.Since(tr.startMono))
	td := &TraceData{
		TraceID:  FormatID(tr.id),
		Session:  tr.session,
		TxID:     tr.txid,
		Outcome:  outcome,
		LSN:      lsn,
		Start:    tr.startWall,
		End:      end,
		Duration: end - tr.startWall,
		Spans:    tr.spans,
		id:       tr.id,
	}
	tr.data = td
	tr.tracer.publish(td)
}

// Data returns the finished TraceData (nil before Finish or on nil).
func (tr *Trace) Data() *TraceData {
	if tr == nil {
		return nil
	}
	return tr.data
}

// Options configures a Tracer. The zero value is ready for production
// use: 4096 retained traces, a top-64 slow log, randomized IDs.
type Options struct {
	// Capacity bounds the ring of retained finished traces
	// (default 4096). Oldest traces are evicted first; traces still
	// referenced by the slow log stay resolvable via Get.
	Capacity int
	// SlowCap bounds the slow log (default 64): the finished traces
	// with the largest total duration.
	SlowCap int
	// Start, when non-zero, is the first assigned trace ID and
	// subsequent IDs increment from it — deterministic, for tests.
	// When zero, IDs start from a random 32-bit prefix so traces from
	// different processes (a tracing client and a tracing server) do
	// not collide in a merged timeline.
	Start uint64
}

// Tracer mints trace IDs and retains finished traces. Create with New;
// a nil *Tracer is a valid "tracing off" tracer whose Begin returns a
// nil Trace.
type Tracer struct {
	next atomic.Uint64

	mu     sync.Mutex
	byID   map[uint64]*TraceData
	ring   []uint64 // FIFO of retained IDs
	pos    int
	filled bool
	slow   []*TraceData
	cap    int
	slowCp int
	stages map[Stage]*obs.Histogram

	started  atomic.Int64
	finished atomic.Int64
	evicted  atomic.Int64
}

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.SlowCap <= 0 {
		opts.SlowCap = 64
	}
	t := &Tracer{
		byID:   make(map[uint64]*TraceData),
		ring:   make([]uint64, opts.Capacity),
		cap:    opts.Capacity,
		slowCp: opts.SlowCap,
		stages: make(map[Stage]*obs.Histogram),
	}
	start := opts.Start
	if start == 0 {
		start = uint64(rand.Uint32())<<32 | 1
	}
	t.next.Store(start - 1)
	return t
}

// Begin starts a trace with a fresh ID. Returns nil on a nil tracer.
func (t *Tracer) Begin(session string) *Trace {
	if t == nil {
		return nil
	}
	return t.begin(t.next.Add(1), session)
}

// BeginWithID starts a trace under a caller-provided ID — the server
// side of wire propagation, adopting the client's ID so both halves
// merge. A zero ID falls back to a fresh one.
func (t *Tracer) BeginWithID(id uint64, session string) *Trace {
	if t == nil {
		return nil
	}
	if id == 0 {
		id = t.next.Add(1)
	}
	return t.begin(id, session)
}

func (t *Tracer) begin(id uint64, session string) *Trace {
	t.started.Add(1)
	return &Trace{
		tracer:    t,
		id:        id,
		session:   session,
		startWall: time.Now().UnixNano(),
		startMono: time.Now(),
	}
}

// Ingest publishes an externally assembled TraceData (for example a
// client-side trace carrying merged server spans) as if one of this
// tracer's traces had finished.
func (t *Tracer) Ingest(td *TraceData) {
	if t == nil || td == nil {
		return
	}
	if td.id == 0 {
		if id, err := ParseID(td.TraceID); err == nil {
			td.id = id
		}
	}
	t.started.Add(1)
	t.publish(td)
}

func (t *Tracer) publish(td *TraceData) {
	if t == nil {
		return
	}
	t.finished.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()

	if old := t.ring[t.pos]; t.filled {
		if _, ok := t.byID[old]; ok && !t.inSlowLocked(old) {
			delete(t.byID, old)
			t.evicted.Add(1)
		}
	}
	t.ring[t.pos] = td.id
	t.pos++
	if t.pos == t.cap {
		t.pos, t.filled = 0, true
	}
	t.byID[td.id] = td

	if len(t.slow) < t.slowCp {
		t.slow = append(t.slow, td)
	} else {
		min := 0
		for i, s := range t.slow {
			if s.Duration < t.slow[min].Duration {
				min = i
			}
		}
		if td.Duration > t.slow[min].Duration {
			dropped := t.slow[min]
			t.slow[min] = td
			// A trace evicted from the slow log but no longer in the
			// ring loses its last reference.
			if !t.inRingLocked(dropped.id) {
				delete(t.byID, dropped.id)
				t.evicted.Add(1)
			}
		}
	}

	for _, sp := range td.Spans {
		h := t.stages[sp.Stage]
		if h == nil {
			h = &obs.Histogram{}
			t.stages[sp.Stage] = h
		}
		h.Observe(sp.End - sp.Start)
	}
}

func (t *Tracer) inSlowLocked(id uint64) bool {
	for _, s := range t.slow {
		if s.id == id {
			return true
		}
	}
	return false
}

func (t *Tracer) inRingLocked(id uint64) bool {
	n := t.pos
	if t.filled {
		n = t.cap
	}
	for i := 0; i < n; i++ {
		if t.ring[i] == id {
			return true
		}
	}
	return false
}

// Get returns the finished trace with the given ID, or nil.
func (t *Tracer) Get(id uint64) *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// Slow returns up to limit finished traces with total duration ≥
// minDur, slowest first. limit ≤ 0 means the slow log's capacity.
func (t *Tracer) Slow(minDur time.Duration, limit int) []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*TraceData, 0, len(t.slow))
	for _, td := range t.slow {
		if td.Duration >= int64(minDur) {
			out = append(out, td)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].id < out[j].id
	})
	if limit <= 0 {
		limit = t.slowCp
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Finished returns up to limit retained traces, oldest first
// (limit ≤ 0 means all retained). This is the ring, not the slow log —
// the input for a merged timeline export.
func (t *Tracer) Finished(limit int) []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.pos
	start := 0
	if t.filled {
		n = t.cap
		start = t.pos
	}
	out := make([]*TraceData, 0, n)
	for i := 0; i < n; i++ {
		id := t.ring[(start+i)%t.cap]
		if td, ok := t.byID[id]; ok {
			out = append(out, td)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// StageLatency is one stage's aggregate over every finished trace.
type StageLatency struct {
	Stage Stage   `json:"stage"`
	Count int64   `json:"count"`
	P50NS float64 `json:"p50_ns"`
	P99NS float64 `json:"p99_ns"`
}

// StageLatencies returns per-stage latency aggregates in canonical
// pipeline order (wire stages first, then the server pipeline).
func (t *Tracer) StageLatencies() []StageLatency {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]StageLatency, 0, len(t.stages))
	for st, h := range t.stages {
		out = append(out, StageLatency{
			Stage: st,
			Count: h.Count(),
			P50NS: h.Quantile(0.50),
			P99NS: h.Quantile(0.99),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ri, rj := stageRank(out[i].Stage), stageRank(out[j].Stage)
		if ri != rj {
			return ri < rj
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Stats returns lifetime counters: traces started, finished, and
// evicted from retention.
func (t *Tracer) Stats() (started, finished, evicted int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.started.Load(), t.finished.Load(), t.evicted.Load()
}
