package obs

import (
	"encoding/json"
	"testing"
)

// TestHistogramExemplars covers the exemplar slot per bucket: traced
// observations pin (value, trace ID) to their bucket, untraced ones
// (trace ID 0) count normally but leave no exemplar, and newer traced
// observations replace older ones in the same bucket.
func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.Observe(100)                  // untraced
	h.ObserveExemplar(0, 0)         // untraced via the exemplar path
	h.ObserveExemplar(100, 0xabc)   // traced, same bucket as the first
	h.ObserveExemplar(5_000, 0xdef) // traced, higher bucket

	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (exemplar path must still count)", h.Count())
	}

	seen := map[uint64]int64{}
	for i := 0; i < numBuckets; i++ {
		if ex := h.BucketExemplar(i); ex != nil {
			seen[ex.TraceID] = ex.Value
			if ex.UnixNS == 0 {
				t.Errorf("bucket %d exemplar has no timestamp", i)
			}
		}
	}
	if len(seen) != 2 || seen[0xabc] != 100 || seen[0xdef] != 5_000 {
		t.Errorf("exemplars = %v", seen)
	}

	// Replacement within a bucket keeps the newest trace ID.
	h.ObserveExemplar(101, 0x999)
	found := false
	for i := 0; i < numBuckets; i++ {
		if ex := h.BucketExemplar(i); ex != nil && ex.Value == 101 {
			found = true
			if ex.TraceID != 0x999 {
				t.Errorf("bucket kept old exemplar %#x", ex.TraceID)
			}
		}
	}
	if !found {
		t.Error("replacement exemplar not stored")
	}

	// Nil receiver safety mirrors Observe.
	var nilH *Histogram
	nilH.ObserveExemplar(1, 2)
	if nilH.BucketExemplar(0) != nil {
		t.Error("nil histogram returned an exemplar")
	}
}

// TestExemplarJSONExport pins the scrape-side rendering: buckets with
// an exemplar carry exemplar_value and the 16-hex-digit
// exemplar_trace_id, buckets without stay clean.
func TestExemplarJSONExport(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("commit_latency_ns")
	h.Observe(10)
	h.ObserveExemplar(100_000, 0xbeef)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var metrics []struct {
		Name    string `json:"name"`
		Buckets []struct {
			Count           int64  `json:"count"`
			ExemplarValue   *int64 `json:"exemplar_value,omitempty"`
			ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 1 {
		t.Fatalf("metrics: %d", len(metrics))
	}
	withEx, withoutEx := 0, 0
	for _, b := range metrics[0].Buckets {
		switch {
		case b.ExemplarTraceID != "":
			withEx++
			if b.ExemplarTraceID != "000000000000beef" {
				t.Errorf("exemplar_trace_id = %q", b.ExemplarTraceID)
			}
			if b.ExemplarValue == nil || *b.ExemplarValue != 100_000 {
				t.Errorf("exemplar_value = %v", b.ExemplarValue)
			}
		case b.Count > 0:
			withoutEx++
			if b.ExemplarValue != nil {
				t.Error("untraced bucket carries an exemplar value")
			}
		}
	}
	if withEx != 1 || withoutEx != 1 {
		t.Errorf("buckets with exemplar: %d, without: %d", withEx, withoutEx)
	}
}
