// Package eventlog is the engine's flight recorder: a fixed-capacity,
// lock-light ring buffer of structured transactional events
// (begin/read/write/commit/abort/conflict). Engines append events from
// many worker goroutines; the recorder shards the ring by session so
// an append contends only on its shard's mutex, while a single atomic
// sequence number gives every event a global order. When the ring is
// full the oldest events of the appending shard are overwritten, so
// recording never blocks and never grows — the recorder keeps the
// recent past, like an aircraft flight recorder.
//
// Events dump to and load from NDJSON via internal/histio, and render
// to a Chrome trace-event (Perfetto-loadable) timeline via
// WriteChromeTrace.
package eventlog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sian/internal/model"
)

// Kind labels one transactional event.
type Kind int

// Event kinds. Begin/Commit/Abort delimit a transaction attempt;
// Conflict marks an attempt aborted by the protocol (first-committer-
// wins, lock or SSI dangerous-structure conflicts); Read and Write are
// the attempt's operations.
const (
	KindInvalid Kind = iota
	Begin
	Read
	Write
	Commit
	Abort
	Conflict
)

// String returns "begin", "read", "write", "commit", "abort" or
// "conflict".
func (k Kind) String() string {
	switch k {
	case Begin:
		return "begin"
	case Read:
		return "read"
	case Write:
		return "write"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "begin":
		return Begin, nil
	case "read":
		return Read, nil
	case "write":
		return Write, nil
	case "commit":
		return Commit, nil
	case "abort":
		return Abort, nil
	case "conflict":
		return Conflict, nil
	default:
		return KindInvalid, fmt.Errorf("eventlog: unknown event kind %q", s)
	}
}

// Event is one recorded transactional event.
type Event struct {
	// Seq is the event's position in the recorder's global order,
	// assigned by Record (starting at 1).
	Seq int64
	// TS is the event's wall-clock timestamp in Unix nanoseconds.
	TS int64
	// Kind is the event kind.
	Kind Kind
	// Session identifies the issuing session.
	Session string
	// TxID identifies the transaction attempt within the session
	// (each conflict retry is a fresh attempt with a fresh id).
	TxID string
	// Name, set on Commit events only, is the canonical id the
	// committed transaction carries in the recorded history (for
	// example "s1/2", or "init" for the initialisation transaction).
	Name string
	// Obj and Val carry the operation of Read and Write events.
	Obj model.Obj
	Val model.Value
	// LSN, set on Commit events of a durable storage driver, is the
	// write-ahead-log sequence number the commit was fsynced at (zero
	// for volatile drivers), correlating publish order with log order.
	LSN uint64
}

// shardCount is the number of independent rings; a power of two so the
// shard index is a mask away from the session hash.
const shardCount = 8

// DefaultCapacity is the recorder capacity used when NewRecorder is
// given a non-positive one: large enough to hold a sizeable benchmark
// run, small enough (a few MB) to always leave on.
const DefaultCapacity = 1 << 16

// Recorder is the ring-buffer flight recorder. All methods are safe
// for concurrent use and are no-ops on a nil recorder, so engine code
// can thread an optional *Recorder without branching.
type Recorder struct {
	seq     atomic.Int64
	dropped atomic.Int64
	shards  [shardCount]shard

	// Live-tail subscriptions. nsubs mirrors len(subs) so the record
	// hot path can skip the fan-out with one atomic load when nobody
	// is tailing.
	subMu sync.RWMutex
	subs  []*Subscription
	nsubs atomic.Int32
}

// shard is one independent ring. Total appended count n never wraps;
// the ring slot of the i-th append is i % len(buf).
type shard struct {
	mu  sync.Mutex
	buf []Event
	n   int
}

// NewRecorder returns a recorder holding at most capacity events
// (approximately: the capacity is split evenly across internal shards,
// so a workload hammering one session can overwrite that shard while
// others have room). Non-positive capacity selects DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, per)
	}
	return r
}

// Record appends the event, assigning its Seq and, when ev.TS is zero,
// stamping the current time. When the event's shard ring is full the
// oldest event in it is overwritten (counted by Dropped).
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.seq.Add(1)
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	s := &r.shards[shardOf(ev.Session)]
	s.mu.Lock()
	if s.n >= len(s.buf) {
		r.dropped.Add(1)
	}
	s.buf[s.n%len(s.buf)] = ev
	s.n++
	s.mu.Unlock()
	if r.nsubs.Load() > 0 {
		r.publish(ev)
	}
}

// publish fans ev out to every live subscription without blocking: a
// subscriber whose buffer is full loses the event and has its drop
// counter bumped instead.
func (r *Recorder) publish(ev Event) {
	r.subMu.RLock()
	for _, sub := range r.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
	r.subMu.RUnlock()
}

// Subscription is one live tail of a recorder's event stream, created
// by Subscribe. Events arrive on C in Record order; when the consumer
// falls behind the buffer, events are dropped (never blocking the
// recording engine) and counted by Dropped.
type Subscription struct {
	rec     *Recorder
	ch      chan Event
	dropped atomic.Int64
}

// DefaultSubscriptionBuffer is the per-subscriber channel capacity used
// when Subscribe is given a non-positive one.
const DefaultSubscriptionBuffer = 256

// Subscribe registers a live tail with the given buffer capacity
// (non-positive selects DefaultSubscriptionBuffer). The caller must
// drain C promptly or accept drops, and must Close the subscription
// when done. Subscribe on a nil recorder returns nil; all Subscription
// methods tolerate a nil receiver.
func (r *Recorder) Subscribe(buf int) *Subscription {
	if r == nil {
		return nil
	}
	if buf <= 0 {
		buf = DefaultSubscriptionBuffer
	}
	sub := &Subscription{rec: r, ch: make(chan Event, buf)}
	r.subMu.Lock()
	r.subs = append(r.subs, sub)
	r.nsubs.Store(int32(len(r.subs)))
	r.subMu.Unlock()
	return sub
}

// C returns the subscription's event channel. It is closed by Close.
func (s *Subscription) C() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns the number of events this subscriber lost to a full
// buffer.
func (s *Subscription) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. It is
// safe to call once; events still buffered remain readable until the
// channel drains to its close.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	r := s.rec
	r.subMu.Lock()
	for i, sub := range r.subs {
		if sub == s {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			close(s.ch)
			break
		}
	}
	r.nsubs.Store(int32(len(r.subs)))
	r.subMu.Unlock()
}

// shardOf hashes a session id to a shard index (FNV-1a).
func shardOf(session string) int {
	h := uint32(2166136261)
	for i := 0; i < len(session); i++ {
		h ^= uint32(session[i])
		h *= 16777619
	}
	return int(h) & (shardCount - 1)
}

// Events returns the retained events sorted by Seq. It locks each
// shard briefly; recording may proceed concurrently, and the snapshot
// reflects some linearisation of the appends.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		kept := s.n
		if kept > len(s.buf) {
			kept = len(s.buf)
		}
		start := s.n - kept
		for j := start; j < s.n; j++ {
			out = append(out, s.buf[j%len(s.buf)])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	total := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		kept := s.n
		if kept > len(s.buf) {
			kept = len(s.buf)
		}
		total += kept
		s.mu.Unlock()
	}
	return total
}

// Recorded returns the total number of events ever recorded, including
// overwritten ones.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Dropped returns the number of events overwritten by ring wrap-
// around.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}
