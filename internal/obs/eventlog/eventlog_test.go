package eventlog

import (
	"fmt"
	"sync"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	t.Parallel()
	for _, k := range []Kind{Begin, Read, Write, Commit, Abort, Conflict} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	t.Parallel()
	var r *Recorder
	r.Record(Event{Kind: Begin})
	if r.Events() != nil || r.Len() != 0 || r.Recorded() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder should report nothing")
	}
}

func TestRecordAssignsSeqAndTS(t *testing.T) {
	t.Parallel()
	r := NewRecorder(64)
	r.Record(Event{Kind: Begin, Session: "s1", TxID: "s1#1"})
	r.Record(Event{Kind: Commit, Session: "s1", TxID: "s1#1", Name: "s1/1", TS: 42})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d, %d, want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].TS == 0 {
		t.Error("zero TS should be stamped with the current time")
	}
	if evs[1].TS != 42 {
		t.Errorf("explicit TS overwritten: %d", evs[1].TS)
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	t.Parallel()
	// One session → one shard of capacity 64/shardCount = 8.
	r := NewRecorder(64)
	for i := 0; i < 100; i++ {
		r.Record(Event{Kind: Write, Session: "only", TxID: "t", Obj: "x"})
	}
	if r.Recorded() != 100 {
		t.Errorf("recorded = %d, want 100", r.Recorded())
	}
	if r.Dropped() != 92 {
		t.Errorf("dropped = %d, want 92", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 8 || r.Len() != 8 {
		t.Fatalf("retained = %d (Len %d), want 8", len(evs), r.Len())
	}
	for i, ev := range evs {
		if want := int64(93 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (newest retained)", i, ev.Seq, want)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	t.Parallel()
	const (
		workers = 8
		each    = 2000
	)
	r := NewRecorder(workers * each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", w)
			for i := 0; i < each; i++ {
				r.Record(Event{Kind: Write, Session: sess, TxID: "t", Obj: "x"})
			}
		}(w)
	}
	wg.Wait()
	if r.Recorded() != workers*each {
		t.Fatalf("recorded = %d, want %d", r.Recorded(), workers*each)
	}
	evs := r.Events()
	seen := make(map[int64]bool, len(evs))
	for i, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatalf("events not sorted by seq at %d", i)
		}
	}
	// Sessions spread over shards; with uniform load nothing needed
	// overwriting more than its shard's share.
	if int64(len(evs))+r.Dropped() != int64(workers*each) {
		t.Errorf("retained %d + dropped %d != recorded %d", len(evs), r.Dropped(), workers*each)
	}
}

func TestSpans(t *testing.T) {
	t.Parallel()
	events := []Event{
		{Seq: 1, TS: 1000, Kind: Begin, Session: "a", TxID: "a#1"},
		{Seq: 2, TS: 1100, Kind: Read, Session: "a", TxID: "a#1", Obj: "x"},
		{Seq: 3, TS: 1200, Kind: Begin, Session: "b", TxID: "b#1"},
		{Seq: 4, TS: 1300, Kind: Write, Session: "a", TxID: "a#1", Obj: "y", Val: 7},
		{Seq: 5, TS: 1400, Kind: Commit, Session: "a", TxID: "a#1", Name: "a/1"},
		{Seq: 6, TS: 1500, Kind: Conflict, Session: "b", TxID: "b#1"},
		{Seq: 7, TS: 1600, Kind: Begin, Session: "b", TxID: "b#2"},
	}
	spans := Spans(events)
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	a := spans[0]
	if a.TxID != "a#1" || a.Name != "a/1" || a.Outcome != Commit ||
		a.BeginTS != 1000 || a.EndTS != 1400 || a.Reads != 1 || a.Writes != 1 {
		t.Errorf("span a = %+v", a)
	}
	b := spans[1]
	if b.TxID != "b#1" || b.Outcome != Conflict || b.BeginTS != 1200 || b.EndTS != 1500 {
		t.Errorf("span b#1 = %+v", b)
	}
	// The still-open attempt extends to the dump's last timestamp.
	if open := spans[2]; open.Outcome != KindInvalid || open.EndTS != 1600 {
		t.Errorf("open span = %+v", open)
	}
}
