package eventlog

import (
	"sync"
	"testing"
)

func TestSubscribeLiveTailOrder(t *testing.T) {
	rec := NewRecorder(64)
	sub := rec.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		rec.Record(Event{Kind: Write, Session: "s1", TxID: "t1", Name: "w"})
	}
	var last int64
	for i := 0; i < 10; i++ {
		ev := <-sub.C()
		if ev.Seq <= last {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, last)
		}
		last = ev.Seq
		if ev.Kind != Write {
			t.Fatalf("event %d kind = %v", i, ev.Kind)
		}
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("dropped = %d, want 0", d)
	}
}

func TestSubscribeSlowConsumerDrops(t *testing.T) {
	rec := NewRecorder(64)
	sub := rec.Subscribe(1)
	defer sub.Close()
	// Nobody drains: the first event fills the buffer, the next four
	// are dropped without blocking Record.
	for i := 0; i < 5; i++ {
		rec.Record(Event{Kind: Begin, Session: "s1"})
	}
	if d := sub.Dropped(); d != 4 {
		t.Errorf("dropped = %d, want 4", d)
	}
	// The buffered event is still readable.
	ev := <-sub.C()
	if ev.Seq != 1 {
		t.Errorf("buffered event seq = %d, want 1 (oldest kept)", ev.Seq)
	}
}

func TestSubscribeDefaultBuffer(t *testing.T) {
	rec := NewRecorder(0)
	sub := rec.Subscribe(0)
	defer sub.Close()
	if c := cap(sub.ch); c != DefaultSubscriptionBuffer {
		t.Errorf("cap = %d, want %d", c, DefaultSubscriptionBuffer)
	}
}

func TestSubscribeCloseSemantics(t *testing.T) {
	rec := NewRecorder(64)
	sub := rec.Subscribe(4)
	rec.Record(Event{Kind: Commit, Session: "s1"})
	sub.Close()
	// The pre-close event drains, then the channel reports closed.
	if ev, ok := <-sub.C(); !ok || ev.Kind != Commit {
		t.Fatalf("drain after close: ev=%+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed after drain")
	}
	// Recording after close must not panic (send on closed channel).
	rec.Record(Event{Kind: Abort, Session: "s1"})
	if n := rec.nsubs.Load(); n != 0 {
		t.Errorf("nsubs = %d after close, want 0", n)
	}
}

func TestSubscribeNilRecorder(t *testing.T) {
	var rec *Recorder
	sub := rec.Subscribe(4)
	if sub != nil {
		t.Fatalf("Subscribe on nil recorder = %v, want nil", sub)
	}
	// All methods tolerate the nil subscription.
	if sub.C() != nil {
		t.Error("nil sub C() != nil")
	}
	if sub.Dropped() != 0 {
		t.Error("nil sub Dropped() != 0")
	}
	sub.Close()
}

func TestSubscribeConcurrentPublishAndChurn(t *testing.T) {
	rec := NewRecorder(256)
	const events = 500
	var wg sync.WaitGroup

	// A stable subscriber with room for everything.
	stable := rec.Subscribe(events)
	got := make(chan int64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var n int64
		for range stable.C() {
			n++
		}
		got <- n
	}()

	// Churning subscribers open and close while the recorder is hot —
	// the race detector checks publish vs (un)subscribe.
	var churn sync.WaitGroup
	for i := 0; i < 4; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for j := 0; j < 50; j++ {
				s := rec.Subscribe(1)
				s.Close()
			}
		}()
	}

	var rw sync.WaitGroup
	for i := 0; i < 4; i++ {
		rw.Add(1)
		go func(id int) {
			defer rw.Done()
			for j := 0; j < events/4; j++ {
				rec.Record(Event{Kind: Write, Session: "s", TxID: "t"})
			}
		}(i)
	}
	rw.Wait()
	churn.Wait()
	stable.Close()
	wg.Wait()
	if n := <-got; n+stable.Dropped() != events {
		t.Errorf("stable subscriber: received %d + dropped %d != %d recorded", n, stable.Dropped(), events)
	}
}
