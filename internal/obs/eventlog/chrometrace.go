package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sian/internal/obs"
)

// TxnSpan is one transaction attempt's lifetime, assembled from its
// begin..commit/abort/conflict event pair.
type TxnSpan struct {
	Session string
	TxID    string
	// Name is the canonical committed-transaction id (commit events
	// only; empty for aborted or still-open attempts).
	Name string
	// BeginTS and EndTS are Unix nanoseconds. A span whose begin event
	// was overwritten by ring wrap-around starts at its first retained
	// event; a span still open when the recorder was dumped ends at
	// the dump's last event.
	BeginTS, EndTS int64
	// Reads and Writes count the attempt's operations.
	Reads, Writes int
	// Outcome is Commit, Abort or Conflict, or zero for an attempt
	// with no retained terminal event.
	Outcome Kind
}

// Spans folds a Seq-ordered event slice into per-attempt transaction
// spans, in order of first event.
func Spans(events []Event) []TxnSpan {
	type key struct{ session, txid string }
	index := make(map[key]int)
	var spans []TxnSpan
	var lastTS int64
	for _, ev := range events {
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
		k := key{ev.Session, ev.TxID}
		i, ok := index[k]
		if !ok || spans[i].Outcome != KindInvalid {
			// First retained event of the attempt, or a fresh attempt
			// reusing a finished attempt's id.
			i = len(spans)
			index[k] = i
			spans = append(spans, TxnSpan{Session: ev.Session, TxID: ev.TxID, BeginTS: ev.TS, EndTS: ev.TS})
		}
		sp := &spans[i]
		if ev.TS > sp.EndTS {
			sp.EndTS = ev.TS
		}
		switch ev.Kind {
		case Read:
			sp.Reads++
		case Write:
			sp.Writes++
		case Commit, Abort, Conflict:
			sp.Outcome = ev.Kind
			if ev.Kind == Commit {
				sp.Name = ev.Name
			}
		}
	}
	for i := range spans {
		if spans[i].Outcome == KindInvalid && lastTS > spans[i].EndTS {
			spans[i].EndTS = lastTS
		}
	}
	return spans
}

// traceEvent is one entry of the Chrome trace-event JSON format
// (loadable at ui.perfetto.dev and chrome://tracing). ts and dur are
// microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON-object form of a trace (the form that carries
// metadata alongside the event array).
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace-event process ids: engine transactions on one track group,
// certifier phases on another.
const (
	pidEngine    = 1
	pidCertifier = 2
)

// WriteChromeTrace renders the events as a Chrome trace-event JSON
// document: one complete ("X") slice per transaction attempt, grouped
// into one thread per session; instant ("i") markers for conflicts
// and aborts; and, when phases is non-empty, the obs.Tracer phase
// durations as a sequential track of a separate "certifier" process.
// Timestamps are rebased to the earliest event so the timeline starts
// near zero. The output is deterministic for a given input.
func WriteChromeTrace(w io.Writer, events []Event, phases []obs.PhaseTiming) error {
	spans := Spans(events)

	// Stable session → tid assignment, in sorted session order.
	sessionSet := make(map[string]bool)
	for _, sp := range spans {
		sessionSet[sp.Session] = true
	}
	sessions := make([]string, 0, len(sessionSet))
	for s := range sessionSet {
		sessions = append(sessions, s)
	}
	sort.Strings(sessions)
	tidOf := make(map[string]int, len(sessions))
	for i, s := range sessions {
		tidOf[s] = i + 1
	}

	var base int64
	for i, ev := range events {
		if i == 0 || ev.TS < base {
			base = ev.TS
		}
	}
	usSince := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var out []traceEvent
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", Pid: pidEngine,
		Args: map[string]any{"name": "engine"},
	})
	for _, s := range sessions {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pidEngine, Tid: tidOf[s],
			Args: map[string]any{"name": "session " + s},
		})
	}
	for _, sp := range spans {
		name := sp.Name
		if name == "" {
			name = sp.TxID
		}
		dur := usSince(sp.EndTS) - usSince(sp.BeginTS)
		out = append(out, traceEvent{
			Name: name, Cat: "txn", Ph: "X",
			Pid: pidEngine, Tid: tidOf[sp.Session],
			TS: usSince(sp.BeginTS), Dur: &dur,
			Args: map[string]any{
				"session": sp.Session,
				"txid":    sp.TxID,
				"reads":   sp.Reads,
				"writes":  sp.Writes,
				"outcome": outcomeLabel(sp.Outcome),
			},
		})
	}
	for _, ev := range events {
		if ev.Kind != Conflict && ev.Kind != Abort {
			continue
		}
		out = append(out, traceEvent{
			Name: ev.Kind.String(), Cat: "txn", Ph: "i",
			Pid: pidEngine, Tid: tidOf[ev.Session],
			TS: usSince(ev.TS), S: "t",
			Args: map[string]any{"txid": ev.TxID},
		})
	}

	if len(phases) > 0 {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: pidCertifier,
			Args: map[string]any{"name": "certifier phases"},
		})
		// The tracer records durations, not wall-clock intervals; lay
		// the phases out back to back in report order.
		var cursor float64
		for _, p := range phases {
			dur := float64(p.Duration.Nanoseconds()) / 1e3
			out = append(out, traceEvent{
				Name: p.Name, Cat: "phase", Ph: "X",
				Pid: pidCertifier, Tid: 1,
				TS: cursor, Dur: &dur,
				Args: map[string]any{"intervals": p.Count},
			})
			cursor += dur
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traceDoc{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("eventlog: encoding chrome trace: %w", err)
	}
	return nil
}

// outcomeLabel names a span outcome for trace args ("open" for an
// attempt with no retained terminal event).
func outcomeLabel(k Kind) string {
	if k == KindInvalid {
		return "open"
	}
	return k.String()
}
