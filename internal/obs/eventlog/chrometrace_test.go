package eventlog

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sian/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a small fixed stream: two sessions, one conflict
// retry, one abort, deterministic timestamps.
func goldenEvents() []Event {
	base := int64(1_000_000_000)
	at := func(ms int64) int64 { return base + ms*int64(time.Millisecond) }
	return []Event{
		{Seq: 1, TS: at(0), Kind: Begin, Session: "init", TxID: "init#1"},
		{Seq: 2, TS: at(1), Kind: Write, Session: "init", TxID: "init#1", Obj: "x", Val: 0},
		{Seq: 3, TS: at(1), Kind: Write, Session: "init", TxID: "init#1", Obj: "y", Val: 0},
		{Seq: 4, TS: at(2), Kind: Commit, Session: "init", TxID: "init#1", Name: "init"},
		{Seq: 5, TS: at(3), Kind: Begin, Session: "s1", TxID: "s1#1"},
		{Seq: 6, TS: at(3), Kind: Begin, Session: "s2", TxID: "s2#1"},
		{Seq: 7, TS: at(4), Kind: Read, Session: "s1", TxID: "s1#1", Obj: "x", Val: 0},
		{Seq: 8, TS: at(4), Kind: Read, Session: "s2", TxID: "s2#1", Obj: "x", Val: 0},
		{Seq: 9, TS: at(5), Kind: Write, Session: "s1", TxID: "s1#1", Obj: "x", Val: 1},
		{Seq: 10, TS: at(5), Kind: Write, Session: "s2", TxID: "s2#1", Obj: "x", Val: 2},
		{Seq: 11, TS: at(6), Kind: Commit, Session: "s1", TxID: "s1#1", Name: "s1/1"},
		{Seq: 12, TS: at(7), Kind: Conflict, Session: "s2", TxID: "s2#1"},
		{Seq: 13, TS: at(8), Kind: Begin, Session: "s2", TxID: "s2#2"},
		{Seq: 14, TS: at(9), Kind: Read, Session: "s2", TxID: "s2#2", Obj: "x", Val: 1},
		{Seq: 15, TS: at(10), Kind: Write, Session: "s2", TxID: "s2#2", Obj: "x", Val: 2},
		{Seq: 16, TS: at(11), Kind: Commit, Session: "s2", TxID: "s2#2", Name: "s2/1"},
		{Seq: 17, TS: at(12), Kind: Begin, Session: "s1", TxID: "s1#2"},
		{Seq: 18, TS: at(13), Kind: Abort, Session: "s1", TxID: "s1#2"},
	}
}

func goldenPhases() []obs.PhaseTiming {
	return []obs.PhaseTiming{
		{Name: "validate", Duration: 120 * time.Microsecond, Count: 1},
		{Name: "wr-enumeration", Duration: 340 * time.Microsecond, Count: 1},
		{Name: "extension-search", Duration: 2 * time.Millisecond, Count: 1},
		{Name: "cycle-search", Duration: 900 * time.Microsecond, Count: 17},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), goldenPhases()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline differs from golden; rerun with -update and inspect the diff\ngot:\n%s", buf.String())
	}
}

// TestChromeTraceWellFormed validates the exporter output against the
// Chrome trace-event format contract: a traceEvents array whose
// entries carry name/ph/pid/tid/ts, "X" slices a non-negative dur, and
// nothing else that would make Perfetto reject the file.
func TestChromeTraceWellFormed(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents(), goldenPhases()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("output is not a trace-event JSON object: %v", err)
	}
	if doc.Unit != "ms" && doc.Unit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ms or ns", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	slices, instants, metadata := 0, 0, 0
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		switch ph := ev["ph"]; ph {
		case "X":
			slices++
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Errorf("event %d: X slice needs non-negative dur, got %v", i, ev["dur"])
			}
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Errorf("event %d: X slice needs non-negative ts, got %v", i, ev["ts"])
			}
		case "i":
			instants++
			if s, ok := ev["s"].(string); !ok || (s != "t" && s != "p" && s != "g") {
				t.Errorf("event %d: instant scope = %v, want t/p/g", i, ev["s"])
			}
		case "M":
			metadata++
		default:
			t.Errorf("event %d: unexpected phase type %v", i, ph)
		}
	}
	// 5 committed/conflicted/aborted/open attempts + 4 phases.
	if slices != 9 {
		t.Errorf("slices = %d, want 9", slices)
	}
	if instants != 2 {
		t.Errorf("instants = %d, want 2 (conflict + abort)", instants)
	}
	// process_name ×2, thread_name ×3 sessions.
	if metadata != 5 {
		t.Errorf("metadata = %d, want 5", metadata)
	}
}

func TestChromeTraceEmptyInput(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
}
