package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exporter golden files")

// goldenRegistry builds a deterministic registry exercising every
// metric kind, label escaping and histogram bucket layout.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("engine_commits_total", L("engine", "SI")).Add(42)
	reg.Counter("engine_commits_total", L("engine", "PSI")).Add(7)
	reg.Counter("engine_conflicts_total", L("engine", "SI")).Add(3)
	reg.Gauge("engine_sessions", L("engine", "SI")).Set(4)
	h := reg.Histogram("engine_commit_latency_ns", L("engine", "SI"))
	for _, v := range []int64{0, 1, 2, 500, 500, 1000, 100000} {
		h.Observe(v)
	}
	reg.Counter("weird_total", L("msg", `quote " back \ done`)).Inc()
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run go test -update-golden to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.prom", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.json", buf.Bytes())
}

// TestPrometheusShape asserts structural properties of the text format
// independent of the golden bytes: cumulative buckets, +Inf terminal,
// sum/count lines, # TYPE headers.
func TestPrometheusShape(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# TYPE engine_commits_total counter",
		"# TYPE engine_sessions gauge",
		"# TYPE engine_commit_latency_ns histogram",
		`engine_commit_latency_ns_bucket{engine="SI",le="+Inf"} 7`,
		`engine_commit_latency_ns_sum{engine="SI"} 102003`,
		`engine_commit_latency_ns_count{engine="SI"} 7`,
		`engine_commits_total{engine="PSI"} 7`,
		`weird_total{msg="quote \" back \\ done"} 1`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, s)
		}
	}
	// Bucket counts must be cumulative (monotone non-decreasing).
	var prev int64 = -1
	for _, line := range strings.Split(s, "\n") {
		if !strings.HasPrefix(line, "engine_commit_latency_ns_bucket") {
			continue
		}
		n, err := trailingInt(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}

// trailingInt pulls the sample value off the end of an exposition line.
func trailingInt(line string) (int64, error) {
	var n int64
	i := strings.LastIndexByte(line, ' ')
	err := json.Unmarshal([]byte(line[i+1:]), &n)
	return n, err
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var metrics []JSONMetric
	if err := json.Unmarshal(buf.Bytes(), &metrics); err != nil {
		t.Fatalf("JSON export does not round-trip: %v", err)
	}
	byName := make(map[string]JSONMetric)
	for _, m := range metrics {
		byName[m.Name+"/"+m.Labels["engine"]] = m
	}
	if m := byName["engine_commits_total/SI"]; m.Value == nil || *m.Value != 42 {
		t.Errorf("commits/SI = %+v, want value 42", m)
	}
	h := byName["engine_commit_latency_ns/SI"]
	if h.Count == nil || *h.Count != 7 || h.P50 == nil || h.P99 == nil || len(h.Buckets) == 0 {
		t.Errorf("histogram export incomplete: %+v", h)
	}
}

func TestDump(t *testing.T) {
	t.Parallel()
	reg := goldenRegistry()
	var stdout bytes.Buffer
	if err := reg.Dump("-", &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "engine_commits_total") {
		t.Error("Dump(-) should write Prometheus text to stdout")
	}
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	if err := reg.Dump(promPath, nil); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "m.json")
	if err := reg.Dump(jsonPath, nil); err != nil {
		t.Fatal(err)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []JSONMetric
	if err := json.Unmarshal(j, &metrics); err != nil {
		t.Errorf("Dump(*.json) should select the JSON exporter: %v", err)
	}
	if err := reg.Dump("", nil); err != nil {
		t.Errorf("Dump(\"\") should be a no-op, got %v", err)
	}
}

// TestJSONBucketEdges asserts that the exported buckets carry both
// inclusive edges and that a consumer can re-derive quantiles from
// them alone, without knowledge of the registry's log-scale layout.
func TestJSONBucketEdges(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	for _, v := range []int64{0, 1, 2, 3, 500, 500, 1000, 100000} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snap))
	}
	buckets := snap[0].Buckets
	if len(buckets) == 0 {
		t.Fatal("no buckets exported")
	}
	var total int64
	for _, b := range buckets {
		if b.LowerBound > b.UpperBound {
			t.Errorf("bucket [%d, %d] has inverted edges", b.LowerBound, b.UpperBound)
		}
		total += b.Count
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// Re-derive quantiles with the same interpolation Quantile uses,
	// but driven purely by the exported edges.
	rederive := func(q float64) float64 {
		rank := q * float64(total)
		var cum float64
		for _, b := range buckets {
			if cum+float64(b.Count) >= rank {
				lo, hi := float64(b.LowerBound), float64(b.UpperBound)
				if hi <= lo {
					return hi
				}
				frac := (rank - cum) / float64(b.Count)
				return lo + frac*(hi-lo)
			}
			cum += float64(b.Count)
		}
		return float64(buckets[len(buckets)-1].UpperBound)
	}
	for _, q := range []float64{0.25, 0.50, 0.90, 0.99} {
		if got, want := rederive(q), h.Quantile(q); got != want {
			t.Errorf("re-derived q%.2f = %v, want %v", q, got, want)
		}
	}
}
