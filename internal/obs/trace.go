package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// PhaseTiming is one completed (or accumulated) phase of a traced
// operation.
type PhaseTiming struct {
	Name     string
	Duration time.Duration
	// Count is the number of intervals folded into Duration: 1 for a
	// span recorded with Phase, higher for durations accumulated with
	// Add (for example one entry per candidate-graph cycle check).
	Count int64
}

// Tracer records named phase timings: coarse sequential spans via
// Phase, and scattered micro-intervals folded into one line via Add.
// All methods are safe for concurrent use and are no-ops on a nil
// tracer, so library code can thread an optional *Tracer without
// branching.
type Tracer struct {
	mu     sync.Mutex
	reg    *Registry
	phases []PhaseTiming
	index  map[string]int
}

// NewTracer returns a tracer. When reg is non-nil every phase duration
// is additionally observed into the reg histogram
// phase_duration_ns{phase="<name>"}.
func NewTracer(reg *Registry) *Tracer {
	return &Tracer{reg: reg, index: make(map[string]int)}
}

// Phase starts a span and returns the function that ends it. The
// phase's report position is fixed when Phase is called, not when the
// span ends, so nested phases keep their start order. Typical use:
//
//	done := tr.Phase("wr-enumeration")
//	... work ...
//	done()
func (t *Tracer) Phase(name string) func() {
	if t == nil {
		return func() {}
	}
	t.reserve(name)
	start := time.Now()
	return func() { t.Add(name, time.Since(start)) }
}

// Reserve fixes the report position of a phase before any interval is
// recorded into it. Callers that accumulate a phase with Add from
// several goroutines reserve it up front, so the report order does not
// depend on which worker records first.
func (t *Tracer) Reserve(name string) {
	if t == nil {
		return
	}
	t.reserve(name)
}

func (t *Tracer) reserve(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index[name]; !ok {
		t.index[name] = len(t.phases)
		t.phases = append(t.phases, PhaseTiming{Name: name})
	}
}

// Add folds d into the phase of the given name, creating it on first
// use. Phases keep first-reserved order (Phase and Reserve fix the
// position; a bare Add appends).
func (t *Tracer) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if i, ok := t.index[name]; ok {
		t.phases[i].Duration += d
		t.phases[i].Count++
	} else {
		t.index[name] = len(t.phases)
		t.phases = append(t.phases, PhaseTiming{Name: name, Duration: d, Count: 1})
	}
	reg := t.reg
	t.mu.Unlock()
	reg.Histogram("phase_duration_ns", L("phase", name)).Observe(d.Nanoseconds())
}

// Phases returns a copy of the recorded phases in first-reserved
// order. Phases reserved but never recorded into (Count 0) are
// omitted, so reserving a phase that ends up empty leaves no trace.
func (t *Tracer) Phases() []PhaseTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseTiming, 0, len(t.phases))
	for _, p := range t.phases {
		if p.Count > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Report writes one "trace: phase=<name> dur=<duration>" line per
// recorded phase (adding n=<count> for accumulated phases), suitable
// for the CLIs' -trace output on stderr.
func (t *Tracer) Report(w io.Writer) {
	if t == nil || w == nil {
		return
	}
	for _, p := range t.Phases() {
		if p.Count > 1 {
			fmt.Fprintf(w, "trace: phase=%-24s dur=%-12v n=%d\n", p.Name, p.Duration, p.Count)
		} else {
			fmt.Fprintf(w, "trace: phase=%-24s dur=%v\n", p.Name, p.Duration)
		}
	}
}
